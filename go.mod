module gem5aladdin

go 1.22
