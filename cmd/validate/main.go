// Command validate runs the Fig 4 validation harness: the event-driven
// simulator against the independent analytic golden models (the hardware
// stand-in), reporting per-benchmark and average percentage error for the
// flush, DMA, and compute components.
package main

import (
	"fmt"
	"os"

	"gem5aladdin/internal/figures"
)

func main() {
	if err := figures.Fig4(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
