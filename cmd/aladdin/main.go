// Command aladdin runs one accelerator design point end to end and prints
// the runtime breakdown, energy, and statistics — the single-simulation
// entry point of the gem5-Aladdin reproduction.
//
// Example:
//
//	go run ./cmd/aladdin -bench md-knn -mem dma -lanes 8 -partitions 8
//	go run ./cmd/aladdin -bench spmv-crs -mem cache -cache-kb 8 -cache-ports 2
package main

import (
	"flag"
	"fmt"
	"os"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/stats"
	"gem5aladdin/internal/trace"
)

func main() {
	var (
		bench      = flag.String("bench", "gemm-ncubed", "MachSuite benchmark name (see cmd/machsuite)")
		traceFile  = flag.String("trace", "", "load a serialized .trace file instead of building a benchmark")
		mem        = flag.String("mem", "dma", "memory system: isolated, dma, cache")
		lanes      = flag.Int("lanes", 4, "datapath lanes")
		partitions = flag.Int("partitions", 4, "scratchpad partitions")
		pipelined  = flag.Bool("pipelined-dma", true, "pipeline flush with DMA")
		triggered  = flag.Bool("dma-triggered", true, "DMA-triggered compute (full/empty bits)")
		cacheKB    = flag.Int("cache-kb", 16, "cache size in KB")
		cacheLine  = flag.Int("cache-line", 32, "cache line bytes")
		cachePorts = flag.Int("cache-ports", 1, "cache ports")
		cacheAssoc = flag.Int("cache-assoc", 4, "cache associativity")
		busBits    = flag.Int("bus-bits", 32, "system bus width in bits")
		timeline   = flag.Bool("timeline", false, "render the per-lane execution timeline")
		profile    = flag.Bool("profile", false, "attribute every simulated cycle to one component bucket and print the breakdown")
	)
	ob := report.AddObsFlags(flag.CommandLine, "")
	rb := report.AddRobustFlags(flag.CommandLine)
	fb := report.AddFabricFlags(flag.CommandLine)
	logf := report.AddLogFlags(flag.CommandLine)
	flag.Parse()

	lg, closeLog, err := logf.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeLog()

	var tr *trace.Trace
	name := *bench
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err = trace.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		name = tr.Name
	} else {
		k, err := machsuite.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		tr, err = k.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	kern := soc.Compile(ddg.Build(tr))

	cfg := soc.DefaultConfig()
	switch *mem {
	case "isolated":
		cfg.Mem = soc.Isolated
	case "dma":
		cfg.Mem = soc.DMA
	case "cache":
		cfg.Mem = soc.Cache
	default:
		fmt.Fprintf(os.Stderr, "unknown -mem %q\n", *mem)
		os.Exit(2)
	}
	cfg.Lanes = *lanes
	cfg.Partitions = *partitions
	cfg.PipelinedDMA = *pipelined
	cfg.DMATriggered = *triggered
	cfg.CacheKB = *cacheKB
	cfg.CacheLineBytes = *cacheLine
	cfg.CachePorts = *cachePorts
	cfg.CacheAssoc = *cacheAssoc
	cfg.BusWidthBits = *busBits
	cfg.RecordSchedule = *timeline

	if err := rb.Apply(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := fb.Apply(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	o := ob.Observer()
	if o != nil {
		cfg.Obs = o
	}

	if lg != nil {
		lg.Info("run starting", "bench", name, "mem", cfg.Mem.String(),
			"lanes", cfg.Lanes, "ops", kern.NumNodes())
	}
	var runner soc.Runner
	res, err := runner.Run(kern, cfg)
	if err != nil {
		if lg != nil {
			lg.Error("run failed", "bench", name, "err", err)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if lg != nil {
		lg.Info("run complete", "bench", name, "cycles", res.Cycles,
			"runtime_us", res.Seconds()*1e6, "edp_njs", res.EDPJs*1e9)
	}
	if o != nil {
		if err := ob.Write(o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	rb.Report(res)
	fmt.Printf("%s (%d dynamic ops, %d iterations) on %s, %d lanes\n\n",
		name, kern.NumNodes(), len(kern.Graph().IterRange), cfg.Mem, cfg.Lanes)

	tb := stats.NewTable("metric", "value")
	tb.Row("runtime", fmt.Sprintf("%.2f us (%d cycles)", res.Seconds()*1e6, res.Cycles))
	b := res.Breakdown
	tb.Row("  flush-only", fmt.Sprintf("%.2f us", float64(b.FlushOnly)/1e6))
	tb.Row("  dma (no compute)", fmt.Sprintf("%.2f us", float64(b.DMAFlush+b.Idle)/1e6))
	tb.Row("  compute+dma overlap", fmt.Sprintf("%.2f us", float64(b.ComputeDMA)/1e6))
	tb.Row("  compute-only", fmt.Sprintf("%.2f us", float64(b.ComputeOnly)/1e6))
	tb.Row("accelerator power", fmt.Sprintf("%.3f mW", res.AvgPowerW*1e3))
	tb.Row("accelerator energy", fmt.Sprintf("%.3f uJ", res.Energy.Total()*1e6))
	tb.Row("  FU dynamic", fmt.Sprintf("%.3f uJ", res.Energy.FUDynamic*1e6))
	tb.Row("  FU leakage", fmt.Sprintf("%.3f uJ", res.Energy.FULeak*1e6))
	tb.Row("  mem dynamic", fmt.Sprintf("%.3f uJ", res.Energy.MemDynamic*1e6))
	tb.Row("  mem leakage", fmt.Sprintf("%.3f uJ", res.Energy.MemLeak*1e6))
	tb.Row("EDP", fmt.Sprintf("%.4g nJ*s", res.EDPJs*1e9))
	tb.Row("area", fmt.Sprintf("%.3f mm^2", res.AreaMM2))
	util := res.Datapath.LaneUtilization()
	if len(util) > 0 {
		mn, mx := util[0], util[0]
		for _, u := range util {
			if u < mn {
				mn = u
			}
			if u > mx {
				mx = u
			}
		}
		tb.Row("lane utilization", fmt.Sprintf("%.0f%% - %.0f%%", mn*100, mx*100))
	}
	tb.Row("transfer energy (system)", fmt.Sprintf("%.3f uJ", res.TransferJ*1e6))
	tb.Row("bus utilization", fmt.Sprintf("%.1f%%", 100*float64(res.Bus.BusyTicks)/float64(res.Runtime)))
	if cfg.Mem == soc.Cache {
		tb.Row("cache accesses", res.Cache.Accesses)
		tb.Row("  hits", res.Cache.Hits)
		tb.Row("  misses", res.Cache.Misses)
		tb.Row("  prefetches", res.Cache.Prefetches)
		tb.Row("  c2c fills", res.Cache.C2CFills)
		tb.Row("TLB misses", res.TLB.Misses)
	} else {
		tb.Row("spad reads", res.Spad.Reads)
		tb.Row("spad writes", res.Spad.Writes)
		tb.Row("bank conflicts", res.Spad.BankConflicts)
	}
	tb.Render(os.Stdout)

	if *profile {
		// Re-run under the cycle-attribution profiler: the run is
		// deterministic, so the re-simulation reproduces res exactly and
		// the buckets sum to its cycle count.
		pres, att, err := runner.ProfileRun(kern, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if pres.Runtime != res.Runtime {
			fmt.Fprintf(os.Stderr, "aladdin: profiled run diverged: %v != %v\n",
				pres.Runtime, res.Runtime)
			os.Exit(1)
		}
		fmt.Println("\ncycle attribution (every tick in exactly one bucket):")
		pt := stats.NewTable("bucket", "ticks", "share")
		for b := 0; b < obs.NumBuckets; b++ {
			pt.Row(obs.Bucket(b).String(), att.Ticks[b],
				fmt.Sprintf("%5.1f%%", 100*float64(att.Ticks[b])/float64(att.Total)))
		}
		pt.Render(os.Stdout)
	}

	if *timeline {
		fmt.Println("\nexecution timeline (F flush, D dma, O overlap, C compute, . idle):")
		fmt.Print(report.GanttASCII(res, res.Schedule, cfg.Lanes, 100))
	}
}
