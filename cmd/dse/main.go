// Command dse sweeps an accelerator design space for one benchmark and
// prints every evaluated point, the Pareto frontier, and the EDP optimum.
//
// Example:
//
//	go run ./cmd/dse -bench stencil-stencil3d -mem dma
//	go run ./cmd/dse -bench spmv-crs -mem cache -bus-bits 64 -full
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/stats"
	"gem5aladdin/internal/store"
)

func main() {
	var (
		bench   = flag.String("bench", "stencil-stencil3d", "benchmark name")
		mem     = flag.String("mem", "dma", "memory system: isolated, dma, cache")
		busBits = flag.Int("bus-bits", 32, "system bus width")
		full    = flag.Bool("full", false, "full Fig 3 sweep axes (slower)")
		front   = flag.Bool("pareto-only", false, "print only the Pareto frontier")
		format  = flag.String("format", "table", "output format: table, json, csv")
		jobs    = flag.Int("j", 0, "sweep worker count (0 = GOMAXPROCS)")
		every   = flag.Int("progress", 0, "print a progress line every N completed points (0 = off)")
		profile = flag.Bool("profile", false, "re-run the Pareto-front points with the cycle-attribution profiler and print a per-point breakdown")
		folded  = flag.String("profile-folded", "", "write the profiled points' folded stacks (flamegraph input) to this file (implies -profile work)")
		spanOut = flag.String("span-out", "", "write the sweep's wall-clock spans (one per design point) as JSON lines to this file")
		storeD  = flag.String("store", "", "durable result store directory: points already simulated (by any run or by cmd/serve) are replayed from disk")
	)
	ob := report.AddObsFlags(flag.CommandLine, "re-run the EDP optimum and ")
	rb := report.AddRobustFlags(flag.CommandLine)
	logf := report.AddLogFlags(flag.CommandLine)
	flag.Parse()

	lg, closeLog, err := logf.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeLog()

	k, err := machsuite.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tr, err := k.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	kern := soc.Compile(ddg.Build(tr))

	opt := dse.QuickAxes()
	if *full {
		opt = dse.FullAxes()
	}
	base := soc.DefaultConfig()
	base.BusWidthBits = *busBits
	if err := rb.Apply(&base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := base.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var cfgs []soc.Config
	switch *mem {
	case "isolated":
		cfgs = dse.SpadConfigs(base, soc.Isolated, opt.Lanes, opt.Partitions)
	case "dma":
		cfgs = dse.SpadConfigs(base, soc.DMA, opt.Lanes, opt.Partitions)
	case "cache":
		cfgs = dse.CacheConfigs(base, opt.Lanes, opt.CacheKB, opt.CacheLines,
			opt.CachePorts, opt.CacheAssoc)
	default:
		fmt.Fprintf(os.Stderr, "unknown -mem %q\n", *mem)
		os.Exit(2)
	}

	var onProgress func(done, total int)
	if *every > 0 {
		onProgress = func(done, total int) {
			if done%*every == 0 || done == total {
				fmt.Fprintf(os.Stderr, "dse: %d/%d design points evaluated\n", done, total)
			}
		}
	}
	// Ctrl-C abandons the sweep at the next design-point boundary instead of
	// leaving workers mid-grid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// -span-out threads a root span through the sweep context: every design
	// point becomes one JSON line with its worker track and wall-clock cost.
	var root *obs.Span
	if *spanOut != "" {
		sf, err := os.Create(*spanOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer sf.Close()
		root = obs.NewSpanTracer(sf, 0).StartTrace("dse-sweep")
		root.SetAttr("bench", *bench)
		root.SetAttr("mem", *mem)
		root.SetAttr("points", len(cfgs))
		ctx = obs.WithSpan(ctx, root)
	}

	// -store makes the sweep crash-safe and incremental: every simulated
	// point is written through to an append-only segment log keyed by its
	// content address, and points already on disk — from an earlier run, an
	// interrupted run, or a cmd/serve instance sharing the directory — are
	// replayed instead of re-simulated.
	swOpts := dse.SweepOptions{Workers: *jobs, Progress: onProgress}
	if *storeD != "" {
		st, err := store.Open(*storeD, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "closing store:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dse: result store %s: %d records on disk\n",
			*storeD, st.Len())
		swOpts.Cache = &dse.StoreCache{Kernel: *bench, Store: st}
	}

	if lg != nil {
		lg.Info("sweep starting", "bench", *bench, "mem", *mem,
			"points", len(cfgs), "workers", *jobs, "full", *full)
	}
	swept := time.Now()
	space, err := dse.Sweep(ctx, kern, cfgs, swOpts)
	root.EndSpan()
	if err != nil {
		if lg != nil {
			lg.Error("sweep failed", "err", err.Error())
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	skipped := len(cfgs) - len(space)
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "dse: skipped %d of %d design points that aborted under fault injection\n",
			skipped, len(cfgs))
	}
	if lg != nil {
		lg.Info("sweep complete", "evaluated", len(space), "skipped", skipped,
			"elapsed_ms", time.Since(swept).Milliseconds())
	}
	best, ok := space.EDPOptimal()
	if !ok {
		fmt.Fprintln(os.Stderr, "dse: every design point aborted; nothing to rank")
		os.Exit(1)
	}
	pts := space
	if *front {
		pts = space.ParetoFront()
	}

	// The sweep itself runs unobserved (observability off keeps every probe
	// disabled); when dumps are requested, the winning point is re-simulated
	// with an observer attached.
	if o := ob.Observer(); o != nil {
		cfg := best.Cfg
		cfg.Obs = o
		if _, err := soc.Run(kern, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := ob.Write(o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote observability dumps for the EDP-optimal point")
	}

	if *format != "table" {
		var recs []report.Record
		for _, p := range pts {
			recs = append(recs, report.FromResult(*bench, p.Res))
		}
		var werr error
		switch *format {
		case "json":
			werr = report.WriteJSON(os.Stdout, recs)
		case "csv":
			werr = report.WriteCSV(os.Stdout, recs)
		default:
			werr = fmt.Errorf("unknown -format %q", *format)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
	} else {
		tb := stats.NewTable("lanes", "local memory", "time(us)", "power(mW)", "EDP(nJ*s)", "")
		for _, p := range pts {
			local := fmt.Sprintf("%d banks x %d ports", p.Cfg.Partitions, p.Cfg.SpadPorts)
			if p.Cfg.Mem == soc.Cache {
				local = fmt.Sprintf("%dKB %dB/line %dp %d-way",
					p.Cfg.CacheKB, p.Cfg.CacheLineBytes, p.Cfg.CachePorts, p.Cfg.CacheAssoc)
			}
			mark := ""
			if p.Cfg == best.Cfg {
				mark = "<-- EDP optimal"
			}
			tb.Row(p.Cfg.Lanes, local, p.Res.Seconds()*1e6, p.Res.AvgPowerW*1e3,
				p.Res.EDPJs*1e9, mark)
		}
		fmt.Printf("%s, %s, %d-bit bus: %d design points (%d on Pareto frontier)\n\n",
			*bench, *mem, *busBits, len(space), len(space.ParetoFront()))
		tb.Render(os.Stdout)
	}

	if *profile || *folded != "" {
		if err := profilePoints(kern, space.ParetoFront(), *bench, *folded, *profile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// pointLabel compactly names one design point for folded stacks (no spaces
// or semicolons — both are separators in the flamegraph format) and the
// attribution table.
func pointLabel(cfg soc.Config) string {
	if cfg.Mem == soc.Cache {
		return fmt.Sprintf("lanes%d-%dKB-%dway", cfg.Lanes, cfg.CacheKB, cfg.CacheAssoc)
	}
	return fmt.Sprintf("lanes%d-banks%dx%d", cfg.Lanes, cfg.Partitions, cfg.SpadPorts)
}

// profilePoints re-simulates the Pareto-front points under the
// cycle-attribution profiler, recycling one Runner across the points the
// way a sweep worker does. Every simulated cycle lands in exactly one
// bucket, so the percentage rows sum to 100; the folded output feeds
// flamegraph.pl (or speedscope) directly.
func profilePoints(k *soc.Compiled, pts dse.Space, bench, foldedPath string, table bool) error {
	var fw io.Writer
	if foldedPath != "" {
		f, err := os.Create(foldedPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fw = f
	}
	cols := []string{"point", "cycles"}
	for b := 0; b < obs.NumBuckets; b++ {
		cols = append(cols, obs.Bucket(b).String())
	}
	tb := stats.NewTable(cols...)
	var r soc.Runner
	for _, p := range pts {
		res, att, err := r.ProfileRun(k, p.Cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dse: profiling %s: %v\n", pointLabel(p.Cfg), err)
			continue
		}
		if res.Runtime != p.Res.Runtime {
			return fmt.Errorf("dse: profiled run of %s diverged: %v != %v",
				pointLabel(p.Cfg), res.Runtime, p.Res.Runtime)
		}
		row := []any{pointLabel(p.Cfg), att.Total}
		for b := 0; b < obs.NumBuckets; b++ {
			row = append(row, fmt.Sprintf("%5.1f%%", 100*float64(att.Ticks[b])/float64(att.Total)))
		}
		tb.Row(row...)
		if fw != nil {
			if err := att.WriteFolded(fw, bench+";"+pointLabel(p.Cfg)); err != nil {
				return err
			}
		}
	}
	if table {
		fmt.Printf("\ncycle attribution, Pareto-front points (each row sums to 100%%):\n\n")
		tb.Render(os.Stdout)
	}
	return nil
}
