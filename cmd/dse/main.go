// Command dse sweeps an accelerator design space for one benchmark and
// prints every evaluated point, the Pareto frontier, and the EDP optimum.
//
// Example:
//
//	go run ./cmd/dse -bench stencil-stencil3d -mem dma
//	go run ./cmd/dse -bench spmv-crs -mem cache -bus-bits 64 -full
//	go run ./cmd/dse -bench spmv-crs -mem cache -search -budget 400 -seed 7
//
// -search replaces the exhaustive grid with the adaptive Pareto-guided
// search (dse.Search) over the default large axes for the chosen memory
// system (~10^5 points for caches — far beyond what a grid can touch):
// only the recovered front is printed. With -store, the search checkpoints
// its frontier after every round and a rerun of the same command resumes
// where the interrupted run stopped, replaying stored points instead of
// re-simulating them.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/stats"
	"gem5aladdin/internal/store"
)

func main() {
	var (
		bench   = flag.String("bench", "stencil-stencil3d", "benchmark name")
		mem     = flag.String("mem", "dma", "memory system: isolated, dma, cache")
		busBits = flag.Int("bus-bits", 32, "system bus width")
		full    = flag.Bool("full", false, "full Fig 3 sweep axes (slower)")
		front   = flag.Bool("pareto-only", false, "print only the Pareto frontier")
		format  = flag.String("format", "table", "output format: table, json, csv")
		jobs    = flag.Int("j", 0, "sweep worker count (0 = GOMAXPROCS)")
		every   = flag.Int("progress", 0, "print a round/front-size/simulated progress line every N points (grid) or every round (-search); 0 = off")
		adapt   = flag.Bool("search", false, "adaptive Pareto-guided search over the default large axes instead of an exhaustive grid")
		budget  = flag.Int("budget", 512, "max design points the search evaluates (-search)")
		seed    = flag.Uint64("seed", 1, "search RNG seed: same seed over the same space yields a bit-identical front (-search)")
		profile = flag.Bool("profile", false, "re-run the Pareto-front points with the cycle-attribution profiler and print a per-point breakdown")
		folded  = flag.String("profile-folded", "", "write the profiled points' folded stacks (flamegraph input) to this file (implies -profile work)")
		spanOut = flag.String("span-out", "", "write the sweep's wall-clock spans (one per design point) as JSON lines to this file")
		storeD  = flag.String("store", "", "durable result store directory: points already simulated (by any run or by cmd/serve) are replayed from disk")
		fabrics = flag.String("fabrics", "", "comma-separated fabric axis crossed into the sweep (bus,crossbar,mesh); empty sweeps the base -fabric only")
	)
	ob := report.AddObsFlags(flag.CommandLine, "re-run the EDP optimum and ")
	rb := report.AddRobustFlags(flag.CommandLine)
	fb := report.AddFabricFlags(flag.CommandLine)
	logf := report.AddLogFlags(flag.CommandLine)
	flag.Parse()

	lg, closeLog, err := logf.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeLog()

	k, err := machsuite.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tr, err := k.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	kern := soc.Compile(ddg.Build(tr))

	opt := dse.QuickAxes()
	if *full {
		opt = dse.FullAxes()
	}
	base := soc.DefaultConfig()
	base.BusWidthBits = *busBits
	if err := rb.Apply(&base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := fb.Apply(&base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fabricAxis, err := report.ParseFabricList(*fabrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := base.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	kind, err := memKindOf(*mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cfgs []soc.Config
	var sspace dse.SearchSpace
	if *adapt {
		sbase := base
		sbase.Mem = kind
		axes := dse.DefaultSearchAxes(kind)
		if len(fabricAxis) > 0 {
			vals := make([]int, len(fabricAxis))
			for i, fk := range fabricAxis {
				vals[i] = int(fk)
			}
			axes = append(axes, dse.SearchAxis{Name: "fabric", Values: vals})
		}
		sspace = dse.SearchSpace{Base: sbase, Axes: axes}
		if err := sspace.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		switch kind {
		case soc.Isolated, soc.DMA:
			cfgs = dse.SpadConfigs(base, kind, opt.Lanes, opt.Partitions)
		case soc.Cache:
			cfgs = dse.CacheConfigs(base, opt.Lanes, opt.CacheKB, opt.CacheLines,
				opt.CachePorts, opt.CacheAssoc)
		}
		cfgs = dse.WithFabrics(cfgs, fabricAxis)
	}

	// Ctrl-C abandons the sweep at the next design-point boundary instead of
	// leaving workers mid-grid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// -span-out threads a root span through the sweep context: every design
	// point (and, under -search, every round) becomes one JSON line with its
	// worker track and wall-clock cost.
	var root *obs.Span
	if *spanOut != "" {
		sf, err := os.Create(*spanOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer sf.Close()
		root = obs.NewSpanTracer(sf, 0).StartTrace("dse-sweep")
		root.SetAttr("bench", *bench)
		root.SetAttr("mem", *mem)
		if *adapt {
			root.SetAttr("space", sspace.Size())
			root.SetAttr("budget", *budget)
		} else {
			root.SetAttr("points", len(cfgs))
		}
		ctx = obs.WithSpan(ctx, root)
	}

	// -store makes the sweep crash-safe and incremental: every simulated
	// point is written through to an append-only segment log keyed by its
	// content address, and points already on disk — from an earlier run, an
	// interrupted run, or a cmd/serve instance sharing the directory — are
	// replayed instead of re-simulated. Under -search it also holds the
	// per-round frontier checkpoint that lets a killed search resume.
	var st *store.Store
	if *storeD != "" {
		st, err = store.Open(*storeD, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "closing store:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dse: result store %s: %d records on disk\n",
			*storeD, st.Len())
	}

	var space dse.Space
	if *adapt {
		space, err = runSearch(ctx, kern, sspace, st, lg,
			*bench, *mem, *seed, *budget, *jobs, *every)
	} else {
		space, err = runGrid(ctx, kern, cfgs, st, lg,
			*bench, *mem, *full, *jobs, *every)
	}
	root.EndSpan()
	if err != nil {
		if lg != nil {
			lg.Error("sweep failed", "err", err.Error())
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	best, ok := space.EDPOptimal()
	if !ok {
		fmt.Fprintln(os.Stderr, "dse: every design point aborted; nothing to rank")
		os.Exit(1)
	}
	pts := space
	if *front {
		pts = space.ParetoFront()
	}

	// The sweep itself runs unobserved (observability off keeps every probe
	// disabled); when dumps are requested, the winning point is re-simulated
	// with an observer attached.
	if o := ob.Observer(); o != nil {
		cfg := best.Cfg
		cfg.Obs = o
		if _, err := soc.Run(kern, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := ob.Write(o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote observability dumps for the EDP-optimal point")
	}

	if *format != "table" {
		var recs []report.Record
		for _, p := range pts {
			recs = append(recs, report.FromResult(*bench, p.Res))
		}
		var werr error
		switch *format {
		case "json":
			werr = report.WriteJSON(os.Stdout, recs)
		case "csv":
			werr = report.WriteCSV(os.Stdout, recs)
		default:
			werr = fmt.Errorf("unknown -format %q", *format)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
	} else {
		tb := stats.NewTable("lanes", "local memory", "time(us)", "power(mW)", "EDP(nJ*s)", "")
		for _, p := range pts {
			local := fmt.Sprintf("%d banks x %d ports", p.Cfg.Partitions, p.Cfg.SpadPorts)
			if p.Cfg.Mem == soc.Cache {
				local = fmt.Sprintf("%dKB %dB/line %dp %d-way",
					p.Cfg.CacheKB, p.Cfg.CacheLineBytes, p.Cfg.CachePorts, p.Cfg.CacheAssoc)
			}
			mark := ""
			if p.Cfg == best.Cfg {
				mark = "<-- EDP optimal"
			}
			tb.Row(p.Cfg.Lanes, local, p.Res.Seconds()*1e6, p.Res.AvgPowerW*1e3,
				p.Res.EDPJs*1e9, mark)
		}
		fmt.Printf("%s, %s, %d-bit bus: %d design points (%d on Pareto frontier)\n\n",
			*bench, *mem, *busBits, len(space), len(space.ParetoFront()))
		tb.Render(os.Stdout)
	}

	if *profile || *folded != "" {
		if err := profilePoints(kern, space.ParetoFront(), *bench, *folded, *profile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// memKindOf resolves the -mem flag.
func memKindOf(name string) (soc.MemKind, error) {
	switch name {
	case "isolated":
		return soc.Isolated, nil
	case "dma":
		return soc.DMA, nil
	case "cache":
		return soc.Cache, nil
	}
	return 0, fmt.Errorf("unknown -mem %q", name)
}

// progressLine is the shared -progress format for the grid and search
// paths: one line per round with the Pareto-front size so far and how many
// points were actually simulated (as opposed to replayed from -store).
func progressLine(round, evaluated, total, frontSize, simulated int, replayed bool) {
	suffix := ""
	if replayed {
		suffix = " (replayed)"
	}
	fmt.Fprintf(os.Stderr, "dse: round %d: %d/%d points evaluated, front size %d, %d simulated%s\n",
		round, evaluated, total, frontSize, simulated, suffix)
}

// runGrid runs the exhaustive sweep. With -progress N the grid is swept in
// rounds of N points so the progress stream matches the search path's:
// front size is computed over everything evaluated so far, and simulated
// counts new store records (every point, when no store is attached).
func runGrid(ctx context.Context, kern *soc.Compiled, cfgs []soc.Config, st *store.Store, lg *slog.Logger, bench, mem string, full bool, jobs, every int) (dse.Space, error) {
	swOpts := dse.SweepOptions{Workers: jobs}
	if st != nil {
		swOpts.Cache = &dse.StoreCache{Kernel: bench, Store: st}
	}
	if lg != nil {
		lg.Info("sweep starting", "bench", bench, "mem", mem,
			"points", len(cfgs), "workers", jobs, "full", full)
	}
	swept := time.Now()
	var space dse.Space
	var err error
	if every <= 0 {
		space, err = dse.Sweep(ctx, kern, cfgs, swOpts)
	} else {
		stored := 0
		if st != nil {
			stored = st.Len()
		}
		for off, round := 0, 0; off < len(cfgs); off, round = off+every, round+1 {
			end := off + every
			if end > len(cfgs) {
				end = len(cfgs)
			}
			var part dse.Space
			part, err = dse.Sweep(ctx, kern, cfgs[off:end], swOpts)
			if err != nil {
				break
			}
			space = append(space, part...)
			simulated := end
			if st != nil {
				simulated = st.Len() - stored
			}
			progressLine(round, end, len(cfgs), len(space.ParetoFront()), simulated, false)
		}
	}
	if err != nil {
		return nil, err
	}
	if skipped := len(cfgs) - len(space); skipped > 0 {
		fmt.Fprintf(os.Stderr, "dse: skipped %d of %d design points that aborted under fault injection\n",
			skipped, len(cfgs))
	}
	if lg != nil {
		lg.Info("sweep complete", "evaluated", len(space),
			"skipped", len(cfgs)-len(space),
			"elapsed_ms", time.Since(swept).Milliseconds())
	}
	return space, nil
}

// runSearch runs the adaptive Pareto-guided search and returns its
// recovered front. With -store, points replay from disk and the frontier
// checkpoints under a key derived from the bench and memory system, so
// rerunning the same command resumes an interrupted search (a changed seed
// or space fingerprints differently and starts fresh).
func runSearch(ctx context.Context, kern *soc.Compiled, sspace dse.SearchSpace, st *store.Store, lg *slog.Logger, bench, mem string, seed uint64, budget, jobs, every int) (dse.Space, error) {
	sopts := dse.SearchOptions{Seed: seed, Budget: budget, Workers: jobs}
	if st != nil {
		sopts.Cache = &dse.StoreCache{Kernel: bench, Store: st}
		sopts.CheckpointKey = "search/cli-" + bench + "-" + mem
	}
	if every > 0 {
		sopts.Progress = func(p dse.SearchProgress) {
			progressLine(p.Round, p.Evaluated, budget, p.FrontSize, p.Simulated, p.Replayed)
		}
	}
	if lg != nil {
		lg.Info("search starting", "bench", bench, "mem", mem,
			"space", sspace.Size(), "budget", budget, "seed", seed, "workers", jobs)
	}
	started := time.Now()
	res, err := dse.Search(ctx, kern, sspace, sopts)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "dse: search over %d-point space: %d rounds, %d evaluated (budget %d), %d simulated, converged=%v\n",
		res.SpaceSize, res.Rounds, res.Evaluated, budget, res.Simulated, res.Converged)
	if lg != nil {
		lg.Info("search complete", "rounds", res.Rounds,
			"evaluated", res.Evaluated, "simulated", res.Simulated,
			"front", len(res.Front), "converged", res.Converged,
			"elapsed_ms", time.Since(started).Milliseconds())
	}
	return res.Front, nil
}

// pointLabel compactly names one design point for folded stacks (no spaces
// or semicolons — both are separators in the flamegraph format) and the
// attribution table.
func pointLabel(cfg soc.Config) string {
	if cfg.Mem == soc.Cache {
		return fmt.Sprintf("lanes%d-%dKB-%dway", cfg.Lanes, cfg.CacheKB, cfg.CacheAssoc)
	}
	return fmt.Sprintf("lanes%d-banks%dx%d", cfg.Lanes, cfg.Partitions, cfg.SpadPorts)
}

// profilePoints re-simulates the Pareto-front points under the
// cycle-attribution profiler, recycling one Runner across the points the
// way a sweep worker does. Every simulated cycle lands in exactly one
// bucket, so the percentage rows sum to 100; the folded output feeds
// flamegraph.pl (or speedscope) directly.
func profilePoints(k *soc.Compiled, pts dse.Space, bench, foldedPath string, table bool) error {
	var fw io.Writer
	if foldedPath != "" {
		f, err := os.Create(foldedPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fw = f
	}
	cols := []string{"point", "cycles"}
	for b := 0; b < obs.NumBuckets; b++ {
		cols = append(cols, obs.Bucket(b).String())
	}
	tb := stats.NewTable(cols...)
	var r soc.Runner
	for _, p := range pts {
		res, att, err := r.ProfileRun(k, p.Cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dse: profiling %s: %v\n", pointLabel(p.Cfg), err)
			continue
		}
		if res.Runtime != p.Res.Runtime {
			return fmt.Errorf("dse: profiled run of %s diverged: %v != %v",
				pointLabel(p.Cfg), res.Runtime, p.Res.Runtime)
		}
		row := []any{pointLabel(p.Cfg), att.Total}
		for b := 0; b < obs.NumBuckets; b++ {
			row = append(row, fmt.Sprintf("%5.1f%%", 100*float64(att.Ticks[b])/float64(att.Total)))
		}
		tb.Row(row...)
		if fw != nil {
			if err := att.WriteFolded(fw, bench+";"+pointLabel(p.Cfg)); err != nil {
				return err
			}
		}
	}
	if table {
		fmt.Printf("\ncycle attribution, Pareto-front points (each row sums to 100%%):\n\n")
		tb.Render(os.Stdout)
	}
	return nil
}
