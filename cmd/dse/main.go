// Command dse sweeps an accelerator design space for one benchmark and
// prints every evaluated point, the Pareto frontier, and the EDP optimum.
//
// Example:
//
//	go run ./cmd/dse -bench stencil-stencil3d -mem dma
//	go run ./cmd/dse -bench spmv-crs -mem cache -bus-bits 64 -full
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/stats"
)

func main() {
	var (
		bench   = flag.String("bench", "stencil-stencil3d", "benchmark name")
		mem     = flag.String("mem", "dma", "memory system: isolated, dma, cache")
		busBits = flag.Int("bus-bits", 32, "system bus width")
		full    = flag.Bool("full", false, "full Fig 3 sweep axes (slower)")
		front   = flag.Bool("pareto-only", false, "print only the Pareto frontier")
		format  = flag.String("format", "table", "output format: table, json, csv")
		jobs    = flag.Int("j", 0, "sweep worker count (0 = GOMAXPROCS)")
		every   = flag.Int("progress", 0, "print a progress line every N completed points (0 = off)")
	)
	ob := report.AddObsFlags(flag.CommandLine, "re-run the EDP optimum and ")
	rb := report.AddRobustFlags(flag.CommandLine)
	flag.Parse()

	k, err := machsuite.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tr, err := k.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g := ddg.Build(tr)

	opt := dse.QuickOptions()
	if *full {
		opt = dse.FullOptions()
	}
	base := soc.DefaultConfig()
	base.BusWidthBits = *busBits
	if err := rb.Apply(&base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := base.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var cfgs []soc.Config
	switch *mem {
	case "isolated":
		cfgs = dse.SpadConfigs(base, soc.Isolated, opt.Lanes, opt.Partitions)
	case "dma":
		cfgs = dse.SpadConfigs(base, soc.DMA, opt.Lanes, opt.Partitions)
	case "cache":
		cfgs = dse.CacheConfigs(base, opt.Lanes, opt.CacheKB, opt.CacheLines,
			opt.CachePorts, opt.CacheAssoc)
	default:
		fmt.Fprintf(os.Stderr, "unknown -mem %q\n", *mem)
		os.Exit(2)
	}

	var onProgress func(done, total int)
	if *every > 0 {
		onProgress = func(done, total int) {
			if done%*every == 0 || done == total {
				fmt.Fprintf(os.Stderr, "dse: %d/%d design points evaluated\n", done, total)
			}
		}
	}
	// Ctrl-C abandons the sweep at the next design-point boundary instead of
	// leaving workers mid-grid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	space, err := dse.SweepCtx(ctx, g, cfgs, *jobs, onProgress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if skipped := len(cfgs) - len(space); skipped > 0 {
		fmt.Fprintf(os.Stderr, "dse: skipped %d of %d design points that aborted under fault injection\n",
			skipped, len(cfgs))
	}
	best, ok := space.EDPOptimal()
	if !ok {
		fmt.Fprintln(os.Stderr, "dse: every design point aborted; nothing to rank")
		os.Exit(1)
	}
	pts := space
	if *front {
		pts = space.ParetoFront()
	}

	// The sweep itself runs unobserved (observability off keeps every probe
	// disabled); when dumps are requested, the winning point is re-simulated
	// with an observer attached.
	if o := ob.Observer(); o != nil {
		cfg := best.Cfg
		cfg.Obs = o
		if _, err := soc.Run(g, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := ob.Write(o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote observability dumps for the EDP-optimal point")
	}

	if *format != "table" {
		var recs []report.Record
		for _, p := range pts {
			recs = append(recs, report.FromResult(*bench, p.Res))
		}
		var werr error
		switch *format {
		case "json":
			werr = report.WriteJSON(os.Stdout, recs)
		case "csv":
			werr = report.WriteCSV(os.Stdout, recs)
		default:
			werr = fmt.Errorf("unknown -format %q", *format)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		return
	}

	tb := stats.NewTable("lanes", "local memory", "time(us)", "power(mW)", "EDP(nJ*s)", "")
	for _, p := range pts {
		local := fmt.Sprintf("%d banks x %d ports", p.Cfg.Partitions, p.Cfg.SpadPorts)
		if p.Cfg.Mem == soc.Cache {
			local = fmt.Sprintf("%dKB %dB/line %dp %d-way",
				p.Cfg.CacheKB, p.Cfg.CacheLineBytes, p.Cfg.CachePorts, p.Cfg.CacheAssoc)
		}
		mark := ""
		if p.Cfg == best.Cfg {
			mark = "<-- EDP optimal"
		}
		tb.Row(p.Cfg.Lanes, local, p.Res.Seconds()*1e6, p.Res.AvgPowerW*1e3,
			p.Res.EDPJs*1e9, mark)
	}
	fmt.Printf("%s, %s, %d-bit bus: %d design points (%d on Pareto frontier)\n\n",
		*bench, *mem, *busBits, len(space), len(space.ParetoFront()))
	tb.Render(os.Stdout)
}
