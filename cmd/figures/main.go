// Command figures regenerates the paper's tables and figures. Use -fig to
// select one (1, 2a, 2b, 3, 4, 6a, 6b, 7, 8, 9, 10) or "all", and -full
// for the complete Fig 3 parameter sweeps (slower; the default quick mode
// prunes sweep axes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gem5aladdin/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (1, 2a, 2b, 3, 4, 6a, 6b, 7, 8, 9, 10, all)")
	full := flag.Bool("full", false, "run the full Fig 3 parameter sweeps")
	flag.Parse()

	quick := !*full
	w := os.Stdout
	gens := map[string]func() error{
		"1":       func() error { return figures.Fig1(w, quick) },
		"2a":      func() error { return figures.Fig2a(w) },
		"2b":      func() error { return figures.Fig2b(w) },
		"3":       func() error { return figures.Fig3(w) },
		"4":       func() error { return figures.Fig4(w) },
		"5":       func() error { return figures.Fig5(w) },
		"6a":      func() error { return figures.Fig6a(w) },
		"6b":      func() error { return figures.Fig6b(w, quick) },
		"7":       func() error { return figures.Fig7(w, quick) },
		"8":       func() error { return figures.Fig8(w, quick) },
		"9":       func() error { return figures.Fig9(w, quick) },
		"10":      func() error { return figures.Fig10(w, quick) },
		"summary": func() error { return figures.Summary(w, quick) },
	}
	order := []string{"1", "2a", "2b", "3", "4", "5", "6a", "6b", "7", "8", "9", "10", "summary"}

	run := func(name string) {
		gen, ok := gens[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; have %v\n", name, order)
			os.Exit(2)
		}
		start := time.Now()
		if err := gen(); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[figure %s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *fig == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*fig)
}
