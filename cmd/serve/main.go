// Command serve runs the sweep service: an HTTP front end over the
// design-space explorer with a content-addressed result cache, so repeated
// and concurrent sweeps of the same design points simulate once.
//
//	go run ./cmd/serve -addr localhost:8347
//	curl -s localhost:8347/sweep -d '{"kernel":"spmv-crs","mem":"dma","lanes":[1,2],"partitions":[1,2]}'
//	curl -s localhost:8347/statsz
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight sweeps finish (up to
// -drain), then the worker pool exits.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gem5aladdin/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8347", "listen address")
		workers = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "concurrent sweep requests before 429 backpressure (0 = default)")
		timeout = flag.Duration("timeout", 0, "per-request budget (0 = default 2m)")
		cacheN  = flag.Int("cache", 0, "max cached design points (0 = default 65536)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	s := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheEntries:   *cacheN,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("sweep service on http://%s (POST /sweep; GET /kernels /statsz /metrics)", *addr)

	select {
	case err := <-errc:
		log.Fatal(err) // listen failure before any signal
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received; draining in-flight sweeps (up to %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Shutdown(dctx); err != nil {
		log.Printf("pool shutdown: %v", err)
	}
	log.Printf("drained")
}
