// Command serve runs the sweep service: an HTTP front end over the
// design-space explorer with a content-addressed result cache, so repeated
// and concurrent sweeps of the same design points simulate once.
//
//	go run ./cmd/serve -addr localhost:8347 -store /var/lib/sweeps
//	curl -s localhost:8347/sweep -d '{"kernel":"spmv-crs","mem":"dma","lanes":[1,2],"partitions":[1,2]}'
//	curl -s localhost:8347/jobs  -d '{"kernel":"spmv-crs","full":true}'   # long-running job, 202 + job_id
//	curl -s localhost:8347/jobs  -d '{"kernel":"spmv-crs","mem":"cache","search":{"seed":7,"budget":200}}'  # adaptive search job
//	curl -s localhost:8347/jobs/<job-id>              # poll progress
//	curl -sN localhost:8347/jobs/<job-id>/results     # NDJSON stream, tails a running job
//	curl -s localhost:8347/statsz
//	curl -s localhost:8347/metrics            # Prometheus exposition
//	curl -s localhost:8347/trace/<trace-id>   # Perfetto JSON (with -spans)
//
// With -store, every simulated point and every job manifest is persisted to
// an append-only segment log: a restarted server warm-starts its cache from
// disk and resumes any job that was still running when the process died —
// kill -9 included.
//
// Observability is opt-in: -log enables structured slog records, -spans
// turns every request into a wall-clock trace fetchable by ID, -span-out
// appends each finished span as one JSON line, and -pprof exposes the
// net/http/pprof and runtime-metrics endpoints under /debug/.
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight sweeps finish (up to
// -drain), then the worker pool exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/metrics"
	"syscall"
	"time"

	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/serve"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8347", "listen address")
		workers   = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "concurrent sweep requests before 429 backpressure (0 = default)")
		timeout   = flag.Duration("timeout", 0, "per-request budget (0 = default 2m)")
		cacheN    = flag.Int("cache", 0, "max cached design points (0 = default 65536)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		spans     = flag.Bool("spans", false, "trace every request as a span tree; GET /trace/{id} exports Perfetto JSON")
		spanOut   = flag.String("span-out", "", "append every finished span as one JSON line to this file (implies -spans)")
		slowPoint = flag.Duration("slow-point", 2*time.Second, "log a warning when one design point simulates longer than this (needs -log)")
		debug     = flag.Bool("pprof", false, "expose net/http/pprof and Go runtime metrics under /debug/")

		storeDir     = flag.String("store", "", "durable result store directory: sweep results survive restarts, interrupted jobs resume")
		pointTimeout = flag.Duration("point-timeout", 0, "per-point no-progress watchdog budget in VIRTUAL time (0 = off); a stalled point fails alone")
		pointRetries = flag.Int("point-retries", 2, "retries per point for fault-injection aborts (stalls and sanitizer hits never retry)")
		retryBackoff = flag.Duration("retry-backoff", 10*time.Millisecond, "base backoff between point retries (doubles per attempt, capped at 1s)")
		maxJobs      = flag.Int("max-jobs", 0, "concurrent running jobs before 429 (0 = default 16)")
		maxSearch    = flag.Int("max-search-budget", 0, "cap on evaluated points per adaptive-search job (0 = default 400)")
	)
	logf := report.AddLogFlags(flag.CommandLine)
	flag.Parse()

	lg, closeLog, err := logf.Logger()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeLog(); err != nil {
			log.Printf("closing log: %v", err)
		}
	}()

	var tracer *obs.SpanTracer
	if *spans || *spanOut != "" {
		var sink *os.File
		if *spanOut != "" {
			sink, err = os.Create(*spanOut)
			if err != nil {
				log.Fatal(err)
			}
			defer sink.Close()
		}
		if sink != nil {
			tracer = obs.NewSpanTracer(sink, 0)
		} else {
			tracer = obs.NewSpanTracer(nil, 0)
		}
	}

	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatalf("opening result store: %v", err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("closing store: %v", err)
			}
		}()
		stats := st.Stats()
		log.Printf("result store %s: %d records (%d bad, %d B torn tail dropped)",
			*storeDir, stats.Records, stats.BadRecords, stats.TornBytes)
	}

	s := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheEntries:   *cacheN,
		Logger:         lg,
		Spans:          tracer,
		SlowPoint:      *slowPoint,
		Store:          st,
		// The point budget is virtual time: -point-timeout 1ms arms each
		// point's watchdog with 1 ms of SIMULATED time, so the same config
		// stalls identically on any host — the property that keeps resumed
		// jobs bit-identical.
		PointBudget:       sim.Tick((*pointTimeout).Nanoseconds()) * sim.Nanosecond,
		MaxPointRetries:   *pointRetries,
		PointRetryBackoff: *retryBackoff,
		MaxJobs:           *maxJobs,
		MaxSearchBudget:   *maxSearch,
	})

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	if *debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/debug/runtime", runtimeMetrics)
	}
	hs := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("sweep service on http://%s (POST /sweep /jobs; GET /jobs/{id} /kernels /statsz /metrics /trace/{id})", *addr)
	if lg != nil {
		lg.Info("listening", "addr", *addr, "pprof", *debug, "spans", tracer != nil)
	}

	select {
	case err := <-errc:
		log.Fatal(err) // listen failure before any signal
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received; draining in-flight sweeps (up to %v)", *drain)
	if lg != nil {
		lg.LogAttrs(context.Background(), slog.LevelInfo, "signal received; draining",
			slog.String("budget", drain.String()))
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Shutdown(dctx); err != nil {
		log.Printf("pool shutdown: %v", err)
	}
	log.Printf("drained")
}

// runtimeMetrics dumps the Go runtime/metrics catalog as JSON: heap, GC,
// goroutine, and scheduler gauges a scrape can alert on without a pprof
// round trip. Uint64 histogram distributions are summarized to counts.
func runtimeMetrics(w http.ResponseWriter, r *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := make(map[string]any, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var n uint64
			for _, c := range h.Counts {
				n += c
			}
			out[s.Name] = map[string]any{"samples": n}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
