// Command machsuite lists the reimplemented MachSuite benchmarks, builds
// their dynamic traces, and verifies each against its pure-Go functional
// reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/stats"
)

func main() {
	verify := flag.Bool("verify", false, "build every trace and check functional correctness")
	export := flag.String("export", "", "directory to write serialized .trace files into")
	ob := report.AddObsFlags(flag.CommandLine, "simulate every benchmark under the default SoC config and ")
	rb := report.AddRobustFlags(flag.CommandLine)
	fb := report.AddFabricFlags(flag.CommandLine)
	logf := report.AddLogFlags(flag.CommandLine)
	flag.Parse()

	lg, closeLog, err := logf.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeLog()

	o := ob.Observer()

	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	tb := stats.NewTable("benchmark", "ops", "iterations", "in(B)", "out(B)", "critpath", "description")
	for _, k := range machsuite.All() {
		tr, err := k.Build()
		if err != nil {
			if lg != nil {
				lg.Error("functional mismatch", "bench", k.Name, "err", err.Error())
			}
			fmt.Fprintf(os.Stderr, "%s: FUNCTIONAL MISMATCH: %v\n", k.Name, err)
			os.Exit(1)
		}
		g := ddg.Build(tr)
		if lg != nil {
			lg.Info("trace built", "bench", k.Name,
				"ops", tr.NumNodes(), "critpath", g.CritPath)
		}
		if *export != "" {
			path := filepath.Join(*export, k.Name+".trace")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := tr.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if o != nil {
			// Each benchmark gets its own path/track prefix in the shared
			// registry and tracer, so one dump covers the whole suite.
			cfg := soc.DefaultConfig()
			cfg.Obs = o.Sub(k.Name)
			if err := rb.Apply(&cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if err := fb.Apply(&cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if err := cfg.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if _, err := soc.RunGraph(g, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", k.Name, err)
				os.Exit(1)
			}
		}
		in, out := tr.FootprintBytes()
		desc := k.Description
		if len(desc) > 60 {
			desc = desc[:57] + "..."
		}
		tb.Row(k.Name, tr.NumNodes(), tr.Iters, in, out, g.CritPath, desc)
	}
	tb.Render(os.Stdout)
	if *verify {
		fmt.Println("\nall benchmarks verified against pure-Go references")
	}
	if o != nil {
		if err := ob.Write(o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
