// Command machsuite lists the reimplemented MachSuite benchmarks, builds
// their dynamic traces, and verifies each against its pure-Go functional
// reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/stats"
)

func main() {
	verify := flag.Bool("verify", false, "build every trace and check functional correctness")
	export := flag.String("export", "", "directory to write serialized .trace files into")
	flag.Parse()

	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	tb := stats.NewTable("benchmark", "ops", "iterations", "in(B)", "out(B)", "critpath", "description")
	for _, k := range machsuite.All() {
		tr, err := k.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FUNCTIONAL MISMATCH: %v\n", k.Name, err)
			os.Exit(1)
		}
		g := ddg.Build(tr)
		if *export != "" {
			path := filepath.Join(*export, k.Name+".trace")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := tr.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		in, out := tr.FootprintBytes()
		desc := k.Description
		if len(desc) > 60 {
			desc = desc[:57] + "..."
		}
		tb.Row(k.Name, tr.NumNodes(), tr.Iters, in, out, g.CritPath, desc)
	}
	tb.Render(os.Stdout)
	if *verify {
		fmt.Println("\nall benchmarks verified against pure-Go references")
	}
}
