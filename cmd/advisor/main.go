// Command advisor answers the designer-facing question of Sec V: for a
// given workload, which memory system and which microarchitecture should
// the accelerator use? It sweeps both DMA- and cache-based design spaces,
// applies optional power/latency constraints, and prints a recommendation
// with the evidence.
//
// Example:
//
//	go run ./cmd/advisor -bench spmv-crs
//	go run ./cmd/advisor -bench gemm-ncubed -max-power-mw 3 -full
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/stats"
)

func main() {
	var (
		bench    = flag.String("bench", "spmv-crs", "benchmark name")
		busBits  = flag.Int("bus-bits", 32, "system bus width")
		maxPower = flag.Float64("max-power-mw", 0, "optional power budget in mW (0 = unconstrained)")
		slowdown = flag.Float64("within", 0, "optional latency target: lowest power within this factor of the fastest design (0 = off)")
		full     = flag.Bool("full", false, "full Fig 3 sweep axes")
	)
	rb := report.AddRobustFlags(flag.CommandLine)
	fb := report.AddFabricFlags(flag.CommandLine)
	logf := report.AddLogFlags(flag.CommandLine)
	flag.Parse()

	lg, closeLog, err := logf.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeLog()

	k, err := machsuite.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tr, err := k.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	kern := soc.Compile(ddg.Build(tr))

	opt := dse.QuickAxes()
	if *full {
		opt = dse.FullAxes()
	}
	base := soc.DefaultConfig()
	base.BusWidthBits = *busBits
	if err := rb.Apply(&base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := fb.Apply(&base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := base.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sweep := func(cfgs []soc.Config) dse.Space {
		space, err := dse.Sweep(context.Background(), kern, cfgs, dse.SweepOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return space
	}
	if lg != nil {
		lg.Info("advisor sweeping", "bench", *bench, "full", *full)
	}
	dmaSpace := sweep(dse.SpadConfigs(base, soc.DMA, opt.Lanes, opt.Partitions))
	cacheSpace := sweep(dse.CacheConfigs(base, opt.Lanes, opt.CacheKB,
		opt.CacheLines, opt.CachePorts, opt.CacheAssoc))
	if lg != nil {
		lg.Info("advisor swept", "dma_points", len(dmaSpace),
			"cache_points", len(cacheSpace))
	}
	all := append(append(dse.Space{}, dmaSpace...), cacheSpace...)
	if len(dmaSpace) == 0 || len(cacheSpace) == 0 {
		fmt.Fprintln(os.Stderr, "advisor: every design point in a sweep aborted (fault injection too aggressive?)")
		os.Exit(1)
	}

	pick := func(space dse.Space) (dse.Point, string, bool) {
		switch {
		case *maxPower > 0:
			p, ok := space.FastestUnderPower(*maxPower / 1e3)
			return p, fmt.Sprintf("fastest under %.1f mW", *maxPower), ok
		case *slowdown > 0:
			p, ok := space.LowestPowerWithin(*slowdown)
			return p, fmt.Sprintf("lowest power within %.2fx of fastest", *slowdown), ok
		default:
			p, ok := space.EDPOptimal()
			return p, "EDP optimal", ok
		}
	}
	best, criterion, ok := pick(all)
	if !ok {
		fmt.Printf("no design in the swept space satisfies the constraint\n")
		os.Exit(1)
	}

	describe := func(p dse.Point) string {
		if p.Cfg.Mem == soc.Cache {
			return fmt.Sprintf("cache: %d lanes, %d KB %dB/line %d ports %d-way",
				p.Cfg.Lanes, p.Cfg.CacheKB, p.Cfg.CacheLineBytes, p.Cfg.CachePorts, p.Cfg.CacheAssoc)
		}
		return fmt.Sprintf("scratchpad+DMA: %d lanes, %d banks", p.Cfg.Lanes, p.Cfg.Partitions)
	}

	fmt.Printf("%s on a %d-bit bus (%d designs evaluated, criterion: %s)\n\n",
		*bench, *busBits, len(all), criterion)
	fmt.Printf("recommended design: %s\n\n", describe(best))
	tb := stats.NewTable("metric", "recommended", "best DMA", "best cache")
	// Both spaces are non-empty (checked after the sweeps), so the optima exist.
	bd, _ := dmaSpace.EDPOptimal()
	bc, _ := cacheSpace.EDPOptimal()
	tb.Row("memory system", best.Cfg.Mem.String(), "dma", "cache")
	tb.Row("runtime (us)", best.Res.Seconds()*1e6, bd.Res.Seconds()*1e6, bc.Res.Seconds()*1e6)
	tb.Row("power (mW)", best.Res.AvgPowerW*1e3, bd.Res.AvgPowerW*1e3, bc.Res.AvgPowerW*1e3)
	tb.Row("area (mm^2)", best.Res.AreaMM2, bd.Res.AreaMM2, bc.Res.AreaMM2)
	tb.Row("EDP (nJ*s)", best.Res.EDPJs*1e9, bd.Res.EDPJs*1e9, bc.Res.EDPJs*1e9)
	tb.Render(os.Stdout)
}
