package gem5aladdin_test

import (
	"context"
	"errors"
	"fmt"

	gem5aladdin "gem5aladdin"
)

// ExampleSweep traces a small saxpy kernel, sweeps lanes x partitions over
// DMA-backed scratchpad designs, and extracts the Pareto frontier and the
// EDP-optimal point — the cmd/dse workflow, from library code.
func ExampleSweep() {
	const n = 256
	b := gem5aladdin.NewKernel("saxpy")
	x := b.Alloc("x", gem5aladdin.F64, n, gem5aladdin.In)
	y := b.Alloc("y", gem5aladdin.F64, n, gem5aladdin.InOut)
	for i := 0; i < n; i++ {
		b.SetF64(x, i, float64(i))
		b.SetF64(y, i, 1.0)
	}
	a := b.ConstF(2.0)
	for i := 0; i < n; i++ {
		b.BeginIter()
		b.Store(y, i, b.FAdd(b.FMul(a, b.Load(x, i)), b.Load(y, i)))
	}
	k := gem5aladdin.Compile(gem5aladdin.BuildGraph(b.Finish()))

	// Enumerate the design space and evaluate every point in parallel.
	cfgs := gem5aladdin.SpadConfigs(gem5aladdin.DefaultConfig(), gem5aladdin.DMA,
		[]int{1, 2, 4}, []int{1, 2, 4})
	space, err := gem5aladdin.Sweep(context.Background(), k, cfgs,
		gem5aladdin.SweepOptions{})
	if err != nil {
		panic(err)
	}

	front := gem5aladdin.ParetoFront(space)
	best, ok := gem5aladdin.EDPOptimal(space)
	if !ok {
		panic("empty design space")
	}
	onFront := false
	for _, p := range front {
		if p.Cfg == best.Cfg {
			onFront = true
		}
	}
	fmt.Printf("evaluated %d design points\n", len(space))
	fmt.Printf("frontier is non-empty and within the space: %v\n",
		len(front) > 0 && len(front) <= len(space))
	fmt.Printf("EDP optimum lies on the Pareto frontier: %v\n", onFront)
	// Output:
	// evaluated 9 design points
	// frontier is non-empty and within the space: true
	// EDP optimum lies on the Pareto frontier: true
}

// ExampleConfig_Validate shows the typed rejection of an impossible design
// point: sweep generators and services can pick out the offending field
// without string matching.
func ExampleConfig_Validate() {
	cfg := gem5aladdin.DefaultConfig()
	cfg.Mem = gem5aladdin.Cache
	cfg.CacheLineBytes = 48 // not a power of two

	err := cfg.Validate()
	var ce *gem5aladdin.ConfigError
	if errors.As(err, &ce) {
		fmt.Printf("rejected field %s (value %v)\n", ce.Field, ce.Value)
	}
	// Output:
	// rejected field CacheLineBytes (value 48)
}
