// Package gem5aladdin is a Go reproduction of gem5-Aladdin (Shao et al.,
// MICRO 2016): an SoC simulator that co-simulates pre-RTL fixed-function
// accelerators with the system they live in — DMA engines and the software
// coherence management around them, hardware-managed coherent caches,
// TLBs, a shared system bus, and DRAM — so that accelerator
// microarchitectures can be designed with system-level effects (data
// movement, coherence, contention) accounted for.
//
// # Writing a kernel
//
// Kernels are ordinary Go functions written against a Builder. Arithmetic
// helpers compute real results while recording the dynamic trace Aladdin
// schedules; BeginIter marks the loop iterations that unroll across
// datapath lanes; Alloc declares arrays with their host/accelerator
// transfer direction:
//
//	b := gem5aladdin.NewKernel("saxpy")
//	x := b.Alloc("x", gem5aladdin.F64, n, gem5aladdin.In)
//	y := b.Alloc("y", gem5aladdin.F64, n, gem5aladdin.InOut)
//	for i := 0; i < n; i++ { b.SetF64(x, i, ...) }        // host writes
//	a := b.ConstF(2.0)
//	for i := 0; i < n; i++ {
//		b.BeginIter()
//		b.Store(y, i, b.FAdd(b.FMul(a, b.Load(x, i)), b.Load(y, i)))
//	}
//	k := gem5aladdin.Compile(gem5aladdin.BuildGraph(b.Finish()))
//	result, err := gem5aladdin.Run(k, gem5aladdin.DefaultConfig())
//
// # Design spaces
//
// Compile a kernel once and sweep Configs over the shared artifact: the
// Kernel precomputes everything that does not depend on the design point
// (lane schedules, operation classes, transfer manifests), so each point
// costs only the simulation itself. Sweep, ParetoFront, and EDPOptimal
// (this package) drive the co-design studies programmatically, and cmd/dse
// does the same from the command line; the nineteen MachSuite benchmarks
// of the paper's evaluation are available through Benchmarks and
// BuildBenchmark.
package gem5aladdin

import (
	"io"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/trace"
)

// Builder records a kernel's dynamic trace while executing it
// functionally. See the package example and internal/trace for the full
// operation set.
type Builder = trace.Builder

// Trace is the recorded dynamic profile of one kernel invocation.
type Trace = trace.Trace

// Array is a kernel-visible memory region.
type Array = trace.Array

// Value is an SSA-style handle to a traced operation's result.
type Value = trace.Value

// ElemKind selects an array's element type.
type ElemKind = trace.ElemKind

// Array element types.
const (
	U8  = trace.U8
	I32 = trace.I32
	F64 = trace.F64
)

// Direction declares how an array moves between host and accelerator.
type Direction = trace.Direction

// Transfer directions.
const (
	Local = trace.Local
	In    = trace.In
	Out   = trace.Out
	InOut = trace.InOut
)

// Graph is the dynamic data dependence graph scheduled by the simulator.
type Graph = ddg.Graph

// Config is one accelerator design point plus its system context; see
// DefaultConfig for the paper's nominal system.
type Config = soc.Config

// MemKind selects the accelerator's memory system.
type MemKind = soc.MemKind

// Memory systems: standalone Aladdin, scratchpads+DMA, coherent cache, and
// an ideal single-cycle memory for decomposition studies.
const (
	Isolated = soc.Isolated
	DMA      = soc.DMA
	Cache    = soc.Cache
	Ideal    = soc.Ideal
)

// FabricConfig parameterizes the interconnect topology (Config.Fabric); the
// zero value is the round-robin bus.
type FabricConfig = soc.FabricConfig

// FabricKind selects the interconnect topology backend.
type FabricKind = soc.FabricKind

// Interconnect backends: the split-transaction round-robin bus, the
// AXI-like burst-based crossbar, and the 2D mesh NoC.
const (
	FabricBus      = soc.FabricBus
	FabricCrossbar = soc.FabricCrossbar
	FabricMesh     = soc.FabricMesh
)

// ParseFabricKind maps a fabric name ("bus", "crossbar", "mesh") to its kind.
func ParseFabricKind(s string) (FabricKind, error) { return soc.ParseFabricKind(s) }

// FabricKinds lists every interconnect backend in canonical axis order.
func FabricKinds() []FabricKind { return soc.FabricKinds() }

// TrafficConfig parameterizes the background CPU traffic generator
// (Config.Traffic): every Period ticks it issues a Bytes-sized access on the
// shared fabric, modeling host cores competing for the interconnect.
type TrafficConfig = soc.TrafficConfig

// Tick is simulated time in picoseconds (the engine's base unit).
type Tick = sim.Tick

// Time units for Tick-valued fields such as TrafficConfig.Period.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
)

// RunResult carries runtime, the flush/DMA/compute breakdown, energy,
// EDP, and per-component statistics for one simulated invocation.
type RunResult = soc.RunResult

// Breakdown is the four-way runtime decomposition of Sec IV-C.
type Breakdown = soc.Breakdown

// NewKernel starts recording a kernel trace.
func NewKernel(name string) *Builder { return trace.NewBuilder(name) }

// DefaultConfig returns the paper's nominal system configuration.
func DefaultConfig() Config { return soc.DefaultConfig() }

// BuildGraph constructs the dependence graph for a trace. Build it once,
// Compile it, and reuse the Kernel across Run calls when sweeping design
// points.
func BuildGraph(tr *Trace) *Graph { return ddg.Build(tr) }

// Kernel is the compiled, immutable form of one kernel: the dependence
// graph plus every product of it that does not depend on the design point
// (lane schedules, operation classes, DMA transfer manifests, footprints).
// Compile once per kernel; a Kernel is safe to share read-only across
// goroutines, sweeps, and repeated Run calls.
type Kernel = soc.Compiled

// Compile derives the reusable kernel artifact from a prebuilt graph.
func Compile(g *Graph) *Kernel { return soc.Compile(g) }

// Run simulates one invocation of the compiled kernel under cfg.
func Run(k *Kernel, cfg Config) (*RunResult, error) { return soc.Run(k, cfg) }

// RunTrace simulates one invocation straight from a recorded trace,
// building and compiling internally — convenient for one-shot runs; sweeps
// should Compile once instead.
func RunTrace(tr *Trace, cfg Config) (*RunResult, error) { return soc.RunTrace(tr, cfg) }

// RunGraph simulates one invocation over a prebuilt graph, compiling it
// internally.
//
// Deprecated: build the artifact once with Compile and call Run; RunGraph
// recompiles the kernel on every call.
func RunGraph(g *Graph, cfg Config) (*RunResult, error) { return soc.RunGraph(g, cfg) }

// MultiResult is the outcome of a multi-accelerator run.
type MultiResult = soc.MultiResult

// RunMulti launches several accelerators simultaneously on one shared
// bus, DRAM, and coherence fabric (the multi-accelerator SoC of the
// paper's Fig 3 diagram). System-level parameters come from the first
// config. The same Kernel may appear more than once.
func RunMulti(ks []*Kernel, cfgs []Config) (*MultiResult, error) {
	return soc.RunMulti(ks, cfgs)
}

// RepeatResult is the outcome of a repeated-invocation run.
type RepeatResult = soc.RepeatResult

// RunRepeated invokes the accelerator several times back to back; cache
// and TLB contents persist across rounds. With reuseInputs=true (resident
// weights/coefficients) a cache interface amortizes its cold misses,
// while DMA pays the full transfer each call.
func RunRepeated(k *Kernel, cfg Config, invocations int, reuseInputs bool) (*RepeatResult, error) {
	return soc.RunRepeated(k, cfg, invocations, reuseInputs)
}

// ReassociateReductions rewrites serial reduction chains (acc = acc op x)
// of length >= 3 into balanced trees, one of Aladdin's DDDG optimizations.
// It mutates the trace in place and returns the number of chains
// rewritten; memory-operation order (and so memory dependences) is
// preserved. Assumes reassociation-tolerant functional units, as HLS
// reduction pragmas do.
func ReassociateReductions(tr *Trace) int { return trace.ReassociateReductions(tr) }

// SaveTrace serializes a recorded trace so a profile can be captured once
// and re-scheduled across design points later (Aladdin's own workflow).
func SaveTrace(tr *Trace, w io.Writer) error { return tr.Encode(w) }

// LoadTrace reads a trace written by SaveTrace, revalidating its
// structural invariants.
func LoadTrace(r io.Reader) (*Trace, error) { return trace.ReadTrace(r) }

// Benchmarks lists the reimplemented MachSuite kernels.
func Benchmarks() []string { return machsuite.Names() }

// BuildBenchmark traces one MachSuite kernel on its default problem size,
// verifying functional correctness against its pure-Go reference.
func BuildBenchmark(name string) (*Trace, error) {
	k, err := machsuite.ByName(name)
	if err != nil {
		return nil, err
	}
	return k.Build()
}
