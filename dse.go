package gem5aladdin

// Design-space exploration at the root of the module: the sweep engine,
// Pareto extraction, and EDP optimization that back the paper's co-design
// studies (Figs 1, 3, 8-10), promoted from internal/dse so programs can
// sweep design points without shelling out to cmd/dse. See ExampleSweep
// for the end-to-end workflow.

import (
	"context"

	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/soc"
)

// DesignPoint is one evaluated design: the configuration and its result.
type DesignPoint = dse.Point

// DesignSpace is a set of evaluated design points. Beyond the package-level
// ParetoFront and EDPOptimal, it carries the constrained-optimization
// queries FastestUnderPower and LowestPowerWithin.
type DesignSpace = dse.Space

// SweepOptions tunes the sweep's worker pool: Workers sizes it (<= 0
// selects GOMAXPROCS; each worker owns a reusable soc.Runner, recycling
// simulation state between design points), and Progress (when non-nil)
// receives (done, total) after each completed point. The zero value is the
// default sweep.
type SweepOptions = dse.SweepOptions

// Sweep evaluates every configuration over the compiled kernel, in
// parallel across the option pool; the artifact is shared read-only by
// every worker. Each run owns a private simulation engine, so the results
// are deterministic regardless of goroutine scheduling. Cancelling ctx (or
// exceeding its deadline) stops the sweep at the next design-point
// boundary and returns ctx.Err() with no partial space. Impossible design
// points are rejected up front with a *soc.ConfigError; filter candidate
// lists with Config.Validate (as CacheConfigs does) when enumerating
// aggressively.
func Sweep(ctx context.Context, k *Kernel, cfgs []Config, opts SweepOptions) (DesignSpace, error) {
	return dse.Sweep(ctx, k, cfgs, opts)
}

// SweepN sweeps a prebuilt graph with explicit worker-pool sizing and
// progress reporting, compiling the kernel internally.
//
// Deprecated: Compile once and call Sweep with SweepOptions{Workers,
// Progress}.
func SweepN(g *Graph, cfgs []Config, workers int, progress func(done, total int)) (DesignSpace, error) {
	return dse.Sweep(context.Background(), Compile(g), cfgs, SweepOptions{Workers: workers, Progress: progress})
}

// SweepCtx is SweepN under a context, compiling the kernel internally.
//
// Deprecated: Compile once and call Sweep.
func SweepCtx(ctx context.Context, g *Graph, cfgs []Config, workers int, progress func(done, total int)) (DesignSpace, error) {
	return dse.Sweep(ctx, Compile(g), cfgs, SweepOptions{Workers: workers, Progress: progress})
}

// PointFailure describes one design point a fault-isolated sweep could not
// evaluate: the config, the failure class, and the attempts spent.
type PointFailure = dse.PointFailure

// RetryPolicy bounds how a sweep retries an aborted design point before
// recording it as failed; only fault-injection aborts are retried (stalls
// and sanitizer violations are deterministic properties of the config).
type RetryPolicy = dse.RetryPolicy

// SweepIsolated evaluates every configuration like Sweep, but degrades any
// per-point failure — robustness-layer aborts and genuine simulation errors
// alike — to a PointFailure record instead of dropping it silently or
// failing the whole sweep: the space holds the survivors, the failure list
// enumerates the rest, and only a context cancellation fails the call. This
// is the engine behind the sweep service's resumable jobs.
func SweepIsolated(ctx context.Context, k *Kernel, cfgs []Config, opts SweepOptions) (DesignSpace, []PointFailure, error) {
	return dse.SweepIsolated(ctx, k, cfgs, opts)
}

// ParetoFront returns the points of s not dominated in (runtime, power),
// sorted by runtime: the frontier the paper's Fig 8 plots.
func ParetoFront(s DesignSpace) DesignSpace { return s.ParetoFront() }

// EDPOptimal returns the point of s with the minimum energy-delay product,
// the co-design winner of Figs 1 and 10. ok is false on an empty space —
// which a fault-heavy sweep can legally produce once every poisoned point
// has been compacted away.
func EDPOptimal(s DesignSpace) (DesignPoint, bool) { return s.EDPOptimal() }

// ErrEmptySpace is the sentinel for design-space queries that need at least
// one evaluated point but found none; EDP-improvement comparisons wrap it
// when a scenario sweep comes back empty. Test with errors.Is.
var ErrEmptySpace = dse.ErrEmptySpace

// PointKey returns the content address of one design point: a hex SHA-256
// over the kernel name and the canonical encoding of cfg. Result caches
// (the sweep service's, or your own) use it to deduplicate and reuse
// simulations of identical design points.
func PointKey(kernel string, cfg Config) string { return dse.PointKey(kernel, cfg) }

// SweepAxes sizes the sweep axes; see QuickSweepAxes and FullSweepAxes.
type SweepAxes = dse.SweepAxes

// QuickSweepAxes returns pruned sweep axes for tests and fast iteration:
// lanes and memory sizes are kept, line size and associativity pin to
// their defaults.
func QuickSweepAxes() SweepAxes { return dse.QuickAxes() }

// FullSweepAxes returns the complete Fig 3 parameter table.
func FullSweepAxes() SweepAxes { return dse.FullAxes() }

// QuickSweepOptions returns the pruned sweep axes.
//
// Deprecated: renamed to QuickSweepAxes; SweepOptions now names the
// worker-pool options of Sweep.
func QuickSweepOptions() SweepAxes { return dse.QuickAxes() }

// FullSweepOptions returns the complete Fig 3 parameter table.
//
// Deprecated: renamed to FullSweepAxes.
func FullSweepOptions() SweepAxes { return dse.FullAxes() }

// SpadConfigs enumerates lanes x partitions design points for Isolated or
// DMA memory systems over the given base configuration.
func SpadConfigs(base Config, mem MemKind, lanes, partitions []int) []Config {
	return dse.SpadConfigs(base, mem, lanes, partitions)
}

// CacheConfigs enumerates cache design points (lanes x size x line x ports
// x associativity), silently skipping geometrically impossible
// combinations (e.g. 2KB/64B/8-way has too few sets).
func CacheConfigs(base Config, lanes, sizesKB, lines, ports, assocs []int) []Config {
	return dse.CacheConfigs(base, lanes, sizesKB, lines, ports, assocs)
}

// ConfigError is the typed error Config.Validate (and every Run entry
// point) reports for an impossible design point; it names the offending
// field. Recover it with errors.As.
type ConfigError = soc.ConfigError

// SearchAxis is one named dimension of a SearchSpace: a design parameter
// (by registered name — "lanes", "cache_kb", "dma_chunk", ...) and the
// ordered values it may take.
type SearchAxis = dse.SearchAxis

// SearchSpace describes a design space for adaptive search: a base config
// plus the axes the search varies. It is a superset of SweepAxes — its
// cross product routinely reaches 10^5-10^6 points, far beyond what Sweep
// can enumerate — with a stable point codec (Rank/Unrank) and a content
// fingerprint that keys resume checkpoints.
type SearchSpace = dse.SearchSpace

// SearchOptions tunes Search: the RNG seed (same seed, same space ⇒
// bit-identical evaluation sequence and front), the evaluation budget, the
// round sizes, the worker pool, and — for durable, resumable searches — a
// point cache and a checkpoint key in its store.
type SearchOptions = dse.SearchOptions

// SearchProgress is the per-round progress report Search delivers to the
// Progress callback: round number, points evaluated and actually simulated,
// and the front so far. Replayed rounds (restored from a checkpoint) are
// marked.
type SearchProgress = dse.SearchProgress

// SearchPoint is one evaluated candidate in a search: its axis-value
// indices and its objectives.
type SearchPoint = dse.SearchPoint

// SearchResult is the outcome of a Search: the recovered Pareto front as a
// materialized DesignSpace, the full evaluation archive, and the search's
// deterministic totals.
type SearchResult = dse.SearchResult

// DefaultSearchAxes returns the default large search axes for a memory
// kind: the full Fig 3 table plus system-interface parameters (bus width,
// clock, MSHRs, DMA behavior) — ~10^5 points for cache systems.
func DefaultSearchAxes(mem MemKind) []SearchAxis { return dse.DefaultSearchAxes(mem) }

// FabricAxis is the interconnect-topology search axis over every backend
// (bus, crossbar, mesh); append it to a SearchSpace's axes to let the
// search trade fabric parallelism against the other parameters.
func FabricAxis() SearchAxis { return dse.FabricAxis() }

// Search runs the adaptive Pareto-guided search over the space: a coarse
// seeded sample, then GA-style refinement that mutates configs near the
// current front, deduplicating candidates by PointKey so no point is ever
// simulated twice. The search is deterministic (seeded splitmix64) and,
// with SearchOptions.Cache and CheckpointKey set, resumable: a killed
// search rerun against the same store replays its rounds from disk and
// converges to the identical front. See DESIGN.md "Adaptive search".
func Search(ctx context.Context, k *Kernel, space SearchSpace, opts SearchOptions) (*SearchResult, error) {
	return dse.Search(ctx, k, space, opts)
}
