package cpu

import (
	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/cache"
	"gem5aladdin/internal/mem/coherence"
	"gem5aladdin/internal/sim"
)

// Hierarchy is the host CPU's private two-level cache hierarchy (the
// CPU0/CPU1 L1 + shared L2 blocks of the paper's Fig 3 SoC diagram),
// composed from the same cache model the accelerator uses: the L1 misses
// into the L2 over a private on-core link, and the L2 misses onto the
// system bus.
//
// The accelerator experiments charge CPU flush work analytically (the
// paper's measured 84 ns/line); this modeled hierarchy exists to validate
// that constant — warm it with dirty data, flush it, and compare the
// per-line cost — and to serve as a real snoop responder in coherence
// studies.
type Hierarchy struct {
	L1, L2 *cache.Cache
	link   *bus.Bus
	eng    *sim.Engine
}

// HierarchyConfig sizes the two levels and the private link.
type HierarchyConfig struct {
	L1, L2    cache.Config
	LinkBits  int       // L1<->L2 link width
	LinkClock sim.Clock // on-core clock for the link
}

// DefaultHierarchyConfig models a Cortex-A9-class core: 32 KB 4-way L1,
// 512 KB 8-way L2, 32 B lines, a 64-bit on-core link at the CPU clock.
func DefaultHierarchyConfig(cpuClock sim.Clock) HierarchyConfig {
	l1 := cache.Config{
		SizeBytes: 32 * 1024, LineBytes: 32, Assoc: 4, Ports: 2,
		MSHRs: 8, Clock: cpuClock, HitCycles: 2, SnoopLat: 10 * sim.Nanosecond,
	}
	l2 := cache.Config{
		SizeBytes: 512 * 1024, LineBytes: 32, Assoc: 8, Ports: 1,
		MSHRs: 16, Clock: cpuClock, HitCycles: 8, SnoopLat: 20 * sim.Nanosecond,
	}
	return HierarchyConfig{L1: l1, L2: l2, LinkBits: 64, LinkClock: cpuClock}
}

// cacheTarget adapts a cache into a bus.Target so cache levels chain.
type cacheTarget struct{ c *cache.Cache }

// Access implements bus.Target.
func (t cacheTarget) Access(addr uint64, n uint32, write bool, done func()) {
	t.c.Access(addr, n, write, done)
}

// NewHierarchy builds the hierarchy. The L2 joins the given coherence
// controller as peer l2Peer and misses onto sysBus; the L1 is private (its
// own single-peer controller), which models an inclusive write-back L1
// whose coherence is enforced at the L2 boundary.
func NewHierarchy(eng *sim.Engine, cfg HierarchyConfig, sysBus bus.Fabric,
	coh *coherence.Controller, l2Peer int) *Hierarchy {

	h := &Hierarchy{eng: eng}
	h.L2 = cache.New(eng, cfg.L2, sysBus, coh, l2Peer)
	priv := coherence.NewController()
	l1Peer := priv.AddPeer()
	h.link = bus.New(eng, bus.Config{WidthBits: cfg.LinkBits, Clock: cfg.LinkClock},
		cacheTarget{h.L2})
	h.L1 = cache.New(eng, cfg.L1, h.link, priv, l1Peer)
	return h
}

// Access performs one CPU load or store through the hierarchy.
func (h *Hierarchy) Access(addr uint64, size uint32, write bool, done func()) {
	h.L1.Access(addr, size, write, done)
}

// Warm writes the byte range [addr, addr+n) through the hierarchy, leaving
// it dirty in the caches — the state a host program's initialization loop
// produces. The caller drains the engine afterwards; warm-up time is not
// part of any measured interval.
func (h *Hierarchy) Warm(addr uint64, n uint32, done func()) {
	line := h.L1.Config().LineBytes
	remaining := (n + line - 1) / line
	if remaining == 0 {
		done()
		return
	}
	for off := uint32(0); off < n; off += line {
		h.L1.Access(addr+uint64(off), 4, true, func() {
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

// FlushAll writes every dirty line in both levels back to memory and
// invalidates them — the software coherence management a driver performs
// before a DMA transfer. done fires when the last writeback completes.
func (h *Hierarchy) FlushAll(done func()) {
	h.L1.FlushDirty(func() {
		h.L2.FlushDirty(done)
	})
}
