package cpu

import (
	"testing"

	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/dram"
	"gem5aladdin/internal/sim"
)

func TestInvokeTiming(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.InvokeLatency = 2 * sim.Microsecond
	c := New(eng, cfg)

	var startedAt, observedAt sim.Tick
	c.Invoke(func(signal func()) {
		startedAt = eng.Now()
		eng.After(10*sim.Microsecond, signal)
	}, func() { observedAt = eng.Now() })
	eng.Run()

	if startedAt != 2*sim.Microsecond {
		t.Fatalf("accelerator started at %v, want 2us", startedAt)
	}
	if observedAt < 12*sim.Microsecond {
		t.Fatalf("completion observed at %v, before the accelerator finished", observedAt)
	}
	// Poll granularity: 20 cycles at 667 MHz ~ 30 ns; the observation may
	// lag by at most one poll period.
	maxLag := cfg.Clock.Cycles(cfg.PollCycles)
	if observedAt > 12*sim.Microsecond+maxLag {
		t.Fatalf("poll lag too large: observed at %v", observedAt)
	}
}

func TestPollBoundaryExact(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, DefaultConfig())
	var observed sim.Tick
	c.Invoke(func(signal func()) { signal() }, func() { observed = eng.Now() })
	eng.Run()
	if observed != 0 {
		t.Fatalf("signal at a poll boundary observed at %v, want immediately", observed)
	}
}

func TestZeroClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero clock did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

func TestTrafficGenInjects(t *testing.T) {
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	b := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
	g := NewTrafficGen(eng, b, 500*sim.Nanosecond, 64)
	g.Start()
	eng.RunUntil(5 * sim.Microsecond)
	g.Stop()
	eng.Run()
	if g.Issued() < 8 {
		t.Fatalf("traffic gen issued %d transactions in 5us", g.Issued())
	}
	if b.Stats().BytesMoved != g.Issued()*64 {
		t.Fatalf("bus moved %d bytes for %d transactions", b.Stats().BytesMoved, g.Issued())
	}
}

func TestTrafficGenStops(t *testing.T) {
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	b := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
	g := NewTrafficGen(eng, b, 100*sim.Nanosecond, 32)
	g.Start()
	eng.RunUntil(1 * sim.Microsecond)
	g.Stop()
	eng.Run() // must terminate
	n := g.Issued()
	if n == 0 {
		t.Fatal("no traffic before stop")
	}
}

func TestTrafficGenInvalidPanics(t *testing.T) {
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	b := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid traffic config did not panic")
		}
	}()
	NewTrafficGen(eng, b, 0, 64)
}
