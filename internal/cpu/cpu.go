// Package cpu models the host-CPU side of an accelerator invocation
// (Sec III-E of the paper): the ioctl-style kick-off, the spin-wait on a
// coherence-visible completion flag, and — for shared-resource contention
// studies — other bus agents competing with the accelerator.
//
// The heavyweight CPU work around DMA (cache-line flushes and invalidates)
// is characterized analytically inside the DMA engine, matching how
// gem5-Aladdin folds driver behavior measured on real hardware into its
// models.
package cpu

import (
	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// Config describes invocation timing.
type Config struct {
	Clock sim.Clock
	// InvokeLatency is the ioctl/driver path from the user program to the
	// accelerator starting (device file descriptor dispatch, command
	// decode).
	InvokeLatency sim.Tick
	// PollCycles is the spin-wait loop length: the CPU observes the
	// accelerator's completion-flag update at the next poll boundary.
	PollCycles uint64
}

// DefaultConfig returns a 667 MHz Cortex-A9-class host.
func DefaultConfig() Config {
	return Config{
		Clock:         sim.NewClockHz(667e6),
		InvokeLatency: 0,
		PollCycles:    20,
	}
}

// CPU is the host driver.
type CPU struct {
	cfg         Config
	eng         *sim.Engine
	invocations uint64
}

// New builds a CPU model.
func New(eng *sim.Engine, cfg Config) *CPU {
	if cfg.Clock.Period == 0 {
		panic("cpu: zero clock period")
	}
	return &CPU{cfg: cfg, eng: eng}
}

// Invocations reports how many accelerator calls the driver has issued.
func (c *CPU) Invocations() uint64 { return c.invocations }

// RegisterStats registers the host-driver counters under prefix.
func (c *CPU) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".invocations", "accelerator calls issued", c.Invocations)
}

// Invoke runs one accelerator call: after the ioctl latency it calls start,
// passing a completion function the accelerator signals when finished
// (the shared-pointer write after its mfence). observed fires when the
// spin-waiting CPU notices the flag, which is the end-to-end latency a
// caller measures.
func (c *CPU) Invoke(start func(signal func()), observed func()) {
	c.invocations++
	c.eng.After(c.cfg.InvokeLatency, func() {
		start(func() {
			delay := c.pollDelay()
			c.eng.After(delay, observed)
		})
	})
}

// pollDelay returns the time until the next spin-wait poll boundary.
func (c *CPU) pollDelay() sim.Tick {
	period := c.cfg.Clock.Cycles(c.cfg.PollCycles)
	if period == 0 {
		return 0
	}
	now := c.eng.Now()
	if r := now % period; r != 0 {
		return period - r
	}
	return 0
}

// TrafficGen is a background bus master standing in for the other agents
// of a loaded SoC (Sec IV-A, "shared resource contention"). It issues a
// fixed-size transaction every Period ticks.
type TrafficGen struct {
	eng    *sim.Engine
	bus    bus.Fabric
	master int

	Period sim.Tick
	Bytes  uint32
	Write  bool

	addr    uint64
	stopped bool
	issued  uint64
	stepEv  *sim.Event // recurring injection callback, bound once
	doneFn  func()     // no-op completion shared by every injected access
}

// NewTrafficGen registers a background master on b.
func NewTrafficGen(eng *sim.Engine, b bus.Fabric, period sim.Tick, bytes uint32) *TrafficGen {
	if period == 0 || bytes == 0 {
		panic("cpu: invalid traffic generator parameters")
	}
	g := &TrafficGen{
		eng: eng, bus: b, master: b.RegisterMaster(),
		Period: period, Bytes: bytes,
		addr:   0x4000_0000, // away from accelerator data
		doneFn: func() {},
	}
	g.stepEv = sim.NewEvent(g.step)
	return g
}

// Start begins injecting traffic.
func (g *TrafficGen) Start() {
	g.stopped = false
	g.eng.AfterEvent(g.Period, g.stepEv)
}

// Stop halts injection after the current transaction.
func (g *TrafficGen) Stop() { g.stopped = true }

// Issued reports how many transactions the generator has injected.
func (g *TrafficGen) Issued() uint64 { return g.issued }

// RegisterStats registers the traffic-generator counters under prefix.
func (g *TrafficGen) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".transactions", "background transactions injected", g.Issued)
	reg.CounterFunc(prefix+".bytes_injected", "background bytes injected",
		func() uint64 { return g.issued * uint64(g.Bytes) })
}

func (g *TrafficGen) step() {
	if g.stopped {
		return
	}
	g.issued++
	g.addr += uint64(g.Bytes)
	g.bus.Access(g.master, g.addr, g.Bytes, g.Write, g.doneFn)
	g.eng.AfterEvent(g.Period, g.stepEv)
}
