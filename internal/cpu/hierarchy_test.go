package cpu

import (
	"testing"

	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/coherence"
	"gem5aladdin/internal/mem/dram"
	"gem5aladdin/internal/sim"
)

func newHierarchy(t *testing.T) (*sim.Engine, *Hierarchy) {
	t.Helper()
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	sysBus := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
	coh := coherence.NewController()
	peer := coh.AddPeer()
	cpuClock := sim.NewClockHz(667e6)
	return eng, NewHierarchy(eng, DefaultHierarchyConfig(cpuClock), sysBus, coh, peer)
}

func TestHierarchyL1HitFasterThanL2(t *testing.T) {
	eng, h := newHierarchy(t)
	access := func(addr uint64) sim.Tick {
		start := eng.Now()
		var end sim.Tick
		h.Access(addr, 4, false, func() { end = eng.Now() })
		eng.Run()
		return end - start
	}
	cold := access(0x1000) // misses both levels, goes to DRAM
	warm := access(0x1000) // L1 hit
	if warm >= cold {
		t.Fatalf("L1 hit (%v) not faster than cold miss (%v)", warm, cold)
	}
	if warm > 10*sim.Nanosecond {
		t.Fatalf("L1 hit latency %v too slow", warm)
	}
}

func TestHierarchyL2CatchesL1Evictions(t *testing.T) {
	eng, h := newHierarchy(t)
	// Touch a span larger than L1 (32 KB) but smaller than L2 (512 KB):
	// re-touching the start must be an L2 hit, far cheaper than DRAM.
	span := uint64(64 * 1024)
	done := 0
	for off := uint64(0); off < span; off += 32 {
		h.Access(off, 4, false, func() { done++ })
	}
	eng.Run()
	start := eng.Now()
	var end sim.Tick
	h.Access(0, 4, false, func() { end = eng.Now() })
	eng.Run()
	lat := end - start
	st1 := h.L1.Stats()
	if st1.Misses == 0 {
		t.Fatal("L1 never missed over a 64KB span")
	}
	// The retouch: L1 miss (evicted), L2 hit. Must be well under a DRAM
	// round trip (~90ns+).
	if lat > 60*sim.Nanosecond {
		t.Fatalf("L2 hit latency %v looks like a DRAM access", lat)
	}
}

func TestHierarchyWarmThenFlush(t *testing.T) {
	eng, h := newHierarchy(t)
	const bytes = 16 * 1024 // 512 lines
	warmed := false
	h.Warm(0, bytes, func() { warmed = true })
	eng.Run()
	if !warmed {
		t.Fatal("warm never completed")
	}

	start := eng.Now()
	var end sim.Tick
	h.FlushAll(func() { end = eng.Now() })
	eng.Run()
	if end == 0 {
		t.Fatal("flush never completed")
	}
	lines := float64(bytes / 32)
	perLine := (end - start).Nanos() / lines
	// The paper's characterized constant is 84 ns/line on the A9. The
	// modeled hierarchy (L1 writeback into L2, L2 writeback over a 32-bit
	// 100 MHz bus into DRAM) should land in the same regime — this is the
	// validation of the analytic flush model.
	if perLine < 30 || perLine > 200 {
		t.Fatalf("modeled flush = %.1f ns/line, out of the 84 ns/line regime", perLine)
	}
	t.Logf("modeled flush cost: %.1f ns/line (paper constant: 84)", perLine)

	// All data must have reached DRAM: re-reading is a full miss.
	st2Before := h.L2.Stats().Misses
	var relat sim.Tick
	s2 := eng.Now()
	h.Access(0, 4, false, func() { relat = eng.Now() - s2 })
	eng.Run()
	if h.L2.Stats().Misses != st2Before+1 {
		t.Fatal("flushed line still resident in L2")
	}
	if relat < 50*sim.Nanosecond {
		t.Fatalf("post-flush access latency %v too fast for DRAM", relat)
	}
}

func TestHierarchyWarmZeroBytes(t *testing.T) {
	eng, h := newHierarchy(t)
	called := false
	h.Warm(0, 0, func() { called = true })
	eng.Run()
	if !called {
		t.Fatal("zero-byte warm never completed")
	}
}
