// Package sanitize implements a runtime MOESI invariant checker: a sanitizer
// that rides on the coherence controller's Observer hook and validates, after
// every protocol action, that the directory is still in a legal state and
// that every valid copy of a line holds the latest data.
//
// Data consistency is checked against a shadow functional memory of version
// numbers: each line has a global version, bumped on every write, and each
// peer records which version its copy holds. A read hit against a stale
// version, or a surviving sharer after an invalidating write, is a protocol
// bug — the kind that corrupts figures silently. The checker fails fast:
// the first violation is recorded (sticky), reported through OnViolation
// (typically wired to sim.Engine.Abort), and accompanied by a dump of the
// recent transaction history so the offending interleaving is reconstructible
// from the error alone.
//
// The checker is pure bookkeeping over line addresses and states; it never
// influences protocol decisions, so enabling it cannot change simulated
// timing — only detect when the model has gone wrong.
package sanitize

import (
	"fmt"
	"strings"

	"gem5aladdin/internal/mem/coherence"
	"gem5aladdin/internal/obs"
)

// historyLen bounds the transaction-history ring included in violation
// dumps. 64 transactions is enough to reconstruct any single-line
// interleaving this protocol can produce.
const historyLen = 64

// txn is one observed protocol action, kept for the history dump.
type txn struct {
	seq  uint64
	peer int
	op   coherence.Op
	line uint64
	res  coherence.Result
}

func (t txn) String() string {
	return fmt.Sprintf("#%d peer%d %s line %#x -> %s (src=%d hit=%v inv=%d wb=%v)",
		t.seq, t.peer, t.op, t.line, t.res.NewState,
		t.res.Src, t.res.WasHit, t.res.Invalidations, t.res.Writeback)
}

// Violation is the sanitizer's failure report: which invariant broke, on
// which action, plus the recent transaction history.
type Violation struct {
	// Invariant names the broken rule (e.g. "single-writer", "stale-sharer").
	Invariant string
	// Detail describes the concrete violation.
	Detail string
	// Txn is the action that exposed the violation.
	Txn string
	// History lists the most recent transactions, oldest first.
	History []string
}

// Error renders the violation with its history dump.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sanitize: MOESI invariant %q violated: %s\n  at: %s",
		v.Invariant, v.Detail, v.Txn)
	if len(v.History) > 0 {
		fmt.Fprintf(&b, "\n  last %d transactions:", len(v.History))
		for _, h := range v.History {
			fmt.Fprintf(&b, "\n    %s", h)
		}
	}
	return b.String()
}

// Checker is the runtime sanitizer. Attach it with Attach; it is not safe
// for concurrent use (the simulator is single-threaded by design).
type Checker struct {
	ctl *coherence.Controller

	// version is the shadow functional memory: the current version of each
	// line's data, bumped on every write.
	version map[uint64]uint64
	// held[p] maps line -> the version peer p's copy contains. A peer whose
	// copy is valid must always hold version[line].
	held []map[uint64]uint64

	seq     uint64
	history [historyLen]txn
	histLen int

	checks uint64
	err    *Violation

	// OnViolation, when non-nil, is called once with the first violation
	// (typically wired to sim.Engine.Abort so the run fails fast).
	OnViolation func(*Violation)
}

// Attach builds a Checker and installs it as the controller's Observer.
func Attach(ctl *coherence.Controller) *Checker {
	c := &Checker{
		ctl:     ctl,
		version: make(map[uint64]uint64),
	}
	ctl.Observer = c.observe
	return c
}

// Err returns the first violation, or nil if the protocol has been clean.
func (c *Checker) Err() error {
	if c.err == nil {
		return nil
	}
	return c.err
}

// Checks reports how many protocol actions have been validated.
func (c *Checker) Checks() uint64 { return c.checks }

// RegisterStats registers the sanitizer's counters under prefix.
func (c *Checker) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".checks", "MOESI protocol actions validated", func() uint64 { return c.checks })
	reg.CounterFunc(prefix+".violations", "MOESI invariant violations detected", func() uint64 {
		if c.err != nil {
			return 1
		}
		return 0
	})
}

// heldMap returns (lazily creating) peer p's version map.
func (c *Checker) heldMap(p int) map[uint64]uint64 {
	for len(c.held) <= p {
		c.held = append(c.held, make(map[uint64]uint64))
	}
	return c.held[p]
}

func (c *Checker) record(t txn) {
	c.history[int(c.seq)%historyLen] = t
	if c.histLen < historyLen {
		c.histLen++
	}
}

func (c *Checker) dumpHistory() []string {
	out := make([]string, 0, c.histLen)
	start := c.seq - uint64(c.histLen)
	for i := 0; i < c.histLen; i++ {
		out = append(out, c.history[int(start+uint64(i))%historyLen].String())
	}
	return out
}

// fail records the first violation and fires OnViolation.
func (c *Checker) fail(t txn, invariant, format string, args ...any) {
	if c.err != nil {
		return
	}
	c.err = &Violation{
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
		Txn:       t.String(),
		History:   c.dumpHistory(),
	}
	if c.OnViolation != nil {
		c.OnViolation(c.err)
	}
}

// observe is the coherence.Controller Observer hook.
func (c *Checker) observe(peer int, op coherence.Op, line uint64, res coherence.Result) {
	if c.err != nil {
		return // fail fast: one violation poisons the run; stop checking
	}
	c.checks++
	t := txn{seq: c.seq, peer: peer, op: op, line: line, res: res}
	c.seq++
	c.record(t)

	// Data-consistency bookkeeping precedes the directory checks: a read
	// hit must be validated against the version held BEFORE this action, a
	// miss fill or write installs the (possibly new) current version.
	hm := c.heldMap(peer)
	cur := c.version[line]
	switch op {
	case coherence.OpRead:
		if res.WasHit {
			if have, ok := hm[line]; !ok || have != cur {
				c.fail(t, "stale-data",
					"peer%d read hit on line %#x holding version %d, current is %d",
					peer, line, hm[line], cur)
				return
			}
		} else {
			// Miss fill: the supplier (cache or memory) provides the
			// current data.
			hm[line] = cur
		}
	case coherence.OpWrite:
		if res.WasHit && res.NewState == coherence.Modified && res.Invalidations == 0 {
			// Upgrade in place: the local copy must have been current.
			if have, ok := hm[line]; ok && have != cur {
				c.fail(t, "stale-data",
					"peer%d write upgrade on line %#x holding version %d, current is %d",
					peer, line, have, cur)
				return
			}
		}
		// The write produces a new version; the writer holds it, every
		// other peer's record is dropped with its invalidated copy.
		cur++
		c.version[line] = cur
		for q := range c.held {
			if q != peer {
				delete(c.held[q], line)
			}
		}
		hm[line] = cur
	case coherence.OpEvict:
		delete(hm, line)
	}

	c.checkLine(t, line)
}

// checkLine validates the directory invariants for one line after an action.
func (c *Checker) checkLine(t txn, line uint64) {
	states := c.ctl.Copies(line)
	var mCount, eCount, oCount, valid int
	for _, s := range states {
		switch s {
		case coherence.Modified:
			mCount++
		case coherence.Exclusive:
			eCount++
		case coherence.Owned:
			oCount++
		}
		if s.Valid() {
			valid++
		}
	}
	switch {
	case mCount > 1:
		c.fail(t, "single-writer", "line %#x has %d Modified copies (%s)",
			line, mCount, fmtStates(states))
	case oCount > 1:
		c.fail(t, "single-owner", "line %#x has %d Owned copies (%s)",
			line, oCount, fmtStates(states))
	case mCount+oCount > 1:
		c.fail(t, "single-owner", "line %#x has both M and O copies (%s)",
			line, fmtStates(states))
	case eCount > 1:
		c.fail(t, "single-writer", "line %#x has %d Exclusive copies (%s)",
			line, eCount, fmtStates(states))
	case (mCount == 1 || eCount == 1) && valid > 1:
		c.fail(t, "exclusive-sole-copy", "line %#x in M/E with %d total copies (%s)",
			line, valid, fmtStates(states))
	case t.op == coherence.OpWrite && t.res.Invalidations > 0 && valid > 1:
		c.fail(t, "stale-sharer",
			"line %#x still has %d copies after invalidating write (%s)",
			line, valid, fmtStates(states))
	}
}

// CheckFinal sweeps the whole directory (every line, every peer) once, for
// end-of-run validation, and re-verifies the shadow version bookkeeping.
func (c *Checker) CheckFinal() error {
	if c.err != nil {
		return c.err
	}
	if err := c.ctl.CheckInvariants(); err != nil {
		c.err = &Violation{
			Invariant: "final-sweep",
			Detail:    err.Error(),
			Txn:       "(end of run)",
			History:   c.dumpHistory(),
		}
		return c.err
	}
	// Every valid copy must hold the current shadow version.
	for p := 0; p < len(c.held); p++ {
		for line, have := range c.held[p] {
			if !c.ctl.StateOf(p, line).Valid() {
				continue
			}
			if cur := c.version[line]; have != cur {
				c.err = &Violation{
					Invariant: "stale-data",
					Detail: fmt.Sprintf("peer%d ends with line %#x at version %d, current is %d",
						p, line, have, cur),
					Txn:     "(end of run)",
					History: c.dumpHistory(),
				}
				return c.err
			}
		}
	}
	return nil
}

func fmtStates(states []coherence.State) string {
	var b strings.Builder
	for p, s := range states {
		if p > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "peer%d=%s", p, s)
	}
	return b.String()
}
