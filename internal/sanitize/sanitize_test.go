package sanitize

import (
	"strings"
	"testing"

	"gem5aladdin/internal/mem/coherence"
)

// newPair returns a two-peer controller with an attached checker.
func newPair(t *testing.T) (*coherence.Controller, *Checker) {
	t.Helper()
	ctl := coherence.NewController()
	ctl.AddPeer()
	ctl.AddPeer()
	return ctl, Attach(ctl)
}

func TestCleanProtocolPasses(t *testing.T) {
	ctl, chk := newPair(t)
	const line = 0x40
	// A representative MOESI exercise: fill exclusive, share, upgrade,
	// snoop-share the dirty line, invalidate again, evict.
	ctl.Read(0, line)  // p0: E
	ctl.Read(1, line)  // p0: S, p1: S
	ctl.Write(1, line) // p1: M, p0 invalidated
	ctl.Read(0, line)  // p1: O supplies, p0: S
	ctl.Write(0, line) // p0: M, p1 invalidated
	ctl.Evict(0, line) // writeback
	if err := chk.Err(); err != nil {
		t.Fatalf("clean protocol flagged: %v", err)
	}
	if err := chk.CheckFinal(); err != nil {
		t.Fatalf("final sweep flagged: %v", err)
	}
	if chk.Checks() != 6 {
		t.Fatalf("checks = %d, want 6", chk.Checks())
	}
}

func TestDoubleModifiedCaught(t *testing.T) {
	ctl, chk := newPair(t)
	const line = 0x80
	ctl.Write(0, line) // p0: M
	// Corrupt the directory: a second Modified copy appears out of nowhere.
	ctl.ForceState(1, line, coherence.Modified)
	ctl.Read(1, line) // hit on the forged copy triggers the sweep
	v := requireViolation(t, chk)
	if v.Invariant != "single-writer" && v.Invariant != "stale-data" {
		t.Fatalf("invariant %q, want single-writer or stale-data", v.Invariant)
	}
}

func TestStaleSharerCaught(t *testing.T) {
	ctl, chk := newPair(t)
	const line = 0xc0
	ctl.Read(0, line)
	ctl.Read(1, line) // both Shared
	// Sabotage Write's invalidation: restore p0's copy behind the protocol's
	// back, then have the sanitizer see a hit on it while p1 holds M.
	ctl.Write(1, line)
	ctl.ForceState(0, line, coherence.Shared)
	ctl.Read(1, line) // p1 hit; sweep sees M+S coexisting
	v := requireViolation(t, chk)
	if v.Invariant != "exclusive-sole-copy" {
		t.Fatalf("invariant %q, want exclusive-sole-copy", v.Invariant)
	}
}

func TestStaleDataCaught(t *testing.T) {
	ctl, chk := newPair(t)
	const line = 0x100
	ctl.Read(0, line)  // p0 fills at version 0
	ctl.Write(1, line) // version 1; p0's record dropped with its copy
	// Resurrect p0's stale copy and read it: version bookkeeping must object.
	ctl.ForceState(1, line, coherence.Invalid)
	ctl.ForceState(0, line, coherence.Shared)
	ctl.Read(0, line) // hit on a copy the checker knows is stale
	v := requireViolation(t, chk)
	if v.Invariant != "stale-data" {
		t.Fatalf("invariant %q, want stale-data", v.Invariant)
	}
}

func TestFinalSweepCatchesCorruption(t *testing.T) {
	ctl, chk := newPair(t)
	const line = 0x140
	ctl.Read(0, line)
	// Corrupt after the last transaction: only CheckFinal can see it.
	ctl.ForceState(1, line, coherence.Modified)
	if err := chk.Err(); err != nil {
		t.Fatalf("premature violation: %v", err)
	}
	err := chk.CheckFinal()
	if err == nil {
		t.Fatalf("final sweep missed directory corruption")
	}
	if !strings.Contains(err.Error(), "final-sweep") {
		t.Fatalf("error %q does not name the final sweep", err)
	}
}

func TestFailFastAndCallback(t *testing.T) {
	ctl, chk := newPair(t)
	var fired int
	chk.OnViolation = func(v *Violation) { fired++ }
	const line = 0x180
	ctl.Write(0, line)
	ctl.ForceState(1, line, coherence.Modified)
	ctl.Read(0, line) // first violation
	ctl.Read(0, line) // checker is poisoned; must not re-fire
	if fired != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", fired)
	}
	first := chk.Err()
	ctl.Read(1, line)
	if chk.Err() != first {
		t.Fatalf("violation not sticky")
	}
	if chk.CheckFinal() != first {
		t.Fatalf("CheckFinal must return the original violation")
	}
}

func TestViolationDumpHasHistory(t *testing.T) {
	ctl, chk := newPair(t)
	const line = 0x1c0
	ctl.Read(0, line)
	ctl.Read(1, line)
	ctl.Write(0, line)
	ctl.ForceState(1, line, coherence.Modified)
	ctl.Read(0, line)
	v := requireViolation(t, chk)
	if len(v.History) == 0 {
		t.Fatalf("violation carries no history")
	}
	msg := v.Error()
	for _, frag := range []string{"MOESI invariant", "last", "transactions:", "peer0"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("violation message %q missing %q", msg, frag)
		}
	}
}

func requireViolation(t *testing.T, chk *Checker) *Violation {
	t.Helper()
	err := chk.Err()
	if err == nil {
		t.Fatalf("expected a violation, protocol passed")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("Err() = %T, want *Violation", err)
	}
	return v
}
