package soc

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/sim"
)

// TestRobustnessKnobsDoNotPerturbTiming pins the bit-identity acceptance
// criterion: enabling the watchdog or the sanitizer (or a fault config that
// corrects everything transparently) must not move a single cycle.
func TestRobustnessKnobsDoNotPerturbTiming(t *testing.T) {
	g := streamKernel(256)

	base := DefaultConfig()
	clean := mustRun(t, g, base)

	guarded := base
	guarded.WatchdogTicks = sim.Tick(1e15)
	if r := mustRun(t, g, guarded); r.Cycles != clean.Cycles || r.Runtime != clean.Runtime {
		t.Fatalf("watchdog budget perturbed timing: %d vs %d cycles", r.Cycles, clean.Cycles)
	}

	// ECC faults are corrected in-line by SECDED; they add counters and log
	// records but zero latency, so even probability-1 injection is invisible
	// in the cycle count.
	ecc := base
	ecc.Faults = fault.Config{Seed: 11, DRAMBitProb: 1, SpadBitProb: 1, DoubleBitFrac: 0.25}
	r := mustRun(t, g, ecc)
	if r.Cycles != clean.Cycles || r.Runtime != clean.Runtime {
		t.Fatalf("ECC injection perturbed timing: %d vs %d cycles", r.Cycles, clean.Cycles)
	}
	if r.Faults.Injected == 0 || r.Faults.CorrectedSingles == 0 || r.Faults.DetectedDoubles == 0 {
		t.Fatalf("probability-1 ECC injection recorded nothing: %+v", r.Faults)
	}
	if len(r.FaultLog) == 0 {
		t.Fatalf("fault log empty")
	}

	// Sanitizer on a cache run: pure bookkeeping, identical cycles.
	cc := base
	cc.Mem = Cache
	cleanCache := mustRun(t, g, cc)
	cc.Sanitize = true
	if r := mustRun(t, g, cc); r.Cycles != cleanCache.Cycles {
		t.Fatalf("sanitizer perturbed timing: %d vs %d cycles", r.Cycles, cleanCache.Cycles)
	}
}

// TestSeededFaultsReproducible pins the reproducibility acceptance
// criterion: the same seed yields an identical fault log, identical
// recovery stats, and an identical cycle count; a different seed does not.
func TestSeededFaultsReproducible(t *testing.T) {
	g := streamKernel(256)
	// Cache mode: every miss is its own bus transaction, so the NACK stream
	// gets hundreds of draws instead of the DMA path's two.
	cfg := DefaultConfig()
	cfg.Mem = Cache
	cfg.Faults = fault.Config{Seed: 42, DRAMBitProb: 0.01, CacheBitProb: 0.001,
		DoubleBitFrac: 0.1, BusNackProb: 0.2, BusRetryLimit: 8,
		BusBackoff: 10 * sim.Nanosecond}

	a := mustRun(t, g, cfg)
	b := mustRun(t, g, cfg)
	if a.Cycles != b.Cycles || a.Runtime != b.Runtime {
		t.Fatalf("same seed, different cycles: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Faults != b.Faults {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.Faults, b.Faults)
	}
	if !reflect.DeepEqual(a.FaultLog, b.FaultLog) {
		t.Fatalf("same seed, different fault logs (%d vs %d records)",
			len(a.FaultLog), len(b.FaultLog))
	}
	if a.Faults.BusNacks == 0 || a.Faults.BusRetries == 0 {
		t.Fatalf("NACK config injected nothing: %+v", a.Faults)
	}
	if a.Faults.BusDrops != 0 {
		t.Fatalf("8 retries at p=0.2 should never exhaust: %+v", a.Faults)
	}

	cfg.Faults.Seed = 43
	c := mustRun(t, g, cfg)
	if reflect.DeepEqual(a.FaultLog, c.FaultLog) && a.Faults == c.Faults {
		t.Fatalf("seeds 42 and 43 produced identical fault activity")
	}

	// NACK-and-retry cycles are not free: the faulted run must be slower
	// than the clean one.
	cleanCfg := cfg
	cleanCfg.Faults = fault.Config{}
	clean := mustRun(t, g, cleanCfg)
	if a.Runtime <= clean.Runtime {
		t.Fatalf("bus NACKs did not cost time: %v <= %v", a.Runtime, clean.Runtime)
	}
}

// TestDMATimeoutRecovers drives bus drops hard enough that descriptors time
// out and are reissued, and checks the transfer still completes.
func TestDMATimeoutRecovers(t *testing.T) {
	g := streamKernel(128)
	// A DMA run is only a handful of bus transactions (one address phase per
	// streamed descriptor), so the NACK probability must be high for drops
	// to be certain: at p=0.9 with zero bus retries nearly every attempt is
	// dropped, and each chunk needs ~10 timeout-driven reissues to get
	// through. 100 DMA retries puts the failure odds below 1e-4 per chunk.
	cfg := DefaultConfig()
	cfg.Faults = fault.Config{Seed: 5, BusNackProb: 0.9, BusRetryLimit: 0,
		BusBackoff: 10 * sim.Nanosecond,
		DMATimeout: 100000 * sim.Nanosecond, DMARetries: 100}
	r := mustRun(t, g, cfg)
	if r.Faults.BusDrops == 0 {
		t.Fatalf("retry limit 0 at p=0.9 should drop transactions: %+v", r.Faults)
	}
	if r.Faults.DMATimeouts == 0 || r.Faults.DMARetries == 0 {
		t.Fatalf("dropped descriptors should time out and retry: %+v", r.Faults)
	}
	if r.Faults.DMAAborts != 0 {
		t.Fatalf("100 retries should always recover: %+v", r.Faults)
	}
	if r.Faults.Recovered() == 0 {
		t.Fatalf("recovery counter empty: %+v", r.Faults)
	}
}

// TestWatchdogCatchesWedgedTransfer pins the wedge acceptance criterion:
// with every bus grant NACKed and zero retries, the first DMA descriptor is
// dropped, its completion never fires, and the quiesced run terminates with
// a structured diagnostic naming the stuck components instead of returning
// a bogus result.
func TestWatchdogCatchesWedgedTransfer(t *testing.T) {
	g := streamKernel(64)
	cfg := DefaultConfig()
	// Baseline DMA: compute starts only from the transfer-complete callback,
	// so a dropped descriptor leaves a drained queue with work in flight (the
	// lost-callback failure mode). Triggered compute instead polls ready bits
	// every cycle and is caught by the tick budget, tested below.
	cfg.PipelinedDMA = false
	cfg.DMATriggered = false
	cfg.Faults = fault.Config{Seed: 1, BusNackProb: 1, BusRetryLimit: 0,
		BusBackoff: 10 * sim.Nanosecond}
	res, err := RunGraph(g, cfg)
	if err == nil {
		t.Fatalf("wedged run returned a result: %+v", res)
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("error %v does not wrap ErrAborted", err)
	}
	var se *sim.StallError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not carry a *sim.StallError", err)
	}
	if se.Reason != "event queue quiesced with work in flight" {
		t.Fatalf("reason %q", se.Reason)
	}
	found := false
	for _, it := range se.Items {
		if strings.Contains(it.Name, "dma") && it.InFlight > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostic does not list the stuck DMA engine: %v", err)
	}
}

// TestWatchdogTickBudget pins the livelock guard: a tick budget the run
// cannot meet aborts with a budget StallError instead of running forever.
func TestWatchdogTickBudget(t *testing.T) {
	g := streamKernel(256)
	cfg := DefaultConfig()
	cfg.WatchdogTicks = 10 // ten picoseconds: no transfer can finish
	_, err := RunGraph(g, cfg)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("error %v does not wrap ErrAborted", err)
	}
	var se *sim.StallError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not carry a *sim.StallError", err)
	}
	if !strings.Contains(se.Reason, "tick budget") {
		t.Fatalf("reason %q", se.Reason)
	}
}

// TestWatchdogBudgetCatchesLivelock pins the other wedge shape: with
// DMA-triggered compute the datapath polls its ready bits every cycle, so a
// dropped descriptor livelocks the run (the queue never drains) and only
// the tick budget can stop it — with the stuck DMA state in the diagnostic.
func TestWatchdogBudgetCatchesLivelock(t *testing.T) {
	g := streamKernel(64)
	cfg := DefaultConfig() // PipelinedDMA + DMATriggered on
	cfg.Faults = fault.Config{Seed: 1, BusNackProb: 1, BusRetryLimit: 0,
		BusBackoff: 10 * sim.Nanosecond}
	cfg.WatchdogTicks = sim.Tick(1e9) // 1 ms of virtual time, never reached cleanly
	_, err := RunGraph(g, cfg)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("error %v does not wrap ErrAborted", err)
	}
	var se *sim.StallError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not carry a *sim.StallError", err)
	}
	if !strings.Contains(se.Reason, "tick budget") {
		t.Fatalf("reason %q", se.Reason)
	}
	found := false
	for _, it := range se.Items {
		if strings.Contains(it.Name, "dma") && it.InFlight > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostic does not list the stuck DMA engine: %v", err)
	}
}

// TestDMAAbortSurfacesError exhausts DMA retries (every attempt is dropped
// on the bus) and checks the abort arrives as a wrapped error, not a panic.
func TestDMAAbortSurfacesError(t *testing.T) {
	g := streamKernel(64)
	cfg := DefaultConfig()
	cfg.Faults = fault.Config{Seed: 1, BusNackProb: 1, BusRetryLimit: 0,
		BusBackoff: 10 * sim.Nanosecond,
		DMATimeout: 1000 * sim.Nanosecond, DMARetries: 2}
	_, err := RunGraph(g, cfg)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("error %v does not wrap ErrAborted", err)
	}
	if !strings.Contains(err.Error(), "dma") {
		t.Fatalf("abort %q does not name the DMA engine", err)
	}
}

// TestSanitizeMachSuite is the tier-2 sanitizer soak: every MachSuite
// kernel, simulated end to end on the coherent cache memory system with the
// MOESI sanitizer attached, must complete without a violation.
func TestSanitizeMachSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 soak; skipped in -short")
	}
	for _, k := range machsuite.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			tr, err := k.Build()
			if err != nil {
				t.Fatal(err)
			}
			g := ddg.Build(tr)
			cfg := DefaultConfig()
			cfg.Mem = Cache
			cfg.Sanitize = true
			if _, err := RunGraph(g, cfg); err != nil {
				t.Fatalf("sanitizer violation: %v", err)
			}
			// The DMA path exercises FlushLine and coherent streaming too.
			cfg.Mem = DMA
			if _, err := RunGraph(g, cfg); err != nil {
				t.Fatalf("sanitizer violation (dma): %v", err)
			}
		})
	}
}
