package soc

import (
	"testing"

	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/obs"
)

// TestProfileAttributionExactOnAllKernels is the cycle-attribution
// regression gate: for every MachSuite kernel, under both DMA and cache
// memory systems, the profiler's buckets must sum bit-identically to the
// total simulated cycles — no tick unaccounted, none double-counted.
func TestProfileAttributionExactOnAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	for _, name := range machsuite.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := kernelGraph(t, name)
			for _, kind := range []MemKind{DMA, Cache} {
				cfg := DefaultConfig()
				cfg.Mem = kind
				res, att, err := ProfileRun(Compile(g), cfg)
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if att.Total != uint64(res.Runtime) {
					t.Fatalf("%v: attributed total %d != runtime %d",
						kind, att.Total, res.Runtime)
				}
				if got := att.Sum(); got != att.Total {
					t.Fatalf("%v: buckets sum to %d, runtime is %d (ticks %v)",
						kind, got, att.Total, att.Ticks)
				}
				if att.Ticks[obs.BucketCompute] == 0 {
					t.Fatalf("%v: no cycles attributed to compute: %v",
						kind, att.Ticks)
				}
				// The memory system must show up in its own buckets: DMA
				// mode moves data over DMA bursts, cache mode through
				// misses. (Bus/DRAM activity hides under higher-priority
				// buckets when fully overlapped, so only assert the
				// top-priority movement bucket for the mode.)
				switch kind {
				case DMA:
					if att.Ticks[obs.BucketDMA] == 0 {
						t.Fatalf("DMA run attributed no DMA cycles: %v", att.Ticks)
					}
				case Cache:
					if att.Ticks[obs.BucketCacheMiss] == 0 {
						t.Fatalf("cache run attributed no miss cycles: %v", att.Ticks)
					}
				}
			}
		})
	}
}

// TestProfileRunDoesNotPerturbTiming mirrors the tracer's invariant:
// attaching the profiler observes the run, it must not change it.
func TestProfileRunDoesNotPerturbTiming(t *testing.T) {
	g := streamKernel(512)
	for _, kind := range []MemKind{Isolated, DMA, Cache} {
		cfg := DefaultConfig()
		cfg.Mem = kind
		bare := mustRun(t, g, cfg)
		res, att, err := ProfileRun(Compile(g), cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Runtime != bare.Runtime {
			t.Fatalf("%v: profiled runtime %v != bare %v",
				kind, res.Runtime, bare.Runtime)
		}
		if att.Sum() != uint64(res.Runtime) {
			t.Fatalf("%v: sum %d != runtime %v", kind, att.Sum(), res.Runtime)
		}
	}
}

// TestProfileRunIsolatesObserver documents that ProfileRun replaces any
// caller-supplied observer rather than sharing its registry (duplicate
// stat paths panic on reuse).
func TestProfileRunIsolatesObserver(t *testing.T) {
	g := streamKernel(256)
	cfg := DefaultConfig()
	caller := &obs.Observer{Registry: obs.NewRegistry()}
	cfg.Obs = caller
	if _, _, err := ProfileRun(Compile(g), cfg); err != nil {
		t.Fatal(err)
	}
	// Running twice with the same caller config must not panic on
	// duplicate registration — each call gets a private registry.
	if _, _, err := ProfileRun(Compile(g), cfg); err != nil {
		t.Fatal(err)
	}
	if caller.Registry.Len() != 0 {
		t.Fatalf("caller registry gained %d stats", caller.Registry.Len())
	}
}
