package soc

import (
	"fmt"

	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/sim"
)

// FabricKind selects the interconnect topology backend.
type FabricKind uint8

const (
	// FabricBus is the split-transaction round-robin bus — the reference
	// backend, pinned bit-for-bit by the figures regression.
	FabricBus FabricKind = iota
	// FabricCrossbar is the AXI-like burst-based crossbar: per-master
	// channel pairs, address-interleaved slave ports, parallel
	// non-conflicting routes.
	FabricCrossbar
	// FabricMesh is the 2D mesh NoC: XY routing, per-hop latency,
	// link-width back-pressure.
	FabricMesh

	numFabricKinds = 3
)

// String names the kind as accepted by ParseFabricKind.
func (k FabricKind) String() string {
	switch k {
	case FabricBus:
		return "bus"
	case FabricCrossbar:
		return "crossbar"
	case FabricMesh:
		return "mesh"
	}
	return fmt.Sprintf("FabricKind(%d)", uint8(k))
}

// ParseFabricKind maps a CLI/wire name to its kind.
func ParseFabricKind(s string) (FabricKind, error) {
	switch s {
	case "bus", "":
		return FabricBus, nil
	case "crossbar", "xbar":
		return FabricCrossbar, nil
	case "mesh", "noc":
		return FabricMesh, nil
	}
	return 0, fmt.Errorf("unknown fabric %q (want bus, crossbar, or mesh)", s)
}

// FabricKinds lists every backend, in canonical axis order.
func FabricKinds() []FabricKind {
	return []FabricKind{FabricBus, FabricCrossbar, FabricMesh}
}

// FabricConfig parameterizes the interconnect topology. Every field's zero
// value defers to a derived default, so the zero FabricConfig is exactly
// the pre-Fabric round-robin bus and existing PointKeys stay valid.
type FabricConfig struct {
	// Kind selects the backend; zero is FabricBus.
	Kind FabricKind
	// LinkWidthBits overrides the fabric data-path width (0 = the system
	// BusWidthBits). Crossbar routes and mesh links are this wide.
	LinkWidthBits int
	// MeshDim is the mesh side length (FabricMesh only; 0 = 2, giving a
	// 2x2 mesh with the memory port at one corner).
	MeshDim int
	// BurstLen caps the beats per crossbar burst (FabricCrossbar only;
	// 0 derives it from DMAChunkBytes over the link width, clamped to
	// [1, 256], so the burst matches the DMA chunk the paper tunes).
	BurstLen int
}

// widthBits resolves the fabric data-path width for cfg.
func (c Config) fabricWidthBits() int {
	if c.Fabric.LinkWidthBits != 0 {
		return c.Fabric.LinkWidthBits
	}
	return c.BusWidthBits
}

// fabricBurstBeats resolves the crossbar burst length for cfg: explicit
// BurstLen, else DMAChunkBytes over the link width (the burst carries one
// DMA chunk), else 16 beats, clamped to [1, 256].
func (c Config) fabricBurstBeats() int {
	if c.Fabric.BurstLen != 0 {
		return c.Fabric.BurstLen
	}
	burst := 16
	if c.DMAChunkBytes != 0 {
		burst = int(c.DMAChunkBytes) / (c.fabricWidthBits() / 8)
	}
	if burst < 1 {
		burst = 1
	}
	if burst > 256 {
		burst = 256
	}
	return burst
}

// newInterconnect constructs the configured fabric backend on eng, fronting
// target. The FabricBus arm must stay bit-identical to the pre-Fabric
// construction: same bus.Config, same target, nothing extra scheduled.
func newInterconnect(eng *sim.Engine, cfg Config, target bus.Target) bus.Fabric {
	width := cfg.fabricWidthBits()
	clock := sim.NewClockHz(cfg.BusHz)
	switch cfg.Fabric.Kind {
	case FabricCrossbar:
		slaves := cfg.DRAM.Banks
		if slaves < 1 {
			slaves = 4
		}
		if slaves > 8 {
			slaves = 8
		}
		return bus.NewCrossbar(eng, bus.CrossbarConfig{
			WidthBits:  width,
			Clock:      clock,
			Slaves:     slaves,
			BurstBeats: cfg.fabricBurstBeats(),
		}, target)
	case FabricMesh:
		dim := cfg.Fabric.MeshDim
		if dim == 0 {
			dim = 2
		}
		return bus.NewMesh(eng, bus.MeshConfig{
			WidthBits: width,
			Clock:     clock,
			Dim:       dim,
			HopCycles: 1,
		}, target)
	default:
		return bus.New(eng, bus.Config{WidthBits: width, Clock: clock}, target)
	}
}
