package soc

import (
	"errors"
	"reflect"
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/sim"
)

// fabricConfigs returns one config per interconnect backend over the given
// memory system.
func fabricConfigs(mem MemKind) map[string]Config {
	out := make(map[string]Config, numFabricKinds)
	for _, k := range FabricKinds() {
		cfg := DefaultConfig()
		cfg.Mem = mem
		cfg.Fabric.Kind = k
		out[k.String()] = cfg
	}
	return out
}

// TestFabricBackendsEndToEnd runs the stream kernel through every backend
// on both sweep memory systems: each must complete, move the same payload,
// and be bit-identical across reruns.
func TestFabricBackendsEndToEnd(t *testing.T) {
	for _, mem := range []MemKind{DMA, Cache} {
		g := streamKernel(512)
		for name, cfg := range fabricConfigs(mem) {
			a := mustRun(t, g, cfg)
			b := mustRun(t, g, cfg)
			if a.Runtime == 0 {
				t.Errorf("%s/%s: zero runtime", mem, name)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: rerun is not bit-identical", mem, name)
			}
			if a.Bus.Transactions == 0 || a.Bus.BytesMoved == 0 {
				t.Errorf("%s/%s: no fabric traffic recorded: %+v", mem, name, a.Bus)
			}
		}
	}
}

// TestFabricBusBitIdentical pins the tentpole refactor's core contract: a
// Config with the zero-valued Fabric block must be indistinguishable from
// one explicitly selecting FabricBus — same interface route, same timing.
func TestFabricBusBitIdentical(t *testing.T) {
	g := streamKernel(512)
	zero := DefaultConfig()
	explicit := DefaultConfig()
	explicit.Fabric.Kind = FabricBus
	a := mustRun(t, g, zero)
	b := mustRun(t, g, explicit)
	a.Config, b.Config = Config{}, Config{}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("explicit FabricBus differs from the zero-valued Fabric config")
	}
}

// TestFabricRunnerMatchesRun extends the Runner bit-identity contract to
// the new backends: the state-recycling path must match one-shot Run on
// every fabric.
func TestFabricRunnerMatchesRun(t *testing.T) {
	g := streamKernel(512)
	k := Compile(g)
	r := NewRunner()
	for _, mem := range []MemKind{DMA, Cache} {
		for name, cfg := range fabricConfigs(mem) {
			oneShot, err := Run(k, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", mem, name, err)
			}
			pooled, err := r.Run(k, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", mem, name, err)
			}
			if !reflect.DeepEqual(oneShot, pooled) {
				t.Errorf("%s/%s: Runner result differs from one-shot Run", mem, name)
			}
		}
	}
}

// TestRunMultiPerFabric is the N-accelerator contention regression: three
// accelerators sharing each backend must all finish, each slower than solo,
// and the whole scenario must be deterministic across reruns.
func TestRunMultiPerFabric(t *testing.T) {
	g := streamKernel(1024)
	k := Compile(g)
	const n = 3
	for name, cfg := range fabricConfigs(DMA) {
		solo, err := Run(k, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ks := make([]*Compiled, n)
		cfgs := make([]Config, n)
		for i := range ks {
			ks[i], cfgs[i] = k, cfg
		}
		multi, err := RunMulti(ks, cfgs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(multi.Results) != n {
			t.Fatalf("%s: %d results, want %d", name, len(multi.Results), n)
		}
		for i, r := range multi.Results {
			if r.Runtime <= solo.Runtime {
				t.Errorf("%s: accelerator %d ran as fast under contention (%v vs solo %v)",
					name, i, r.Runtime, solo.Runtime)
			}
		}
		again, err := RunMulti(ks, cfgs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(multi, again) {
			t.Errorf("%s: RunMulti rerun is not bit-identical", name)
		}
	}
}

// TestFabricContentionDiffers sanity-checks that the backends are really
// different machines: under multi-accelerator contention the three fabrics
// must not all produce the same makespan.
func TestFabricContentionDiffers(t *testing.T) {
	g := streamKernel(1024)
	k := Compile(g)
	seen := map[sim.Tick]bool{}
	for _, cfg := range fabricConfigs(DMA) {
		ks := []*Compiled{k, k, k}
		cfgs := []Config{cfg, cfg, cfg}
		multi, err := RunMulti(ks, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		seen[multi.Makespan] = true
	}
	if len(seen) < 2 {
		t.Errorf("all fabrics produced the same contended makespan %v", seen)
	}
}

// TestFabricSanitizeSoak runs a MachSuite subset over every backend and
// both sweep memory systems with the MOESI sanitizer attached — the PR 3
// honesty check extended to the new fabrics. Kept to a subset so the CI
// fabric matrix can run it in short mode.
func TestFabricSanitizeSoak(t *testing.T) {
	subset := []string{"spmv-crs", "stencil-stencil2d", "sort-merge"}
	for _, kname := range subset {
		k, err := machsuite.ByName(kname)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := k.Build()
		if err != nil {
			t.Fatal(err)
		}
		g := ddg.Build(tr)
		for _, mem := range []MemKind{DMA, Cache} {
			for name, cfg := range fabricConfigs(mem) {
				cfg.Sanitize = true
				if _, err := RunGraph(g, cfg); err != nil {
					t.Errorf("%s/%s/%s: sanitizer violation: %v", kname, mem, name, err)
				}
			}
		}
	}
}

// TestFabricFaultSoak exercises the seeded fault injector against every
// backend: NACK/backoff/retry must either complete or abort deterministically,
// with identical outcomes (result or failure) across reruns.
func TestFabricFaultSoak(t *testing.T) {
	g := streamKernel(512)
	for name, cfg := range fabricConfigs(DMA) {
		cfg.Faults = fault.Config{Seed: 11, BusNackProb: 0.05, BusRetryLimit: 16,
			BusBackoff: 10 * sim.Nanosecond, DRAMBitProb: 0.001, DoubleBitFrac: 0.1}
		run := func() (*RunResult, error) { return RunGraph(g, cfg) }
		a, errA := run()
		b, errB := run()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: fault outcome flipped across reruns: %v vs %v", name, errA, errB)
		}
		if errA != nil {
			if !errors.Is(errA, ErrAborted) {
				t.Fatalf("%s: error %v does not wrap ErrAborted", name, errA)
			}
			if errA.Error() != errB.Error() {
				t.Fatalf("%s: abort diagnostics differ: %q vs %q", name, errA, errB)
			}
			continue
		}
		if a.Faults.BusNacks == 0 {
			t.Errorf("%s: injector fired no bus NACKs", name)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: fault-injected rerun is not bit-identical", name)
		}
	}
}
