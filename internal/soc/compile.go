package soc

import (
	"gem5aladdin/internal/core"
	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/mem/dma"
	"gem5aladdin/internal/trace"
)

// Compiled is the immutable per-kernel artifact the simulator schedules: the
// dependence graph plus every config-independent product derived from it —
// the flat per-node op classes and iteration labels the scheduler's hot loop
// reads, the per-lane-count iteration layouts, the DMA transfer manifest,
// the shared-array spans cache-mode coherence warming walks, and the array
// footprints. Compile once per kernel; the artifact is then shared read-only
// across every design point, every sweep worker, and every Runner — only
// scheduling and memory parameters vary per point, so nothing here is
// rebuilt per run.
type Compiled struct {
	g    *ddg.Graph
	prog *core.Program

	// manifest is the DMA descriptor list with array bases in physical
	// window 0 (addrOff == 0, the single-accelerator case). The DMA engine
	// never mutates Transfer fields, so the slice is shared read-only;
	// multi-accelerator instances take an offset copy.
	manifest []dma.Transfer

	// shared spans the non-Local arrays (accelerator-virtual base, byte
	// length): the lines the host CPU dirties before an invocation in
	// cache mode.
	shared []arraySpan

	inBytes, outBytes uint64
}

type arraySpan struct {
	base  uint64
	bytes uint64
}

// Compile derives the config-independent kernel artifact from g. The graph
// is shared, not copied; it must not be mutated afterwards (ddg.Graph is
// already immutable by contract).
func Compile(g *ddg.Graph) *Compiled {
	k := &Compiled{g: g, prog: core.CompileProgram(g)}
	for i, a := range g.Trace.Arrays {
		if a.Dir.IsIn() {
			k.manifest = append(k.manifest, dma.Transfer{
				Arr: int16(i), Base: g.Bases[i], Bytes: a.Bytes(), Load: true})
		}
		if a.Dir.IsOut() {
			k.manifest = append(k.manifest, dma.Transfer{
				Arr: int16(i), Base: g.Bases[i], Bytes: a.Bytes(), Load: false})
		}
		if a.Dir != trace.Local {
			k.shared = append(k.shared, arraySpan{base: g.Bases[i], bytes: uint64(a.Bytes())})
		}
	}
	k.inBytes, k.outBytes = g.Trace.FootprintBytes()
	return k
}

// Graph returns the dependence graph the artifact was compiled from.
func (k *Compiled) Graph() *ddg.Graph { return k.g }

// Name returns the kernel's trace name.
func (k *Compiled) Name() string { return k.g.Trace.Name }

// NumNodes returns the number of dynamic operations in the kernel.
func (k *Compiled) NumNodes() int { return k.g.NumNodes() }

// FootprintBytes returns the kernel's host-transfer footprint: bytes moved
// in (In and InOut arrays) and out (Out and InOut arrays).
func (k *Compiled) FootprintBytes() (in, out uint64) { return k.inBytes, k.outBytes }
