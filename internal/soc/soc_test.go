package soc

import (
	"math/rand"
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/mem/dma"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

// streamKernel builds a simple streaming kernel: out[i] = 2*in[i] + 1 over
// n doubles, one iteration per element.
func streamKernel(n int) *ddg.Graph {
	b := trace.NewBuilder("stream")
	in := b.Alloc("in", trace.F64, n, trace.In)
	out := b.Alloc("out", trace.F64, n, trace.Out)
	for i := 0; i < n; i++ {
		b.SetF64(in, i, float64(i))
	}
	two, one := b.ConstF(2), b.ConstF(1)
	for i := 0; i < n; i++ {
		b.BeginIter()
		v := b.Load(in, i)
		b.Store(out, i, b.FAdd(b.FMul(v, two), one))
	}
	return ddg.Build(b.Finish())
}

func mustRun(t *testing.T, g *ddg.Graph, cfg Config) *RunResult {
	t.Helper()
	r, err := RunGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIsolatedRun(t *testing.T) {
	g := streamKernel(256)
	cfg := DefaultConfig()
	cfg.Mem = Isolated
	r := mustRun(t, g, cfg)
	if r.Runtime == 0 || r.Cycles == 0 {
		t.Fatal("no runtime recorded")
	}
	// Isolated: no data movement at all.
	if r.Breakdown.FlushOnly != 0 || r.Breakdown.DMAFlush != 0 || r.Breakdown.ComputeDMA != 0 {
		t.Fatalf("isolated run has movement: %+v", r.Breakdown)
	}
	if r.Bus.Transactions != 0 {
		t.Fatal("isolated run touched the bus")
	}
	if r.Energy.Total() <= 0 || r.EDPJs <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestDMABaselineRun(t *testing.T) {
	g := streamKernel(256)
	cfg := DefaultConfig()
	cfg.PipelinedDMA = false
	cfg.DMATriggered = false
	r := mustRun(t, g, cfg)
	b := r.Breakdown
	if b.FlushOnly == 0 {
		t.Fatal("baseline DMA should show flush-only time")
	}
	if b.DMAFlush == 0 {
		t.Fatal("baseline DMA should show DMA time")
	}
	if b.ComputeOnly == 0 {
		t.Fatal("no compute-only time")
	}
	// Baseline never overlaps compute with movement.
	if b.ComputeDMA != 0 {
		t.Fatalf("baseline overlapped compute with DMA: %+v", b)
	}
	if b.Total() != r.Runtime {
		t.Fatalf("breakdown %v != runtime %v", b.Total(), r.Runtime)
	}
	// 256 doubles in + 256 out moved by DMA.
	if r.DMA.BytesMoved != 4096 {
		t.Fatalf("DMA moved %d bytes", r.DMA.BytesMoved)
	}
}

func TestDMAOptimizationsImproveRuntime(t *testing.T) {
	// 2048 doubles = 16 KB per array: four pipelined chunks, so the flush
	// of chunks 1-3 hides under earlier transfers.
	g := streamKernel(2048)
	base := DefaultConfig()
	base.PipelinedDMA = false
	base.DMATriggered = false
	r0 := mustRun(t, g, base)

	pipe := base
	pipe.PipelinedDMA = true
	r1 := mustRun(t, g, pipe)

	trig := pipe
	trig.DMATriggered = true
	r2 := mustRun(t, g, trig)

	if r1.Runtime >= r0.Runtime {
		t.Fatalf("pipelined DMA (%v) not faster than baseline (%v)", r1.Runtime, r0.Runtime)
	}
	if r2.Runtime >= r1.Runtime {
		t.Fatalf("triggered compute (%v) not faster than pipelined (%v)", r2.Runtime, r1.Runtime)
	}
	// Pipelining nearly eliminates flush-only time (Fig 6a).
	if r1.Breakdown.FlushOnly > r0.Breakdown.FlushOnly/4 {
		t.Fatalf("pipelining left %v flush-only (baseline %v)",
			r1.Breakdown.FlushOnly, r0.Breakdown.FlushOnly)
	}
	// A streaming kernel overlaps compute with DMA under ready bits.
	if r2.Breakdown.ComputeDMA == 0 {
		t.Fatal("triggered compute shows no compute/DMA overlap")
	}
}

func TestCacheRun(t *testing.T) {
	g := streamKernel(256)
	cfg := DefaultConfig()
	cfg.Mem = Cache
	r := mustRun(t, g, cfg)
	if r.Cache.Accesses == 0 {
		t.Fatal("cache never accessed")
	}
	if r.Cache.Misses == 0 {
		t.Fatal("no cold misses?")
	}
	// Inputs were dirty in the CPU cache: fills must be cache-to-cache.
	if r.Cache.C2CFills == 0 {
		t.Fatal("no coherent cache-to-cache fills")
	}
	if r.TLB.Misses == 0 {
		t.Fatal("no TLB misses on first touch")
	}
	// No flush/DMA phases in cache mode.
	if r.Breakdown.FlushOnly != 0 || r.Breakdown.DMAFlush != 0 {
		t.Fatalf("cache run shows DMA phases: %+v", r.Breakdown)
	}
	if r.Energy.MemDynamic <= 0 {
		t.Fatal("cache dynamic energy missing")
	}
}

func TestParallelismReducesComputeTime(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	cfg.Lanes, cfg.Partitions = 1, 1
	slow := mustRun(t, g, cfg)
	cfg.Lanes, cfg.Partitions = 8, 8
	fast := mustRun(t, g, cfg)
	if fast.Runtime >= slow.Runtime {
		t.Fatalf("8 lanes (%v) not faster than 1 (%v)", fast.Runtime, slow.Runtime)
	}
}

func TestWiderBusFasterDMA(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	cfg.BusWidthBits = 32
	narrow := mustRun(t, g, cfg)
	cfg.BusWidthBits = 64
	wide := mustRun(t, g, cfg)
	if wide.Runtime >= narrow.Runtime {
		t.Fatalf("64-bit bus (%v) not faster than 32-bit (%v)", wide.Runtime, narrow.Runtime)
	}
}

func TestContentionSlowsAccelerator(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	quiet := mustRun(t, g, cfg)
	cfg.Traffic = &TrafficConfig{Period: 300 * sim.Nanosecond, Bytes: 256}
	loaded := mustRun(t, g, cfg)
	if loaded.Runtime <= quiet.Runtime {
		t.Fatalf("contention did not slow the run: %v vs %v", loaded.Runtime, quiet.Runtime)
	}
}

func TestIsolatedFasterThanCoDesigned(t *testing.T) {
	// The core motivation: isolated designs ignore data movement, so the
	// same design point must look faster in isolation than in-system.
	g := streamKernel(256)
	cfg := DefaultConfig()
	cfg.Mem = Isolated
	iso := mustRun(t, g, cfg)
	cfg.Mem = DMA
	dmaRun := mustRun(t, g, cfg)
	if iso.Runtime >= dmaRun.Runtime {
		t.Fatalf("isolated (%v) not faster than co-designed (%v)", iso.Runtime, dmaRun.Runtime)
	}
}

func TestEnergyComponentsPositive(t *testing.T) {
	g := streamKernel(128)
	for _, kind := range []MemKind{Isolated, DMA, Cache} {
		cfg := DefaultConfig()
		cfg.Mem = kind
		r := mustRun(t, g, cfg)
		if r.Energy.FUDynamic <= 0 || r.Energy.FULeak <= 0 || r.Energy.MemLeak <= 0 {
			t.Fatalf("%v: energy breakdown %+v", kind, r.Energy)
		}
		if kind != Isolated && r.TransferJ <= 0 {
			t.Fatalf("%v: no transfer energy", kind)
		}
		if kind == Isolated && r.TransferJ != 0 {
			t.Fatalf("%v: isolated run reports transfer energy", kind)
		}
		if r.AvgPowerW <= 0 {
			t.Fatalf("%v: power %v", kind, r.AvgPowerW)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	g := streamKernel(16)
	cfg := DefaultConfig()
	cfg.Lanes = 0
	if _, err := RunGraph(g, cfg); err == nil {
		t.Fatal("zero lanes accepted")
	}
	cfg = DefaultConfig()
	cfg.Mem = Cache
	cfg.CacheLineBytes = 48
	if _, err := RunGraph(g, cfg); err == nil {
		t.Fatal("bad cache line accepted")
	}
}

func TestMemKindString(t *testing.T) {
	if Isolated.String() != "isolated" || DMA.String() != "dma" || Cache.String() != "cache" {
		t.Fatal("MemKind names wrong")
	}
	if MemKind(9).String() != "MemKind(9)" {
		t.Fatal("unknown MemKind name wrong")
	}
}

func TestDeterminism(t *testing.T) {
	g := streamKernel(256)
	for _, kind := range []MemKind{DMA, Cache} {
		cfg := DefaultConfig()
		cfg.Mem = kind
		a := mustRun(t, g, cfg)
		b := mustRun(t, g, cfg)
		if a.Runtime != b.Runtime || a.Energy.Total() != b.Energy.Total() {
			t.Fatalf("%v: nondeterministic results %v/%v", kind, a.Runtime, b.Runtime)
		}
	}
}

func TestRunTraceConvenience(t *testing.T) {
	b := trace.NewBuilder("tiny")
	a := b.Alloc("a", trace.F64, 8, trace.InOut)
	b.BeginIter()
	b.Store(a, 0, b.FAdd(b.Load(a, 0), b.ConstF(1)))
	r, err := RunTrace(b.Finish(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Runtime == 0 {
		t.Fatal("no runtime")
	}
}

func TestIdealMode(t *testing.T) {
	g := streamKernel(256)
	cfg := DefaultConfig()
	cfg.Mem = Ideal
	ideal := mustRun(t, g, cfg)
	cfg.Mem = Isolated
	iso := mustRun(t, g, cfg)
	// Ideal has no port limits: at least as fast as the real scratchpad.
	if ideal.Runtime > iso.Runtime {
		t.Fatalf("ideal (%v) slower than isolated (%v)", ideal.Runtime, iso.Runtime)
	}
	if ideal.Bus.Transactions != 0 {
		t.Fatal("ideal mode touched the bus")
	}
}

func TestDecompose(t *testing.T) {
	iv := func(a, b sim.Tick) dma.Interval { return dma.Interval{Start: a, End: b} }
	flush := []dma.Interval{iv(0, 100)}
	dmaIv := []dma.Interval{iv(80, 200)}
	comp := []dma.Interval{iv(150, 300)}
	b := decompose(320, flush, dmaIv, comp)
	if b.FlushOnly != 80 { // [0,80)
		t.Fatalf("flush-only = %v", b.FlushOnly)
	}
	if b.DMAFlush != 70 { // [80,150)
		t.Fatalf("dma = %v", b.DMAFlush)
	}
	if b.ComputeDMA != 50 { // [150,200)
		t.Fatalf("overlap = %v", b.ComputeDMA)
	}
	if b.ComputeOnly != 100 { // [200,300)
		t.Fatalf("compute-only = %v", b.ComputeOnly)
	}
	if b.Idle != 20 { // [300,320)
		t.Fatalf("idle = %v", b.Idle)
	}
	if b.Total() != 320 {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestDecomposeEmpty(t *testing.T) {
	b := decompose(100, nil, nil, nil)
	if b.Idle != 100 || b.Total() != 100 {
		t.Fatalf("empty decompose = %+v", b)
	}
}

// TestBusBandwidthConservation: the bus can never move bytes faster than
// its width allows over the run.
func TestBusBandwidthConservation(t *testing.T) {
	g := streamKernel(2048)
	for _, bits := range []int{32, 64} {
		cfg := DefaultConfig()
		cfg.BusWidthBits = bits
		r := mustRun(t, g, cfg)
		peakBytes := float64(bits/8) * (r.Seconds() * cfg.BusHz)
		if float64(r.Bus.BytesMoved) > peakBytes {
			t.Fatalf("%d-bit bus moved %d bytes, peak %d",
				bits, r.Bus.BytesMoved, uint64(peakBytes))
		}
	}
}

// TestScheduleRecordingThroughSoc checks the RecordSchedule plumbing.
func TestScheduleRecordingThroughSoc(t *testing.T) {
	g := streamKernel(64)
	cfg := DefaultConfig()
	cfg.RecordSchedule = true
	r := mustRun(t, g, cfg)
	if len(r.Schedule) != g.NumNodes() {
		t.Fatalf("schedule entries = %d, nodes = %d", len(r.Schedule), g.NumNodes())
	}
	cfg.RecordSchedule = false
	r2 := mustRun(t, g, cfg)
	if r2.Schedule != nil {
		t.Fatal("schedule recorded without the flag")
	}
}

// TestRandomConfigsComplete fuzzes valid configurations over a small
// kernel: every run must terminate with a consistent breakdown.
func TestRandomConfigsComplete(t *testing.T) {
	g := streamKernel(192)
	rng := rand.New(rand.NewSource(11))
	lanes := []int{1, 2, 4, 8, 16}
	parts := []int{1, 2, 4, 8, 16}
	kbs := []int{2, 4, 8, 16, 32, 64}
	lines := []int{16, 32, 64}
	ports := []int{1, 2, 4, 8}
	assocs := []int{4, 8}
	for i := 0; i < 60; i++ {
		cfg := DefaultConfig()
		cfg.Mem = []MemKind{Isolated, DMA, Cache, Ideal}[rng.Intn(4)]
		cfg.Lanes = lanes[rng.Intn(len(lanes))]
		cfg.Partitions = parts[rng.Intn(len(parts))]
		cfg.PipelinedDMA = rng.Intn(2) == 0
		cfg.DMATriggered = rng.Intn(2) == 0
		cfg.NoDMAInterleave = rng.Intn(2) == 0
		cfg.CoherentDMA = rng.Intn(4) == 0
		cfg.NoWaveBarrier = rng.Intn(4) == 0
		cfg.CacheKB = kbs[rng.Intn(len(kbs))]
		cfg.CacheLineBytes = lines[rng.Intn(len(lines))]
		cfg.CachePorts = ports[rng.Intn(len(ports))]
		cfg.CacheAssoc = assocs[rng.Intn(len(assocs))]
		cfg.Prefetch = rng.Intn(2) == 0
		cfg.BusWidthBits = []int{32, 64}[rng.Intn(2)]
		if cfg.Validate() != nil {
			continue // degenerate cache geometry
		}
		r, err := RunGraph(g, cfg)
		if err != nil {
			t.Fatalf("config %d (%+v): %v", i, cfg, err)
		}
		if r.Breakdown.Total() != r.Runtime {
			t.Fatalf("config %d: breakdown %v != runtime %v", i, r.Breakdown.Total(), r.Runtime)
		}
		var issued uint64
		for _, c := range r.Datapath.OpsIssued {
			issued += c
		}
		if issued != uint64(g.NumNodes()) {
			t.Fatalf("config %d: issued %d of %d ops", i, issued, g.NumNodes())
		}
	}
}

func TestAreaModel(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	small := mustRun(t, g, cfg)
	cfg.Lanes, cfg.Partitions = 16, 16
	big := mustRun(t, g, cfg)
	if big.AreaMM2 <= small.AreaMM2 {
		t.Fatalf("16-lane design area (%v) not above 4-lane (%v)", big.AreaMM2, small.AreaMM2)
	}
	// Cache designs with a small cache undercut full-footprint scratchpads.
	cc := DefaultConfig()
	cc.Mem = Cache
	cc.CacheKB = 2
	cacheRes := mustRun(t, g, cc)
	if cacheRes.AreaMM2 >= small.AreaMM2 {
		t.Fatalf("2KB cache area (%v) should undercut 8KB scratchpads (%v)",
			cacheRes.AreaMM2, small.AreaMM2)
	}
	if small.AreaMM2 <= 0 {
		t.Fatal("no area accounted")
	}
}

func TestLaneUtilizationStats(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	cfg.Lanes, cfg.Partitions = 4, 4
	r := mustRun(t, g, cfg)
	util := r.Datapath.LaneUtilization()
	if len(util) != 4 {
		t.Fatalf("utilization entries = %d", len(util))
	}
	var total uint64
	for _, n := range r.Datapath.LaneOps {
		total += n
	}
	if total != uint64(g.NumNodes()) {
		t.Fatalf("lane ops sum %d != nodes %d", total, g.NumNodes())
	}
	// A balanced streaming kernel loads lanes evenly.
	for i := 1; i < 4; i++ {
		if diff := float64(r.Datapath.LaneOps[i]) - float64(r.Datapath.LaneOps[0]); diff > 10 || diff < -10 {
			t.Fatalf("lane ops unbalanced: %v", r.Datapath.LaneOps)
		}
	}
	for _, u := range util {
		if u <= 0 || u > 1 {
			t.Fatalf("utilization out of range: %v", util)
		}
	}
}

// TestOverProvisionedLanesIdle pins the motivation behind the area model:
// a movement-bound kernel at 16 lanes leaves its lanes mostly idle.
func TestOverProvisionedLanesIdle(t *testing.T) {
	g := streamKernel(2048)
	cfg := DefaultConfig()
	cfg.Lanes, cfg.Partitions = 16, 16
	r := mustRun(t, g, cfg)
	util := r.Datapath.LaneUtilization()
	for _, u := range util {
		if u > 0.5 {
			t.Fatalf("movement-bound kernel shows %v lane utilization", util)
		}
	}
}
