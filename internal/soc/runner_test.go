package soc

import (
	"reflect"
	"sync"
	"testing"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/sim"
)

// runnerConfigs returns the design points the Runner identity test covers:
// the DMA and cache memory systems (the two the sweeps exercise), each in a
// plain and a seeded fault-injection variant.
func runnerConfigs() map[string]Config {
	dma := DefaultConfig()
	dma.Mem = DMA

	cch := DefaultConfig()
	cch.Mem = Cache

	dmaFaults := dma
	dmaFaults.Faults = fault.Config{Seed: 7, DRAMBitProb: 0.005, SpadBitProb: 0.001,
		BusNackProb: 0.01, BusRetryLimit: 8, DoubleBitFrac: 0.1,
		BusBackoff: 10 * sim.Nanosecond}

	cchFaults := cch
	cchFaults.Faults = fault.Config{Seed: 7, DRAMBitProb: 0.005, CacheBitProb: 0.001,
		BusNackProb: 0.01, BusRetryLimit: 8, DoubleBitFrac: 0.1,
		BusBackoff: 10 * sim.Nanosecond}

	return map[string]Config{
		"dma": dma, "cache": cch,
		"dma-faults": dmaFaults, "cache-faults": cchFaults,
	}
}

// TestRunnerBitIdentical drives one pooled Runner and one shared Compiled
// artifact through every MachSuite kernel under DMA and cache memory systems
// (faults off and seeded on) and requires every result — cycles, energy,
// EDP, per-block stats, fault log — to be bit-identical to a fresh
// per-point RunGraph (compile-per-run) of the same design point. This is
// both reuse contracts at once: recycled engine, coherence, and datapath
// state must never leak between runs, and nothing in the shared artifact
// may be mutated by a run.
func TestRunnerBitIdentical(t *testing.T) {
	kernels := machsuite.Names()
	if testing.Short() {
		kernels = kernels[:2]
	}
	var r Runner
	for _, name := range kernels {
		g := kernelGraph(t, name)
		k := Compile(g)
		for label, cfg := range runnerConfigs() {
			t.Run(name+"/"+label, func(t *testing.T) {
				pooled, errP := r.Run(k, cfg)
				fresh, errF := RunGraph(g, cfg)
				if (errP == nil) != (errF == nil) {
					t.Fatalf("error mismatch: pooled %v, fresh %v", errP, errF)
				}
				if errP != nil {
					if errP.Error() != errF.Error() {
						t.Fatalf("error mismatch: pooled %v, fresh %v", errP, errF)
					}
					return
				}
				if !reflect.DeepEqual(pooled, fresh) {
					t.Fatalf("pooled Runner result diverged from fresh RunGraph:\npooled: %+v\nfresh:  %+v", pooled, fresh)
				}
			})
		}
	}
}

// TestRunnerSurvivesMemKindSwitch reuses one Runner across alternating
// memory systems and kernel shapes, the pattern a mixed DMA+cache sweep
// produces on each worker.
func TestRunnerSurvivesMemKindSwitch(t *testing.T) {
	var r Runner
	cfgs := runnerConfigs()
	for _, name := range []string{"fft-transpose", "spmv-crs"} {
		k := Compile(kernelGraph(t, name))
		for _, label := range []string{"dma", "cache", "dma", "cache-faults", "dma-faults", "cache"} {
			pooled, err := r.Run(k, cfgs[label])
			if err != nil {
				t.Fatalf("%s/%s: %v", name, label, err)
			}
			fresh, err := Run(k, cfgs[label])
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", name, label, err)
			}
			if !reflect.DeepEqual(pooled, fresh) {
				t.Fatalf("%s/%s: interleaved Runner result diverged from fresh Run", name, label)
			}
		}
	}
}

// TestCompiledSharedAcrossWorkers runs 8 goroutines, each with its own
// Runner, all scheduling the SAME Compiled artifact concurrently across the
// DMA/cache × faults-off/on matrix. Every worker's results must match the
// serial reference bit-exactly. Under -race this also proves the artifact
// (flat op arrays, lane layouts, DMA manifest, shared spans) is genuinely
// read-only during simulation.
func TestCompiledSharedAcrossWorkers(t *testing.T) {
	k := Compile(kernelGraph(t, "fft-transpose"))
	cfgs := runnerConfigs()
	labels := []string{"dma", "cache", "dma-faults", "cache-faults"}

	want := make(map[string]*RunResult, len(labels))
	for _, label := range labels {
		res, err := Run(k, cfgs[label])
		if err != nil {
			t.Fatalf("reference %s: %v", label, err)
		}
		want[label] = res
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var r Runner
			// Stagger the label order per worker so concurrent runs hit
			// different lane layouts and memory systems at the same time.
			for i := 0; i < 2*len(labels); i++ {
				label := labels[(w+i)%len(labels)]
				res, err := r.Run(k, cfgs[label])
				if err != nil {
					errs[w] = err
					return
				}
				if !reflect.DeepEqual(res, want[label]) {
					t.Errorf("worker %d: %s diverged from serial reference", w, label)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestRunnerPerPointAllocs pins the per-point setup cost of a recycled
// Runner over a shared artifact. The compile-once split moved the graph
// walks (lane layout, transfer manifest, op-class scan) out of the
// per-point path; this gate keeps them out. The ceiling has headroom over
// the measured count (~0.5k) but is far below the compile-per-point cost
// (tens of thousands of allocations for this kernel).
func TestRunnerPerPointAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady-state averaging")
	}
	k := Compile(kernelGraph(t, "fft-transpose"))
	cfg := DefaultConfig()
	cfg.Mem = DMA
	var r Runner
	// Warm the runner and the artifact's lane-layout cache.
	for i := 0; i < 2; i++ {
		if _, err := r.Run(k, cfg); err != nil {
			t.Fatal(err)
		}
	}
	const ceiling = 2000
	avg := testing.AllocsPerRun(5, func() {
		if _, err := r.Run(k, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > ceiling {
		t.Fatalf("per-point allocations %.0f exceed ceiling %d", avg, ceiling)
	}
}
