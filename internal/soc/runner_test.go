package soc

import (
	"reflect"
	"testing"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/sim"
)

// runnerConfigs returns the design points the Runner identity test covers:
// the DMA and cache memory systems (the two the sweeps exercise), each in a
// plain and a seeded fault-injection variant.
func runnerConfigs() map[string]Config {
	dma := DefaultConfig()
	dma.Mem = DMA

	cch := DefaultConfig()
	cch.Mem = Cache

	dmaFaults := dma
	dmaFaults.Faults = fault.Config{Seed: 7, DRAMBitProb: 0.005, SpadBitProb: 0.001,
		BusNackProb: 0.01, BusRetryLimit: 8, DoubleBitFrac: 0.1,
		BusBackoff: 10 * sim.Nanosecond}

	cchFaults := cch
	cchFaults.Faults = fault.Config{Seed: 7, DRAMBitProb: 0.005, CacheBitProb: 0.001,
		BusNackProb: 0.01, BusRetryLimit: 8, DoubleBitFrac: 0.1,
		BusBackoff: 10 * sim.Nanosecond}

	return map[string]Config{
		"dma": dma, "cache": cch,
		"dma-faults": dmaFaults, "cache-faults": cchFaults,
	}
}

// TestRunnerBitIdentical drives one pooled Runner through every MachSuite
// kernel under DMA and cache memory systems (faults off and seeded on) and
// requires every result — cycles, energy, EDP, per-block stats, fault log —
// to be bit-identical to a fresh soc.Run of the same design point. This is
// the reuse contract: recycled engine, coherence, and datapath state must
// never leak between runs.
func TestRunnerBitIdentical(t *testing.T) {
	kernels := machsuite.Names()
	if testing.Short() {
		kernels = kernels[:2]
	}
	var r Runner
	for _, name := range kernels {
		g := kernelGraph(t, name)
		for label, cfg := range runnerConfigs() {
			t.Run(name+"/"+label, func(t *testing.T) {
				pooled, errP := r.Run(g, cfg)
				fresh, errF := Run(g, cfg)
				if (errP == nil) != (errF == nil) {
					t.Fatalf("error mismatch: pooled %v, fresh %v", errP, errF)
				}
				if errP != nil {
					if errP.Error() != errF.Error() {
						t.Fatalf("error mismatch: pooled %v, fresh %v", errP, errF)
					}
					return
				}
				if !reflect.DeepEqual(pooled, fresh) {
					t.Fatalf("pooled Runner result diverged from fresh Run:\npooled: %+v\nfresh:  %+v", pooled, fresh)
				}
			})
		}
	}
}

// TestRunnerSurvivesMemKindSwitch reuses one Runner across alternating
// memory systems and graph shapes, the pattern a mixed DMA+cache sweep
// produces on each worker.
func TestRunnerSurvivesMemKindSwitch(t *testing.T) {
	var r Runner
	cfgs := runnerConfigs()
	for _, name := range []string{"fft-transpose", "spmv-crs"} {
		g := kernelGraph(t, name)
		for _, label := range []string{"dma", "cache", "dma", "cache-faults", "dma-faults", "cache"} {
			pooled, err := r.Run(g, cfgs[label])
			if err != nil {
				t.Fatalf("%s/%s: %v", name, label, err)
			}
			fresh, err := Run(g, cfgs[label])
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", name, label, err)
			}
			if !reflect.DeepEqual(pooled, fresh) {
				t.Fatalf("%s/%s: interleaved Runner result diverged from fresh Run", name, label)
			}
		}
	}
}
