package soc

import (
	"errors"
	"fmt"
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/sim"
)

// TestAbortKindClassification pins the failure taxonomy the service and the
// retry policy depend on: watchdog stalls, sanitizer violations, and
// fault-injection give-ups each map to their own label, and non-abort errors
// map to none.
func TestAbortKindClassification(t *testing.T) {
	k := Compile(ddg.Build(machsuite.MustBuild("spmv-crs")))

	stallCfg := DefaultConfig()
	stallCfg.Mem = DMA
	stallCfg.WatchdogTicks = 10 // ten picoseconds: guaranteed budget stall
	_, err := Run(k, stallCfg)
	if err == nil {
		t.Fatal("expected a stall abort")
	}
	if got := AbortKind(err); got != AbortStall {
		t.Fatalf("AbortKind(stall) = %q, want %q", got, AbortStall)
	}
	if StallOf(err) == nil {
		t.Fatal("StallOf lost the watchdog diagnostic")
	}

	faultCfg := DefaultConfig()
	faultCfg.Mem = DMA
	faultCfg.Faults = fault.Config{Seed: 1, DMATimeout: sim.Picosecond, DMARetries: 0}
	_, err = Run(k, faultCfg)
	if err == nil {
		t.Fatal("expected a fault abort")
	}
	if got := AbortKind(err); got != AbortFault {
		t.Fatalf("AbortKind(fault) = %q, want %q", got, AbortFault)
	}
	if StallOf(err) != nil {
		t.Fatal("StallOf fabricated a stall from a fault abort")
	}

	if got := AbortKind(nil); got != "" {
		t.Fatalf("AbortKind(nil) = %q", got)
	}
	if got := AbortKind(fmt.Errorf("plain error")); got != "" {
		t.Fatalf("AbortKind(non-abort) = %q", got)
	}
	if got := AbortKind(fmt.Errorf("wrapped: %w", errors.New("also plain"))); got != "" {
		t.Fatalf("AbortKind(wrapped non-abort) = %q", got)
	}
}
