package soc

import (
	"fmt"

	"gem5aladdin/internal/sim"
)

// ConfigError reports one impossible design-point parameter. It is the
// typed error Validate returns, so sweep generators and CLIs can tell a
// malformed design point (skip it, print the offending field) apart from a
// simulation failure. Use errors.As to recover it through wrapping.
type ConfigError struct {
	Field  string // the Config field (or field group) at fault
	Value  any    // the rejected value
	Reason string // why it is impossible
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("soc: invalid config: %s = %v: %s", e.Field, e.Value, e.Reason)
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Upper bounds for Config fields that hardware construction later narrows to
// uint32 (cache.Config.LineBytes at soc.go's cacheConfig, the bus's
// WidthBytes). Without them a huge value silently truncates — a 2^37-byte
// cache line becomes 0 — so Validate rejects anything past a bound that is
// already far beyond physical hardware yet comfortably inside uint32.
const (
	// maxCacheLineBytes caps a cache line at 1 MB.
	maxCacheLineBytes = 1 << 20
	// maxBusWidthBits caps the system bus at 8 KB per beat.
	maxBusWidthBits = 1 << 16
)

// Validate checks a configuration for impossible design points and returns
// a *ConfigError naming the offending field, or nil. Run, RunGraph,
// RunMulti, and RunRepeated all call it before constructing any hardware,
// so a bad parameter surfaces as a typed error at the API boundary rather
// than a panic deep inside bus or DRAM wiring; the CLIs call it right
// after flag parsing for the same reason.
func (c Config) Validate() error {
	switch c.Mem {
	case Isolated, DMA, Cache, Ideal:
	default:
		return &ConfigError{Field: "Mem", Value: uint8(c.Mem), Reason: "unknown memory kind"}
	}
	if c.Lanes <= 0 {
		return &ConfigError{Field: "Lanes", Value: c.Lanes, Reason: "datapath needs at least one lane"}
	}
	if c.Partitions <= 0 {
		return &ConfigError{Field: "Partitions", Value: c.Partitions, Reason: "scratchpad needs at least one bank"}
	}
	if c.SpadPorts <= 0 {
		return &ConfigError{Field: "SpadPorts", Value: c.SpadPorts, Reason: "scratchpad banks need at least one port"}
	}
	if c.AccelHz <= 0 {
		return &ConfigError{Field: "AccelHz", Value: c.AccelHz, Reason: "accelerator clock must be positive"}
	}
	if c.BusHz <= 0 {
		return &ConfigError{Field: "BusHz", Value: c.BusHz, Reason: "bus clock must be positive"}
	}
	if c.BusWidthBits <= 0 {
		return &ConfigError{Field: "BusWidthBits", Value: c.BusWidthBits, Reason: "bus width must be positive"}
	}
	if c.BusWidthBits%8 != 0 {
		return &ConfigError{Field: "BusWidthBits", Value: c.BusWidthBits, Reason: "bus width must be a whole number of bytes"}
	}
	if c.BusWidthBits > maxBusWidthBits {
		return &ConfigError{Field: "BusWidthBits", Value: c.BusWidthBits,
			Reason: fmt.Sprintf("bus width cannot exceed %d bits (would truncate at uint32 narrowing)", maxBusWidthBits)}
	}
	if err := c.validateFabric(); err != nil {
		return err
	}
	if c.DRAM.Banks <= 0 {
		return &ConfigError{Field: "DRAM.Banks", Value: c.DRAM.Banks, Reason: "DRAM needs at least one bank"}
	}
	if c.DRAM.RowBytes == 0 {
		return &ConfigError{Field: "DRAM.RowBytes", Value: c.DRAM.RowBytes, Reason: "DRAM row buffer must be non-empty"}
	}
	if c.DRAM.BytesPerNs <= 0 {
		return &ConfigError{Field: "DRAM.BytesPerNs", Value: c.DRAM.BytesPerNs, Reason: "DRAM pin bandwidth must be positive"}
	}
	if c.CPU.Clock.Period == 0 {
		return &ConfigError{Field: "CPU.Clock", Value: c.CPU.Clock.Period, Reason: "host CPU clock must be positive"}
	}
	if c.Traffic != nil {
		if c.Traffic.Period == 0 {
			return &ConfigError{Field: "Traffic.Period", Value: c.Traffic.Period, Reason: "background traffic period must be positive"}
		}
		if c.Traffic.Bytes == 0 {
			return &ConfigError{Field: "Traffic.Bytes", Value: c.Traffic.Bytes, Reason: "background traffic payload must be non-empty"}
		}
	}
	if err := c.validateFaults(); err != nil {
		return err
	}
	if c.Mem == Cache {
		if c.CacheKB <= 0 {
			return &ConfigError{Field: "CacheKB", Value: c.CacheKB, Reason: "cache size must be positive"}
		}
		if !powerOfTwo(c.CacheLineBytes) {
			return &ConfigError{Field: "CacheLineBytes", Value: c.CacheLineBytes, Reason: "cache line size must be a power of two"}
		}
		if c.CacheLineBytes > maxCacheLineBytes {
			return &ConfigError{Field: "CacheLineBytes", Value: c.CacheLineBytes,
				Reason: fmt.Sprintf("cache line cannot exceed %d bytes (would truncate at uint32 narrowing)", maxCacheLineBytes)}
		}
		if !powerOfTwo(c.CacheAssoc) {
			return &ConfigError{Field: "CacheAssoc", Value: c.CacheAssoc, Reason: "cache associativity must be a power of two"}
		}
		if c.CachePorts <= 0 {
			return &ConfigError{Field: "CachePorts", Value: c.CachePorts, Reason: "cache needs at least one port"}
		}
		if c.MSHRs <= 0 {
			return &ConfigError{Field: "MSHRs", Value: c.MSHRs, Reason: "cache needs at least one MSHR"}
		}
		// Residual geometry constraints (set count a power of two, lines
		// divisible by associativity) live with the cache model.
		if err := c.cacheConfig(sim.NewClockHz(c.AccelHz)).Validate(); err != nil {
			return &ConfigError{Field: "CacheKB/CacheLineBytes/CacheAssoc",
				Value:  fmt.Sprintf("%dKB/%dB/%d-way", c.CacheKB, c.CacheLineBytes, c.CacheAssoc),
				Reason: err.Error()}
		}
	}
	return nil
}

// validateFabric checks the interconnect topology block. Zero values are
// always legal (they defer to derived defaults); explicit values must be
// constructible.
func (c Config) validateFabric() error {
	f := c.Fabric
	switch f.Kind {
	case FabricBus, FabricCrossbar, FabricMesh:
	default:
		return &ConfigError{Field: "Fabric.Kind", Value: uint8(f.Kind), Reason: "unknown fabric kind"}
	}
	if f.LinkWidthBits != 0 {
		if f.LinkWidthBits < 0 || f.LinkWidthBits%8 != 0 {
			return &ConfigError{Field: "Fabric.LinkWidthBits", Value: f.LinkWidthBits, Reason: "link width must be a positive whole number of bytes"}
		}
		if f.LinkWidthBits > maxBusWidthBits {
			return &ConfigError{Field: "Fabric.LinkWidthBits", Value: f.LinkWidthBits,
				Reason: fmt.Sprintf("link width cannot exceed %d bits (would truncate at uint32 narrowing)", maxBusWidthBits)}
		}
	}
	if f.MeshDim != 0 && (f.MeshDim < 2 || f.MeshDim > 16) {
		return &ConfigError{Field: "Fabric.MeshDim", Value: f.MeshDim, Reason: "mesh side must be in [2,16]"}
	}
	if f.BurstLen != 0 && (f.BurstLen < 1 || f.BurstLen > 4096) {
		return &ConfigError{Field: "Fabric.BurstLen", Value: f.BurstLen, Reason: "burst length must be in [1,4096]"}
	}
	return nil
}

// validateFaults checks the fault-injection block: every probability must
// lie in [0,1], retry limits must be non-negative, and enabling bus NACKs
// requires a positive backoff (a zero backoff would retry at the same tick
// and livelock the arbiter).
func (c Config) validateFaults() error {
	f := c.Faults
	probs := []struct {
		field string
		v     float64
	}{
		{"Faults.DRAMBitProb", f.DRAMBitProb},
		{"Faults.SpadBitProb", f.SpadBitProb},
		{"Faults.CacheBitProb", f.CacheBitProb},
		{"Faults.DoubleBitFrac", f.DoubleBitFrac},
		{"Faults.BusNackProb", f.BusNackProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return &ConfigError{Field: p.field, Value: p.v, Reason: "probability must be in [0,1]"}
		}
	}
	if f.BusRetryLimit < 0 {
		return &ConfigError{Field: "Faults.BusRetryLimit", Value: f.BusRetryLimit, Reason: "retry limit cannot be negative"}
	}
	if f.DMARetries < 0 {
		return &ConfigError{Field: "Faults.DMARetries", Value: f.DMARetries, Reason: "retry limit cannot be negative"}
	}
	if f.BusNackProb > 0 && f.BusBackoff == 0 {
		return &ConfigError{Field: "Faults.BusBackoff", Value: f.BusBackoff, Reason: "bus NACK injection needs a positive backoff"}
	}
	return nil
}
