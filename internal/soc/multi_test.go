package soc

import (
	"testing"

	"gem5aladdin/internal/sim"
)

func TestRunMultiSingleMatchesRun(t *testing.T) {
	g := streamKernel(256)
	cfg := DefaultConfig()
	solo, err := RunGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti([]*Compiled{Compile(g)}, []Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Results) != 1 {
		t.Fatalf("results = %d", len(multi.Results))
	}
	if multi.Results[0].Runtime != solo.Runtime {
		t.Fatalf("single-accelerator RunMulti %v != Run %v",
			multi.Results[0].Runtime, solo.Runtime)
	}
	if multi.Makespan != solo.Runtime {
		t.Fatalf("makespan %v != runtime %v", multi.Makespan, solo.Runtime)
	}
}

func TestRunMultiContention(t *testing.T) {
	g := streamKernel(2048)
	cfg := DefaultConfig()
	solo, err := RunGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two identical DMA accelerators sharing the bus must each run
	// slower than alone, and combined DMA bytes must double.
	multi, err := RunMulti([]*Compiled{Compile(g), Compile(g)}, []Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range multi.Results {
		if r.Runtime <= solo.Runtime {
			t.Fatalf("accelerator %d ran as fast under contention (%v vs %v)",
				i, r.Runtime, solo.Runtime)
		}
	}
	if multi.Makespan < multi.Results[0].Runtime || multi.Makespan < multi.Results[1].Runtime {
		t.Fatal("makespan below an individual runtime")
	}
	// Fabric-wide bus stats include both accelerators' traffic.
	soloBytes := solo.Bus.BytesMoved
	if multi.Results[0].Bus.BytesMoved < 2*soloBytes {
		t.Fatalf("shared bus moved %d bytes, want >= %d",
			multi.Results[0].Bus.BytesMoved, 2*soloBytes)
	}
}

func TestRunMultiMixedMemorySystems(t *testing.T) {
	g1 := streamKernel(512)
	g2 := streamKernel(512)
	dmaCfg := DefaultConfig()
	cacheCfg := DefaultConfig()
	cacheCfg.Mem = Cache
	multi, err := RunMulti([]*Compiled{Compile(g1), Compile(g2)}, []Config{dmaCfg, cacheCfg})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Results[0].DMA.BytesMoved == 0 {
		t.Fatal("DMA accelerator moved nothing")
	}
	if multi.Results[1].Cache.Accesses == 0 {
		t.Fatal("cache accelerator never accessed its cache")
	}
	// Distinct physical windows: combined DRAM traffic reflects both.
	if multi.Results[0].DRAM.BytesMoved <= multi.Results[0].DMA.BytesMoved/2 {
		t.Fatal("DRAM traffic implausibly low")
	}
}

func TestRunMultiTwoCaches(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	cfg.Mem = Cache
	multi, err := RunMulti([]*Compiled{Compile(g), Compile(g)}, []Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	// Each accelerator pulls its own window's dirty lines from the CPU:
	// both see cache-to-cache fills and none steal the other's lines.
	for i, r := range multi.Results {
		if r.Cache.C2CFills == 0 {
			t.Fatalf("accelerator %d: no coherent fills", i)
		}
		if r.Cache.Misses == 0 {
			t.Fatalf("accelerator %d: no misses", i)
		}
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	a, err := RunMulti([]*Compiled{Compile(g), Compile(g)}, []Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti([]*Compiled{Compile(g), Compile(g)}, []Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i].Runtime != b.Results[i].Runtime {
			t.Fatalf("accelerator %d nondeterministic", i)
		}
	}
}

func TestRunMultiValidation(t *testing.T) {
	g := streamKernel(64)
	if _, err := RunMulti(nil, nil); err == nil {
		t.Fatal("empty RunMulti accepted")
	}
	if _, err := RunMulti([]*Compiled{Compile(g)}, []Config{DefaultConfig(), DefaultConfig()}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	bad := DefaultConfig()
	bad.Lanes = 0
	if _, err := RunMulti([]*Compiled{Compile(g)}, []Config{bad}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunMultiWithBackgroundTraffic(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	cfg.Traffic = &TrafficConfig{Period: 500 * sim.Nanosecond, Bytes: 128}
	multi, err := RunMulti([]*Compiled{Compile(g), Compile(g)}, []Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	quietCfg := DefaultConfig()
	quiet, err := RunMulti([]*Compiled{Compile(g), Compile(g)}, []Config{quietCfg, quietCfg})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Makespan <= quiet.Makespan {
		t.Fatal("background traffic did not slow the pair")
	}
}

func TestCoherentDMAEndToEnd(t *testing.T) {
	g := streamKernel(2048)
	sw := DefaultConfig()
	swRes, err := RunGraph(g, sw)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultConfig()
	hw.CoherentDMA = true
	hwRes, err := RunGraph(g, hw)
	if err != nil {
		t.Fatal(err)
	}
	if hwRes.Runtime >= swRes.Runtime {
		t.Fatalf("coherent DMA (%v) not faster than software coherence (%v)",
			hwRes.Runtime, swRes.Runtime)
	}
	if hwRes.Breakdown.FlushOnly != 0 {
		t.Fatal("coherent DMA still shows flush time")
	}
	if hwRes.DMA.LinesFlushed != 0 {
		t.Fatal("coherent DMA flushed lines")
	}
}

func TestRunRepeatedCacheAmortizes(t *testing.T) {
	g := streamKernel(1024)
	cfg := DefaultConfig()
	cfg.Mem = Cache
	// Inputs reused (resident coefficient table scenario): later rounds
	// must be much faster than the cold first round.
	reuse, err := RunRepeated(Compile(g), cfg, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reuse.Rounds) != 4 {
		t.Fatalf("rounds = %d", len(reuse.Rounds))
	}
	if reuse.SteadyState() >= reuse.Rounds[0] {
		t.Fatalf("steady state (%v) not faster than cold round (%v)",
			reuse.SteadyState(), reuse.Rounds[0])
	}
	if float64(reuse.SteadyState()) > 0.8*float64(reuse.Rounds[0]) {
		t.Fatalf("warm cache amortized too little: %v vs %v",
			reuse.SteadyState(), reuse.Rounds[0])
	}

	// Fresh inputs every round: the CPU re-dirties its lines, so every
	// round pays coherent refills and stays near the cold cost.
	fresh, err := RunRepeated(Compile(g), cfg, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if float64(fresh.SteadyState()) < 0.7*float64(fresh.Rounds[0]) {
		t.Fatalf("fresh inputs should not amortize: %v vs %v",
			fresh.SteadyState(), fresh.Rounds[0])
	}
	// And the reused-inputs steady state beats the fresh-inputs one.
	if reuse.SteadyState() >= fresh.SteadyState() {
		t.Fatalf("reuse steady state %v not below fresh %v",
			reuse.SteadyState(), fresh.SteadyState())
	}
}

func TestRunRepeatedDMAConstant(t *testing.T) {
	g := streamKernel(1024)
	cfg := DefaultConfig()
	rr, err := RunRepeated(Compile(g), cfg, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	// DMA pays the full transfer every round; all rounds within 5%.
	for i := 1; i < len(rr.Rounds); i++ {
		ratio := float64(rr.Rounds[i]) / float64(rr.Rounds[0])
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("DMA round %d = %v vs round 0 = %v", i, rr.Rounds[i], rr.Rounds[0])
		}
	}
	if rr.Final.Runtime != rr.Total {
		t.Fatal("final runtime != total")
	}
}

func TestRunRepeatedValidation(t *testing.T) {
	g := streamKernel(64)
	if _, err := RunRepeated(Compile(g), DefaultConfig(), 0, false); err == nil {
		t.Fatal("zero invocations accepted")
	}
}
