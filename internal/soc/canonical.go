package soc

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// AppendCanonical appends a deterministic, self-describing byte encoding of
// the design point c to b and returns the extended slice. The encoding is
// the content-addressing substrate for sweep-result caches: two Configs
// produce identical bytes iff every semantically relevant field is equal, so
// a hash of the encoding is a safe cache key for simulation results.
//
// Properties the encoding guarantees:
//
//   - field names and kinds are part of the stream, so renaming, reordering,
//     or retyping a Config field changes the encoding (a stale cache can
//     never alias a new parameter onto an old result);
//   - nested structs (DRAM, CPU, Faults) and pointers (Traffic, Power) are
//     walked recursively, with an explicit presence byte for pointers;
//   - the Obs attachment is excluded: observers change what is recorded,
//     never what is simulated.
//
// The walk is reflection-based and panics on a field kind it does not know
// how to canonicalize (func, chan, map, slice), so adding a non-canonical
// field to Config is caught by the canonical-coverage test rather than
// silently hashed as equal.
func (c Config) AppendCanonical(b []byte) []byte {
	b = append(b, "soc.Config/v1"...)
	return appendCanonicalValue(b, reflect.ValueOf(c))
}

func appendCanonicalValue(b []byte, v reflect.Value) []byte {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(b, 1)
		}
		return append(b, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.BigEndian.AppendUint64(b, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.BigEndian.AppendUint64(b, v.Uint())
	case reflect.Float32, reflect.Float64:
		// Bit pattern, not value: distinguishes -0 from +0 and keeps NaNs
		// stable. Validate rejects NaN probabilities anyway.
		return binary.BigEndian.AppendUint64(b, math.Float64bits(v.Float()))
	case reflect.Pointer:
		if v.IsNil() {
			return append(b, 0)
		}
		return appendCanonicalValue(append(b, 1), v.Elem())
	case reflect.Array:
		b = binary.BigEndian.AppendUint64(b, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			b = appendCanonicalValue(b, v.Index(i))
		}
		return b
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.Name == "Obs" {
				continue // observation is not part of the design point
			}
			b = append(b, f.Name...)
			b = append(b, '=')
			b = appendCanonicalValue(b, v.Field(i))
			b = append(b, ';')
		}
		return b
	default:
		panic(fmt.Sprintf("soc: cannot canonicalize %s field of kind %s",
			v.Type(), v.Kind()))
	}
}
