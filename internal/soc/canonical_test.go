package soc

import (
	"bytes"
	"testing"

	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/power"
	"gem5aladdin/internal/sim"
)

func canon(c Config) []byte { return c.AppendCanonical(nil) }

// TestCanonicalDeterministic pins the cache-key substrate: identical configs
// encode identically, and the encoding never depends on pointer identity.
func TestCanonicalDeterministic(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	if !bytes.Equal(canon(a), canon(b)) {
		t.Fatal("two DefaultConfigs encode differently")
	}
	// Distinct but equal-valued pointers must encode identically.
	a.Traffic = &TrafficConfig{Period: 100 * sim.Nanosecond, Bytes: 64}
	b.Traffic = &TrafficConfig{Period: 100 * sim.Nanosecond, Bytes: 64}
	a.Power, b.Power = power.Default(), power.Default()
	if !bytes.Equal(canon(a), canon(b)) {
		t.Fatal("equal-valued pointers encode differently")
	}
}

// TestCanonicalSensitivity checks that every kind of change to the design
// point — top-level scalar, nested struct, pointer presence, pointer
// contents, fault block — produces a different encoding.
func TestCanonicalSensitivity(t *testing.T) {
	base := canon(DefaultConfig())
	mutations := map[string]func(*Config){
		"mem kind":         func(c *Config) { c.Mem = Cache },
		"lanes":            func(c *Config) { c.Lanes = 8 },
		"bool flag":        func(c *Config) { c.Prefetch = !c.Prefetch },
		"accel clock":      func(c *Config) { c.AccelHz = 200e6 },
		"nested dram":      func(c *Config) { c.DRAM.Banks = 4 },
		"nested cpu clock": func(c *Config) { c.CPU.Clock.Period *= 2 },
		"fault seed":       func(c *Config) { c.Faults.Seed = 7 },
		"traffic present":  func(c *Config) { c.Traffic = &TrafficConfig{Period: 1, Bytes: 1} },
		"power present":    func(c *Config) { c.Power = power.Default() },
		"sanitize":         func(c *Config) { c.Sanitize = true },
		"watchdog":         func(c *Config) { c.WatchdogTicks = 1 },
	}
	for name, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if bytes.Equal(base, canon(c)) {
			t.Errorf("%s: mutation did not change the canonical encoding", name)
		}
	}
	// Pointer contents, not just presence.
	a, b := DefaultConfig(), DefaultConfig()
	a.Power, b.Power = power.Default(), power.Default()
	b.Power.LaneLeakUW *= 2
	if bytes.Equal(canon(a), canon(b)) {
		t.Error("power-model contents not part of the encoding")
	}
}

// TestCanonicalIgnoresObs pins the exclusion: an attached observer changes
// what is recorded, never what is simulated, so it must not split the cache.
func TestCanonicalIgnoresObs(t *testing.T) {
	plain := DefaultConfig()
	observed := DefaultConfig()
	observed.Obs = obs.New(true)
	if !bytes.Equal(canon(plain), canon(observed)) {
		t.Fatal("Obs attachment changed the canonical encoding")
	}
}
