package soc

import (
	"bytes"
	"reflect"
	"testing"

	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/power"
	"gem5aladdin/internal/sim"
)

func canon(c Config) []byte { return c.AppendCanonical(nil) }

// TestCanonicalDeterministic pins the cache-key substrate: identical configs
// encode identically, and the encoding never depends on pointer identity.
func TestCanonicalDeterministic(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	if !bytes.Equal(canon(a), canon(b)) {
		t.Fatal("two DefaultConfigs encode differently")
	}
	// Distinct but equal-valued pointers must encode identically.
	a.Traffic = &TrafficConfig{Period: 100 * sim.Nanosecond, Bytes: 64}
	b.Traffic = &TrafficConfig{Period: 100 * sim.Nanosecond, Bytes: 64}
	a.Power, b.Power = power.Default(), power.Default()
	if !bytes.Equal(canon(a), canon(b)) {
		t.Fatal("equal-valued pointers encode differently")
	}
}

// TestCanonicalSensitivity checks that every kind of change to the design
// point — top-level scalar, nested struct, pointer presence, pointer
// contents, fault block — produces a different encoding.
func TestCanonicalSensitivity(t *testing.T) {
	base := canon(DefaultConfig())
	mutations := map[string]func(*Config){
		"mem kind":         func(c *Config) { c.Mem = Cache },
		"lanes":            func(c *Config) { c.Lanes = 8 },
		"bool flag":        func(c *Config) { c.Prefetch = !c.Prefetch },
		"accel clock":      func(c *Config) { c.AccelHz = 200e6 },
		"nested dram":      func(c *Config) { c.DRAM.Banks = 4 },
		"nested cpu clock": func(c *Config) { c.CPU.Clock.Period *= 2 },
		"fault seed":       func(c *Config) { c.Faults.Seed = 7 },
		"traffic present":  func(c *Config) { c.Traffic = &TrafficConfig{Period: 1, Bytes: 1} },
		"power present":    func(c *Config) { c.Power = power.Default() },
		"sanitize":         func(c *Config) { c.Sanitize = true },
		"watchdog":         func(c *Config) { c.WatchdogTicks = 1 },
	}
	for name, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if bytes.Equal(base, canon(c)) {
			t.Errorf("%s: mutation did not change the canonical encoding", name)
		}
	}
	// Pointer contents, not just presence.
	a, b := DefaultConfig(), DefaultConfig()
	a.Power, b.Power = power.Default(), power.Default()
	b.Power.LaneLeakUW *= 2
	if bytes.Equal(canon(a), canon(b)) {
		t.Error("power-model contents not part of the encoding")
	}
}

// TestCanonicalIgnoresObs pins the exclusion: an attached observer changes
// what is recorded, never what is simulated, so it must not split the cache.
func TestCanonicalIgnoresObs(t *testing.T) {
	plain := DefaultConfig()
	observed := DefaultConfig()
	observed.Obs = obs.New(true)
	if !bytes.Equal(canon(plain), canon(observed)) {
		t.Fatal("Obs attachment changed the canonical encoding")
	}
}

// TestCanonicalCoversEveryField is the fail-closed hashing gate: it walks
// every exported Config field reflectively — recursing through nested
// structs, treating pointers as presence leaves — mutates each one on a
// fresh copy, and demands a different encoding. A field the canonical walk
// forgot (or a future skip-list entry beyond Obs) fails here instead of
// silently aliasing PointKeys and poisoning the durable store.
func TestCanonicalCoversEveryField(t *testing.T) {
	base := DefaultConfig()
	ref := canon(base)

	leaves := canonLeaves(reflect.TypeOf(base), "", nil)
	if len(leaves) < 30 {
		t.Fatalf("leaf enumeration looks broken: only %d leaves", len(leaves))
	}
	for _, lf := range leaves {
		mut := base
		v := reflect.ValueOf(&mut).Elem().FieldByIndex(lf.index)
		if !mutateCanonValue(v) {
			t.Errorf("field %s: no mutation strategy for kind %s", lf.name, v.Kind())
			continue
		}
		if bytes.Equal(canon(mut), ref) {
			t.Errorf("field %s is not consumed by the canonical encoding", lf.name)
		}
	}

	// The field names themselves are part of the stream; every top-level
	// exported field except Obs must appear.
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Name == "Obs" {
			continue
		}
		if !bytes.Contains(ref, []byte(f.Name+"=")) {
			t.Errorf("field name %s missing from the canonical stream", f.Name)
		}
	}

	// Obs must remain the single excluded field: an observer changes what
	// is recorded, never what is simulated.
	mut := base
	mut.Obs = obs.New(false)
	if !bytes.Equal(canon(mut), ref) {
		t.Error("Obs leaked into the canonical encoding")
	}
}

type canonLeaf struct {
	name  string
	index []int
}

// canonLeaves enumerates every mutatable leaf of a config struct type:
// scalars and pointers directly, nested struct fields recursively. Obs is
// the one sanctioned exclusion.
func canonLeaves(typ reflect.Type, prefix string, index []int) []canonLeaf {
	var out []canonLeaf
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if prefix == "" && f.Name == "Obs" {
			continue
		}
		name := f.Name
		if prefix != "" {
			name = prefix + "." + f.Name
		}
		idx := append(append([]int{}, index...), i)
		if f.Type.Kind() == reflect.Struct {
			out = append(out, canonLeaves(f.Type, name, idx)...)
			continue
		}
		out = append(out, canonLeaf{name: name, index: idx})
	}
	return out
}

// mutateCanonValue changes v to a provably different value, reporting
// whether it knew how.
func mutateCanonValue(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1)
	case reflect.Pointer:
		// Toggling presence flips the encoding's presence byte.
		if v.IsNil() {
			v.Set(reflect.New(v.Type().Elem()))
		} else {
			v.Set(reflect.Zero(v.Type()))
		}
	case reflect.Array:
		if v.Len() == 0 {
			return false
		}
		return mutateCanonValue(v.Index(0))
	default:
		return false
	}
	return true
}
