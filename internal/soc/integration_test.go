package soc

import (
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/machsuite"
)

// graphs caches DDDGs across integration tests.
var graphCache = map[string]*ddg.Graph{}

func kernelGraph(t testing.TB, name string) *ddg.Graph {
	t.Helper()
	if g, ok := graphCache[name]; ok {
		return g
	}
	k, err := machsuite.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := k.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := ddg.Build(tr)
	graphCache[name] = g
	return g
}

// TestAllKernelsAllMemorySystems is the end-to-end smoke test: every
// MachSuite kernel completes under every memory system and produces a
// self-consistent result.
func TestAllKernelsAllMemorySystems(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	for _, name := range machsuite.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := kernelGraph(t, name)
			for _, kind := range []MemKind{Isolated, DMA, Cache} {
				cfg := DefaultConfig()
				cfg.Mem = kind
				r, err := RunGraph(g, cfg)
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if r.Runtime == 0 {
					t.Fatalf("%v: zero runtime", kind)
				}
				if r.Breakdown.Total() != r.Runtime {
					t.Fatalf("%v: breakdown %v != runtime %v",
						kind, r.Breakdown.Total(), r.Runtime)
				}
				if r.Energy.Total() <= 0 {
					t.Fatalf("%v: no energy", kind)
				}
				// Every issued op count matches the trace: the schedule
				// executed each node exactly once.
				var issued uint64
				for _, c := range r.Datapath.OpsIssued {
					issued += c
				}
				if issued != uint64(g.NumNodes()) {
					t.Fatalf("%v: issued %d ops, trace has %d", kind, issued, g.NumNodes())
				}
			}
		})
	}
}

// TestPaperShapeDataMovementBound reproduces the Fig 2b claim: at 16-lane
// parallelism with baseline DMA, a substantial share of MachSuite spends
// most of its time on data movement.
func TestPaperShapeDataMovementBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	moveBound := 0
	total := 0
	for _, name := range machsuite.Names() {
		g := kernelGraph(t, name)
		cfg := DefaultConfig()
		cfg.Lanes, cfg.Partitions = 16, 16
		cfg.PipelinedDMA, cfg.DMATriggered = false, false
		r, err := RunGraph(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		move := r.Breakdown.FlushOnly + r.Breakdown.DMAFlush
		total++
		if move > r.Runtime/2 {
			moveBound++
		}
		t.Logf("%-20s move %5.1f%% of %s", name,
			100*float64(move)/float64(r.Runtime), r.Runtime)
	}
	// Paper: "about half of them are compute-bound and the other half
	// data-movement-bound". Accept a broad band.
	if moveBound < total/4 {
		t.Fatalf("only %d of %d kernels data-movement-bound", moveBound, total)
	}
}

// TestPaperShapeMdKnnOverlap reproduces the Sec IV-C1 claim: with ready
// bits, md-knn achieves near-complete compute/DMA overlap at 4 lanes.
func TestPaperShapeMdKnnOverlap(t *testing.T) {
	g := kernelGraph(t, "md-knn")
	cfg := DefaultConfig()
	cfg.Lanes, cfg.Partitions = 4, 4
	r, err := RunGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6a's md-knn bar: after both optimizations, the cycles where data
	// movement runs without compute are a small sliver of total runtime —
	// everything after the first neighbor-list bytes arrive overlaps.
	exposed := float64(r.Breakdown.DMAFlush + r.Breakdown.FlushOnly)
	frac := exposed / float64(r.Runtime)
	t.Logf("md-knn exposed movement: %.1f%% of runtime", 100*frac)
	if frac > 0.10 {
		t.Fatalf("md-knn exposes %.0f%% movement; paper shows near-full overlap", 100*frac)
	}
	if r.Breakdown.ComputeDMA == 0 {
		t.Fatal("no compute/DMA overlap at all")
	}
}

// TestPaperShapeFFTTriggeredIneffective reproduces the Sec IV-C1 claim:
// DMA-triggered compute barely helps fft-transpose (strided accesses need
// nearly all data).
func TestPaperShapeFFTTriggeredIneffective(t *testing.T) {
	g := kernelGraph(t, "fft-transpose")
	base := DefaultConfig()
	base.Lanes, base.Partitions = 4, 4
	base.DMATriggered = false
	r0, err := RunGraph(g, base)
	if err != nil {
		t.Fatal(err)
	}
	trig := base
	trig.DMATriggered = true
	r1, err := RunGraph(g, trig)
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(r0.Runtime-r1.Runtime) / float64(r0.Runtime)
	// stencil2d, by contrast, gains a lot.
	g2 := kernelGraph(t, "stencil-stencil2d")
	s0, err := RunGraph(g2, base)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunGraph(g2, trig)
	if err != nil {
		t.Fatal(err)
	}
	gain2 := float64(s0.Runtime-s1.Runtime) / float64(s0.Runtime)
	t.Logf("triggered-compute gain: fft %.1f%%, stencil2d %.1f%%", 100*gain, 100*gain2)
	if gain2 <= gain {
		t.Fatalf("stencil2d gain (%.1f%%) should exceed fft gain (%.1f%%)",
			100*gain2, 100*gain)
	}
}

// TestPaperShapeSerialKernelNoSpeedup reproduces the Fig 6b claim for nw:
// parallelism does not help serial kernels.
func TestPaperShapeSerialKernelNoSpeedup(t *testing.T) {
	g := kernelGraph(t, "nw-nw")
	cfg := DefaultConfig()
	cfg.Lanes, cfg.Partitions = 1, 1
	r1, err := RunGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Lanes, cfg.Partitions = 16, 16
	r16, err := RunGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Runtime) / float64(r16.Runtime)
	// Row-internal dependences let adjacent lanes pipeline slightly, so a
	// little under 2x is expected — nothing like the 16x of parallel
	// kernels.
	if speedup > 2.5 {
		t.Fatalf("nw sped up %.2fx with 16 lanes; should be nearly serial", speedup)
	}
}
