package soc

import (
	"errors"
	"math"
	"testing"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/sim"
)

func TestValidateDefaultConfig(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	cc := DefaultConfig()
	cc.Mem = Cache
	if err := cc.Validate(); err != nil {
		t.Fatalf("default cache config invalid: %v", err)
	}
	// A fully-populated, legal Faults block must also pass.
	fc := DefaultConfig()
	fc.Faults = fault.Config{Seed: 1, DRAMBitProb: 1e-6, SpadBitProb: 1e-6,
		CacheBitProb: 1e-6, DoubleBitFrac: 0.1, BusNackProb: 0.01,
		BusRetryLimit: 4, BusBackoff: 10 * sim.Nanosecond,
		DMATimeout: 100 * sim.Nanosecond, DMARetries: 2}
	fc.Sanitize = true
	fc.WatchdogTicks = sim.Tick(1e12)
	if err := fc.Validate(); err != nil {
		t.Fatalf("legal faults block rejected: %v", err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	mutate := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"zero lanes", mutate(func(c *Config) { c.Lanes = 0 }), "Lanes"},
		{"negative lanes", mutate(func(c *Config) { c.Lanes = -4 }), "Lanes"},
		{"zero partitions", mutate(func(c *Config) { c.Partitions = 0 }), "Partitions"},
		{"zero spad ports", mutate(func(c *Config) { c.SpadPorts = 0 }), "SpadPorts"},
		{"zero accel clock", mutate(func(c *Config) { c.AccelHz = 0 }), "AccelHz"},
		{"zero bus clock", mutate(func(c *Config) { c.BusHz = 0 }), "BusHz"},
		{"zero bus width", mutate(func(c *Config) { c.BusWidthBits = 0 }), "BusWidthBits"},
		{"ragged bus width", mutate(func(c *Config) { c.BusWidthBits = 12 }), "BusWidthBits"},
		{"huge bus width", mutate(func(c *Config) { c.BusWidthBits = 1 << 20 }), "BusWidthBits"},
		{"uint32-truncating bus width", mutate(func(c *Config) { c.BusWidthBits = 1 << 35 }), "BusWidthBits"},
		{"zero dram banks", mutate(func(c *Config) { c.DRAM.Banks = 0 }), "DRAM.Banks"},
		{"zero cpu clock", mutate(func(c *Config) { c.CPU.Clock.Period = 0 }), "CPU.Clock"},
		{"zero traffic period", mutate(func(c *Config) { c.Traffic = &TrafficConfig{Period: 0, Bytes: 64} }), "Traffic.Period"},
		{"unknown mem kind", mutate(func(c *Config) { c.Mem = MemKind(42) }), "Mem"},
		{"zero cache size", mutate(func(c *Config) { c.Mem = Cache; c.CacheKB = 0 }), "CacheKB"},
		{"non-pow2 cache line", mutate(func(c *Config) { c.Mem = Cache; c.CacheLineBytes = 48 }), "CacheLineBytes"},
		{"huge cache line", mutate(func(c *Config) { c.Mem = Cache; c.CacheLineBytes = 1 << 21 }), "CacheLineBytes"},
		{"uint32-truncating cache line", mutate(func(c *Config) {
			// 2^37 is a power of two that narrows to uint32(0) at cache
			// construction; the explicit bound must reject it first.
			c.Mem = Cache
			c.CacheLineBytes = 1 << 37
		}), "CacheLineBytes"},
		{"non-pow2 assoc", mutate(func(c *Config) { c.Mem = Cache; c.CacheAssoc = 3 }), "CacheAssoc"},
		{"zero cache ports", mutate(func(c *Config) { c.Mem = Cache; c.CachePorts = 0 }), "CachePorts"},
		{"zero mshrs", mutate(func(c *Config) { c.Mem = Cache; c.MSHRs = 0 }), "MSHRs"},
		{"negative dram prob", mutate(func(c *Config) { c.Faults.DRAMBitProb = -0.1 }), "Faults.DRAMBitProb"},
		{"spad prob over one", mutate(func(c *Config) { c.Faults.SpadBitProb = 1.5 }), "Faults.SpadBitProb"},
		{"NaN cache prob", mutate(func(c *Config) { c.Faults.CacheBitProb = math.NaN() }), "Faults.CacheBitProb"},
		{"double frac over one", mutate(func(c *Config) { c.Faults.DoubleBitFrac = 2 }), "Faults.DoubleBitFrac"},
		{"bus prob over one", mutate(func(c *Config) { c.Faults.BusNackProb = 1.01 }), "Faults.BusNackProb"},
		{"negative bus retries", mutate(func(c *Config) { c.Faults.BusNackProb = 0.1; c.Faults.BusBackoff = 1; c.Faults.BusRetryLimit = -1 }), "Faults.BusRetryLimit"},
		{"negative dma retries", mutate(func(c *Config) { c.Faults.DMARetries = -2 }), "Faults.DMARetries"},
		{"nack without backoff", mutate(func(c *Config) { c.Faults.BusNackProb = 0.1 }), "Faults.BusBackoff"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an impossible design point", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: fault attributed to %q, want %q", tc.name, ce.Field, tc.field)
		}
	}

	// Non-power-of-two set count: caught via the cache model's geometry
	// check and surfaced as a ConfigError naming the cache field group.
	c := DefaultConfig()
	c.Mem = Cache
	c.CacheKB = 3
	var ce *ConfigError
	if err := c.Validate(); !errors.As(err, &ce) {
		t.Fatalf("3KB cache: got %v, want a *ConfigError", err)
	}
}

// TestRunRejectsImpossibleConfig pins that Run fails fast with the typed
// error instead of panicking inside component construction.
func TestRunRejectsImpossibleConfig(t *testing.T) {
	g := streamKernel(64)
	for _, breakIt := range []func(*Config){
		func(c *Config) { c.Lanes = 0 },
		func(c *Config) { c.BusWidthBits = 0 },
		func(c *Config) { c.Mem = Cache; c.CacheLineBytes = 24 },
	} {
		cfg := DefaultConfig()
		breakIt(&cfg)
		_, err := RunGraph(g, cfg)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("Run(%+v) = %v, want *ConfigError", cfg, err)
		}
	}
	if _, err := RunRepeated(Compile(g), Config{}, 2, false); err == nil {
		t.Fatal("RunRepeated accepted the zero Config")
	}
	if _, err := RunMulti([]*Compiled{Compile(g), Compile(g)}, []Config{DefaultConfig(), {}}); err == nil {
		t.Fatal("RunMulti accepted a zero Config in position 1")
	}
}
