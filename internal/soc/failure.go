package soc

import (
	"errors"

	"gem5aladdin/internal/sanitize"
	"gem5aladdin/internal/sim"
)

// Abort-kind labels returned by AbortKind. They are part of the service API
// (job results carry them) and of the retry policy: a stall is deterministic
// under the same config and never worth retrying, a sanitizer violation is a
// simulator-correctness red flag that must surface immediately, while a fault
// abort is the seeded injector exhausting its retries — rerunning the point
// replays the identical fault sequence, so "transient" here means transient
// at the operational layer (a future config/seed may pass), not
// nondeterministic.
const (
	AbortStall    = "stall"    // watchdog no-progress detection (*sim.StallError)
	AbortSanitize = "sanitize" // MOESI invariant violation (*sanitize.Violation)
	AbortFault    = "fault"    // fault-injection retry exhaustion (DMA/bus give-up)
)

// AbortKind classifies an ErrAborted-wrapped run failure into one of the
// Abort* labels. It returns "" when err is nil or not an abort.
func AbortKind(err error) string {
	if err == nil || !errors.Is(err, ErrAborted) {
		return ""
	}
	var stall *sim.StallError
	if errors.As(err, &stall) {
		return AbortStall
	}
	var viol *sanitize.Violation
	if errors.As(err, &viol) {
		return AbortSanitize
	}
	return AbortFault
}

// StallOf extracts the watchdog diagnostic from an aborted run, or nil when
// the failure was not a stall.
func StallOf(err error) *sim.StallError {
	var stall *sim.StallError
	if errors.As(err, &stall) {
		return stall
	}
	return nil
}
