// Package soc composes the full gem5-Aladdin system model: it wires the
// accelerator datapath (internal/core) to the CPU driver, DMA engine,
// scratchpads or caches, TLB, system bus, and DRAM according to a single
// Config, runs one accelerator invocation end to end, and reports runtime,
// the flush/DMA/compute breakdown, energy, and EDP.
//
// This is the experiment entry point: callers Compile a DDDG once into an
// immutable per-kernel artifact, then every figure harness and the design
// space explorer call soc.Run with different Configs over that shared
// Compiled. RunMulti places several accelerators (the ACCEL0/ACCEL1 arrangement of
// the paper's Fig 3 SoC diagram) on one shared bus and memory to study
// shared-resource contention between accelerators.
package soc

import (
	"errors"
	"fmt"

	"gem5aladdin/internal/core"
	"gem5aladdin/internal/cpu"
	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/cache"
	"gem5aladdin/internal/mem/coherence"
	"gem5aladdin/internal/mem/dma"
	"gem5aladdin/internal/mem/dram"
	"gem5aladdin/internal/mem/spad"
	"gem5aladdin/internal/mem/tlb"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/power"
	"gem5aladdin/internal/sanitize"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

// MemKind selects the accelerator's memory system.
type MemKind uint8

// Memory system kinds.
const (
	// Isolated is standalone Aladdin: scratchpads assumed preloaded, no
	// data movement modeled. The paper's "designed in isolation" baseline.
	Isolated MemKind = iota
	// DMA is scratchpads filled by the DMA engine, with software cache
	// flush/invalidate management.
	DMA
	// Cache is a hardware-managed coherent cache (plus scratchpads for
	// Local arrays).
	Cache
	// Ideal services every access in one cycle with no port limits: the
	// "processing time" baseline of the Burger-style decomposition used
	// in Fig 7.
	Ideal
)

// String names the memory kind.
func (m MemKind) String() string {
	switch m {
	case Isolated:
		return "isolated"
	case DMA:
		return "dma"
	case Cache:
		return "cache"
	case Ideal:
		return "ideal"
	}
	return fmt.Sprintf("MemKind(%d)", uint8(m))
}

// TrafficConfig enables a background bus agent (shared-resource contention).
type TrafficConfig struct {
	Period sim.Tick
	Bytes  uint32
}

// Config is one accelerator design point plus its system context; the
// fields correspond to the Fig 3 parameter table.
type Config struct {
	Mem MemKind

	// Datapath.
	Lanes   int
	AccelHz float64
	// NoWaveBarrier removes inter-wave lane synchronization (ablation).
	NoWaveBarrier bool
	// RecordSchedule captures per-node issue/complete times in the result
	// for timeline visualization and schedule validation.
	RecordSchedule bool

	// Scratchpads.
	Partitions int
	SpadPorts  int

	// DMA options (Sec IV-B).
	PipelinedDMA bool
	DMATriggered bool
	// NoDMAInterleave disables round-robin descriptor interleaving across
	// arrays, reverting to the paper's array-by-array arrival order (an
	// ablation: interleaving is this implementation's extension, and it
	// strengthens DMA on indirect/multi-array kernels).
	NoDMAInterleave bool
	// DMAChunkBytes overrides the pipelined chunk size (0 = the paper's
	// 4 KB page-sized chunks). An ablation of the Sec IV-B1 choice.
	DMAChunkBytes uint32
	// ReadyBitBytes overrides the full/empty-bit granularity (0 = the CPU
	// cache line, the paper's choice; the array size over two approximates
	// classic double buffering, as Sec IV-B2 notes).
	ReadyBitBytes uint32
	// CoherentDMA makes the DMA engine a coherence participant (IBM
	// Cell-style, the exception the paper cites in Sec IV-A): the CPU
	// performs no flushes or invalidates, and dirty input data is snooped
	// out of the CPU cache during the transfer. An extension experiment.
	CoherentDMA bool

	// Accelerator cache.
	CacheKB        int
	CacheLineBytes int
	CachePorts     int
	CacheAssoc     int
	MSHRs          int
	Prefetch       bool

	// System.
	BusWidthBits int
	BusHz        float64
	// Fabric selects and parameterizes the interconnect topology. The zero
	// value is the round-robin bus, bit-identical to builds predating the
	// Fabric axis.
	Fabric  FabricConfig
	DRAM    dram.Config
	CPU     cpu.Config
	Traffic *TrafficConfig

	// Faults configures deterministic fault injection (internal/fault).
	// The zero value disables every fault class and leaves the simulation
	// bit-identical to a build without the injector.
	Faults fault.Config
	// Sanitize attaches the runtime MOESI invariant checker to the
	// coherence controller. A violation aborts the run with a transaction
	// history dump, surfaced as an ErrAborted-wrapped error.
	Sanitize bool
	// WatchdogTicks, when nonzero, bounds virtual time: a run still busy
	// past the budget aborts with a diagnostic of all in-flight state
	// instead of spinning. Independently of the budget, a run whose event
	// queue drains while MSHRs, bus queues, or DMA transfers are
	// outstanding always aborts with the same diagnostic.
	WatchdogTicks sim.Tick

	// Power model; nil selects power.Default().
	Power *power.Model

	// Obs, when non-nil, registers every component's counters into the
	// observer's registry and — when the observer carries a tracer —
	// subscribes timeline probes on the bus, DRAM, DMA engine, cache, and
	// datapath. nil keeps every probe disabled (single-branch hot-path
	// cost) and registers nothing.
	Obs *obs.Observer
}

// DefaultConfig returns the paper's nominal system: a 100 MHz accelerator,
// 4 lanes, 4 scratchpad banks, both DMA optimizations on, a 16 KB 4-way
// cache with 16 MSHRs, and a 32-bit 100 MHz system bus.
func DefaultConfig() Config {
	return Config{
		Mem:            DMA,
		Lanes:          4,
		AccelHz:        100e6,
		Partitions:     4,
		SpadPorts:      1,
		PipelinedDMA:   true,
		DMATriggered:   true,
		CacheKB:        16,
		CacheLineBytes: 32,
		CachePorts:     1,
		CacheAssoc:     4,
		MSHRs:          16,
		Prefetch:       true,
		BusWidthBits:   32,
		BusHz:          100e6,
		DRAM:           dram.DefaultConfig(),
		CPU:            cpu.DefaultConfig(),
	}
}

func (c Config) cacheConfig(clock sim.Clock) cache.Config {
	return cache.Config{
		SizeBytes:      uint64(c.CacheKB) * 1024,
		LineBytes:      uint32(c.CacheLineBytes),
		Assoc:          c.CacheAssoc,
		Ports:          c.CachePorts,
		MSHRs:          c.MSHRs,
		Clock:          clock,
		HitCycles:      1,
		Prefetch:       c.Prefetch,
		PrefetchDegree: 4,
		SnoopLat:       40 * sim.Nanosecond,
	}
}

// Breakdown is the paper's four-way runtime decomposition (Sec IV-C):
// flush with no DMA or compute; DMA without compute (flush may overlap);
// compute overlapped with data movement; compute alone. Idle covers
// engine setup gaps not attributable to any activity.
type Breakdown struct {
	FlushOnly   sim.Tick
	DMAFlush    sim.Tick
	ComputeDMA  sim.Tick
	ComputeOnly sim.Tick
	Idle        sim.Tick
}

// Total sums all components.
func (b Breakdown) Total() sim.Tick {
	return b.FlushOnly + b.DMAFlush + b.ComputeDMA + b.ComputeOnly + b.Idle
}

// RunResult is the outcome of one end-to-end invocation.
type RunResult struct {
	Config  Config
	Runtime sim.Tick
	Cycles  uint64 // accelerator cycles covering Runtime

	Breakdown Breakdown

	// Energy is the accelerator-only breakdown (datapath + local
	// memories), the quantity the paper's power/EDP plots use.
	Energy    power.Breakdown
	AvgPowerW float64
	EDPJs     float64 // joule-seconds, accelerator energy x runtime
	// TransferJ is the system-side data movement energy (bus + DRAM),
	// reported separately from accelerator power as in the paper.
	TransferJ float64
	// AreaMM2 is the accelerator's silicon area (lanes + local memories),
	// the "wasted hardware" axis of over-provisioned designs.
	AreaMM2 float64

	// Schedule holds per-node issue/complete/lane records when
	// Config.RecordSchedule was set.
	Schedule []core.ScheduleEntry

	Datapath core.Stats
	Spad     spad.Stats
	Cache    cache.Stats
	TLB      tlb.Stats
	Bus      bus.Stats
	DRAM     dram.Stats
	DMA      dma.Stats

	// Faults aggregates injector activity; zero-valued when fault
	// injection was disabled.
	Faults fault.Stats
	// FaultLog is the deterministic injected-fault log (same seed, same
	// config, same workload => identical log).
	FaultLog []fault.Record
}

// Seconds returns the runtime in seconds.
func (r *RunResult) Seconds() float64 { return float64(r.Runtime) / 1e12 }

// ErrAborted marks a run terminated by the robustness layer — the watchdog,
// the MOESI sanitizer, or fault-injection retry exhaustion — rather than by
// normal completion. Sweeps test errors.Is(err, ErrAborted) to skip a
// poisoned design point and continue.
var ErrAborted = errors.New("aborted")

// fabric is the shared part of the SoC: bus, DRAM, coherence, host CPU.
type fabric struct {
	eng     *sim.Engine
	dram    *dram.DRAM
	bus     bus.Fabric
	host    *cpu.CPU
	coh     *coherence.Controller
	cpuPeer int
	gen     *cpu.TrafficGen
	inj     *fault.Injector
	san     *sanitize.Checker

	// dpScratch, when non-nil, recycles the datapath's scheduler buffers
	// across design points (set by Runner; single-instance fabrics only).
	dpScratch *core.Scratch
}

func newFabric(cfg Config) *fabric {
	return newFabricOn(sim.NewEngine(), coherence.NewController(), cfg)
}

// newFabricOn assembles the fabric on a caller-provided engine and coherence
// controller, both assumed freshly created or Reset. Runner recycles its pair
// across design points through this path.
func newFabricOn(eng *sim.Engine, coh *coherence.Controller, cfg Config) *fabric {
	f := &fabric{eng: eng, coh: coh}
	f.inj = fault.New(cfg.Faults)
	f.dram = dram.New(eng, cfg.DRAM)
	f.dram.SetFaults(f.inj)
	f.bus = newInterconnect(eng, cfg, f.dram)
	f.bus.SetFaults(f.inj)
	f.host = cpu.New(eng, cfg.CPU)
	f.cpuPeer = f.coh.AddPeer()
	if cfg.Sanitize {
		f.san = sanitize.Attach(f.coh)
		f.san.OnViolation = func(v *sanitize.Violation) { eng.Abort(v) }
	}
	eng.AddWatch(sim.Watch{Name: "bus", InFlight: f.bus.InFlight, Dump: f.bus.DumpInFlight})
	eng.AddWatch(sim.Watch{Name: "dram", InFlight: f.dram.InFlight, Dump: f.dram.DumpInFlight})
	if cfg.Traffic != nil {
		f.gen = cpu.NewTrafficGen(eng, f.bus, cfg.Traffic.Period, cfg.Traffic.Bytes)
		f.gen.Start()
	}
	f.observe(cfg.Obs)
	return f
}

// run drives the engine to completion under the watchdog and surfaces any
// abort — watchdog stall, tick-budget overrun, sanitizer violation, DMA
// retry exhaustion — as an ErrAborted-wrapped error rather than a panic or
// a hang, so sweeps can skip the poisoned point.
func (f *fabric) run(cfg Config) error {
	_, err := f.eng.RunGuarded(cfg.WatchdogTicks)
	if err == nil && f.san != nil {
		err = f.san.CheckFinal()
	}
	if err != nil {
		return fmt.Errorf("soc: run %w: %w", ErrAborted, err)
	}
	return nil
}

// observe registers fabric-wide counters and, when tracing, the shared
// interconnect and memory-controller probes.
func (f *fabric) observe(o *obs.Observer) {
	if o == nil {
		return
	}
	reg := o.Registry
	f.eng.RegisterStats(reg, o.Path("sim"))
	f.bus.RegisterStats(reg, o.Path("soc.bus"))
	f.dram.RegisterStats(reg, o.Path("soc.dram"))
	f.host.RegisterStats(reg, o.Path("soc.cpu"))
	if f.gen != nil {
		f.gen.RegisterStats(reg, o.Path("soc.cpu.traffic"))
	}
	if f.inj != nil {
		f.inj.RegisterStats(reg, o.Path("soc.faults"))
	}
	if f.san != nil {
		f.san.RegisterStats(reg, o.Path("soc.sanitize"))
	}
	if o.Observing() {
		busProbe := &obs.Probe{}
		f.bus.AttachProbe(busProbe)
		dramProbe := &obs.Probe{}
		f.dram.AttachProbe(dramProbe)
		if o.Tracing() {
			o.Tracer.Subscribe(busProbe, o.Path("bus"))
			o.Tracer.SubscribeFunc(dramProbe, func(ev obs.Event) string {
				return o.Path(fmt.Sprintf("dram.bank%d", ev.Lane))
			})
			if f.inj != nil {
				faultProbe := &obs.Probe{}
				f.inj.AttachProbe(faultProbe)
				o.Tracer.Subscribe(faultProbe, o.Path("faults"))
			}
		}
		if o.Profiling() {
			busProbe.Listen(o.Profile.Listener(obs.BucketBus))
			dramProbe.Listen(o.Profile.Listener(obs.BucketDRAM))
		}
	}
}

// instance is one accelerator attached to the fabric.
type instance struct {
	f       *fabric
	cfg     Config
	k       *Compiled
	g       *ddg.Graph // k.Graph(), kept unwrapped for the hot paths
	addrOff uint64     // physical window for this accelerator's arrays

	sp     *spad.Spad
	cch    *cache.Cache
	tb     *tlb.TLB
	engDMA *dma.Engine
	mem    core.MemModel
	dpCfg  core.Config
	dp     *core.Datapath
	// dpProbe persists across rounds: newRound re-attaches it to the
	// fresh datapath.
	dpProbe *obs.Probe

	dpResult *core.Result
	endTick  sim.Tick
	finished bool
}

// instanceWindow spaces accelerator physical windows far apart.
const instanceWindow = 1 << 28

// attach wires one accelerator into the fabric. idx selects its physical
// address window.
func (f *fabric) attach(k *Compiled, cfg Config, idx int) (*instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := k.Graph()
	inst := &instance{f: f, cfg: cfg, k: k, g: g, addrOff: uint64(idx) * instanceWindow}
	accelClock := sim.NewClockHz(cfg.AccelHz)
	arrays := g.Trace.Arrays
	inst.sp = spad.New(spad.Config{Partitions: cfg.Partitions, Ports: cfg.SpadPorts}, arrays)
	inst.sp.SetFaults(f.inj)
	dpCfg := core.Config{Lanes: cfg.Lanes, Clock: accelClock,
		Latencies: core.DefaultOpLatencies(), NoBarrier: cfg.NoWaveBarrier,
		RecordSchedule: cfg.RecordSchedule}

	inst.dpCfg = dpCfg
	switch cfg.Mem {
	case Ideal:
		inst.mem = core.IdealMem{}
	case Isolated:
		inst.mem = core.NewSpadMem(inst.sp)
	case DMA:
		dmaCfg := dma.DefaultConfig(accelClock)
		dmaCfg.Pipelined = cfg.PipelinedDMA
		dmaCfg.Interleave = cfg.DMATriggered && !cfg.NoDMAInterleave
		if cfg.DMAChunkBytes != 0 {
			dmaCfg.ChunkBytes = cfg.DMAChunkBytes
		}
		dmaCfg.HardwareCoherent = cfg.CoherentDMA
		inst.engDMA = dma.New(f.eng, dmaCfg, f.bus)
		inst.engDMA.SetFaults(f.inj)
		inst.engDMA.OnAbort = func(err error) { f.eng.Abort(err) }
		f.eng.AddWatch(sim.Watch{Name: fmt.Sprintf("accel%d.dma", idx),
			InFlight: inst.engDMA.InFlight, Dump: inst.engDMA.DumpInFlight})
		inst.mem = core.NewSpadMem(inst.sp)
	case Cache:
		accelPeer := f.coh.AddPeer()
		inst.cch = cache.New(f.eng, cfg.cacheConfig(accelClock), f.bus, f.coh, accelPeer)
		inst.cch.SetFaults(f.inj)
		f.eng.AddWatch(sim.Watch{Name: fmt.Sprintf("accel%d.cache", idx),
			InFlight: inst.cch.InFlight, Dump: inst.cch.DumpInFlight})
		inst.tb = tlb.NewWithOffset(tlb.DefaultConfig(), 1<<30+inst.addrOff)
		inst.mem = core.NewCacheMem(f.eng, inst.cch, inst.tb, inst.sp, g)
		inst.dirtyCPULines()
	default:
		return nil, fmt.Errorf("soc: unknown memory kind %v", cfg.Mem)
	}
	inst.observe(cfg.Obs, idx)
	inst.newRound()
	return inst, nil
}

// observe registers this accelerator's counters and probes. Accelerator 0
// (the common single-accelerator case) uses bare soc.accel paths and track
// names; later instances nest under accelN.
func (inst *instance) observe(o *obs.Observer, idx int) {
	if o == nil {
		return
	}
	base := o.Sub("soc.accel")
	tpfx := ""
	if idx > 0 {
		base = o.Sub(fmt.Sprintf("soc.accel%d", idx))
		tpfx = fmt.Sprintf("accel%d.", idx)
	}
	reg := base.Registry

	// The datapath is rebuilt every invocation (newRound), so counters
	// read through a closure that follows the current instance and, once
	// finished, the (possibly round-accumulated) result.
	core.RegisterStats(reg, base.Path("datapath"), func() core.Stats {
		if inst.dpResult != nil {
			return inst.dpResult.Stats
		}
		return inst.dp.Snapshot()
	})
	inst.sp.RegisterStats(reg, base.Path("spad"))
	if inst.cch != nil {
		inst.cch.RegisterStats(reg, base.Path("cache"))
	}
	if inst.tb != nil {
		inst.tb.RegisterStats(reg, base.Path("tlb"))
	}
	if inst.engDMA != nil {
		inst.engDMA.RegisterStats(reg, base.Path("dma"))
		if idx == 0 {
			// The flush/invalidate work is performed by the host CPU's
			// cache on the accelerator's behalf; alias it under the CPU
			// cache path so DMA-mode dumps still carry cache activity.
			reg.CounterFunc(o.Path("soc.cpu.cache.lines_flushed"),
				"CPU cache lines flushed for accelerator DMA",
				func() uint64 { return inst.engDMA.Stats().LinesFlushed })
			reg.CounterFunc(o.Path("soc.cpu.cache.lines_invalidated"),
				"CPU cache lines invalidated for accelerator DMA",
				func() uint64 { return inst.engDMA.Stats().LinesInvalidated })
		}
	}

	if !o.Observing() {
		return
	}
	inst.dpProbe = &obs.Probe{}
	if o.Tracing() {
		// Coalesce the per-node retire stream into per-lane busy windows;
		// gaps of more than eight accelerator cycles stay visible as stalls.
		gap := uint64(inst.dpCfg.Clock.Cycles(8))
		o.Tracer.MergeLanes(inst.dpProbe, o.Path(tpfx+"datapath.lane%d"), "busy", gap)
	}
	if o.Profiling() {
		inst.dpProbe.Listen(o.Profile.Listener(obs.BucketCompute))
	}
	if inst.engDMA != nil {
		transfer, flush := &obs.Probe{}, &obs.Probe{}
		inst.engDMA.AttachProbe(transfer, flush)
		if o.Tracing() {
			o.Tracer.Subscribe(transfer, o.Path(tpfx+"dma"))
			o.Tracer.Subscribe(flush, o.Path(tpfx+"cpu.flush"))
		}
		if o.Profiling() {
			transfer.Listen(o.Profile.Listener(obs.BucketDMA))
			flush.Listen(o.Profile.Listener(obs.BucketFlush))
		}
	}
	if inst.cch != nil {
		cacheProbe := &obs.Probe{}
		inst.cch.AttachProbe(cacheProbe)
		if o.Tracing() {
			o.Tracer.Subscribe(cacheProbe, o.Path(tpfx+"cache"))
		}
		if o.Profiling() {
			// Fill spans cover MSHR allocation to line install: miss
			// service (and MSHR-stall) time. Writeback instants carry no
			// duration and fall out of attribution.
			cacheProbe.Listen(o.Profile.Listener(obs.BucketCacheMiss))
		}
	}
}

// dirtyCPULines marks every shared line Modified in the host CPU's cache:
// the host program produced the inputs and initialized the output buffers,
// so the accelerator pulls them through coherence. Called before each
// invocation unless the inputs are being reused untouched. The non-Local
// array spans come precomputed from the artifact.
func (inst *instance) dirtyCPULines() {
	cm, ok := inst.mem.(*core.CacheMem)
	if !ok {
		return
	}
	line := uint64(inst.cfg.CacheLineBytes)
	for _, sp := range inst.k.shared {
		base := cm.Translate(sp.base)
		for off := uint64(0); off < sp.bytes; off += line {
			inst.f.coh.Write(inst.f.cpuPeer, (base+off)&^(line-1))
		}
	}
}

// newRound builds a fresh datapath over the shared memory structures: the
// scheduler state is per invocation, the cache/TLB/scratchpad contents
// persist across rounds. Later rounds of one instance rewind the existing
// scheduler in place; the first round draws from the fabric's scratch when a
// Runner provided one.
func (inst *instance) newRound() {
	switch {
	case inst.dp != nil:
		inst.dp.Reset()
	case inst.f.dpScratch != nil:
		inst.dp = inst.f.dpScratch.Build(inst.f.eng, inst.k.prog, inst.dpCfg, inst.mem)
	default:
		inst.dp = core.NewDatapathOver(inst.f.eng, inst.k.prog, inst.dpCfg, inst.mem)
	}
	if inst.dpProbe != nil {
		inst.dp.AttachProbe(inst.dpProbe)
	}
	if inst.cch != nil {
		// The mfence before signaling waits for outstanding fills; if a
		// prefetch is the last access in flight, the cache's idle hook
		// re-checks the drain condition.
		inst.cch.OnIdle = inst.dp.Wake
	}
	inst.finished = false
	inst.dpResult = nil
}

// transfers returns the DMA descriptor list for the instance's arrays. The
// single-accelerator case (window 0) shares the artifact's manifest directly
// — the DMA engine only reads Transfer fields, so concurrent runs over one
// artifact are safe; later windows take an offset copy.
func (inst *instance) transfers() []dma.Transfer {
	if inst.addrOff == 0 {
		return inst.k.manifest
	}
	out := make([]dma.Transfer, len(inst.k.manifest))
	copy(out, inst.k.manifest)
	for i := range out {
		out[i].Base += inst.addrOff
	}
	return out
}

// launch begins the invocation; onDone fires when the host CPU observes
// completion.
func (inst *instance) launch(onDone func()) {
	finish := func() {
		inst.finished = true
		inst.endTick = inst.f.eng.Now()
		onDone()
	}
	switch inst.cfg.Mem {
	case Ideal, Isolated, Cache:
		inst.f.host.Invoke(func(signal func()) {
			inst.dp.Start(func(r *core.Result) { inst.dpResult = r; signal() })
		}, finish)
	case DMA:
		ts := inst.transfers()
		storeThenSignal := func(signal func()) func(*core.Result) {
			return func(r *core.Result) {
				inst.dpResult = r
				inst.engDMA.StorePhase(ts, signal)
			}
		}
		inst.f.host.Invoke(func(signal func()) {
			if inst.cfg.DMATriggered {
				gran := uint32(32)
				if inst.cfg.ReadyBitBytes != 0 {
					gran = inst.cfg.ReadyBitBytes
				}
				arrays := inst.g.Trace.Arrays
				inst.sp.EnableReadyBits(gran, arrays)
				inst.engDMA.OnArrive = func(arr int16, off, n uint32) {
					inst.sp.MarkArrived(arr, off, n)
					inst.dp.Wake()
				}
				// Compute starts immediately; loads gate on ready bits.
				inst.engDMA.LoadPhase(ts, func() {
					inst.sp.MarkAllArrived(arrays)
					inst.dp.Wake()
				})
				inst.dp.Start(storeThenSignal(signal))
			} else {
				inst.engDMA.LoadPhase(ts, func() {
					inst.dp.Start(storeThenSignal(signal))
				})
			}
		}, finish)
	}
}

// collect assembles the RunResult after the simulation drains. busStats
// and dramStats are fabric-wide; in multi-accelerator runs they include
// every agent's traffic.
func (inst *instance) collect(pm *power.Model) (*RunResult, error) {
	if !inst.finished || inst.dpResult == nil {
		return nil, fmt.Errorf("soc: simulation did not complete (deadlock?)")
	}
	res := &RunResult{Config: inst.cfg}
	res.Runtime = inst.endTick
	res.Cycles = sim.NewClockHz(inst.cfg.AccelHz).CyclesCeil(inst.endTick)
	res.Datapath = inst.dpResult.Stats
	res.Schedule = inst.dpResult.Schedule
	res.Spad = inst.sp.Stats()
	if inst.cch != nil {
		res.Cache = inst.cch.Stats()
	}
	if inst.tb != nil {
		res.TLB = inst.tb.Stats()
	}
	res.Bus = inst.f.bus.Stats()
	res.DRAM = inst.f.dram.Stats()
	res.Faults = inst.f.inj.Stats()
	res.FaultLog = inst.f.inj.Log()

	var flushIvals, dmaIvals []dma.Interval
	if inst.engDMA != nil {
		flushIvals = inst.engDMA.FlushIntervals()
		dmaIvals = inst.engDMA.DMAIntervals()
		res.DMA = inst.engDMA.Stats()
	}
	res.Breakdown = decompose(res.Runtime, flushIvals, dmaIvals, inst.dpResult.ComputeIntervals)
	res.Energy, res.TransferJ = computeEnergy(pm, inst.cfg, res, inst.g, inst.sp, inst.dpResult)
	res.AreaMM2 = computeArea(pm, inst.cfg, inst.g, inst.sp)
	res.AvgPowerW = res.Energy.AvgPowerW(res.Seconds())
	res.EDPJs = power.EDP(res.Energy.Total(), res.Seconds())
	return res, nil
}

// Runner evaluates design points one at a time while recycling the heavy
// simulation state between them: the event queue's heap and ring, the
// coherence directory's slot table, and the datapath scheduler's dependence
// counters, lane state, and completion ring. Results are bit-identical to
// soc.Run — a reset engine restarts tick and sequence numbering from zero,
// so event ordering cannot differ — but a sweep worker that owns a Runner
// stops paying the per-point warm-up allocations that dominate fabric
// construction. A Runner is single-threaded: each concurrent worker owns
// its own. The zero value is ready to use.
//
// Reuse contract: each Run invalidates nothing from previous calls — every
// RunResult (stats, schedule, intervals, fault log) owns its memory — but
// the Runner must not be shared between goroutines, and a Run must finish
// before the next begins.
type Runner struct {
	eng       *sim.Engine
	coh       *coherence.Controller
	dpScratch core.Scratch
}

// NewRunner returns an empty Runner. Equivalent to a zero value, provided
// for symmetry with the rest of the package.
func NewRunner() *Runner { return &Runner{} }

// Run executes one invocation of the compiled kernel k under cfg, recycling
// the runner's state. The artifact is read-only here: any number of Runners
// (one per goroutine) may share one Compiled.
func (r *Runner) Run(k *Compiled, cfg Config) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r.eng == nil {
		r.eng = sim.NewEngine()
		r.coh = coherence.NewController()
	} else {
		r.eng.Reset()
		r.coh.Reset()
	}
	f := newFabricOn(r.eng, r.coh, cfg)
	f.dpScratch = &r.dpScratch
	inst, err := f.attach(k, cfg, 0)
	if err != nil {
		return nil, err
	}
	inst.launch(func() {
		if f.gen != nil {
			f.gen.Stop()
		}
	})
	if err := f.run(cfg); err != nil {
		return nil, err
	}
	pm := cfg.Power
	if pm == nil {
		pm = power.Default()
	}
	return inst.collect(pm)
}

// ProfileRun executes one invocation with the cycle-attribution profiler
// subscribed to every component probe (datapath lanes, DMA, CPU flush,
// cache misses, bus, DRAM) and returns the run result together with the
// attribution of every simulated tick in [0, Runtime) to exactly one
// bucket. cfg.Obs is replaced by a run-private observer: attribution
// needs its own probe wiring, and stat registration paths may not repeat
// within a shared registry. The attribution's bucket ticks sum to
// res.Runtime bit-exactly (the MachSuite regression gate asserts this for
// every kernel). Profiled sweeps get the same state recycling as plain
// Run — only the observer is per-invocation.
func (r *Runner) ProfileRun(k *Compiled, cfg Config) (*RunResult, obs.Attribution, error) {
	prof := obs.NewProfile()
	cfg.Obs = &obs.Observer{Registry: obs.NewRegistry(), Profile: prof}
	res, err := r.Run(k, cfg)
	if err != nil {
		return nil, obs.Attribution{}, err
	}
	return res, prof.Attribute(uint64(res.Runtime)), nil
}

// Run executes one invocation of the compiled kernel k under cfg. It is a
// one-shot Runner; sweeps evaluating many points should hold a Runner per
// worker instead.
func Run(k *Compiled, cfg Config) (*RunResult, error) {
	var r Runner
	return r.Run(k, cfg)
}

// RunGraph compiles g and executes one invocation under cfg — the
// pre-artifact path. Callers evaluating more than one design point should
// Compile once and pass the artifact to Run.
func RunGraph(g *ddg.Graph, cfg Config) (*RunResult, error) {
	return Run(Compile(g), cfg)
}

// ProfileRun is the one-shot form of Runner.ProfileRun.
func ProfileRun(k *Compiled, cfg Config) (*RunResult, obs.Attribution, error) {
	var r Runner
	return r.ProfileRun(k, cfg)
}

// MultiResult is the outcome of a multi-accelerator run.
type MultiResult struct {
	// Results holds each accelerator's view, in attach order. Bus and
	// DRAM statistics are fabric-wide.
	Results []*RunResult
	// Makespan is when the last accelerator's completion was observed.
	Makespan sim.Tick
}

// RunMulti simulates several accelerators launched simultaneously on one
// shared bus, DRAM, and coherence fabric — the ACCEL0/ACCEL1 arrangement
// of the paper's Fig 3 SoC. System-level parameters (bus, DRAM, host CPU,
// background traffic) come from the first config.
func RunMulti(ks []*Compiled, cfgs []Config) (*MultiResult, error) {
	if len(ks) == 0 || len(ks) != len(cfgs) {
		return nil, fmt.Errorf("soc: RunMulti needs matching kernels and configs, got %d/%d",
			len(ks), len(cfgs))
	}
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("soc: accelerator %d: %w", i, err)
		}
	}
	f := newFabric(cfgs[0])
	insts := make([]*instance, len(ks))
	for i := range ks {
		inst, err := f.attach(ks[i], cfgs[i], i)
		if err != nil {
			return nil, fmt.Errorf("soc: accelerator %d: %w", i, err)
		}
		insts[i] = inst
	}
	remaining := len(insts)
	for _, inst := range insts {
		inst.launch(func() {
			remaining--
			if remaining == 0 && f.gen != nil {
				f.gen.Stop()
			}
		})
	}
	if err := f.run(cfgs[0]); err != nil {
		return nil, err
	}

	out := &MultiResult{}
	for i, inst := range insts {
		pm := cfgs[i].Power
		if pm == nil {
			pm = power.Default()
		}
		r, err := inst.collect(pm)
		if err != nil {
			return nil, fmt.Errorf("soc: accelerator %d: %w", i, err)
		}
		out.Results = append(out.Results, r)
		if r.Runtime > out.Makespan {
			out.Makespan = r.Runtime
		}
	}
	return out, nil
}

// RepeatResult is the outcome of RunRepeated.
type RepeatResult struct {
	// Rounds holds each invocation's latency, in order.
	Rounds []sim.Tick
	// Total is the end-to-end time of all invocations.
	Total sim.Tick
	// Final carries cumulative statistics; its Runtime is Total.
	Final *RunResult
}

// SteadyState returns the last round's latency: the warmed-up cost of an
// invocation once caches and TLBs hold whatever survives between calls.
func (r *RepeatResult) SteadyState() sim.Tick { return r.Rounds[len(r.Rounds)-1] }

// RunRepeated invokes the accelerator `invocations` times back to back.
// Cache and TLB contents persist between rounds. With reuseInputs=false
// (the realistic default) the host rewrites the inputs before every call,
// re-dirtying its cache lines and invalidating the accelerator's copies;
// with reuseInputs=true the inputs stay resident (weights, coefficient
// tables), which is where a cache interface amortizes its cold misses
// while DMA pays the full transfer every time.
func RunRepeated(k *Compiled, cfg Config, invocations int, reuseInputs bool) (*RepeatResult, error) {
	if invocations <= 0 {
		return nil, fmt.Errorf("soc: non-positive invocation count %d", invocations)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := newFabric(cfg)
	inst, err := f.attach(k, cfg, 0)
	if err != nil {
		return nil, err
	}
	out := &RepeatResult{}
	var accum core.Stats
	var allIntervals []dma.Interval

	roundStart := sim.Tick(0)
	for round := 0; round < invocations; round++ {
		if round > 0 {
			inst.newRound()
			if !reuseInputs {
				inst.dirtyCPULines()
			}
		}
		inst.launch(func() {})
		if err := f.run(cfg); err != nil {
			return nil, fmt.Errorf("soc: round %d: %w", round, err)
		}
		if !inst.finished || inst.dpResult == nil {
			return nil, fmt.Errorf("soc: round %d did not complete", round)
		}
		out.Rounds = append(out.Rounds, inst.endTick-roundStart)
		roundStart = inst.endTick
		for k := range accum.OpsIssued {
			accum.OpsIssued[k] += inst.dpResult.Stats.OpsIssued[k]
		}
		accum.Cycles += inst.dpResult.Stats.Cycles
		accum.ActiveCycles += inst.dpResult.Stats.ActiveCycles
		accum.MemStalls += inst.dpResult.Stats.MemStalls
		accum.DepStalls += inst.dpResult.Stats.DepStalls
		accum.BarrierStalls += inst.dpResult.Stats.BarrierStalls
		allIntervals = append(allIntervals, inst.dpResult.ComputeIntervals...)
	}
	if f.gen != nil {
		f.gen.Stop()
		f.eng.Run()
	}

	// Cumulative result over the whole sequence.
	inst.dpResult.Stats = accum
	inst.dpResult.ComputeIntervals = dma.MergeIntervals(allIntervals)
	pm := cfg.Power
	if pm == nil {
		pm = power.Default()
	}
	final, err := inst.collect(pm)
	if err != nil {
		return nil, err
	}
	out.Final = final
	out.Total = final.Runtime
	return out, nil
}

// decompose applies the paper's interval algebra to the activity windows.
func decompose(total sim.Tick, flush, dmaIv, comp []dma.Interval) Breakdown {
	move := dma.Union(flush, dmaIv)
	var b Breakdown
	b.FlushOnly = dma.TotalDuration(dma.Subtract(dma.Subtract(flush, dmaIv), comp))
	b.DMAFlush = dma.TotalDuration(dma.Subtract(dmaIv, comp))
	b.ComputeDMA = dma.TotalDuration(dma.Intersect(comp, move))
	b.ComputeOnly = dma.TotalDuration(dma.Subtract(comp, move))
	covered := b.FlushOnly + b.DMAFlush + b.ComputeDMA + b.ComputeOnly
	if total > covered {
		b.Idle = total - covered
	}
	return b
}

// computeEnergy assembles the accelerator energy breakdown for the run and
// the separately-reported system transfer energy.
func computeEnergy(pm *power.Model, cfg Config, res *RunResult, g *ddg.Graph,
	sp *spad.Spad, dp *core.Result) (power.Breakdown, float64) {

	seconds := res.Seconds()
	var bd power.Breakdown

	// Functional units: dynamic per issued op, leakage for the lanes over
	// the whole invocation (the datapath leaks while waiting on data).
	for k := 0; k < trace.NumKinds; k++ {
		bd.FUDynamic += float64(dp.Stats.OpsIssued[k]) * pm.OpEnergyJ(trace.OpKind(k))
	}
	bd.FULeak = pm.LaneLeakW(cfg.Lanes) * seconds

	// Local memories.
	arrays := g.Trace.Arrays
	switch cfg.Mem {
	case Isolated, DMA:
		bd.Add(sp.Energy(pm, arrays, seconds))
	case Cache:
		var locals []*trace.Array
		for _, a := range arrays {
			if a.Dir == trace.Local {
				locals = append(locals, a)
			}
		}
		if len(locals) > 0 {
			bd.Add(sp.Energy(pm, locals, seconds))
		}
		size := uint64(cfg.CacheKB) * 1024
		bd.MemDynamic += float64(res.Cache.Accesses) *
			pm.CacheAccessJ(size, cfg.CachePorts, cfg.CacheAssoc)
		bd.MemLeak += pm.CacheLeakW(size, cfg.CachePorts) * seconds
	}

	// Data movement energy (bus + DRAM), reported alongside but not
	// inside the accelerator's power envelope.
	var transfer float64
	switch cfg.Mem {
	case DMA:
		moved := res.DMA.BytesMoved
		transfer = pm.BusJ(moved) + pm.DRAMJ(moved)
	case Cache:
		lineBytes := uint64(cfg.CacheLineBytes)
		c2c := res.Cache.C2CFills
		mem := res.Cache.MemFills + res.Cache.Writebacks
		transfer = pm.BusJ((c2c+mem)*lineBytes) + pm.DRAMJ(mem*lineBytes)
	}
	return bd, transfer
}

// computeArea sums the accelerator's silicon: datapath lanes plus either
// scratchpad banks sized to hold every array or the cache plus
// Local-array scratchpads.
func computeArea(pm *power.Model, cfg Config, g *ddg.Graph, sp *spad.Spad) float64 {
	area := pm.LaneAreaTotalMM2(cfg.Lanes)
	arrays := g.Trace.Arrays
	switch cfg.Mem {
	case Isolated, DMA, Ideal:
		for _, a := range arrays {
			area += pm.SRAMAreaMM2(sp.BankBytes(a), cfg.SpadPorts) * float64(cfg.Partitions)
		}
	case Cache:
		for _, a := range arrays {
			if a.Dir == trace.Local {
				area += pm.SRAMAreaMM2(sp.BankBytes(a), cfg.SpadPorts) * float64(cfg.Partitions)
			}
		}
		area += pm.CacheAreaMM2(uint64(cfg.CacheKB)*1024, cfg.CachePorts)
	}
	return area
}

// RunTrace is a convenience wrapper building the DDDG and compiling it
// first. Prefer Build + Compile + Run when sweeping many configs over one
// kernel.
func RunTrace(tr *trace.Trace, cfg Config) (*RunResult, error) {
	return RunGraph(ddg.Build(tr), cfg)
}
