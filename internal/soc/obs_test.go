package soc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gem5aladdin/internal/obs"
)

// observedRun simulates g under cfg with a fresh observer and returns the
// three dump artifacts.
func observedRun(t *testing.T, cfg Config) (text, jsonDump, trace []byte) {
	t.Helper()
	g := streamKernel(512)
	o := obs.New(true)
	cfg.Obs = o
	if _, err := RunGraph(g, cfg); err != nil {
		t.Fatal(err)
	}
	var tb, jb, trb bytes.Buffer
	if err := o.Registry.DumpText(&tb); err != nil {
		t.Fatal(err)
	}
	if err := o.Registry.DumpJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := o.Tracer.WriteJSON(&trb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes(), trb.Bytes()
}

// Two identical observed runs must produce byte-identical stats dumps and
// trace timelines: the dumps are part of the reproducibility contract.
func TestObservedRunsAreByteIdentical(t *testing.T) {
	for _, mem := range []MemKind{DMA, Cache} {
		cfg := DefaultConfig()
		cfg.Mem = mem
		t1, j1, tr1 := observedRun(t, cfg)
		t2, j2, tr2 := observedRun(t, cfg)
		if !bytes.Equal(t1, t2) {
			t.Errorf("%v: text dumps differ", mem)
		}
		if !bytes.Equal(j1, j2) {
			t.Errorf("%v: JSON dumps differ", mem)
		}
		if !bytes.Equal(tr1, tr2) {
			t.Errorf("%v: traces differ", mem)
		}
	}
}

// The DMA-mode dump must cover every major component the acceptance
// criteria name: cache (host flush activity), DRAM, bus, DMA, datapath.
func TestStatsDumpCoversComponents(t *testing.T) {
	cfg := DefaultConfig()
	text, jsonDump, trace := observedRun(t, cfg)
	dump := string(text)
	for _, path := range []string{
		"soc.accel.datapath.ops_issued",
		"soc.accel.dma.descriptors",
		"soc.accel.spad.reads",
		"soc.bus.transactions",
		"soc.cpu.cache.lines_flushed",
		"soc.dram.row_hits",
		"sim.events_fired",
	} {
		if !strings.Contains(dump, path) {
			t.Errorf("text dump missing %s", path)
		}
	}

	var nested map[string]any
	if err := json.Unmarshal(jsonDump, &nested); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}
	if _, ok := nested["soc"]; !ok {
		t.Error("JSON dump missing soc subtree")
	}

	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &tf); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	tracks := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			tracks[ev.Args["name"].(string)] = true
		}
	}
	for _, want := range []string{"bus", "dma", "cpu.flush", "datapath.lane0"} {
		if !tracks[want] {
			t.Errorf("trace missing track %q (have %v)", want, tracks)
		}
	}
	hasDRAM := false
	for name := range tracks {
		if strings.HasPrefix(name, "dram.bank") {
			hasDRAM = true
		}
	}
	if !hasDRAM {
		t.Errorf("trace missing DRAM bank tracks (have %v)", tracks)
	}
}

// Observability must not perturb the simulation: runtimes with and without
// an observer attached are identical.
func TestObserverDoesNotPerturbTiming(t *testing.T) {
	g := streamKernel(512)
	cfg := DefaultConfig()
	plain := mustRun(t, g, cfg)
	cfg.Obs = obs.New(true)
	observed := mustRun(t, g, cfg)
	if plain.Runtime != observed.Runtime {
		t.Fatalf("observer changed runtime: %v vs %v", plain.Runtime, observed.Runtime)
	}
}

// RunMulti nests the second accelerator's stats and tracks under accel1.
func TestMultiAcceleratorObservability(t *testing.T) {
	g := streamKernel(256)
	cfg := DefaultConfig()
	o := obs.New(true)
	cfg.Obs = o
	if _, err := RunMulti([]*Compiled{Compile(g), Compile(g)}, []Config{cfg, cfg}); err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := o.Registry.DumpText(&tb); err != nil {
		t.Fatal(err)
	}
	dump := tb.String()
	if !strings.Contains(dump, "soc.accel.datapath.ops_issued") ||
		!strings.Contains(dump, "soc.accel1.datapath.ops_issued") {
		t.Fatalf("multi-accel dump missing per-instance paths:\n%s", dump)
	}
}
