// Package store is the durability substrate of the DSE stack: a disk-backed,
// content-addressed key/value store that survives SIGKILL. The sweep service
// writes every simulated design point through it (keyed by dse.PointKey) and
// checkpoints job manifests into it, so a restarted server warm-starts its
// cache and resumes unfinished jobs instead of re-simulating from zero.
//
// # Format
//
// A store is a directory of append-only segment files. The active segment is
// seg-NNNNNNNN.open; when it reaches Options.SegmentBytes it is synced and
// atomically renamed to seg-NNNNNNNN.log (sealed, immutable from then on) and
// the next segment opens. Each record is:
//
//	[0:4)   crc32 (Castagnoli) over bytes [4:end)
//	[4:5)   type: 1 = put, 2 = tombstone
//	[5:9)   key length  (little endian)
//	[9:13)  value length (little endian)
//	[13:)   key bytes, then value bytes
//
// Within one key the latest record wins, so an overwrite is just an append
// and a delete is a tombstone. An in-memory index maps every live key to its
// newest record; Get re-reads the record from disk and re-verifies the
// checksum, so a corrupted byte can never be returned as data.
//
// # Recovery
//
// Open replays every segment in sequence order. A record whose header parses
// but whose checksum fails is skipped (counted in Stats.BadRecords) and the
// replay continues at the next record boundary. A record whose header is
// implausible — lengths past the segment end, an unknown type — marks the
// rest of the segment as a torn tail: in the active segment the file is
// truncated at the last good record (the normal crash case — an interrupted
// append), in a sealed segment the tail bytes are counted and left for
// compaction to discard. Recovery never fails the open; in the worst case the
// store comes back empty with everything counted as lost.
//
// # Compaction
//
// Appends accumulate dead bytes (overwritten records, torn tails). When dead
// bytes exceed both Options.CompactMinBytes and Options.CompactWasteFrac of
// the store, the next Put triggers a compaction: every live record (and every
// tombstone — dropping a tombstone while an older segment might survive a
// crash could resurrect the deleted key) is rewritten into fresh sealed
// segments, then the old segments are deleted. A crash anywhere during
// compaction is safe: new segments appear atomically (written as .tmp, then
// renamed), and until the old files are removed replay just sees duplicate
// records whose newest copy wins.
//
// A Store is safe for concurrent use within one process. It is a
// single-process store: two processes must not open the same directory.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gem5aladdin/internal/obs"
)

// Record types.
const (
	recPut  = 1
	recTomb = 2
)

const (
	headerSize = 13
	maxKeyLen  = 1 << 16 // 64 KiB
	maxValLen  = 1 << 28 // 256 MiB
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Store. The zero value is usable: every field has a default.
type Options struct {
	// SegmentBytes is the seal threshold: the active segment is sealed
	// (synced + renamed immutable) once it grows past this. Default 8 MiB.
	SegmentBytes int64
	// CompactMinBytes is the minimum dead-byte volume before a compaction
	// is considered. Default 1 MiB.
	CompactMinBytes int64
	// CompactWasteFrac is the dead/total byte fraction that, together with
	// CompactMinBytes, triggers compaction on the next Put. Default 0.5.
	CompactWasteFrac float64
	// SyncOnPut fsyncs after every append. Off by default: the write-through
	// cache batches durability at segment seals and Close/Sync calls, which
	// is what keeps persistence overhead low. Process death (SIGKILL) never
	// loses unsynced appends — only the records an OS crash would lose.
	SyncOnPut bool
}

func (o *Options) setDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
	if o.CompactWasteFrac <= 0 {
		o.CompactWasteFrac = 0.5
	}
}

// ref locates one live record: the segment it lives in, the record's start
// offset, and its key/value lengths.
type ref struct {
	seg  int
	off  int64
	klen uint32
	vlen uint32
}

func (r ref) size() int64 { return headerSize + int64(r.klen) + int64(r.vlen) }

type segment struct {
	id     int
	f      *os.File
	size   int64
	sealed bool
}

// Stats is a point-in-time snapshot of store health counters.
type Stats struct {
	// Records is the number of live keys.
	Records int
	// Segments is the number of on-disk segment files.
	Segments int
	// TotalBytes and DeadBytes describe the on-disk footprint; dead bytes
	// are superseded records and unreadable tails awaiting compaction.
	TotalBytes int64
	DeadBytes  int64

	Puts    uint64
	Gets    uint64
	Hits    uint64
	Deletes uint64

	// BadRecords counts checksum-failed records skipped during recovery.
	BadRecords uint64
	// TornBytes counts unreadable tail bytes found during recovery
	// (truncated from the active segment, left-for-compaction in sealed
	// ones).
	TornBytes uint64
	// Seals and Compactions count lifecycle events.
	Seals       uint64
	Compactions uint64
}

// Store is a disk-backed content-addressed key/value store. Open one per
// directory; use from any number of goroutines; Close when done.
type Store struct {
	dir string
	opt Options

	mu      sync.RWMutex
	index   map[string]ref
	tombs   map[string]struct{} // deleted keys whose tombstones must survive compaction
	segs    map[int]*segment
	active  *segment
	nextID  int
	total   int64 // bytes across all segments
	dead    int64 // bytes of superseded records + unreadable tails
	scratch []byte
	closed  bool

	// gets and hits are atomic because Get mutates them under the read
	// lock; the rest only change under the write lock.
	gets, hits                      atomic.Uint64
	puts, deletes                   uint64
	badRecords, tornBytes           uint64
	seals, compactions, autoCompact uint64
}

// Open opens (creating if needed) the store in dir and replays its segments.
// Recovery is tolerant: torn tails are truncated, checksum-failed records are
// skipped and counted, and the store always opens.
func Open(dir string, opt Options) (*Store, error) {
	opt.setDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:   dir,
		opt:   opt,
		index: make(map[string]ref),
		tombs: make(map[string]struct{}),
		segs:  make(map[int]*segment),
	}
	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// segPath names a segment file; sealed segments end in .log, the active one
// in .open.
func (s *Store) segPath(id int, sealed bool) string {
	ext := ".open"
	if sealed {
		ext = ".log"
	}
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d%s", id, ext))
}

// recover scans dir, replays every segment in id order, reuses the
// highest-id .open file as the active segment (after truncating any torn
// tail), and seals stray .open files left by an interrupted seal sequence.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type found struct {
		id     int
		sealed bool
	}
	var files []found
	for _, de := range entries {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Interrupted compaction output: never made visible, discard.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		var id int
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".log"):
			if _, err := fmt.Sscanf(name, "seg-%08d.log", &id); err == nil {
				files = append(files, found{id, true})
			}
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".open"):
			if _, err := fmt.Sscanf(name, "seg-%08d.open", &id); err == nil {
				files = append(files, found{id, false})
			}
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].id < files[j].id })

	for i, fe := range files {
		last := i == len(files)-1
		path := s.segPath(fe.id, fe.sealed)
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		seg := &segment{id: fe.id, f: f, sealed: fe.sealed}
		good, torn := s.replay(seg)
		seg.size = good + torn
		switch {
		case !fe.sealed && last:
			// The normal active segment: drop the torn tail and keep
			// appending where the last good record ended.
			if torn > 0 {
				if err := f.Truncate(good); err != nil {
					return fmt.Errorf("store: truncating torn tail: %w", err)
				}
				seg.size = good
			}
			s.active = seg
		case !fe.sealed:
			// A stray .open below a higher id (interrupted seal sequence):
			// seal it now so exactly one segment accepts appends.
			if torn > 0 {
				if err := f.Truncate(good); err != nil {
					return fmt.Errorf("store: truncating torn tail: %w", err)
				}
				seg.size = good
			}
			if err := s.seal(seg); err != nil {
				return err
			}
		default:
			// Sealed segments are immutable: a torn tail is counted dead
			// and discarded at the next compaction.
			s.dead += torn
		}
		s.segs[fe.id] = seg
		s.total += seg.size
		if fe.id >= s.nextID {
			s.nextID = fe.id + 1
		}
	}
	if s.active == nil {
		if err := s.openActive(); err != nil {
			return err
		}
	}
	return nil
}

// replay scans one segment from the start, applying records to the index.
// It returns the offset of the end of the last good record and how many
// trailing bytes were unreadable (torn tail). Mid-segment checksum failures
// are skipped with BadRecords counted; their bytes are dead.
func (s *Store) replay(seg *segment) (good, torn int64) {
	info, err := seg.f.Stat()
	if err != nil {
		return 0, 0
	}
	size := info.Size()
	var hdr [headerSize]byte
	off := int64(0)
	for off+headerSize <= size {
		if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		typ := hdr[4]
		klen := binary.LittleEndian.Uint32(hdr[5:9])
		vlen := binary.LittleEndian.Uint32(hdr[9:13])
		if (typ != recPut && typ != recTomb) || klen == 0 || klen > maxKeyLen || vlen > maxValLen ||
			off+headerSize+int64(klen)+int64(vlen) > size {
			// Implausible header: everything from here is a torn tail.
			break
		}
		rlen := headerSize + int64(klen) + int64(vlen)
		body := make([]byte, rlen-4)
		if _, err := seg.f.ReadAt(body, off+4); err != nil {
			break
		}
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(hdr[0:4]) {
			// Framed but corrupt: skip this record, keep replaying.
			s.badRecords++
			s.dead += rlen
			off += rlen
			good = off
			continue
		}
		key := string(body[9 : 9+klen])
		s.apply(key, typ, ref{seg: seg.id, off: off, klen: klen, vlen: vlen})
		off += rlen
		good = off
	}
	torn = size - good
	if torn > 0 {
		s.tornBytes += uint64(torn)
	}
	return good, torn
}

// apply folds one replayed or appended record into the index (latest wins).
func (s *Store) apply(key string, typ byte, r ref) {
	if old, ok := s.index[key]; ok {
		s.dead += old.size()
	}
	switch typ {
	case recPut:
		s.index[key] = r
		if _, ok := s.tombs[key]; ok {
			delete(s.tombs, key)
			// The superseded tombstone record is now dead weight; its size
			// is unknown here, approximated by a header+key record.
			s.dead += headerSize + int64(len(key))
		}
	case recTomb:
		delete(s.index, key)
		s.tombs[key] = struct{}{}
		// The tombstone itself stays live (it must survive compaction), but
		// it carries no value.
	}
}

// openActive creates the next active segment.
func (s *Store) openActive() error {
	id := s.nextID
	s.nextID++
	f, err := os.OpenFile(s.segPath(id, false), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, f: f}
	s.segs[id] = seg
	s.active = seg
	return nil
}

// seal makes the segment immutable: sync, atomic rename .open -> .log.
func (s *Store) seal(seg *segment) error {
	if seg.sealed {
		return nil
	}
	if err := seg.f.Sync(); err != nil {
		return fmt.Errorf("store: sealing segment %d: %w", seg.id, err)
	}
	if err := os.Rename(s.segPath(seg.id, false), s.segPath(seg.id, true)); err != nil {
		return fmt.Errorf("store: sealing segment %d: %w", seg.id, err)
	}
	seg.sealed = true
	s.seals++
	s.syncDir()
	return nil
}

// syncDir fsyncs the directory so renames and creates are durable.
// Best-effort: some filesystems reject directory fsync.
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// encode assembles one record into the reusable scratch buffer.
func (s *Store) encode(typ byte, key string, val []byte) []byte {
	rlen := headerSize + len(key) + len(val)
	if cap(s.scratch) < rlen {
		s.scratch = make([]byte, 0, rlen+rlen/2)
	}
	b := s.scratch[:rlen]
	b[4] = typ
	binary.LittleEndian.PutUint32(b[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(b[9:13], uint32(len(val)))
	copy(b[headerSize:], key)
	copy(b[headerSize+len(key):], val)
	binary.LittleEndian.PutUint32(b[0:4], crc32.Checksum(b[4:], crcTable))
	return b
}

// append writes one record to the active segment and indexes it.
func (s *Store) append(typ byte, key string, val []byte) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	if len(val) > maxValLen {
		return fmt.Errorf("store: value length %d exceeds %d", len(val), maxValLen)
	}
	rec := s.encode(typ, key, val)
	off := s.active.size
	if _, err := s.active.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if s.opt.SyncOnPut {
		if err := s.active.f.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	s.active.size += int64(len(rec))
	s.total += int64(len(rec))
	s.apply(key, typ, ref{seg: s.active.id, off: off, klen: uint32(len(key)), vlen: uint32(len(val))})
	if s.active.size >= s.opt.SegmentBytes {
		if err := s.seal(s.active); err != nil {
			return err
		}
		if err := s.openActive(); err != nil {
			return err
		}
	}
	if s.dead >= s.opt.CompactMinBytes && s.total > 0 &&
		float64(s.dead) >= s.opt.CompactWasteFrac*float64(s.total) {
		s.autoCompact++
		return s.compactLocked()
	}
	return nil
}

// Put stores val under key, superseding any previous value.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	return s.append(recPut, key, val)
}

// Delete removes key by appending a tombstone. Deleting an absent key is a
// no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		return nil
	}
	s.deletes++
	return s.append(recTomb, key, nil)
}

// Get returns the value stored under key. The record is re-read from disk
// and its checksum re-verified, so a Get can never return corrupted bytes:
// corruption surfaces as an error instead.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.gets.Add(1)
	r, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	seg := s.segs[r.seg]
	buf := make([]byte, r.size())
	if _, err := seg.f.ReadAt(buf, r.off); err != nil {
		return nil, false, fmt.Errorf("store: reading %q: %w", key, err)
	}
	if crc32.Checksum(buf[4:], crcTable) != binary.LittleEndian.Uint32(buf[0:4]) {
		return nil, false, fmt.Errorf("store: record %q failed checksum", key)
	}
	s.hits.Add(1)
	return buf[headerSize+int64(r.klen):], true, nil
}

// Has reports whether key is live, without reading its value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns every live key with the given prefix, sorted. An empty prefix
// returns every key.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	var out []string
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Sync forces the active segment to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.active == nil {
		return nil
	}
	return s.active.f.Sync()
}

// Compact rewrites every live record (and every tombstone) into fresh sealed
// segments and deletes the old files, reclaiming dead bytes. Compaction also
// runs automatically when the dead-byte thresholds are exceeded.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

// compactLocked is the compaction core; callers hold s.mu.
//
// Bounded: one pass over the live set, writing at most live+tombstone bytes.
// Crash-safe: output is written as .tmp and renamed into place before any
// old segment is removed, so replay always sees either the old records, or
// both (newest wins), or only the new.
func (s *Store) compactLocked() error {
	oldSegs := make([]*segment, 0, len(s.segs))
	for _, seg := range s.segs {
		oldSegs = append(oldSegs, seg)
	}

	// Stable iteration order keeps compaction deterministic for tests.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	newIndex := make(map[string]ref, len(s.index))
	var outSegs []*segment
	var out *segment
	var outSize, newTotal int64

	openOut := func() error {
		id := s.nextID
		s.nextID++
		f, err := os.OpenFile(filepath.Join(s.dir, fmt.Sprintf("seg-%08d.tmp", id)),
			os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: compaction: %w", err)
		}
		out = &segment{id: id, f: f, sealed: true}
		outSegs = append(outSegs, out)
		outSize = 0
		return nil
	}
	if err := openOut(); err != nil {
		return err
	}
	write := func(typ byte, key string, val []byte) error {
		rec := s.encode(typ, key, val)
		if _, err := out.f.WriteAt(rec, outSize); err != nil {
			return fmt.Errorf("store: compaction: %w", err)
		}
		if typ == recPut {
			newIndex[key] = ref{seg: out.id, off: outSize,
				klen: uint32(len(key)), vlen: uint32(len(val))}
		}
		outSize += int64(len(rec))
		out.size = outSize
		newTotal += int64(len(rec))
		if outSize >= s.opt.SegmentBytes {
			return openOut()
		}
		return nil
	}

	for _, key := range keys {
		r := s.index[key]
		seg := s.segs[r.seg]
		buf := make([]byte, r.size())
		if _, err := seg.f.ReadAt(buf, r.off); err != nil {
			return fmt.Errorf("store: compaction read: %w", err)
		}
		if crc32.Checksum(buf[4:], crcTable) != binary.LittleEndian.Uint32(buf[0:4]) {
			// A record that rotted since recovery: drop it rather than
			// propagate corruption.
			s.badRecords++
			continue
		}
		if err := write(recPut, key, buf[headerSize+int64(r.klen):]); err != nil {
			return err
		}
	}
	for key := range s.tombs {
		if err := write(recTomb, key, nil); err != nil {
			return err
		}
	}

	// Make the new segments visible (sync + rename), then retire the old.
	for _, seg := range outSegs {
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("store: compaction: %w", err)
		}
		tmp := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.tmp", seg.id))
		if err := os.Rename(tmp, s.segPath(seg.id, true)); err != nil {
			return fmt.Errorf("store: compaction: %w", err)
		}
	}
	s.syncDir()
	for _, seg := range oldSegs {
		seg.f.Close()
		os.Remove(s.segPath(seg.id, seg.sealed))
	}
	s.syncDir()

	s.segs = make(map[int]*segment, len(outSegs)+1)
	for _, seg := range outSegs {
		s.segs[seg.id] = seg
	}
	s.index = newIndex
	s.total = newTotal
	s.dead = 0
	s.active = nil
	s.compactions++
	return s.openActive()
}

// Close syncs and closes every segment. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.active != nil {
		if err := s.active.f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats snapshots the health counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:     len(s.index),
		Segments:    len(s.segs),
		TotalBytes:  s.total,
		DeadBytes:   s.dead,
		Puts:        s.puts,
		Gets:        s.gets.Load(),
		Hits:        s.hits.Load(),
		Deletes:     s.deletes,
		BadRecords:  s.badRecords,
		TornBytes:   s.tornBytes,
		Seals:       s.seals,
		Compactions: s.compactions,
	}
}

// RegisterStats exposes the store's counters in an obs registry under the
// given path prefix (e.g. "store").
func (s *Store) RegisterStats(reg *obs.Registry, prefix string) {
	p := func(name string) string { return prefix + "." + name }
	u := func(f func(Stats) uint64) func() uint64 {
		return func() uint64 { return f(s.Stats()) }
	}
	reg.GaugeFunc(p("records"), "live keys in the result store", func() float64 {
		return float64(s.Len())
	})
	reg.GaugeFunc(p("segments"), "on-disk segment files", func() float64 {
		return float64(s.Stats().Segments)
	})
	reg.GaugeFunc(p("bytes"), "on-disk bytes across segments", func() float64 {
		return float64(s.Stats().TotalBytes)
	})
	reg.GaugeFunc(p("dead_bytes"), "bytes awaiting compaction", func() float64 {
		return float64(s.Stats().DeadBytes)
	})
	reg.CounterFunc(p("puts"), "records appended", u(func(st Stats) uint64 { return st.Puts }))
	reg.CounterFunc(p("gets"), "lookups", u(func(st Stats) uint64 { return st.Gets }))
	reg.CounterFunc(p("hits"), "lookups that found a live record", u(func(st Stats) uint64 { return st.Hits }))
	reg.CounterFunc(p("bad_records"), "checksum-failed records skipped in recovery",
		u(func(st Stats) uint64 { return st.BadRecords }))
	reg.CounterFunc(p("torn_bytes"), "unreadable tail bytes found in recovery",
		u(func(st Stats) uint64 { return st.TornBytes }))
	reg.CounterFunc(p("seals"), "segments sealed", u(func(st Stats) uint64 { return st.Seals }))
	reg.CounterFunc(p("compactions"), "compaction passes", u(func(st Stats) uint64 { return st.Compactions }))
}
