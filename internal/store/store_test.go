package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	want := map[string][]byte{
		"a":          []byte("alpha"),
		"b":          {},
		"long/key-0": bytes.Repeat([]byte{0xAB}, 4096),
	}
	for k, v := range want {
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for k, v := range want {
		got, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%q) = ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %q, want %q", k, got, v)
		}
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported ok")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok || string(got) != "v2" {
		t.Fatalf("after overwrite: %q ok=%v err=%v", got, ok, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if s.Has("k") {
		t.Fatal("Has after Delete")
	}
	if err := s.Delete("k"); err != nil { // deleting absent key is a no-op
		t.Fatal(err)
	}
}

func TestReopenRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256}) // force many seals
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := strings.Repeat("x", i%40)
		want[k] = v
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites and deletes must replay latest-wins.
	want["key-007"] = "rewritten"
	if err := s.Put("key-007", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	delete(want, "key-100")
	if err := s.Delete("key-100"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{SegmentBytes: 256})
	if r.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), len(want))
	}
	for k, v := range want {
		got, ok, err := r.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("reopened Get(%q) = %q ok=%v err=%v, want %q", k, got, ok, err, v)
		}
	}
	if r.Has("key-100") {
		t.Fatal("tombstoned key resurrected on reopen")
	}
	st := r.Stats()
	if st.BadRecords != 0 || st.TornBytes != 0 {
		t.Fatalf("clean reopen reported corruption: %+v", st)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: chop half a record off the active file.
	active := activeSegment(t, dir)
	info, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(active, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	if r.Len() != 9 {
		t.Fatalf("after torn tail: Len = %d, want 9", r.Len())
	}
	if r.Has("k9") {
		t.Fatal("torn record survived")
	}
	if st := r.Stats(); st.TornBytes == 0 {
		t.Fatalf("torn tail not counted: %+v", st)
	}
	// The store must keep working — new appends land where the tail was cut.
	if err := r.Put("k9", []byte("again")); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := r.Get("k9"); !ok || string(got) != "again" {
		t.Fatalf("append after truncation: %q ok=%v", got, ok)
	}
}

func TestBadRecordSkippedWithCounter(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	keys := []string{"aa", "bb", "cc"}
	for _, k := range keys {
		if err := s.Put(k, []byte("payload-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one byte inside the middle record's value: the header still
	// frames correctly, so recovery must skip just that record.
	active := activeSegment(t, dir)
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	recLen := headerSize + 2 + len("payload-aa")
	data[recLen+headerSize+2+3] ^= 0xFF // a value byte of record "bb"
	if err := os.WriteFile(active, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	if st := r.Stats(); st.BadRecords != 1 {
		t.Fatalf("BadRecords = %d, want 1 (%+v)", st.BadRecords, st)
	}
	if r.Has("bb") {
		t.Fatal("corrupted record served")
	}
	for _, k := range []string{"aa", "cc"} {
		got, ok, err := r.Get(k)
		if err != nil || !ok || string(got) != "payload-"+k {
			t.Fatalf("Get(%q) after corruption = %q ok=%v err=%v", k, got, ok, err)
		}
	}
}

func TestGetDetectsPostOpenCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put("k", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	// Rot the value bytes behind the store's back.
	active := activeSegment(t, dir)
	f, err := os.OpenFile(active, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, headerSize+1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, ok, err := s.Get("k"); err == nil || ok {
		t.Fatalf("Get on rotted record: ok=%v err=%v, want checksum error", ok, err)
	}
}

func TestCompactionReclaimsAndPreservesTombstones(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 1 << 20, CompactMinBytes: 1 << 30})
	big := bytes.Repeat([]byte{1}, 1024)
	for i := 0; i < 50; i++ {
		if err := s.Put("churn", big); err != nil { // 49 dead copies
			t.Fatal(err)
		}
	}
	if err := s.Put("keep", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("gone", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("expected dead bytes before compaction")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 {
		t.Fatalf("DeadBytes after compaction = %d", after.DeadBytes)
	}
	if after.TotalBytes >= before.TotalBytes {
		t.Fatalf("compaction did not shrink: %d -> %d", before.TotalBytes, after.TotalBytes)
	}
	if got, ok, _ := s.Get("keep"); !ok || string(got) != "kept" {
		t.Fatalf("keep lost in compaction: %q ok=%v", got, ok)
	}
	if got, ok, _ := s.Get("churn"); !ok || !bytes.Equal(got, big) {
		t.Fatalf("churn lost in compaction: len=%d ok=%v", len(got), ok)
	}
	s.Close()

	// Tombstones must survive compaction and the following reopen.
	r := mustOpen(t, dir, Options{})
	if r.Has("gone") {
		t.Fatal("tombstone dropped by compaction; deleted key resurrected")
	}
	if got, ok, _ := r.Get("keep"); !ok || string(got) != "kept" {
		t.Fatalf("keep lost after compaction+reopen: %q ok=%v", got, ok)
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{CompactMinBytes: 4096, CompactWasteFrac: 0.5})
	big := bytes.Repeat([]byte{2}, 512)
	for i := 0; i < 64; i++ {
		if err := s.Put("hot", big); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatalf("auto-compaction never fired: %+v", st)
	}
	if got, ok, _ := s.Get("hot"); !ok || !bytes.Equal(got, big) {
		t.Fatal("value lost across auto-compaction")
	}
}

func TestInterruptedSealRecovered(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{3}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Fake an interrupted seal: demote a sealed segment back to .open so two
	// .open files coexist. Recovery must seal the stray and keep one active.
	logs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("no sealed segments (err=%v)", err)
	}
	demoted := strings.TrimSuffix(logs[0], ".log") + ".open"
	if err := os.Rename(logs[0], demoted); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{SegmentBytes: 128})
	if r.Len() != 20 {
		t.Fatalf("Len after stray-open recovery = %d, want 20", r.Len())
	}
	opens, _ := filepath.Glob(filepath.Join(dir, "seg-*.open"))
	if len(opens) != 1 {
		t.Fatalf("expected exactly one active segment, found %d: %v", len(opens), opens)
	}
}

func TestTmpFilesDiscardedOnOpen(t *testing.T) {
	dir := t.TempDir()
	// A crashed compaction leaves .tmp output that was never made visible.
	if err := os.WriteFile(filepath.Join(dir, "seg-00000042.tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	if s.Len() != 0 {
		t.Fatalf("tmp file leaked records: Len=%d", s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-00000042.tmp")); !os.IsNotExist(err) {
		t.Fatalf("tmp file not removed: %v", err)
	}
}

func TestKeysPrefix(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, k := range []string{"job/b", "job/a", "point/x"} {
		if err := s.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys("job/")
	if len(got) != 2 || got[0] != "job/a" || got[1] != "job/b" {
		t.Fatalf("Keys(job/) = %v", got)
	}
	if all := s.Keys(""); len(all) != 3 {
		t.Fatalf("Keys(\"\") = %v", all)
	}
}

func TestKeyValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(strings.Repeat("k", maxKeyLen+1), nil); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put("k2", []byte("v")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{SegmentBytes: 4096})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("w%d-i%d", w, i)
				if err := s.Put(k, []byte(k)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok, err := s.Get(k); err != nil || !ok || string(got) != k {
					t.Errorf("Get(%q) = %q ok=%v err=%v", k, got, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

// activeSegment returns the single .open segment file in dir.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	opens, err := filepath.Glob(filepath.Join(dir, "seg-*.open"))
	if err != nil || len(opens) != 1 {
		t.Fatalf("expected one .open segment, got %v (err=%v)", opens, err)
	}
	return opens[0]
}

// TestRecordEncodingStable pins the on-disk framing so a format change is a
// conscious decision, not an accident.
func TestRecordEncodingStable(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	rec := s.encode(recPut, "ab", []byte("xyz"))
	if len(rec) != headerSize+2+3 {
		t.Fatalf("record length = %d", len(rec))
	}
	if rec[4] != recPut {
		t.Fatalf("type byte = %d", rec[4])
	}
	if binary.LittleEndian.Uint32(rec[5:9]) != 2 || binary.LittleEndian.Uint32(rec[9:13]) != 3 {
		t.Fatal("length fields wrong")
	}
	if string(rec[13:15]) != "ab" || string(rec[15:18]) != "xyz" {
		t.Fatal("payload layout wrong")
	}
}
