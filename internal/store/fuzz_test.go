package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreRecover builds a deterministic store, mutilates its files per the
// fuzz input, and reopens it. Recovery must never panic and a Get must never
// return bytes that fail their checksum — corruption may lose records, never
// fabricate them.
func FuzzStoreRecover(f *testing.F) {
	f.Add(uint16(0), byte(0xFF), false)
	f.Add(uint16(100), byte(0x01), true)
	f.Add(uint16(5000), byte(0x80), false)
	f.Add(uint16(13), byte(0x00), true)

	f.Fuzz(func(t *testing.T, pos uint16, xor byte, truncate bool) {
		dir := t.TempDir()
		s, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		written := map[string][][]byte{}
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("key-%02d", i%20) // every key written twice
			v := bytes.Repeat([]byte{byte(i)}, 16+i)
			if err := s.Put(k, v); err != nil {
				t.Fatal(err)
			}
			written[k] = append(written[k], v)
		}
		s.Close()

		segs, err := filepath.Glob(filepath.Join(dir, "seg-*"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments (err=%v)", err)
		}
		target := segs[int(pos)%len(segs)]
		info, err := os.Stat(target)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > 0 {
			off := int64(pos) % info.Size()
			if truncate {
				if err := os.Truncate(target, off); err != nil {
					t.Fatal(err)
				}
			} else if xor != 0 {
				fh, err := os.OpenFile(target, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				var b [1]byte
				if _, err := fh.ReadAt(b[:], off); err == nil {
					b[0] ^= xor
					fh.WriteAt(b[:], off)
				}
				fh.Close()
			}
		}

		r, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatalf("recovery failed outright: %v", err)
		}
		defer r.Close()
		for _, k := range r.Keys("") {
			got, ok, err := r.Get(k)
			if err != nil {
				// Checksum failure surfacing as an error is the contract;
				// silently returning bad bytes is the bug.
				continue
			}
			if !ok {
				continue
			}
			versions, known := written[k]
			if !known {
				t.Fatalf("recovered key %q that was never written", k)
			}
			match := false
			for _, v := range versions {
				if bytes.Equal(got, v) {
					match = true
					break
				}
			}
			if !match {
				t.Fatalf("key %q recovered with fabricated value (len %d)", k, len(got))
			}
		}
		// The recovered store must still accept writes.
		if err := r.Put("post-recovery", []byte("alive")); err != nil {
			t.Fatalf("store unusable after recovery: %v", err)
		}
	})
}
