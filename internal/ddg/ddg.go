// Package ddg builds the Dynamic Data Dependence Graph (DDDG) that Aladdin
// schedules. Vertices are dynamic trace operations; edges are true register
// dependences (captured by the trace builder) plus memory dependences
// recovered from concrete addresses: read-after-write, write-after-write,
// and write-after-read on the same location.
//
// The graph is built once per kernel trace and then shared read-only across
// every design point the scheduler evaluates, which is what makes large
// design-space sweeps cheap.
package ddg

import (
	"fmt"

	"gem5aladdin/internal/trace"
)

// PageSize is the virtual memory page size used throughout the SoC model.
const PageSize = 4096

// Range is a half-open interval of node indices [Start, End).
type Range struct{ Start, End int32 }

// Len returns the number of nodes in the range.
func (r Range) Len() int { return int(r.End - r.Start) }

// Graph is an immutable scheduled form of a kernel trace.
type Graph struct {
	Trace *trace.Trace

	// InDeg[i] is the total number of dependences (register + memory) of
	// node i.
	InDeg []int32

	// Successor adjacency in CSR form: successors of node i are
	// Succ[SuccIdx[i]:SuccIdx[i+1]].
	SuccIdx []int32
	Succ    []int32

	// Bases[a] is the page-aligned base address of array a in the
	// accelerator's virtual address space.
	Bases []uint64

	// Prelude covers nodes emitted before the first BeginIter.
	Prelude Range
	// IterRange[k] covers the nodes of iteration k.
	IterRange []Range

	// CritPath is the longest dependence chain length in nodes, a lower
	// bound on schedulable latency regardless of parallelism.
	CritPath int
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.Trace.Nodes) }

// NodeAddr returns the absolute accelerator-virtual address accessed by
// memory node i. Calling it for non-memory nodes is a bug.
func (g *Graph) NodeAddr(i int32) uint64 {
	n := &g.Trace.Nodes[i]
	if n.Arr < 0 {
		panic(fmt.Sprintf("ddg: node %d (%v) is not a memory access", i, n.Kind))
	}
	return g.Bases[n.Arr] + uint64(n.Addr)
}

// ArrayRange returns the [base, base+len) address span of array a.
func (g *Graph) ArrayRange(a int16) (base, limit uint64) {
	base = g.Bases[a]
	return base, base + uint64(g.Trace.Arrays[a].Bytes())
}

// memState tracks outstanding accesses per address for memory-dependence
// edges.
type memState struct {
	lastStore int32
	loads     []int32 // loads since lastStore
}

type edge struct{ from, to int32 }

// Builder constructs DDDGs while recycling the build scratch — the
// per-address memState table, the edge list, and the CSR assembly buffers —
// across calls. The produced Graphs own fresh output slices and stay valid
// independently of the Builder, so sweeps can keep one Builder per worker
// and rebuild kernel graphs without the transient allocation spike of a
// from-scratch Build. The zero value is ready to use.
type Builder struct {
	mem     map[uint64]int32 // address key -> slab index
	slab    []memState       // memState storage; loads backings recycled
	edges   []edge
	perDest [][]int32
	counts  []int32
	fill    []int32
	depth   []int32
}

// grow returns s resliced to n elements, reallocating only when capacity is
// insufficient. Contents are unspecified; callers overwrite or zero.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// memStateFor returns the tracking state for key k, allocating a slab slot
// (or recycling a previously used one, keeping its loads backing) on first
// sight.
func (b *Builder) memStateFor(k uint64) *memState {
	if idx, ok := b.mem[k]; ok {
		return &b.slab[idx]
	}
	if len(b.slab) < cap(b.slab) {
		b.slab = b.slab[:len(b.slab)+1]
	} else {
		b.slab = append(b.slab, memState{})
	}
	st := &b.slab[len(b.slab)-1]
	st.lastStore = trace.NoDep
	st.loads = st.loads[:0]
	b.mem[k] = int32(len(b.slab) - 1)
	return st
}

// Build constructs the DDDG for tr. It panics if the trace violates builder
// invariants (dependences must point strictly backwards, iteration labels
// must be nondecreasing) since those always indicate kernel bugs.
func Build(tr *trace.Trace) *Graph {
	var b Builder
	return b.Build(tr)
}

// Build constructs the DDDG for tr, reusing the builder's scratch. See the
// package-level Build for the invariants enforced.
func (b *Builder) Build(tr *trace.Trace) *Graph {
	g := &Graph{Trace: tr}
	n := len(tr.Nodes)

	// Assign page-aligned array base addresses.
	g.Bases = make([]uint64, len(tr.Arrays))
	next := uint64(PageSize) // leave page 0 unmapped
	for i, a := range tr.Arrays {
		g.Bases[i] = next
		sz := uint64(a.Bytes())
		next += (sz + PageSize - 1) / PageSize * PageSize
		if sz%PageSize == 0 {
			next += PageSize // keep arrays on distinct pages even when exact
		}
	}

	// Iteration ranges.
	g.Prelude = Range{0, 0}
	g.IterRange = make([]Range, tr.Iters)
	lastIter := int32(-1)
	for i := range tr.Nodes {
		it := tr.Nodes[i].Iter
		if it < lastIter {
			panic(fmt.Sprintf("ddg: iteration labels decrease at node %d", i))
		}
		for lastIter < it {
			// Close the previous range, open the next.
			if lastIter < 0 {
				g.Prelude.End = int32(i)
			} else {
				g.IterRange[lastIter].End = int32(i)
			}
			lastIter++
			if lastIter >= 0 && int(lastIter) < tr.Iters {
				g.IterRange[lastIter].Start = int32(i)
			}
		}
	}
	if lastIter < 0 {
		g.Prelude.End = int32(n)
	} else if int(lastIter) < tr.Iters {
		g.IterRange[lastIter].End = int32(n)
	}
	// Iterations that emitted no nodes keep zero ranges; normalize any
	// trailing unset ranges.
	for k := int(lastIter) + 1; k < tr.Iters && k >= 0; k++ {
		g.IterRange[k] = Range{int32(n), int32(n)}
	}

	// Collect edges: register deps plus memory deps.
	if b.edges == nil {
		b.edges = make([]edge, 0, n*2)
	}
	edges := b.edges[:0]
	addEdge := func(from, to int32) {
		if from == trace.NoDep {
			return
		}
		if from >= to {
			panic(fmt.Sprintf("ddg: dependence %d -> %d not strictly backwards", from, to))
		}
		edges = append(edges, edge{from, to})
	}

	if b.mem == nil {
		b.mem = make(map[uint64]int32)
	} else {
		clear(b.mem)
	}
	b.slab = b.slab[:0]
	key := func(nd *trace.Node) uint64 {
		return uint64(uint16(nd.Arr))<<48 | uint64(nd.Addr)
	}
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		id := int32(i)
		for _, d := range nd.Deps {
			addEdge(d, id)
		}
		if !nd.Kind.IsMem() {
			continue
		}
		st := b.memStateFor(key(nd))
		switch nd.Kind {
		case trace.OpLoad:
			addEdge(st.lastStore, id) // RAW
			st.loads = append(st.loads, id)
		case trace.OpStore:
			addEdge(st.lastStore, id) // WAW
			for _, ld := range st.loads {
				addEdge(ld, id) // WAR
			}
			st.lastStore = id
			st.loads = st.loads[:0]
		}
	}

	b.edges = edges // retain grown backing for the next build

	// Deduplicate edges per destination and build CSR + in-degrees.
	g.InDeg = make([]int32, n)
	counts := grow(b.counts, n+1)
	clear(counts)
	// Bucket edges by destination, then dedupe (from, to) pairs; fan-in per
	// node is tiny so a quadratic scan within each bucket is cheap.
	perDest := grow(b.perDest, n)
	for i := range perDest {
		perDest[i] = perDest[i][:0]
	}
	for _, e := range edges {
		perDest[e.to] = append(perDest[e.to], e.from)
	}
	total := 0
	for i := range perDest {
		froms := perDest[i]
		uniq := froms[:0]
		for _, f := range froms {
			dup := false
			for _, u := range uniq {
				if u == f {
					dup = true
					break
				}
			}
			if !dup {
				uniq = append(uniq, f)
			}
		}
		perDest[i] = uniq
		g.InDeg[i] = int32(len(uniq))
		for _, f := range uniq {
			counts[f+1]++
		}
		total += len(uniq)
	}
	g.SuccIdx = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.SuccIdx[i+1] = g.SuccIdx[i] + counts[i+1]
	}
	g.Succ = make([]int32, total)
	fill := grow(b.fill, n)
	copy(fill, g.SuccIdx[:n])
	for to := range perDest {
		for _, f := range perDest[to] {
			g.Succ[fill[f]] = int32(to)
			fill[f]++
		}
	}

	// Critical path (unit latency): longest chain ending at each node.
	depth := grow(b.depth, n)
	clear(depth)
	maxd := int32(0)
	for to := 0; to < n; to++ {
		d := int32(0)
		for _, f := range perDest[to] {
			if depth[f] > d {
				d = depth[f]
			}
		}
		depth[to] = d + 1
		if depth[to] > maxd {
			maxd = depth[to]
		}
	}
	g.CritPath = int(maxd)
	b.counts, b.perDest, b.fill, b.depth = counts, perDest, fill, depth
	return g
}

// Successors returns the successor list of node i.
func (g *Graph) Successors(i int32) []int32 {
	return g.Succ[g.SuccIdx[i]:g.SuccIdx[i+1]]
}

// Predecessors reconstructs the predecessor list of node i (register plus
// memory dependences). It is O(edges) and intended for tests and debugging,
// not the scheduler hot path.
func (g *Graph) Predecessors(i int32) []int32 {
	var preds []int32
	for from := int32(0); from < int32(g.NumNodes()); from++ {
		for _, to := range g.Successors(from) {
			if to == i {
				preds = append(preds, from)
			}
		}
	}
	return preds
}

// CheckInvariants validates structural properties: CSR consistency, edge
// direction, and in-degree agreement. It returns an error describing the
// first violation found.
func (g *Graph) CheckInvariants() error {
	n := g.NumNodes()
	if len(g.SuccIdx) != n+1 {
		return fmt.Errorf("ddg: SuccIdx length %d, want %d", len(g.SuccIdx), n+1)
	}
	indeg := make([]int32, n)
	for from := 0; from < n; from++ {
		if g.SuccIdx[from] > g.SuccIdx[from+1] {
			return fmt.Errorf("ddg: SuccIdx not monotone at %d", from)
		}
		for _, to := range g.Successors(int32(from)) {
			if to <= int32(from) {
				return fmt.Errorf("ddg: edge %d -> %d not forward", from, to)
			}
			if to >= int32(n) {
				return fmt.Errorf("ddg: edge %d -> %d out of range", from, to)
			}
			indeg[to]++
		}
	}
	for i := 0; i < n; i++ {
		if indeg[i] != g.InDeg[i] {
			return fmt.Errorf("ddg: node %d in-degree %d, recomputed %d", i, g.InDeg[i], indeg[i])
		}
	}
	return nil
}
