package ddg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gem5aladdin/internal/trace"
)

func simpleTrace() *trace.Trace {
	b := trace.NewBuilder("simple")
	a := b.Alloc("a", trace.F64, 16, trace.In)
	o := b.Alloc("o", trace.F64, 16, trace.Out)
	for i := 0; i < 16; i++ {
		b.SetF64(a, i, float64(i))
	}
	for i := 0; i < 16; i++ {
		b.BeginIter()
		v := b.Load(a, i)
		b.Store(o, i, b.FMul(v, b.ConstF(2)))
	}
	return b.Finish()
}

func TestBuildSimple(t *testing.T) {
	g := Build(simpleTrace())
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 48 {
		t.Fatalf("nodes = %d, want 48", g.NumNodes())
	}
	if len(g.IterRange) != 16 {
		t.Fatalf("iter ranges = %d", len(g.IterRange))
	}
	for k, r := range g.IterRange {
		if r.Len() != 3 {
			t.Fatalf("iter %d has %d nodes, want 3", k, r.Len())
		}
	}
	if g.Prelude.Len() != 0 {
		t.Fatalf("prelude = %d nodes, want 0", g.Prelude.Len())
	}
	// Independent iterations: critical path is one iteration chain.
	if g.CritPath != 3 {
		t.Fatalf("critical path = %d, want 3", g.CritPath)
	}
}

func TestBasesPageAlignedAndDisjoint(t *testing.T) {
	b := trace.NewBuilder("bases")
	b.Alloc("a", trace.F64, 512, trace.In)  // exactly 4096 B
	b.Alloc("b", trace.U8, 100, trace.In)   // sub-page
	b.Alloc("c", trace.I32, 3000, trace.In) // multi-page
	g := Build(b.Finish())
	for i, base := range g.Bases {
		if base%PageSize != 0 {
			t.Fatalf("array %d base %#x not page aligned", i, base)
		}
		if base == 0 {
			t.Fatalf("array %d mapped at page 0", i)
		}
	}
	for i := range g.Bases {
		for j := i + 1; j < len(g.Bases); j++ {
			lo1, hi1 := g.ArrayRange(int16(i))
			lo2, hi2 := g.ArrayRange(int16(j))
			if lo1 < hi2 && lo2 < hi1 {
				t.Fatalf("arrays %d and %d overlap", i, j)
			}
		}
	}
}

func TestRAWDependence(t *testing.T) {
	b := trace.NewBuilder("raw")
	a := b.Alloc("a", trace.F64, 4, trace.Local)
	b.Store(a, 0, b.ConstF(1)) // node 0
	v := b.Load(a, 0)          // node 1: RAW on node 0
	_ = v
	g := Build(b.Finish())
	if g.InDeg[1] != 1 {
		t.Fatalf("load in-degree = %d, want 1", g.InDeg[1])
	}
	succ := g.Successors(0)
	if len(succ) != 1 || succ[0] != 1 {
		t.Fatalf("store successors = %v", succ)
	}
}

func TestWAWAndWARDependences(t *testing.T) {
	b := trace.NewBuilder("waw")
	a := b.Alloc("a", trace.F64, 4, trace.Local)
	b.Store(a, 2, b.ConstF(1)) // node 0
	b.Load(a, 2)               // node 1 (RAW on 0)
	b.Load(a, 2)               // node 2 (RAW on 0)
	b.Store(a, 2, b.ConstF(2)) // node 3 (WAW on 0, WAR on 1 and 2)
	g := Build(b.Finish())
	if g.InDeg[3] != 3 {
		t.Fatalf("second store in-degree = %d, want 3 (WAW + 2x WAR)", g.InDeg[3])
	}
	preds := g.Predecessors(3)
	want := map[int32]bool{0: true, 1: true, 2: true}
	for _, p := range preds {
		if !want[p] {
			t.Fatalf("unexpected predecessor %d", p)
		}
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("missing predecessors: %v", want)
	}
}

func TestDistinctAddressesIndependent(t *testing.T) {
	b := trace.NewBuilder("indep")
	a := b.Alloc("a", trace.F64, 4, trace.Local)
	b.Store(a, 0, b.ConstF(1))
	b.Store(a, 1, b.ConstF(2))
	ld := b.Load(a, 0)
	_ = ld
	g := Build(b.Finish())
	if g.InDeg[1] != 0 {
		t.Fatalf("store to different address has in-degree %d", g.InDeg[1])
	}
	if g.InDeg[2] != 1 {
		t.Fatalf("load in-degree = %d, want 1 (RAW on store 0 only)", g.InDeg[2])
	}
}

func TestRegisterAndMemoryDepDeduplicated(t *testing.T) {
	// A store whose value dep and WAR dep would both point at the same
	// load must be counted once.
	b := trace.NewBuilder("dedup")
	a := b.Alloc("a", trace.F64, 2, trace.Local)
	b.Store(a, 0, b.ConstF(1)) // node 0
	v := b.Load(a, 0)          // node 1
	b.Store(a, 0, v)           // node 2: value dep on 1 and WAR on 1, WAW on 0
	g := Build(b.Finish())
	if g.InDeg[2] != 2 {
		t.Fatalf("in-degree = %d, want 2 (load once + first store)", g.InDeg[2])
	}
}

func TestCriticalPathSerialChain(t *testing.T) {
	b := trace.NewBuilder("chain")
	acc := b.ConstF(0)
	a := b.Alloc("a", trace.F64, 32, trace.In)
	for i := 0; i < 32; i++ {
		b.BeginIter()
		acc = b.FAdd(acc, b.Load(a, i))
	}
	g := Build(b.Finish())
	// Chain of 32 dependent FAdds, each fed by an independent load:
	// longest chain = load + 32 adds.
	if g.CritPath != 33 {
		t.Fatalf("critical path = %d, want 33", g.CritPath)
	}
}

func TestNodeAddr(t *testing.T) {
	b := trace.NewBuilder("addr")
	a0 := b.Alloc("a0", trace.F64, 8, trace.In)
	a1 := b.Alloc("a1", trace.F64, 8, trace.In)
	_ = a0
	b.Load(a1, 3)
	g := Build(b.Finish())
	want := g.Bases[1] + 24
	if got := g.NodeAddr(0); got != want {
		t.Fatalf("NodeAddr = %#x, want %#x", got, want)
	}
}

func TestNodeAddrNonMemPanics(t *testing.T) {
	b := trace.NewBuilder("panic")
	b.FAdd(b.ConstF(1), b.ConstF(2))
	g := Build(b.Finish())
	defer func() {
		if recover() == nil {
			t.Fatal("NodeAddr on non-mem node did not panic")
		}
	}()
	g.NodeAddr(0)
}

func TestEmptyIterations(t *testing.T) {
	b := trace.NewBuilder("empty")
	b.BeginIter()
	b.BeginIter() // no nodes in iteration 0
	b.FAdd(b.ConstF(1), b.ConstF(2))
	g := Build(b.Finish())
	if len(g.IterRange) != 2 {
		t.Fatalf("iter ranges = %d", len(g.IterRange))
	}
	if g.IterRange[0].Len() != 0 {
		t.Fatalf("empty iteration has %d nodes", g.IterRange[0].Len())
	}
	if g.IterRange[1].Len() != 1 {
		t.Fatalf("iteration 1 has %d nodes", g.IterRange[1].Len())
	}
}

func TestPreludeRange(t *testing.T) {
	b := trace.NewBuilder("prelude")
	a := b.Alloc("a", trace.F64, 4, trace.In)
	b.Load(a, 0)
	b.Load(a, 1)
	b.BeginIter()
	b.Load(a, 2)
	g := Build(b.Finish())
	if g.Prelude.Len() != 2 {
		t.Fatalf("prelude = %d nodes, want 2", g.Prelude.Len())
	}
	if g.IterRange[0].Start != 2 || g.IterRange[0].End != 3 {
		t.Fatalf("iter 0 range = %+v", g.IterRange[0])
	}
}

// Property: for random load/store sequences, replaying the trace in any
// order consistent with the DDDG produces the same final memory image as
// sequential execution.
func TestMemoryDepsPreserveSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := trace.NewBuilder("rand")
		a := b.Alloc("a", trace.F64, 8, trace.Local)
		type op struct {
			store bool
			addr  int
			val   float64
		}
		var ops []op
		for i := 0; i < 40; i++ {
			o := op{store: rng.Intn(2) == 0, addr: rng.Intn(8), val: float64(rng.Intn(100))}
			ops = append(ops, o)
			if o.store {
				b.Store(a, o.addr, b.ConstF(o.val))
			} else {
				b.Load(a, o.addr)
			}
		}
		g := Build(b.Finish())
		if err := g.CheckInvariants(); err != nil {
			return false
		}

		// Execute in a dependence-respecting but deliberately skewed
		// order: repeatedly pick the highest-index ready node.
		n := g.NumNodes()
		indeg := make([]int32, n)
		copy(indeg, g.InDeg)
		done := make([]bool, n)
		memV := make(map[int]float64)
		loads := make(map[int]float64) // node -> observed value
		for count := 0; count < n; count++ {
			pick := -1
			for i := n - 1; i >= 0; i-- {
				if !done[i] && indeg[i] == 0 {
					pick = i
					break
				}
			}
			if pick < 0 {
				return false // cycle
			}
			done[pick] = true
			o := ops[pick]
			if o.store {
				memV[o.addr] = o.val
			} else {
				loads[pick] = memV[o.addr]
			}
			for _, s := range g.Successors(int32(pick)) {
				indeg[s]--
			}
		}
		// Sequential reference.
		ref := make(map[int]float64)
		for i, o := range ops {
			if o.store {
				ref[o.addr] = o.val
			} else if loads[i] != ref[o.addr] {
				return false
			}
		}
		for addr, v := range ref {
			if memV[addr] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
