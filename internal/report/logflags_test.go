package report

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseLogFlags(t *testing.T, args ...string) *LogFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLogFlagsDisabledByDefault(t *testing.T) {
	f := parseLogFlags(t)
	lg, closeFn, err := f.Logger()
	if err != nil {
		t.Fatal(err)
	}
	if lg != nil {
		t.Fatal("logger enabled without -log")
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
}

func TestLogFlagsJSONToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.log")
	f := parseLogFlags(t, "-log", "info", "-log-out", out)
	lg, closeFn, err := f.Logger()
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("sweep done", "kernel", "gemm", "points", 42)
	lg.Debug("dropped: below level")
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("log lines = %d, want 1 (debug filtered):\n%s", len(lines), data)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if rec["msg"] != "sweep done" || rec["kernel"] != "gemm" || rec["points"] != float64(42) {
		t.Fatalf("log record wrong: %v", rec)
	}
}

func TestLogFlagsTextFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.log")
	f := parseLogFlags(t, "-log", "warn", "-log-format", "text", "-log-out", out)
	lg, closeFn, err := f.Logger()
	if err != nil {
		t.Fatal(err)
	}
	lg.Warn("slow point", "ms", 1234)
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "msg=\"slow point\"") {
		t.Fatalf("text log wrong:\n%s", data)
	}
}

func TestLogFlagsRejectsBadValues(t *testing.T) {
	if _, _, err := parseLogFlags(t, "-log", "loud").Logger(); err == nil {
		t.Error("bad level accepted")
	}
	if _, _, err := parseLogFlags(t, "-log", "info", "-log-format", "xml").Logger(); err == nil {
		t.Error("bad format accepted")
	}
}
