package report

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// LogFlags bundles the structured-logging flags the CLIs share (-log,
// -log-format, -log-out). Logging is opt-in: with no -log level the
// returned logger is nil and callers skip their logging branches entirely,
// so the default CLI runs do no formatting work and write no log bytes.
type LogFlags struct {
	Level  string
	Format string
	Out    string
}

// AddLogFlags registers -log/-log-format/-log-out on fs.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	f := &LogFlags{}
	fs.StringVar(&f.Level, "log", "", "enable structured logs at this level (debug, info, warn, error)")
	fs.StringVar(&f.Format, "log-format", "json", "structured log format: json or text")
	fs.StringVar(&f.Out, "log-out", "", "write logs to this file instead of stderr")
	return f
}

// Logger builds the logger the flags describe. It returns (nil, noop, nil)
// when logging was not requested; close flushes and closes the log file
// when one was opened.
func (f *LogFlags) Logger() (lg *slog.Logger, close func() error, err error) {
	close = func() error { return nil }
	if f.Level == "" {
		return nil, close, nil
	}
	var level slog.Level
	switch strings.ToLower(f.Level) {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, close, fmt.Errorf("report: unknown log level %q (want debug, info, warn, or error)", f.Level)
	}
	var w io.Writer = os.Stderr
	if f.Out != "" {
		file, ferr := os.Create(f.Out)
		if ferr != nil {
			return nil, close, ferr
		}
		w = file
		close = file.Close
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(f.Format) {
	case "", "json":
		h = slog.NewJSONHandler(w, opts)
	case "text":
		h = slog.NewTextHandler(w, opts)
	default:
		err := fmt.Errorf("report: unknown log format %q (want json or text)", f.Format)
		_ = close()
		return nil, func() error { return nil }, err
	}
	return slog.New(h), close, nil
}
