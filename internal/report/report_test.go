package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/trace"
)

func sampleResult(t *testing.T) *soc.RunResult {
	t.Helper()
	b := trace.NewBuilder("sample")
	a := b.Alloc("a", trace.F64, 64, trace.InOut)
	for i := 0; i < 64; i++ {
		b.SetF64(a, i, 1)
	}
	for i := 0; i < 64; i++ {
		b.BeginIter()
		b.Store(a, i, b.FAdd(b.Load(a, i), b.ConstF(1)))
	}
	r, err := soc.RunGraph(ddg.Build(b.Finish()), soc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFromResult(t *testing.T) {
	r := sampleResult(t)
	rec := FromResult("sample", r)
	if rec.Benchmark != "sample" || rec.Mem != "dma" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.RuntimeUS <= 0 || rec.PowerMW <= 0 || rec.EDPNJS <= 0 {
		t.Fatalf("record metrics missing: %+v", rec)
	}
	total := rec.FlushOnlyUS + rec.DMAOnlyUS + rec.ComputeDMAUS + rec.ComputeOnlyUS + rec.IdleUS
	if diff := total - rec.RuntimeUS; diff > 0.01 || diff < -0.01 {
		t.Fatalf("breakdown sums to %v, runtime %v", total, rec.RuntimeUS)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rec := FromResult("sample", sampleResult(t))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Record{rec}); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != rec {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

func TestWriteCSV(t *testing.T) {
	rec := FromResult("sample", sampleResult(t))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Record{rec, rec}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	header := Header()
	if len(rows[0]) != len(header) {
		t.Fatalf("header width %d, want %d", len(rows[0]), len(header))
	}
	if rows[0][0] != "benchmark" || rows[1][0] != "sample" {
		t.Fatalf("csv content wrong: %v", rows[0])
	}
	// Every header cell is non-empty and unique.
	seen := map[string]bool{}
	for _, h := range header {
		if h == "" || seen[h] {
			t.Fatalf("bad header entry %q in %v", h, header)
		}
		seen[h] = true
	}
}

func TestHeaderMatchesJSONKeys(t *testing.T) {
	rec := FromResult("sample", sampleResult(t))
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range Header() {
		if !strings.Contains(string(raw), `"`+h+`"`) {
			t.Fatalf("header %q missing from JSON %s", h, raw)
		}
	}
}
