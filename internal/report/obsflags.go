package report

import (
	"flag"

	"gem5aladdin/internal/obs"
)

// ObsFlags bundles the observability output flags every CLI shares
// (-stats-out, -stats-json, -trace-out) with the observer wiring they
// imply, so the three binaries don't each re-declare the same triplet.
type ObsFlags struct {
	StatsOut  string
	StatsJSON string
	TraceOut  string
}

// AddObsFlags registers -stats-out/-stats-json/-trace-out on fs. note,
// when non-empty, prefixes each description with the command's context
// (e.g. "re-run the EDP optimum and ").
func AddObsFlags(fs *flag.FlagSet, note string) *ObsFlags {
	f := &ObsFlags{}
	fs.StringVar(&f.StatsOut, "stats-out", "", note+"write a gem5-style stats dump to this file")
	fs.StringVar(&f.StatsJSON, "stats-json", "", note+"write the stats dump as JSON to this file")
	fs.StringVar(&f.TraceOut, "trace-out", "", note+"write a Perfetto/Chrome trace-event timeline to this file")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *ObsFlags) Enabled() bool {
	return f.StatsOut != "" || f.StatsJSON != "" || f.TraceOut != ""
}

// Observer returns a fresh observer carrying a tracer iff -trace-out was
// given, or nil when no output was requested — which keeps every probe
// disabled and the simulation hot paths at their single-branch cost.
func (f *ObsFlags) Observer() *obs.Observer {
	if !f.Enabled() {
		return nil
	}
	return obs.New(f.TraceOut != "")
}

// Write dumps o to whichever of the requested files were given. o must be
// the observer returned by Observer (or one sharing its registry/tracer).
func (f *ObsFlags) Write(o *obs.Observer) error {
	return o.WriteFiles(f.StatsOut, f.StatsJSON, f.TraceOut)
}
