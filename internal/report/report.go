// Package report flattens simulation results into records that serialize
// to JSON or CSV, so sweeps can feed external plotting without parsing the
// ASCII tables the figure harness prints.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strconv"

	"gem5aladdin/internal/soc"
)

// Record is one design point's flattened outcome. Field names are stable
// (they become the CSV header and JSON keys).
type Record struct {
	Benchmark string `json:"benchmark"`
	Mem       string `json:"mem"`

	Lanes      int `json:"lanes"`
	Partitions int `json:"partitions"`
	SpadPorts  int `json:"spad_ports"`
	CacheKB    int `json:"cache_kb"`
	CacheLineB int `json:"cache_line_b"`
	CachePorts int `json:"cache_ports"`
	CacheAssoc int `json:"cache_assoc"`
	BusBits    int `json:"bus_bits"`

	RuntimeUS     float64 `json:"runtime_us"`
	FlushOnlyUS   float64 `json:"flush_only_us"`
	DMAOnlyUS     float64 `json:"dma_only_us"`
	ComputeDMAUS  float64 `json:"compute_dma_us"`
	ComputeOnlyUS float64 `json:"compute_only_us"`
	IdleUS        float64 `json:"idle_us"`

	PowerMW    float64 `json:"power_mw"`
	AreaMM2    float64 `json:"area_mm2"`
	EnergyUJ   float64 `json:"energy_uj"`
	TransferUJ float64 `json:"transfer_uj"`
	EDPNJS     float64 `json:"edp_njs"`

	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	TLBMisses    uint64 `json:"tlb_misses"`
	SpadConflict uint64 `json:"spad_conflicts"`
	BusBytes     uint64 `json:"bus_bytes"`
	DRAMBytes    uint64 `json:"dram_bytes"`
}

// FromResult flattens a run.
func FromResult(benchmark string, r *soc.RunResult) Record {
	us := func(t interface{ Nanos() float64 }) float64 { return t.Nanos() / 1e3 }
	b := r.Breakdown
	return Record{
		Benchmark:  benchmark,
		Mem:        r.Config.Mem.String(),
		Lanes:      r.Config.Lanes,
		Partitions: r.Config.Partitions,
		SpadPorts:  r.Config.SpadPorts,
		CacheKB:    r.Config.CacheKB,
		CacheLineB: r.Config.CacheLineBytes,
		CachePorts: r.Config.CachePorts,
		CacheAssoc: r.Config.CacheAssoc,
		BusBits:    r.Config.BusWidthBits,

		RuntimeUS:     r.Seconds() * 1e6,
		FlushOnlyUS:   us(b.FlushOnly),
		DMAOnlyUS:     us(b.DMAFlush),
		ComputeDMAUS:  us(b.ComputeDMA),
		ComputeOnlyUS: us(b.ComputeOnly),
		IdleUS:        us(b.Idle),

		PowerMW:    r.AvgPowerW * 1e3,
		AreaMM2:    r.AreaMM2,
		EnergyUJ:   r.Energy.Total() * 1e6,
		TransferUJ: r.TransferJ * 1e6,
		EDPNJS:     r.EDPJs * 1e9,

		CacheHits:    r.Cache.Hits,
		CacheMisses:  r.Cache.Misses,
		TLBMisses:    r.TLB.Misses,
		SpadConflict: r.Spad.BankConflicts,
		BusBytes:     r.Bus.BytesMoved,
		DRAMBytes:    r.DRAM.BytesMoved,
	}
}

// FromResults flattens a batch of runs sharing one benchmark label,
// preserving order.
func FromResults(benchmark string, rs []*soc.RunResult) []Record {
	out := make([]Record, len(rs))
	for i, r := range rs {
		out[i] = FromResult(benchmark, r)
	}
	return out
}

// WriteJSON emits records as an indented JSON array.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// Header returns the CSV column names, derived from the Record fields so
// the two can never drift.
func Header() []string {
	t := reflect.TypeOf(Record{})
	out := make([]string, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		out[i] = t.Field(i).Tag.Get("json")
	}
	return out
}

// WriteCSV emits records with a header row.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return err
	}
	for _, r := range recs {
		v := reflect.ValueOf(r)
		row := make([]string, v.NumField())
		for i := 0; i < v.NumField(); i++ {
			switch f := v.Field(i); f.Kind() {
			case reflect.String:
				row[i] = f.String()
			case reflect.Int:
				row[i] = strconv.FormatInt(f.Int(), 10)
			case reflect.Uint64:
				row[i] = strconv.FormatUint(f.Uint(), 10)
			case reflect.Float64:
				row[i] = strconv.FormatFloat(f.Float(), 'g', 6, 64)
			default:
				return fmt.Errorf("report: unhandled field kind %v", f.Kind())
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
