package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestObsFlagsRegistration(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := AddObsFlags(fs, "re-run the winner and ")
	for _, name := range []string{"stats-out", "stats-json", "trace-out"} {
		fl := fs.Lookup(name)
		if fl == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if fl.Usage[:len("re-run the winner and ")] != "re-run the winner and " {
			t.Errorf("-%s usage lost the command note: %q", name, fl.Usage)
		}
	}
	if err := fs.Parse([]string{"-stats-out", "a", "-trace-out", "b"}); err != nil {
		t.Fatal(err)
	}
	if f.StatsOut != "a" || f.StatsJSON != "" || f.TraceOut != "b" {
		t.Fatalf("parsed values wrong: %+v", f)
	}
}

func TestObsFlagsObserver(t *testing.T) {
	var f ObsFlags
	if f.Enabled() {
		t.Fatal("zero ObsFlags reports enabled")
	}
	if o := f.Observer(); o != nil {
		t.Fatal("Observer is non-nil with no outputs requested, probes would pay for unused observability")
	}

	f.StatsOut = "x"
	if !f.Enabled() || f.Observer() == nil {
		t.Fatal("stats-out alone must enable an observer")
	}
	if f.Observer().Tracer != nil {
		t.Fatal("tracer allocated without -trace-out")
	}
	f.TraceOut = "y"
	if f.Observer().Tracer == nil {
		t.Fatal("-trace-out must attach a tracer")
	}
}

func TestObsFlagsWrite(t *testing.T) {
	dir := t.TempDir()
	f := ObsFlags{
		StatsOut:  filepath.Join(dir, "stats.txt"),
		StatsJSON: filepath.Join(dir, "stats.json"),
		TraceOut:  filepath.Join(dir, "trace.json"),
	}
	o := f.Observer()
	o.Registry.Counter("test.events", "events recorded by the test").Add(3)
	if err := f.Write(o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.StatsOut, f.StatsJSON, f.TraceOut} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("output missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
