package report

import (
	"strings"
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/trace"
)

func recordedResult(t *testing.T) *soc.RunResult {
	t.Helper()
	b := trace.NewBuilder("rec")
	a := b.Alloc("a", trace.F64, 128, trace.InOut)
	for i := 0; i < 128; i++ {
		b.SetF64(a, i, 1)
	}
	for i := 0; i < 128; i++ {
		b.BeginIter()
		b.Store(a, i, b.FMul(b.Load(a, i), b.ConstF(3)))
	}
	cfg := soc.DefaultConfig()
	cfg.RecordSchedule = true
	r, err := soc.RunGraph(ddg.Build(b.Finish()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTimelineASCII(t *testing.T) {
	r := recordedResult(t)
	bar := TimelineASCII(r, 80)
	if len(bar) != 80 {
		t.Fatalf("bar length = %d", len(bar))
	}
	for _, want := range []string{"F", "D", "C"} {
		if !strings.Contains(bar, want) {
			t.Fatalf("timeline %q missing %q segment", bar, want)
		}
	}
	// Tiny widths clamp rather than panic.
	if got := TimelineASCII(r, 1); len(got) != 10 {
		t.Fatalf("clamped width = %d", len(got))
	}
}

func TestGanttASCII(t *testing.T) {
	r := recordedResult(t)
	if len(r.Schedule) == 0 {
		t.Fatal("no schedule recorded")
	}
	out := GanttASCII(r, r.Schedule, r.Config.Lanes, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+r.Config.Lanes {
		t.Fatalf("gantt has %d lines, want %d", len(lines), 1+r.Config.Lanes)
	}
	if !strings.HasPrefix(lines[0], "phase") {
		t.Fatalf("first line %q", lines[0])
	}
	// Every lane shows some activity for this balanced kernel.
	for _, ln := range lines[1:] {
		if !strings.Contains(ln, "#") {
			t.Fatalf("idle lane in gantt:\n%s", out)
		}
	}
	// Lanes are idle at the start (during flush+DMA head): the first
	// columns of each lane row are dots.
	if !strings.Contains(lines[1], "lane0") {
		t.Fatalf("lane label missing: %q", lines[1])
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	r := recordedResult(t)
	out := GanttASCII(r, nil, 4, 40)
	if !strings.HasPrefix(out, "phase") {
		t.Fatal("empty-schedule gantt missing phase bar")
	}
}
