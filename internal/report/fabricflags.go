package report

import (
	"flag"
	"fmt"
	"strings"

	"gem5aladdin/internal/soc"
)

// FabricFlags bundles the interconnect-topology flags every CLI shares
// (-fabric, -fabric-width, -mesh-dim, -burst-len), mirroring RobustFlags so
// the binaries don't each re-declare the quadruplet or re-implement the
// fabric-name parser.
type FabricFlags struct {
	Fabric    string
	WidthBits int
	MeshDim   int
	BurstLen  int
}

// AddFabricFlags registers -fabric/-fabric-width/-mesh-dim/-burst-len on fs.
func AddFabricFlags(fs *flag.FlagSet) *FabricFlags {
	f := &FabricFlags{}
	fs.StringVar(&f.Fabric, "fabric", "bus",
		"interconnect topology: bus (round-robin split-transaction), crossbar (AXI-like burst crossbar), or mesh (2D NoC)")
	fs.IntVar(&f.WidthBits, "fabric-width", 0,
		"fabric link width in bits (0 = the system bus width)")
	fs.IntVar(&f.MeshDim, "mesh-dim", 0,
		"mesh side length for -fabric mesh (0 = 2, a 2x2 mesh)")
	fs.IntVar(&f.BurstLen, "burst-len", 0,
		"crossbar burst length in beats for -fabric crossbar (0 = derived from the DMA chunk size)")
	return f
}

// Apply parses the fabric name and copies the topology settings into cfg. A
// zero/defaulted FabricFlags leaves cfg on the round-robin bus, bit-identical
// to a build without the flags.
func (f *FabricFlags) Apply(cfg *soc.Config) error {
	kind, err := soc.ParseFabricKind(f.Fabric)
	if err != nil {
		return fmt.Errorf("-fabric: %w", err)
	}
	cfg.Fabric.Kind = kind
	cfg.Fabric.LinkWidthBits = f.WidthBits
	cfg.Fabric.MeshDim = f.MeshDim
	cfg.Fabric.BurstLen = f.BurstLen
	return nil
}

// ParseFabricList parses a comma-separated fabric-name list ("bus,mesh")
// into backend kinds, for CLIs that sweep the fabric axis.
func ParseFabricList(s string) ([]soc.FabricKind, error) {
	if s == "" {
		return nil, nil
	}
	var kinds []soc.FabricKind
	for _, name := range strings.Split(s, ",") {
		k, err := soc.ParseFabricKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}
