package report

import (
	"flag"
	"fmt"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
)

// RobustFlags bundles the robustness flags every CLI shares (-faults,
// -sanitize, -watchdog-ticks), mirroring ObsFlags so the binaries don't
// each re-declare the same triplet or re-implement the fault-spec parser.
type RobustFlags struct {
	Faults        string
	Sanitize      bool
	WatchdogTicks uint64
}

// AddRobustFlags registers -faults/-sanitize/-watchdog-ticks on fs.
func AddRobustFlags(fs *flag.FlagSet) *RobustFlags {
	f := &RobustFlags{}
	fs.StringVar(&f.Faults, "faults", "",
		"inject faults per key=value spec, e.g. \"seed=7,dram=1e-6,bus=0.01,retries=4,backoff=20\" "+
			"(keys: seed dram spad cache double bus retries backoff dma-timeout dma-retries; times in ns)")
	fs.BoolVar(&f.Sanitize, "sanitize", false,
		"run the MOESI runtime sanitizer and abort on the first coherence invariant violation")
	fs.Uint64Var(&f.WatchdogTicks, "watchdog-ticks", 0,
		"abort with a diagnostic if simulated time exceeds this many ticks (ps); 0 disables the budget")
	return f
}

// Apply parses the fault spec and copies the robustness settings into cfg.
// A zero RobustFlags leaves cfg untouched, so simulations stay bit-identical
// to a build without the flags.
func (f *RobustFlags) Apply(cfg *soc.Config) error {
	if f.Faults != "" {
		fc, err := fault.ParseSpec(f.Faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		cfg.Faults = fc
	}
	cfg.Sanitize = cfg.Sanitize || f.Sanitize
	if f.WatchdogTicks != 0 {
		cfg.WatchdogTicks = sim.Tick(f.WatchdogTicks)
	}
	return nil
}

// Report prints the post-run fault summary to stdout when injection was on.
func (f *RobustFlags) Report(res *soc.RunResult) {
	if f.Faults == "" || res == nil {
		return
	}
	s := res.Faults
	fmt.Printf("faults: injected=%d corrected=%d detected=%d bus[nack=%d retry=%d drop=%d] dma[timeout=%d retry=%d abort=%d]\n",
		s.Injected, s.CorrectedSingles, s.DetectedDoubles,
		s.BusNacks, s.BusRetries, s.BusDrops,
		s.DMATimeouts, s.DMARetries, s.DMAAborts)
}
