package report

import (
	"fmt"
	"strings"

	"gem5aladdin/internal/core"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
)

// TimelineASCII renders the Fig 2a-style execution timeline of a run as a
// proportional bar: F = flush-only, D = DMA without compute, O =
// compute/DMA overlap, C = compute-only, '.' = idle. width is the bar
// length in characters.
func TimelineASCII(r *soc.RunResult, width int) string {
	if width < 10 {
		width = 10
	}
	b := r.Breakdown
	total := float64(r.Runtime)
	if total == 0 {
		return strings.Repeat(".", width)
	}
	segs := []struct {
		label byte
		t     sim.Tick
	}{
		{'F', b.FlushOnly},
		{'D', b.DMAFlush},
		{'O', b.ComputeDMA},
		{'C', b.ComputeOnly},
		{'.', b.Idle},
	}
	var sb strings.Builder
	used := 0
	for i, s := range segs {
		n := int(float64(s.t)/total*float64(width) + 0.5)
		if i == len(segs)-1 {
			n = width - used
		}
		if used+n > width {
			n = width - used
		}
		if n > 0 {
			sb.Write([]byte(strings.Repeat(string(s.label), n)))
			used += n
		}
	}
	for used < width {
		sb.WriteByte('.')
		used++
	}
	return sb.String()
}

// laneBucket aggregates a lane's activity within one Gantt column.
type laneBucket uint8

const (
	laneIdle laneBucket = iota
	laneActive
)

// GanttASCII renders a per-lane occupancy chart from a recorded schedule:
// each row is a lane, each column a time slice, '#' marks slices where the
// lane had an operation issued or in flight. The breakdown timeline above
// it shows what the system was doing at the same instants.
func GanttASCII(r *soc.RunResult, sched []core.ScheduleEntry, lanes, width int) string {
	if width < 10 {
		width = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "phase  %s\n", TimelineASCII(r, width))
	if len(sched) == 0 || r.Runtime == 0 {
		return sb.String()
	}
	cols := make([][]laneBucket, lanes)
	for l := range cols {
		cols[l] = make([]laneBucket, width)
	}
	scale := float64(width) / float64(r.Runtime)
	for _, e := range sched {
		if int(e.Lane) >= lanes {
			continue
		}
		lo := int(float64(e.Issue) * scale)
		hi := int(float64(e.Complete) * scale)
		if lo >= width {
			lo = width - 1
		}
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			cols[e.Lane][c] = laneActive
		}
	}
	for l := 0; l < lanes; l++ {
		fmt.Fprintf(&sb, "lane%-2d ", l)
		for c := 0; c < width; c++ {
			if cols[l][c] == laneActive {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
