package power

import (
	"testing"
	"testing/quick"

	"gem5aladdin/internal/trace"
)

func TestDefaultOpEnergies(t *testing.T) {
	m := Default()
	// FP multiply must dominate FP add; divides and sqrt dominate both.
	if m.OpEnergyJ(trace.OpFMul) <= m.OpEnergyJ(trace.OpFAdd) {
		t.Fatal("fmul should cost more than fadd")
	}
	if m.OpEnergyJ(trace.OpFDiv) <= m.OpEnergyJ(trace.OpFMul) {
		t.Fatal("fdiv should cost more than fmul")
	}
	if m.OpEnergyJ(trace.OpFSqrt) <= m.OpEnergyJ(trace.OpFMul) {
		t.Fatal("fsqrt should cost more than fmul")
	}
	if m.OpEnergyJ(trace.OpIAdd) <= 0 {
		t.Fatal("iadd energy must be positive")
	}
	// Memory kinds are charged via SRAM/cache models, not here.
	if m.OpEnergyJ(trace.OpLoad) != 0 || m.OpEnergyJ(trace.OpStore) != 0 {
		t.Fatal("load/store should have zero FU energy")
	}
}

func TestSRAMScalesWithSize(t *testing.T) {
	m := Default()
	small := m.SRAMAccessJ(2*1024, 1)
	big := m.SRAMAccessJ(64*1024, 1)
	if big <= small {
		t.Fatalf("64KB access (%g) should cost more than 2KB (%g)", big, small)
	}
	// Sublinear: 32x the capacity should be far less than 32x the energy.
	if big >= 8*small {
		t.Fatalf("SRAM energy scaling too steep: %g vs %g", big, small)
	}
}

func TestPortScalingSuperlinear(t *testing.T) {
	m := Default()
	e1 := m.SRAMAccessJ(8*1024, 1)
	e4 := m.SRAMAccessJ(8*1024, 4)
	if e4 <= 4*e1/2 {
		t.Fatalf("4-port energy %g not superlinear vs 1-port %g", e4, e1)
	}
	l1 := m.SRAMLeakW(8*1024, 1)
	l8 := m.SRAMLeakW(8*1024, 8)
	if l8 <= 8*l1 {
		t.Fatalf("8-port leakage %g should exceed 8x single-port %g", l8, l1)
	}
}

func TestCacheCostsMoreThanScratchpad(t *testing.T) {
	m := Default()
	for _, size := range []uint64{2048, 16384, 65536} {
		if m.CacheAccessJ(size, 1, 4) <= m.SRAMAccessJ(size, 1) {
			t.Fatalf("cache access at %dB should cost more than scratchpad", size)
		}
		if m.CacheLeakW(size, 1) <= m.SRAMLeakW(size, 1) {
			t.Fatalf("cache leakage at %dB should exceed scratchpad", size)
		}
	}
}

func TestAssociativityCost(t *testing.T) {
	m := Default()
	if m.CacheAccessJ(16384, 1, 8) <= m.CacheAccessJ(16384, 1, 4) {
		t.Fatal("8-way cache access should cost more than 4-way")
	}
}

func TestLaneLeak(t *testing.T) {
	m := Default()
	if m.LaneLeakW(16) != 16*m.LaneLeakW(1) {
		t.Fatal("lane leakage should be linear in lanes")
	}
}

func TestTransferEnergies(t *testing.T) {
	m := Default()
	if m.DRAMJ(64) <= m.BusJ(64) {
		t.Fatal("DRAM transfer should dominate bus transfer energy")
	}
	if m.BusJ(0) != 0 || m.DRAMJ(0) != 0 {
		t.Fatal("zero bytes should cost zero energy")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{FUDynamic: 1, FULeak: 2, MemDynamic: 3, MemLeak: 4}
	if b.Total() != 10 {
		t.Fatalf("total = %g", b.Total())
	}
	var acc Breakdown
	acc.Add(b)
	acc.Add(b)
	if acc.Total() != 20 {
		t.Fatalf("accumulated total = %g", acc.Total())
	}
	if got := b.AvgPowerW(5); got != 2 {
		t.Fatalf("avg power = %g", got)
	}
	if b.AvgPowerW(0) != 0 {
		t.Fatal("zero-time power should be 0")
	}
}

func TestEDP(t *testing.T) {
	if EDP(2, 3) != 6 {
		t.Fatal("EDP should be energy*delay")
	}
}

// Property: energy and leakage are monotone in size and ports.
func TestMonotonicityProperty(t *testing.T) {
	m := Default()
	f := func(kb1, kb2 uint8, p1, p2 uint8) bool {
		s1 := uint64(kb1%64+1) * 1024
		s2 := uint64(kb2%64+1) * 1024
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		ports1 := int(p1%8) + 1
		ports2 := int(p2%8) + 1
		if ports1 > ports2 {
			ports1, ports2 = ports2, ports1
		}
		return m.SRAMAccessJ(s1, ports1) <= m.SRAMAccessJ(s2, ports2) &&
			m.SRAMLeakW(s1, ports1) <= m.SRAMLeakW(s2, ports2) &&
			m.CacheAccessJ(s1, ports1, 4) <= m.CacheAccessJ(s2, ports2, 4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAreaModel(t *testing.T) {
	m := Default()
	if m.LaneAreaTotalMM2(16) != 16*m.LaneAreaTotalMM2(1) {
		t.Fatal("lane area should be linear")
	}
	if m.SRAMAreaMM2(64*1024, 1) <= m.SRAMAreaMM2(2*1024, 1) {
		t.Fatal("bigger SRAM should be bigger")
	}
	if m.SRAMAreaMM2(8*1024, 4) <= 2*m.SRAMAreaMM2(8*1024, 1) {
		t.Fatal("multi-porting should cost superlinear area")
	}
	if m.CacheAreaMM2(8*1024, 1) <= m.SRAMAreaMM2(8*1024, 1) {
		t.Fatal("cache should cost more area than a same-size SRAM")
	}
}
