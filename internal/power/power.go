// Package power provides the analytic energy and leakage models used to
// score accelerator design points, in the role of Aladdin's TSMC 40nm
// characterization. Absolute values are calibrated to published 40nm-class
// trends (CACTI-style SRAM scaling, superlinear multi-porting cost, cache
// tag/TLB overheads); the co-design studies only depend on the orderings
// these trends induce, as recorded in DESIGN.md.
package power

import (
	"math"

	"gem5aladdin/internal/trace"
)

// Model holds every tunable energy constant. Use Default for the calibrated
// 40nm-class configuration.
type Model struct {
	// OpEnergyPJ is dynamic energy per operation, indexed by trace.OpKind.
	// Memory kinds are zero here; array accesses are charged through the
	// SRAM/cache models instead.
	OpEnergyPJ [trace.NumKinds]float64

	// LaneLeakUW is leakage per datapath lane (one FP MAC-class chain of
	// functional units plus its FSM control).
	LaneLeakUW float64

	// SRAM access energy per up-to-8-byte word: Base + Slope*sqrt(KB),
	// scaled by ports^PortEnergyExp.
	SRAMBasePJ    float64
	SRAMSlopePJ   float64
	PortEnergyExp float64
	// XbarPerBank is the per-access crossbar/wiring overhead factor added
	// per bank beyond the first when an array is partitioned: routing a
	// lane to one of P banks is not free.
	XbarPerBank float64

	// SRAM leakage: (LeakUWPerKB*KB + LeakUWPerBank) * ports^PortLeakExp.
	// The per-bank term models decoder/sense-amp periphery, which is what
	// makes heavy partitioning cost leakage even at constant capacity.
	SRAMLeakUWPerKB   float64
	SRAMLeakUWPerBank float64
	PortLeakExp       float64

	// Caches pay tag lookups, associativity compare, and replacement
	// bookkeeping on top of a same-sized SRAM.
	CacheAccessFactor float64
	CacheLeakFactor   float64
	// AssocFactorPer4Way scales cache access energy per 4 ways of
	// associativity beyond the first 4.
	AssocFactorPer4Way float64

	// TLBAccessPJ is charged per cache access (address translation).
	TLBAccessPJ float64

	// Interconnect and memory transfer energies.
	BusPJPerByte  float64
	DRAMPJPerByte float64

	// Area model (Aladdin reports area alongside power; over-provisioned
	// designs waste silicon even when gated). mm^2 at the same 40nm-class
	// node.
	LaneAreaMM2      float64 // one datapath lane (FU chain + FSM)
	SRAMAreaMM2PerKB float64
	SRAMAreaPerBank  float64 // decoder/sense-amp periphery per macro
	PortAreaExp      float64 // multi-porting area cost exponent
	CacheAreaFactor  float64 // tags/MSHRs/TLB overhead over a same-size SRAM
}

// Default returns the calibrated 40nm-class model.
func Default() *Model {
	m := &Model{
		// A lane is a chain of FP-capable functional units plus FSM
		// control; its leakage is what punishes over-provisioned
		// parallelism once data movement caps the achievable speedup.
		LaneLeakUW:         150,
		SRAMBasePJ:         1.8,
		SRAMSlopePJ:        1.1,
		PortEnergyExp:      1.35,
		XbarPerBank:        0.05,
		SRAMLeakUWPerKB:    9,
		SRAMLeakUWPerBank:  3.2,
		PortLeakExp:        1.6,
		CacheAccessFactor:  1.55,
		CacheLeakFactor:    1.45,
		AssocFactorPer4Way: 0.12,
		TLBAccessPJ:        0.9,
		BusPJPerByte:       2.1,
		DRAMPJPerByte:      24,
		LaneAreaMM2:        0.011,
		SRAMAreaMM2PerKB:   0.007,
		SRAMAreaPerBank:    0.0012,
		PortAreaExp:        1.7,
		CacheAreaFactor:    1.35,
	}
	m.OpEnergyPJ[trace.OpIAdd] = 0.10
	m.OpEnergyPJ[trace.OpISub] = 0.10
	m.OpEnergyPJ[trace.OpIMul] = 3.0
	m.OpEnergyPJ[trace.OpIDiv] = 12.0
	m.OpEnergyPJ[trace.OpIAnd] = 0.03
	m.OpEnergyPJ[trace.OpIOr] = 0.03
	m.OpEnergyPJ[trace.OpIXor] = 0.03
	m.OpEnergyPJ[trace.OpIShl] = 0.04
	m.OpEnergyPJ[trace.OpIShr] = 0.04
	m.OpEnergyPJ[trace.OpICmp] = 0.06
	m.OpEnergyPJ[trace.OpFAdd] = 1.6
	m.OpEnergyPJ[trace.OpFSub] = 1.6
	m.OpEnergyPJ[trace.OpFMul] = 4.2
	m.OpEnergyPJ[trace.OpFDiv] = 16.0
	m.OpEnergyPJ[trace.OpFSqrt] = 21.0
	m.OpEnergyPJ[trace.OpFExp] = 26.0
	m.OpEnergyPJ[trace.OpFCmp] = 0.4
	m.OpEnergyPJ[trace.OpSelect] = 0.08
	return m
}

const (
	pJ = 1e-12
	uW = 1e-6
)

// OpEnergyJ returns the dynamic energy of one operation in joules.
func (m *Model) OpEnergyJ(k trace.OpKind) float64 { return m.OpEnergyPJ[k] * pJ }

func portE(ports int, exp float64) float64 {
	if ports < 1 {
		ports = 1
	}
	return math.Pow(float64(ports), exp)
}

// SRAMAccessJ is the energy of one scratchpad word access for a bank of the
// given size and port count.
func (m *Model) SRAMAccessJ(sizeBytes uint64, ports int) float64 {
	return m.BankedSRAMAccessJ(sizeBytes, ports, 1)
}

// BankedSRAMAccessJ is SRAMAccessJ plus the crossbar overhead of selecting
// among banks banks.
func (m *Model) BankedSRAMAccessJ(sizeBytes uint64, ports, banks int) float64 {
	kb := float64(sizeBytes) / 1024
	xbar := 1 + m.XbarPerBank*float64(banks-1)
	return (m.SRAMBasePJ + m.SRAMSlopePJ*math.Sqrt(kb)) * portE(ports, m.PortEnergyExp) * xbar * pJ
}

// SRAMLeakW is the leakage power in watts of one SRAM bank.
func (m *Model) SRAMLeakW(sizeBytes uint64, ports int) float64 {
	kb := float64(sizeBytes) / 1024
	return (m.SRAMLeakUWPerKB*kb + m.SRAMLeakUWPerBank) * portE(ports, m.PortLeakExp) * uW
}

// CacheAccessJ is the energy of one cache access (data + tags + TLB lookup).
func (m *Model) CacheAccessJ(sizeBytes uint64, ports, assoc int) float64 {
	assocFactor := 1.0
	if assoc > 4 {
		assocFactor += m.AssocFactorPer4Way * float64(assoc-4) / 4
	}
	return m.SRAMAccessJ(sizeBytes, ports)*m.CacheAccessFactor*assocFactor + m.TLBAccessPJ*pJ
}

// CacheLeakW is the leakage power of a cache (data + tags + MSHRs).
func (m *Model) CacheLeakW(sizeBytes uint64, ports int) float64 {
	return m.SRAMLeakW(sizeBytes, ports) * m.CacheLeakFactor
}

// LaneLeakW is the leakage power of n datapath lanes.
func (m *Model) LaneLeakW(n int) float64 { return m.LaneLeakUW * float64(n) * uW }

// BusJ is the interconnect energy of moving n bytes.
func (m *Model) BusJ(n uint64) float64 { return m.BusPJPerByte * float64(n) * pJ }

// DRAMJ is the DRAM array + IO energy of moving n bytes.
func (m *Model) DRAMJ(n uint64) float64 { return m.DRAMPJPerByte * float64(n) * pJ }

// LaneAreaTotalMM2 returns the silicon area of n datapath lanes.
func (m *Model) LaneAreaTotalMM2(n int) float64 { return m.LaneAreaMM2 * float64(n) }

// SRAMAreaMM2 returns the area of one scratchpad bank.
func (m *Model) SRAMAreaMM2(sizeBytes uint64, ports int) float64 {
	kb := float64(sizeBytes) / 1024
	return (m.SRAMAreaMM2PerKB*kb + m.SRAMAreaPerBank) * portE(ports, m.PortAreaExp)
}

// CacheAreaMM2 returns the area of a cache (data + tags + MSHRs + TLB).
func (m *Model) CacheAreaMM2(sizeBytes uint64, ports int) float64 {
	return m.SRAMAreaMM2(sizeBytes, ports) * m.CacheAreaFactor
}

// Breakdown accumulates accelerator energy by component, in joules. It
// covers the accelerator only — datapath plus local memories — matching
// the paper's "all power results represent only the accelerator power";
// interconnect/DRAM movement energy is reported separately by the SoC
// layer.
type Breakdown struct {
	FUDynamic  float64
	FULeak     float64
	MemDynamic float64 // scratchpad or cache array accesses
	MemLeak    float64
}

// Total is the summed accelerator energy in joules.
func (b Breakdown) Total() float64 {
	return b.FUDynamic + b.FULeak + b.MemDynamic + b.MemLeak
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.FUDynamic += o.FUDynamic
	b.FULeak += o.FULeak
	b.MemDynamic += o.MemDynamic
	b.MemLeak += o.MemLeak
}

// AvgPowerW is the average power over an execution of the given seconds.
func (b Breakdown) AvgPowerW(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return b.Total() / seconds
}

// EDP returns the energy-delay product in joule-seconds.
func EDP(energyJ, seconds float64) float64 { return energyJ * seconds }
