// Memory-model implementations plugged into the datapath scheduler: ideal
// (isolated Aladdin), partitioned scratchpads with full/empty bits (DMA
// designs), and the hardware-managed cache with a private TLB (cache
// designs). Local arrays stay in scratchpads even for cache designs
// (Sec IV-D: "only data that must eventually be shared with the rest of
// the system is sent through the cache").
package core

import (
	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/mem/cache"
	"gem5aladdin/internal/mem/spad"
	"gem5aladdin/internal/mem/tlb"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

// IdealMem services every access in one cycle with no port limits: the
// memory system assumed when an accelerator is designed in isolation.
type IdealMem struct{}

// Issue implements MemModel.
func (IdealMem) Issue(id int32, n *trace.Node, cycle uint64, complete func()) IssueStatus {
	return IssueLocal
}

// Drained implements MemModel.
func (IdealMem) Drained() bool { return true }

// SpadMem is the scratchpad memory model for DMA-based designs: accesses
// contend for bank ports and, when DMA-triggered computation is enabled,
// loads gate on full/empty bits.
type SpadMem struct {
	Spad *spad.Spad
}

// NewSpadMem wraps a configured scratchpad.
func NewSpadMem(s *spad.Spad) *SpadMem { return &SpadMem{Spad: s} }

// Issue implements MemModel.
func (m *SpadMem) Issue(id int32, n *trace.Node, cycle uint64, complete func()) IssueStatus {
	if n.Kind == trace.OpLoad && !m.Spad.DataReady(n.Arr, n.Addr, n.Size) {
		return IssueRetry
	}
	if !m.Spad.TryAccess(n.Arr, n.Addr, n.Kind == trace.OpStore, cycle) {
		return IssueRetry
	}
	return IssueLocal
}

// Drained implements MemModel.
func (m *SpadMem) Drained() bool { return true }

// CacheMem routes shared arrays through the accelerator cache (behind the
// TLB) and private Local arrays through a scratchpad. A cache access blocks
// only the issuing lane; MSHRs in the cache provide hit-under-miss.
type CacheMem struct {
	Cache *cache.Cache
	TLB   *tlb.TLB
	Spad  *spad.Spad
	Graph *ddg.Graph
	eng   *sim.Engine

	// cached per array: true if the array goes through the cache
	viaCache []bool
}

// NewCacheMem wires the cache-based memory interface.
func NewCacheMem(eng *sim.Engine, c *cache.Cache, t *tlb.TLB, s *spad.Spad, g *ddg.Graph) *CacheMem {
	m := &CacheMem{Cache: c, TLB: t, Spad: s, Graph: g, eng: eng}
	m.viaCache = make([]bool, len(g.Trace.Arrays))
	for i, a := range g.Trace.Arrays {
		m.viaCache[i] = a.Dir != trace.Local
	}
	return m
}

// Issue implements MemModel. Hits behave like scratchpad accesses — the
// lane keeps issuing — while TLB walks and cache misses block only the
// issuing lane (Sec IV-D's miss-handling scheme).
func (m *CacheMem) Issue(id int32, n *trace.Node, cycle uint64, complete func()) IssueStatus {
	if !m.viaCache[n.Arr] {
		if !m.Spad.TryAccess(n.Arr, n.Addr, n.Kind == trace.OpStore, cycle) {
			return IssueRetry
		}
		return IssueLocal
	}
	vaddr := m.Graph.NodeAddr(id)
	paddr, penalty := m.TLB.Translate(vaddr)
	write := n.Kind == trace.OpStore
	size := uint32(n.Size)
	if penalty == 0 {
		switch m.Cache.TryFastHit(paddr, size, write) {
		case cache.FastHit:
			return IssueLocal
		case cache.FastPortBusy:
			return IssueRetry
		}
		m.Cache.Access(paddr, size, write, complete)
		return IssueAsync
	}
	m.eng.After(penalty, func() {
		m.Cache.Access(paddr, size, write, complete)
	})
	return IssueAsync
}

// Drained implements MemModel.
func (m *CacheMem) Drained() bool { return m.Cache.InFlight() == 0 }

// Translate exposes the static virtual-to-physical mapping so callers (the
// SoC wiring) can place CPU-side dirty lines at the physical addresses the
// accelerator will access. It does not perturb TLB state.
func (m *CacheMem) Translate(vaddr uint64) uint64 { return m.TLB.PhysOf(vaddr) }
