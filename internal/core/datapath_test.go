package core

import (
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/mem/spad"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

func accelClock() sim.Clock { return sim.NewClockHz(100e6) }

func cfgLanes(lanes int) Config {
	return Config{Lanes: lanes, Clock: accelClock(), Latencies: DefaultOpLatencies()}
}

// runIdeal executes graph g on an ideal memory and returns the result.
func runIdeal(t *testing.T, g *ddg.Graph, lanes int) *Result {
	t.Helper()
	eng := sim.NewEngine()
	d := NewDatapath(eng, g, cfgLanes(lanes), IdealMem{})
	var res *Result
	d.Start(func(r *Result) { res = r })
	eng.Run()
	if res == nil {
		t.Fatal("datapath never finished")
	}
	return res
}

// parallelTrace builds iters independent iterations of `chain` dependent
// single-cycle integer adds each.
func parallelTrace(iters, chain int) *ddg.Graph {
	b := trace.NewBuilder("par")
	for i := 0; i < iters; i++ {
		b.BeginIter()
		v := b.ConstI(int64(i))
		for c := 0; c < chain; c++ {
			v = b.IAdd(v, b.ConstI(1))
		}
	}
	return ddg.Build(b.Finish())
}

func TestSingleLaneSerializesIterations(t *testing.T) {
	g := parallelTrace(8, 4)
	res := runIdeal(t, g, 1)
	// 8 iterations x 4 dependent adds, one lane, one op/cycle: >= 32
	// cycles of issue plus the final op's visibility.
	if res.Stats.Cycles < 32 {
		t.Fatalf("cycles = %d, want >= 32", res.Stats.Cycles)
	}
	if res.Stats.OpsIssued[trace.OpIAdd] != 32 {
		t.Fatalf("adds issued = %d", res.Stats.OpsIssued[trace.OpIAdd])
	}
}

func TestParallelismScales(t *testing.T) {
	g := parallelTrace(16, 8)
	c1 := runIdeal(t, g, 1).Stats.Cycles
	c4 := runIdeal(t, g, 4).Stats.Cycles
	c16 := runIdeal(t, g, 16).Stats.Cycles
	if c4 >= c1 || c16 >= c4 {
		t.Fatalf("no speedup: lanes 1/4/16 -> %d/%d/%d cycles", c1, c4, c16)
	}
	// Near-linear at the wave level: 16 lanes should be ~4x faster than 4.
	if float64(c1)/float64(c16) < 8 {
		t.Fatalf("16-lane speedup only %.1fx", float64(c1)/float64(c16))
	}
}

func TestLatencyRespected(t *testing.T) {
	b := trace.NewBuilder("lat")
	x := b.FMul(b.ConstF(2), b.ConstF(3)) // 4 cycles
	y := b.FMul(x, x)                     // depends on x
	_ = y
	g := ddg.Build(b.Finish())
	res := runIdeal(t, g, 1)
	// fmul(4) then dependent fmul(4): second issues at cycle 4, visible
	// at 8.
	if res.Stats.Cycles < 8 {
		t.Fatalf("cycles = %d, want >= 8", res.Stats.Cycles)
	}
}

func TestPipelinedIndependentOps(t *testing.T) {
	// Independent multi-cycle ops in one iteration issue back-to-back
	// (pipelined FUs): 8 fmuls should take ~8+4 cycles on 1 lane, not 32.
	b := trace.NewBuilder("pipe")
	b.BeginIter()
	for i := 0; i < 8; i++ {
		b.FMul(b.ConstF(1), b.ConstF(2))
	}
	g := ddg.Build(b.Finish())
	res := runIdeal(t, g, 1)
	if res.Stats.Cycles > 13 {
		t.Fatalf("cycles = %d, want pipelined ~12", res.Stats.Cycles)
	}
}

func TestCrossIterationDependence(t *testing.T) {
	// A serial reduction: even with 16 lanes, the dependence chain limits
	// speedup (the nw-style serial workload of the paper).
	b := trace.NewBuilder("serial")
	acc := b.ConstI(0)
	for i := 0; i < 32; i++ {
		b.BeginIter()
		acc = b.IAdd(acc, b.ConstI(1))
	}
	g := ddg.Build(b.Finish())
	c1 := runIdeal(t, g, 1).Stats.Cycles
	c16 := runIdeal(t, g, 16).Stats.Cycles
	if c16 < 32 {
		t.Fatalf("16 lanes beat the dependence chain: %d cycles", c16)
	}
	if c1 < c16 {
		t.Fatalf("serial chain slower on 1 lane (%d) than 16 (%d)", c1, c16)
	}
}

func TestWaveBarrier(t *testing.T) {
	// 4 iterations on 2 lanes = 2 waves. Iteration 0 is long (chain of 8),
	// iteration 1 is short. The barrier forces wave 2 (iterations 2,3) to
	// wait for iteration 0 even though lane 1 went idle early.
	b := trace.NewBuilder("barrier")
	b.BeginIter()
	v := b.ConstI(0)
	for i := 0; i < 8; i++ {
		v = b.IAdd(v, b.ConstI(1))
	}
	b.BeginIter()
	b.IAdd(b.ConstI(1), b.ConstI(1))
	b.BeginIter()
	b.IAdd(b.ConstI(1), b.ConstI(1))
	b.BeginIter()
	b.IAdd(b.ConstI(1), b.ConstI(1))
	g := ddg.Build(b.Finish())
	res := runIdeal(t, g, 2)
	if res.Stats.BarrierStalls == 0 {
		t.Fatal("expected barrier stalls with unbalanced waves")
	}
	// All ops executed exactly once.
	if res.Stats.OpsIssued[trace.OpIAdd] != 11 {
		t.Fatalf("adds = %d, want 11", res.Stats.OpsIssued[trace.OpIAdd])
	}
}

func TestPreludeRunsFirst(t *testing.T) {
	b := trace.NewBuilder("prelude")
	a := b.Alloc("a", trace.F64, 8, trace.Local)
	b.Store(a, 0, b.ConstF(1)) // prelude store
	for i := 0; i < 4; i++ {
		b.BeginIter()
		b.Load(a, 0) // every iteration reads what the prelude wrote
	}
	g := ddg.Build(b.Finish())
	arrs := g.Trace.Arrays
	eng := sim.NewEngine()
	sp := spad.New(spad.Config{Partitions: 1, Ports: 4}, arrs)
	d := NewDatapath(eng, g, cfgLanes(4), NewSpadMem(sp))
	var res *Result
	d.Start(func(r *Result) { res = r })
	eng.Run()
	if res == nil {
		t.Fatal("never finished")
	}
	if res.Stats.OpsIssued[trace.OpLoad] != 4 || res.Stats.OpsIssued[trace.OpStore] != 1 {
		t.Fatalf("ops = %+v", res.Stats.OpsIssued)
	}
}

func TestSpadPortContentionSlowsDown(t *testing.T) {
	// 16 iterations each loading 2 elements: with 1 partition x 1 port,
	// loads serialize; with 4 partitions they do not.
	mk := func() *ddg.Graph {
		b := trace.NewBuilder("ports")
		a := b.Alloc("a", trace.F64, 64, trace.In)
		for i := 0; i < 16; i++ {
			b.BeginIter()
			x := b.Load(a, i)
			y := b.Load(a, i+16)
			b.FAdd(x, y)
		}
		return ddg.Build(b.Finish())
	}
	run := func(parts int) uint64 {
		g := mk()
		eng := sim.NewEngine()
		sp := spad.New(spad.Config{Partitions: parts, Ports: 1}, g.Trace.Arrays)
		d := NewDatapath(eng, g, cfgLanes(8), NewSpadMem(sp))
		var res *Result
		d.Start(func(r *Result) { res = r })
		eng.Run()
		return res.Stats.Cycles
	}
	narrow := run(1)
	wide := run(8)
	if wide >= narrow {
		t.Fatalf("partitioning did not help: %d vs %d cycles", wide, narrow)
	}
}

func TestReadyBitsStallUntilArrival(t *testing.T) {
	b := trace.NewBuilder("ready")
	a := b.Alloc("a", trace.F64, 8, trace.In)
	b.BeginIter()
	b.Load(a, 0)
	g := ddg.Build(b.Finish())
	eng := sim.NewEngine()
	sp := spad.New(spad.DefaultConfig(), g.Trace.Arrays)
	sp.EnableReadyBits(32, g.Trace.Arrays)
	d := NewDatapath(eng, g, cfgLanes(1), NewSpadMem(sp))
	var res *Result
	d.Start(func(r *Result) { res = r })
	// Data arrives at 5us; the load must wait for it.
	eng.Schedule(5*sim.Microsecond, func() {
		sp.MarkArrived(0, 0, 32)
		d.Wake()
	})
	eng.Run()
	if res == nil {
		t.Fatal("never finished")
	}
	if res.End < 5*sim.Microsecond {
		t.Fatalf("finished at %v, before data arrived", res.End)
	}
}

func TestComputeIntervalsCoverActivity(t *testing.T) {
	g := parallelTrace(8, 4)
	res := runIdeal(t, g, 2)
	if len(res.ComputeIntervals) == 0 {
		t.Fatal("no compute intervals recorded")
	}
	first := res.ComputeIntervals[0]
	last := res.ComputeIntervals[len(res.ComputeIntervals)-1]
	if first.Start < res.Start || last.End > res.End+accelClock().Period {
		t.Fatalf("intervals [%v,%v] outside run [%v,%v]",
			first.Start, last.End, res.Start, res.End)
	}
}

func TestStatsActiveCyclesPositive(t *testing.T) {
	g := parallelTrace(4, 2)
	res := runIdeal(t, g, 2)
	if res.Stats.ActiveCycles == 0 || res.Stats.ActiveCycles > res.Stats.Cycles+1 {
		t.Fatalf("active=%d total=%d", res.Stats.ActiveCycles, res.Stats.Cycles)
	}
}

func TestEmptyGraphFinishes(t *testing.T) {
	b := trace.NewBuilder("empty")
	g := ddg.Build(b.Finish())
	res := runIdeal(t, g, 4)
	if res.Stats.Cycles != 0 {
		t.Fatalf("empty graph took %d cycles", res.Stats.Cycles)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	g := parallelTrace(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero lanes did not panic")
		}
	}()
	NewDatapath(sim.NewEngine(), g, Config{Lanes: 0, Clock: accelClock()}, IdealMem{})
}

func TestDoubleStartPanics(t *testing.T) {
	g := parallelTrace(1, 1)
	eng := sim.NewEngine()
	d := NewDatapath(eng, g, cfgLanes(1), IdealMem{})
	d.Start(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	d.Start(nil)
}
