// Package core is the heart of the gem5-Aladdin reproduction: the Aladdin
// accelerator datapath simulator, integrated with the SoC's memory systems
// so that dynamic accelerator-system interactions (DMA arrival, cache
// misses, TLB walks, bus contention) feed back into the schedule.
//
// The datapath model follows Sec II and IV-D of the paper:
//
//   - An accelerator is L parallel lanes; loop iteration i runs on lane
//     i mod L (how Aladdin realizes loop unrolling).
//   - Each lane is a chain of functional units driven by an FSM: it issues
//     its iteration's operations in order, one per cycle, with pipelined
//     functional units. An operation issues only when its DDDG dependences
//     have resolved.
//   - Memory behavior is pluggable: ideal single-cycle memory (isolated
//     Aladdin), partitioned scratchpads with optional full/empty-bit gating
//     (DMA designs), or a hardware-managed cache with MSHRs where a miss
//     stalls only the issuing lane (cache designs).
//   - When lanes finish an iteration they synchronize with all other lanes
//     before the next wave of iterations begins.
package core

import (
	"fmt"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/mem/dma"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

// OpLatencies maps operation kinds to functional-unit latency in cycles.
type OpLatencies [trace.NumKinds]uint8

// DefaultOpLatencies returns the 100 MHz functional-unit latencies used to
// match Vivado HLS default designs (integer ops single-cycle; FP adds 3,
// multiplies 4, divides/square roots long-latency).
func DefaultOpLatencies() OpLatencies {
	var l OpLatencies
	for k := range l {
		l[k] = 1
	}
	l[trace.OpIMul] = 3
	l[trace.OpIDiv] = 10
	l[trace.OpFAdd] = 3
	l[trace.OpFSub] = 3
	l[trace.OpFMul] = 4
	l[trace.OpFDiv] = 15
	l[trace.OpFSqrt] = 15
	l[trace.OpFExp] = 18
	return l
}

// IssueStatus is a memory model's answer to an issue attempt.
type IssueStatus uint8

// Issue outcomes.
const (
	// IssueRetry: resource or data unavailable; the lane stalls and
	// retries next cycle (or when Wake fires).
	IssueRetry IssueStatus = iota
	// IssueLocal: access accepted, completes with single-cycle latency.
	IssueLocal
	// IssueAsync: access accepted; the lane blocks until the model calls
	// the provided completion callback.
	IssueAsync
)

// MemModel abstracts the accelerator's local memory interface.
type MemModel interface {
	// Issue attempts the memory access of node id at the given
	// accelerator cycle. complete must be invoked iff the return is
	// IssueAsync.
	Issue(id int32, n *trace.Node, cycle uint64, complete func()) IssueStatus
	// Drained reports whether all outstanding accesses have finished
	// (mfence semantics before signaling completion to the CPU).
	Drained() bool
}

// Config parameterizes the datapath.
type Config struct {
	Lanes     int
	Clock     sim.Clock
	Latencies OpLatencies
	// NoBarrier lets lanes run ahead into later iterations without
	// synchronizing at wave boundaries (correctness is still enforced by
	// the DDDG). An ablation of the paper's lane-synchronization design
	// choice.
	NoBarrier bool
	// RecordSchedule captures per-node issue/complete times in the
	// Result for schedule-validity checking and visualization. Costs
	// memory proportional to the trace; off by default.
	RecordSchedule bool
}

// completionWindow bounds how far ahead (in cycles) a synchronous
// completion can land; it must exceed the largest functional-unit latency.
const completionWindow = 64

// ScheduleEntry records when one node issued and when its result became
// visible, in ticks.
type ScheduleEntry struct {
	Issue    sim.Tick
	Complete sim.Tick
	Lane     int32
}

// Stats aggregates datapath activity.
type Stats struct {
	Cycles        uint64 // cycles from start to completion signal
	ActiveCycles  uint64 // cycles with at least one op issued or in flight
	OpsIssued     [trace.NumKinds]uint64
	MemStalls     uint64 // lane-cycles stalled on memory (retry or async)
	DepStalls     uint64 // lane-cycles stalled on dependences
	BarrierStalls uint64 // lane-cycles stalled on the wave barrier
	// LaneOps counts operations issued per lane; with Cycles it yields
	// per-lane utilization (the paper's "wasted hardware" signal).
	LaneOps []uint64
}

// LaneUtilization returns each lane's issue-slot occupancy in [0,1].
func (s Stats) LaneUtilization() []float64 {
	if s.Cycles == 0 || len(s.LaneOps) == 0 {
		return nil
	}
	out := make([]float64, len(s.LaneOps))
	for i, n := range s.LaneOps {
		out[i] = float64(n) / float64(s.Cycles)
	}
	return out
}

// Result is the outcome of one datapath execution.
type Result struct {
	Start, End sim.Tick
	Stats      Stats
	// ComputeIntervals are the wall-clock windows in which the datapath
	// was active, for the flush/DMA/compute runtime breakdown.
	ComputeIntervals []dma.Interval
	// Schedule holds per-node issue/complete times when
	// Config.RecordSchedule was set; nil otherwise.
	Schedule []ScheduleEntry
}

// laneState tracks one lane's progress through its assigned iterations.
type laneState struct {
	iters   []ddg.Range // iteration node ranges, in execution order
	waves   []int       // wave index of each entry in iters
	cur     int         // current index into iters
	pc      int32       // next node within the current range
	blocked bool        // waiting on an async memory completion
}

// Datapath is one accelerator instance's scheduler.
type Datapath struct {
	cfg Config
	eng *sim.Engine
	g   *ddg.Graph
	mem MemModel

	indeg  []int32
	lanes  []laneState
	issued []bool

	// wave barrier
	waveRemaining []int
	completeWave  int // highest wave index fully complete

	// completion ring: bucket c%completionWindow holds nodes whose
	// results become visible at cycle c. Functional-unit latencies are
	// far below the window, so collisions cannot occur.
	completions  [completionWindow][]int32
	completionAt [completionWindow]uint64 // the cycle each bucket is armed for
	pendingSync  int                      // nodes waiting in the ring
	inFlight     int                      // issued but not yet completed nodes

	cycle         uint64
	startTick     sim.Tick
	tickEv        *sim.Event // pre-bound tick callback, scheduled every cycle
	tickScheduled bool
	running       bool
	finished      bool
	done          func(*Result)

	stats      Stats
	intervals  []dma.Interval
	lastActive uint64
	activeOpen bool
	sched      []ScheduleEntry
	probe      *obs.Probe
}

// NewDatapath builds a scheduler over graph g with the given memory model.
func NewDatapath(eng *sim.Engine, g *ddg.Graph, cfg Config, mem MemModel) *Datapath {
	if cfg.Lanes <= 0 {
		panic("core: non-positive lane count")
	}
	if cfg.Clock.Period == 0 {
		panic("core: zero clock period")
	}
	n := g.NumNodes()
	for _, lat := range cfg.Latencies {
		if uint64(lat) >= completionWindow {
			panic("core: functional-unit latency exceeds the completion window")
		}
	}
	d := &Datapath{
		cfg: cfg, eng: eng, g: g, mem: mem,
		indeg:  make([]int32, n),
		issued: make([]bool, n),
		lanes:  make([]laneState, cfg.Lanes),
	}
	copy(d.indeg, g.InDeg)
	d.tickEv = sim.NewEvent(d.tick)
	d.stats.LaneOps = make([]uint64, cfg.Lanes)
	if cfg.RecordSchedule {
		d.sched = make([]ScheduleEntry, n)
	}

	// Assign iterations to lanes; prelude nodes run on lane 0 as wave 0,
	// iteration k of the kernel loop is wave k/L + 1.
	nWaves := 1 + (len(g.IterRange)+cfg.Lanes-1)/cfg.Lanes
	d.waveRemaining = make([]int, nWaves+1)
	d.completeWave = -1
	if g.Prelude.Len() > 0 {
		d.lanes[0].iters = append(d.lanes[0].iters, g.Prelude)
		d.lanes[0].waves = append(d.lanes[0].waves, 0)
		d.waveRemaining[0] += g.Prelude.Len()
	}
	for k, r := range g.IterRange {
		lane := k % cfg.Lanes
		wave := k/cfg.Lanes + 1
		d.lanes[lane].iters = append(d.lanes[lane].iters, r)
		d.lanes[lane].waves = append(d.lanes[lane].waves, wave)
		d.waveRemaining[wave] += r.Len()
	}
	// Waves with zero nodes are trivially complete; normalize the pointer
	// lazily in advanceWaves.
	for i := range d.lanes {
		d.lanes[i].pc = -1
	}
	return d
}

// AttachProbe wires an observability probe; the datapath fires one span per
// retired node (issue tick to completion tick, named by op kind, with the
// lane attached). Firing needs per-node issue times, so the schedule buffer
// is allocated even when Config.RecordSchedule is off — Result.Schedule
// still honors the config flag.
func (d *Datapath) AttachProbe(p *obs.Probe) {
	d.probe = p
	if d.sched == nil && p.Enabled() {
		d.sched = make([]ScheduleEntry, d.g.NumNodes())
	}
}

// Snapshot returns a copy of the datapath counters accumulated so far.
func (d *Datapath) Snapshot() Stats { return d.stats }

// RegisterStats registers datapath counters under prefix, reading through
// snap at dump time. The indirection matters because the SoC rebuilds the
// datapath for every accelerator invocation: snap reads whichever instance
// is current.
func RegisterStats(reg *obs.Registry, prefix string, snap func() Stats) {
	reg.CounterFunc(prefix+".cycles", "accelerator cycles start to completion",
		func() uint64 { return snap().Cycles })
	reg.CounterFunc(prefix+".active_cycles", "cycles with an op issued or in flight",
		func() uint64 { return snap().ActiveCycles })
	reg.CounterFunc(prefix+".ops_issued", "operations issued across all lanes",
		func() uint64 {
			var total uint64
			for _, n := range snap().OpsIssued {
				total += n
			}
			return total
		})
	reg.CounterFunc(prefix+".mem_stalls", "lane-cycles stalled on memory",
		func() uint64 { return snap().MemStalls })
	reg.CounterFunc(prefix+".dep_stalls", "lane-cycles stalled on dependences",
		func() uint64 { return snap().DepStalls })
	reg.CounterFunc(prefix+".barrier_stalls", "lane-cycles stalled on the wave barrier",
		func() uint64 { return snap().BarrierStalls })
	reg.Formula(prefix+".utilization", "mean per-lane issue-slot occupancy",
		func() float64 {
			util := snap().LaneUtilization()
			if len(util) == 0 {
				return 0
			}
			var sum float64
			for _, u := range util {
				sum += u
			}
			return sum / float64(len(util))
		})
}

// Start begins execution at the current simulation time; done fires once
// every node has completed and the memory model drained.
func (d *Datapath) Start(done func(*Result)) {
	if d.running {
		panic("core: datapath already started")
	}
	d.running = true
	d.done = done
	d.startTick = d.eng.Now()
	d.advanceWaves()
	d.scheduleTick()
}

// Wake nudges the scheduler after an external event (DMA arrival setting a
// full/empty bit) that may unblock stalled lanes.
func (d *Datapath) Wake() {
	if d.running && !d.finished {
		d.scheduleTick()
	}
}

func (d *Datapath) scheduleTick() {
	if d.tickScheduled || d.finished {
		return
	}
	d.tickScheduled = true
	// Clock edges are relative to the datapath's start tick (the FSM
	// starts when the accelerator is kicked, not on a global grid).
	now := d.eng.Now()
	c := d.cfg.Clock.CyclesAt(now - d.startTick)
	next := d.startTick + d.cfg.Clock.Cycles(c)
	if next < now {
		next = d.startTick + d.cfg.Clock.Cycles(c+1)
	}
	d.eng.ScheduleEvent(next, d.tickEv)
}

// nextCompletionCycle returns the earliest cycle at which a pending result
// becomes visible.
func (d *Datapath) nextCompletionCycle() (uint64, bool) {
	if d.pendingSync == 0 {
		return 0, false
	}
	var best uint64
	found := false
	for b := 0; b < completionWindow; b++ {
		if len(d.completions[b]) == 0 {
			continue
		}
		if !found || d.completionAt[b] < best {
			best = d.completionAt[b]
			found = true
		}
	}
	return best, found
}

// cycleAt converts the current tick into an accelerator cycle index.
func (d *Datapath) cycleAt() uint64 {
	return d.cfg.Clock.CyclesAt(d.eng.Now() - d.startTick)
}

func (d *Datapath) tick() {
	d.tickScheduled = false
	if d.finished {
		return
	}
	d.cycle = d.cycleAt()

	// Make results visible for completions scheduled at or before now.
	if d.pendingSync > 0 {
		for b := 0; b < completionWindow; b++ {
			if len(d.completions[b]) == 0 || d.completionAt[b] > d.cycle {
				continue
			}
			for _, id := range d.completions[b] {
				d.complete(id)
			}
			d.pendingSync -= len(d.completions[b])
			d.completions[b] = d.completions[b][:0]
		}
	}
	d.advanceWaves()

	anyIssued := false
	anyStalledRetry := false
	for li := range d.lanes {
		ln := &d.lanes[li]
		if ln.blocked {
			d.stats.MemStalls++
			continue
		}
		id, ok := d.nextNode(ln)
		if !ok {
			continue
		}
		nd := &d.g.Trace.Nodes[id]
		// Wave barrier: a node may issue only when every prior wave is
		// fully complete.
		if !d.cfg.NoBarrier && ln.waves[ln.cur] > d.completeWave+1 {
			d.stats.BarrierStalls++
			anyStalledRetry = true
			continue
		}
		if d.indeg[id] != 0 {
			d.stats.DepStalls++
			anyStalledRetry = true
			continue
		}
		if nd.Kind.IsMem() {
			switch d.mem.Issue(id, nd, d.cycle, func() { d.asyncComplete(li, id) }) {
			case IssueRetry:
				d.stats.MemStalls++
				anyStalledRetry = true
				continue
			case IssueLocal:
				d.issue(ln, li, id, 1)
			case IssueAsync:
				d.issue(ln, li, id, 0)
				ln.blocked = true
			}
		} else {
			lat := uint64(d.cfg.Latencies[nd.Kind])
			if lat == 0 {
				lat = 1
			}
			d.issue(ln, li, id, lat)
		}
		anyIssued = true
	}

	active := anyIssued || d.inFlight > 0
	if active {
		d.stats.ActiveCycles++
		d.recordActive()
	}

	if d.allDone() {
		d.finish()
		return
	}

	// Decide when to tick next: next cycle if anything can progress, else
	// at the earliest pending completion, else wait for async wakeups.
	if anyIssued || anyStalledRetry {
		d.eng.ScheduleEvent(d.startTick+d.cfg.Clock.Cycles(d.cycle+1), d.tickEv)
		d.tickScheduled = true
		return
	}
	if next, ok := d.nextCompletionCycle(); ok {
		d.eng.ScheduleEvent(d.startTick+d.cfg.Clock.Cycles(next), d.tickEv)
		d.tickScheduled = true
	}
	// Otherwise: every runnable lane is blocked on async memory or ready
	// bits; asyncComplete/Wake will reschedule.
}

// nextNode returns the lane's next unissued node, advancing across its
// iterations. ok=false when the lane has exhausted its work.
func (d *Datapath) nextNode(ln *laneState) (int32, bool) {
	for ln.cur < len(ln.iters) {
		r := ln.iters[ln.cur]
		if ln.pc < r.Start {
			ln.pc = r.Start
		}
		if ln.pc < r.End {
			return ln.pc, true
		}
		ln.cur++
		ln.pc = -1
	}
	return 0, false
}

func (d *Datapath) issue(ln *laneState, lane int, id int32, lat uint64) {
	nd := &d.g.Trace.Nodes[id]
	d.stats.OpsIssued[nd.Kind]++
	d.stats.LaneOps[lane]++
	d.issued[id] = true
	ln.pc = id + 1
	d.inFlight++
	if d.sched != nil {
		d.sched[id].Issue = d.eng.Now()
		d.sched[id].Lane = int32(lane)
	}
	if lat > 0 {
		vis := d.cycle + lat
		b := vis % completionWindow
		d.completions[b] = append(d.completions[b], id)
		d.completionAt[b] = vis
		d.pendingSync++
	}
}

// complete makes node id's result visible: successors' dependences resolve
// and the wave accounting advances.
func (d *Datapath) complete(id int32) {
	d.inFlight--
	if d.sched != nil {
		d.sched[id].Complete = d.eng.Now()
	}
	if d.probe.Enabled() {
		d.probe.Fire(obs.Event{Name: d.g.Trace.Nodes[id].Kind.String(),
			Start: uint64(d.sched[id].Issue), End: uint64(d.eng.Now()),
			Lane: d.sched[id].Lane, Count: 1})
	}
	for _, s := range d.g.Successors(id) {
		d.indeg[s]--
		if d.indeg[s] < 0 {
			panic(fmt.Sprintf("core: node %d dependence underflow", s))
		}
	}
	w := d.waveOf(id)
	d.waveRemaining[w]--
	if d.waveRemaining[w] < 0 {
		panic(fmt.Sprintf("core: wave %d completion underflow", w))
	}
}

func (d *Datapath) waveOf(id int32) int {
	it := d.g.Trace.Nodes[id].Iter
	if it < 0 {
		return 0
	}
	return int(it)/d.cfg.Lanes + 1
}

// asyncComplete handles a variable-latency memory completion.
func (d *Datapath) asyncComplete(lane int, id int32) {
	d.complete(id)
	d.lanes[lane].blocked = false
	d.advanceWaves()
	d.recordActive()
	if d.allDone() {
		d.finish()
		return
	}
	d.scheduleTick()
}

func (d *Datapath) advanceWaves() {
	for d.completeWave+1 < len(d.waveRemaining) && d.waveRemaining[d.completeWave+1] == 0 {
		d.completeWave++
	}
}

func (d *Datapath) allDone() bool {
	if d.inFlight > 0 {
		return false
	}
	for i := range d.lanes {
		if _, ok := d.nextNode(&d.lanes[i]); ok {
			return false
		}
	}
	return d.mem.Drained()
}

func (d *Datapath) recordActive() {
	c := d.cycleAt()
	if d.activeOpen && c == d.lastActive+1 || (d.activeOpen && c == d.lastActive) {
		d.lastActive = c
		d.intervals[len(d.intervals)-1].End = d.startTick + d.cfg.Clock.Cycles(c+1)
		return
	}
	start := d.startTick + d.cfg.Clock.Cycles(c)
	d.intervals = append(d.intervals, dma.Interval{Start: start, End: start + d.cfg.Clock.Cycles(1)})
	d.activeOpen = true
	d.lastActive = c
}

func (d *Datapath) finish() {
	if d.finished {
		return
	}
	d.finished = true
	end := d.eng.Now()
	d.stats.Cycles = d.cfg.Clock.CyclesCeil(end - d.startTick)
	res := &Result{
		Start:            d.startTick,
		End:              end,
		Stats:            d.stats,
		ComputeIntervals: dma.MergeIntervals(d.intervals),
	}
	if d.cfg.RecordSchedule {
		res.Schedule = d.sched
	}
	if d.done != nil {
		d.done(res)
	}
}
