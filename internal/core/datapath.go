// Package core is the heart of the gem5-Aladdin reproduction: the Aladdin
// accelerator datapath simulator, integrated with the SoC's memory systems
// so that dynamic accelerator-system interactions (DMA arrival, cache
// misses, TLB walks, bus contention) feed back into the schedule.
//
// The datapath model follows Sec II and IV-D of the paper:
//
//   - An accelerator is L parallel lanes; loop iteration i runs on lane
//     i mod L (how Aladdin realizes loop unrolling).
//   - Each lane is a chain of functional units driven by an FSM: it issues
//     its iteration's operations in order, one per cycle, with pipelined
//     functional units. An operation issues only when its DDDG dependences
//     have resolved.
//   - Memory behavior is pluggable: ideal single-cycle memory (isolated
//     Aladdin), partitioned scratchpads with optional full/empty-bit gating
//     (DMA designs), or a hardware-managed cache with MSHRs where a miss
//     stalls only the issuing lane (cache designs).
//   - When lanes finish an iteration they synchronize with all other lanes
//     before the next wave of iterations begins.
package core

import (
	"fmt"
	"math/bits"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/mem/dma"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

// OpLatencies maps operation kinds to functional-unit latency in cycles.
type OpLatencies [trace.NumKinds]uint8

// DefaultOpLatencies returns the 100 MHz functional-unit latencies used to
// match Vivado HLS default designs (integer ops single-cycle; FP adds 3,
// multiplies 4, divides/square roots long-latency).
func DefaultOpLatencies() OpLatencies {
	var l OpLatencies
	for k := range l {
		l[k] = 1
	}
	l[trace.OpIMul] = 3
	l[trace.OpIDiv] = 10
	l[trace.OpFAdd] = 3
	l[trace.OpFSub] = 3
	l[trace.OpFMul] = 4
	l[trace.OpFDiv] = 15
	l[trace.OpFSqrt] = 15
	l[trace.OpFExp] = 18
	return l
}

// IssueStatus is a memory model's answer to an issue attempt.
type IssueStatus uint8

// Issue outcomes.
const (
	// IssueRetry: resource or data unavailable; the lane stalls and
	// retries next cycle (or when Wake fires).
	IssueRetry IssueStatus = iota
	// IssueLocal: access accepted, completes with single-cycle latency.
	IssueLocal
	// IssueAsync: access accepted; the lane blocks until the model calls
	// the provided completion callback.
	IssueAsync
)

// MemModel abstracts the accelerator's local memory interface.
type MemModel interface {
	// Issue attempts the memory access of node id at the given
	// accelerator cycle. complete must be invoked iff the return is
	// IssueAsync.
	Issue(id int32, n *trace.Node, cycle uint64, complete func()) IssueStatus
	// Drained reports whether all outstanding accesses have finished
	// (mfence semantics before signaling completion to the CPU).
	Drained() bool
}

// Config parameterizes the datapath.
type Config struct {
	Lanes     int
	Clock     sim.Clock
	Latencies OpLatencies
	// NoBarrier lets lanes run ahead into later iterations without
	// synchronizing at wave boundaries (correctness is still enforced by
	// the DDDG). An ablation of the paper's lane-synchronization design
	// choice.
	NoBarrier bool
	// RecordSchedule captures per-node issue/complete times in the
	// Result for schedule-validity checking and visualization. Costs
	// memory proportional to the trace; off by default.
	RecordSchedule bool
}

// completionWindow bounds how far ahead (in cycles) a synchronous
// completion can land; it must exceed the largest functional-unit latency.
const completionWindow = 64

// ScheduleEntry records when one node issued and when its result became
// visible, in ticks.
type ScheduleEntry struct {
	Issue    sim.Tick
	Complete sim.Tick
	Lane     int32
}

// Stats aggregates datapath activity.
type Stats struct {
	Cycles        uint64 // cycles from start to completion signal
	ActiveCycles  uint64 // cycles with at least one op issued or in flight
	OpsIssued     [trace.NumKinds]uint64
	MemStalls     uint64 // lane-cycles stalled on memory (retry or async)
	DepStalls     uint64 // lane-cycles stalled on dependences
	BarrierStalls uint64 // lane-cycles stalled on the wave barrier
	// LaneOps counts operations issued per lane; with Cycles it yields
	// per-lane utilization (the paper's "wasted hardware" signal).
	LaneOps []uint64
}

// LaneUtilization returns each lane's issue-slot occupancy in [0,1].
func (s Stats) LaneUtilization() []float64 {
	if s.Cycles == 0 || len(s.LaneOps) == 0 {
		return nil
	}
	out := make([]float64, len(s.LaneOps))
	for i, n := range s.LaneOps {
		out[i] = float64(n) / float64(s.Cycles)
	}
	return out
}

// Result is the outcome of one datapath execution.
type Result struct {
	Start, End sim.Tick
	Stats      Stats
	// ComputeIntervals are the wall-clock windows in which the datapath
	// was active, for the flush/DMA/compute runtime breakdown.
	ComputeIntervals []dma.Interval
	// Schedule holds per-node issue/complete times when
	// Config.RecordSchedule was set; nil otherwise.
	Schedule []ScheduleEntry
}

// laneState tracks one lane's progress through its assigned iterations.
// iters and waves alias the Program's shared lane layout — read-only here —
// while cur/pc/pending/blocked are this run's private cursor.
type laneState struct {
	iters   []ddg.Range // iteration node ranges, in execution order (shared)
	waves   []int       // wave index of each entry in iters (shared)
	cur     int         // current index into iters
	pc      int32       // next node within the current range
	pending int32       // node awaiting an async memory completion
	blocked bool        // waiting on an async memory completion
}

// Datapath is one accelerator instance's scheduler.
type Datapath struct {
	cfg  Config
	eng  *sim.Engine
	prog *Program
	g    *ddg.Graph // prog.Graph(), kept unwrapped for the memory-op path
	mem  MemModel

	indeg []int32
	lanes []laneState
	// completeFns[i] is lane i's pre-bound async-completion callback: it
	// resolves the lane's pending node. One closure per lane for the
	// datapath's lifetime, instead of one per issue attempt — the single
	// largest allocation source in sweep profiles.
	completeFns []func()

	// wave barrier
	waveRemaining []int
	completeWave  int // highest wave index fully complete

	// completion ring: bucket c%completionWindow holds nodes whose
	// results become visible at cycle c. Functional-unit latencies are
	// far below the window, so collisions cannot occur. occupied is a
	// bitmask of non-empty buckets so the per-tick visibility scan walks
	// only armed buckets (in ascending bucket order, matching the full
	// scan exactly).
	completions  [completionWindow][]int32
	completionAt [completionWindow]uint64 // the cycle each bucket is armed for
	occupied     uint64
	pendingSync  int // nodes waiting in the ring
	inFlight     int // issued but not yet completed nodes

	cycle         uint64
	startTick     sim.Tick
	tickEv        *sim.Event // pre-bound tick callback, scheduled every cycle
	tickScheduled bool
	running       bool
	finished      bool
	done          func(*Result)

	stats      Stats
	laneOpsBuf []uint64 // backing for stats.LaneOps, reused across runs
	intervals  []dma.Interval
	lastActive uint64
	activeOpen bool
	sched      []ScheduleEntry
	probe      *obs.Probe
}

// Scratch recycles one Datapath's buffers across runs: Build hands back the
// same scheduler object with its slices resliced for the new program and
// config, so a sweep worker stops paying the per-design-point allocation of
// dependence counters, lane state, and the completion ring. The zero value
// is ready to use. A Scratch serves one run at a time: the previously built
// Datapath must be finished (or abandoned with its engine) before Build is
// called again.
type Scratch struct {
	dp *Datapath
}

// Build returns a Datapath over compiled program p, reusing the scratch's
// buffers.
func (sc *Scratch) Build(eng *sim.Engine, p *Program, cfg Config, mem MemModel) *Datapath {
	if sc.dp == nil {
		sc.dp = &Datapath{}
	}
	sc.dp.reinit(eng, p, cfg, mem)
	return sc.dp
}

// NewDatapath builds a scheduler over graph g with the given memory model,
// compiling a private Program first. Callers evaluating many design points
// over one kernel should CompileProgram once and use NewDatapathOver or
// Scratch.Build.
func NewDatapath(eng *sim.Engine, g *ddg.Graph, cfg Config, mem MemModel) *Datapath {
	return NewDatapathOver(eng, CompileProgram(g), cfg, mem)
}

// NewDatapathOver builds a scheduler over a compiled program, sharing its
// flat node arrays and lane layouts instead of re-deriving them.
func NewDatapathOver(eng *sim.Engine, p *Program, cfg Config, mem MemModel) *Datapath {
	d := &Datapath{}
	d.reinit(eng, p, cfg, mem)
	return d
}

// Reset rewinds the datapath to its pre-Start state over the same engine,
// graph, config, and memory model, reusing every buffer. The SoC layer uses
// it between invocations of one accelerator (RunRepeated rounds) in place of
// building a fresh scheduler. The caller must ensure the previous run has
// drained (no datapath event still queued on the engine).
func (d *Datapath) Reset() { d.reinit(d.eng, d.prog, d.cfg, d.mem) }

// grow returns s resliced to n elements, reallocating only when capacity is
// insufficient. Contents are unspecified; callers overwrite or zero.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// reinit (re)initializes the datapath in place; see NewDatapath, Reset, and
// Scratch.Build for the three entry points.
func (d *Datapath) reinit(eng *sim.Engine, p *Program, cfg Config, mem MemModel) {
	if cfg.Lanes <= 0 {
		panic("core: non-positive lane count")
	}
	if cfg.Clock.Period == 0 {
		panic("core: zero clock period")
	}
	g := p.Graph()
	n := g.NumNodes()
	for _, lat := range cfg.Latencies {
		if uint64(lat) >= completionWindow {
			panic("core: functional-unit latency exceeds the completion window")
		}
	}
	d.cfg, d.eng, d.prog, d.g, d.mem = cfg, eng, p, g, mem
	d.indeg = grow(d.indeg, n)
	copy(d.indeg, g.InDeg)
	if d.tickEv == nil {
		d.tickEv = sim.NewEvent(d.tick)
	}
	// Iteration-to-lane assignment comes precomputed from the program:
	// prelude nodes run on lane 0 as wave 0, iteration k of the kernel loop
	// is wave k/L + 1. The per-run state is just the cursors and a copy of
	// the wave-counter template.
	lay := p.layout(cfg.Lanes)
	d.lanes = grow(d.lanes, cfg.Lanes)
	for i := range d.lanes {
		ln := &d.lanes[i]
		ln.iters = lay.lanes[i].iters
		ln.waves = lay.lanes[i].waves
		ln.cur, ln.pc, ln.pending, ln.blocked = 0, -1, 0, false
	}
	d.waveRemaining = grow(d.waveRemaining, len(lay.waveRemaining))
	copy(d.waveRemaining, lay.waveRemaining)
	d.completeWave = -1
	for len(d.completeFns) < cfg.Lanes {
		lane := len(d.completeFns)
		d.completeFns = append(d.completeFns, func() { d.asyncComplete(lane) })
	}
	d.laneOpsBuf = grow(d.laneOpsBuf, cfg.Lanes)
	clear(d.laneOpsBuf)
	d.stats = Stats{LaneOps: d.laneOpsBuf}
	d.sched = nil
	if cfg.RecordSchedule {
		// Escapes into the Result, so never reused.
		d.sched = make([]ScheduleEntry, n)
	}
	for b := range d.completions {
		d.completions[b] = d.completions[b][:0]
	}
	d.occupied, d.pendingSync, d.inFlight = 0, 0, 0
	d.cycle, d.startTick = 0, 0
	d.tickScheduled, d.running, d.finished = false, false, false
	d.done = nil
	d.intervals = d.intervals[:0]
	d.lastActive, d.activeOpen = 0, false
	d.probe = nil
}

// AttachProbe wires an observability probe; the datapath fires one span per
// retired node (issue tick to completion tick, named by op kind, with the
// lane attached). Firing needs per-node issue times, so the schedule buffer
// is allocated even when Config.RecordSchedule is off — Result.Schedule
// still honors the config flag.
func (d *Datapath) AttachProbe(p *obs.Probe) {
	d.probe = p
	if d.sched == nil && p.Enabled() {
		d.sched = make([]ScheduleEntry, d.g.NumNodes())
	}
}

// Snapshot returns a copy of the datapath counters accumulated so far.
func (d *Datapath) Snapshot() Stats { return d.stats }

// RegisterStats registers datapath counters under prefix, reading through
// snap at dump time. The indirection matters because the SoC rebuilds the
// datapath for every accelerator invocation: snap reads whichever instance
// is current.
func RegisterStats(reg *obs.Registry, prefix string, snap func() Stats) {
	reg.CounterFunc(prefix+".cycles", "accelerator cycles start to completion",
		func() uint64 { return snap().Cycles })
	reg.CounterFunc(prefix+".active_cycles", "cycles with an op issued or in flight",
		func() uint64 { return snap().ActiveCycles })
	reg.CounterFunc(prefix+".ops_issued", "operations issued across all lanes",
		func() uint64 {
			var total uint64
			for _, n := range snap().OpsIssued {
				total += n
			}
			return total
		})
	reg.CounterFunc(prefix+".mem_stalls", "lane-cycles stalled on memory",
		func() uint64 { return snap().MemStalls })
	reg.CounterFunc(prefix+".dep_stalls", "lane-cycles stalled on dependences",
		func() uint64 { return snap().DepStalls })
	reg.CounterFunc(prefix+".barrier_stalls", "lane-cycles stalled on the wave barrier",
		func() uint64 { return snap().BarrierStalls })
	reg.Formula(prefix+".utilization", "mean per-lane issue-slot occupancy",
		func() float64 {
			util := snap().LaneUtilization()
			if len(util) == 0 {
				return 0
			}
			var sum float64
			for _, u := range util {
				sum += u
			}
			return sum / float64(len(util))
		})
}

// Start begins execution at the current simulation time; done fires once
// every node has completed and the memory model drained.
func (d *Datapath) Start(done func(*Result)) {
	if d.running {
		panic("core: datapath already started")
	}
	d.running = true
	d.done = done
	d.startTick = d.eng.Now()
	d.advanceWaves()
	d.scheduleTick()
}

// Wake nudges the scheduler after an external event (DMA arrival setting a
// full/empty bit) that may unblock stalled lanes.
func (d *Datapath) Wake() {
	if d.running && !d.finished {
		d.scheduleTick()
	}
}

func (d *Datapath) scheduleTick() {
	if d.tickScheduled || d.finished {
		return
	}
	d.tickScheduled = true
	// Clock edges are relative to the datapath's start tick (the FSM
	// starts when the accelerator is kicked, not on a global grid).
	now := d.eng.Now()
	c := d.cfg.Clock.CyclesAt(now - d.startTick)
	next := d.startTick + d.cfg.Clock.Cycles(c)
	if next < now {
		next = d.startTick + d.cfg.Clock.Cycles(c+1)
	}
	d.eng.ScheduleEvent(next, d.tickEv)
}

// nextCompletionCycle returns the earliest cycle at which a pending result
// becomes visible.
func (d *Datapath) nextCompletionCycle() (uint64, bool) {
	if d.pendingSync == 0 {
		return 0, false
	}
	var best uint64
	found := false
	for m := d.occupied; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		if !found || d.completionAt[b] < best {
			best = d.completionAt[b]
			found = true
		}
	}
	return best, found
}

// cycleAt converts the current tick into an accelerator cycle index.
func (d *Datapath) cycleAt() uint64 {
	return d.cfg.Clock.CyclesAt(d.eng.Now() - d.startTick)
}

func (d *Datapath) tick() {
	d.tickScheduled = false
	if d.finished {
		return
	}
	d.cycle = d.cycleAt()

	// Make results visible for completions scheduled at or before now.
	// Walking set bits low-to-high visits the same buckets in the same
	// order as a full 0..63 scan, skipping empty ones.
	if d.pendingSync > 0 {
		for m := d.occupied; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			if d.completionAt[b] > d.cycle {
				continue
			}
			for _, id := range d.completions[b] {
				d.complete(id)
			}
			d.pendingSync -= len(d.completions[b])
			d.completions[b] = d.completions[b][:0]
			d.occupied &^= 1 << b
		}
	}
	d.advanceWaves()

	anyIssued := false
	anyStalledRetry := false
	for li := range d.lanes {
		ln := &d.lanes[li]
		if ln.blocked {
			d.stats.MemStalls++
			continue
		}
		id, ok := d.nextNode(ln)
		if !ok {
			continue
		}
		kind := d.prog.kinds[id]
		// Wave barrier: a node may issue only when every prior wave is
		// fully complete.
		if !d.cfg.NoBarrier && ln.waves[ln.cur] > d.completeWave+1 {
			d.stats.BarrierStalls++
			anyStalledRetry = true
			continue
		}
		if d.indeg[id] != 0 {
			d.stats.DepStalls++
			anyStalledRetry = true
			continue
		}
		if kind.IsMem() {
			// pending is set before the attempt so the lane's pre-bound
			// callback resolves the right node; it is only consulted when
			// the model answers IssueAsync (completion callbacks never
			// fire synchronously inside Issue).
			ln.pending = id
			switch d.mem.Issue(id, &d.g.Trace.Nodes[id], d.cycle, d.completeFns[li]) {
			case IssueRetry:
				d.stats.MemStalls++
				anyStalledRetry = true
				continue
			case IssueLocal:
				d.issue(ln, li, id, kind, 1)
			case IssueAsync:
				d.issue(ln, li, id, kind, 0)
				ln.blocked = true
			}
		} else {
			lat := uint64(d.cfg.Latencies[kind])
			if lat == 0 {
				lat = 1
			}
			d.issue(ln, li, id, kind, lat)
		}
		anyIssued = true
	}

	active := anyIssued || d.inFlight > 0
	if active {
		d.stats.ActiveCycles++
		d.recordActive()
	}

	if d.allDone() {
		d.finish()
		return
	}

	// Decide when to tick next: next cycle if anything can progress, else
	// at the earliest pending completion, else wait for async wakeups.
	if anyIssued || anyStalledRetry {
		d.eng.ScheduleEvent(d.startTick+d.cfg.Clock.Cycles(d.cycle+1), d.tickEv)
		d.tickScheduled = true
		return
	}
	if next, ok := d.nextCompletionCycle(); ok {
		d.eng.ScheduleEvent(d.startTick+d.cfg.Clock.Cycles(next), d.tickEv)
		d.tickScheduled = true
	}
	// Otherwise: every runnable lane is blocked on async memory or ready
	// bits; asyncComplete/Wake will reschedule.
}

// nextNode returns the lane's next unissued node, advancing across its
// iterations. ok=false when the lane has exhausted its work.
func (d *Datapath) nextNode(ln *laneState) (int32, bool) {
	for ln.cur < len(ln.iters) {
		r := ln.iters[ln.cur]
		if ln.pc < r.Start {
			ln.pc = r.Start
		}
		if ln.pc < r.End {
			return ln.pc, true
		}
		ln.cur++
		ln.pc = -1
	}
	return 0, false
}

func (d *Datapath) issue(ln *laneState, lane int, id int32, kind trace.OpKind, lat uint64) {
	d.stats.OpsIssued[kind]++
	d.stats.LaneOps[lane]++
	ln.pc = id + 1
	d.inFlight++
	if d.sched != nil {
		d.sched[id].Issue = d.eng.Now()
		d.sched[id].Lane = int32(lane)
	}
	if lat > 0 {
		vis := d.cycle + lat
		b := vis % completionWindow
		d.completions[b] = append(d.completions[b], id)
		d.completionAt[b] = vis
		d.occupied |= 1 << b
		d.pendingSync++
	}
}

// complete makes node id's result visible: successors' dependences resolve
// and the wave accounting advances.
func (d *Datapath) complete(id int32) {
	d.inFlight--
	if d.sched != nil {
		d.sched[id].Complete = d.eng.Now()
	}
	if d.probe.Enabled() {
		d.probe.Fire(obs.Event{Name: d.prog.kinds[id].String(),
			Start: uint64(d.sched[id].Issue), End: uint64(d.eng.Now()),
			Lane: d.sched[id].Lane, Count: 1})
	}
	for _, s := range d.g.Successors(id) {
		d.indeg[s]--
		if d.indeg[s] < 0 {
			panic(fmt.Sprintf("core: node %d dependence underflow", s))
		}
	}
	w := d.waveOf(id)
	d.waveRemaining[w]--
	if d.waveRemaining[w] < 0 {
		panic(fmt.Sprintf("core: wave %d completion underflow", w))
	}
}

func (d *Datapath) waveOf(id int32) int {
	it := d.prog.iter[id]
	if it < 0 {
		return 0
	}
	return int(it)/d.cfg.Lanes + 1
}

// asyncComplete handles a variable-latency memory completion for the
// lane's pending node.
func (d *Datapath) asyncComplete(lane int) {
	d.complete(d.lanes[lane].pending)
	d.lanes[lane].blocked = false
	d.advanceWaves()
	d.recordActive()
	if d.allDone() {
		d.finish()
		return
	}
	d.scheduleTick()
}

func (d *Datapath) advanceWaves() {
	for d.completeWave+1 < len(d.waveRemaining) && d.waveRemaining[d.completeWave+1] == 0 {
		d.completeWave++
	}
}

func (d *Datapath) allDone() bool {
	if d.inFlight > 0 {
		return false
	}
	for i := range d.lanes {
		if _, ok := d.nextNode(&d.lanes[i]); ok {
			return false
		}
	}
	return d.mem.Drained()
}

func (d *Datapath) recordActive() {
	c := d.cycleAt()
	if d.activeOpen && c == d.lastActive+1 || (d.activeOpen && c == d.lastActive) {
		d.lastActive = c
		d.intervals[len(d.intervals)-1].End = d.startTick + d.cfg.Clock.Cycles(c+1)
		return
	}
	start := d.startTick + d.cfg.Clock.Cycles(c)
	d.intervals = append(d.intervals, dma.Interval{Start: start, End: start + d.cfg.Clock.Cycles(1)})
	d.activeOpen = true
	d.lastActive = c
}

func (d *Datapath) finish() {
	if d.finished {
		return
	}
	d.finished = true
	end := d.eng.Now()
	d.stats.Cycles = d.cfg.Clock.CyclesCeil(end - d.startTick)
	st := d.stats
	// The Result escapes while laneOpsBuf is recycled on the next run, so
	// the per-lane counters must be cloned out of the shared backing.
	st.LaneOps = append([]uint64(nil), d.stats.LaneOps...)
	res := &Result{
		Start:            d.startTick,
		End:              end,
		Stats:            st,
		ComputeIntervals: dma.MergeIntervals(d.intervals),
	}
	if d.cfg.RecordSchedule {
		res.Schedule = d.sched
	}
	if d.done != nil {
		d.done(res)
	}
}
