package core

import (
	"sync"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/trace"
)

// Program is the compiled, config-independent scheduling form of one
// kernel's DDDG: everything the datapath scheduler needs per node, hoisted
// out of the trace's Node structs into flat arrays (one byte per op kind,
// four bytes per iteration label) so the per-cycle hot loop touches dense
// memory instead of 24-byte Node records, plus the per-lane-count iteration
// layouts that Scratch.Build used to rebuild on every design point.
//
// A Program is immutable after Compile and safe to share read-only across
// concurrent schedulers; the lazily-built lane layouts are the only interior
// mutation and are guarded by a lock. One Program serves every design point
// of a sweep — the scheduler's per-point setup reduces to copying dependence
// counters and a wave-counter template.
type Program struct {
	g *ddg.Graph

	// kinds[i] and iter[i] mirror g.Trace.Nodes[i].Kind / .Iter.
	kinds []trace.OpKind
	iter  []int32

	// layouts caches the iteration-to-lane assignment per lane count. A
	// sweep revisits the same handful of lane counts across hundreds of
	// points, so each layout is computed once and then shared read-only.
	mu      sync.RWMutex
	layouts map[int]*laneLayout
}

// laneAssign is one lane's share of the kernel: its iteration node ranges in
// execution order and the wave index of each. Shared read-only between every
// scheduler run at the same lane count.
type laneAssign struct {
	iters []ddg.Range
	waves []int
}

// laneLayout is the full iteration-to-lane assignment for one lane count:
// the prelude on lane 0 as wave 0, iteration k on lane k%L as wave k/L+1,
// plus the per-wave node-count template the barrier accounting starts from.
type laneLayout struct {
	lanes         []laneAssign
	waveRemaining []int
}

// CompileProgram flattens g into its scheduling form. The result shares g
// (read-only) and owns its flat arrays.
func CompileProgram(g *ddg.Graph) *Program {
	n := g.NumNodes()
	p := &Program{
		g:       g,
		kinds:   make([]trace.OpKind, n),
		iter:    make([]int32, n),
		layouts: make(map[int]*laneLayout),
	}
	for i := range g.Trace.Nodes {
		nd := &g.Trace.Nodes[i]
		p.kinds[i] = nd.Kind
		p.iter[i] = nd.Iter
	}
	return p
}

// Graph returns the dependence graph the program was compiled from.
func (p *Program) Graph() *ddg.Graph { return p.g }

// layout returns the iteration-to-lane assignment for the given lane count,
// building and caching it on first use.
func (p *Program) layout(lanes int) *laneLayout {
	p.mu.RLock()
	lay, ok := p.layouts[lanes]
	p.mu.RUnlock()
	if ok {
		return lay
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if lay, ok := p.layouts[lanes]; ok {
		return lay
	}
	g := p.g
	lay = &laneLayout{lanes: make([]laneAssign, lanes)}
	nWaves := 1 + (len(g.IterRange)+lanes-1)/lanes
	lay.waveRemaining = make([]int, nWaves+1)
	if g.Prelude.Len() > 0 {
		lay.lanes[0].iters = append(lay.lanes[0].iters, g.Prelude)
		lay.lanes[0].waves = append(lay.lanes[0].waves, 0)
		lay.waveRemaining[0] += g.Prelude.Len()
	}
	for k, r := range g.IterRange {
		lane := k % lanes
		wave := k/lanes + 1
		lay.lanes[lane].iters = append(lay.lanes[lane].iters, r)
		lay.lanes[lane].waves = append(lay.lanes[lane].waves, wave)
		lay.waveRemaining[wave] += r.Len()
	}
	p.layouts[lanes] = lay
	return lay
}
