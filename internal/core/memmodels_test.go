package core

import (
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/cache"
	"gem5aladdin/internal/mem/coherence"
	"gem5aladdin/internal/mem/dram"
	"gem5aladdin/internal/mem/spad"
	"gem5aladdin/internal/mem/tlb"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

func TestIdealMem(t *testing.T) {
	m := IdealMem{}
	n := &trace.Node{Kind: trace.OpLoad, Arr: 0, Size: 8}
	if got := m.Issue(0, n, 0, nil); got != IssueLocal {
		t.Fatalf("ideal issue = %v", got)
	}
	if !m.Drained() {
		t.Fatal("ideal mem never drains?")
	}
}

// cacheRig wires a CacheMem against a real bus/DRAM/coherence stack.
func cacheRig(t *testing.T, g *ddg.Graph) (*sim.Engine, *CacheMem, *coherence.Controller, int) {
	t.Helper()
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	b := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
	coh := coherence.NewController()
	cpuPeer := coh.AddPeer()
	accelPeer := coh.AddPeer()
	cfg := cache.DefaultConfig(sim.NewClockHz(100e6))
	cfg.Prefetch = false
	cch := cache.New(eng, cfg, b, coh, accelPeer)
	tb := tlb.New(tlb.DefaultConfig())
	sp := spad.New(spad.DefaultConfig(), g.Trace.Arrays)
	return eng, NewCacheMem(eng, cch, tb, sp, g), coh, cpuPeer
}

// mixedKernel touches a shared In array and a Local scratchpad array.
func mixedKernel() *ddg.Graph {
	b := trace.NewBuilder("mixed")
	in := b.Alloc("in", trace.F64, 16, trace.In)
	local := b.Alloc("tmp", trace.F64, 16, trace.Local)
	for i := 0; i < 16; i++ {
		b.SetF64(in, i, float64(i))
	}
	for i := 0; i < 16; i++ {
		b.BeginIter()
		v := b.Load(in, i)
		b.Store(local, i, v)
	}
	return ddg.Build(b.Finish())
}

func TestCacheMemRoutesLocalArraysToSpad(t *testing.T) {
	g := mixedKernel()
	eng, mem, _, _ := cacheRig(t, g)

	// Find one load (shared, via cache) and one store (local, via spad).
	var loadID, storeID int32 = -1, -1
	for i := range g.Trace.Nodes {
		switch g.Trace.Nodes[i].Kind {
		case trace.OpLoad:
			if loadID < 0 {
				loadID = int32(i)
			}
		case trace.OpStore:
			if storeID < 0 {
				storeID = int32(i)
			}
		}
	}
	stN := &g.Trace.Nodes[storeID]
	if got := mem.Issue(storeID, stN, 0, nil); got != IssueLocal {
		t.Fatalf("local-array store = %v, want IssueLocal", got)
	}
	if mem.Spad.Stats().Writes != 1 {
		t.Fatal("store did not reach the scratchpad")
	}

	done := false
	ldN := &g.Trace.Nodes[loadID]
	if got := mem.Issue(loadID, ldN, 0, func() { done = true }); got != IssueAsync {
		t.Fatalf("cold shared load = %v, want IssueAsync (TLB+cache miss)", got)
	}
	eng.Run()
	if !done {
		t.Fatal("async load never completed")
	}
	if mem.Cache.Stats().Misses != 1 {
		t.Fatalf("cache misses = %d", mem.Cache.Stats().Misses)
	}
	if !mem.Drained() {
		t.Fatal("cache mem not drained after completion")
	}
}

func TestCacheMemFastHitAfterWarmup(t *testing.T) {
	g := mixedKernel()
	eng, mem, _, _ := cacheRig(t, g)
	var first int32
	for i := range g.Trace.Nodes {
		if g.Trace.Nodes[i].Kind == trace.OpLoad {
			first = int32(i)
			break
		}
	}
	n := &g.Trace.Nodes[first]
	mem.Issue(first, n, 0, func() {})
	eng.Run()
	// Same line again: the TLB entry and the cache line are warm, so the
	// access must complete as a pipelined single-cycle hit.
	if got := mem.Issue(first, n, 1, nil); got != IssueLocal {
		t.Fatalf("warm access = %v, want IssueLocal fast hit", got)
	}
}

func TestCacheMemPullsDirtyCPUData(t *testing.T) {
	g := mixedKernel()
	eng, mem, coh, cpuPeer := cacheRig(t, g)
	var first int32
	for i := range g.Trace.Nodes {
		if g.Trace.Nodes[i].Kind == trace.OpLoad {
			first = int32(i)
			break
		}
	}
	n := &g.Trace.Nodes[first]
	paddr := mem.Translate(g.NodeAddr(first))
	coh.Write(cpuPeer, paddr&^31)
	mem.Issue(first, n, 0, func() {})
	eng.Run()
	if mem.Cache.Stats().C2CFills != 1 {
		t.Fatalf("c2c fills = %d, want 1", mem.Cache.Stats().C2CFills)
	}
}

func TestNoBarrierExecutesSameOps(t *testing.T) {
	b := trace.NewBuilder("imbalanced")
	x := b.ConstI(0)
	for i := 0; i < 32; i++ {
		b.BeginIter()
		n := 1 + (i%4)*4
		for j := 0; j < n; j++ {
			x = b.IAdd(x, b.ConstI(1))
		}
	}
	g := ddg.Build(b.Finish())
	run := func(noBarrier bool) *Result {
		eng := sim.NewEngine()
		cfg := cfgLanes(4)
		cfg.NoBarrier = noBarrier
		d := NewDatapath(eng, g, cfg, IdealMem{})
		var res *Result
		d.Start(func(r *Result) { res = r })
		eng.Run()
		return res
	}
	with := run(false)
	without := run(true)
	if with.Stats.OpsIssued != without.Stats.OpsIssued {
		t.Fatal("barrier setting changed the executed ops")
	}
	// The serial accumulator chain dominates here; free-running must not
	// be slower.
	if without.Stats.Cycles > with.Stats.Cycles {
		t.Fatalf("free-running (%d) slower than barriered (%d)",
			without.Stats.Cycles, with.Stats.Cycles)
	}
	if without.Stats.BarrierStalls != 0 {
		t.Fatal("free-running run reported barrier stalls")
	}
}

func TestSpadMemDrained(t *testing.T) {
	g := mixedKernel()
	sp := spad.New(spad.DefaultConfig(), g.Trace.Arrays)
	m := NewSpadMem(sp)
	if !m.Drained() {
		t.Fatal("spad mem should always be drained")
	}
}
