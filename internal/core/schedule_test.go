package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/mem/spad"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

// checkScheduleValid verifies the fundamental scheduling contract over a
// recorded schedule: every node issued exactly once, no node issued before
// all of its DDDG dependences completed, and per-lane in-order issue.
func checkScheduleValid(t *testing.T, g *ddg.Graph, sched []ScheduleEntry) {
	t.Helper()
	n := g.NumNodes()
	if len(sched) != n {
		t.Fatalf("schedule has %d entries for %d nodes", len(sched), n)
	}
	for to := int32(0); to < int32(n); to++ {
		if sched[to].Complete < sched[to].Issue {
			t.Fatalf("node %d completed at %v before issuing at %v",
				to, sched[to].Complete, sched[to].Issue)
		}
	}
	for from := int32(0); from < int32(n); from++ {
		for _, to := range g.Successors(from) {
			if sched[to].Issue < sched[from].Complete {
				t.Fatalf("node %d issued at %v before dependence %d completed at %v",
					to, sched[to].Issue, from, sched[from].Complete)
			}
		}
	}
	// Per-lane in-order issue: nodes on the same lane issue in trace
	// order (equal ticks cannot happen: one issue per lane per cycle).
	lastIssue := map[int32]sim.Tick{}
	for id := int32(0); id < int32(n); id++ {
		lane := sched[id].Lane
		if prev, ok := lastIssue[lane]; ok && sched[id].Issue <= prev {
			t.Fatalf("lane %d issued node %d at %v, not after previous issue %v",
				lane, id, sched[id].Issue, prev)
		}
		lastIssue[lane] = sched[id].Issue
	}
}

// randomKernel generates a random but legal kernel mixing arithmetic,
// loads, stores, and cross-iteration memory traffic.
func randomKernel(seed int64) *ddg.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder("random")
	a := b.Alloc("a", trace.F64, 32, trace.InOut)
	for i := 0; i < 32; i++ {
		b.SetF64(a, i, rng.Float64())
	}
	iters := 4 + rng.Intn(20)
	var last trace.Value
	hasLast := false
	for it := 0; it < iters; it++ {
		b.BeginIter()
		ops := 1 + rng.Intn(8)
		for o := 0; o < ops; o++ {
			switch rng.Intn(5) {
			case 0:
				v := b.Load(a, rng.Intn(32))
				last, hasLast = v, true
			case 1:
				if hasLast {
					b.Store(a, rng.Intn(32), last)
				}
			case 2:
				v := b.FMul(b.ConstF(rng.Float64()), b.ConstF(rng.Float64()))
				last, hasLast = v, true
			case 3:
				if hasLast {
					last = b.FAdd(last, b.ConstF(1))
				}
			case 4:
				if hasLast {
					last = b.FSqrt(last)
				}
			}
		}
	}
	return ddg.Build(b.Finish())
}

// TestScheduleValidityProperty runs random kernels through random lane and
// scratchpad configurations and checks the recorded schedule against the
// dependence graph.
func TestScheduleValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomKernel(seed)
		eng := sim.NewEngine()
		cfg := cfgLanes(1 + rng.Intn(16))
		cfg.RecordSchedule = true
		cfg.NoBarrier = rng.Intn(2) == 0
		sp := spad.New(spad.Config{Partitions: 1 + rng.Intn(4), Ports: 1 + rng.Intn(2)}, g.Trace.Arrays)
		d := NewDatapath(eng, g, cfg, NewSpadMem(sp))
		var res *Result
		d.Start(func(r *Result) { res = r })
		eng.Run()
		if res == nil {
			t.Logf("seed %d: never finished", seed)
			return false
		}
		checkScheduleValid(t, g, res.Schedule)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleValidityRealKernel checks the contract on a real benchmark
// with the cache memory system (variable-latency completions).
func TestScheduleValidityRealKernel(t *testing.T) {
	b := trace.NewBuilder("mini-spmv")
	idx := b.Alloc("idx", trace.I32, 32, trace.In)
	vec := b.Alloc("vec", trace.F64, 32, trace.In)
	out := b.Alloc("out", trace.F64, 32, trace.Out)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 32; i++ {
		b.SetInt(idx, i, int64(rng.Intn(32)))
		b.SetF64(vec, i, rng.Float64())
	}
	for i := 0; i < 32; i++ {
		b.BeginIter()
		iv := b.Load(idx, i)
		x := b.Load(vec, int(iv.Int()), iv)
		b.Store(out, i, b.FMul(x, b.ConstF(2)))
	}
	g := ddg.Build(b.Finish())

	eng, mem, _, _ := cacheRig(t, g)
	cfg := cfgLanes(4)
	cfg.RecordSchedule = true
	d := NewDatapath(eng, g, cfg, mem)
	var res *Result
	d.Start(func(r *Result) { res = r })
	eng.Run()
	if res == nil {
		t.Fatal("never finished")
	}
	checkScheduleValid(t, g, res.Schedule)
}

func TestScheduleNilWhenNotRecording(t *testing.T) {
	g := parallelTrace(4, 2)
	res := runIdeal(t, g, 2)
	if res.Schedule != nil {
		t.Fatal("schedule recorded without RecordSchedule")
	}
}
