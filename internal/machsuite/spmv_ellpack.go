package machsuite

import "gem5aladdin/internal/trace"

// spmv-ellpack: sparse matrix-vector multiply in ELLPACK format (MachSuite
// spmv-ellpack): every row padded to a fixed nonzero count, giving regular
// loop bounds but the same indirect vector gathers as CRS.
const (
	ellRows = 256
	ellL    = 8 // nonzeros per row (padded)
)

func init() {
	register(Kernel{
		Name: "spmv-ellpack",
		Description: "ELLPACK sparse matrix-vector multiply: regular row " +
			"structure (fixed nonzeros per row) but indirect vec[cols] " +
			"gathers like CRS.",
		Build: buildSpMVEllpack,
	})
}

func buildSpMVEllpack() (*trace.Trace, error) {
	n, L := ellRows, ellL
	r := newRNG(151)

	colsV := make([]int, n*L)
	valsV := make([]float64, n*L)
	vecV := make([]float64, n)
	for i := 0; i < n; i++ {
		vecV[i] = r.float()
		seen := map[int]bool{}
		for j := 0; j < L; j++ {
			c := r.intn(n)
			for seen[c] {
				c = r.intn(n)
			}
			seen[c] = true
			colsV[i*L+j] = c
			valsV[i*L+j] = r.float()
		}
	}

	b := trace.NewBuilder("spmv-ellpack")
	nzval := b.Alloc("nzval", trace.F64, n*L, trace.In)
	cols := b.Alloc("cols", trace.I32, n*L, trace.In)
	vec := b.Alloc("vec", trace.F64, n, trace.In)
	out := b.Alloc("out", trace.F64, n, trace.Out)
	for i, v := range valsV {
		b.SetF64(nzval, i, v)
	}
	for i, c := range colsV {
		b.SetInt(cols, i, int64(c))
	}
	for i, v := range vecV {
		b.SetF64(vec, i, v)
	}

	for i := 0; i < n; i++ {
		b.BeginIter()
		sum := b.ConstF(0)
		for j := 0; j < L; j++ {
			col := b.Load(cols, i*L+j)
			v := b.Load(nzval, i*L+j)
			x := b.Load(vec, int(col.Int()), col)
			sum = b.FAdd(sum, b.FMul(v, x))
		}
		b.Store(out, i, sum)
	}

	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < L; j++ {
			want += valsV[i*L+j] * vecV[colsV[i*L+j]]
		}
		if got := b.GetF64(out, i); got != want {
			return nil, mismatch("spmv-ellpack", "out", i, got, want)
		}
	}
	return b.Finish(), nil
}
