package machsuite

import (
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"aes-aes", "backprop-backprop", "bfs-bulk", "bfs-queue",
		"fft-strided", "fft-transpose", "gemm-blocked", "gemm-ncubed",
		"kmp-kmp", "md-grid", "md-knn", "nw-nw", "sort-merge", "sort-radix",
		"spmv-crs", "spmv-ellpack", "stencil-stencil2d", "stencil-stencil3d",
		"viterbi-viterbi",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d kernels: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("md-knn")
	if err != nil || k.Name != "md-knn" {
		t.Fatalf("ByName md-knn: %v %v", k, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestAllKernelsFunctionallyCorrect builds every kernel; Build verifies
// results against the pure-Go references internally and reports mismatches.
func TestAllKernelsFunctionallyCorrect(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			tr, err := k.Build()
			if err != nil {
				t.Fatal(err)
			}
			if tr.NumNodes() == 0 {
				t.Fatal("empty trace")
			}
			if tr.Iters == 0 {
				t.Fatal("no iteration labels")
			}
		})
	}
}

// TestAllKernelsBuildValidGraphs checks DDDG invariants for every kernel.
func TestAllKernelsBuildValidGraphs(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			tr, err := k.Build()
			if err != nil {
				t.Fatal(err)
			}
			g := ddg.Build(tr)
			if err := g.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if g.CritPath <= 0 || g.CritPath > tr.NumNodes() {
				t.Fatalf("critical path %d of %d nodes", g.CritPath, tr.NumNodes())
			}
		})
	}
}

// TestTraceSizesTractable keeps kernels inside the node budget the sweeps
// were sized for.
func TestTraceSizesTractable(t *testing.T) {
	for _, k := range All() {
		tr, err := k.Build()
		if err != nil {
			t.Fatal(err)
		}
		n := tr.NumNodes()
		if n < 1000 {
			t.Errorf("%s: only %d nodes — too small to exercise the system", k.Name, n)
		}
		if n > 400000 {
			t.Errorf("%s: %d nodes — will make sweeps too slow", k.Name, n)
		}
		t.Logf("%-20s %8d nodes, %6d iterations", k.Name, n, tr.Iters)
	}
}

// TestTransferDirections checks each kernel moves data both directions
// (every accelerator produces output the host reads).
func TestTransferDirections(t *testing.T) {
	for _, k := range All() {
		tr, err := k.Build()
		if err != nil {
			t.Fatal(err)
		}
		in, out := tr.FootprintBytes()
		if in == 0 {
			t.Errorf("%s: no input transfer", k.Name)
		}
		if out == 0 {
			t.Errorf("%s: no output transfer", k.Name)
		}
	}
}

// TestNWKeepsMatrixLocal pins the paper's Sec IV-D example: nw's score
// matrix must be a private scratchpad array.
func TestNWKeepsMatrixLocal(t *testing.T) {
	tr := MustBuild("nw-nw")
	foundLocal := false
	for _, a := range tr.Arrays {
		if a.Name == "M" {
			foundLocal = true
			if a.Dir != trace.Local {
				t.Fatal("nw score matrix is not Local")
			}
		}
	}
	if !foundLocal {
		t.Fatal("nw has no M matrix")
	}
}

// TestMDKnnOpMix pins the paper's observation that md-knn has 12 FP
// multiplies per atom-to-atom interaction.
func TestMDKnnOpMix(t *testing.T) {
	tr := MustBuild("md-knn")
	counts := tr.OpCounts()
	interactions := mdAtoms * mdNeighbors
	perPair := float64(counts[trace.OpFMul]) / float64(interactions)
	if perPair < 11 || perPair > 13 {
		t.Fatalf("md-knn has %.1f FP multiplies per interaction, want ~12", perPair)
	}
}

// TestFFTStride pins the 512-byte stride the paper calls out.
func TestFFTStride(t *testing.T) {
	tr := MustBuild("fft-transpose")
	g := ddg.Build(tr)
	// Find the loads of iteration 0 on work_x and check consecutive
	// strides of 512 bytes.
	r := g.IterRange[0]
	var addrs []uint32
	for i := r.Start; i < r.End; i++ {
		nd := tr.Nodes[i]
		if nd.Kind == trace.OpLoad && tr.Arrays[nd.Arr].Name == "work_x" {
			addrs = append(addrs, nd.Addr)
		}
	}
	if len(addrs) != fftRadix {
		t.Fatalf("iteration 0 has %d work_x loads", len(addrs))
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i]-addrs[i-1] != 512 {
			t.Fatalf("stride %d bytes, want 512", addrs[i]-addrs[i-1])
		}
	}
}

func TestMustBuildPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild of unknown kernel did not panic")
		}
	}()
	MustBuild("does-not-exist")
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	// Distribution sanity for intn.
	r := newRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("intn covered %d of 10 values", len(seen))
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, name := range []string{"gemm-ncubed", "spmv-crs", "bfs-bulk"} {
		a := MustBuild(name)
		b := MustBuild(name)
		if a.NumNodes() != b.NumNodes() || a.Iters != b.Iters {
			t.Fatalf("%s: nondeterministic trace", name)
		}
		for i := range a.Nodes {
			if a.Nodes[i] != b.Nodes[i] {
				t.Fatalf("%s: node %d differs across builds", name, i)
			}
		}
	}
}

// TestBackpropUsesExpUnits pins the sigmoid activations to the FExp
// functional unit.
func TestBackpropUsesExpUnits(t *testing.T) {
	tr := MustBuild("backprop-backprop")
	c := tr.OpCounts()
	wantExp := bpBatch * (bpHidden + bpOut)
	if c[trace.OpFExp] != wantExp {
		t.Fatalf("fexp count = %d, want %d", c[trace.OpFExp], wantExp)
	}
}

// TestSortKernelsShareInputCharacter: both sorts permute the same scale of
// data; radix is the more parallel of the two (far more iterations).
func TestSortKernelsShareInputCharacter(t *testing.T) {
	merge := MustBuild("sort-merge")
	radix := MustBuild("sort-radix")
	if radix.Iters <= merge.Iters {
		t.Fatalf("radix iters %d should exceed merge iters %d", radix.Iters, merge.Iters)
	}
}

// TestEllpackRegularVsCRS: ELLPACK has fixed-shape rows, so its iteration
// ranges are all the same length, unlike CRS.
func TestEllpackRegularVsCRS(t *testing.T) {
	ell := ddg.Build(MustBuild("spmv-ellpack"))
	first := ell.IterRange[0].Len()
	for k, r := range ell.IterRange {
		if r.Len() != first {
			t.Fatalf("ellpack iteration %d has %d nodes, want uniform %d", k, r.Len(), first)
		}
	}
	crs := ddg.Build(MustBuild("spmv-crs"))
	uniform := true
	l0 := crs.IterRange[0].Len()
	for _, r := range crs.IterRange {
		if r.Len() != l0 {
			uniform = false
			break
		}
	}
	if uniform {
		t.Fatal("CRS iterations unexpectedly uniform")
	}
}

// TestBFSQueueSerial: queue-based BFS has a much longer critical path per
// node than the bulk variant (serial pointer chasing).
func TestBFSQueueSerial(t *testing.T) {
	q := ddg.Build(MustBuild("bfs-queue"))
	if q.CritPath < 20 {
		t.Fatalf("bfs-queue critical path = %d, expected a level-deep chain", q.CritPath)
	}
}

// TestFFTStridedStageStrides: the first-stage butterflies span half the
// array (n/2 elements = 1 KB apart).
func TestFFTStridedStageStrides(t *testing.T) {
	tr := MustBuild("fft-strided")
	g := ddg.Build(tr)
	r := g.IterRange[0]
	var addrs []uint32
	for i := r.Start; i < r.End; i++ {
		nd := tr.Nodes[i]
		if nd.Kind == trace.OpLoad && tr.Arrays[nd.Arr].Name == "real" {
			addrs = append(addrs, nd.Addr)
		}
	}
	if len(addrs) != 2 {
		t.Fatalf("first butterfly has %d real loads", len(addrs))
	}
	if addrs[1]-addrs[0] != uint32(fftStridedN/2*8) {
		t.Fatalf("first-stage stride = %d bytes", addrs[1]-addrs[0])
	}
}

// TestMDGridMoreInteractionsThanKnn: the cell grid evaluates a denser
// interaction set than the 16-neighbor list at equal atom count.
func TestMDGridMoreInteractionsThanKnn(t *testing.T) {
	grid := MustBuild("md-grid")
	knn := MustBuild("md-knn")
	if grid.OpCounts()[trace.OpFMul] <= knn.OpCounts()[trace.OpFMul] {
		t.Fatal("md-grid should evaluate more pair interactions")
	}
}
