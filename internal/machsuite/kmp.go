package machsuite

import "gem5aladdin/internal/trace"

// kmp: Knuth-Morris-Pratt string matching (MachSuite kmp-kmp). Scaled to a
// 2 KB text with a 4-character pattern.
const (
	kmpTextLen = 2048
	kmpPatLen  = 4
)

func init() {
	register(Kernel{
		Name: "kmp-kmp",
		Description: "Knuth-Morris-Pratt substring search. A byte-serial scan " +
			"with a loop-carried automaton state: minimal parallelism, " +
			"streaming single-byte loads.",
		Build: buildKMP,
	})
}

func buildKMP() (*trace.Trace, error) {
	r := newRNG(1010)
	pat := []byte("abab")
	text := make([]byte, kmpTextLen)
	alphabet := []byte("ab")
	for i := range text {
		text[i] = alphabet[r.intn(len(alphabet))]
	}

	b := trace.NewBuilder("kmp-kmp")
	input := b.Alloc("input", trace.U8, len(text), trace.In)
	pattern := b.Alloc("pattern", trace.U8, kmpPatLen, trace.In)
	next := b.Alloc("kmpNext", trace.I32, kmpPatLen, trace.Local)
	nMatches := b.Alloc("n_matches", trace.I32, 1, trace.Out)

	for i, c := range text {
		b.SetInt(input, i, int64(c))
	}
	for i, c := range pat {
		b.SetInt(pattern, i, int64(c))
	}

	// Failure-table construction (the kernel's CPF preamble): serial.
	refNext := make([]int, kmpPatLen)
	{
		k := 0
		b.BeginIter()
		b.Store(next, 0, b.ConstI(0))
		for q := 1; q < kmpPatLen; q++ {
			b.BeginIter()
			for k > 0 && pat[k] != pat[q] {
				kv := b.Load(next, k-1)
				k = int(kv.Int())
			}
			pk := b.Load(pattern, k)
			pq := b.Load(pattern, q)
			eq := b.IEq(pk, pq)
			_ = eq
			if pat[k] == pat[q] {
				k++
			}
			refNext[q] = k
			b.Store(next, q, b.ConstI(int64(k)))
		}
	}

	// Matching loop: one iteration per text byte, automaton state q is a
	// loop-carried register dependence.
	matches := b.ConstI(0)
	q := 0
	for i := 0; i < len(text); i++ {
		b.BeginIter()
		c := b.Load(input, i)
		for q > 0 && pat[q] != text[i] {
			nq := b.Load(next, q-1)
			q = int(nq.Int())
		}
		pq := b.Load(pattern, q)
		eq := b.IEq(pq, c)
		if pat[q] == text[i] {
			q++
		}
		_ = eq
		if q == kmpPatLen {
			matches = b.IAdd(matches, b.ConstI(1))
			nq := b.Load(next, q-1)
			q = int(nq.Int())
		}
	}
	b.BeginIter()
	b.Store(nMatches, 0, matches)

	// Reference scan.
	refMatches := 0
	rq := 0
	for i := 0; i < len(text); i++ {
		for rq > 0 && pat[rq] != text[i] {
			rq = refNext[rq-1]
		}
		if pat[rq] == text[i] {
			rq++
		}
		if rq == kmpPatLen {
			refMatches++
			rq = refNext[rq-1]
		}
	}
	if got := b.GetInt(nMatches, 0); got != int64(refMatches) {
		return nil, mismatch("kmp-kmp", "n_matches", 0, got, refMatches)
	}
	if refMatches == 0 {
		return nil, mismatch("kmp-kmp", "n_matches", 0, refMatches, "> 0")
	}
	return b.Finish(), nil
}
