package machsuite

import "gem5aladdin/internal/trace"

// sort-merge: bottom-up mergesort (MachSuite sort-merge). Scaled to 512
// 32-bit keys.
const sortN = 512

func init() {
	register(Kernel{
		Name: "sort-merge",
		Description: "Bottom-up mergesort. Data-dependent pointer advances " +
			"serialize each merge; the final passes are one long serial merge, " +
			"so the kernel is memory-bound and parallelism-insensitive.",
		Build: buildSortMerge,
	})
}

func buildSortMerge() (*trace.Trace, error) {
	n := sortN
	r := newRNG(1111)
	b := trace.NewBuilder("sort-merge")
	a := b.Alloc("a", trace.I32, n, trace.InOut)
	tmp := b.Alloc("temp", trace.I32, n, trace.Local)

	in := make([]int64, n)
	for i := range in {
		in[i] = int64(r.intn(1 << 20))
		b.SetInt(a, i, in[i])
	}

	// Each merge of one [start,mid,stop) window is an iteration: copy to
	// temp, then the serial two-pointer merge back into a.
	for width := 1; width < n; width *= 2 {
		for start := 0; start < n; start += 2 * width {
			mid := start + width
			stop := start + 2*width
			if mid > n {
				mid = n
			}
			if stop > n {
				stop = n
			}
			b.BeginIter()
			for i := start; i < stop; i++ {
				b.Store(tmp, i, b.Load(a, i))
			}
			i, j := start, mid
			for k := start; k < stop; k++ {
				var take trace.Value
				if i < mid && (j >= stop || b.GetInt(tmp, i) <= b.GetInt(tmp, j)) {
					take = b.Load(tmp, i)
					if j < stop {
						// The comparison the FSM performed to pick side i.
						other := b.Load(tmp, j)
						b.ILess(other, take)
					}
					i++
				} else {
					take = b.Load(tmp, j)
					if i < mid {
						other := b.Load(tmp, i)
						b.ILess(take, other)
					}
					j++
				}
				b.Store(a, k, take)
			}
		}
	}

	// Reference: the input must come out sorted and be a permutation.
	sorted := make([]int64, n)
	copy(sorted, in)
	for x := 1; x < n; x++ {
		for y := x; y > 0 && sorted[y] < sorted[y-1]; y-- {
			sorted[y], sorted[y-1] = sorted[y-1], sorted[y]
		}
	}
	for i := 0; i < n; i++ {
		if got := b.GetInt(a, i); got != sorted[i] {
			return nil, mismatch("sort-merge", "a", i, got, sorted[i])
		}
	}
	return b.Finish(), nil
}
