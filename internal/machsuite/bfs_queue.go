package machsuite

import "gem5aladdin/internal/trace"

// bfs-queue: breadth-first search with an explicit work queue (MachSuite
// bfs-queue): the serial, pointer-chasing counterpart of bfs-bulk.
const (
	bfsqNodes  = 128
	bfsqDegree = 4
)

func init() {
	register(Kernel{
		Name: "bfs-queue",
		Description: "Queue-based BFS: dequeue, expand, enqueue. Entirely " +
			"serial pointer chasing through the queue with irregular " +
			"edge-list loads.",
		Build: buildBFSQueue,
	})
}

func buildBFSQueue() (*trace.Trace, error) {
	n := bfsqNodes
	r := newRNG(191)

	begin := make([]int, n+1)
	var edges []int
	for v := 0; v < n; v++ {
		begin[v] = len(edges)
		edges = append(edges, (v+1)%n)
		for e := 1; e < bfsqDegree; e++ {
			edges = append(edges, r.intn(n))
		}
	}
	begin[n] = len(edges)

	b := trace.NewBuilder("bfs-queue")
	nodeBegin := b.Alloc("nodes_begin", trace.I32, n+1, trace.In)
	edgeDst := b.Alloc("edges", trace.I32, len(edges), trace.In)
	level := b.Alloc("level", trace.U8, n, trace.InOut)
	queue := b.Alloc("queue", trace.I32, n, trace.Local)
	counts := b.Alloc("level_counts", trace.I32, bfsMaxHor, trace.Out)

	for i, v := range begin {
		b.SetInt(nodeBegin, i, int64(v))
	}
	for i, v := range edges {
		b.SetInt(edgeDst, i, int64(v))
	}
	for v := 0; v < n; v++ {
		if v == 0 {
			b.SetInt(level, v, 0)
		} else {
			b.SetInt(level, v, bfsUnset)
		}
	}
	refCounts := make([]int, bfsMaxHor)

	// Seed the queue.
	b.BeginIter()
	b.Store(queue, 0, b.ConstI(0))
	head, tail := 0, 1

	for head < tail {
		b.BeginIter()
		hv := b.Load(queue, head%n)
		v := int(hv.Int())
		head++
		lv := b.Load(level, v, hv)
		horizon := int(lv.Int())
		bg := b.Load(nodeBegin, v, hv)
		for e := begin[v]; e < begin[v+1]; e++ {
			dst := b.Load(edgeDst, e, bg)
			dl := b.Load(level, int(dst.Int()), dst)
			if dl.Int() == bfsUnset {
				nl := b.IAdd(lv, b.ConstI(1))
				b.Store(level, int(dst.Int()), nl, dst)
				b.Store(queue, tail%n, dst)
				tail++
				if horizon+1 < bfsMaxHor {
					refCounts[horizon]++
				}
			}
		}
	}
	b.BeginIter()
	for h := 0; h < bfsMaxHor; h++ {
		b.Store(counts, h, b.ConstI(int64(refCounts[h])))
	}

	// Reference BFS levels.
	refLevel := make([]int, n)
	for v := range refLevel {
		refLevel[v] = bfsUnset
	}
	refLevel[0] = 0
	// Head-indexed pop: q[1:] reslicing strands the consumed prefix's
	// capacity and forces append to regrow the queue it already had room
	// for. Every vertex enqueues at most once, so the backing array is
	// bounded by n and the head index never invalidates it.
	q := make([]int, 1, n)
	q[0] = 0
	for qh := 0; qh < len(q); qh++ {
		v := q[qh]
		for e := begin[v]; e < begin[v+1]; e++ {
			if refLevel[edges[e]] == bfsUnset {
				refLevel[edges[e]] = refLevel[v] + 1
				q = append(q, edges[e])
			}
		}
	}
	for v := 0; v < n; v++ {
		if got := b.GetInt(level, v); got != int64(refLevel[v]) {
			return nil, mismatch("bfs-queue", "level", v, got, refLevel[v])
		}
	}
	return b.Finish(), nil
}
