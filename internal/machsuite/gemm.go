package machsuite

import "gem5aladdin/internal/trace"

// gemmN is the matrix dimension (MachSuite uses 64; scaled to keep the
// trace near 10^5 nodes).
const gemmN = 32

func init() {
	register(Kernel{
		Name: "gemm-ncubed",
		Description: "Dense matrix-matrix multiply, naive O(n^3). Streaming " +
			"loads with high compute-to-memory ratio; each (i,j) output cell " +
			"is one unrollable iteration with a serial dot-product inside.",
		Build: buildGEMM,
	})
}

func buildGEMM() (*trace.Trace, error) {
	n := gemmN
	r := newRNG(101)
	b := trace.NewBuilder("gemm-ncubed")
	ma := b.Alloc("m1", trace.F64, n*n, trace.In)
	mb := b.Alloc("m2", trace.F64, n*n, trace.In)
	mc := b.Alloc("prod", trace.F64, n*n, trace.Out)

	av := make([]float64, n*n)
	bv := make([]float64, n*n)
	for i := range av {
		av[i] = r.float()
		bv[i] = r.float()
		b.SetF64(ma, i, av[i])
		b.SetF64(mb, i, bv[i])
	}

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.BeginIter()
			acc := b.ConstF(0)
			for k := 0; k < n; k++ {
				acc = b.FAdd(acc, b.FMul(b.Load(ma, i*n+k), b.Load(mb, k*n+j)))
			}
			b.Store(mc, i*n+j, acc)
		}
	}

	// Reference: identical accumulation order gives exact equality.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += av[i*n+k] * bv[k*n+j]
			}
			if got := b.GetF64(mc, i*n+j); got != want {
				return nil, mismatch("gemm-ncubed", "prod", i*n+j, got, want)
			}
		}
	}
	return b.Finish(), nil
}
