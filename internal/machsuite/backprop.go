package machsuite

import (
	"math"

	"gem5aladdin/internal/trace"
)

// backprop: one training step of a fully-connected neural network with
// sigmoid activations (MachSuite backprop). Scaled to a 13-26-26-3
// network over a small batch.
const (
	bpIn     = 13
	bpHidden = 26
	bpOut    = 3
	bpBatch  = 8
	bpLR     = 0.01
)

func init() {
	register(Kernel{
		Name: "backprop-backprop",
		Description: "Neural-network training step: dense matrix-vector " +
			"products with sigmoid activations forward, then the chain-rule " +
			"backward pass updating every weight. FU-heavy with exp units.",
		Build: buildBackprop,
	})
}

func buildBackprop() (*trace.Trace, error) {
	r := newRNG(252)

	w1v := make([]float64, bpIn*bpHidden)
	w2v := make([]float64, bpHidden*bpOut)
	xv := make([]float64, bpBatch*bpIn)
	tv := make([]float64, bpBatch*bpOut)
	for i := range w1v {
		w1v[i] = r.float() - 0.5
	}
	for i := range w2v {
		w2v[i] = r.float() - 0.5
	}
	for i := range xv {
		xv[i] = r.float()
	}
	for i := range tv {
		tv[i] = r.float()
	}

	b := trace.NewBuilder("backprop-backprop")
	w1 := b.Alloc("weights1", trace.F64, len(w1v), trace.InOut)
	w2 := b.Alloc("weights2", trace.F64, len(w2v), trace.InOut)
	x := b.Alloc("training_data", trace.F64, len(xv), trace.In)
	targ := b.Alloc("training_targets", trace.F64, len(tv), trace.In)
	hid := b.Alloc("activations2", trace.F64, bpHidden, trace.Local)
	outA := b.Alloc("activations3", trace.F64, bpOut, trace.Local)
	dOut := b.Alloc("delta3", trace.F64, bpOut, trace.Local)
	dHid := b.Alloc("delta2", trace.F64, bpHidden, trace.Local)
	for i, v := range w1v {
		b.SetF64(w1, i, v)
	}
	for i, v := range w2v {
		b.SetF64(w2, i, v)
	}
	for i, v := range xv {
		b.SetF64(x, i, v)
	}
	for i, v := range tv {
		b.SetF64(targ, i, v)
	}

	// Reference state mirrors the traced computation exactly.
	rw1 := append([]float64(nil), w1v...)
	rw2 := append([]float64(nil), w2v...)

	sigmoid := func(z trace.Value) trace.Value {
		// 1 / (1 + e^-z)
		return b.FDiv(b.ConstF(1), b.FAdd(b.ConstF(1), b.FExp(b.FSub(b.ConstF(0), z))))
	}
	gsig := func(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

	for s := 0; s < bpBatch; s++ {
		rh := make([]float64, bpHidden)
		ro := make([]float64, bpOut)
		rdo := make([]float64, bpOut)
		rdh := make([]float64, bpHidden)

		// Forward, hidden layer: one iteration per neuron.
		for h := 0; h < bpHidden; h++ {
			b.BeginIter()
			z := b.ConstF(0)
			gz := 0.0
			for i := 0; i < bpIn; i++ {
				z = b.FAdd(z, b.FMul(b.Load(x, s*bpIn+i), b.Load(w1, i*bpHidden+h)))
				gz += xv[s*bpIn+i] * rw1[i*bpHidden+h]
			}
			b.Store(hid, h, sigmoid(z))
			rh[h] = gsig(gz)
		}
		// Forward, output layer.
		for o := 0; o < bpOut; o++ {
			b.BeginIter()
			z := b.ConstF(0)
			gz := 0.0
			for h := 0; h < bpHidden; h++ {
				z = b.FAdd(z, b.FMul(b.Load(hid, h), b.Load(w2, h*bpOut+o)))
				gz += rh[h] * rw2[h*bpOut+o]
			}
			b.Store(outA, o, sigmoid(z))
			ro[o] = gsig(gz)
		}
		// Output deltas: (a - t) * a * (1 - a).
		for o := 0; o < bpOut; o++ {
			b.BeginIter()
			a := b.Load(outA, o)
			e := b.FSub(a, b.Load(targ, s*bpOut+o))
			b.Store(dOut, o, b.FMul(e, b.FMul(a, b.FSub(b.ConstF(1), a))))
			ga := ro[o]
			rdo[o] = (ga - tv[s*bpOut+o]) * (ga * (1 - ga))
		}
		// Hidden deltas.
		for h := 0; h < bpHidden; h++ {
			b.BeginIter()
			sum := b.ConstF(0)
			gsum := 0.0
			for o := 0; o < bpOut; o++ {
				sum = b.FAdd(sum, b.FMul(b.Load(dOut, o), b.Load(w2, h*bpOut+o)))
				gsum += rdo[o] * rw2[h*bpOut+o]
			}
			a := b.Load(hid, h)
			b.Store(dHid, h, b.FMul(sum, b.FMul(a, b.FSub(b.ConstF(1), a))))
			rdh[h] = gsum * (rh[h] * (1 - rh[h]))
		}
		// Weight updates.
		lr := b.ConstF(bpLR)
		for h := 0; h < bpHidden; h++ {
			b.BeginIter()
			for o := 0; o < bpOut; o++ {
				idx := h*bpOut + o
				cur := b.Load(w2, idx)
				b.Store(w2, idx, b.FSub(cur, b.FMul(lr, b.FMul(b.Load(dOut, o), b.Load(hid, h)))))
				rw2[idx] -= bpLR * (rdo[o] * rh[h])
			}
		}
		for i := 0; i < bpIn; i++ {
			b.BeginIter()
			for h := 0; h < bpHidden; h++ {
				idx := i*bpHidden + h
				cur := b.Load(w1, idx)
				b.Store(w1, idx, b.FSub(cur, b.FMul(lr, b.FMul(b.Load(dHid, h), b.Load(x, s*bpIn+i)))))
				rw1[idx] -= bpLR * (rdh[h] * xv[s*bpIn+i])
			}
		}
	}

	for i := range rw1 {
		if got := b.GetF64(w1, i); got != rw1[i] {
			return nil, mismatch("backprop", "weights1", i, got, rw1[i])
		}
	}
	for i := range rw2 {
		if got := b.GetF64(w2, i); got != rw2[i] {
			return nil, mismatch("backprop", "weights2", i, got, rw2[i])
		}
	}
	return b.Finish(), nil
}
