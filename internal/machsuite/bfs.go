package machsuite

import "gem5aladdin/internal/trace"

// bfs-bulk: level-synchronized breadth-first search (MachSuite bfs-bulk).
// Scaled to 128 nodes, ~4 edges per node.
const (
	bfsNodes  = 128
	bfsDegree = 4
	bfsMaxHor = 10
	bfsUnset  = 127 // MachSuite's MAX_LEVEL marker
)

func init() {
	register(Kernel{
		Name: "bfs-bulk",
		Description: "Level-synchronized BFS over a CSR graph. Irregular " +
			"edge-list and frontier accesses with a serial horizon loop.",
		Build: buildBFS,
	})
}

func buildBFS() (*trace.Trace, error) {
	n := bfsNodes
	r := newRNG(909)

	// Random graph in CSR form; ensure connectivity with a ring backbone.
	begin := make([]int, n+1)
	var edges []int
	for v := 0; v < n; v++ {
		begin[v] = len(edges)
		edges = append(edges, (v+1)%n)
		for e := 1; e < bfsDegree; e++ {
			edges = append(edges, r.intn(n))
		}
	}
	begin[n] = len(edges)

	b := trace.NewBuilder("bfs-bulk")
	nodeBegin := b.Alloc("nodes_begin", trace.I32, n+1, trace.In)
	edgeDst := b.Alloc("edges", trace.I32, len(edges), trace.In)
	level := b.Alloc("level", trace.U8, n, trace.InOut)
	counts := b.Alloc("level_counts", trace.I32, bfsMaxHor, trace.Out)

	for i, v := range begin {
		b.SetInt(nodeBegin, i, int64(v))
	}
	for i, v := range edges {
		b.SetInt(edgeDst, i, int64(v))
	}
	for v := 0; v < n; v++ {
		if v == 0 {
			b.SetInt(level, v, 0)
		} else {
			b.SetInt(level, v, bfsUnset)
		}
	}

	for horizon := 0; horizon < bfsMaxHor; horizon++ {
		cnt := b.ConstI(0)
		touched := false
		for v := 0; v < n; v++ {
			b.BeginIter()
			lv := b.Load(level, v)
			hit := b.IEq(lv, b.ConstI(int64(horizon)))
			if lv.Int() != int64(horizon) {
				continue // the FSM skips non-frontier nodes
			}
			touched = true
			bg := b.Load(nodeBegin, v)
			for e := begin[v]; e < begin[v+1]; e++ {
				dst := b.Load(edgeDst, e, bg)
				dl := b.Load(level, int(dst.Int()), dst)
				fresh := b.IEq(dl, b.ConstI(bfsUnset))
				nl := b.Select(fresh, b.ConstI(int64(horizon+1)), dl)
				b.Store(level, int(dst.Int()), nl, dst)
				cnt = b.IAdd(cnt, b.Select(fresh, b.ConstI(1), b.ConstI(0)))
			}
			_ = hit
		}
		b.BeginIter()
		b.Store(counts, horizon, cnt)
		if !touched && horizon > 0 {
			// Remaining horizons store zero counts functionally; the real
			// kernel keeps scanning, but an empty frontier adds nothing to
			// the memory character, so stop tracing here.
			for h := horizon + 1; h < bfsMaxHor; h++ {
				b.SetInt(counts, h, 0)
			}
			break
		}
	}

	// Reference BFS.
	refLevel := make([]int, n)
	for v := range refLevel {
		refLevel[v] = bfsUnset
	}
	refLevel[0] = 0
	refCounts := make([]int, bfsMaxHor)
	for horizon := 0; horizon < bfsMaxHor; horizon++ {
		for v := 0; v < n; v++ {
			if refLevel[v] != horizon {
				continue
			}
			for e := begin[v]; e < begin[v+1]; e++ {
				if refLevel[edges[e]] == bfsUnset {
					refLevel[edges[e]] = horizon + 1
					refCounts[horizon]++
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if got := b.GetInt(level, v); got != int64(refLevel[v]) {
			return nil, mismatch("bfs-bulk", "level", v, got, refLevel[v])
		}
	}
	for h := 0; h < bfsMaxHor; h++ {
		got := b.GetInt(counts, h)
		if got != int64(refCounts[h]) {
			return nil, mismatch("bfs-bulk", "level_counts", h, got, refCounts[h])
		}
	}
	return b.Finish(), nil
}
