package machsuite

import (
	"crypto/aes"
	"fmt"

	"gem5aladdin/internal/trace"
)

// aes-aes: AES-256 ECB encryption (MachSuite aes-aes), 16 blocks.
const aesBlocks = 16

func init() {
	register(Kernel{
		Name: "aes-aes",
		Description: "AES-256 ECB encryption. Tiny data footprint with very " +
			"regular table accesses: computation can start after a few bytes " +
			"arrive, so scratchpads with DMA dominate a cold cache+TLB path.",
		Build: buildAES,
	})
}

// aesSbox is the AES S-box.
var aesSbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// aesExpandKey256 derives the 15 round keys of AES-256 (host-side driver
// work, like the original's key schedule setup).
func aesExpandKey256(key []byte) [][16]byte {
	const nk, nr = 8, 14
	w := make([][4]byte, 4*(nr+1))
	for i := 0; i < nk; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := nk; i < len(w); i++ {
		t := w[i-1]
		if i%nk == 0 {
			t = [4]byte{
				aesSbox[t[1]] ^ rcon, aesSbox[t[2]], aesSbox[t[3]], aesSbox[t[0]],
			}
			rcon = xtimeByte(rcon)
		} else if i%nk == 4 {
			t = [4]byte{aesSbox[t[0]], aesSbox[t[1]], aesSbox[t[2]], aesSbox[t[3]]}
		}
		for b := 0; b < 4; b++ {
			w[i][b] = w[i-nk][b] ^ t[b]
		}
	}
	rks := make([][16]byte, nr+1)
	for rd := 0; rd <= nr; rd++ {
		for c := 0; c < 4; c++ {
			copy(rks[rd][4*c:4*c+4], w[4*rd+c][:])
		}
	}
	return rks
}

func xtimeByte(x byte) byte {
	if x&0x80 != 0 {
		return (x << 1) ^ 0x1b
	}
	return x << 1
}

func buildAES() (*trace.Trace, error) {
	r := newRNG(808)
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(r.intn(256))
	}
	plain := make([]byte, 16*aesBlocks)
	for i := range plain {
		plain[i] = byte(r.intn(256))
	}
	rks := aesExpandKey256(key)

	b := trace.NewBuilder("aes-aes")
	sbox := b.Alloc("sbox", trace.U8, 256, trace.Local)
	rk := b.Alloc("rk", trace.U8, 15*16, trace.In)
	buf := b.Alloc("buf", trace.U8, len(plain), trace.InOut)
	for i, v := range aesSbox {
		b.SetInt(sbox, i, int64(v))
	}
	for rd := range rks {
		for i, v := range rks[rd] {
			b.SetInt(rk, rd*16+i, int64(v))
		}
	}
	for i, v := range plain {
		b.SetInt(buf, i, int64(v))
	}

	mask := b.ConstI(0xff)
	xtime := func(x trace.Value) trace.Value {
		shifted := b.And(b.Shl(x, 1), mask)
		hi := b.And(x, b.ConstI(0x80))
		return b.Select(b.IEq(hi, b.ConstI(0x80)), b.Xor(shifted, b.ConstI(0x1b)), shifted)
	}

	for blk := 0; blk < aesBlocks; blk++ {
		b.BeginIter()
		var st [16]trace.Value
		// Initial AddRoundKey.
		for i := 0; i < 16; i++ {
			st[i] = b.Xor(b.Load(buf, blk*16+i), b.Load(rk, i))
		}
		for round := 1; round <= 14; round++ {
			// SubBytes: data-dependent table lookups.
			for i := 0; i < 16; i++ {
				st[i] = b.Load(sbox, int(st[i].Uint()), st[i])
			}
			// ShiftRows: a pure wiring permutation (no datapath ops).
			var sh [16]trace.Value
			for c := 0; c < 4; c++ {
				for rw := 0; rw < 4; rw++ {
					sh[4*c+rw] = st[4*((c+rw)%4)+rw]
				}
			}
			st = sh
			// MixColumns (skipped in the final round).
			if round < 14 {
				for c := 0; c < 4; c++ {
					a0, a1, a2, a3 := st[4*c], st[4*c+1], st[4*c+2], st[4*c+3]
					t := b.Xor(b.Xor(a0, a1), b.Xor(a2, a3))
					st[4*c] = b.Xor(a0, b.Xor(t, xtime(b.Xor(a0, a1))))
					st[4*c+1] = b.Xor(a1, b.Xor(t, xtime(b.Xor(a1, a2))))
					st[4*c+2] = b.Xor(a2, b.Xor(t, xtime(b.Xor(a2, a3))))
					st[4*c+3] = b.Xor(a3, b.Xor(t, xtime(b.Xor(a3, a0))))
				}
			}
			// AddRoundKey.
			for i := 0; i < 16; i++ {
				st[i] = b.Xor(st[i], b.Load(rk, round*16+i))
			}
		}
		for i := 0; i < 16; i++ {
			b.Store(buf, blk*16+i, st[i])
		}
	}

	// Reference: the standard library's AES-256.
	cipher, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("machsuite/aes-aes: %v", err)
	}
	want := make([]byte, 16)
	for blk := 0; blk < aesBlocks; blk++ {
		cipher.Encrypt(want, plain[blk*16:blk*16+16])
		for i := 0; i < 16; i++ {
			if got := byte(b.GetInt(buf, blk*16+i)); got != want[i] {
				return nil, mismatch("aes-aes", "buf", blk*16+i, got, want[i])
			}
		}
	}
	return b.Finish(), nil
}
