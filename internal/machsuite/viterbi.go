package machsuite

import "gem5aladdin/internal/trace"

// viterbi: Viterbi HMM decoding with negative-log-likelihoods (MachSuite
// viterbi-viterbi). Scaled to 16 states, 32 steps, 32 observation symbols.
const (
	vitStates = 16
	vitSteps  = 32
	vitAlpha  = 32
)

func init() {
	register(Kernel{
		Name: "viterbi-viterbi",
		Description: "Viterbi HMM decode. Dynamic programming serial across " +
			"time steps, parallel across states, dense transition-matrix " +
			"reads every step.",
		Build: buildViterbi,
	})
}

func buildViterbi() (*trace.Trace, error) {
	s, tSteps := vitStates, vitSteps
	r := newRNG(1212)

	initV := make([]float64, s)
	transV := make([]float64, s*s)
	emitV := make([]float64, s*vitAlpha)
	obsV := make([]int, tSteps)
	for i := range initV {
		initV[i] = r.float() * 5
	}
	for i := range transV {
		transV[i] = r.float() * 5
	}
	for i := range emitV {
		emitV[i] = r.float() * 5
	}
	for i := range obsV {
		obsV[i] = r.intn(vitAlpha)
	}

	b := trace.NewBuilder("viterbi-viterbi")
	obs := b.Alloc("obs", trace.I32, tSteps, trace.In)
	initA := b.Alloc("init", trace.F64, s, trace.In)
	trans := b.Alloc("transition", trace.F64, s*s, trace.In)
	emit := b.Alloc("emission", trace.F64, s*vitAlpha, trace.In)
	llike := b.Alloc("llike", trace.F64, tSteps*s, trace.Local)
	path := b.Alloc("path", trace.I32, tSteps, trace.Out)

	for i, v := range obsV {
		b.SetInt(obs, i, int64(v))
	}
	for i, v := range initV {
		b.SetF64(initA, i, v)
	}
	for i, v := range transV {
		b.SetF64(trans, i, v)
	}
	for i, v := range emitV {
		b.SetF64(emit, i, v)
	}

	// t = 0 initialization, one iteration per state.
	ob0 := obsV[0]
	for st := 0; st < s; st++ {
		b.BeginIter()
		o := b.Load(obs, 0)
		v := b.FAdd(b.Load(initA, st), b.Load(emit, st*vitAlpha+ob0, o))
		b.Store(llike, st, v)
	}
	// Forward DP: iteration per (t, curr) pair.
	for t := 1; t < tSteps; t++ {
		ob := obsV[t]
		for curr := 0; curr < s; curr++ {
			b.BeginIter()
			o := b.Load(obs, t)
			e := b.Load(emit, curr*vitAlpha+ob, o)
			var best trace.Value
			for prev := 0; prev < s; prev++ {
				p := b.FAdd(b.FAdd(b.Load(llike, (t-1)*s+prev), b.Load(trans, prev*s+curr)), e)
				if prev == 0 {
					best = p
				} else {
					best = b.Select(b.FLess(p, best), p, best)
				}
			}
			b.Store(llike, t*s+curr, best)
		}
	}
	// Backtrack: serial min-scan per step (MachSuite recovers the path by
	// minimizing llike + transition at each step backwards).
	// Final state: argmin of llike[T-1][*].
	b.BeginIter()
	bestIdx := b.ConstI(0)
	bestVal := b.Load(llike, (tSteps-1)*s)
	for st := 1; st < s; st++ {
		v := b.Load(llike, (tSteps-1)*s+st)
		better := b.FLess(v, bestVal)
		bestVal = b.Select(better, v, bestVal)
		bestIdx = b.Select(better, b.ConstI(int64(st)), bestIdx)
	}
	b.Store(path, tSteps-1, bestIdx)
	lastState := int(bestIdx.Int())
	for t := tSteps - 2; t >= 0; t-- {
		b.BeginIter()
		bi := b.ConstI(0)
		bv := b.FAdd(b.Load(llike, t*s), b.Load(trans, lastState))
		for st := 1; st < s; st++ {
			v := b.FAdd(b.Load(llike, t*s+st), b.Load(trans, st*s+lastState))
			better := b.FLess(v, bv)
			bv = b.Select(better, v, bv)
			bi = b.Select(better, b.ConstI(int64(st)), bi)
		}
		b.Store(path, t, bi)
		lastState = int(bi.Int())
	}

	// Reference DP + backtrack.
	ref := make([]float64, tSteps*s)
	for st := 0; st < s; st++ {
		ref[st] = initV[st] + emitV[st*vitAlpha+obsV[0]]
	}
	for t := 1; t < tSteps; t++ {
		for curr := 0; curr < s; curr++ {
			e := emitV[curr*vitAlpha+obsV[t]]
			best := 0.0
			for prev := 0; prev < s; prev++ {
				p := ref[(t-1)*s+prev] + transV[prev*s+curr] + e
				if prev == 0 || p < best {
					best = p
				}
			}
			ref[t*s+curr] = best
		}
	}
	refPath := make([]int, tSteps)
	bi, bv := 0, ref[(tSteps-1)*s]
	for st := 1; st < s; st++ {
		if ref[(tSteps-1)*s+st] < bv {
			bv = ref[(tSteps-1)*s+st]
			bi = st
		}
	}
	refPath[tSteps-1] = bi
	for t := tSteps - 2; t >= 0; t-- {
		last := refPath[t+1]
		ci, cv := 0, ref[t*s]+transV[last]
		for st := 1; st < s; st++ {
			if v := ref[t*s+st] + transV[st*s+last]; v < cv {
				cv = v
				ci = st
			}
		}
		refPath[t] = ci
	}
	for t := 0; t < tSteps; t++ {
		if got := b.GetInt(path, t); got != int64(refPath[t]) {
			return nil, mismatch("viterbi-viterbi", "path", t, got, refPath[t])
		}
	}
	return b.Finish(), nil
}
