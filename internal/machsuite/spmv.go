package machsuite

import "gem5aladdin/internal/trace"

// spmv-crs: sparse matrix-vector multiply in compressed row storage
// (MachSuite spmv-crs). Scaled to 256 rows, ~8 nonzeros per row.
const (
	spmvRows      = 256
	spmvNNZPerRow = 8
)

func init() {
	register(Kernel{
		Name: "spmv-crs",
		Description: "Sparse matrix-vector multiply (CRS). Indirect " +
			"vec[cols[j]] gathers defeat sequential DMA arrival; an " +
			"on-demand cache fetches exactly the lines the row touches.",
		Build: buildSpMV,
	})
}

func buildSpMV() (*trace.Trace, error) {
	n := spmvRows
	r := newRNG(505)

	// Build the CRS structure: sorted random columns per row.
	var valsV []float64
	var colsV []int
	rowDelim := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowDelim[i] = len(colsV)
		nnz := 4 + r.intn(2*spmvNNZPerRow-8) // 4..11, mean ~8
		seen := map[int]bool{}
		var cs []int
		for len(cs) < nnz {
			c := r.intn(n)
			if !seen[c] {
				seen[c] = true
				cs = append(cs, c)
			}
		}
		// insertion sort for determinism
		for a := 1; a < len(cs); a++ {
			for b := a; b > 0 && cs[b] < cs[b-1]; b-- {
				cs[b], cs[b-1] = cs[b-1], cs[b]
			}
		}
		for _, c := range cs {
			colsV = append(colsV, c)
			valsV = append(valsV, r.float())
		}
	}
	rowDelim[n] = len(colsV)

	b := trace.NewBuilder("spmv-crs")
	val := b.Alloc("val", trace.F64, len(valsV), trace.In)
	cols := b.Alloc("cols", trace.I32, len(colsV), trace.In)
	delim := b.Alloc("rowDelimiters", trace.I32, n+1, trace.In)
	vec := b.Alloc("vec", trace.F64, n, trace.In)
	out := b.Alloc("out", trace.F64, n, trace.Out)

	vecV := make([]float64, n)
	for i := 0; i < n; i++ {
		vecV[i] = r.float()
		b.SetF64(vec, i, vecV[i])
	}
	for i, v := range valsV {
		b.SetF64(val, i, v)
	}
	for i, c := range colsV {
		b.SetInt(cols, i, int64(c))
	}
	for i, d := range rowDelim {
		b.SetInt(delim, i, int64(d))
	}

	for i := 0; i < n; i++ {
		b.BeginIter()
		begin := b.Load(delim, i)
		end := b.Load(delim, i+1)
		_ = end
		sum := b.ConstF(0)
		for j := rowDelim[i]; j < rowDelim[i+1]; j++ {
			col := b.Load(cols, j, begin)
			v := b.Load(val, j, begin)
			x := b.Load(vec, int(col.Int()), col)
			sum = b.FAdd(sum, b.FMul(v, x))
		}
		b.Store(out, i, sum)
	}

	for i := 0; i < n; i++ {
		want := 0.0
		for j := rowDelim[i]; j < rowDelim[i+1]; j++ {
			want += valsV[j] * vecV[colsV[j]]
		}
		if got := b.GetF64(out, i); got != want {
			return nil, mismatch("spmv-crs", "out", i, got, want)
		}
	}
	return b.Finish(), nil
}
