package machsuite

import "gem5aladdin/internal/trace"

// sort-radix: LSD radix sort with 4-bit digits (MachSuite sort-radix).
// Scaled to 512 20-bit keys.
const (
	radixN      = 512
	radixDigit  = 4
	radixKeyBit = 20
)

func init() {
	register(Kernel{
		Name: "sort-radix",
		Description: "LSD radix sort: per-pass histogram, exclusive scan, " +
			"and data-dependent scatter. Regular streaming reads with " +
			"indirect permutation writes.",
		Build: buildSortRadix,
	})
}

func buildSortRadix() (*trace.Trace, error) {
	n := radixN
	buckets := 1 << radixDigit
	passes := radixKeyBit / radixDigit
	r := newRNG(171)

	in := make([]int64, n)
	for i := range in {
		in[i] = int64(r.intn(1 << radixKeyBit))
	}

	b := trace.NewBuilder("sort-radix")
	a := b.Alloc("a", trace.I32, n, trace.InOut)
	tmp := b.Alloc("b", trace.I32, n, trace.Local)
	hist := b.Alloc("bucket", trace.I32, buckets, trace.Local)
	for i, v := range in {
		b.SetInt(a, i, v)
	}

	src, dst := a, tmp
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixDigit)
		mask := b.ConstI(int64(buckets - 1))

		// Histogram: one iteration per key.
		b.BeginIter()
		for d := 0; d < buckets; d++ {
			b.Store(hist, d, b.ConstI(0))
		}
		for i := 0; i < n; i++ {
			b.BeginIter()
			k := b.Load(src, i)
			d := b.And(b.Shr(k, shift), mask)
			di := int(d.Int())
			b.Store(hist, di, b.IAdd(b.Load(hist, di, d), b.ConstI(1)), d)
		}
		// Exclusive scan: serial across buckets.
		b.BeginIter()
		sum := b.ConstI(0)
		for d := 0; d < buckets; d++ {
			c := b.Load(hist, d)
			b.Store(hist, d, sum)
			sum = b.IAdd(sum, c)
		}
		// Scatter: data-dependent destination per key.
		for i := 0; i < n; i++ {
			b.BeginIter()
			k := b.Load(src, i)
			d := b.And(b.Shr(k, shift), mask)
			di := int(d.Int())
			pos := b.Load(hist, di, d)
			b.Store(dst, int(pos.Int()), k, pos)
			b.Store(hist, di, b.IAdd(pos, b.ConstI(1)), d)
		}
		src, dst = dst, src
	}

	// passes is odd or even decides where the data ends; copy back if it
	// ended in the temporary (the real kernel does the same final copy).
	if src != a {
		for i := 0; i < n; i++ {
			b.BeginIter()
			b.Store(a, i, b.Load(src, i))
		}
	}

	sorted := make([]int64, n)
	copy(sorted, in)
	for x := 1; x < n; x++ {
		for y := x; y > 0 && sorted[y] < sorted[y-1]; y-- {
			sorted[y], sorted[y-1] = sorted[y-1], sorted[y]
		}
	}
	for i := 0; i < n; i++ {
		if got := b.GetInt(a, i); got != sorted[i] {
			return nil, mismatch("sort-radix", "a", i, got, sorted[i])
		}
	}
	return b.Finish(), nil
}
