package machsuite

import "gem5aladdin/internal/trace"

// stencil2d: 3x3 convolution over a 2D grid (MachSuite stencil-stencil2d).
const (
	s2dRows = 64
	s2dCols = 64
)

// stencil3d: 7-point stencil over a 3D grid (MachSuite stencil-stencil3d).
const (
	s3dH = 16
	s3dC = 16
	s3dR = 16
)

func init() {
	register(Kernel{
		Name: "stencil-stencil2d",
		Description: "3x3 filter over a 2D grid. Row-streaming access: only " +
			"the first three rows must arrive before compute can start, so " +
			"DMA-triggered computation recovers most of the transfer time.",
		Build: buildStencil2D,
	})
	register(Kernel{
		Name: "stencil-stencil3d",
		Description: "7-point stencil over a 3D grid. Plane-strided accesses " +
			"create nonuniform reuse distances that favor an on-demand cache " +
			"over bulk DMA.",
		Build: buildStencil3D,
	})
}

func buildStencil2D() (*trace.Trace, error) {
	rows, cols := s2dRows, s2dCols
	r := newRNG(202)
	b := trace.NewBuilder("stencil-stencil2d")
	orig := b.Alloc("orig", trace.F64, rows*cols, trace.In)
	sol := b.Alloc("sol", trace.F64, rows*cols, trace.Out)
	filt := b.Alloc("filter", trace.F64, 9, trace.In)

	in := make([]float64, rows*cols)
	for i := range in {
		in[i] = r.float()
		b.SetF64(orig, i, in[i])
	}
	fv := [9]float64{1, 2, 1, 2, 4, 2, 1, 2, 1}
	for i, v := range fv {
		b.SetF64(filt, i, v)
	}

	for row := 0; row < rows-2; row++ {
		for col := 0; col < cols-2; col++ {
			b.BeginIter()
			acc := b.ConstF(0)
			for k1 := 0; k1 < 3; k1++ {
				for k2 := 0; k2 < 3; k2++ {
					mul := b.FMul(b.Load(filt, k1*3+k2), b.Load(orig, (row+k1)*cols+col+k2))
					acc = b.FAdd(acc, mul)
				}
			}
			b.Store(sol, row*cols+col, acc)
		}
	}

	for row := 0; row < rows-2; row++ {
		for col := 0; col < cols-2; col++ {
			want := 0.0
			for k1 := 0; k1 < 3; k1++ {
				for k2 := 0; k2 < 3; k2++ {
					want += fv[k1*3+k2] * in[(row+k1)*cols+col+k2]
				}
			}
			if got := b.GetF64(sol, row*cols+col); got != want {
				return nil, mismatch("stencil2d", "sol", row*cols+col, got, want)
			}
		}
	}
	return b.Finish(), nil
}

func buildStencil3D() (*trace.Trace, error) {
	h, c, rDim := s3dH, s3dC, s3dR
	idx := func(i, j, k int) int { return i*c*rDim + j*rDim + k }
	r := newRNG(303)
	b := trace.NewBuilder("stencil-stencil3d")
	orig := b.Alloc("orig", trace.F64, h*c*rDim, trace.In)
	sol := b.Alloc("sol", trace.F64, h*c*rDim, trace.Out)

	in := make([]float64, h*c*rDim)
	for i := range in {
		in[i] = r.float()
		b.SetF64(orig, i, in[i])
	}
	const c0, c1 = 0.5, 0.25
	k0, k1 := b.ConstF(c0), b.ConstF(c1)

	// Boundary copy: one iteration per face cell, as in the MachSuite
	// kernel's boundary loops.
	onBoundary := func(i, j, k int) bool {
		return i == 0 || i == h-1 || j == 0 || j == c-1 || k == 0 || k == rDim-1
	}
	for i := 0; i < h; i++ {
		for j := 0; j < c; j++ {
			for k := 0; k < rDim; k++ {
				if !onBoundary(i, j, k) {
					continue
				}
				b.BeginIter()
				b.Store(sol, idx(i, j, k), b.Load(orig, idx(i, j, k)))
			}
		}
	}
	// Interior: sol = C0*center + C1*(sum of 6 face neighbors).
	for i := 1; i < h-1; i++ {
		for j := 1; j < c-1; j++ {
			for k := 1; k < rDim-1; k++ {
				b.BeginIter()
				sum0 := b.Load(orig, idx(i, j, k))
				sum1 := b.FAdd(b.Load(orig, idx(i+1, j, k)), b.Load(orig, idx(i-1, j, k)))
				sum1 = b.FAdd(sum1, b.FAdd(b.Load(orig, idx(i, j+1, k)), b.Load(orig, idx(i, j-1, k))))
				sum1 = b.FAdd(sum1, b.FAdd(b.Load(orig, idx(i, j, k+1)), b.Load(orig, idx(i, j, k-1))))
				b.Store(sol, idx(i, j, k), b.FAdd(b.FMul(sum0, k0), b.FMul(sum1, k1)))
			}
		}
	}

	for i := 0; i < h; i++ {
		for j := 0; j < c; j++ {
			for k := 0; k < rDim; k++ {
				var want float64
				if onBoundary(i, j, k) {
					want = in[idx(i, j, k)]
				} else {
					sum1 := in[idx(i+1, j, k)] + in[idx(i-1, j, k)]
					sum1 = sum1 + (in[idx(i, j+1, k)] + in[idx(i, j-1, k)])
					sum1 = sum1 + (in[idx(i, j, k+1)] + in[idx(i, j, k-1)])
					want = in[idx(i, j, k)]*c0 + sum1*c1
				}
				if got := b.GetF64(sol, idx(i, j, k)); got != want {
					return nil, mismatch("stencil3d", "sol", idx(i, j, k), got, want)
				}
			}
		}
	}
	return b.Finish(), nil
}
