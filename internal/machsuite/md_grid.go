package machsuite

import "gem5aladdin/internal/trace"

// md-grid: Lennard-Jones forces over a 3D cell grid (MachSuite md-grid):
// every atom interacts with the atoms of its own and neighboring cells.
// Scaled to a 4x4x4 grid with 4 atoms per cell.
const (
	mdgDim     = 4
	mdgDensity = 4
)

func init() {
	register(Kernel{
		Name: "md-grid",
		Description: "Cell-grid molecular dynamics: nested neighbor-cell " +
			"loops with blocked position loads — more regular reuse than " +
			"md-knn's per-atom gather lists.",
		Build: buildMDGrid,
	})
}

func buildMDGrid() (*trace.Trace, error) {
	dim, dens := mdgDim, mdgDensity
	cells := dim * dim * dim
	atoms := cells * dens
	cellOf := func(cx, cy, cz int) int { return (cx*dim+cy)*dim + cz }
	r := newRNG(232)

	px := make([]float64, atoms)
	py := make([]float64, atoms)
	pz := make([]float64, atoms)
	for c := 0; c < cells; c++ {
		for a := 0; a < dens; a++ {
			i := c*dens + a
			px[i] = float64(c%dim) + r.float()
			py[i] = float64((c/dim)%dim) + r.float()
			pz[i] = float64(c/(dim*dim)) + r.float()
		}
	}

	b := trace.NewBuilder("md-grid")
	posX := b.Alloc("d_x", trace.F64, atoms, trace.In)
	posY := b.Alloc("d_y", trace.F64, atoms, trace.In)
	posZ := b.Alloc("d_z", trace.F64, atoms, trace.In)
	frcX := b.Alloc("f_x", trace.F64, atoms, trace.Out)
	frcY := b.Alloc("f_y", trace.F64, atoms, trace.Out)
	frcZ := b.Alloc("f_z", trace.F64, atoms, trace.Out)
	for i := 0; i < atoms; i++ {
		b.SetF64(posX, i, px[i])
		b.SetF64(posY, i, py[i])
		b.SetF64(posZ, i, pz[i])
	}

	wx := make([]float64, atoms)
	wy := make([]float64, atoms)
	wz := make([]float64, atoms)

	clamp := func(v int) (int, bool) {
		if v < 0 || v >= dim {
			return 0, false
		}
		return v, true
	}
	// One iteration per (cell, atom): accumulate forces from all atoms in
	// the 27-cell neighborhood.
	for cx := 0; cx < dim; cx++ {
		for cy := 0; cy < dim; cy++ {
			for cz := 0; cz < dim; cz++ {
				base := cellOf(cx, cy, cz) * dens
				for a := 0; a < dens; a++ {
					i := base + a
					b.BeginIter()
					ix := b.Load(posX, i)
					iy := b.Load(posY, i)
					iz := b.Load(posZ, i)
					fx := b.ConstF(0)
					fy := b.ConstF(0)
					fz := b.ConstF(0)
					var rfx, rfy, rfz float64
					for dx := -1; dx <= 1; dx++ {
						for dy := -1; dy <= 1; dy++ {
							for dz := -1; dz <= 1; dz++ {
								nx, okx := clamp(cx + dx)
								ny, oky := clamp(cy + dy)
								nz, okz := clamp(cz + dz)
								if !okx || !oky || !okz {
									continue
								}
								nbase := cellOf(nx, ny, nz) * dens
								for na := 0; na < dens; na++ {
									j := nbase + na
									if j == i {
										continue
									}
									jx := b.Load(posX, j)
									jy := b.Load(posY, j)
									jz := b.Load(posZ, j)
									delx := b.FSub(ix, jx)
									dely := b.FSub(iy, jy)
									delz := b.FSub(iz, jz)
									r2 := b.FAdd(b.FAdd(b.FMul(delx, delx), b.FMul(dely, dely)), b.FMul(delz, delz))
									r2inv := b.FDiv(b.ConstF(1), r2)
									r6 := b.FMul(b.FMul(r2inv, r2inv), r2inv)
									pot := b.FMul(r6, b.FSub(b.FMul(b.ConstF(mdLJ1), r6), b.ConstF(mdLJ2)))
									force := b.FMul(r2inv, pot)
									fx = b.FAdd(fx, b.FMul(delx, force))
									fy = b.FAdd(fy, b.FMul(dely, force))
									fz = b.FAdd(fz, b.FMul(delz, force))

									gdx := px[i] - px[j]
									gdy := py[i] - py[j]
									gdz := pz[i] - pz[j]
									gr2 := gdx*gdx + gdy*gdy + gdz*gdz
									gr2i := 1 / gr2
									gr6 := gr2i * gr2i * gr2i
									gp := gr6 * (mdLJ1*gr6 - mdLJ2)
									gf := gr2i * gp
									rfx += gdx * gf
									rfy += gdy * gf
									rfz += gdz * gf
								}
							}
						}
					}
					b.Store(frcX, i, fx)
					b.Store(frcY, i, fy)
					b.Store(frcZ, i, fz)
					wx[i], wy[i], wz[i] = rfx, rfy, rfz
				}
			}
		}
	}

	for i := 0; i < atoms; i++ {
		if got := b.GetF64(frcX, i); got != wx[i] {
			return nil, mismatch("md-grid", "f_x", i, got, wx[i])
		}
		if got := b.GetF64(frcY, i); got != wy[i] {
			return nil, mismatch("md-grid", "f_y", i, got, wy[i])
		}
		if got := b.GetF64(frcZ, i); got != wz[i] {
			return nil, mismatch("md-grid", "f_z", i, got, wz[i])
		}
	}
	return b.Finish(), nil
}
