package machsuite

import "gem5aladdin/internal/trace"

// nw: Needleman-Wunsch global DNA sequence alignment (MachSuite nw-nw).
// Scaled to 64-base sequences.
const (
	nwLen   = 64
	nwMatch = 1
	nwMism  = -1
	nwGap   = -1
)

func init() {
	register(Kernel{
		Name: "nw-nw",
		Description: "Needleman-Wunsch dynamic programming alignment. The " +
			"score matrix lives in a private scratchpad; loop-carried " +
			"dependences along rows serialize the datapath, so parallelism " +
			"buys little and DMA with small inputs wins.",
		Build: buildNW,
	})
}

func buildNW() (*trace.Trace, error) {
	n := nwLen
	cols := n + 1
	r := newRNG(707)
	b := trace.NewBuilder("nw-nw")
	seqA := b.Alloc("seqA", trace.U8, n, trace.In)
	seqB := b.Alloc("seqB", trace.U8, n, trace.In)
	// The DP score and traceback-pointer matrices are private
	// intermediates: scratchpad-resident even in cache designs (Sec IV-D).
	m := b.Alloc("M", trace.I32, cols*cols, trace.Local)
	ptr := b.Alloc("ptr", trace.U8, cols*cols, trace.Local)
	alignA := b.Alloc("alignedA", trace.U8, 2*n, trace.Out)
	alignB := b.Alloc("alignedB", trace.U8, 2*n, trace.Out)

	bases := []byte{'A', 'C', 'G', 'T'}
	av := make([]byte, n)
	bv := make([]byte, n)
	for i := 0; i < n; i++ {
		av[i] = bases[r.intn(4)]
		bv[i] = bases[r.intn(4)]
		b.SetInt(seqA, i, int64(av[i]))
		b.SetInt(seqB, i, int64(bv[i]))
	}

	// Boundary initialization, one iteration per cell (the MachSuite
	// init loops).
	for a := 0; a < cols; a++ {
		b.BeginIter()
		b.Store(m, a, b.ConstI(int64(a*nwGap)))
	}
	for a := 1; a < cols; a++ {
		b.BeginIter()
		b.Store(m, a*cols, b.ConstI(int64(a*nwGap)))
	}

	// DP fill, row-major, one iteration per cell.
	const (
		ptrDiag = 0
		ptrUp   = 1
		ptrLeft = 2
	)
	for i := 1; i < cols; i++ {
		for j := 1; j < cols; j++ {
			b.BeginIter()
			ca := b.Load(seqA, i-1)
			cb := b.Load(seqB, j-1)
			eq := b.IEq(ca, cb)
			score := b.Select(eq, b.ConstI(nwMatch), b.ConstI(nwMism))
			diag := b.IAdd(b.Load(m, (i-1)*cols+j-1), score)
			up := b.IAdd(b.Load(m, (i-1)*cols+j), b.ConstI(nwGap))
			left := b.IAdd(b.Load(m, i*cols+j-1), b.ConstI(nwGap))
			// Ties resolve toward diag, then toward the up/diag winner,
			// matching the reference's strict-greater preference order.
			bestUD := b.Select(b.ILess(diag, up), up, diag)
			dir1 := b.Select(b.ILess(diag, up), b.ConstI(ptrUp), b.ConstI(ptrDiag))
			best := b.Select(b.ILess(bestUD, left), left, bestUD)
			dir := b.Select(b.ILess(bestUD, left), b.ConstI(ptrLeft), dir1)
			b.Store(m, i*cols+j, best)
			b.Store(ptr, i*cols+j, dir)
		}
	}

	// Traceback: inherently serial pointer chasing.
	type step struct{ ai, bi int64 } // emitted characters (0 = gap '-')
	var refSteps []step
	{
		// Pure-Go reference DP + traceback.
		ref := make([]int, cols*cols)
		rptr := make([]byte, cols*cols)
		for a := 0; a < cols; a++ {
			ref[a] = a * nwGap
		}
		for a := 1; a < cols; a++ {
			ref[a*cols] = a * nwGap
		}
		for i := 1; i < cols; i++ {
			for j := 1; j < cols; j++ {
				s := nwMism
				if av[i-1] == bv[j-1] {
					s = nwMatch
				}
				diag := ref[(i-1)*cols+j-1] + s
				up := ref[(i-1)*cols+j] + nwGap
				left := ref[i*cols+j-1] + nwGap
				best, dir := diag, byte(ptrDiag)
				if up > diag {
					best, dir = up, ptrUp
				}
				if left > best {
					best, dir = left, ptrLeft
				}
				ref[i*cols+j] = best
				rptr[i*cols+j] = dir
			}
		}
		for i, j := n, n; i > 0 || j > 0; {
			switch {
			case i > 0 && j > 0 && rptr[i*cols+j] == ptrDiag:
				refSteps = append(refSteps, step{int64(av[i-1]), int64(bv[j-1])})
				i, j = i-1, j-1
			case i > 0 && (j == 0 || rptr[i*cols+j] == ptrUp):
				refSteps = append(refSteps, step{int64(av[i-1]), '-'})
				i--
			default:
				refSteps = append(refSteps, step{'-', int64(bv[j-1])})
				j--
			}
		}
	}

	// Traced traceback (follows the same pointers; values concrete).
	pos := 0
	for i, j := n, n; i > 0 || j > 0; {
		b.BeginIter()
		var dir int64 = ptrLeft
		dv := b.ConstI(0) // dependence-free placeholder at the borders
		if i > 0 && j > 0 {
			dv = b.Load(ptr, i*cols+j)
			dir = dv.Int()
		} else if i > 0 {
			dir = ptrUp
		}
		switch dir {
		case ptrDiag:
			b.Store(alignA, pos, b.Load(seqA, i-1), dv)
			b.Store(alignB, pos, b.Load(seqB, j-1), dv)
			i, j = i-1, j-1
		case ptrUp:
			b.Store(alignA, pos, b.Load(seqA, i-1), dv)
			b.Store(alignB, pos, b.ConstI('-'), dv)
			i--
		default:
			b.Store(alignA, pos, b.ConstI('-'), dv)
			b.Store(alignB, pos, b.Load(seqB, j-1), dv)
			j--
		}
		pos++
	}

	if pos != len(refSteps) {
		return nil, mismatch("nw-nw", "alignment length", 0, pos, len(refSteps))
	}
	for s := 0; s < pos; s++ {
		if got := b.GetInt(alignA, s); got != refSteps[s].ai {
			return nil, mismatch("nw-nw", "alignedA", s, got, refSteps[s].ai)
		}
		if got := b.GetInt(alignB, s); got != refSteps[s].bi {
			return nil, mismatch("nw-nw", "alignedB", s, got, refSteps[s].bi)
		}
	}
	return b.Finish(), nil
}
