package machsuite

import (
	"math"

	"gem5aladdin/internal/trace"
)

// fft-strided: the classic iterative radix-2 FFT (MachSuite fft-strided):
// log2(n) stages of butterflies whose strides halve each stage.
const fftStridedN = 256

func init() {
	register(Kernel{
		Name: "fft-strided",
		Description: "Iterative radix-2 FFT: log2(n) butterfly stages with " +
			"halving strides — a moving mix of long-stride and unit-stride " +
			"access as stages progress.",
		Build: buildFFTStrided,
	})
}

func buildFFTStrided() (*trace.Trace, error) {
	n := fftStridedN
	r := newRNG(212)

	reV := make([]float64, n)
	imV := make([]float64, n)
	for i := range reV {
		reV[i] = 2*r.float() - 1
		imV[i] = 2*r.float() - 1
	}

	b := trace.NewBuilder("fft-strided")
	re := b.Alloc("real", trace.F64, n, trace.InOut)
	im := b.Alloc("img", trace.F64, n, trace.InOut)
	for i := range reV {
		b.SetF64(re, i, reV[i])
		b.SetF64(im, i, imV[i])
	}

	// Traced DIF butterflies (one iteration per butterfly).
	for span := n / 2; span > 0; span /= 2 {
		for odd := span; odd < n; odd++ {
			if odd&span == 0 {
				continue
			}
			even := odd ^ span
			b.BeginIter()
			ang := -math.Pi * float64(even%(2*span)) / float64(span)
			wr := b.ConstF(math.Cos(ang))
			wi := b.ConstF(math.Sin(ang))
			er := b.Load(re, even)
			ei := b.Load(im, even)
			or := b.Load(re, odd)
			oi := b.Load(im, odd)
			sumR := b.FAdd(er, or)
			sumI := b.FAdd(ei, oi)
			difR := b.FSub(er, or)
			difI := b.FSub(ei, oi)
			b.Store(re, even, sumR)
			b.Store(im, even, sumI)
			b.Store(re, odd, b.FSub(b.FMul(difR, wr), b.FMul(difI, wi)))
			b.Store(im, odd, b.FAdd(b.FMul(difR, wi), b.FMul(difI, wr)))
		}
	}

	// Reference: identical butterfly schedule in plain Go.
	for span := n / 2; span > 0; span /= 2 {
		for odd := span; odd < n; odd++ {
			if odd&span == 0 {
				continue
			}
			even := odd ^ span
			ang := -math.Pi * float64(even%(2*span)) / float64(span)
			wr, wi := math.Cos(ang), math.Sin(ang)
			er, ei := reV[even], imV[even]
			or, oi := reV[odd], imV[odd]
			difR, difI := er-or, ei-oi
			reV[even], imV[even] = er+or, ei+oi
			reV[odd] = difR*wr - difI*wi
			imV[odd] = difR*wi + difI*wr
		}
	}
	for i := 0; i < n; i++ {
		if got := b.GetF64(re, i); got != reV[i] {
			return nil, mismatch("fft-strided", "real", i, got, reV[i])
		}
		if got := b.GetF64(im, i); got != imV[i] {
			return nil, mismatch("fft-strided", "img", i, got, imV[i])
		}
	}
	return b.Finish(), nil
}
