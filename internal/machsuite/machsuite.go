// Package machsuite reimplements the MachSuite accelerator benchmark suite
// (Reagen et al., IISWC 2014) against the trace builder, providing the
// workloads of the paper's evaluation. Each kernel:
//
//   - allocates its arrays with the same host/accelerator transfer
//     directions the original's dmaLoad/dmaStore calls imply,
//   - executes functionally while emitting the dynamic trace (so results
//     are verified against an independent pure-Go reference in tests), and
//   - labels the loop iterations that Aladdin unrolls across datapath
//     lanes.
//
// Problem sizes are scaled from the MachSuite defaults to keep dynamic
// traces in the 10^4-10^5 node range, which keeps full design-space sweeps
// tractable; the memory-behavior character of each kernel (streaming,
// strided, indirect, serial) is preserved, and that character — not the
// absolute size — is what the paper's conclusions rest on.
package machsuite

import (
	"fmt"
	"sort"

	"gem5aladdin/internal/trace"
)

// Kernel is one benchmark.
type Kernel struct {
	// Name is the MachSuite identifier, e.g. "md-knn".
	Name string
	// Description summarizes the computation and its memory character.
	Description string
	// Build traces one invocation on the default (scaled) problem size
	// and verifies the functional result against a pure-Go reference,
	// returning an error on mismatch.
	Build func() (*trace.Trace, error)
}

var registry []Kernel

func register(k Kernel) { registry = append(registry, k) }

// All returns every benchmark, sorted by name.
func All() []Kernel {
	out := make([]Kernel, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted benchmark names.
func Names() []string {
	ks := All()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name
	}
	return names
}

// ByName looks a benchmark up.
func ByName(name string) (Kernel, error) {
	for _, k := range registry {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("machsuite: unknown benchmark %q (have %v)", name, Names())
}

// MustBuild traces the named benchmark, panicking on functional mismatch —
// for use in benchmarks and examples where an error can only be a bug.
func MustBuild(name string) *trace.Trace {
	k, err := ByName(name)
	if err != nil {
		panic(err)
	}
	tr, err := k.Build()
	if err != nil {
		panic(err)
	}
	return tr
}

// rng is a small deterministic xorshift64* generator so inputs are stable
// across runs and platforms without pulling in math/rand state.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 2685821657736338717
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float returns a value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// mismatch formats a functional self-check failure.
func mismatch(kernel, what string, i int, got, want any) error {
	return fmt.Errorf("machsuite/%s: %s[%d] = %v, want %v", kernel, what, i, got, want)
}
