package machsuite

import "gem5aladdin/internal/trace"

// gemm-blocked: tiled matrix multiply (MachSuite gemm-blocked), same
// problem size as gemm-ncubed but with cache-friendly 8x8 blocking.
const gemmBlock = 8

func init() {
	register(Kernel{
		Name: "gemm-blocked",
		Description: "Blocked dense matrix multiply. Tiling shrinks the " +
			"live working set per phase, trading the ncubed version's long " +
			"streams for block reuse.",
		Build: buildGEMMBlocked,
	})
}

func buildGEMMBlocked() (*trace.Trace, error) {
	n, bs := gemmN, gemmBlock
	r := newRNG(131)
	b := trace.NewBuilder("gemm-blocked")
	ma := b.Alloc("m1", trace.F64, n*n, trace.In)
	mb := b.Alloc("m2", trace.F64, n*n, trace.In)
	mc := b.Alloc("prod", trace.F64, n*n, trace.InOut)

	av := make([]float64, n*n)
	bv := make([]float64, n*n)
	ref := make([]float64, n*n)
	for i := range av {
		av[i] = r.float()
		bv[i] = r.float()
		b.SetF64(ma, i, av[i])
		b.SetF64(mb, i, bv[i])
		b.SetF64(mc, i, 0)
	}

	// One unrollable iteration per (block-row, block-col, k-block, i)
	// row-slice, as the MachSuite kernel unrolls its innermost loops.
	for jj := 0; jj < n; jj += bs {
		for kk := 0; kk < n; kk += bs {
			for i := 0; i < n; i++ {
				b.BeginIter()
				for k := kk; k < kk+bs; k++ {
					aik := b.Load(ma, i*n+k)
					for j := jj; j < jj+bs; j++ {
						cur := b.Load(mc, i*n+j)
						b.Store(mc, i*n+j, b.FAdd(cur, b.FMul(aik, b.Load(mb, k*n+j))))
					}
				}
			}
		}
	}

	// Reference in identical blocked order.
	for jj := 0; jj < n; jj += bs {
		for kk := 0; kk < n; kk += bs {
			for i := 0; i < n; i++ {
				for k := kk; k < kk+bs; k++ {
					for j := jj; j < jj+bs; j++ {
						ref[i*n+j] += av[i*n+k] * bv[k*n+j]
					}
				}
			}
		}
	}
	for i := range ref {
		if got := b.GetF64(mc, i); got != ref[i] {
			return nil, mismatch("gemm-blocked", "prod", i, got, ref[i])
		}
	}
	return b.Finish(), nil
}
