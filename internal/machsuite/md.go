package machsuite

import "gem5aladdin/internal/trace"

// md-knn: Lennard-Jones force computation over a k-nearest-neighbor list
// (MachSuite md-knn). Scaled to 256 atoms x 16 neighbors.
const (
	mdAtoms     = 256
	mdNeighbors = 16
	mdLJ1       = 1.5
	mdLJ2       = 2.0
)

func init() {
	register(Kernel{
		Name: "md-knn",
		Description: "Molecular dynamics k-nearest-neighbor force kernel: 12 " +
			"FP multiplies per atom pair, FU-dominated power. Neighbor lists " +
			"have spatial locality, so full/empty bits overlap nearly all of " +
			"the DMA transfer with compute.",
		Build: buildMDKnn,
	})
}

func buildMDKnn() (*trace.Trace, error) {
	n, k := mdAtoms, mdNeighbors
	r := newRNG(404)
	b := trace.NewBuilder("md-knn")
	posX := b.Alloc("position_x", trace.F64, n, trace.In)
	posY := b.Alloc("position_y", trace.F64, n, trace.In)
	posZ := b.Alloc("position_z", trace.F64, n, trace.In)
	nl := b.Alloc("NL", trace.I32, n*k, trace.In)
	frcX := b.Alloc("force_x", trace.F64, n, trace.Out)
	frcY := b.Alloc("force_y", trace.F64, n, trace.Out)
	frcZ := b.Alloc("force_z", trace.F64, n, trace.Out)

	px := make([]float64, n)
	py := make([]float64, n)
	pz := make([]float64, n)
	for i := 0; i < n; i++ {
		px[i], py[i], pz[i] = 10*r.float(), 10*r.float(), 10*r.float()
		b.SetF64(posX, i, px[i])
		b.SetF64(posY, i, py[i])
		b.SetF64(posZ, i, pz[i])
	}
	// Neighbor lists with index locality (atoms are spatially sorted in
	// MachSuite's input): neighbor j of atom i is i±1..±k/2.
	nlv := make([]int, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			d := j/2 + 1
			if j%2 == 1 {
				d = -d
			}
			nb := ((i+d)%n + n) % n
			nlv[i*k+j] = nb
			b.SetInt(nl, i*k+j, int64(nb))
		}
	}

	for i := 0; i < n; i++ {
		b.BeginIter()
		ix := b.Load(posX, i)
		iy := b.Load(posY, i)
		iz := b.Load(posZ, i)
		fx := b.ConstF(0)
		fy := b.ConstF(0)
		fz := b.ConstF(0)
		for j := 0; j < k; j++ {
			idx := b.Load(nl, i*k+j)
			nb := int(idx.Int())
			jx := b.Load(posX, nb, idx)
			jy := b.Load(posY, nb, idx)
			jz := b.Load(posZ, nb, idx)
			delx := b.FSub(ix, jx)
			dely := b.FSub(iy, jy)
			delz := b.FSub(iz, jz)
			r2 := b.FAdd(b.FAdd(b.FMul(delx, delx), b.FMul(dely, dely)), b.FMul(delz, delz))
			r2inv := b.FDiv(b.ConstF(1), r2)
			r6inv := b.FMul(b.FMul(r2inv, r2inv), r2inv)
			pot := b.FMul(r6inv, b.FSub(b.FMul(b.ConstF(mdLJ1), r6inv), b.ConstF(mdLJ2)))
			force := b.FMul(r2inv, pot)
			fx = b.FAdd(fx, b.FMul(delx, force))
			fy = b.FAdd(fy, b.FMul(dely, force))
			fz = b.FAdd(fz, b.FMul(delz, force))
		}
		b.Store(frcX, i, fx)
		b.Store(frcY, i, fy)
		b.Store(frcZ, i, fz)
	}

	// Reference with identical operation order.
	for i := 0; i < n; i++ {
		var wx, wy, wz float64
		for j := 0; j < k; j++ {
			nb := nlv[i*k+j]
			delx := px[i] - px[nb]
			dely := py[i] - py[nb]
			delz := pz[i] - pz[nb]
			r2 := delx*delx + dely*dely + delz*delz
			r2inv := 1 / r2
			r6inv := r2inv * r2inv * r2inv
			pot := r6inv * (mdLJ1*r6inv - mdLJ2)
			force := r2inv * pot
			wx += delx * force
			wy += dely * force
			wz += delz * force
		}
		if got := b.GetF64(frcX, i); got != wx {
			return nil, mismatch("md-knn", "force_x", i, got, wx)
		}
		if got := b.GetF64(frcY, i); got != wy {
			return nil, mismatch("md-knn", "force_y", i, got, wy)
		}
		if got := b.GetF64(frcZ, i); got != wz {
			return nil, mismatch("md-knn", "force_z", i, got, wz)
		}
	}
	return b.Finish(), nil
}
