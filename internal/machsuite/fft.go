package machsuite

import (
	"math"

	"gem5aladdin/internal/trace"
)

// fft-transpose: the strided phase of MachSuite's 512-point transpose-based
// FFT. Each work unit performs an 8-point DFT whose inputs are strided 64
// elements (512 bytes) apart — the access pattern the paper singles out:
// "each loop iteration only reads eight bytes per 512 bytes of data".
const (
	fftPoints = 512
	fftRadix  = 8
	fftStride = fftPoints / fftRadix // 64 elements = 512 bytes of float64
)

func init() {
	register(Kernel{
		Name: "fft-transpose",
		Description: "Transpose-based 512-point FFT stage: radix-8 butterflies " +
			"over 512-byte-strided data. Sequential DMA must deliver nearly the " +
			"whole array before any iteration can finish; caches fetch the " +
			"strided lines on demand.",
		Build: buildFFT,
	})
}

func buildFFT() (*trace.Trace, error) {
	r := newRNG(606)
	b := trace.NewBuilder("fft-transpose")
	re := b.Alloc("work_x", trace.F64, fftPoints, trace.InOut)
	im := b.Alloc("work_y", trace.F64, fftPoints, trace.InOut)

	reV := make([]float64, fftPoints)
	imV := make([]float64, fftPoints)
	for i := range reV {
		reV[i] = 2*r.float() - 1
		imV[i] = 2*r.float() - 1
		b.SetF64(re, i, reV[i])
		b.SetF64(im, i, imV[i])
	}

	// DFT-8 twiddle table: w[o][k] = exp(-2*pi*i*o*k/8).
	var twRe, twIm [fftRadix][fftRadix]float64
	for o := 0; o < fftRadix; o++ {
		for k := 0; k < fftRadix; k++ {
			ang := -2 * math.Pi * float64(o*k) / fftRadix
			twRe[o][k] = math.Cos(ang)
			twIm[o][k] = math.Sin(ang)
		}
	}

	for g := 0; g < fftStride; g++ {
		b.BeginIter()
		var xr, xi [fftRadix]trace.Value
		for k := 0; k < fftRadix; k++ {
			xr[k] = b.Load(re, g+k*fftStride)
			xi[k] = b.Load(im, g+k*fftStride)
		}
		for o := 0; o < fftRadix; o++ {
			accR := b.ConstF(0)
			accI := b.ConstF(0)
			for k := 0; k < fftRadix; k++ {
				wr := b.ConstF(twRe[o][k])
				wi := b.ConstF(twIm[o][k])
				// (xr + i*xi) * (wr + i*wi)
				pr := b.FSub(b.FMul(xr[k], wr), b.FMul(xi[k], wi))
				pi := b.FAdd(b.FMul(xr[k], wi), b.FMul(xi[k], wr))
				accR = b.FAdd(accR, pr)
				accI = b.FAdd(accI, pi)
			}
			b.Store(re, g+o*fftStride, accR)
			b.Store(im, g+o*fftStride, accI)
		}
	}

	// Independent reference over the saved inputs.
	for g := 0; g < fftStride; g++ {
		for o := 0; o < fftRadix; o++ {
			var wr, wi float64
			for k := 0; k < fftRadix; k++ {
				xr, xi := reV[g+k*fftStride], imV[g+k*fftStride]
				twr, twi := twRe[o][k], twIm[o][k]
				wr += xr*twr - xi*twi
				wi += xr*twi + xi*twr
			}
			if got := b.GetF64(re, g+o*fftStride); got != wr {
				return nil, mismatch("fft-transpose", "work_x", g+o*fftStride, got, wr)
			}
			if got := b.GetF64(im, g+o*fftStride); got != wi {
				return nil, mismatch("fft-transpose", "work_y", g+o*fftStride, got, wi)
			}
		}
	}
	return b.Finish(), nil
}
