package dse

import (
	"testing"

	"gem5aladdin/internal/soc"
)

// TestPointKey pins the content-address contract: stable across calls,
// different per kernel and per config, and insensitive to the kernel/config
// boundary (no concatenation ambiguity).
func TestPointKey(t *testing.T) {
	cfg := soc.DefaultConfig()
	if PointKey("gemm-ncubed", cfg) != PointKey("gemm-ncubed", cfg) {
		t.Fatal("PointKey not deterministic")
	}
	if PointKey("gemm-ncubed", cfg) == PointKey("spmv-crs", cfg) {
		t.Fatal("kernel name not part of the key")
	}
	other := cfg
	other.Lanes = 8
	if PointKey("gemm-ncubed", cfg) == PointKey("gemm-ncubed", other) {
		t.Fatal("config not part of the key")
	}
	// The separator keeps ("ab", cfg) and ("a", cfg') domains apart even
	// though the canonical bytes begin with a fixed prefix; spot-check the
	// simplest aliasing shape.
	if PointKey("ab", cfg) == PointKey("a", cfg) {
		t.Fatal("kernel-name prefix aliases")
	}
	if len(PointKey("x", cfg)) != 64 {
		t.Fatal("key is not hex sha256")
	}
}
