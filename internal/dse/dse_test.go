package dse

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
)

var testGraphs = map[string]*ddg.Graph{}
var testKernels = map[string]*soc.Compiled{}

func graphOf(t testing.TB, name string) *ddg.Graph {
	t.Helper()
	if g, ok := testGraphs[name]; ok {
		return g
	}
	g := ddg.Build(machsuite.MustBuild(name))
	testGraphs[name] = g
	return g
}

func kernelOf(t testing.TB, name string) *soc.Compiled {
	t.Helper()
	if k, ok := testKernels[name]; ok {
		return k
	}
	k := soc.Compile(graphOf(t, name))
	testKernels[name] = k
	return k
}

func TestSweepParallelDeterministic(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cfgs := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4}, []int{1, 4})
	a, err := Sweep(context.Background(), k, cfgs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), k, cfgs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 {
		t.Fatalf("space size = %d", len(a))
	}
	for i := range a {
		if a[i].Res.Runtime != b[i].Res.Runtime || a[i].Res.EDPJs != b[i].Res.EDPJs {
			t.Fatalf("point %d nondeterministic across sweeps", i)
		}
	}
}

func TestParetoFrontProperties(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cfgs := SpadConfigs(soc.DefaultConfig(), soc.DMA, DefaultLanes(), []int{1, 4, 16})
	space, err := Sweep(context.Background(), k, cfgs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	front := space.ParetoFront()
	if len(front) == 0 || len(front) > len(space) {
		t.Fatalf("front size %d of %d", len(front), len(space))
	}
	// No front point dominates another front point.
	for i, p := range front {
		for j, q := range front {
			if i == j {
				continue
			}
			if q.Res.Runtime <= p.Res.Runtime && q.Res.AvgPowerW <= p.Res.AvgPowerW &&
				(q.Res.Runtime < p.Res.Runtime || q.Res.AvgPowerW < p.Res.AvgPowerW) {
				t.Fatal("front contains dominated point")
			}
		}
	}
	// Sorted by runtime; power must be non-increasing along the front.
	for i := 1; i < len(front); i++ {
		if front[i].Res.Runtime < front[i-1].Res.Runtime {
			t.Fatal("front not sorted by runtime")
		}
		if front[i].Res.AvgPowerW > front[i-1].Res.AvgPowerW {
			t.Fatal("front power not monotone")
		}
	}
	// Every space point is dominated by or equal to some front point.
	for _, p := range space {
		ok := false
		for _, q := range front {
			if q.Res.Runtime <= p.Res.Runtime && q.Res.AvgPowerW <= p.Res.AvgPowerW {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatal("space point not covered by front")
		}
	}
}

func TestEDPOptimalIsMinimum(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	space, err := Sweep(context.Background(), k, SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4, 16}, []int{1, 16}), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := space.EDPOptimal()
	if !ok {
		t.Fatal("EDPOptimal found nothing in a non-empty space")
	}
	for _, p := range space {
		if p.Res.EDPJs < best.Res.EDPJs {
			t.Fatal("EDPOptimal missed a better point")
		}
	}
}

func TestEDPOptimalEmptyReportsNotOK(t *testing.T) {
	if _, ok := (Space{}).EDPOptimal(); ok {
		t.Fatal("empty EDPOptimal claimed to find a point")
	}
	if _, ok := (Space)(nil).EDPOptimal(); ok {
		t.Fatal("nil-space EDPOptimal claimed to find a point")
	}
}

// TestFaultHeavySweepEmptySpace is the regression for the empty-space panic:
// an all-aborting fault configuration (every DMA descriptor times out with
// zero retries) legally empties the space through poisoned-point compaction,
// and the ranking path must degrade to ok=false instead of panicking.
func TestFaultHeavySweepEmptySpace(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cfgs := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4}, []int{1, 4})
	for i := range cfgs {
		// A one-picosecond descriptor timeout with no retries aborts every
		// transfer before its first bus transaction can complete.
		cfgs[i].Faults = fault.Config{Seed: 1, DMATimeout: sim.Picosecond, DMARetries: 0}
	}
	space, err := Sweep(context.Background(), k, cfgs, SweepOptions{})
	if err != nil {
		t.Fatalf("all-aborting sweep must skip points, not fail: %v", err)
	}
	if len(space) != 0 {
		t.Fatalf("space has %d points, want 0 (every point aborts)", len(space))
	}
	if _, ok := space.EDPOptimal(); ok {
		t.Fatal("EDPOptimal claimed a point in an emptied space")
	}
	if len(space.ParetoFront()) != 0 {
		t.Fatal("ParetoFront of an emptied space is non-empty")
	}
	if _, ok := space.FastestUnderPower(1e3); ok {
		t.Fatal("FastestUnderPower claimed a point in an emptied space")
	}
}

// TestSweepCtxCancellation pins the context-aware sweep contract: a
// cancelled context stops the workers at the next design-point boundary and
// surfaces ctx.Err() with no partial space.
func TestSweepCtxCancellation(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cfgs := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 2, 4, 8}, []int{1, 2, 4, 8})

	// Already-cancelled context: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, k, cfgs, SweepOptions{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}

	// Cancel mid-flight from the progress callback.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	space, err := Sweep(ctx, k, cfgs, SweepOptions{Workers: 2, Progress: func(done, total int) {
		if done == 2 {
			cancel()
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel returned %v, want context.Canceled", err)
	}
	if space != nil {
		t.Fatal("cancelled sweep returned a partial space")
	}

	// An expired deadline surfaces as DeadlineExceeded.
	ctx, cancel = context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := Sweep(ctx, k, cfgs, SweepOptions{Workers: 2}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired sweep returned %v, want context.DeadlineExceeded", err)
	}

	// A background context with an explicit pool matches the default sweep.
	a, err := Sweep(context.Background(), k, cfgs[:4], SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), k, cfgs[:4], SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two-worker sweep differs from default-pool sweep")
	}
}

func TestCacheConfigsSkipInvalid(t *testing.T) {
	cfgs := CacheConfigs(soc.DefaultConfig(), []int{1}, []int{2}, []int{64}, []int{1}, []int{8})
	// 2KB / 64B lines / 8-way = 4 sets: power of two, fine. But 2KB/64B
	// lines = 32 lines, 8-way -> 4 sets: valid. Try a genuinely bad one.
	for _, c := range cfgs {
		if c.Validate() != nil {
			t.Fatal("CacheConfigs produced invalid config")
		}
	}
}

func TestScenarioConfigs(t *testing.T) {
	opt := QuickAxes()
	for _, sc := range Scenarios() {
		cfgs := ScenarioConfigs(sc, opt)
		if len(cfgs) == 0 {
			t.Fatalf("%s: no configs", sc.Name)
		}
		for _, c := range cfgs {
			if c.Mem != sc.Mem || c.BusWidthBits != sc.BusBits {
				t.Fatalf("%s: config has wrong scenario fields", sc.Name)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
		}
	}
}

func TestPointMetrics(t *testing.T) {
	g := graphOf(t, "nw-nw")
	dmaCfg := soc.DefaultConfig()
	dmaCfg.Lanes, dmaCfg.Partitions, dmaCfg.SpadPorts = 4, 8, 1
	m := PointMetrics(Point{Cfg: dmaCfg}, g)
	if m.Lanes != 4 {
		t.Fatalf("lanes = %d", m.Lanes)
	}
	if m.SRAMKB <= 0 {
		t.Fatal("no SRAM capacity")
	}
	if m.LocalBW != 64 {
		t.Fatalf("local BW = %v, want 8 banks * 8 B", m.LocalBW)
	}

	cacheCfg := soc.DefaultConfig()
	cacheCfg.Mem = soc.Cache
	cacheCfg.CacheKB, cacheCfg.CachePorts = 8, 2
	mc := PointMetrics(Point{Cfg: cacheCfg}, g)
	// nw has Local matrices, so cache-design SRAM = cache + local spads.
	if mc.SRAMKB <= 8 {
		t.Fatalf("cache SRAM = %v, should include local arrays", mc.SRAMKB)
	}
	if mc.LocalBW != 16 {
		t.Fatalf("cache local BW = %v", mc.LocalBW)
	}
}

// TestCoDesignShrinksDesigns is the core Fig 1/Fig 9 shape: the co-designed
// EDP optimum uses no more lanes than the isolated optimum, and the
// isolated design deployed in-system has worse (or equal) EDP than the
// co-designed optimum.
func TestCoDesignShrinksDesigns(t *testing.T) {
	k := kernelOf(t, "stencil-stencil3d")
	opt := QuickAxes()
	isoSpace, err := Sweep(context.Background(), k, ScenarioConfigs(Scenarios()[0], opt), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	isoBest, ok := isoSpace.EDPOptimal()
	if !ok {
		t.Fatal("isolated sweep came back empty")
	}

	imp, err := EDPImprovement(k, isoBest, Scenarios()[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	if imp.EDPRatio < 1 {
		t.Fatalf("co-design made EDP worse: ratio %.2f", imp.EDPRatio)
	}
	if imp.CoBest.Cfg.Lanes > imp.IsolatedBest.Cfg.Lanes {
		t.Fatalf("co-designed optimum (%d lanes) more aggressive than isolated (%d)",
			imp.CoBest.Cfg.Lanes, imp.IsolatedBest.Cfg.Lanes)
	}
	t.Logf("stencil3d DMA-32b: isolated %d lanes x %d banks -> co %d lanes x %d banks, EDP ratio %.2fx",
		imp.IsolatedBest.Cfg.Lanes, imp.IsolatedBest.Cfg.Partitions,
		imp.CoBest.Cfg.Lanes, imp.CoBest.Cfg.Partitions, imp.EDPRatio)
}

// TestIsolatedPrefersParallel pins the motivation: in isolation, more
// lanes always look at least as fast, pushing the optimizer toward
// aggressive designs.
func TestIsolatedPrefersParallel(t *testing.T) {
	k := kernelOf(t, "stencil-stencil3d")
	space, err := Sweep(context.Background(), k, SpadConfigs(soc.DefaultConfig(),
		soc.Isolated, []int{1, 16}, []int{16}), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var t1, t16 sim.Tick
	for _, p := range space {
		if p.Cfg.Lanes == 1 {
			t1 = p.Res.Runtime
		} else {
			t16 = p.Res.Runtime
		}
	}
	if t16 >= t1 {
		t.Fatalf("16 lanes (%v) not faster than 1 (%v) in isolation", t16, t1)
	}
}

func TestFastestUnderPower(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	space, err := Sweep(context.Background(), k, SpadConfigs(soc.DefaultConfig(),
		soc.DMA, DefaultLanes(), []int{1, 4, 16}), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A generous budget admits the global fastest point.
	fastest, ok := space.FastestUnderPower(1e3)
	if !ok {
		t.Fatal("no design under an unlimited budget")
	}
	for _, p := range space {
		if p.Res.Runtime < fastest.Res.Runtime {
			t.Fatal("missed a faster design")
		}
	}
	// A tight budget forces a leaner, slower design.
	tight, ok := space.FastestUnderPower(fastest.Res.AvgPowerW / 2)
	if !ok {
		t.Skip("space has no design under half the fastest design's power")
	}
	if tight.Res.AvgPowerW > fastest.Res.AvgPowerW/2 {
		t.Fatal("budget violated")
	}
	if tight.Res.Runtime < fastest.Res.Runtime {
		t.Fatal("tight-budget design cannot be faster than the unconstrained optimum")
	}
	// An impossible budget returns no design.
	if _, ok := space.FastestUnderPower(1e-9); ok {
		t.Fatal("impossible budget satisfied")
	}
}

func TestLowestPowerWithin(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	space, err := Sweep(context.Background(), k, SpadConfigs(soc.DefaultConfig(),
		soc.DMA, DefaultLanes(), []int{1, 4, 16}), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p10, ok := space.LowestPowerWithin(1.10)
	if !ok {
		t.Fatal("no design within 10% of fastest")
	}
	p2x, ok := space.LowestPowerWithin(2)
	if !ok {
		t.Fatal("no design within 2x of fastest")
	}
	// Loosening the latency target can only lower (or keep) the power.
	if p2x.Res.AvgPowerW > p10.Res.AvgPowerW {
		t.Fatalf("2x target picked higher power (%v) than 1.1x (%v)",
			p2x.Res.AvgPowerW, p10.Res.AvgPowerW)
	}
	if _, ok := space.LowestPowerWithin(0.5); ok {
		t.Fatal("sub-1 slowdown accepted")
	}
}

// TestSweepSkipsPoisonedPoints pins the robustness contract: a design point
// whose run is aborted (here by an unmeetable watchdog tick budget) is
// dropped from the space instead of failing the whole sweep, while a
// genuinely invalid config still fails it.
func TestSweepSkipsPoisonedPoints(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cfgs := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4}, []int{1, 4})
	poisoned := 0
	for i := range cfgs {
		if i%2 == 1 {
			cfgs[i].WatchdogTicks = 10 // ten picoseconds: guaranteed abort
			poisoned++
		}
	}
	space, err := Sweep(context.Background(), k, cfgs, SweepOptions{})
	if err != nil {
		t.Fatalf("sweep failed instead of skipping: %v", err)
	}
	if len(space) != len(cfgs)-poisoned {
		t.Fatalf("space has %d points, want %d (= %d configs - %d poisoned)",
			len(space), len(cfgs)-poisoned, len(cfgs), poisoned)
	}
	for _, p := range space {
		if p.Res == nil {
			t.Fatalf("poisoned point survived compaction")
		}
		if p.Cfg.WatchdogTicks != 0 {
			t.Fatalf("a poisoned config produced a result")
		}
	}
	// The survivors still rank.
	best, ok := space.EDPOptimal()
	if !ok || best.Res == nil {
		t.Fatalf("EDPOptimal on the compacted space")
	}

	// A config error is not a poisoned point: it must still fail the sweep.
	bad := cfgs[:1]
	bad[0].Lanes = 0
	if _, err := Sweep(context.Background(), k, bad, SweepOptions{}); err == nil {
		t.Fatalf("sweep accepted an invalid config")
	}
}
