package dse

import (
	"crypto/sha256"
	"encoding/hex"

	"gem5aladdin/internal/soc"
)

// PointKey returns the content address of one design point: a hex SHA-256
// over the kernel name and the canonical byte encoding of cfg
// (soc.Config.AppendCanonical). Two design points share a key iff they would
// simulate identically — every semantically relevant Config field is part of
// the encoding, observability attachments are not — so the key is safe to
// use for result caching and cross-request deduplication.
func PointKey(kernel string, cfg soc.Config) string {
	h := sha256.New()
	h.Write([]byte(kernel))
	h.Write([]byte{0}) // kernel-name/config domain separator
	buf := make([]byte, 0, 512)
	h.Write(cfg.AppendCanonical(buf))
	return hex.EncodeToString(h.Sum(nil))
}
