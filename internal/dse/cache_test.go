package dse

import (
	"context"
	"reflect"
	"testing"
	"time"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/store"
)

func testStoreCache(t *testing.T, kernel string) *StoreCache {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return &StoreCache{Kernel: kernel, Store: st}
}

// TestCachedPointRoundTrip pins the durable point encoding: a real
// simulation result must survive encode/decode bit-identically — the
// property the kill-and-restart resume test leans on — and encoding must
// not mutate the caller's result even when an observer is attached.
func TestCachedPointRoundTrip(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cfg := soc.DefaultConfig()
	cfg.Mem = soc.DMA
	res, err := soc.Run(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.Config.Obs = obs.New(false) // live observer must be stripped, not stored

	data, err := EncodePoint(&CachedPoint{Result: res})
	if err != nil {
		t.Fatalf("EncodePoint: %v", err)
	}
	if res.Config.Obs == nil {
		t.Fatal("EncodePoint mutated the caller's result")
	}
	cp, ok, err := DecodePoint(data)
	if err != nil || !ok {
		t.Fatalf("DecodePoint: ok=%v err=%v", ok, err)
	}
	want := *res
	want.Config.Obs = nil
	if !reflect.DeepEqual(cp.Result, &want) {
		t.Fatal("decoded result differs from the simulated one")
	}

	// Failure records round-trip too.
	fdata, err := EncodePoint(&CachedPoint{Aborted: true, Kind: soc.AbortStall,
		Err: "soc: run aborted: stall", Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	fcp, ok, err := DecodePoint(fdata)
	if err != nil || !ok {
		t.Fatalf("decode failure record: ok=%v err=%v", ok, err)
	}
	if !fcp.Aborted || fcp.Kind != soc.AbortStall || fcp.Attempts != 3 {
		t.Fatalf("failure record mangled: %+v", fcp)
	}
}

func TestDecodePointRejectsForeignSchema(t *testing.T) {
	if _, ok, err := DecodePoint([]byte(`{"schema":999}`)); ok || err != nil {
		t.Fatalf("foreign schema: ok=%v err=%v, want miss", ok, err)
	}
	if _, _, err := DecodePoint([]byte(`not json`)); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

// TestSweepWriteThroughAndWarmStart is the core persistence contract: a
// sweep writes every point through to the store, and a second sweep against
// the same store serves everything from disk — zero new simulations, results
// bit-identical.
func TestSweepWriteThroughAndWarmStart(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cache := testStoreCache(t, "spmv-crs")
	cfgs := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4}, []int{1, 4})

	cold, err := Sweep(context.Background(), k, cfgs, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Store.Len() != len(cfgs) {
		t.Fatalf("store holds %d records, want %d", cache.Store.Len(), len(cfgs))
	}
	putsAfterCold := cache.Store.Stats().Puts

	warm, err := Sweep(context.Background(), k, cfgs, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Store.Stats().Puts; got != putsAfterCold {
		t.Fatalf("warm sweep re-simulated: puts %d -> %d", putsAfterCold, got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm-start results differ from cold run")
	}

	// A reopened store (fresh process) must serve the same space.
	dir := t.TempDir()
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_ = st2 // separate dir: confirm a different store really re-simulates
	miss, err := Sweep(context.Background(), k, cfgs,
		SweepOptions{Cache: &StoreCache{Kernel: "spmv-crs", Store: st2}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, miss) {
		t.Fatal("fresh-store sweep diverged from the original")
	}
}

// TestSweepIsolatedFailuresEnumerated mixes healthy configs with
// guaranteed-abort ones: the isolated sweep must complete over the
// survivors, enumerate every failure with its class, and still rank a
// Pareto front.
func TestSweepIsolatedFailuresEnumerated(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	good := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4}, []int{1, 4})
	cfgs := append([]soc.Config{}, good...)
	// A one-picosecond DMA descriptor timeout with zero retries aborts the
	// run before any transfer completes — the injector's give-up path.
	poison := good[0]
	poison.Faults = fault.Config{Seed: 7, DMATimeout: sim.Picosecond, DMARetries: 0}
	cfgs = append(cfgs, poison)
	// A ten-picosecond watchdog budget stalls every config.
	stalled := good[1]
	stalled.WatchdogTicks = 10
	cfgs = append(cfgs, stalled)

	space, failures, err := SweepIsolated(context.Background(), k, cfgs,
		SweepOptions{Retry: RetryPolicy{Max: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(space) != len(good) {
		t.Fatalf("survivors = %d, want %d", len(space), len(good))
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %d, want 2: %+v", len(failures), failures)
	}
	byIndex := map[int]PointFailure{}
	for _, f := range failures {
		byIndex[f.Index] = f
	}
	pf, ok := byIndex[len(good)]
	if !ok || pf.Kind != soc.AbortFault {
		t.Fatalf("poisoned point: %+v", pf)
	}
	if pf.Attempts != 3 {
		t.Fatalf("fault abort attempts = %d, want 3 (1 + Max retries)", pf.Attempts)
	}
	sf, ok := byIndex[len(good)+1]
	if !ok || sf.Kind != soc.AbortStall {
		t.Fatalf("stalled point: %+v", sf)
	}
	if sf.Attempts != 1 {
		t.Fatalf("stall retried: attempts = %d, want 1 (stalls are permanent)", sf.Attempts)
	}
	if len(space.ParetoFront()) == 0 {
		t.Fatal("no Pareto front over the survivors")
	}
	if _, ok := space.EDPOptimal(); !ok {
		t.Fatal("no EDP optimum over the survivors")
	}
}

// TestSweepIsolatedCachedFailuresReplay pins that stored failures are served
// from the store with their classification intact — a restarted job must not
// burn retry budget re-simulating known-poisoned points.
func TestSweepIsolatedCachedFailuresReplay(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cache := testStoreCache(t, "spmv-crs")
	cfgs := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1}, []int{1, 4})
	for i := range cfgs {
		cfgs[i].WatchdogTicks = 10
	}
	_, failures, err := SweepIsolated(context.Background(), k, cfgs, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != len(cfgs) {
		t.Fatalf("failures = %d, want %d", len(failures), len(cfgs))
	}
	puts := cache.Store.Stats().Puts

	_, replayed, err := SweepIsolated(context.Background(), k, cfgs, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Store.Stats().Puts; got != puts {
		t.Fatalf("replay re-simulated failed points: puts %d -> %d", puts, got)
	}
	if len(replayed) != len(failures) {
		t.Fatalf("replayed failures = %d, want %d", len(replayed), len(failures))
	}
	for i := range replayed {
		if replayed[i].Kind != failures[i].Kind {
			t.Fatalf("failure %d kind drifted: %q -> %q (classification must survive the store)",
				i, failures[i].Kind, replayed[i].Kind)
		}
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{Max: 5, Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if d := p.Delay(i + 1); d != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
	if d := (RetryPolicy{Max: 1}).Delay(1); d != 0 {
		t.Fatalf("zero-backoff Delay = %v", d)
	}
	if (RetryPolicy{}).Retryable(soc.AbortFault) {
		t.Fatal("zero policy must not retry")
	}
	if (RetryPolicy{Max: 1}).Retryable(soc.AbortStall) {
		t.Fatal("stalls must never be retryable")
	}
	if (RetryPolicy{Max: 1}).Retryable(soc.AbortSanitize) {
		t.Fatal("sanitizer violations must never be retryable")
	}
	if !(RetryPolicy{Max: 1}).Retryable(soc.AbortFault) {
		t.Fatal("fault aborts must be retryable under a positive budget")
	}
}
