package dse

import (
	"context"
	"testing"

	"gem5aladdin/internal/soc"
)

// TestWithFabricsReplicatesGrid checks the axis algebra: WithFabrics
// multiplies the grid kind-major without disturbing the base configs.
func TestWithFabricsReplicatesGrid(t *testing.T) {
	base := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4}, []int{1, 4})
	kinds := soc.FabricKinds()
	cfgs := WithFabrics(base, kinds)
	if len(cfgs) != len(base)*len(kinds) {
		t.Fatalf("grid size = %d, want %d", len(cfgs), len(base)*len(kinds))
	}
	for i, c := range cfgs {
		wantKind := kinds[i/len(base)]
		if c.Fabric.Kind != wantKind {
			t.Fatalf("config %d has fabric %v, want %v", i, c.Fabric.Kind, wantKind)
		}
		want := base[i%len(base)]
		want.Fabric.Kind = wantKind
		if c != want {
			t.Fatalf("config %d diverged from its base beyond the fabric kind", i)
		}
	}
	if got := WithFabrics(base, nil); len(got) != len(base) {
		t.Fatalf("empty kind list changed the grid: %d vs %d", len(got), len(base))
	}
}

// TestSweepFabricAxisWorkerInvariant is the determinism contract for the new
// axis: a sweep over every fabric backend must be bit-identical whether it
// runs on one worker or four, and distinct backends must price design points
// differently.
func TestSweepFabricAxisWorkerInvariant(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	base := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4}, []int{1, 4})
	cfgs := WithFabrics(base, soc.FabricKinds())

	serial, err := Sweep(context.Background(), k, cfgs, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(context.Background(), k, cfgs, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cfgs) || len(parallel) != len(cfgs) {
		t.Fatalf("space sizes %d/%d, want %d", len(serial), len(parallel), len(cfgs))
	}
	for i := range serial {
		if serial[i].Res.Runtime != parallel[i].Res.Runtime ||
			serial[i].Res.EDPJs != parallel[i].Res.EDPJs {
			t.Fatalf("point %d (%v) differs across worker counts",
				i, serial[i].Cfg.Fabric.Kind)
		}
	}

	// The same accelerator design must not be priced identically by every
	// interconnect: compare the first base config across the three kinds.
	per := len(base)
	r0 := serial[0*per].Res.Runtime
	if serial[1*per].Res.Runtime == r0 && serial[2*per].Res.Runtime == r0 {
		t.Error("crossbar and mesh runtimes both equal the bus runtime: fabric axis is inert")
	}
}

// TestPointKeySeparatesFabrics pins that the canonical hash distinguishes
// fabric kinds and parameters, so result caches never alias across backends.
func TestPointKeySeparatesFabrics(t *testing.T) {
	base := soc.DefaultConfig()
	keys := map[string]string{}
	for _, k := range soc.FabricKinds() {
		c := base
		c.Fabric.Kind = k
		key := PointKey("x", c)
		if prev, dup := keys[key]; dup {
			t.Fatalf("fabric %v collides with %s under PointKey", k, prev)
		}
		keys[key] = k.String()
	}
	c := base
	c.Fabric.Kind = soc.FabricMesh
	c.Fabric.MeshDim = 4
	if _, dup := keys[PointKey("x", c)]; dup {
		t.Fatal("mesh_dim is invisible to PointKey")
	}
	c = base
	c.Fabric.Kind = soc.FabricCrossbar
	c.Fabric.BurstLen = 8
	if _, dup := keys[PointKey("x", c)]; dup {
		t.Fatal("burst_len is invisible to PointKey")
	}
}

// TestSearchFabricAxis runs a small adaptive search with the fabric axis
// attached and checks it is deterministic and actually explores backends.
func TestSearchFabricAxis(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	space := SearchSpace{
		Base: soc.DefaultConfig(),
		Axes: []SearchAxis{
			{Name: "lanes", Values: []int{1, 2, 4, 8}},
			{Name: "partitions", Values: []int{1, 2, 4}},
			FabricAxis(),
		},
	}
	opts := SearchOptions{Seed: 3, Budget: 24, InitSamples: 8, RoundSize: 8, Workers: 2}
	a, err := Search(context.Background(), k, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(context.Background(), k, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluated != b.Evaluated || len(a.Front) != len(b.Front) {
		t.Fatalf("search with fabric axis nondeterministic: %d/%d pts, %d/%d front",
			a.Evaluated, b.Evaluated, len(a.Front), len(b.Front))
	}
	seen := map[soc.FabricKind]bool{}
	for _, p := range a.Points {
		seen[soc.FabricKind(p.Idx[2])] = true
	}
	if len(seen) < 2 {
		t.Errorf("search never left one fabric backend: %v", seen)
	}
}
