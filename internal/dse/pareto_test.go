package dse

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
)

// paretoFrontNaive is the O(n^2) reference implementation: a point is kept
// unless some other point is no worse on both axes and strictly better on
// at least one. Exact (runtime, power) duplicates never dominate each
// other, so both survive — the sweep implementation must agree.
func paretoFrontNaive(s Space) Space {
	var front Space
	for _, p := range s {
		dominated := false
		for _, q := range s {
			if q.Res.Runtime <= p.Res.Runtime && q.Res.AvgPowerW <= p.Res.AvgPowerW &&
				(q.Res.Runtime < p.Res.Runtime || q.Res.AvgPowerW < p.Res.AvgPowerW) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Res.Runtime < front[j].Res.Runtime })
	return front
}

type rtPow struct {
	rt sim.Tick
	pw float64
}

func frontKey(s Space) []rtPow {
	keys := make([]rtPow, len(s))
	for i, p := range s {
		keys[i] = rtPow{p.Res.Runtime, p.Res.AvgPowerW}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rt != keys[j].rt {
			return keys[i].rt < keys[j].rt
		}
		return keys[i].pw < keys[j].pw
	})
	return keys
}

// TestParetoFrontMatchesNaive cross-checks the O(n log n) sweep against
// the quadratic reference on random spaces with heavy tie and duplicate
// pressure (few distinct values force equal-runtime and equal-power
// columns, the cases a sweep implementation gets wrong).
func TestParetoFrontMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		distinct := 1 + rng.Intn(6)
		space := make(Space, n)
		for i := range space {
			space[i] = Point{Res: &soc.RunResult{
				Runtime:   sim.Tick(1 + rng.Intn(distinct)),
				AvgPowerW: float64(1 + rng.Intn(distinct)),
			}}
		}
		got, want := space.ParetoFront(), paretoFrontNaive(space)
		if len(got) != len(want) {
			t.Fatalf("trial %d: front size %d, reference %d", trial, len(got), len(want))
		}
		gk, wk := frontKey(got), frontKey(want)
		for i := range gk {
			if gk[i] != wk[i] {
				t.Fatalf("trial %d: front mismatch at %d: got %+v, want %+v", trial, i, gk[i], wk[i])
			}
		}
		// The sweep's output contract: sorted by runtime.
		for i := 1; i < len(got); i++ {
			if got[i].Res.Runtime < got[i-1].Res.Runtime {
				t.Fatalf("trial %d: front not sorted by runtime", trial)
			}
		}
	}
}

// TestParetoFrontDuplicatesSurvive pins the duplicate rule explicitly.
func TestParetoFrontDuplicatesSurvive(t *testing.T) {
	dup := &soc.RunResult{Runtime: 10, AvgPowerW: 1}
	space := Space{
		{Res: &soc.RunResult{Runtime: 10, AvgPowerW: 1}},
		{Res: dup},
		{Res: &soc.RunResult{Runtime: 20, AvgPowerW: 2}}, // dominated
		{Res: &soc.RunResult{Runtime: 5, AvgPowerW: 3}},  // frontier: faster, hungrier
	}
	front := space.ParetoFront()
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3 (both duplicates + the fast point)", len(front))
	}
}

// TestSweepWorkerCountInvariant requires the same results — same order,
// same values — regardless of pool size, and a monotone progress stream
// that ends at the full count.
func TestSweepWorkerCountInvariant(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	cfgs := SpadConfigs(soc.DefaultConfig(), soc.DMA, []int{1, 4}, []int{1, 4, 16})
	serial, err := Sweep(context.Background(), k, cfgs, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		var mu sync.Mutex
		var seen []int
		parallel, err := Sweep(context.Background(), k, cfgs, SweepOptions{Workers: workers, Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(cfgs) {
				t.Errorf("progress total = %d, want %d", total, len(cfgs))
			}
			seen = append(seen, done)
		}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d points, serial %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if serial[i].Cfg != parallel[i].Cfg ||
				serial[i].Res.Runtime != parallel[i].Res.Runtime ||
				serial[i].Res.EDPJs != parallel[i].Res.EDPJs ||
				serial[i].Res.Energy != parallel[i].Res.Energy {
				t.Fatalf("workers=%d: point %d diverged from serial sweep", workers, i)
			}
		}
		if len(seen) != len(cfgs) || seen[len(seen)-1] != len(cfgs) {
			t.Fatalf("workers=%d: progress stream %v, want %d monotone reports", workers, seen, len(cfgs))
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] != seen[i-1]+1 {
				t.Fatalf("workers=%d: progress stream not monotone: %v", workers, seen)
			}
		}
	}
}
