// Package dse is the design-space explorer behind the paper's co-design
// studies: it sweeps accelerator design points (Fig 3's parameter table)
// over a kernel's DDDG, extracts Pareto frontiers and EDP-optimal designs
// (Figs 1 and 8), compares microarchitectural parameters across design
// scenarios (Fig 9), and computes the EDP improvement of co-design over
// isolated optimization (Figs 1 and 10).
package dse

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/trace"
)

// ErrEmptySpace reports a design-space query that needs at least one
// evaluated point but found none. Heavy fault injection can legally empty a
// space — every design point aborts and is compacted away — so callers that
// rank a swept space must be prepared for it; EDPImprovement wraps this
// sentinel when a scenario sweep comes back empty.
var ErrEmptySpace = errors.New("dse: empty design space")

// Point is one evaluated design.
type Point struct {
	Cfg soc.Config
	Res *soc.RunResult
}

// Space is a set of evaluated designs.
type Space []Point

// SweepOptions tunes how Sweep runs its worker pool. The zero value is the
// default sweep: GOMAXPROCS workers, no progress reporting, no persistence,
// no retries.
type SweepOptions struct {
	// Workers sizes the pool; <= 0 selects GOMAXPROCS. Each worker owns a
	// reusable soc.Runner, so the simulation state warmed up on one design
	// point is recycled on the next — the fixed pool exists for that reuse,
	// not just to bound concurrency (a goroutine per config would give
	// every point a cold fabric).
	Workers int
	// Progress, when non-nil, is called after each completed point with
	// (done, total); calls are serialized but may come from any worker.
	Progress func(done, total int)
	// Cache, when non-nil, serves previously stored point outcomes and
	// writes fresh ones through to the result store, making the sweep
	// restartable: a rerun against the same store directory re-simulates
	// only the points the interrupted run never finished.
	Cache *StoreCache
	// Retry bounds per-point retries of fault-injection aborts before the
	// point is recorded as failed. The zero value never retries.
	Retry RetryPolicy
	// cached, when non-nil, counts the points served from Cache instead of
	// simulated — Search uses it to report simulated-vs-replayed honestly
	// without letting store contents influence control flow.
	cached *atomic.Int64
}

// Sweep evaluates every config over the compiled kernel k, in parallel
// across the option pool. The artifact is shared read-only by every worker
// — each run owns a private simulation engine, so results are deterministic
// regardless of scheduling.
//
// Cancellation (or a deadline) on ctx stops the workers at the next
// design-point boundary and returns ctx.Err(). A single design point is
// never interrupted mid-simulation — points run in the tens of
// milliseconds, so the boundary check bounds the cancellation latency —
// and a cancelled sweep returns no partial space. Long-running services use
// this to release worker goroutines when a client goes away.
//
// When ctx carries an obs span (obs.WithSpan), every design point gets a
// child span on a per-worker track, so a traced sweep renders one Perfetto
// row per worker with its sequence of point simulations. An untraced
// context costs one nil span check per point.
//
// A design point whose run the robustness layer aborted (watchdog stall,
// sanitizer violation, fault-injection retry exhaustion — soc.ErrAborted)
// is treated as poisoned and dropped from the space rather than failing the
// whole sweep; any other error still aborts.
func Sweep(ctx context.Context, k *soc.Compiled, cfgs []soc.Config, opts SweepOptions) (Space, error) {
	space, _, err := sweepCore(ctx, k, cfgs, opts, false)
	return space, err
}

// sweepCore is the shared sweep engine. In isolated mode every per-point
// failure becomes a PointFailure record; otherwise aborts are compacted away
// and a genuine simulation error fails the whole sweep (the historical Sweep
// contract).
func sweepCore(ctx context.Context, k *soc.Compiled, cfgs []soc.Config, opts SweepOptions, isolate bool) (Space, []PointFailure, error) {
	workers := opts.Workers
	progress := opts.Progress
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	parent := obs.SpanFromContext(ctx)
	out := make(Space, len(cfgs))
	fails := make([]*PointFailure, len(cfgs))
	errs := make([]error, len(cfgs))
	var next, done atomic.Int64
	var mu sync.Mutex // serializes progress callbacks
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(track int) {
			defer wg.Done()
			var r soc.Runner
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				ps := parent.ChildOn("point", track)
				ps.SetAttr("index", i)
				ps.SetAttr("lanes", cfgs[i].Lanes)

				// Serve the point from the durable store when possible —
				// stored failures replay as cheaply as stored successes.
				var res *soc.RunResult
				var err error
				var cachedKind string
				attempts := 0
				cached := false
				if opts.Cache != nil {
					if cp, ok, gerr := opts.Cache.Get(cfgs[i]); gerr == nil && ok {
						cached = true
						ps.SetAttr("cached", true)
						if opts.cached != nil {
							opts.cached.Add(1)
						}
						if cp.Aborted {
							// Replay the stored failure; the typed error
							// chain is gone, so the classified kind rides
							// alongside.
							err = fmt.Errorf("%s: %w", cp.Err, soc.ErrAborted)
							cachedKind = cp.Kind
							attempts = cp.Attempts
						} else {
							res = cp.Result
						}
					}
				}
				if !cached {
					res, attempts, err = runPoint(ctx, &r, k, cfgs[i], opts.Retry)
				}

				switch {
				case err == nil:
					out[i] = Point{Cfg: cfgs[i], Res: res}
					ps.SetAttr("cycles", res.Cycles)
					if !cached && opts.Cache != nil {
						opts.Cache.Put(cfgs[i], &CachedPoint{Result: res})
					}
				case errors.Is(err, soc.ErrAborted):
					kind := cachedKind
					if kind == "" {
						kind = soc.AbortKind(err)
					}
					ps.SetAttr("aborted", true)
					ps.SetAttr("kind", kind)
					fails[i] = &PointFailure{Index: i, Cfg: cfgs[i], Kind: kind,
						Err: err.Error(), Attempts: attempts}
					if !cached && opts.Cache != nil {
						opts.Cache.Put(cfgs[i], &CachedPoint{Aborted: true, Kind: kind,
							Err: err.Error(), Attempts: attempts})
					}
				case isolate:
					// A genuine simulation error isolates to this point but
					// is never persisted: it may be environmental, and a
					// future run deserves a fresh attempt.
					ps.SetAttr("error", err.Error())
					fails[i] = &PointFailure{Index: i, Cfg: cfgs[i], Kind: "error",
						Err: err.Error(), Attempts: attempts}
				default:
					errs[i] = fmt.Errorf("dse: config %d: %w", i, err)
					ps.SetAttr("error", err.Error())
				}
				ps.EndSpan()
				if progress != nil {
					mu.Lock()
					progress(int(done.Add(1)), len(cfgs))
					mu.Unlock()
				}
			}
		}(w + 1)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	var failures []PointFailure
	for _, f := range fails {
		if f != nil {
			failures = append(failures, *f)
		}
	}
	// Compact away failed points (nil Res).
	kept := out[:0]
	for _, p := range out {
		if p.Res != nil {
			kept = append(kept, p)
		}
	}
	return kept, failures, nil
}

// ParetoFront returns the points not dominated in (runtime, power): a
// point survives if no other point is at least as fast AND at least as
// low-power, with one strict. The result is sorted by runtime.
//
// One sort plus a min-power sweep over the sorted order, O(n log n): after
// sorting by (runtime, power), any dominator of a point precedes it, so a
// point is dominated iff some earlier point has strictly lower power, or
// equal power with strictly lower runtime (the duplicate-coordinates case,
// where exact ties survive together).
func (s Space) ParetoFront() Space {
	if len(s) == 0 {
		return nil
	}
	order := make([]int, len(s))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		p, q := s[order[a]].Res, s[order[b]].Res
		if p.Runtime != q.Runtime {
			return p.Runtime < q.Runtime
		}
		if p.AvgPowerW != q.AvgPowerW {
			return p.AvgPowerW < q.AvgPowerW
		}
		return order[a] < order[b]
	})
	var front Space
	minPower := s[order[0]].Res.AvgPowerW
	minPowerRuntime := s[order[0]].Res.Runtime
	for _, idx := range order {
		p := s[idx].Res
		dominated := minPower < p.AvgPowerW ||
			(minPower == p.AvgPowerW && minPowerRuntime < p.Runtime)
		if !dominated {
			front = append(front, s[idx])
		}
		if p.AvgPowerW < minPower {
			minPower, minPowerRuntime = p.AvgPowerW, p.Runtime
		}
	}
	return front
}

// EDPOptimal returns the point with the minimum energy-delay product. ok is
// false on an empty space — which a fault-heavy sweep can legally produce
// after poisoned-point compaction — never a panic.
func (s Space) EDPOptimal() (Point, bool) {
	if len(s) == 0 {
		return Point{}, false
	}
	best := s[0]
	for _, p := range s[1:] {
		if p.Res.EDPJs < best.Res.EDPJs {
			best = p
		}
	}
	return best, true
}

// FastestUnderPower returns the lowest-runtime design whose average
// accelerator power stays within budgetW — the constrained-optimization
// question a designer with a thermal envelope asks of the space. ok is
// false when no design fits the budget.
func (s Space) FastestUnderPower(budgetW float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range s {
		if p.Res.AvgPowerW > budgetW {
			continue
		}
		if !found || p.Res.Runtime < best.Res.Runtime {
			best = p
			found = true
		}
	}
	return best, found
}

// LowestPowerWithin returns the lowest-power design no slower than
// slowdown times the space's fastest design — the question an
// energy-constrained designer with a latency target asks. slowdown must
// be >= 1.
func (s Space) LowestPowerWithin(slowdown float64) (Point, bool) {
	if len(s) == 0 || slowdown < 1 {
		return Point{}, false
	}
	fastest := s[0].Res.Runtime
	for _, p := range s[1:] {
		if p.Res.Runtime < fastest {
			fastest = p.Res.Runtime
		}
	}
	limit := float64(fastest) * slowdown
	var best Point
	found := false
	for _, p := range s {
		if float64(p.Res.Runtime) > limit {
			continue
		}
		if !found || p.Res.AvgPowerW < best.Res.AvgPowerW {
			best = p
			found = true
		}
	}
	return best, found
}

// --- Sweep axes ---

// DefaultLanes is the Fig 3 datapath-lane sweep.
func DefaultLanes() []int { return []int{1, 2, 4, 8, 16} }

// DefaultPartitions is the Fig 3 scratchpad-partitioning sweep.
func DefaultPartitions() []int { return []int{1, 2, 4, 8, 16} }

// DefaultCacheKB is the Fig 3 cache-size sweep.
func DefaultCacheKB() []int { return []int{2, 4, 8, 16, 32, 64} }

// DefaultCachePorts is the Fig 3 cache-port sweep.
func DefaultCachePorts() []int { return []int{1, 2, 4, 8} }

// DefaultCacheLines is the Fig 3 cache-line sweep.
func DefaultCacheLines() []int { return []int{16, 32, 64} }

// DefaultCacheAssocs is the Fig 3 associativity sweep.
func DefaultCacheAssocs() []int { return []int{4, 8} }

// SpadConfigs enumerates lanes x partitions for Isolated or DMA designs.
func SpadConfigs(base soc.Config, mem soc.MemKind, lanes, partitions []int) []soc.Config {
	var out []soc.Config
	for _, l := range lanes {
		for _, p := range partitions {
			c := base
			c.Mem = mem
			c.Lanes = l
			c.Partitions = p
			out = append(out, c)
		}
	}
	return out
}

// CacheConfigs enumerates cache design points.
func CacheConfigs(base soc.Config, lanes, sizesKB, lines, ports, assocs []int) []soc.Config {
	var out []soc.Config
	for _, l := range lanes {
		for _, kb := range sizesKB {
			for _, ln := range lines {
				for _, pt := range ports {
					for _, as := range assocs {
						c := base
						c.Mem = soc.Cache
						c.Lanes = l
						c.CacheKB = kb
						c.CacheLineBytes = ln
						c.CachePorts = pt
						c.CacheAssoc = as
						if c.Validate() != nil {
							continue // e.g. 2KB/64B/8-way has too few sets
						}
						out = append(out, c)
					}
				}
			}
		}
	}
	return out
}

// Scenario is one of the paper's four design contexts (Sec V-B).
type Scenario struct {
	Name    string
	Mem     soc.MemKind
	BusBits int
}

// Scenarios returns the Fig 9/10 design scenarios: isolated, co-designed
// DMA over a 32-bit bus, co-designed cache over 32- and 64-bit buses.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "isolated", Mem: soc.Isolated, BusBits: 32},
		{Name: "dma-32b", Mem: soc.DMA, BusBits: 32},
		{Name: "cache-32b", Mem: soc.Cache, BusBits: 32},
		{Name: "cache-64b", Mem: soc.Cache, BusBits: 64},
	}
}

// SweepAxes sizes a scenario sweep. Quick trims the cache cross-product
// for test-speed; Full is the paper's Fig 3 table.
type SweepAxes struct {
	Lanes      []int
	Partitions []int
	CacheKB    []int
	CacheLines []int
	CachePorts []int
	CacheAssoc []int
	// Fabrics, when non-empty, crosses the grid with interconnect
	// topologies (the fabric axis). Empty keeps the scenario's default
	// fabric — the round-robin bus — so legacy sweeps are unchanged.
	Fabrics []soc.FabricKind
}

// FullAxes is the complete Fig 3 sweep.
func FullAxes() SweepAxes {
	return SweepAxes{
		Lanes:      DefaultLanes(),
		Partitions: DefaultPartitions(),
		CacheKB:    DefaultCacheKB(),
		CacheLines: DefaultCacheLines(),
		CachePorts: DefaultCachePorts(),
		CacheAssoc: DefaultCacheAssocs(),
	}
}

// QuickAxes is a pruned sweep for tests and fast iteration: the lane
// and size axes are kept (they drive the co-design conclusions), line size
// and associativity pin to their defaults.
func QuickAxes() SweepAxes {
	return SweepAxes{
		Lanes:      []int{1, 4, 16},
		Partitions: []int{1, 4, 16},
		CacheKB:    []int{2, 8, 32},
		CacheLines: []int{32},
		CachePorts: []int{1, 4},
		CacheAssoc: []int{4},
	}
}

// ScenarioConfigs builds the config list for one scenario.
func ScenarioConfigs(sc Scenario, opt SweepAxes) []soc.Config {
	base := soc.DefaultConfig()
	base.BusWidthBits = sc.BusBits
	switch sc.Mem {
	case soc.Isolated, soc.DMA:
		return WithFabrics(SpadConfigs(base, sc.Mem, opt.Lanes, opt.Partitions), opt.Fabrics)
	default:
		return WithFabrics(CacheConfigs(base, opt.Lanes, opt.CacheKB, opt.CacheLines,
			opt.CachePorts, opt.CacheAssoc), opt.Fabrics)
	}
}

// WithFabrics crosses a config list with interconnect topologies: each
// config is replicated once per kind, in kind order then config order (so
// per-fabric slices of the result stay contiguous). An empty kind list
// returns cfgs untouched — the round-robin bus baseline.
func WithFabrics(cfgs []soc.Config, kinds []soc.FabricKind) []soc.Config {
	if len(kinds) == 0 {
		return cfgs
	}
	out := make([]soc.Config, 0, len(cfgs)*len(kinds))
	for _, k := range kinds {
		for _, c := range cfgs {
			c.Fabric.Kind = k
			out = append(out, c)
		}
	}
	return out
}

// --- Fig 9 microarchitectural metrics ---

// Metrics are the three Kiviat axes of Fig 9, normalized later against the
// isolated design.
type Metrics struct {
	Lanes   int
	SRAMKB  float64 // local SRAM capacity (scratchpads, or cache + local spads)
	LocalBW float64 // local memory bandwidth to the lanes, bytes per cycle
}

// PointMetrics extracts the Kiviat axes from a design point.
func PointMetrics(p Point, g *ddg.Graph) Metrics {
	m := Metrics{Lanes: p.Cfg.Lanes}
	const word = 8.0
	switch p.Cfg.Mem {
	case soc.Cache:
		m.SRAMKB = float64(p.Cfg.CacheKB)
		for _, a := range g.Trace.Arrays {
			if a.Dir == trace.Local {
				m.SRAMKB += float64(a.Bytes()) / 1024
			}
		}
		m.LocalBW = float64(p.Cfg.CachePorts) * word
	default:
		for _, a := range g.Trace.Arrays {
			m.SRAMKB += float64(a.Bytes()) / 1024
		}
		m.LocalBW = float64(p.Cfg.Partitions*p.Cfg.SpadPorts) * word
	}
	return m
}

// --- Fig 1 / Fig 10 EDP improvement ---

// Improvement quantifies what co-design buys: the isolated-optimal design
// is re-evaluated under the system scenario (its naive deployment), and
// compared against the scenario's own EDP optimum.
type Improvement struct {
	Scenario     Scenario
	IsolatedBest Point // isolated-optimal parameters evaluated in-system
	CoBest       Point // the scenario's own EDP optimum
	EDPRatio     float64
}

// EDPImprovement runs the comparison for one scenario. isolatedOpt is the
// EDP optimum of the isolated sweep.
func EDPImprovement(k *soc.Compiled, isolatedOpt Point, sc Scenario, opt SweepAxes) (Improvement, error) {
	cfgs := ScenarioConfigs(sc, opt)
	space, err := Sweep(context.Background(), k, cfgs, SweepOptions{})
	if err != nil {
		return Improvement{}, err
	}
	coBest, ok := space.EDPOptimal()
	if !ok {
		return Improvement{}, fmt.Errorf("dse: scenario %s: %w", sc.Name, ErrEmptySpace)
	}

	// Deploy the isolated design naively in the same system: keep its
	// lanes/partitions, take the scenario's memory system with default
	// local-memory parameters scaled to match the isolated bandwidth.
	naive := coBest.Cfg
	naive.Lanes = isolatedOpt.Cfg.Lanes
	naive.Partitions = isolatedOpt.Cfg.Partitions
	if sc.Mem == soc.Cache {
		// An isolated designer sizes the cache to hold the whole
		// footprint and matches ports to the scratchpad bandwidth.
		in, out := k.FootprintBytes()
		need := (in + out + 1023) / 1024
		naive.CacheKB = 64
		for _, kb := range DefaultCacheKB() {
			if uint64(kb) >= need {
				naive.CacheKB = kb
				break
			}
		}
		ports := isolatedOpt.Cfg.Partitions * isolatedOpt.Cfg.SpadPorts
		naive.CachePorts = 1
		for _, p := range DefaultCachePorts() {
			if p <= ports {
				naive.CachePorts = p
			}
		}
		naive.CacheLineBytes = 32
		naive.CacheAssoc = 4
	}
	naiveRes, err := soc.Run(k, naive)
	if err != nil {
		return Improvement{}, err
	}
	imp := Improvement{
		Scenario:     sc,
		IsolatedBest: Point{Cfg: naive, Res: naiveRes},
		CoBest:       coBest,
		EDPRatio:     naiveRes.EDPJs / coBest.Res.EDPJs,
	}
	return imp, nil
}
