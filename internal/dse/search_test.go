package dse

import (
	"context"
	"math"
	"reflect"
	"testing"

	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
)

// searchTestSpace is a small, fully-enumerable DMA space (900 points) used
// across the search tests: large enough for an interesting front, small
// enough to sweep exhaustively as the reference.
func searchTestSpace() SearchSpace {
	base := soc.DefaultConfig()
	base.Mem = soc.DMA
	return SearchSpace{
		Base: base,
		Axes: []SearchAxis{
			{Name: "lanes", Values: []int{1, 2, 4, 8, 16}},
			{Name: "partitions", Values: []int{1, 2, 4, 8, 16}},
			{Name: "spad_ports", Values: []int{1, 2, 4}},
			{Name: "pipelined_dma", Values: []int{0, 1}},
			{Name: "dma_triggered", Values: []int{0, 1}},
			{Name: "dma_chunk", Values: []int{1024, 4096, 16384}},
		},
	}
}

func TestSearchSpaceCodec(t *testing.T) {
	sp := searchTestSpace()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 900 {
		t.Fatalf("size = %d, want 900", sp.Size())
	}
	// Rank/Unrank are inverse bijections over the whole cross product.
	for r := uint64(0); r < sp.Size(); r++ {
		idx := sp.Unrank(r)
		if got := sp.Rank(idx); got != r {
			t.Fatalf("Rank(Unrank(%d)) = %d", r, got)
		}
	}
	// The codec reaches distinct configs: spot-check two neighbors.
	if reflect.DeepEqual(sp.Config(sp.Unrank(0)), sp.Config(sp.Unrank(1))) {
		t.Fatal("adjacent ranks produced identical configs")
	}

	bad := SearchSpace{Base: soc.DefaultConfig(),
		Axes: []SearchAxis{{Name: "warp_drive", Values: []int{1}}}}
	if bad.Validate() == nil {
		t.Fatal("unknown axis accepted")
	}
	empty := SearchSpace{Base: soc.DefaultConfig(),
		Axes: []SearchAxis{{Name: "lanes"}}}
	if empty.Validate() == nil {
		t.Fatal("empty axis accepted")
	}
	if (SearchSpace{}).Validate() == nil {
		t.Fatal("axis-free space accepted")
	}

	// Fingerprint separates every ingredient of the search problem.
	fp := sp.Fingerprint("spmv-crs", 1)
	if sp.Fingerprint("spmv-crs", 2) == fp {
		t.Fatal("fingerprint ignores seed")
	}
	if sp.Fingerprint("fft-transpose", 1) == fp {
		t.Fatal("fingerprint ignores kernel")
	}
	other := searchTestSpace()
	other.Axes[0].Values = []int{1, 2, 4}
	if other.Fingerprint("spmv-crs", 1) == fp {
		t.Fatal("fingerprint ignores axis values")
	}
	other2 := searchTestSpace()
	other2.Base.BusWidthBits = 64
	if other2.Fingerprint("spmv-crs", 1) == fp {
		t.Fatal("fingerprint ignores base config")
	}
}

// TestSearchDeterministic pins the determinism contract: the same seed over
// the same space yields a bit-identical evaluation sequence and final front,
// regardless of worker count.
func TestSearchDeterministic(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	sp := searchTestSpace()
	opts := SearchOptions{Seed: 7, Budget: 48, InitSamples: 24, RoundSize: 12}

	a, err := Search(context.Background(), k, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1 // same seed, serial pool
	b, err := Search(context.Background(), k, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("evaluation sequence differs across runs with the same seed")
	}
	if !reflect.DeepEqual(a.Front, b.Front) {
		t.Fatal("final front differs across runs with the same seed")
	}
	if a.Evaluated != 48 || a.Evaluated != len(a.Points) {
		t.Fatalf("evaluated = %d (points %d), want the full budget 48",
			a.Evaluated, len(a.Points))
	}
	if a.Simulated != a.Evaluated {
		t.Fatalf("cacheless search reported %d simulated of %d evaluated",
			a.Simulated, a.Evaluated)
	}

	// A different seed explores a different sequence (sanity that the seed
	// is actually wired in).
	opts.Workers = 0
	opts.Seed = 8
	c, err := Search(context.Background(), k, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Points, c.Points) {
		t.Fatal("different seeds produced identical evaluation sequences")
	}
}

// TestSearchDedupe forces mutation collisions: a 12-point space searched
// with a 60-point budget and oversized rounds must evaluate each PointKey at
// most once and stop when the space is exhausted, not when the budget is.
func TestSearchDedupe(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	base := soc.DefaultConfig()
	base.Mem = soc.DMA
	sp := SearchSpace{Base: base, Axes: []SearchAxis{
		{Name: "lanes", Values: []int{1, 2, 4, 8}},
		{Name: "partitions", Values: []int{1, 4, 16}},
	}}
	res, err := Search(context.Background(), k, sp, SearchOptions{
		Seed: 3, Budget: 60, InitSamples: 8, RoundSize: 32, Patience: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated > int(sp.Size()) {
		t.Fatalf("evaluated %d points in a %d-point space", res.Evaluated, sp.Size())
	}
	if !res.Converged {
		t.Fatal("exhausted space not reported as converged")
	}
	seen := map[string]bool{}
	for _, p := range res.Points {
		key := PointKey("", sp.Config(p.Idx))
		if seen[key] {
			t.Fatalf("point %v evaluated twice", p.Idx)
		}
		seen[key] = true
	}
	// With budget > space size and unbounded patience, dedup is the only
	// thing stopping re-simulation: the whole space must be covered.
	if res.Evaluated != int(sp.Size()) {
		t.Fatalf("evaluated %d of %d reachable points", res.Evaluated, sp.Size())
	}
}

// TestSearchResume kills a search mid-run (context cancellation after two
// checkpointed rounds) and verifies the rerun against the same store resumes
// to the bit-identical front an uninterrupted run produces, replaying the
// completed rounds' progress and re-simulating almost nothing.
func TestSearchResume(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	sp := searchTestSpace()
	opts := SearchOptions{Seed: 11, Budget: 48, InitSamples: 16, RoundSize: 8}

	// Uninterrupted reference, no store: the determinism contract says
	// store contents must not change the outcome.
	var refProgress []SearchProgress
	refOpts := opts
	refOpts.Progress = func(p SearchProgress) { refProgress = append(refProgress, p) }
	ref, err := Search(context.Background(), k, sp, refOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after the second completed round.
	cache := testStoreCache(t, "spmv-crs")
	ctx, cancel := context.WithCancel(context.Background())
	intOpts := opts
	intOpts.Cache = cache
	intOpts.CheckpointKey = "search/test"
	rounds := 0
	intOpts.Progress = func(p SearchProgress) {
		if rounds++; rounds == 2 {
			cancel()
		}
	}
	if _, err := Search(ctx, k, sp, intOpts); err == nil {
		t.Fatal("cancelled search returned no error")
	}
	cancel()

	// Resume under the same store and checkpoint key.
	var resProgress []SearchProgress
	resOpts := opts
	resOpts.Cache = cache
	resOpts.CheckpointKey = "search/test"
	resOpts.Progress = func(p SearchProgress) { resProgress = append(resProgress, p) }
	res, err := Search(context.Background(), k, sp, resOpts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res.Points, ref.Points) {
		t.Fatal("resumed evaluation sequence differs from the uninterrupted run")
	}
	if len(res.Front) != len(ref.Front) {
		t.Fatalf("resumed front has %d points, reference %d", len(res.Front), len(ref.Front))
	}
	for i := range res.Front {
		if !reflect.DeepEqual(res.Front[i].Cfg, ref.Front[i].Cfg) ||
			res.Front[i].Res.Runtime != ref.Front[i].Res.Runtime ||
			res.Front[i].Res.AvgPowerW != ref.Front[i].Res.AvgPowerW {
			t.Fatalf("resumed front point %d differs from reference", i)
		}
	}
	// The first two rounds replay from the checkpoint; the rest run live.
	if len(resProgress) != len(refProgress) {
		t.Fatalf("resumed progress has %d rounds, reference %d",
			len(resProgress), len(refProgress))
	}
	if !resProgress[0].Replayed || !resProgress[1].Replayed {
		t.Fatal("checkpointed rounds not marked replayed")
	}
	for i := range resProgress {
		if resProgress[i].Round != refProgress[i].Round ||
			resProgress[i].Evaluated != refProgress[i].Evaluated ||
			resProgress[i].FrontSize != refProgress[i].FrontSize ||
			!reflect.DeepEqual(resProgress[i].Front, refProgress[i].Front) {
			t.Fatalf("progress round %d diverges between resumed and reference", i)
		}
	}
	// Everything the interrupted run evaluated replays from the store.
	if res.Simulated >= res.Evaluated {
		t.Fatalf("resume re-simulated everything: %d of %d", res.Simulated, res.Evaluated)
	}

	// Rerunning the finished search is a pure replay: same front, nothing
	// simulated, converged state restored from the checkpoint.
	again, err := Search(context.Background(), k, sp, resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Points, ref.Points) || again.Simulated != 0 {
		t.Fatalf("finished-search replay simulated %d points", again.Simulated)
	}

	// A checkpoint from a different seed must not be trusted: the
	// fingerprint mismatch forces a fresh start.
	otherOpts := resOpts
	otherOpts.Seed = 12
	otherOpts.Progress = nil
	other, err := Search(context.Background(), k, sp, otherOpts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other.Points, ref.Points) {
		t.Fatal("mismatched-fingerprint checkpoint was reused")
	}
}

// TestSearchHypervolumeEpsilon is the headline time-to-front gate: on the
// fully-enumerable 900-point space, the search must recover a front within
// a fixed hypervolume epsilon of the exhaustive front while evaluating at
// least 10x fewer design points.
func TestSearchHypervolumeEpsilon(t *testing.T) {
	k := kernelOf(t, "spmv-crs")
	sp := searchTestSpace()

	// Exhaustive reference front over the whole cross product.
	cfgs := make([]soc.Config, 0, sp.Size())
	for r := uint64(0); r < sp.Size(); r++ {
		cfg := sp.Config(sp.Unrank(r))
		if cfg.Validate() != nil {
			continue
		}
		cfgs = append(cfgs, cfg)
	}
	grid, err := Sweep(context.Background(), k, cfgs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Reference point: just beyond the worst evaluated design, so every
	// point contributes and the epsilon is measured over the whole span.
	refS, refW := 0.0, 0.0
	for _, p := range grid {
		refS = math.Max(refS, p.Res.Seconds())
		refW = math.Max(refW, p.Res.AvgPowerW)
	}
	refS *= 1.01
	refW *= 1.01
	hvGrid := grid.Hypervolume(refS, refW)
	if hvGrid <= 0 {
		t.Fatal("degenerate exhaustive hypervolume")
	}

	res, err := Search(context.Background(), k, sp, SearchOptions{
		Seed: 1, Budget: 90, InitSamples: 24, RoundSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated*10 > len(cfgs) {
		t.Fatalf("search evaluated %d points; 10x target allows %d",
			res.Evaluated, len(cfgs)/10)
	}
	hvSearch := res.Front.Hypervolume(refS, refW)
	const epsilon = 0.02
	if hvSearch < (1-epsilon)*hvGrid {
		t.Fatalf("search hypervolume %.6g below (1-%.2g) of exhaustive %.6g (ratio %.4f)",
			hvSearch, epsilon, hvGrid, hvSearch/hvGrid)
	}
	t.Logf("hypervolume ratio %.4f with %d/%d points simulated (%.1fx fewer)",
		hvSearch/hvGrid, res.Evaluated, len(cfgs), float64(len(cfgs))/float64(res.Evaluated))
}

// TestHypervolume pins the 2D hypervolume computation on hand-built fronts.
func TestHypervolume(t *testing.T) {
	pt := func(seconds, watts float64) Point {
		return Point{Res: &soc.RunResult{
			Runtime:   sim.Tick(seconds * 1e12),
			AvgPowerW: watts,
		}}
	}
	// Two-point staircase against ref (10s, 10W):
	// (2s, 4W) contributes (10-2)*(10-4) = 48; (6s, 1W) adds (10-6)*(4-1) = 12.
	s := Space{pt(2, 4), pt(6, 1)}
	if hv := s.Hypervolume(10, 10); math.Abs(hv-60) > 1e-12 {
		t.Fatalf("hv = %v, want 60", hv)
	}
	// Dominated points change nothing.
	s2 := append(Space{pt(7, 8), pt(3, 5)}, s...)
	if hv := s2.Hypervolume(10, 10); math.Abs(hv-60) > 1e-12 {
		t.Fatalf("hv with dominated points = %v, want 60", hv)
	}
	// Points at or beyond the reference contribute nothing.
	s3 := append(Space{pt(12, 0.5), pt(2, 11)}, s...)
	if hv := s3.Hypervolume(10, 10); math.Abs(hv-60) > 1e-12 {
		t.Fatalf("hv with out-of-reference points = %v, want 60", hv)
	}
	if hv := (Space{}).Hypervolume(10, 10); hv != 0 {
		t.Fatalf("empty-space hv = %v", hv)
	}
}
