package dse

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/store"
)

// pointSchema versions the on-disk CachedPoint encoding. Bump it when the
// JSON layout changes incompatibly; decoded records with a different schema
// are treated as cache misses, never as errors.
const pointSchema = 1

// CachedPoint is the durable outcome of one design point — either a
// completed simulation result or a classified terminal failure. It is what
// the result store persists under the point's PointKey, so a restarted
// service replays failures as cheaply as successes instead of re-simulating
// known-poisoned configs.
type CachedPoint struct {
	Schema int `json:"schema"`
	// Aborted marks a robustness-layer abort (soc.ErrAborted): Kind holds
	// the soc.AbortKind label, Err the abort message, Attempts how many
	// runs the retry policy spent. Result is nil.
	Aborted  bool   `json:"aborted,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Err      string `json:"err,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	// Result is the completed simulation result; its Config.Obs is always
	// nil (observers don't serialize and are not part of the point's
	// identity).
	Result *soc.RunResult `json:"result,omitempty"`
}

// EncodePoint serializes a cached point. The result's observer attachment is
// stripped from the stored copy — it holds live callbacks — without mutating
// the caller's RunResult.
func EncodePoint(cp *CachedPoint) ([]byte, error) {
	enc := *cp
	enc.Schema = pointSchema
	if enc.Result != nil && enc.Result.Config.Obs != nil {
		res := *enc.Result
		res.Config.Obs = nil
		enc.Result = &res
	}
	return json.Marshal(&enc)
}

// DecodePoint parses an encoded point. ok is false (with a nil error) when
// the record was written by a different schema version.
func DecodePoint(data []byte) (*CachedPoint, bool, error) {
	var cp CachedPoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, false, fmt.Errorf("dse: decoding cached point: %w", err)
	}
	if cp.Schema != pointSchema {
		return nil, false, nil
	}
	return &cp, true, nil
}

// StoreCache adapts a result store to design-point lookups for one kernel:
// points are keyed by PointKey(Kernel, cfg), so the same store directory can
// hold points from many kernels (and the service's job manifests) without
// collisions.
type StoreCache struct {
	Kernel string
	Store  *store.Store
}

// Get looks up the cached outcome for cfg. A missing key, a schema mismatch,
// or an undecodable record all report ok=false; only store I/O surfaces as
// an error.
func (c *StoreCache) Get(cfg soc.Config) (*CachedPoint, bool, error) {
	data, ok, err := c.Store.Get(PointKey(c.Kernel, cfg))
	if err != nil || !ok {
		return nil, false, err
	}
	cp, ok, err := DecodePoint(data)
	if err != nil || !ok {
		// A corrupt or foreign-schema record is a miss: the point will be
		// re-simulated and the record overwritten.
		return nil, false, nil
	}
	return cp, true, nil
}

// Put persists the outcome for cfg, superseding any previous record.
func (c *StoreCache) Put(cfg soc.Config, cp *CachedPoint) error {
	data, err := EncodePoint(cp)
	if err != nil {
		return err
	}
	return c.Store.Put(PointKey(c.Kernel, cfg), data)
}

// RetryPolicy bounds how a sweep retries an aborted design point before
// recording it as failed. Only fault-injection aborts are retried: the
// injector's give-up path is the operational analogue of a transient error
// (and the retry budget is how a service would ride out one). Stalls and
// sanitizer violations are deterministic properties of the config and fail
// immediately.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying.
	Max int
	// Backoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff. 0 retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 1s.
	MaxBackoff time.Duration
}

// Retryable reports whether an abort of the given kind is worth another
// attempt under this policy.
func (p RetryPolicy) Retryable(kind string) bool {
	return p.Max > 0 && kind == soc.AbortFault
}

// Delay returns the backoff before retry number n (1-based).
func (p RetryPolicy) Delay(n int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = time.Second
	}
	d := p.Backoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// runPoint runs one design point under the retry policy. It returns the
// result, the number of attempts spent, and the final error (nil on
// success). The context bounds backoff sleeps; a run itself is never
// interrupted mid-simulation.
func runPoint(ctx context.Context, r *soc.Runner, k *soc.Compiled, cfg soc.Config, p RetryPolicy) (*soc.RunResult, int, error) {
	attempts := 0
	for {
		attempts++
		res, err := r.Run(k, cfg)
		if err == nil {
			return res, attempts, nil
		}
		kind := soc.AbortKind(err)
		if kind == "" || !p.Retryable(kind) || attempts > p.Max {
			return nil, attempts, err
		}
		if d := p.Delay(attempts); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, attempts, err
			case <-t.C:
			}
		}
		if ctx.Err() != nil {
			return nil, attempts, err
		}
	}
}

// PointFailure describes one design point that could not be evaluated: the
// config, the failure class (a soc.Abort* label, or "error" for a
// non-abort simulation error), and how many attempts the retry policy spent.
type PointFailure struct {
	// Index is the point's position in the swept config slice.
	Index    int
	Cfg      soc.Config
	Kind     string
	Err      string
	Attempts int
}

// SweepIsolated evaluates every config like Sweep, but degrades any per-point
// failure — robustness-layer aborts and genuine simulation errors alike — to
// a PointFailure record instead of dropping it silently or failing the whole
// sweep. The returned space holds the surviving points (Pareto fronts and
// EDP ranking work over it as usual); the failure list enumerates the rest.
// Only a context cancellation fails the call.
//
// With SweepOptions.Cache set, previously stored outcomes (successes and
// classified failures) are served from the store and fresh outcomes are
// written through, so an interrupted sweep resumes from the last completed
// point when rerun against the same store.
func SweepIsolated(ctx context.Context, k *soc.Compiled, cfgs []soc.Config, opts SweepOptions) (Space, []PointFailure, error) {
	return sweepCore(ctx, k, cfgs, opts, true)
}
