package dse_test

// Sweep-level benchmarks: design-space-exploration throughput is the
// headline metric of this simulator (the paper's co-design figures each
// sweep hundreds of design points per kernel), so the benchmarks here
// measure whole sweeps — fabric construction, run, and result collection
// per design point — rather than single runs. The numbers recorded in
// BENCH_sim.json come from:
//
//	go test ./internal/dse/ -bench . -benchmem
import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/store"
)

// sweepConfigs builds the quick-mode DMA + cache design points for one
// kernel: the mixed workload a scenario study (Fig 9/10) runs per kernel.
func sweepConfigs() []soc.Config {
	base := soc.DefaultConfig()
	opt := dse.QuickAxes()
	cfgs := dse.SpadConfigs(base, soc.DMA, opt.Lanes, opt.Partitions)
	cfgs = append(cfgs, dse.CacheConfigs(base, opt.Lanes, opt.CacheKB,
		opt.CacheLines, opt.CachePorts, opt.CacheAssoc)...)
	return cfgs
}

// BenchmarkSweepQuick is the headline sweep-throughput benchmark: a
// quick-mode DMA + cache sweep (27 design points) over fft-transpose,
// parallel across CPUs. design-points/s is the metric that gates every
// co-design study.
func BenchmarkSweepQuick(b *testing.B) {
	k := soc.Compile(ddg.Build(machsuite.MustBuild("fft-transpose")))
	cfgs := sweepConfigs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(space) != len(cfgs) {
			b.Fatalf("sweep dropped points: %d of %d", len(space), len(cfgs))
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkSweepQuickSerial is the single-worker variant: per-design-point
// cost without parallel speedup, which isolates the effect of state reuse
// from scheduling.
func BenchmarkSweepQuickSerial(b *testing.B) {
	k := soc.Compile(ddg.Build(machsuite.MustBuild("fft-transpose")))
	cfgs := sweepConfigs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweepSerial(k, cfgs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// sweepSerial evaluates every config on one pooled worker.
func sweepSerial(k *soc.Compiled, cfgs []soc.Config) (dse.Space, error) {
	return dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{Workers: 1})
}

// BenchmarkSweepQuickPersist is BenchmarkSweepQuick with the durable result
// store writing through: the persistence-overhead gate (target <= 5% vs the
// in-memory baseline). Each iteration sweeps under a distinct kernel label so
// every point is a store miss — the benchmark measures encode+append cost,
// not warm replay.
func BenchmarkSweepQuickPersist(b *testing.B) {
	k := soc.Compile(ddg.Build(machsuite.MustBuild("fft-transpose")))
	cfgs := sweepConfigs()
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := &dse.StoreCache{Kernel: fmt.Sprintf("fft-transpose/%d", i), Store: st}
		space, err := dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if len(space) != len(cfgs) {
			b.Fatalf("sweep dropped points: %d of %d", len(space), len(cfgs))
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkSweepQuickPersistWarm replays the whole sweep from disk: the
// restart path. Every point is a store hit, so this bounds how fast a
// crashed or restarted sweep catches back up to where it died.
func BenchmarkSweepQuickPersistWarm(b *testing.B) {
	k := soc.Compile(ddg.Build(machsuite.MustBuild("fft-transpose")))
	cfgs := sweepConfigs()
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	cache := &dse.StoreCache{Kernel: "fft-transpose", Store: st}
	if _, err := dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if len(space) != len(cfgs) {
			b.Fatalf("sweep dropped points: %d of %d", len(space), len(cfgs))
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// searchBenchSpace is the fully-enumerable 900-point DMA space the
// search-vs-grid comparison runs over (mirrors the search test space).
func searchBenchSpace() dse.SearchSpace {
	base := soc.DefaultConfig()
	base.Mem = soc.DMA
	return dse.SearchSpace{
		Base: base,
		Axes: []dse.SearchAxis{
			{Name: "lanes", Values: []int{1, 2, 4, 8, 16}},
			{Name: "partitions", Values: []int{1, 2, 4, 8, 16}},
			{Name: "spad_ports", Values: []int{1, 2, 4}},
			{Name: "pipelined_dma", Values: []int{0, 1}},
			{Name: "dma_triggered", Values: []int{0, 1}},
			{Name: "dma_chunk", Values: []int{1024, 4096, 16384}},
		},
	}
}

// BenchmarkSearchVsGrid is the time-to-front comparison behind the
// search_time_to_front entry in BENCH_sim.json: "grid" simulates the whole
// enumerable space exhaustively and extracts the Pareto front; "search" runs
// the adaptive engine with a 10x-smaller budget that the hypervolume-epsilon
// regression test pins to within 2% of the exhaustive front quality. Both
// report points-simulated/op so the 10x shows up next to the wall-clock.
func BenchmarkSearchVsGrid(b *testing.B) {
	k := soc.Compile(ddg.Build(machsuite.MustBuild("spmv-crs")))
	sp := searchBenchSpace()
	var cfgs []soc.Config
	for r := uint64(0); r < sp.Size(); r++ {
		cfg := sp.Config(sp.Unrank(r))
		if cfg.Validate() != nil {
			continue
		}
		cfgs = append(cfgs, cfg)
	}
	b.Run("grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			space, err := dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if len(space.ParetoFront()) == 0 {
				b.Fatal("empty frontier")
			}
		}
		b.ReportMetric(float64(len(cfgs)), "points/op")
	})
	b.Run("search", func(b *testing.B) {
		b.ReportAllocs()
		simulated := 0
		for i := 0; i < b.N; i++ {
			res, err := dse.Search(context.Background(), k, sp, dse.SearchOptions{
				Seed: 1, Budget: 90, InitSamples: 24, RoundSize: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Front) == 0 {
				b.Fatal("empty frontier")
			}
			simulated = res.Simulated
		}
		b.ReportMetric(float64(simulated), "points/op")
	})
}

// BenchmarkParetoFront measures frontier extraction at Fig 3 scale
// (thousands of evaluated points).
func BenchmarkParetoFront(b *testing.B) {
	space := syntheticSpace(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(space.ParetoFront()) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// syntheticSpace builds a deterministic pseudo-random space with realistic
// runtime/power spreads.
func syntheticSpace(n int) dse.Space {
	rng := rand.New(rand.NewSource(42))
	space := make(dse.Space, n)
	for i := range space {
		space[i] = dse.Point{Res: &soc.RunResult{
			Runtime:   sim.Tick(1e6 + rng.Intn(1e9)),
			AvgPowerW: 0.001 + rng.Float64()*0.1,
		}}
	}
	return space
}
