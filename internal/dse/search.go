package dse

// Adaptive Pareto-guided search: the layer that replaces exhaustive grids
// over design spaces of 10^5-10^6 points that the grid sweeper cannot touch.
// The engine is round-based: a coarse seeded sample, then iterative
// refinement that mutates configs near the current Pareto front, driven by a
// splitmix64-seeded RNG so the same seed yields a bit-identical evaluation
// sequence and final front. Frontier state checkpoints to the result store
// after every round, so a killed search resumes under its original job ID
// and converges to the identical front.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/soc"
)

// --- Search space ---

// SearchAxis is one named dimension of a SearchSpace: a design parameter and
// the ordered list of values it may take. Axis names come from the fixed
// registry below (axisSetters); SearchSpace.Validate rejects unknown names,
// so a space description survives serialization without carrying code.
type SearchAxis struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// axisSetters maps axis names to Config fields. Values are plain ints on the
// wire; boolean axes treat nonzero as true, accel_mhz scales to Hz.
var axisSetters = map[string]func(*soc.Config, int){
	"lanes":         func(c *soc.Config, v int) { c.Lanes = v },
	"partitions":    func(c *soc.Config, v int) { c.Partitions = v },
	"spad_ports":    func(c *soc.Config, v int) { c.SpadPorts = v },
	"cache_kb":      func(c *soc.Config, v int) { c.CacheKB = v },
	"cache_line":    func(c *soc.Config, v int) { c.CacheLineBytes = v },
	"cache_ports":   func(c *soc.Config, v int) { c.CachePorts = v },
	"cache_assoc":   func(c *soc.Config, v int) { c.CacheAssoc = v },
	"mshrs":         func(c *soc.Config, v int) { c.MSHRs = v },
	"prefetch":      func(c *soc.Config, v int) { c.Prefetch = v != 0 },
	"pipelined_dma": func(c *soc.Config, v int) { c.PipelinedDMA = v != 0 },
	"dma_triggered": func(c *soc.Config, v int) { c.DMATriggered = v != 0 },
	"dma_chunk":     func(c *soc.Config, v int) { c.DMAChunkBytes = uint32(v) },
	"bus_bits":      func(c *soc.Config, v int) { c.BusWidthBits = v },
	"accel_mhz":     func(c *soc.Config, v int) { c.AccelHz = float64(v) * 1e6 },
	"fabric":        func(c *soc.Config, v int) { c.Fabric.Kind = soc.FabricKind(v) },
	"burst_len":     func(c *soc.Config, v int) { c.Fabric.BurstLen = v },
	"mesh_dim":      func(c *soc.Config, v int) { c.Fabric.MeshDim = v },
}

// FabricAxis is the fabric-topology search axis over every backend
// (values are soc.FabricKind ordinals: bus, crossbar, mesh).
func FabricAxis() SearchAxis {
	kinds := soc.FabricKinds()
	vals := make([]int, len(kinds))
	for i, k := range kinds {
		vals[i] = int(k)
	}
	return SearchAxis{Name: "fabric", Values: vals}
}

// SearchSpace describes a design space for adaptive search: a base config
// (memory kind, bus, faults, everything the axes leave alone) and the axes
// the search varies. It is a superset of the grid sweeper's SweepAxes — any
// Config field with a registered axis name can become a search dimension —
// and its cross product routinely reaches 10^5-10^6 points.
type SearchSpace struct {
	Base soc.Config
	Axes []SearchAxis
}

// Validate checks the space description: every axis must have a registered
// name and at least one value.
func (sp SearchSpace) Validate() error {
	if len(sp.Axes) == 0 {
		return errors.New("dse: search space has no axes")
	}
	for _, a := range sp.Axes {
		if _, ok := axisSetters[a.Name]; !ok {
			return fmt.Errorf("dse: unknown search axis %q", a.Name)
		}
		if len(a.Values) == 0 {
			return fmt.Errorf("dse: search axis %q has no values", a.Name)
		}
	}
	return nil
}

// Size returns the number of points in the cross product (including points
// Config validation will later reject as infeasible).
func (sp SearchSpace) Size() uint64 {
	n := uint64(1)
	for _, a := range sp.Axes {
		n *= uint64(len(a.Values))
	}
	return n
}

// Config materializes the design point at the given axis-value indices.
func (sp SearchSpace) Config(idx []int) soc.Config {
	c := sp.Base
	for i, a := range sp.Axes {
		axisSetters[a.Name](&c, a.Values[idx[i]])
	}
	return c
}

// Rank maps axis indices to the point's lexicographic rank in the cross
// product — the stable point codec the checkpoint format builds on. Unrank
// inverts it.
func (sp SearchSpace) Rank(idx []int) uint64 {
	r := uint64(0)
	for i, a := range sp.Axes {
		r = r*uint64(len(a.Values)) + uint64(idx[i])
	}
	return r
}

// Unrank maps a lexicographic rank back to axis indices.
func (sp SearchSpace) Unrank(r uint64) []int {
	idx := make([]int, len(sp.Axes))
	for i := len(sp.Axes) - 1; i >= 0; i-- {
		m := uint64(len(sp.Axes[i].Values))
		idx[i] = int(r % m)
		r /= m
	}
	return idx
}

// Fingerprint content-addresses the search problem: the kernel, the base
// config's canonical encoding, every axis, and the seed. Checkpoints carry
// it so a resume against a different space, kernel, or seed starts fresh
// instead of silently mixing incompatible frontier state.
func (sp SearchSpace) Fingerprint(kernel string, seed uint64) string {
	h := sha256.New()
	h.Write([]byte("dse.SearchSpace/v1"))
	h.Write([]byte(kernel))
	h.Write([]byte{0})
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write(sp.Base.AppendCanonical(nil))
	for _, a := range sp.Axes {
		h.Write([]byte(a.Name))
		h.Write([]byte{0})
		for _, v := range a.Values {
			binary.BigEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultSearchAxes returns the large search space for a memory system:
// the full Fig 3 grid axes plus the parameters the grid sweeper never
// touches (clock, MSHRs, prefetch, DMA mode bits, bus width). The cache
// cross product is ~10^5 points, far beyond exhaustive reach.
func DefaultSearchAxes(mem soc.MemKind) []SearchAxis {
	common := []SearchAxis{
		{Name: "lanes", Values: []int{1, 2, 4, 8, 16, 32}},
		{Name: "accel_mhz", Values: []int{100, 200, 400}},
		{Name: "bus_bits", Values: []int{32, 64}},
	}
	if mem == soc.Cache {
		return append(common,
			SearchAxis{Name: "cache_kb", Values: []int{2, 4, 8, 16, 32, 64}},
			SearchAxis{Name: "cache_line", Values: []int{16, 32, 64}},
			SearchAxis{Name: "cache_ports", Values: []int{1, 2, 4, 8}},
			SearchAxis{Name: "cache_assoc", Values: []int{1, 2, 4, 8, 16}},
			SearchAxis{Name: "mshrs", Values: []int{4, 8, 16, 32}},
			SearchAxis{Name: "prefetch", Values: []int{0, 1}},
		)
	}
	return append(common,
		SearchAxis{Name: "partitions", Values: []int{1, 2, 4, 8, 16, 32}},
		SearchAxis{Name: "spad_ports", Values: []int{1, 2, 4}},
		SearchAxis{Name: "pipelined_dma", Values: []int{0, 1}},
		SearchAxis{Name: "dma_triggered", Values: []int{0, 1}},
		SearchAxis{Name: "dma_chunk", Values: []int{1024, 4096, 16384}},
	)
}

// --- Options, progress, result ---

// SearchOptions tunes the adaptive search. Zero values select defaults.
type SearchOptions struct {
	// Seed drives the splitmix64 RNG behind sampling and mutation. The
	// same seed over the same space yields a bit-identical evaluation
	// sequence and final front, independent of worker count.
	Seed uint64
	// Budget caps the number of candidates the search evaluates (its
	// simulation budget on a cold store). Deliberately counted in
	// evaluated candidates, not fresh simulations: a resumed search
	// replays stored points but walks the identical sequence, which is
	// what keeps resume bit-identical. Defaults to 512.
	Budget int
	// InitSamples sizes the round-0 coarse sample. Defaults to
	// min(64, Budget).
	InitSamples int
	// RoundSize is the number of fresh candidates per refinement round.
	// Defaults to 32.
	RoundSize int
	// Patience stops the search after this many consecutive rounds that
	// leave the Pareto front unchanged. Defaults to 3.
	Patience int
	// Workers sizes the evaluation pool, as in SweepOptions.
	Workers int
	// Retry bounds per-point retries of fault-injection aborts.
	Retry RetryPolicy
	// Cache serves previously stored point outcomes and writes fresh ones
	// through, exactly as in SweepOptions; with a populated store a
	// resumed or repeated search replays points instead of re-simulating.
	Cache *StoreCache
	// CheckpointKey, when non-empty (requires Cache), persists the
	// frontier state under this key in Cache.Store after every round. A
	// later Search with the same key, space, kernel, and seed restores the
	// state and continues; a fingerprint mismatch starts fresh.
	CheckpointKey string
	// Progress, when non-nil, is called after every completed round — and,
	// on resume, once per restored round (Replayed=true) before the live
	// rounds continue, so a consumer rebuilding a stream sees the same
	// sequence an uninterrupted run produced.
	Progress func(SearchProgress)
}

func (o *SearchOptions) setDefaults() {
	if o.Budget <= 0 {
		o.Budget = 512
	}
	if o.InitSamples <= 0 {
		o.InitSamples = 64
	}
	if o.InitSamples > o.Budget {
		o.InitSamples = o.Budget
	}
	if o.RoundSize <= 0 {
		o.RoundSize = 32
	}
	if o.Patience <= 0 {
		o.Patience = 3
	}
}

// SearchPoint is one evaluated candidate in compact, serializable form: its
// axis-value indices and objectives. Failed candidates (robustness aborts,
// simulation errors) keep their slot with Failed set so dedup survives a
// resume without re-simulating known-poisoned points.
type SearchPoint struct {
	Idx     []int   `json:"i"`
	Failed  bool    `json:"failed,omitempty"`
	Runtime int64   `json:"runtime,omitempty"` // simulated ticks (ps)
	PowerW  float64 `json:"power_w,omitempty"`
	EDPJs   float64 `json:"edp_js,omitempty"`
}

// SearchProgress reports one completed round. Round, Evaluated, FrontSize,
// and Front are deterministic for a given (space, kernel, seed, budget);
// Simulated varies with store contents (a resumed search replays points) and
// Replayed marks rounds re-emitted from a checkpoint.
type SearchProgress struct {
	Round     int
	Evaluated int
	Simulated int
	FrontSize int
	Front     []SearchPoint
	Replayed  bool
}

// SearchResult is the outcome of a search.
type SearchResult struct {
	// Front is the final Pareto front with full simulation results,
	// sorted by runtime. Because EDP = power x runtime^2, the EDP optimum
	// of everything evaluated always lies on this front.
	Front Space
	// Points is every evaluated candidate in evaluation order — the
	// sequence the determinism contract fixes.
	Points []SearchPoint
	// Rounds counts completed rounds (round 0 is the coarse sample).
	Rounds int
	// Evaluated counts candidates evaluated; Simulated counts the subset
	// that actually simulated (the rest replayed from the store).
	Evaluated int
	Simulated int
	// SpaceSize is the cross-product size of the searched space.
	SpaceSize uint64
	// Converged reports that the front went stale (Patience rounds with
	// no change) or the space was exhausted, rather than the budget
	// running out.
	Converged bool
}

// --- Seeded RNG ---

// searchRNG is a splitmix64 stream: one uint64 of state, advanced by the
// golden-ratio increment and finalized by mix64-style avalanche. The state
// alone checkpoints the whole stream position.
type searchRNG struct{ state uint64 }

func (r *searchRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// --- Checkpoint format ---

// searchSchema versions the checkpoint encoding; mismatched records are
// ignored (fresh start), never an error.
const searchSchema = 1

// searchState is the durable frontier state written after every round: the
// RNG position, the stall counter, per-round cumulative evaluation counts,
// and every evaluated candidate with its objectives. Fronts are not stored —
// the front after round r is recomputed from the archive prefix, which keeps
// the record compact and impossible to desynchronize.
type searchState struct {
	Schema      int           `json:"schema"`
	Fingerprint string        `json:"fingerprint"`
	Round       int           `json:"round"`
	RNG         uint64        `json:"rng"`
	Stale       int           `json:"stale"`
	RoundEvals  []int         `json:"round_evals"`
	Points      []SearchPoint `json:"points"`
}

// --- Engine ---

// candidate is one archive entry: the compact point plus the in-memory
// result when this process simulated it (nil after a resume).
type candidate struct {
	SearchPoint
	cfg soc.Config
	key string
	res *soc.RunResult
}

// Search runs the adaptive Pareto-guided search over the space: a coarse
// seeded sample, then rounds of mutation around the current front until the
// budget is spent, the front stalls for Patience rounds, or the space is
// exhausted. Candidates are deduplicated by PointKey before simulation, so
// mutation collisions and resumed rounds never re-simulate a point.
//
// Determinism contract: the same (kernel, space, seed, budget, round sizes)
// produce a bit-identical candidate sequence and final front regardless of
// worker count or store contents. Cancellation behaves as in Sweep: the
// search stops at the next design-point boundary and returns ctx.Err().
//
// When ctx carries an obs span, every round becomes a child span (with the
// per-point spans nested under it), so a traced search renders its rounds as
// one Perfetto group each.
func Search(ctx context.Context, k *soc.Compiled, space SearchSpace, opts SearchOptions) (*SearchResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	kernel := ""
	if opts.Cache != nil {
		kernel = opts.Cache.Kernel
	}
	fp := space.Fingerprint(kernel, opts.Seed)

	var (
		rng        = searchRNG{state: opts.Seed}
		archive    []candidate
		seen       = map[string]int{} // PointKey -> archive index
		roundEvals []int
		round      int
		stale      int
		simulated  int
	)
	// Resume: restore the frontier state checkpointed by an earlier run of
	// the same search, then replay its progress so stream consumers see the
	// identical round sequence.
	if st := loadSearchState(opts, fp); st != nil {
		round, stale, roundEvals = st.Round, st.Stale, st.RoundEvals
		rng.state = st.RNG
		archive = make([]candidate, len(st.Points))
		for i, p := range st.Points {
			cfg := space.Config(p.Idx)
			key := PointKey(kernel, cfg)
			archive[i] = candidate{SearchPoint: p, cfg: cfg, key: key}
			seen[key] = i
		}
		if opts.Progress != nil {
			for r, cum := range roundEvals {
				opts.Progress(SearchProgress{
					Round:     r,
					Evaluated: cum,
					Simulated: simulated,
					FrontSize: len(frontOf(archive[:cum])),
					Front:     frontPoints(archive[:cum]),
					Replayed:  true,
				})
			}
		}
	}

	parent := obs.SpanFromContext(ctx)
	size := space.Size()
	converged := false
	for {
		if len(archive) >= opts.Budget {
			break
		}
		if round > 0 && stale >= opts.Patience {
			converged = true
			break
		}
		target := opts.RoundSize
		if round == 0 {
			target = opts.InitSamples
		}
		if rem := opts.Budget - len(archive); target > rem {
			target = rem
		}
		front := frontOf(archive)
		fresh := generate(&rng, space, kernel, seen, archive, front, target, size)
		if len(fresh) == 0 {
			// The mutation neighborhood and random sampling are exhausted:
			// everything reachable is already evaluated.
			converged = true
			break
		}

		rs := parent.Child("search-round")
		rs.SetAttr("round", round)
		rs.SetAttr("candidates", len(fresh))
		cfgs := make([]soc.Config, len(fresh))
		for i, c := range fresh {
			cfgs[i] = c.cfg
		}
		var cachedHits atomic.Int64
		spc, fails, err := sweepCore(obs.WithSpan(ctx, rs), k, cfgs, SweepOptions{
			Workers: opts.Workers,
			Cache:   opts.Cache,
			Retry:   opts.Retry,
			cached:  &cachedHits,
		}, true)
		if err != nil {
			rs.EndSpan()
			return nil, err
		}
		simulated += len(fresh) - int(cachedHits.Load())

		// Merge in candidate order: surviving points appear in request
		// order, failures carry their index.
		failed := map[int]bool{}
		for _, f := range fails {
			failed[f.Index] = true
		}
		si := 0
		for i := range fresh {
			c := fresh[i]
			if failed[i] {
				c.Failed = true
			} else {
				p := spc[si]
				si++
				c.res = p.Res
				c.Runtime = int64(p.Res.Runtime)
				c.PowerW = p.Res.AvgPowerW
				c.EDPJs = p.Res.EDPJs
			}
			seen[c.key] = len(archive)
			archive = append(archive, c)
		}

		newFront := frontOf(archive)
		if sameFront(front, newFront, archive) {
			stale++
		} else {
			stale = 0
		}
		round++
		roundEvals = append(roundEvals, len(archive))
		rs.SetAttr("evaluated", len(archive))
		rs.SetAttr("front", len(newFront))
		rs.EndSpan()

		saveSearchState(opts, fp, &searchState{
			Schema:      searchSchema,
			Fingerprint: fp,
			Round:       round,
			RNG:         rng.state,
			Stale:       stale,
			RoundEvals:  roundEvals,
			Points:      archivePoints(archive),
		})
		if opts.Progress != nil {
			opts.Progress(SearchProgress{
				Round:     round - 1,
				Evaluated: len(archive),
				Simulated: simulated,
				FrontSize: len(newFront),
				Front:     frontPoints(archive),
			})
		}
	}

	frontIdx := frontOf(archive)
	if len(frontIdx) == 0 {
		return nil, fmt.Errorf("dse: search evaluated %d points, none survived: %w",
			len(archive), ErrEmptySpace)
	}
	frontSpace, err := materialize(ctx, k, archive, frontIdx, opts.Cache)
	if err != nil {
		return nil, err
	}
	return &SearchResult{
		Front:     frontSpace,
		Points:    archivePoints(archive),
		Rounds:    round,
		Evaluated: len(archive),
		Simulated: simulated,
		SpaceSize: size,
		Converged: converged,
	}, nil
}

// generate produces up to target fresh candidates: deduplicated by PointKey
// against everything already evaluated and within the batch, validated, and
// in a deterministic order. With a non-empty front it mutates front members
// (one or two axis steps, occasionally a jump) and mixes in one uniform
// immigrant per eight slots; with an empty front (round 0, or every point so
// far failed) it samples uniformly.
func generate(rng *searchRNG, space SearchSpace, kernel string, seen map[string]int,
	archive []candidate, front []int, target int, size uint64) []candidate {
	var fresh []candidate
	batch := map[string]bool{}
	maxTries := target * 64
	for tries := 0; len(fresh) < target && tries < maxTries; tries++ {
		var idx []int
		if len(front) == 0 || rng.next()%8 == 0 {
			idx = space.Unrank(rng.next() % size)
		} else {
			parent := archive[front[int(rng.next()%uint64(len(front)))]]
			idx = mutate(rng, space, parent.Idx)
		}
		cfg := space.Config(idx)
		if cfg.Validate() != nil {
			continue // infeasible corner of the cross product
		}
		key := PointKey(kernel, cfg)
		if _, dup := seen[key]; dup || batch[key] {
			continue // mutation collision or already-evaluated point
		}
		batch[key] = true
		fresh = append(fresh, candidate{
			SearchPoint: SearchPoint{Idx: idx},
			cfg:         cfg,
			key:         key,
		})
	}
	return fresh
}

// mutate perturbs one or two axes of the parent: usually a single step along
// the axis's ordered values (reflecting at the ends), occasionally a jump to
// a uniform value, which keeps the search local around the front without
// trapping it there.
func mutate(rng *searchRNG, space SearchSpace, parent []int) []int {
	out := append([]int(nil), parent...)
	n := 1 + int(rng.next()%2)
	for i := 0; i < n; i++ {
		a := int(rng.next() % uint64(len(space.Axes)))
		m := len(space.Axes[a].Values)
		if m == 1 {
			continue
		}
		switch rng.next() % 4 {
		case 0, 1: // step up
			if out[a]+1 < m {
				out[a]++
			} else {
				out[a]--
			}
		case 2: // step down
			if out[a] > 0 {
				out[a]--
			} else {
				out[a]++
			}
		default: // jump
			out[a] = int(rng.next() % uint64(m))
		}
	}
	return out
}

// frontOf returns the archive indices of the (runtime, power) Pareto front
// among non-failed entries, sorted by (runtime, power, archive order) — the
// same dominance and tie rules as Space.ParetoFront, so exact duplicates
// survive together.
func frontOf(archive []candidate) []int {
	var order []int
	for i := range archive {
		if !archive[i].Failed {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		return nil
	}
	sort.Slice(order, func(a, b int) bool {
		p, q := &archive[order[a]].SearchPoint, &archive[order[b]].SearchPoint
		if p.Runtime != q.Runtime {
			return p.Runtime < q.Runtime
		}
		if p.PowerW != q.PowerW {
			return p.PowerW < q.PowerW
		}
		return order[a] < order[b]
	})
	var front []int
	minPower := archive[order[0]].PowerW
	minPowerRuntime := archive[order[0]].Runtime
	for _, idx := range order {
		p := &archive[idx].SearchPoint
		dominated := minPower < p.PowerW ||
			(minPower == p.PowerW && minPowerRuntime < p.Runtime)
		if !dominated {
			front = append(front, idx)
		}
		if p.PowerW < minPower {
			minPower, minPowerRuntime = p.PowerW, p.Runtime
		}
	}
	return front
}

func sameFront(a, b []int, _ []candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// frontPoints snapshots the current front in compact form for progress
// reporting.
func frontPoints(archive []candidate) []SearchPoint {
	idx := frontOf(archive)
	out := make([]SearchPoint, len(idx))
	for i, j := range idx {
		out[i] = archive[j].SearchPoint
	}
	return out
}

func archivePoints(archive []candidate) []SearchPoint {
	out := make([]SearchPoint, len(archive))
	for i := range archive {
		out[i] = archive[i].SearchPoint
	}
	return out
}

// materialize rebuilds full simulation results for the front: points
// evaluated by this process carry them already, resumed points come back
// from the store, and anything missing (a checkpoint ahead of a torn store)
// re-simulates — deterministically the same result either way.
func materialize(ctx context.Context, k *soc.Compiled, archive []candidate, front []int, cache *StoreCache) (Space, error) {
	out := make(Space, 0, len(front))
	var r soc.Runner
	for _, i := range front {
		c := &archive[i]
		res := c.res
		if res == nil && cache != nil {
			if cp, ok, err := cache.Get(c.cfg); err == nil && ok && !cp.Aborted {
				res = cp.Result
			}
		}
		if res == nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var err error
			res, err = r.Run(k, c.cfg)
			if err != nil {
				return nil, fmt.Errorf("dse: re-materializing front point: %w", err)
			}
			if cache != nil {
				cache.Put(c.cfg, &CachedPoint{Result: res})
			}
		}
		out = append(out, Point{Cfg: c.cfg, Res: res})
	}
	return out, nil
}

// loadSearchState reads and validates the checkpoint; any miss, decode
// failure, schema drift, or fingerprint mismatch is a fresh start.
func loadSearchState(opts SearchOptions, fp string) *searchState {
	if opts.CheckpointKey == "" || opts.Cache == nil {
		return nil
	}
	data, ok, err := opts.Cache.Store.Get(opts.CheckpointKey)
	if err != nil || !ok {
		return nil
	}
	var st searchState
	if json.Unmarshal(data, &st) != nil || st.Schema != searchSchema || st.Fingerprint != fp {
		return nil
	}
	if len(st.RoundEvals) != st.Round {
		return nil
	}
	prev := 0
	for _, cum := range st.RoundEvals {
		if cum <= prev || cum > len(st.Points) {
			return nil
		}
		prev = cum
	}
	if st.Round > 0 && st.RoundEvals[st.Round-1] != len(st.Points) {
		return nil
	}
	return &st
}

// saveSearchState persists the checkpoint; a write failure is deliberately
// non-fatal (the search degrades to resume-from-an-earlier-round, and the
// point cache still makes the replay cheap).
func saveSearchState(opts SearchOptions, fp string, st *searchState) {
	if opts.CheckpointKey == "" || opts.Cache == nil {
		return
	}
	if data, err := json.Marshal(st); err == nil {
		_ = opts.Cache.Store.Put(opts.CheckpointKey, data)
	}
}

// Hypervolume returns the (runtime, power) area dominated by s's Pareto
// front relative to the reference point (refSeconds, refWatts): the standard
// front-quality scalar, used to compare an adaptive search's front against
// the exhaustive one. Points at or beyond the reference contribute nothing.
// Units are seconds x watts.
func (s Space) Hypervolume(refSeconds, refWatts float64) float64 {
	hv := 0.0
	prevPower := refWatts
	for _, p := range s.ParetoFront() {
		rt, pw := p.Res.Seconds(), p.Res.AvgPowerW
		if rt >= refSeconds || pw >= prevPower {
			continue
		}
		hv += (refSeconds - rt) * (prevPower - pw)
		prevPower = pw
	}
	return hv
}
