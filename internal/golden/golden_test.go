package golden

import (
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/trace"
)

func baselineConfig() soc.Config {
	cfg := soc.DefaultConfig()
	cfg.PipelinedDMA = false
	cfg.DMATriggered = false
	return cfg
}

func TestPredictComponentsPositive(t *testing.T) {
	g := ddg.Build(machsuite.MustBuild("gemm-ncubed"))
	p := Predict(g, baselineConfig())
	if p.FlushNs <= 0 || p.DMANs <= 0 || p.ComputeNs <= 0 {
		t.Fatalf("prediction %+v has non-positive component", p)
	}
	if p.TotalNs != p.FlushNs+p.DMANs+p.ComputeNs {
		t.Fatal("total is not the component sum")
	}
}

func TestPredictScalesWithLanes(t *testing.T) {
	g := ddg.Build(machsuite.MustBuild("gemm-ncubed"))
	c1 := baselineConfig()
	c1.Lanes, c1.Partitions = 1, 1
	c16 := baselineConfig()
	c16.Lanes, c16.Partitions = 16, 16
	p1, p16 := Predict(g, c1), Predict(g, c16)
	if p16.ComputeNs >= p1.ComputeNs {
		t.Fatalf("more lanes should predict less compute: %v vs %v",
			p16.ComputeNs, p1.ComputeNs)
	}
	// Movement does not depend on datapath parallelism.
	if p16.FlushNs != p1.FlushNs || p16.DMANs != p1.DMANs {
		t.Fatal("movement estimates should be lane-independent")
	}
}

func TestSerialKernelDependenceBound(t *testing.T) {
	// For a serial chain, the prediction is latency-bound, not
	// issue-bound: lanes must not reduce it below the critical path.
	b := trace.NewBuilder("chain")
	acc := b.ConstF(0)
	a := b.Alloc("a", trace.F64, 64, trace.In)
	for i := 0; i < 64; i++ {
		b.BeginIter()
		acc = b.FAdd(acc, b.Load(a, i))
	}
	o := b.Alloc("o", trace.F64, 1, trace.Out)
	b.Store(o, 0, acc)
	g := ddg.Build(b.Finish())
	cfg := baselineConfig()
	cfg.Lanes = 16
	p := Predict(g, cfg)
	// 64 dependent 3-cycle adds: >= 192 cycles = 1920 ns.
	if p.ComputeNs < 1900 {
		t.Fatalf("serial chain predicted %v ns compute, want >= 1920", p.ComputeNs)
	}
}

// TestValidationErrorsWithinBand runs the Fig 4 harness: the event-driven
// simulator must land near the analytic golden model. The paper reports
// ~5-6% average against hardware; we accept a wider band per benchmark and
// a 20% band on the average, since our golden model is deliberately
// simpler than the simulator (no contention, no row-buffer state).
func TestValidationErrorsWithinBand(t *testing.T) {
	var totals []float64
	for _, name := range ValidationSuite() {
		g := ddg.Build(machsuite.MustBuild(name))
		cfg := baselineConfig()
		r, err := soc.RunGraph(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e := Compare(r, Predict(g, cfg))
		t.Logf("%-20s flush %5.1f%%  dma %5.1f%%  compute %5.1f%%  total %5.1f%%",
			name, e.FlushPct, e.DMAPct, e.ComputePct, e.TotalPct)
		if e.TotalPct > 50 {
			t.Errorf("%s: total error %.1f%% out of band", name, e.TotalPct)
		}
		totals = append(totals, e.TotalPct)
	}
	sum := 0.0
	for _, v := range totals {
		sum += v
	}
	avg := sum / float64(len(totals))
	t.Logf("average total error: %.1f%%", avg)
	if avg > 20 {
		t.Fatalf("average validation error %.1f%% exceeds 20%%", avg)
	}
}

func TestValidationSuiteMembers(t *testing.T) {
	for _, name := range ValidationSuite() {
		if _, err := machsuite.ByName(name); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPredictTrace(t *testing.T) {
	p := PredictTrace(machsuite.MustBuild("kmp-kmp"), baselineConfig())
	if p.TotalNs <= 0 {
		t.Fatal("no prediction")
	}
}

func TestPct(t *testing.T) {
	if pct(110, 100) != 10 || pct(90, 100) != 10 {
		t.Fatal("pct wrong")
	}
	if pct(0, 0) != 0 || pct(5, 0) != 100 {
		t.Fatal("pct zero handling wrong")
	}
}

// TestGoldenComputeAllKernels extends the validation beyond the paper's
// subset: the analytic compute model must track the simulator across the
// full 19-kernel suite (wider band than Fig 4's subset — some kernels
// stress bank conflicts and dynamic stalls the closed form only floors).
func TestGoldenComputeAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	for _, name := range machsuite.Names() {
		g := ddg.Build(machsuite.MustBuild(name))
		cfg := baselineConfig()
		r, err := soc.RunGraph(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e := Compare(r, Predict(g, cfg))
		t.Logf("%-20s compute err %5.1f%%", name, e.ComputePct)
		if e.ComputePct > 30 {
			t.Errorf("%s: compute error %.1f%% out of band", name, e.ComputePct)
		}
	}
}
