// Package golden provides the independent analytical timing models used by
// the Fig 4 validation harness. In the paper, gem5-Aladdin is validated
// against a Zynq Zedboard: accelerator RTL from Vivado HLS, DMA transfer
// waveforms from on-fabric logic analyzers, and flush costs from CPU cycle
// counters. Without that hardware, these closed-form models play the role
// of the measurement source: they are derived independently of the
// event-driven simulator (no event queue, no per-access bookkeeping — just
// first-principles arithmetic over the kernel's DDDG and the system
// constants), so the percentage gaps between the two are a meaningful
// consistency check of the simulator's timing composition, reported through
// the same harness and error metric as the paper's Figure 4.
package golden

import (
	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/trace"
)

// Prediction holds the analytic timing estimates in nanoseconds.
type Prediction struct {
	FlushNs   float64 // CPU flush + invalidate work
	DMANs     float64 // DMA transfer engine busy time
	ComputeNs float64 // accelerator datapath busy time
	TotalNs   float64 // end-to-end baseline-flow estimate
}

// Constants mirrored from the paper's characterization (Fig 3 table and
// Sec IV-B1); they are inputs to both the simulator and the golden model,
// exactly as the measured constants were inputs to gem5-Aladdin itself.
const (
	cpuLineBytes = 32
	flushNsLine  = 84
	invalNsLine  = 71
	dmaSetupNs   = 400 // 40 cycles at 100 MHz
	dramLeadNs   = 45  // activate + CAS on a cold row
	accelCycleNs = 10
	fuLatFAdd    = 3
	fuLatFMul    = 4
	fuLatLong    = 15
	fuLatIMul    = 3
	fuLatIDiv    = 10
)

// opLatNs returns the analytic per-op latency in cycles.
func opLat(k trace.OpKind) int {
	switch k {
	case trace.OpFAdd, trace.OpFSub:
		return fuLatFAdd
	case trace.OpFMul:
		return fuLatFMul
	case trace.OpFDiv, trace.OpFSqrt:
		return fuLatLong
	case trace.OpFExp:
		return 18
	case trace.OpIMul:
		return fuLatIMul
	case trace.OpIDiv:
		return fuLatIDiv
	default:
		return 1
	}
}

// Predict computes the analytic estimate for a baseline (non-pipelined,
// non-triggered) DMA flow of graph g under cfg, matching the validation
// configuration of Sec III-F.
func Predict(g *ddg.Graph, cfg soc.Config) Prediction {
	var p Prediction
	inB, outB := g.Trace.FootprintBytes()

	// CPU coherence work: serial per-line flush and invalidate.
	lines := func(b uint64) float64 { return float64((b + cpuLineBytes - 1) / cpuLineBytes) }
	p.FlushNs = lines(inB)*flushNsLine + lines(outB)*invalNsLine

	// DMA: one descriptor per array and direction; bus beats plus one
	// DRAM activation lead per descriptor.
	busBytesPerCycle := float64(cfg.BusWidthBits / 8)
	busCycleNs := 1e9 / cfg.BusHz
	addBytes := func(b uint64) float64 {
		if b == 0 {
			return 0
		}
		beats := float64((b + uint64(busBytesPerCycle) - 1) / uint64(busBytesPerCycle))
		return dmaSetupNs + dramLeadNs + (beats+1)*busCycleNs
	}
	for _, a := range g.Trace.Arrays {
		if a.Dir.IsIn() {
			p.DMANs += addBytes(uint64(a.Bytes()))
		}
		if a.Dir.IsOut() {
			p.DMANs += addBytes(uint64(a.Bytes()))
		}
	}

	p.ComputeNs = computeEstimate(g, cfg) * accelCycleNs

	p.TotalNs = p.FlushNs + p.DMANs + p.ComputeNs
	return p
}

// computeEstimate is a closed-form cycle estimate of the datapath: a
// single wave-by-wave pass that charges each iteration its in-order lane
// schedule under the full DDDG dependences (register and memory, including
// chains that cascade across lanes and waves, which is what serializes
// nw-style dynamic programming), with each wave floored by issue width and
// scratchpad-port throughput and closed by the synchronization barrier.
// This is the estimate one would produce by hand from an HLS initiation-
// interval report plus the loop-carried dependence structure; it involves
// no event simulation and no memory-system state.
func computeEstimate(g *ddg.Graph, cfg soc.Config) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	lat := func(i int32) int64 { return int64(opLat(g.Trace.Nodes[i].Kind)) }

	// Predecessor lists (register + memory edges) from the successor CSR.
	predIdx := make([]int32, n+1)
	for i := int32(0); i < int32(n); i++ {
		for _, s := range g.Successors(i) {
			predIdx[s+1]++
		}
	}
	for i := 0; i < n; i++ {
		predIdx[i+1] += predIdx[i]
	}
	preds := make([]int32, predIdx[n])
	fill := make([]int32, n)
	copy(fill, predIdx[:n])
	for i := int32(0); i < int32(n); i++ {
		for _, s := range g.Successors(i) {
			preds[fill[s]] = i
			fill[s]++
		}
	}

	finish := make([]int64, n)
	// scheduleRange runs one iteration in-order on a lane starting no
	// earlier than start, returning its completion time.
	scheduleRange := func(r ddg.Range, start int64) int64 {
		clock := start
		end := start
		for i := r.Start; i < r.End; i++ {
			earliest := clock + 1
			for _, p := range preds[predIdx[i]:predIdx[i+1]] {
				if f := finish[p] + 1; f > earliest {
					earliest = f
				}
			}
			clock = earliest
			f := clock + lat(i) - 1
			finish[i] = f
			if f > end {
				end = f
			}
		}
		return end
	}

	bw := int64(cfg.Partitions * cfg.SpadPorts)
	barrier := scheduleRange(g.Prelude, 0)
	for w := 0; w < len(g.IterRange); w += cfg.Lanes {
		waveEnd := barrier
		var waveNodes int64
		memPerArray := make(map[int16]int64)
		for l := 0; l < cfg.Lanes && w+l < len(g.IterRange); l++ {
			r := g.IterRange[w+l]
			if e := scheduleRange(r, barrier); e > waveEnd {
				waveEnd = e
			}
			waveNodes += int64(r.Len())
			for i := r.Start; i < r.End; i++ {
				if g.Trace.Nodes[i].Kind.IsMem() {
					memPerArray[g.Trace.Nodes[i].Arr]++
				}
			}
		}
		if e := barrier + waveNodes/int64(cfg.Lanes); e > waveEnd {
			waveEnd = e
		}
		for _, c := range memPerArray {
			if e := barrier + c/bw; e > waveEnd {
				waveEnd = e
			}
		}
		barrier = waveEnd
	}
	return float64(barrier)
}

// Errors compares a simulated baseline run against the prediction,
// returning percentage errors for the three validated components and the
// total, in the spirit of Fig 4 (Aladdin ~5%, DMA ~6.4%, flush ~5%).
type Errors struct {
	FlushPct, DMAPct, ComputePct, TotalPct float64
}

// Compare derives component errors from a simulated run. The simulator's
// component times are taken from the runtime breakdown: flush-only +
// DMA-without-compute approximate the movement components of the baseline
// flow (which never overlaps), and compute-only the datapath.
func Compare(r *soc.RunResult, p Prediction) Errors {
	simFlush := float64(r.Breakdown.FlushOnly) / 1e3
	simDMA := float64(r.Breakdown.DMAFlush+r.Breakdown.Idle) / 1e3
	simCompute := float64(r.Breakdown.ComputeOnly+r.Breakdown.ComputeDMA) / 1e3
	simTotal := float64(r.Runtime) / 1e3
	return Errors{
		FlushPct:   pct(simFlush, p.FlushNs),
		DMAPct:     pct(simDMA, p.DMANs),
		ComputePct: pct(simCompute, p.ComputeNs),
		TotalPct:   pct(simTotal, p.TotalNs),
	}
}

func pct(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 100
	}
	e := (got - want) / want * 100
	if e < 0 {
		return -e
	}
	return e
}

// ValidationSuite is the benchmark subset used in the paper's Zedboard
// validation (Fig 4 covers a MachSuite subset).
func ValidationSuite() []string {
	return []string{
		"aes-aes", "fft-transpose", "gemm-ncubed", "md-knn",
		"nw-nw", "spmv-crs", "stencil-stencil2d", "stencil-stencil3d",
	}
}

// PredictTrace is a convenience wrapper over ddg.Build + Predict.
func PredictTrace(tr *trace.Trace, cfg soc.Config) Prediction {
	return Predict(ddg.Build(tr), cfg)
}
