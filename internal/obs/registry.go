// Package obs is the observability layer of the gem5-Aladdin reproduction,
// playing the role of gem5's statistics framework and probe-point
// instrumentation. It has three pieces:
//
//   - a hierarchical stats Registry: components register named scalars
//     (Counter, Gauge, Formula) and Histograms under dotted paths such as
//     soc.bus.transactions or accel.0.dma.bytes_moved, and the whole tree
//     dumps as a deterministic gem5-stats.txt-style text snapshot or as
//     nested JSON;
//
//   - Probe, a near-zero-overhead-when-disabled hook API: components fire
//     timestamped events (bus grants, DRAM beats, cache fills, DMA bursts,
//     datapath node retirement) that cost one nil/empty-slice branch when
//     nobody listens;
//
//   - Tracer, a Chrome trace-event / Perfetto JSON exporter that subscribes
//     to probes and lays the events out on named per-component tracks
//     loadable in ui.perfetto.dev.
//
// The package intentionally depends only on the standard library — times
// are raw engine ticks (picoseconds) as uint64 — so the simulation kernel
// itself can carry probes without an import cycle.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Kind classifies a registered statistic.
type Kind uint8

// Statistic kinds.
const (
	// KindCounter is a monotonically increasing integer.
	KindCounter Kind = iota
	// KindGauge is an instantaneous float value.
	KindGauge
	// KindFormula is a float derived from other statistics at dump time.
	KindFormula
	// KindHistogram is a bucketed distribution.
	KindHistogram
)

// Stat is one registered statistic.
type Stat struct {
	path string
	desc string
	kind Kind

	intFn   func() uint64
	floatFn func() float64
	hist    *Histogram
}

// Path returns the dotted registration path.
func (s *Stat) Path() string { return s.path }

// Desc returns the one-line description.
func (s *Stat) Desc() string { return s.desc }

// Kind returns the statistic kind.
func (s *Stat) Kind() Kind { return s.kind }

// Counter is a live integer counter handle for components that do not
// already keep their own counters.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Histogram is a fixed-bucket distribution. Bucket i counts samples in
// [bounds[i-1], bounds[i]); the last bucket is unbounded above.
type Histogram struct {
	bounds  []float64
	counts  []uint64
	samples uint64
	sum     float64
	min     float64
	max     float64
}

// Observe records one sample. NaN observations are dropped — they cannot
// be bucketed (every comparison is false) and would poison min/max/sum —
// while ±Inf land in the outermost buckets and saturate min/max.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if h.samples == 0 || v < h.min {
		h.min = v
	}
	if h.samples == 0 || v > h.max {
		h.max = v
	}
	h.samples++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) && h.bounds[i] == v {
		i++ // bucket upper bounds are exclusive
	}
	h.counts[i]++
}

// Samples returns how many values were observed.
func (h *Histogram) Samples() uint64 { return h.samples }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.samples == 0 {
		return 0
	}
	return h.sum / float64(h.samples)
}

// Quantile estimates the q-th quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the bucket holding the target rank. The
// first bucket interpolates from the observed minimum and the catch-all last
// bucket is clamped to the observed maximum, so the estimate always lies in
// [min, max]. Zero samples return 0. Services report p50/p99 latencies this
// way without retaining individual samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h.samples == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.samples)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next < rank || c == 0 {
			cum = next
			continue
		}
		lo := h.min
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			// A bucket entirely above the observed max (or below the min)
			// degenerates; clamp to the observed extreme.
			return h.max
		}
		return lo + (hi-lo)*(rank-cum)/float64(c)
	}
	return h.max
}

// Registry is a hierarchical collection of statistics. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	stats  []*Stat
	byPath map[string]*Stat
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byPath: make(map[string]*Stat)}
}

func (r *Registry) add(s *Stat) *Stat {
	if s.path == "" {
		panic("obs: empty stat path")
	}
	if _, dup := r.byPath[s.path]; dup {
		panic(fmt.Sprintf("obs: duplicate stat path %q", s.path))
	}
	r.byPath[s.path] = s
	r.stats = append(r.stats, s)
	return s
}

// CounterFunc registers an integer counter read through fn at dump time.
// Components with existing Stats structs migrate this way: registration
// adds no work to their hot paths.
func (r *Registry) CounterFunc(path, desc string, fn func() uint64) {
	r.add(&Stat{path: path, desc: desc, kind: KindCounter, intFn: fn})
}

// GaugeFunc registers an instantaneous float read through fn at dump time.
func (r *Registry) GaugeFunc(path, desc string, fn func() float64) {
	r.add(&Stat{path: path, desc: desc, kind: KindGauge, floatFn: fn})
}

// Formula registers a derived value (rates, ratios, utilizations) computed
// from other statistics at dump time.
func (r *Registry) Formula(path, desc string, fn func() float64) {
	r.add(&Stat{path: path, desc: desc, kind: KindFormula, floatFn: fn})
}

// Counter registers and returns a live counter handle.
func (r *Registry) Counter(path, desc string) *Counter {
	c := &Counter{}
	r.CounterFunc(path, desc, c.Value)
	return c
}

// Histogram registers a distribution with the given ascending bucket upper
// bounds (a final catch-all bucket is implicit).
func (r *Registry) Histogram(path, desc string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", path))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1)}
	r.add(&Stat{path: path, desc: desc, kind: KindHistogram, hist: h})
	return h
}

// Lookup returns the statistic registered at path, or nil.
func (r *Registry) Lookup(path string) *Stat { return r.byPath[path] }

// Len reports how many statistics are registered.
func (r *Registry) Len() int { return len(r.stats) }

// sorted returns the stats in lexicographic path order, so dumps are
// independent of wiring order.
func (r *Registry) sorted() []*Stat {
	out := make([]*Stat, len(r.stats))
	copy(out, r.stats)
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// formatFloat renders a float the way gem5's stats.txt does: fixed
// six-digit precision, with NaN/Inf spelled out.
func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "nan"
	}
	if math.IsInf(v, 0) {
		return "inf"
	}
	return fmt.Sprintf("%.6f", v)
}

// DumpText writes a gem5-stats.txt-style snapshot: one line per scalar,
// `path  value  # description`, sorted by path, bracketed by Begin/End
// markers. Histograms expand into ::samples/::mean/::min/::max plus one
// line per bucket. Byte-identical across identical runs.
func (r *Registry) DumpText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "---------- Begin Simulation Statistics ----------"); err != nil {
		return err
	}
	line := func(path, value, desc string) error {
		_, err := fmt.Fprintf(w, "%-50s %20s  # %s\n", path, value, desc)
		return err
	}
	for _, s := range r.sorted() {
		switch s.kind {
		case KindCounter:
			if err := line(s.path, fmt.Sprintf("%d", s.intFn()), s.desc); err != nil {
				return err
			}
		case KindGauge, KindFormula:
			if err := line(s.path, formatFloat(s.floatFn()), s.desc); err != nil {
				return err
			}
		case KindHistogram:
			h := s.hist
			if err := line(s.path+"::samples", fmt.Sprintf("%d", h.samples), s.desc); err != nil {
				return err
			}
			if err := line(s.path+"::mean", formatFloat(h.Mean()), s.desc); err != nil {
				return err
			}
			if err := line(s.path+"::min", formatFloat(h.min), s.desc); err != nil {
				return err
			}
			if err := line(s.path+"::max", formatFloat(h.max), s.desc); err != nil {
				return err
			}
			for i, c := range h.counts {
				var lo, hi string
				if i == 0 {
					lo = "-inf"
				} else {
					lo = fmt.Sprintf("%g", h.bounds[i-1])
				}
				if i == len(h.bounds) {
					hi = "+inf"
				} else {
					hi = fmt.Sprintf("%g", h.bounds[i])
				}
				bucket := fmt.Sprintf("%s::%s-%s", s.path, lo, hi)
				if err := line(bucket, fmt.Sprintf("%d", c), s.desc); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "---------- End Simulation Statistics   ----------")
	return err
}

// DumpJSON writes the statistics as a nested JSON object keyed by the
// dotted path segments (keys sorted, so the output is deterministic).
func (r *Registry) DumpJSON(w io.Writer) error {
	root := make(map[string]any)
	for _, s := range r.sorted() {
		node := root
		parts := strings.Split(s.path, ".")
		for _, p := range parts[:len(parts)-1] {
			child, ok := node[p].(map[string]any)
			if !ok {
				child = make(map[string]any)
				node[p] = child
			}
			node = child
		}
		leaf := parts[len(parts)-1]
		switch s.kind {
		case KindCounter:
			node[leaf] = s.intFn()
		case KindGauge, KindFormula:
			node[leaf] = jsonFloat(s.floatFn())
		case KindHistogram:
			h := s.hist
			buckets := make([]map[string]any, len(h.counts))
			for i, c := range h.counts {
				b := map[string]any{"count": c}
				if i > 0 {
					b["lo"] = h.bounds[i-1]
				}
				if i < len(h.bounds) {
					b["hi"] = h.bounds[i]
				}
				buckets[i] = b
			}
			node[leaf] = map[string]any{
				"samples": h.samples,
				"mean":    jsonFloat(h.Mean()),
				"min":     jsonFloat(h.min),
				"max":     jsonFloat(h.max),
				"buckets": buckets,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(root)
}

// jsonFloat maps NaN/Inf (not representable in JSON) to nil.
func jsonFloat(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return v
}
