package obs

// Event is one probe occurrence. Times are engine ticks (picoseconds).
// Start == End marks an instant event; Start < End marks a span.
type Event struct {
	// Name labels the occurrence ("read", "row-miss", "chunk", an op kind).
	Name string
	// Start and End bound the activity window in ticks.
	Start, End uint64
	// Lane is a small component-defined index: datapath lane, DRAM bank,
	// bus master. -1 or 0 when meaningless.
	Lane int32
	// Bytes is the payload size for data-movement events, 0 otherwise.
	Bytes uint64
	// Count is an optional occurrence count for aggregated events.
	Count uint64
}

// Instant returns true when the event has no duration.
func (e Event) Instant() bool { return e.End <= e.Start }

// Probe is a named hook point that components fire and observers listen
// on. The zero value and the nil pointer are both valid disabled probes:
// the hot-path contract is that a component guards every emission with a
// single Enabled() branch, which compiles to a nil check plus an
// empty-slice check and costs well under 2% of event dispatch (see
// internal/sim's BenchmarkEngineDispatch* suite).
type Probe struct {
	listeners []func(Event)
}

// Enabled reports whether anyone is listening. Safe on a nil probe.
func (p *Probe) Enabled() bool { return p != nil && len(p.listeners) > 0 }

// Listen subscribes fn to every subsequent Fire.
func (p *Probe) Listen(fn func(Event)) {
	p.listeners = append(p.listeners, fn)
}

// Fire delivers ev to every listener, in subscription order. Callers must
// guard with Enabled(); firing a nil or listener-free probe is a no-op.
func (p *Probe) Fire(ev Event) {
	if p == nil {
		return
	}
	for _, fn := range p.listeners {
		fn(ev)
	}
}
