package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilSpanIsDisabled(t *testing.T) {
	var s *Span
	s.SetAttr("k", 1) // must not panic
	s.EndSpan()
	if c := s.Child("x"); c != nil {
		t.Fatal("nil span's child not nil")
	}
	if c := s.ChildOn("x", 3); c != nil {
		t.Fatal("nil span's ChildOn not nil")
	}
	if s.Dur() != 0 {
		t.Fatal("nil span has duration")
	}
	var tr *SpanTracer
	if tr.StartTrace("root") != nil {
		t.Fatal("nil tracer started a span")
	}
	if tr.Collect("x") != nil {
		t.Fatal("nil tracer collected spans")
	}
}

func TestSpanTreeAndJSONL(t *testing.T) {
	var sink bytes.Buffer
	tr := NewSpanTracer(&sink, 16)
	now := time.Unix(1000, 0)
	tr.nowFn = func() time.Time { now = now.Add(time.Millisecond); return now }
	tr.traceIDFn = func() string { return "feedc0de" }

	root := tr.StartTrace("sweep")
	root.SetAttr("kernel", "gemm")
	child := root.Child("point")
	child.SetAttr("lanes", 4)
	grand := child.ChildOn("sim", 2)
	grand.EndSpan()
	child.EndSpan()
	child.EndSpan() // idempotent
	root.EndSpan()

	if root.TraceID != "feedc0de" || child.TraceID != root.TraceID {
		t.Fatalf("trace IDs: root=%q child=%q", root.TraceID, child.TraceID)
	}
	if child.ParentID != root.SpanID || grand.ParentID != child.SpanID {
		t.Fatal("parent links wrong")
	}
	if grand.Track != 2 || child.Track != 0 {
		t.Fatalf("tracks: grand=%d child=%d", grand.Track, child.Track)
	}
	if root.Dur() <= 0 {
		t.Fatal("root has no duration")
	}

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3 (idempotent EndSpan):\n%s", len(lines), sink.String())
	}
	var rec spanRecord
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatalf("bad JSONL: %v", err)
	}
	if rec.Name != "sweep" || rec.Trace != "feedc0de" || rec.DurUS <= 0 {
		t.Fatalf("root record wrong: %+v", rec)
	}

	got := tr.Collect("feedc0de")
	if len(got) != 3 || got[0].Name != "sim" || got[2].Name != "sweep" {
		names := make([]string, len(got))
		for i, s := range got {
			names[i] = s.Name
		}
		t.Fatalf("Collect order = %v", names)
	}
	if tr.Collect("unknown") != nil {
		t.Fatal("unknown trace collected spans")
	}
}

func TestSpanRetentionRingBounds(t *testing.T) {
	tr := NewSpanTracer(nil, 4)
	tr.traceIDFn = func() string { return "t1" }
	for i := 0; i < 10; i++ {
		tr.StartTrace("s").EndSpan()
	}
	if got := len(tr.Collect("t1")); got != 4 {
		t.Fatalf("retained %d spans, want ring bound 4", got)
	}
}

func TestWriteTraceJSONPerfettoShape(t *testing.T) {
	tr := NewSpanTracer(nil, 16)
	tr.traceIDFn = func() string { return "abc123" }
	now := time.Unix(2000, 0)
	tr.nowFn = func() time.Time { now = now.Add(250 * time.Microsecond); return now }

	root := tr.StartTrace("sweep")
	p := root.ChildOn("point", 1)
	p.SetAttr("idx", 0)
	p.EndSpan()
	root.EndSpan()

	var buf bytes.Buffer
	ok, err := tr.WriteTraceJSON(&buf, "abc123")
	if err != nil || !ok {
		t.Fatalf("WriteTraceJSON: ok=%v err=%v", ok, err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var spans, meta int
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if ev["dur"].(float64) <= 0 || ev["ts"].(float64) < 0 {
				t.Fatalf("bad span event: %v", ev)
			}
		case "M":
			meta++
		}
	}
	if spans != 2 || meta < 3 {
		t.Fatalf("event mix: spans=%d meta=%d", spans, meta)
	}

	if ok, err := tr.WriteTraceJSON(&buf, "missing"); ok || err != nil {
		t.Fatalf("unknown trace: ok=%v err=%v", ok, err)
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	if got := WithSpan(ctx, nil); got != ctx {
		t.Fatal("WithSpan(nil) must be identity")
	}
	tr := NewSpanTracer(nil, 4)
	s := tr.StartTrace("root")
	if SpanFromContext(WithSpan(ctx, s)) != s {
		t.Fatal("span did not round-trip through context")
	}
}
