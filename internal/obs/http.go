package obs

import (
	"net/http"
	"strings"
	"sync"
)

// Handler exposes a registry over HTTP: a GET returns the gem5-style text
// snapshot, or the nested JSON dump when the request asks for JSON (either
// `?format=json` or an Accept header naming application/json). Dumps read
// every registered closure, so when stats are updated concurrently — a
// serving process, unlike a finished simulation — pass the lock that guards
// those updates and the handler holds it for the duration of the dump; pass
// nil for registries that are quiescent at dump time.
func Handler(r *Registry, mu sync.Locker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "stats are read-only", http.StatusMethodNotAllowed)
			return
		}
		asJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if mu != nil {
			mu.Lock()
			defer mu.Unlock()
		}
		if asJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.DumpJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.DumpText(w)
	})
}
