package obs

import (
	"net/http"
	"strings"
	"sync"
)

// dumpHandler is the shared skeleton of the stats endpoints: method
// gating, optional locking, no-store caching policy, and bodiless HEAD.
func dumpHandler(mu sync.Locker, serve func(w http.ResponseWriter, req *http.Request) bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "stats are read-only", http.StatusMethodNotAllowed)
			return
		}
		// Snapshots go stale the moment they are written; an intermediary
		// must never serve a cached one.
		w.Header().Set("Cache-Control", "no-store")
		if mu != nil {
			mu.Lock()
			defer mu.Unlock()
		}
		serve(w, req)
	})
}

// acceptable reports whether an Accept header admits one of the offered
// media types (or anything, via */* or type/*). An absent header accepts
// everything.
func acceptable(header string, offers ...string) bool {
	if header == "" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == "*/*" || mt == "" {
			return true
		}
		for _, offer := range offers {
			if mt == offer {
				return true
			}
			if prefix, ok := strings.CutSuffix(mt, "/*"); ok &&
				strings.HasPrefix(offer, prefix+"/") {
				return true
			}
		}
	}
	return false
}

// Handler exposes a registry over HTTP: a GET returns the gem5-style text
// snapshot, or the nested JSON dump when the request asks for JSON (either
// `?format=json` or an Accept header naming application/json). An Accept
// header admitting neither text nor JSON is answered 406 rather than
// silently defaulting; HEAD returns headers only. Dumps read every
// registered closure, so when stats are updated concurrently — a serving
// process, unlike a finished simulation — pass the lock that guards those
// updates and the handler holds it for the duration of the dump; pass nil
// for registries that are quiescent at dump time.
func Handler(r *Registry, mu sync.Locker) http.Handler {
	return dumpHandler(mu, func(w http.ResponseWriter, req *http.Request) bool {
		accept := req.Header.Get("Accept")
		asJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(accept, "application/json")
		if !asJSON && !acceptable(accept, "text/plain", "application/json") {
			http.Error(w, "stats are text/plain or application/json",
				http.StatusNotAcceptable)
			return false
		}
		if asJSON {
			w.Header().Set("Content-Type", "application/json")
			if req.Method != http.MethodHead {
				_ = r.DumpJSON(w)
			}
			return true
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if req.Method != http.MethodHead {
			_ = r.DumpText(w)
		}
		return true
	})
}

// PromHandler exposes a registry in the Prometheus text exposition format
// (see DumpProm): the /metrics endpoint. Locking semantics match Handler.
func PromHandler(r *Registry, mu sync.Locker) http.Handler {
	return dumpHandler(mu, func(w http.ResponseWriter, req *http.Request) bool {
		if !acceptable(req.Header.Get("Accept"), "text/plain") {
			http.Error(w, "metrics are text/plain", http.StatusNotAcceptable)
			return false
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method != http.MethodHead {
			_ = r.DumpProm(w)
		}
		return true
	})
}
