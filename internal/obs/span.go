package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation in a request-scoped trace: an HTTP sweep
// request, its admission wait, a cache lookup, one design-point simulation.
// Spans measure wall-clock time (unlike probe Events, which measure
// simulated ticks) and link into trees via parent span IDs, so a served
// sweep renders as request → admission/cache/queue → per-point rows.
//
// The nil *Span is a valid disabled span: every method is a no-op and
// Child returns nil, so instrumented code pays a single nil check when
// tracing is off and needs no conditional wiring.
type Span struct {
	tracer *SpanTracer

	// TraceID groups every span of one request; SpanID identifies this
	// span and ParentID links to the enclosing one (0 = root).
	TraceID  string
	SpanID   uint64
	ParentID uint64

	// Name labels the operation ("sweep", "admission-wait", "point").
	Name string
	// Track groups spans onto rows in the Perfetto export: spans on one
	// track must be sequential (a request's phases); concurrent spans
	// (per-worker simulations) belong on distinct tracks. Track 0 renders
	// as row 1.
	Track int

	Start time.Time
	End   time.Time

	attrs []Attr
	ended atomic.Bool
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Child starts a sub-span on the same trace. Returns nil on a nil receiver,
// so call chains stay unconditional at instrumentation sites.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s.TraceID, s.SpanID, name, s.Track)
}

// ChildOn is Child on an explicit track (concurrent workers use distinct
// tracks so their spans do not overlap on one Perfetto row).
func (s *Span) ChildOn(name string, track int) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s.TraceID, s.SpanID, name, track)
}

// Dur returns the span duration (zero until End is called).
func (s *Span) Dur() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// EndSpan closes the span, records it in the tracer's retention ring, and
// appends it to the JSONL sink when one is configured. Idempotent; no-op
// on nil.
func (s *Span) EndSpan() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.End = s.tracer.now()
	s.tracer.finish(s)
}

// spanRecord is the JSONL wire form of a finished span.
type spanRecord struct {
	Trace  string  `json:"trace"`
	Span   uint64  `json:"span"`
	Parent uint64  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Track  int     `json:"track,omitempty"`
	Start  string  `json:"start"`
	DurUS  float64 `json:"dur_us"`
	Attrs  []Attr  `json:"attrs,omitempty"`
}

// SpanTracer mints trace and span IDs, retains a bounded ring of finished
// spans for by-ID export (GET /trace/{id} in the sweep service), and
// optionally appends every finished span as one JSON line to a sink.
// Safe for concurrent use. The nil *SpanTracer is disabled: StartTrace
// returns a nil span.
type SpanTracer struct {
	mu     sync.Mutex
	sink   io.Writer
	ring   []*Span // retention ring, nil slots until full
	next   int     // ring cursor
	nextID atomic.Uint64

	// nowFn and traceIDFn are test seams; defaults are time.Now and a
	// random 64-bit hex string.
	nowFn     func() time.Time
	traceIDFn func() string
}

// DefaultSpanRetention bounds how many finished spans a tracer retains for
// by-ID trace export.
const DefaultSpanRetention = 8192

// NewSpanTracer returns a tracer retaining up to retention finished spans
// (<= 0 selects DefaultSpanRetention). sink, when non-nil, receives each
// finished span as one JSON line; writes are serialized.
func NewSpanTracer(sink io.Writer, retention int) *SpanTracer {
	if retention <= 0 {
		retention = DefaultSpanRetention
	}
	return &SpanTracer{sink: sink, ring: make([]*Span, retention)}
}

func (t *SpanTracer) now() time.Time {
	if t.nowFn != nil {
		return t.nowFn()
	}
	return time.Now()
}

func (t *SpanTracer) newTraceID() string {
	if t.traceIDFn != nil {
		return t.traceIDFn()
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not worth failing a trace over; fall back
		// to the span counter, which is still unique within the process.
		return fmt.Sprintf("t%016x", t.nextID.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// StartTrace opens a new root span under a fresh trace ID. Returns nil on
// a nil tracer, so callers thread the result through unconditionally.
func (t *SpanTracer) StartTrace(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(t.newTraceID(), 0, name, 0)
}

func (t *SpanTracer) start(traceID string, parent uint64, name string, track int) *Span {
	return &Span{
		tracer:   t,
		TraceID:  traceID,
		SpanID:   t.nextID.Add(1),
		ParentID: parent,
		Name:     name,
		Track:    track,
		Start:    t.now(),
	}
}

func (t *SpanTracer) finish(s *Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.sink != nil {
		rec := spanRecord{
			Trace:  s.TraceID,
			Span:   s.SpanID,
			Parent: s.ParentID,
			Name:   s.Name,
			Track:  s.Track,
			Start:  s.Start.UTC().Format(time.RFC3339Nano),
			DurUS:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			Attrs:  s.attrs,
		}
		// One marshal + one write per span: a long service run never
		// materializes its span history.
		if b, err := json.Marshal(rec); err == nil {
			t.sink.Write(append(b, '\n'))
		}
	}
	t.mu.Unlock()
}

// Collect returns the retained finished spans of one trace, in end order.
// Empty when the trace is unknown or has aged out of the retention ring.
func (t *SpanTracer) Collect(traceID string) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	n := len(t.ring)
	for i := 0; i < n; i++ {
		if s := t.ring[(t.next+i)%n]; s != nil && s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// WriteTraceJSON renders one trace's retained spans as a Chrome
// trace-event / Perfetto JSON timeline: one process, one thread per span
// track, ph="X" complete events with wall-clock microsecond timestamps
// relative to the earliest span. Returns false (writing nothing) when the
// trace has no retained spans.
func (t *SpanTracer) WriteTraceJSON(w io.Writer, traceID string) (bool, error) {
	spans := t.Collect(traceID)
	if len(spans) == 0 {
		return false, nil
	}
	epoch := spans[0].Start
	tracks := map[int]bool{}
	for _, s := range spans {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
		tracks[s.Track] = true
	}
	sw := &streamWriter{w: w}
	sw.printf(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(v any) {
		b, err := json.Marshal(v)
		if err != nil || sw.err != nil {
			return
		}
		if !first {
			sw.printf(",")
		}
		first = false
		sw.write(b)
	}
	emit(traceEvent{Name: "process_name", Ph: "M", Pid: socPid, Tid: 0,
		Args: map[string]any{"name": "sweep trace " + traceID}})
	for tr := 0; ; tr++ {
		if !tracks[tr] {
			if tr > maxTrack(tracks) {
				break
			}
			continue
		}
		emit(traceEvent{Name: "thread_name", Ph: "M", Pid: socPid, Tid: tr + 1,
			Args: map[string]any{"name": fmt.Sprintf("track %d", tr)}})
	}
	for _, s := range spans {
		dur := float64(s.End.Sub(s.Start)) / float64(time.Microsecond)
		ev := traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  &dur,
			Pid:  socPid,
			Tid:  s.Track + 1,
		}
		if len(s.attrs) > 0 || s.SpanID != 0 {
			args := make(map[string]any, len(s.attrs)+2)
			args["span"] = s.SpanID
			if s.ParentID != 0 {
				args["parent"] = s.ParentID
			}
			for _, a := range s.attrs {
				args[a.Key] = a.Value
			}
			ev.Args = args
		}
		emit(ev)
	}
	sw.printf("]}\n")
	return true, sw.err
}

func maxTrack(tracks map[int]bool) int {
	m := 0
	for tr := range tracks {
		if tr > m {
			m = tr
		}
	}
	return m
}

// spanCtxKey carries a *Span through a context.
type spanCtxKey struct{}

// WithSpan returns a context carrying s; SpanFromContext recovers it.
// Layers that cannot grow their signatures (dse.Sweep) receive their
// parent span this way.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil. The nil result
// is a valid disabled span, so call sites need no found-flag.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
