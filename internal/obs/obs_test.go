package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryDumpTextSortedAndStable(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.CounterFunc("soc.bus.transactions", "bus transactions", func() uint64 { return n })
	r.GaugeFunc("accel.0.util", "lane utilization", func() float64 { return 0.5 })
	r.Formula("soc.bus.rate", "transactions per unit", func() float64 { return float64(n) / 2 })

	var a, b bytes.Buffer
	if err := r.DumpText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.DumpText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two dumps of the same registry differ")
	}
	out := a.String()
	if !strings.HasPrefix(out, "---------- Begin Simulation Statistics ----------") {
		t.Fatalf("missing begin marker:\n%s", out)
	}
	// accel.0.util sorts before soc.bus.*.
	if strings.Index(out, "accel.0.util") > strings.Index(out, "soc.bus.transactions") {
		t.Fatalf("dump not sorted by path:\n%s", out)
	}
	for _, want := range []string{"soc.bus.transactions", "7", "# bus transactions", "3.500000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("a.b", "first")
	r.Counter("a.b", "second")
}

func TestCounterHandle(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.hits", "hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dma.chunk_bytes", "chunk sizes", []float64{1024, 4096})
	for _, v := range []float64{100, 1024, 4096, 8192, 512} {
		h.Observe(v)
	}
	// Buckets: [-inf,1024): {100,512}; [1024,4096): {1024}; [4096,+inf): {4096,8192}.
	want := []uint64{2, 1, 2}
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Samples() != 5 || h.min != 100 || h.max != 8192 {
		t.Fatalf("summary wrong: samples=%d min=%g max=%g", h.Samples(), h.min, h.max)
	}
	var buf bytes.Buffer
	if err := r.DumpText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"::samples", "::mean", "::1024-4096"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("histogram dump missing %q:\n%s", want, buf.String())
		}
	}
}

func TestDumpJSONNestsAndParses(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("soc.dram.reads", "reads", func() uint64 { return 3 })
	r.CounterFunc("soc.dram.writes", "writes", func() uint64 { return 1 })
	r.GaugeFunc("soc.bus.util", "utilization", func() float64 { return 0.25 })
	var buf bytes.Buffer
	if err := r.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var root map[string]any
	if err := json.Unmarshal(buf.Bytes(), &root); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	soc := root["soc"].(map[string]any)
	dram := soc["dram"].(map[string]any)
	if dram["reads"].(float64) != 3 {
		t.Fatalf("soc.dram.reads = %v", dram["reads"])
	}
	if soc["bus"].(map[string]any)["util"].(float64) != 0.25 {
		t.Fatal("soc.bus.util wrong")
	}
}

func TestProbeDisabledAndEnabled(t *testing.T) {
	var nilProbe *Probe
	if nilProbe.Enabled() {
		t.Fatal("nil probe reports enabled")
	}
	nilProbe.Fire(Event{Name: "x"}) // must not panic

	p := &Probe{}
	if p.Enabled() {
		t.Fatal("listener-free probe reports enabled")
	}
	var got []Event
	p.Listen(func(ev Event) { got = append(got, ev) })
	if !p.Enabled() {
		t.Fatal("probe with listener reports disabled")
	}
	p.Fire(Event{Name: "grant", Start: 10, End: 20, Bytes: 64})
	if len(got) != 1 || got[0].Name != "grant" || got[0].Bytes != 64 {
		t.Fatalf("listener saw %+v", got)
	}
}

func TestTracerWriteJSONValidAndDeterministic(t *testing.T) {
	build := func() *bytes.Buffer {
		tr := NewTracer()
		p := &Probe{}
		tr.Subscribe(p, "bus")
		p.Fire(Event{Name: "read", Start: 1_000_000, End: 3_000_000, Bytes: 128})
		p.Fire(Event{Name: "activate", Start: 5_000_000, End: 5_000_000})
		tr.Track("dram").Add(Event{Name: "burst", Start: 2_000_000, End: 4_000_000})
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := build(), build()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical tracer contents serialized differently")
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &f); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var phX, phI, meta int
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "X":
			phX++
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("span without duration: %v", ev)
			}
		case "i":
			phI++
		case "M":
			meta++
		}
	}
	if phX != 2 || phI != 1 || meta < 3 {
		t.Fatalf("event mix wrong: X=%d i=%d M=%d", phX, phI, meta)
	}
}

func TestMergeLanesCoalesces(t *testing.T) {
	tr := NewTracer()
	p := &Probe{}
	tr.MergeLanes(p, "datapath.lane%d", "busy", 10)
	// Lane 0: three abutting ops then a far gap, then one more.
	p.Fire(Event{Start: 0, End: 10, Lane: 0})
	p.Fire(Event{Start: 10, End: 20, Lane: 0})
	p.Fire(Event{Start: 25, End: 30, Lane: 0})
	p.Fire(Event{Start: 1000, End: 1010, Lane: 0})
	// Lane 1: a single op.
	p.Fire(Event{Start: 5, End: 15, Lane: 1})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	names := tr.Tracks()
	if len(names) != 2 || names[0] != "datapath.lane0" || names[1] != "datapath.lane1" {
		t.Fatalf("tracks = %v", names)
	}
	lane0 := tr.byName["datapath.lane0"].events
	if len(lane0) != 2 {
		t.Fatalf("lane0 spans = %d, want 2 (merged + separate)", len(lane0))
	}
	if lane0[0].Start != 0 || lane0[0].End != 30 || lane0[0].Count != 3 {
		t.Fatalf("merged span wrong: %+v", lane0[0])
	}
	if lane0[1].Start != 1000 || lane0[1].Count != 1 {
		t.Fatalf("separate span wrong: %+v", lane0[1])
	}
}

func TestObserverSubPrefixes(t *testing.T) {
	o := New(true)
	sub := o.Sub("bench.gemm")
	if got := sub.Path("soc.bus.transactions"); got != "bench.gemm.soc.bus.transactions" {
		t.Fatalf("Path = %q", got)
	}
	if sub.Registry != o.Registry || sub.Tracer != o.Tracer {
		t.Fatal("Sub must share registry and tracer")
	}
	if !sub.Tracing() || New(false).Tracing() {
		t.Fatal("Tracing flag wrong")
	}
	var none *Observer
	if none.Tracing() {
		t.Fatal("nil observer reports tracing")
	}
}
