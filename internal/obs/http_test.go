package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{bounds: []float64{10, 20, 50}, counts: make([]uint64, 4)}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	// 100 samples spread 1..100: p50 ~ 50, p99 ~ 99 within bucket resolution.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v, want min 1", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v, want max 100", q)
	}
	// p40 lands in the (20,50] bucket: 40 of 100 samples below rank, bucket
	// holds 30, interpolation gives 20 + 30*(40-20)/30 = 40.
	if q := h.Quantile(0.4); q < 30 || q > 50 {
		t.Fatalf("p40 = %v, want within (20,50]", q)
	}
	// p99 lands in the catch-all bucket, clamped by the observed max.
	if q := h.Quantile(0.99); q < 50 || q > 100 {
		t.Fatalf("p99 = %v, want within (50,100]", q)
	}
	// Quantiles are monotone in q.
	prev := h.Quantile(0)
	for q := 0.05; q <= 1; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestHandlerTextAndJSON(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("svc.requests", "requests served")
	c.Add(3)
	r.GaugeFunc("svc.depth", "queue depth", func() float64 { return 2.5 })

	var mu sync.Mutex
	srv := httptest.NewServer(Handler(r, &mu))
	defer srv.Close()

	// Text by default.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "svc.requests") ||
		!strings.Contains(string(body), "Begin Simulation Statistics") {
		t.Fatalf("text dump missing content:\n%s", body)
	}

	// JSON on request.
	resp, err = http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	svc, ok := doc["svc"].(map[string]any)
	if !ok || svc["requests"] != float64(3) {
		t.Fatalf("json dump wrong: %v", doc)
	}

	// Writes are rejected.
	resp, err = http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST returned %d, want 405", resp.StatusCode)
	}
}
