package obs

import (
	"fmt"
	"os"
)

// Observer bundles the stats registry with an optional event tracer and a
// path prefix, and is the single handle components and harnesses pass
// around. A nil Tracer means "stats only": wiring code must then skip
// probe subscriptions, which keeps every probe disabled and the hot paths
// at their single-branch cost.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
	// Profile, when non-nil, makes wiring code subscribe the
	// cycle-attribution profiler to the same probe points the tracer
	// uses; tracing and profiling enable independently.
	Profile *Profile
	prefix  string
}

// New returns an observer with a fresh registry, and a tracer when
// withTrace is set.
func New(withTrace bool) *Observer {
	o := &Observer{Registry: NewRegistry()}
	if withTrace {
		o.Tracer = NewTracer()
	}
	return o
}

// Sub returns a view sharing the registry, tracer, and profile but nesting
// every stat path and track name under prefix. Harnesses that observe
// several simulations in one dump (per-benchmark, per-design-point) use it
// to keep paths disjoint.
func (o *Observer) Sub(prefix string) *Observer {
	return &Observer{Registry: o.Registry, Tracer: o.Tracer,
		Profile: o.Profile, prefix: o.Path(prefix)}
}

// Path resolves a stat path or track name under the observer's prefix.
func (o *Observer) Path(p string) string {
	if o.prefix == "" {
		return p
	}
	return o.prefix + "." + p
}

// Tracing reports whether timeline probe subscriptions should be wired.
func (o *Observer) Tracing() bool { return o != nil && o.Tracer != nil }

// Profiling reports whether cycle-attribution probe subscriptions should
// be wired.
func (o *Observer) Profiling() bool { return o != nil && o.Profile != nil }

// Observing reports whether any probe consumer (tracer or profiler) needs
// the component probes attached.
func (o *Observer) Observing() bool { return o.Tracing() || o.Profiling() }

// WriteFiles dumps the registry as text to statsPath, as JSON to jsonPath,
// and the trace timeline to tracePath; empty paths are skipped. This backs
// the CLIs' -stats-out/-stats-json/-trace-out flags.
func (o *Observer) WriteFiles(statsPath, jsonPath, tracePath string) error {
	write := func(path string, dump func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := dump(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(statsPath, func(f *os.File) error {
		return o.Registry.DumpText(f)
	}); err != nil {
		return err
	}
	if err := write(jsonPath, func(f *os.File) error {
		return o.Registry.DumpJSON(f)
	}); err != nil {
		return err
	}
	if tracePath != "" && o.Tracer == nil {
		return fmt.Errorf("obs: trace output requested but no tracer attached")
	}
	return write(tracePath, func(f *os.File) error {
		return o.Tracer.WriteJSON(f)
	})
}
