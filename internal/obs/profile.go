package obs

import (
	"fmt"
	"io"
	"sort"
)

// Bucket classifies where a simulated tick went in the cycle-attribution
// profile. Declaration order is attribution priority: a tick covered by
// several components' activity windows is charged to the lowest-numbered
// bucket, so compute overlapped with a DMA burst counts as compute and the
// DMA bucket keeps only transfer time the datapath could not hide.
type Bucket uint8

// Attribution buckets, highest priority first.
const (
	// BucketCacheMiss is accelerator-cache miss service time (MSHR
	// allocation to fill), demand and prefetch alike. It outranks compute
	// because a load node's datapath span covers issue to retire — miss
	// latency included — so the miss window is the more specific charge
	// for ticks both cover; what remains of the datapath span is genuine
	// compute and issue overhead.
	BucketCacheMiss Bucket = iota
	// BucketCompute is datapath-lane activity (node issue to retire).
	BucketCompute
	// BucketDMA is DMA descriptor transfer time. Ranked below compute so
	// it keeps only transfers the datapath could not hide — the paper's
	// "exposed data movement".
	BucketDMA
	// BucketFlush is CPU cache flush/invalidate work for DMA coherence.
	BucketFlush
	// BucketBus is system-bus occupancy: arbitration, address, data
	// phases, and NACK/retry windows.
	BucketBus
	// BucketDRAM is DRAM bank busy time (row activation + burst service).
	BucketDRAM
	// BucketIdle is the remainder: ticks no instrumented component
	// claimed.
	BucketIdle

	// NumBuckets counts the buckets, BucketIdle included.
	NumBuckets = int(BucketIdle) + 1
)

// String names the bucket for tables and folded stacks.
func (b Bucket) String() string {
	switch b {
	case BucketCompute:
		return "compute"
	case BucketDMA:
		return "dma"
	case BucketFlush:
		return "flush"
	case BucketCacheMiss:
		return "cache-miss"
	case BucketBus:
		return "bus"
	case BucketDRAM:
		return "dram"
	case BucketIdle:
		return "idle"
	}
	return fmt.Sprintf("Bucket(%d)", uint8(b))
}

// ival is one half-open activity window [start, end) in engine ticks.
type ival struct{ start, end uint64 }

// Profile accumulates per-bucket activity windows from the existing probe
// points and attributes every simulated tick of a run to exactly one
// bucket. Collection is append-only (one slice append per probe event);
// the interval algebra runs once at Attribute time. Not safe for
// concurrent use: one Profile observes one single-threaded simulation.
type Profile struct {
	ivals [NumBuckets][]ival
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{} }

// Observe records one activity window. Zero-length windows (instant
// events: cache writebacks, fault markers) carry no cycles and are
// dropped.
func (p *Profile) Observe(b Bucket, start, end uint64) {
	if end <= start {
		return
	}
	p.ivals[b] = append(p.ivals[b], ival{start, end})
}

// Listener adapts a bucket to the probe API: subscribe it with
// Probe.Listen and every span event fired on the probe lands in b.
func (p *Profile) Listener(b Bucket) func(Event) {
	return func(ev Event) { p.Observe(b, ev.Start, ev.End) }
}

// Reset clears collected windows, retaining capacity, so one Profile can
// observe a sweep of design points without reallocating.
func (p *Profile) Reset() {
	for b := range p.ivals {
		p.ivals[b] = p.ivals[b][:0]
	}
}

// Attribution is the result of one attribution pass: exclusive tick
// counts per bucket. The counts sum to Total exactly — every tick of
// [0, Total) lands in precisely one bucket — which the MachSuite
// regression gate asserts kernel by kernel.
type Attribution struct {
	Ticks [NumBuckets]uint64
	Total uint64
}

// Attribute charges every tick of [0, total) to exactly one bucket:
// buckets claim their activity windows in priority order (earlier buckets
// win overlaps), windows are clipped to [0, total), and unclaimed ticks
// fall to BucketIdle. The pass is O(n log n) in recorded windows.
func (p *Profile) Attribute(total uint64) Attribution {
	att := Attribution{Total: total}
	var union []ival // claimed so far, sorted, disjoint
	for b := 0; b < int(BucketIdle); b++ {
		m := canon(p.ivals[b], total)
		if len(m) == 0 {
			continue
		}
		att.Ticks[b] = dur(subtract(m, union))
		union = merge(union, m)
	}
	claimed := dur(union)
	att.Ticks[BucketIdle] = total - claimed
	return att
}

// Sum returns the bucket total (== Total by construction).
func (a Attribution) Sum() uint64 {
	var s uint64
	for _, t := range a.Ticks {
		s += t
	}
	return s
}

// WriteFolded writes the attribution in folded-stack format — one
// "root;bucket count" line per non-empty bucket — the input format of
// flamegraph.pl and speedscope. Counts are ticks.
func (a Attribution) WriteFolded(w io.Writer, root string) error {
	for b := 0; b < NumBuckets; b++ {
		if a.Ticks[b] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s;%s %d\n", root, Bucket(b), a.Ticks[b]); err != nil {
			return err
		}
	}
	return nil
}

// canon sorts a copy of ivs, clips to [0, limit), and merges overlaps,
// returning a disjoint ascending list.
func canon(ivs []ival, limit uint64) []ival {
	out := make([]ival, 0, len(ivs))
	for _, iv := range ivs {
		if iv.start >= limit {
			continue
		}
		if iv.end > limit {
			iv.end = limit
		}
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return coalesce(out)
}

// coalesce merges overlapping/abutting intervals of a sorted list in
// place.
func coalesce(ivs []ival) []ival {
	if len(ivs) == 0 {
		return ivs
	}
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// merge unions two disjoint sorted lists into a new disjoint sorted list.
func merge(a, b []ival) []ival {
	out := make([]ival, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j == len(b) || (i < len(a) && a[i].start <= b[j].start) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return coalesce(out)
}

// subtract returns a minus b; both disjoint and sorted.
func subtract(a, b []ival) []ival {
	var out []ival
	j := 0
	for _, iv := range a {
		cur := iv
		for j < len(b) && b[j].end <= cur.start {
			j++
		}
		k := j
		for k < len(b) && b[k].start < cur.end {
			if b[k].start > cur.start {
				out = append(out, ival{cur.start, b[k].start})
			}
			if b[k].end >= cur.end {
				cur.start = cur.end
				break
			}
			cur.start = b[k].end
			k++
		}
		if cur.start < cur.end {
			out = append(out, cur)
		}
	}
	return out
}

// dur sums interval lengths.
func dur(ivs []ival) uint64 {
	var d uint64
	for _, iv := range ivs {
		d += iv.end - iv.start
	}
	return d
}
