package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PromName sanitizes a dotted stat path into a legal Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes '_' (dots
// included), and a leading digit gains a '_' prefix. Distinct paths can
// collide after sanitization ("a.b" and "a_b"); DumpProm deduplicates
// those deterministically.
func PromName(path string) string {
	var b strings.Builder
	b.Grow(len(path) + 1)
	for i := 0; i < len(path); i++ {
		c := path[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscapeHelp escapes a HELP text per the exposition format.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat renders a float in exposition format (NaN/±Inf spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// DumpProm writes the registry in the Prometheus text exposition format:
// a # HELP and # TYPE line per metric, sanitized names, counters and
// gauges as scalars, histograms as cumulative _bucket/_sum/_count series.
// Paths that sanitize to the same metric name are deduplicated by
// appending _2, _3, … in path order, so every registered stat scrapes
// under a distinct, stable name.
func (r *Registry) DumpProm(w io.Writer) error {
	stats := r.sorted()
	names := make([]string, len(stats))
	used := make(map[string]int, len(stats))
	for i, s := range stats {
		name := PromName(s.path)
		if n := used[name]; n > 0 {
			used[name] = n + 1
			name = fmt.Sprintf("%s_%d", name, n+1)
		}
		used[name]++
		names[i] = name
	}
	for i, s := range stats {
		name := names[i]
		typ := "gauge"
		if s.kind == KindCounter {
			typ = "counter"
		}
		if s.kind == KindHistogram {
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, promEscapeHelp(s.desc), name, typ); err != nil {
			return err
		}
		var err error
		switch s.kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", name, s.intFn())
		case KindGauge, KindFormula:
			_, err = fmt.Fprintf(w, "%s %s\n", name, promFloat(s.floatFn()))
		case KindHistogram:
			h := s.hist
			var cum uint64
			for bi, c := range h.counts {
				cum += c
				le := "+Inf"
				if bi < len(h.bounds) {
					le = promFloat(h.bounds[bi])
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				name, promFloat(h.sum), name, h.samples)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
