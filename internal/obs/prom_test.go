package obs

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromNameSanitization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"serve.cache.hit_rate", "serve_cache_hit_rate"},
		{"accel.0.dma.bytes_moved", "accel_0_dma_bytes_moved"},
		{"9lives", "_9lives"},
		{"a-b c/d", "a_b_c_d"},
		{"ns:sub", "ns:sub"},
		{"", "_"},
		{"τ.x", "___x"}, // multi-byte runes sanitize per byte
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDumpPromExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("svc.requests", "requests served")
	c.Add(7)
	r.GaugeFunc("svc.depth", "queue depth", func() float64 { return 2.5 })
	r.Formula("svc.bad", "can be non-finite", func() float64 { return math.Inf(1) })
	h := r.Histogram("svc.latency_ms", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.DumpProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP svc_requests requests served",
		"# TYPE svc_requests counter",
		"svc_requests 7",
		"# TYPE svc_depth gauge",
		"svc_depth 2.5",
		"svc_bad +Inf",
		"# TYPE svc_latency_ms histogram",
		`svc_latency_ms_bucket{le="1"} 1`,
		`svc_latency_ms_bucket{le="10"} 2`,
		`svc_latency_ms_bucket{le="+Inf"} 3`,
		"svc_latency_ms_sum 105.5",
		"svc_latency_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "svc.") {
		t.Fatalf("unsanitized name leaked:\n%s", out)
	}
}

func TestDumpPromCollisionDedup(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("a.b", "dotted", func() uint64 { return 1 })
	r.CounterFunc("a_b", "underscored", func() uint64 { return 2 })
	r.CounterFunc("a-b", "dashed", func() uint64 { return 3 })
	var buf bytes.Buffer
	if err := r.DumpProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Sorted path order: "a-b" < "a.b" < "a_b" (ASCII '-' < '.' < '_').
	for _, want := range []string{"a_b 3", "a_b_2 1", "a_b_3 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dedup missing %q:\n%s", want, out)
		}
	}
	var a, b bytes.Buffer
	_ = r.DumpProm(&a)
	_ = r.DumpProm(&b)
	if a.String() != b.String() {
		t.Fatal("collision dedup not deterministic")
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("m.hits", "hits").Add(2)
	srv := httptest.NewServer(PromHandler(r, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "# TYPE m_hits counter") {
		t.Fatalf("prom endpoint body:\n%s", body)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("Cache-Control = %q", got)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Accept", "application/grpc")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("unsupported Accept returned %d, want 406", resp.StatusCode)
	}
}

func TestHandlerHardening(t *testing.T) {
	r := NewRegistry()
	r.Counter("svc.requests", "requests").Add(1)
	srv := httptest.NewServer(Handler(r, nil))
	defer srv.Close()

	// HEAD: headers, no body.
	resp, err := http.Head(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != 0 {
		t.Fatalf("HEAD returned a body: %q", body)
	}
	if resp.StatusCode != http.StatusOK ||
		resp.Header.Get("Cache-Control") != "no-store" ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("HEAD response: %d %v", resp.StatusCode, resp.Header)
	}

	// Unsupported Accept: 406, not a silent text default.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Accept", "image/png")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("Accept: image/png returned %d, want 406", resp.StatusCode)
	}

	// Wildcards and explicit types still negotiate.
	for _, accept := range []string{"", "*/*", "text/*", "text/plain",
		"application/json", "text/html;q=0.9, */*;q=0.1"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Accept %q returned %d, want 200", accept, resp.StatusCode)
		}
	}

	// ?format=json still wins regardless of Accept.
	resp, err = http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("format=json Content-Type = %q", ct)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	mk := func() *Histogram {
		return &Histogram{bounds: []float64{10, 20}, counts: make([]uint64, 3)}
	}

	// Zero samples: every quantile is 0.
	h := mk()
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Single sample: every quantile is that sample.
	h = mk()
	h.Observe(15)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := h.Quantile(q); got != 15 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 15", q, got)
		}
	}

	// q outside [0,1] clamps to min/max.
	h = mk()
	h.Observe(5)
	h.Observe(25)
	if h.Quantile(-0.5) != 5 || h.Quantile(2) != 25 {
		t.Fatalf("clamping wrong: q<0 -> %v, q>1 -> %v", h.Quantile(-0.5), h.Quantile(2))
	}

	// All mass in the overflow bucket: estimates stay within [min, max].
	h = mk()
	for _, v := range []float64{100, 200, 300} {
		h.Observe(v)
	}
	for _, q := range []float64{0, 0.3, 0.6, 0.99, 1} {
		got := h.Quantile(q)
		if got < 100 || got > 300 {
			t.Fatalf("overflow-bucket Quantile(%v) = %v outside [100,300]", q, got)
		}
	}

	// NaN observations are dropped entirely.
	h = mk()
	h.Observe(math.NaN())
	if h.Samples() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("NaN observation recorded: samples=%d", h.Samples())
	}
	h.Observe(12)
	h.Observe(math.NaN())
	if h.Samples() != 1 || h.Quantile(0.5) != 12 {
		t.Fatalf("NaN polluted histogram: samples=%d p50=%v", h.Samples(), h.Quantile(0.5))
	}

	// ±Inf land in the outermost buckets and saturate min/max without
	// breaking interior estimates.
	h = mk()
	h.Observe(math.Inf(-1))
	h.Observe(15)
	h.Observe(math.Inf(1))
	if h.counts[0] != 1 || h.counts[2] != 1 {
		t.Fatalf("Inf bucketing wrong: %v", h.counts)
	}
	if h.Quantile(0) != math.Inf(-1) || h.Quantile(1) != math.Inf(1) {
		t.Fatal("Inf extremes lost")
	}
	mid := h.Quantile(0.5)
	if math.IsNaN(mid) {
		t.Fatalf("interior quantile NaN with Inf extremes: %v", mid)
	}
}
