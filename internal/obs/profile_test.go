package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestAttributePriorityAndExactSum(t *testing.T) {
	p := NewProfile()
	// Compute covers [10,50); DMA [0,20) and [40,80); bus [0,100).
	p.Observe(BucketCompute, 10, 50)
	p.Observe(BucketDMA, 0, 20)
	p.Observe(BucketDMA, 40, 80)
	p.Observe(BucketBus, 0, 100)
	att := p.Attribute(120)

	if att.Ticks[BucketCompute] != 40 {
		t.Fatalf("compute = %d, want 40", att.Ticks[BucketCompute])
	}
	// DMA keeps [0,10) and [50,80): 10 + 30.
	if att.Ticks[BucketDMA] != 40 {
		t.Fatalf("dma = %d, want 40", att.Ticks[BucketDMA])
	}
	// Bus keeps [80,100): everything else was claimed above it.
	if att.Ticks[BucketBus] != 20 {
		t.Fatalf("bus = %d, want 20", att.Ticks[BucketBus])
	}
	if att.Ticks[BucketIdle] != 20 {
		t.Fatalf("idle = %d, want 20", att.Ticks[BucketIdle])
	}
	if att.Sum() != att.Total || att.Total != 120 {
		t.Fatalf("sum %d != total %d", att.Sum(), att.Total)
	}
}

func TestAttributeClipsAndDropsInstants(t *testing.T) {
	p := NewProfile()
	p.Observe(BucketDRAM, 90, 200) // clipped to [90,100)
	p.Observe(BucketDRAM, 150, 160)
	p.Observe(BucketBus, 5, 5) // instant: dropped
	ev := Event{Name: "writeback", Start: 7, End: 7}
	p.Listener(BucketCacheMiss)(ev) // instant via listener: dropped
	att := p.Attribute(100)
	if att.Ticks[BucketDRAM] != 10 || att.Ticks[BucketBus] != 0 || att.Ticks[BucketCacheMiss] != 0 {
		t.Fatalf("attribution = %+v", att.Ticks)
	}
	if att.Ticks[BucketIdle] != 90 || att.Sum() != 100 {
		t.Fatalf("idle=%d sum=%d", att.Ticks[BucketIdle], att.Sum())
	}
}

func TestAttributeRandomizedSumInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := NewProfile()
		total := uint64(rng.Intn(1000) + 1)
		for b := 0; b < int(BucketIdle); b++ {
			for k := rng.Intn(20); k > 0; k-- {
				start := uint64(rng.Intn(1200))
				p.Observe(Bucket(b), start, start+uint64(rng.Intn(300)))
			}
		}
		att := p.Attribute(total)
		if att.Sum() != total {
			t.Fatalf("trial %d: sum %d != total %d (ticks %v)",
				trial, att.Sum(), total, att.Ticks)
		}
		// Reset keeps the profile reusable: everything becomes idle.
		p.Reset()
		att = p.Attribute(total)
		if att.Ticks[BucketIdle] != total {
			t.Fatalf("trial %d: reset profile attributed %v", trial, att.Ticks)
		}
	}
}

func TestWriteFolded(t *testing.T) {
	p := NewProfile()
	p.Observe(BucketCompute, 0, 30)
	p.Observe(BucketDMA, 30, 50)
	att := p.Attribute(60)
	var buf bytes.Buffer
	if err := att.WriteFolded(&buf, "gemm"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{"gemm;compute 30", "gemm;dma 20", "gemm;idle 10"}
	if len(lines) != len(want) {
		t.Fatalf("folded output:\n%s", buf.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestBucketNames(t *testing.T) {
	seen := map[string]bool{}
	for b := 0; b < NumBuckets; b++ {
		name := Bucket(b).String()
		if name == "" || strings.Contains(name, "Bucket(") {
			t.Fatalf("bucket %d unnamed: %q", b, name)
		}
		if seen[name] {
			t.Fatalf("duplicate bucket name %q", name)
		}
		seen[name] = true
	}
}
