package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// tickPerMicro converts engine ticks (picoseconds) to the microseconds the
// Chrome trace-event format expects in its ts/dur fields.
const tickPerMicro = 1e6

// Tracer collects probe events onto named tracks and exports them as a
// Chrome trace-event / Perfetto JSON timeline: one process ("soc"), one
// thread per track, span events for activity windows and instant events
// for point occurrences. Load the output at ui.perfetto.dev.
type Tracer struct {
	tracks   []*Track
	byName   map[string]*Track
	flushers []func()
}

// Track is one horizontal timeline row in the exported trace.
type Track struct {
	name   string
	tid    int
	events []Event
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{byName: make(map[string]*Track)}
}

// Track returns the track with the given name, creating it on first use.
// Creation order fixes the vertical order in the Perfetto UI.
func (t *Tracer) Track(name string) *Track {
	if tr, ok := t.byName[name]; ok {
		return tr
	}
	tr := &Track{name: name, tid: len(t.tracks) + 1}
	t.byName[name] = tr
	t.tracks = append(t.tracks, tr)
	return tr
}

// Tracks returns the track names in creation order.
func (t *Tracer) Tracks() []string {
	out := make([]string, len(t.tracks))
	for i, tr := range t.tracks {
		out[i] = tr.name
	}
	return out
}

// Events reports the total number of recorded events.
func (t *Tracer) Events() int {
	n := 0
	for _, tr := range t.tracks {
		n += len(tr.events)
	}
	return n
}

// Add records an event on the track.
func (tr *Track) Add(ev Event) { tr.events = append(tr.events, ev) }

// Subscribe routes every event fired on p to the named track.
func (t *Tracer) Subscribe(p *Probe, track string) {
	tr := t.Track(track)
	p.Listen(tr.Add)
}

// SubscribeFunc routes each event to the track chosen by name(ev),
// letting one probe fan out across per-bank or per-master tracks.
func (t *Tracer) SubscribeFunc(p *Probe, name func(Event) string) {
	p.Listen(func(ev Event) { t.Track(name(ev)).Add(ev) })
}

// laneWindow is one open busy span being coalesced by MergeLanes.
type laneWindow struct {
	start, end uint64
	ops        uint64
}

// MergeLanes subscribes to p and coalesces its (typically very dense)
// per-node span events into per-lane busy windows: consecutive events on
// one lane whose gap is at most gap ticks merge into a single span named
// spanName, with the merged op count attached. Tracks are named
// fmt.Sprintf(trackFmt, lane). This keeps datapath tracks compact — a
// 100k-node kernel becomes a handful of busy/stall windows — while the
// probe itself still reports every node retirement to other listeners.
func (t *Tracer) MergeLanes(p *Probe, trackFmt, spanName string, gap uint64) {
	open := make(map[int32]*laneWindow)
	flush := func(lane int32, w *laneWindow) {
		t.Track(fmt.Sprintf(trackFmt, lane)).Add(Event{
			Name: spanName, Start: w.start, End: w.end, Lane: lane, Count: w.ops})
	}
	p.Listen(func(ev Event) {
		w := open[ev.Lane]
		if w != nil && ev.Start <= w.end+gap {
			if ev.End > w.end {
				w.end = ev.End
			}
			w.ops++
			return
		}
		if w != nil {
			flush(ev.Lane, w)
		}
		open[ev.Lane] = &laneWindow{start: ev.Start, end: ev.End, ops: 1}
	})
	t.flushers = append(t.flushers, func() {
		lanes := make([]int32, 0, len(open))
		for lane := range open {
			lanes = append(lanes, lane)
		}
		sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
		for _, lane := range lanes {
			flush(lane, open[lane])
			delete(open, lane)
		}
	})
}

// traceEvent is one JSON record in the Chrome trace-event format.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const socPid = 1

// streamWriter accumulates the first write error so trace serialization
// loops stay unconditional.
type streamWriter struct {
	w   io.Writer
	err error
}

func (s *streamWriter) write(b []byte) {
	if s.err == nil {
		_, s.err = s.w.Write(b)
	}
}

func (s *streamWriter) printf(format string, args ...any) {
	if s.err == nil {
		_, s.err = fmt.Fprintf(s.w, format, args...)
	}
}

// WriteJSON flushes any open merge windows and writes the whole timeline.
// Identical runs produce byte-identical output: tracks serialize in
// creation order, events in recording order, and metadata uses no
// map-ordered iteration. Events stream to w one at a time — the timeline
// is never materialized as one slice, so a long service run's memory
// ceiling is the recorded events themselves, not a second copy at dump
// time.
func (t *Tracer) WriteJSON(w io.Writer) error {
	for _, fl := range t.flushers {
		fl()
	}
	sw := &streamWriter{w: w}
	sw.printf(`{"traceEvents":[`)
	first := true
	emit := func(te traceEvent) {
		if sw.err != nil {
			return
		}
		b, err := json.Marshal(te)
		if err != nil {
			sw.err = err
			return
		}
		if !first {
			sw.printf(",")
		}
		first = false
		sw.write(b)
	}
	emit(traceEvent{
		Name: "process_name", Ph: "M", Pid: socPid, Tid: 0,
		Args: map[string]any{"name": "gem5-aladdin soc"},
	})
	for i, tr := range t.tracks {
		emit(traceEvent{
			Name: "thread_name", Ph: "M", Pid: socPid, Tid: tr.tid,
			Args: map[string]any{"name": tr.name},
		})
		emit(traceEvent{
			Name: "thread_sort_index", Ph: "M", Pid: socPid, Tid: tr.tid,
			Args: map[string]any{"sort_index": i},
		})
	}
	for _, tr := range t.tracks {
		for _, ev := range tr.events {
			te := traceEvent{
				Name: ev.Name,
				Ts:   float64(ev.Start) / tickPerMicro,
				Pid:  socPid,
				Tid:  tr.tid,
				Args: eventArgs(ev),
			}
			if ev.Instant() {
				te.Ph = "i"
				te.S = "t"
			} else {
				te.Ph = "X"
				dur := float64(ev.End-ev.Start) / tickPerMicro
				te.Dur = &dur
			}
			emit(te)
		}
	}
	sw.printf("],\"displayTimeUnit\":\"ns\"}\n")
	return sw.err
}

// eventArgs builds the args payload; JSON map keys marshal sorted, so this
// stays deterministic.
func eventArgs(ev Event) map[string]any {
	if ev.Bytes == 0 && ev.Count == 0 && ev.Lane <= 0 {
		return nil
	}
	args := make(map[string]any, 3)
	if ev.Bytes != 0 {
		args["bytes"] = ev.Bytes
	}
	if ev.Count != 0 {
		args["count"] = ev.Count
	}
	if ev.Lane > 0 {
		args["lane"] = ev.Lane
	}
	return args
}
