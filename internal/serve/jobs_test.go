package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/serve"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/store"
	"gem5aladdin/internal/trace"
)

// jobStatus mirrors the GET /jobs/{id} reply for decoding in tests.
type jobStatus struct {
	JobID     string `json:"job_id"`
	Kernel    string `json:"kernel"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	Resumed   bool   `json:"resumed,omitempty"`
	Points    int    `json:"points"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Pending   int    `json:"pending"`

	Kind      string `json:"kind,omitempty"`
	Round     int    `json:"round,omitempty"`
	FrontSize int    `json:"front_size,omitempty"`
	Simulated int    `json:"simulated,omitempty"`
}

// jobLine mirrors one NDJSON line of GET /jobs/{id}/results. Summary lines
// reuse the struct with the summary-only fields populated.
type jobLine struct {
	Index    int            `json:"index"`
	Status   string         `json:"status"`
	Record   *report.Record `json:"record,omitempty"`
	Kind     string         `json:"kind,omitempty"`
	Error    string         `json:"error,omitempty"`
	Attempts int            `json:"attempts,omitempty"`

	Requested  int             `json:"requested"`
	Evaluated  int             `json:"evaluated"`
	Failed     int             `json:"failed"`
	Failures   []jobLine       `json:"failures,omitempty"`
	EDPOptimal *report.Record  `json:"edp_optimal,omitempty"`
	Pareto     []report.Record `json:"pareto"`
}

func submitJob(t *testing.T, url string, req serve.SweepRequest) string {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submission: status %d: %s", resp.StatusCode, out)
	}
	var ack struct {
		JobID  string `json:"job_id"`
		State  string `json:"state"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal(out, &ack); err != nil {
		t.Fatalf("decoding job ack: %v\n%s", err, out)
	}
	if ack.JobID == "" || ack.State != "running" {
		t.Fatalf("bad job ack: %+v", ack)
	}
	return ack.JobID
}

func getJob(t *testing.T, url, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status: %d: %s", resp.StatusCode, out)
	}
	var st jobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("decoding job status: %v\n%s", err, out)
	}
	return st
}

// waitJob polls until the job leaves "running" (or the deadline passes) and
// returns the terminal status.
func waitJob(t *testing.T, url, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getJob(t, url, id)
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after 30s: %+v", id, st.State, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// streamJob reads the full NDJSON result stream: the per-point lines in
// request order and the terminating summary line.
func streamJob(t *testing.T, url, id string) (raw []byte, lines []jobLine, summary jobLine) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job results: %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	split := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(split) == 0 {
		t.Fatalf("empty result stream")
	}
	for _, ln := range split {
		var l jobLine
		if err := json.Unmarshal([]byte(ln), &l); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, ln)
		}
		lines = append(lines, l)
	}
	summary = lines[len(lines)-1]
	if summary.Status != "summary" {
		t.Fatalf("stream did not end with a summary line: %+v", summary)
	}
	return raw, lines[:len(lines)-1], summary
}

// TestJobSubmitPollStream drives the happy path end to end: submit, poll to
// completion, stream the results, and demand the stream carry exactly the
// records a direct dse.Sweep produces.
func TestJobSubmitPollStream(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	req := quickReq()
	id := submitJob(t, ts.URL, req)

	st := waitJob(t, ts.URL, id)
	if st.State != "completed" {
		t.Fatalf("job state %q (error %q), want completed", st.State, st.Error)
	}
	if st.Points != 4 || st.Completed != 4 || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("job progress off: %+v", st)
	}

	_, lines, sum := streamJob(t, ts.URL, id)
	if len(lines) != 4 {
		t.Fatalf("got %d point lines, want 4", len(lines))
	}
	space, pareto, edp := directSweep(t, req)
	for i, l := range lines {
		if l.Index != i || l.Status != "ok" || l.Record == nil {
			t.Fatalf("line %d malformed: %+v", i, l)
		}
		if !reflect.DeepEqual(*l.Record, space[i]) {
			t.Fatalf("line %d record diverges from direct sweep", i)
		}
	}
	if sum.Requested != 4 || sum.Evaluated != 4 || sum.Failed != 0 {
		t.Fatalf("summary counts off: %+v", sum)
	}
	if !reflect.DeepEqual(sum.Pareto, pareto) {
		t.Fatalf("summary Pareto diverges from direct sweep")
	}
	if !reflect.DeepEqual(sum.EDPOptimal, edp) {
		t.Fatalf("summary EDP optimum diverges from direct sweep")
	}
}

// TestJobStreamsByteIdentical pins the stream's determinism contract: the
// same request streamed twice — once simulated cold, once replayed from the
// in-memory cache — yields byte-identical NDJSON. This is the property the
// kill-and-restart test leans on to prove a resumed job lost nothing.
func TestJobStreamsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	req := quickReq()

	idA := submitJob(t, ts.URL, req)
	waitJob(t, ts.URL, idA)
	rawA, _, _ := streamJob(t, ts.URL, idA)

	idB := submitJob(t, ts.URL, req)
	waitJob(t, ts.URL, idB)
	rawB, _, _ := streamJob(t, ts.URL, idB)

	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("cold and cached streams differ:\n--- cold ---\n%s\n--- cached ---\n%s", rawA, rawB)
	}
}

// mixedFaultReq is a cache-mode grid under seeded bus-NACK fault injection
// tuned (deterministically — the fault streams are seeded) so that exactly
// one design point loses a miss transaction to a bus drop and stalls while
// the other five complete. The stall is caught by the server's no-progress
// point budget, not by a config watchdog: the request leaves WatchdogTicks
// zero, so this grid also covers the Options.PointBudget wiring.
func mixedFaultReq() serve.SweepRequest {
	return serve.SweepRequest{
		Kernel:     "spmv-crs",
		Mem:        "cache",
		Lanes:      []int{1},
		CacheKB:    []int{2, 4, 8, 16, 32, 64},
		CacheLines: []int{32},
		CachePorts: []int{1},
		CacheAssoc: []int{2},
		Faults: &serve.FaultSpec{
			Seed:          7,
			BusNackProb:   0.3,
			BusRetryLimit: 6,
			BusBackoffNS:  10,
		},
	}
}

// TestJobFailureIsolation is the acceptance criterion for per-point failure
// isolation: a stalled point fails alone, classified and enumerated, and the
// job still completes with a Pareto front over the five survivors.
func TestJobFailureIsolation(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{
		Workers:     2,
		PointBudget: sim.Tick(1e9), // 1 ms of virtual time: only a true stall trips it
	})
	id := submitJob(t, ts.URL, mixedFaultReq())

	st := waitJob(t, ts.URL, id)
	if st.State != "completed" {
		t.Fatalf("job state %q (error %q), want completed despite the stalled point", st.State, st.Error)
	}
	if st.Points != 6 || st.Completed != 5 || st.Failed != 1 {
		t.Fatalf("job progress off: %+v", st)
	}

	_, lines, sum := streamJob(t, ts.URL, id)
	var stalled []jobLine
	for _, l := range lines {
		switch l.Status {
		case "ok":
			if l.Record == nil {
				t.Fatalf("ok line without a record: %+v", l)
			}
		case "failed":
			stalled = append(stalled, l)
		default:
			t.Fatalf("unexpected line status %q", l.Status)
		}
	}
	if len(stalled) != 1 {
		t.Fatalf("got %d failed lines, want 1", len(stalled))
	}
	f := stalled[0]
	if f.Kind != "stall" {
		t.Fatalf("failure kind %q, want stall", f.Kind)
	}
	if f.Attempts != 1 {
		t.Fatalf("stall retried %d times; stalls are deterministic and must not retry", f.Attempts-1)
	}
	if !strings.Contains(f.Error, "aborted") {
		t.Fatalf("failure error %q does not mention the abort", f.Error)
	}
	if sum.Evaluated != 5 || sum.Failed != 1 || len(sum.Failures) != 1 {
		t.Fatalf("summary counts off: %+v", sum)
	}
	if len(sum.Pareto) == 0 || sum.EDPOptimal == nil {
		t.Fatalf("summary lost the surviving points' front: %+v", sum)
	}
	if snap := s.Snapshot(); snap.PointsAborted != 1 {
		t.Fatalf("PointsAborted = %d, want 1", snap.PointsAborted)
	}
}

// TestJobFaultRetryExhaustion pins the retry policy end to end: a DMA grid
// whose descriptors always time out aborts every point as kind "fault" after
// exactly 1 + MaxPointRetries attempts, and the retry counter adds up.
func TestJobFaultRetryExhaustion(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{
		Workers:           2,
		MaxPointRetries:   2,
		PointRetryBackoff: time.Microsecond,
	})
	req := serve.SweepRequest{
		Kernel:     "spmv-crs",
		Mem:        "dma",
		Lanes:      []int{1, 2},
		Partitions: []int{1, 2},
		Faults: &serve.FaultSpec{
			Seed:         1,
			DMATimeoutNS: 1, // far below any descriptor's transfer time
			DMARetries:   0,
		},
	}
	id := submitJob(t, ts.URL, req)

	st := waitJob(t, ts.URL, id)
	if st.State != "completed" {
		t.Fatalf("job state %q, want completed (failures are per-point, not per-job)", st.State)
	}
	if st.Completed != 0 || st.Failed != 4 {
		t.Fatalf("job progress off: %+v", st)
	}

	_, lines, sum := streamJob(t, ts.URL, id)
	for _, l := range lines {
		if l.Status != "failed" || l.Kind != "fault" {
			t.Fatalf("expected a fault failure, got %+v", l)
		}
		if l.Attempts != 3 {
			t.Fatalf("point attempted %d times, want 3 (1 + 2 retries)", l.Attempts)
		}
	}
	if sum.Evaluated != 0 || sum.Failed != 4 {
		t.Fatalf("summary counts off: %+v", sum)
	}
	if sum.EDPOptimal != nil || len(sum.Pareto) != 0 {
		t.Fatalf("empty space grew a front: %+v", sum)
	}
	if snap := s.Snapshot(); snap.PointRetries != 8 {
		t.Fatalf("PointRetries = %d, want 8 (4 points x 2 retries)", snap.PointRetries)
	}
}

// TestJobCancel covers the client-initiated cancel path: DELETE while the
// job is gated pre-kernel must land it in the terminal "cancelled" state —
// durably, so a restart does NOT resume it.
func TestJobCancel(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "results"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	gate := make(chan struct{})
	s, ts := newTestServer(t, serve.Options{
		Workers: 1,
		Store:   st,
		BuildKernel: func(name string) (*trace.Trace, error) {
			<-gate
			return machsuite.MustBuild(name), nil
		},
	})
	id := submitJob(t, ts.URL, quickReq())

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	delDone := make(chan *http.Response, 1)
	go func() {
		resp, derr := http.DefaultClient.Do(delReq)
		if derr == nil {
			delDone <- resp
		} else {
			close(delDone)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the DELETE cancel the gated job
	close(gate)

	resp, ok := <-delDone
	if !ok {
		t.Fatal("DELETE failed")
	}
	defer resp.Body.Close()
	var final jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.State != "cancelled" {
		t.Fatalf("job state after DELETE = %q, want cancelled", final.State)
	}
	if snap := s.Snapshot(); snap.JobsCancelled != 1 {
		t.Fatalf("JobsCancelled = %d, want 1", snap.JobsCancelled)
	}

	// The manifest must be terminal on disk: a restarted server leaves it.
	data, ok2, err := st.Get("job/" + id)
	if err != nil || !ok2 {
		t.Fatalf("manifest missing after cancel: ok=%v err=%v", ok2, err)
	}
	var m struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.State != "cancelled" {
		t.Fatalf("durable manifest state %q, want cancelled", m.State)
	}
}

// TestWarmStartAcrossRestart is the durable-cache contract: a second server
// opened over the first server's store answers the same sweep from disk —
// zero new simulations, bit-identical records.
func TestWarmStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "results"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	req := quickReq()

	a := serve.New(serve.Options{Workers: 2, Store: st})
	tsA := httptest.NewServer(a.Handler())
	code, body := postSweep(t, tsA.URL, req)
	if code != http.StatusOK {
		t.Fatalf("cold sweep: %d: %s", code, body)
	}
	respA := decodeSweep(t, body)
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown A: %v", err)
	}

	b, tsB := newTestServer(t, serve.Options{Workers: 2, Store: st})
	code, body = postSweep(t, tsB.URL, req)
	if code != http.StatusOK {
		t.Fatalf("warm sweep: %d: %s", code, body)
	}
	respB := decodeSweep(t, body)

	snap := b.Snapshot()
	if snap.PointsSimulated != 0 {
		t.Fatalf("restarted server re-simulated %d points", snap.PointsSimulated)
	}
	if snap.WarmHits != 4 {
		t.Fatalf("WarmHits = %d, want 4", snap.WarmHits)
	}
	if respB.CachedPoints != 4 {
		t.Fatalf("CachedPoints = %d, want 4", respB.CachedPoints)
	}
	if !reflect.DeepEqual(respA.Space, respB.Space) ||
		!reflect.DeepEqual(respA.Pareto, respB.Pareto) ||
		!reflect.DeepEqual(respA.EDPOptimal, respB.EDPOptimal) {
		t.Fatalf("warm-start records diverge from the original run")
	}
}

// TestJobResumeAfterShutdown is the in-process resume contract: a job
// interrupted by Shutdown leaves its manifest "running", and the next server
// over the same store resumes it under the original ID and finishes it with
// results identical to an uninterrupted run.
func TestJobResumeAfterShutdown(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "results"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	req := quickReq()

	// Server A: the kernel build is gated so the job is deterministically
	// still running when Shutdown interrupts it.
	gate := make(chan struct{})
	a := serve.New(serve.Options{
		Workers: 1,
		Store:   st,
		BuildKernel: func(name string) (*trace.Trace, error) {
			<-gate
			return machsuite.MustBuild(name), nil
		},
	})
	tsA := httptest.NewServer(a.Handler())
	id := submitJob(t, tsA.URL, req)
	tsA.Close()

	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shut <- a.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown cancel the gated job
	close(gate)
	if err := <-shut; err != nil {
		t.Fatalf("shutdown A: %v", err)
	}

	// The manifest must still say "running": that is the resume signal.
	data, ok, err := st.Get("job/" + id)
	if err != nil || !ok {
		t.Fatalf("manifest missing after interrupt: ok=%v err=%v", ok, err)
	}
	var m struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.State != "running" {
		t.Fatalf("interrupted manifest state %q, want running", m.State)
	}

	// Server B resumes it at boot under the original ID.
	b, tsB := newTestServer(t, serve.Options{Workers: 2, Store: st})
	st2 := waitJob(t, tsB.URL, id)
	if st2.State != "completed" {
		t.Fatalf("resumed job state %q (error %q), want completed", st2.State, st2.Error)
	}
	if !st2.Resumed {
		t.Fatalf("job not marked resumed: %+v", st2)
	}
	if snap := b.Snapshot(); snap.JobsResumed != 1 {
		t.Fatalf("JobsResumed = %d, want 1", snap.JobsResumed)
	}

	_, lines, sum := streamJob(t, tsB.URL, id)
	space, pareto, edp := directSweep(t, req)
	if len(lines) != len(space) {
		t.Fatalf("resumed job streamed %d points, want %d", len(lines), len(space))
	}
	for i, l := range lines {
		if l.Status != "ok" || !reflect.DeepEqual(*l.Record, space[i]) {
			t.Fatalf("resumed line %d diverges from direct sweep: %+v", i, l)
		}
	}
	if !reflect.DeepEqual(sum.Pareto, pareto) || !reflect.DeepEqual(sum.EDPOptimal, edp) {
		t.Fatalf("resumed summary diverges from direct sweep")
	}
}

// TestCancelledLeaderDoesNotFailJoiners is the singleflight regression test:
// a leader that creates and queues design points, then times out and walks
// away, must not poison a joiner waiting on the same points. The joiner gets
// the full correct response, and every unique point is simulated exactly
// once — whether it was handed from the leader's entries or re-created after
// an abandonment.
func TestCancelledLeaderDoesNotFailJoiners(t *testing.T) {
	// The kernel build is gated so the interleaving is deterministic: the
	// leader enters first and burns its 1 ms deadline at the gate; the
	// joiner piles onto the same sync.Once; releasing the gate resumes both
	// at once, so the leader's acquire-then-cancel genuinely overlaps the
	// joiner's acquire.
	gate := make(chan struct{})
	s, ts := newTestServer(t, serve.Options{
		Workers: 1,
		BuildKernel: func(name string) (*trace.Trace, error) {
			<-gate
			return machsuite.MustBuild(name), nil
		},
	})
	req := quickReq()
	req.Lanes = []int{1, 2, 4}
	req.Partitions = []int{1, 2, 4}
	leader := req
	leader.TimeoutMS = 1

	leaderDone := make(chan int, 1)
	go func() {
		code, _ := postSweep(t, ts.URL, leader)
		leaderDone <- code
	}()
	waitActive := func(n int64) {
		deadline := time.Now().Add(10 * time.Second)
		for s.Snapshot().ActiveRequests != n {
			if time.Now().After(deadline) {
				t.Fatalf("never saw %d active requests", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitActive(1)

	joinerDone := make(chan []byte, 1)
	joinerCode := make(chan int, 1)
	go func() {
		code, body := postSweep(t, ts.URL, req)
		joinerCode <- code
		joinerDone <- body
	}()
	waitActive(2)
	close(gate)

	// The joiner either joins the leader's in-flight entries or re-creates
	// any the worker already abandoned; both paths must yield a full
	// correct response, never the leader's cancellation.
	if code := <-joinerCode; code != http.StatusOK {
		t.Fatalf("joiner got %d", code)
	}
	resp := decodeSweep(t, <-joinerDone)
	space, pareto, edp := directSweep(t, req)
	if !reflect.DeepEqual(resp.Space, space) ||
		!reflect.DeepEqual(resp.Pareto, pareto) ||
		!reflect.DeepEqual(resp.EDPOptimal, edp) {
		t.Fatalf("joiner response diverges from direct sweep after leader cancellation")
	}

	if code := <-leaderDone; code != http.StatusGatewayTimeout {
		t.Fatalf("leader got %d, want 504", code)
	}

	// The grid holds exactly nine unique points; the leader's cancellation
	// must not cause re-simulation or loss, whichever handoff path ran.
	if snap := s.Snapshot(); snap.PointsSimulated != 9 {
		t.Fatalf("PointsSimulated = %d, want 9", snap.PointsSimulated)
	}
}

// TestJobAPIValidation covers the error surface: bad kernels fail the job
// terminally, unknown jobs 404, and wrong methods are rejected.
func TestJobAPIValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})

	// Unknown kernel: accepted (the build happens async) but fails.
	id := submitJob(t, ts.URL, serve.SweepRequest{Kernel: "no-such-kernel"})
	st := waitJob(t, ts.URL, id)
	if st.State != "failed" || st.Error == "" {
		t.Fatalf("bad-kernel job state %+v, want failed with an error", st)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("results of a failed job: %d, want 409", resp.StatusCode)
	}

	// Unknown job ID.
	resp, err = http.Get(ts.URL + "/jobs/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}

	// Bad grid: rejected at submission.
	body, _ := json.Marshal(serve.SweepRequest{Kernel: "spmv-crs", Mem: "bogus"})
	r, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mem kind: %d, want 400", r.StatusCode)
	}

	// Wrong method on /jobs.
	r, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /jobs: %d, want 405", r.StatusCode)
	}
}
