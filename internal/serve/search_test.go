package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/serve"
	"gem5aladdin/internal/store"
)

// searchReq is a search job over a fully-enumerable 900-point DMA space:
// big enough that a budgeted search runs several rounds, cheap enough for
// tests (the same space the dse-level search tests pin).
func searchReq(budget, init, round int) serve.SweepRequest {
	return serve.SweepRequest{
		Kernel: "spmv-crs",
		Mem:    "dma",
		Search: &serve.SearchSpec{
			Seed:   7,
			Budget: budget,
			Init:   init,
			Round:  round,
			Axes: []dse.SearchAxis{
				{Name: "lanes", Values: []int{1, 2, 4, 8, 16}},
				{Name: "partitions", Values: []int{1, 2, 4, 8, 16}},
				{Name: "spad_ports", Values: []int{1, 2, 4}},
				{Name: "pipelined_dma", Values: []int{0, 1}},
				{Name: "dma_triggered", Values: []int{0, 1}},
				{Name: "dma_chunk", Values: []int{1024, 4096, 16384}},
			},
		},
	}
}

// searchLine mirrors one NDJSON line of a search job's result stream.
type searchLine struct {
	Status    string `json:"status"`
	Round     int    `json:"round"`
	Evaluated int    `json:"evaluated"`
	FrontSize int    `json:"front_size"`
	Front     []struct {
		Point     map[string]int `json:"point"`
		RuntimeUS float64        `json:"runtime_us"`
		PowerMW   float64        `json:"power_mw"`
		EDPnJs    float64        `json:"edp_njs"`
	} `json:"front"`

	Kind        string          `json:"kind,omitempty"`
	SpacePoints uint64          `json:"space_points,omitempty"`
	Rounds      int             `json:"rounds,omitempty"`
	Converged   bool            `json:"converged,omitempty"`
	EDPOptimal  *report.Record  `json:"edp_optimal,omitempty"`
	Pareto      []report.Record `json:"pareto,omitempty"`
}

// streamSearch reads a search job's full NDJSON stream: round lines and the
// terminating summary.
func streamSearch(t *testing.T, url, id string) (raw []byte, rounds []searchLine, summary searchLine) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search results: %d: %s", resp.StatusCode, raw)
	}
	for _, ln := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var l searchLine
		if err := json.Unmarshal([]byte(ln), &l); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, ln)
		}
		rounds = append(rounds, l)
	}
	if len(rounds) == 0 {
		t.Fatal("empty search stream")
	}
	summary = rounds[len(rounds)-1]
	if summary.Status != "summary" || summary.Kind != "search" {
		t.Fatalf("stream did not end with a search summary: %+v", summary)
	}
	return raw, rounds[:len(rounds)-1], summary
}

// TestSearchJobSubmitPollStream drives the search job kind end to end:
// submit, poll (budget-denominated progress plus round/front fields), stream
// the round lines and summary, and check the clamp on the server budget cap.
func TestSearchJobSubmitPollStream(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, MaxSearchBudget: 48})
	req := searchReq(0, 16, 8) // unset budget: clamps to MaxSearchBudget
	id := submitJob(t, ts.URL, req)

	st := waitJob(t, ts.URL, id)
	if st.State != "completed" {
		t.Fatalf("search job state %q (error %q), want completed", st.State, st.Error)
	}
	if st.Kind != "search" {
		t.Fatalf("job kind %q, want search", st.Kind)
	}
	if st.Points != 48 {
		t.Fatalf("budget not clamped to MaxSearchBudget: points=%d", st.Points)
	}
	if st.Completed != 48 || st.Pending != 0 {
		t.Fatalf("search progress off: %+v", st)
	}
	if st.Round < 2 || st.FrontSize == 0 {
		t.Fatalf("missing adaptive progress fields: %+v", st)
	}
	if st.Simulated == 0 || st.Simulated > st.Completed {
		t.Fatalf("simulated count off: %+v", st)
	}

	_, rounds, sum := streamSearch(t, ts.URL, id)
	if len(rounds) != st.Round {
		t.Fatalf("streamed %d round lines, status says %d rounds", len(rounds), st.Round)
	}
	prev := 0
	for i, r := range rounds {
		if r.Status != "round" || r.Round != i {
			t.Fatalf("round line %d malformed: %+v", i, r)
		}
		if r.Evaluated <= prev || r.FrontSize != len(r.Front) || r.FrontSize == 0 {
			t.Fatalf("round line %d counts off: %+v", i, r)
		}
		prev = r.Evaluated
		for _, f := range r.Front {
			if len(f.Point) != 6 || f.RuntimeUS <= 0 || f.PowerMW <= 0 {
				t.Fatalf("front member malformed: %+v", f)
			}
		}
	}
	if sum.Evaluated != 48 || sum.SpacePoints != 900 || sum.Rounds != st.Round {
		t.Fatalf("summary counts off: %+v", sum)
	}
	if len(sum.Pareto) == 0 || sum.EDPOptimal == nil {
		t.Fatalf("summary missing front or optimum: %+v", sum)
	}

	// The EDP optimum lies on the streamed front (EDP = power x runtime^2,
	// so optimizing the front finds it).
	onFront := false
	for _, rec := range sum.Pareto {
		if rec == *sum.EDPOptimal {
			onFront = true
		}
	}
	if !onFront {
		t.Fatal("EDP optimum not on the Pareto front")
	}
}

// TestSearchRejectedOnSweepEndpoint pins the synchronous-API boundary:
// search requests only run as jobs.
func TestSearchRejectedOnSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	code, body := postSweep(t, ts.URL, searchReq(16, 8, 4))
	if code != http.StatusBadRequest {
		t.Fatalf("POST /sweep with search spec: status %d: %s", code, body)
	}
}

// TestSearchJobStreamsByteIdentical submits the same search twice on one
// durable server: the second job replays every point from the store (and
// starts a fresh frontier under its own job ID) yet must stream exactly the
// same bytes — the determinism the kill-and-restart test builds on.
func TestSearchJobStreamsByteIdentical(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "results"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, ts := newTestServer(t, serve.Options{Workers: 2, Store: st})
	req := searchReq(48, 16, 8)

	idA := submitJob(t, ts.URL, req)
	if got := waitJob(t, ts.URL, idA); got.State != "completed" {
		t.Fatalf("first search %q (error %q)", got.State, got.Error)
	}
	rawA, _, _ := streamSearch(t, ts.URL, idA)

	before := srv.Snapshot().PointsSimulated
	idB := submitJob(t, ts.URL, req)
	if got := waitJob(t, ts.URL, idB); got.State != "completed" {
		t.Fatalf("second search %q (error %q)", got.State, got.Error)
	}
	rawB, _, _ := streamSearch(t, ts.URL, idB)
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("replayed search streamed different bytes")
	}
	if sim := srv.Snapshot().PointsSimulated - before; sim != 0 {
		t.Fatalf("replayed search re-simulated %d points", sim)
	}
	// Terminal searches drop their frontier checkpoints.
	for _, id := range []string{idA, idB} {
		if _, ok, _ := st.Get("search/" + id); ok {
			t.Fatalf("checkpoint for terminal job %s not dropped", id)
		}
	}
}

// TestSearchJobResumeAfterShutdown is the in-process frontier-resume
// contract: a search interrupted mid-run by Shutdown leaves its manifest
// "running" and its frontier checkpoint in the store; the next server over
// the same store resumes it under the original job ID and streams exactly
// what an uninterrupted server streams.
func TestSearchJobResumeAfterShutdown(t *testing.T) {
	req := searchReq(96, 16, 8)

	// Uninterrupted reference on its own store.
	refStore, err := store.Open(filepath.Join(t.TempDir(), "ref"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	_, tsRef := newTestServer(t, serve.Options{Workers: 2, Store: refStore})
	refID := submitJob(t, tsRef.URL, req)
	if got := waitJob(t, tsRef.URL, refID); got.State != "completed" {
		t.Fatalf("reference search %q (error %q)", got.State, got.Error)
	}
	refRaw, _, _ := streamSearch(t, tsRef.URL, refID)

	// Server A: single worker so the search is reliably mid-flight when the
	// round-2 poll triggers Shutdown.
	dir := filepath.Join(t.TempDir(), "results")
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := serve.New(serve.Options{Workers: 1, Store: st})
	tsA := httptest.NewServer(a.Handler())
	id := submitJob(t, tsA.URL, req)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := getJob(t, tsA.URL, id); st.Round >= 2 && st.State == "running" {
			break
		} else if st.State != "running" {
			t.Fatalf("search finished before the interrupt: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("search never reached round 2")
		}
		time.Sleep(2 * time.Millisecond)
	}
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown A: %v", err)
	}
	cancel()

	// The frontier checkpoint and the "running" manifest are the resume
	// signals left behind.
	if _, ok, _ := st.Get("search/" + id); !ok {
		t.Fatal("interrupted search left no frontier checkpoint")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b, tsB := newTestServer(t, serve.Options{Workers: 2, Store: st2})
	got := waitJob(t, tsB.URL, id)
	if got.State != "completed" {
		t.Fatalf("resumed search %q (error %q)", got.State, got.Error)
	}
	if !got.Resumed || got.Kind != "search" {
		t.Fatalf("resumed search status off: %+v", got)
	}
	if snap := b.Snapshot(); snap.JobsResumed != 1 {
		t.Fatalf("JobsResumed = %d, want 1", snap.JobsResumed)
	}
	// The resumed run replays the interrupted run's work from the store:
	// it must re-simulate strictly less than it evaluates.
	if got.Simulated >= got.Completed {
		t.Fatalf("resume re-simulated everything: %+v", got)
	}
	raw, _, _ := streamSearch(t, tsB.URL, id)
	if !bytes.Equal(raw, refRaw) {
		t.Fatalf("resumed stream differs from uninterrupted reference:\n--- resumed\n%s\n--- reference\n%s", raw, refRaw)
	}
	if _, ok, _ := st2.Get("search/" + id); ok {
		t.Fatal("completed search left its checkpoint behind")
	}
}

// TestSearchJobCancel: DELETE on a running search is terminal — state
// "cancelled", checkpoint dropped, no resume on a later boot.
func TestSearchJobCancel(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "results"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := newTestServer(t, serve.Options{Workers: 1, Store: st})
	id := submitJob(t, ts.URL, searchReq(96, 16, 8))

	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := getJob(t, ts.URL, id); st.Round >= 1 && st.State == "running" {
			break
		} else if st.State != "running" {
			t.Fatalf("search finished before the cancel: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("search never reached round 1")
		}
		time.Sleep(2 * time.Millisecond)
	}
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := waitJob(t, ts.URL, id)
	if got.State != "cancelled" {
		t.Fatalf("cancelled search state %q", got.State)
	}
	if _, ok, _ := st.Get("search/" + id); ok {
		t.Fatal("cancelled search left its checkpoint behind")
	}
	if data, ok, _ := st.Get("job/" + id); ok {
		var m struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		if m.State != "cancelled" {
			t.Fatalf("cancelled manifest state %q", m.State)
		}
	}
}
