package serve

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/soc"
)

// errAbandoned resolves an entry every waiter walked away from before a
// worker picked it up: the point was never simulated. Live requests can
// never observe it — abandonment requires zero waiters — it exists so the
// entry's done channel can be closed exactly once.
var errAbandoned = errors.New("serve: design point abandoned before simulation")

// entry is one content-addressed design point: the unit of caching and of
// singleflight deduplication. The first request to need a point creates its
// entry and queues it; concurrent requests for the same point join the same
// entry and wait on done. After done closes the result fields are immutable,
// so readers need no lock (channel close is the happens-before edge).
type entry struct {
	key string
	k   *soc.Compiled
	cfg soc.Config

	done chan struct{}

	// Result fields, final once done is closed. Exactly one of res,
	// aborted, err is meaningful: res for a completed simulation, aborted
	// for a point the robustness layer poisoned (soc.ErrAborted — the
	// sweep-compaction case), err for a genuine failure. An aborted entry
	// carries its classification (failKind is a soc.Abort* label), its
	// abort message, and the attempts the retry policy spent.
	res      *soc.RunResult
	aborted  bool
	err      error
	failKind string
	failErr  string
	attempts int
	// warm marks an entry materialized from the durable store rather than
	// simulated by this process.
	warm bool

	// Guarded by Server.mu until done closes.
	waiters int // requests currently waiting on this point

	// span is the creating request's per-point span; qspan times the wait
	// from enqueue to worker claim. Both are the nil no-op span when the
	// creator ran untraced. Written under Server.mu before enqueue; only
	// the claiming worker touches them afterwards (the mutex is the
	// happens-before edge).
	span  *obs.Span
	qspan *obs.Span
}

// enqueue appends e to the run queue and wakes one worker. Callers hold s.mu.
func (s *Server) enqueue(e *entry) {
	s.queue = append(s.queue, e)
	s.cond.Signal()
}

// dequeue pops the oldest queued entry, blocking until one is available or
// the pool is closing. The queue is a head-indexed compacting FIFO: popped
// slots are nilled (no retention) and the backing array is reused once the
// consumed prefix dominates. Callers hold s.mu.
func (s *Server) dequeue() (*entry, bool) {
	for len(s.queue) == s.qhead && !s.closing {
		s.cond.Wait()
	}
	if s.qhead == len(s.queue) {
		return nil, false // closing and drained
	}
	e := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead++
	if s.qhead > 64 && s.qhead*2 > len(s.queue) {
		n := copy(s.queue, s.queue[s.qhead:])
		for i := n; i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	return e, true
}

// worker owns one reusable soc.Runner and drains the point queue. The
// Runner recycles the event queue, coherence directory, and datapath
// scheduler between points, so a long-lived service stops paying the warm-up
// allocations that dominate one-shot fabric construction.
func (s *Server) worker() {
	defer s.wgWorkers.Done()
	var r soc.Runner
	for {
		s.mu.Lock()
		e, ok := s.dequeue()
		if !ok {
			s.mu.Unlock()
			return
		}
		if e.waiters == 0 {
			// Every requester cancelled before simulation began: skip the
			// point and forget it, so the worker slot goes to live work and
			// a future request re-simulates rather than waiting forever.
			delete(s.cache, e.key)
			e.err = errAbandoned
			close(e.done)
			s.pointsAbandoned.Add(1)
			s.mu.Unlock()
			e.qspan.EndSpan()
			e.span.SetAttr("abandoned", true)
			e.span.EndSpan()
			continue
		}
		s.mu.Unlock()

		e.qspan.EndSpan()
		span := e.span.Child("simulate")
		started := time.Now()
		res, attempts, err := s.simulatePoint(&r, e)
		elapsed := time.Since(started)

		// Persist the outcome BEFORE announcing completion: once a waiter
		// observes done, the result is durable (modulo the store's fsync
		// batching — a SIGKILL never loses it, only an OS crash can lose
		// the unsynced tail).
		if s.opt.Store != nil {
			var cp *dse.CachedPoint
			switch {
			case err == nil:
				cp = &dse.CachedPoint{Result: res}
			case errors.Is(err, soc.ErrAborted):
				cp = &dse.CachedPoint{Aborted: true, Kind: soc.AbortKind(err),
					Err: err.Error(), Attempts: attempts}
			}
			if cp != nil {
				if data, eerr := dse.EncodePoint(cp); eerr == nil {
					if perr := s.opt.Store.Put(e.key, data); perr != nil {
						if lg := s.opt.Logger; lg != nil {
							lg.Warn("store write failed",
								"key", shortKey(e.key), "err", perr.Error())
						}
					}
				}
			}
		}

		s.mu.Lock()
		switch {
		case err == nil:
			e.res = res
			span.SetAttr("cycles", res.Cycles)
		case errors.Is(err, soc.ErrAborted):
			e.aborted = true
			e.failKind = soc.AbortKind(err)
			e.failErr = err.Error()
			e.attempts = attempts
			s.pointsAborted.Add(1)
			span.SetAttr("aborted", true)
			span.SetAttr("kind", e.failKind)
		default:
			e.err = err
			// Failures are not cached: the next request retries.
			delete(s.cache, e.key)
			span.SetAttr("error", err.Error())
		}
		if e.err == nil {
			s.finished(e.key)
		}
		close(e.done)
		s.mu.Unlock()
		s.pointsSimulated.Add(1)
		span.EndSpan()
		e.span.EndSpan()

		if lg := s.opt.Logger; lg != nil &&
			s.opt.SlowPoint > 0 && elapsed > s.opt.SlowPoint {
			lg.LogAttrs(context.Background(), slog.LevelWarn, "slow design point",
				slog.String("key", e.key),
				slog.Int64("elapsed_ms", elapsed.Milliseconds()),
				slog.Int("lanes", e.cfg.Lanes),
				slog.String("mem", e.cfg.Mem.String()))
		}
	}
}

// simulatePoint runs one design point under the per-point watchdog budget
// and the bounded retry policy. The budget is applied to a local config copy
// — the entry's config (and therefore its content-addressed key) stays
// exactly what the client asked for, so keys match cmd/dse's. Only
// fault-injection aborts retry; stalls and sanitizer violations are
// deterministic properties of the config and fail on the first attempt.
func (s *Server) simulatePoint(r *soc.Runner, e *entry) (*soc.RunResult, int, error) {
	cfg := e.cfg
	if s.opt.PointBudget > 0 && cfg.WatchdogTicks == 0 {
		cfg.WatchdogTicks = s.opt.PointBudget
	}
	attempts := 0
	backoff := s.opt.PointRetryBackoff
	for {
		attempts++
		res, err := r.Run(e.k, cfg)
		if err == nil {
			return res, attempts, nil
		}
		if soc.AbortKind(err) != soc.AbortFault || attempts > s.opt.MaxPointRetries {
			return nil, attempts, err
		}
		s.pointRetries.Add(1)
		time.Sleep(backoff)
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// finished records a completed (cached) key for FIFO eviction and evicts the
// oldest completed points past the cache bound. Callers hold s.mu.
//
// Pops advance evictHead instead of reslicing: a reslice strands the
// consumed prefix in the backing array for the life of the server (append
// can never reuse it), so a long-lived server under sustained eviction
// would retain one slot per point ever evicted. The head region is
// compacted away on the same policy as the work queue (dequeue above).
func (s *Server) finished(key string) {
	s.evictOrder = append(s.evictOrder, key)
	for len(s.evictOrder)-s.evictHead > s.opt.CacheEntries {
		victim := s.evictOrder[s.evictHead]
		s.evictOrder[s.evictHead] = "" // release the key string
		s.evictHead++
		delete(s.cache, victim)
	}
	if s.evictHead > 64 && s.evictHead*2 > len(s.evictOrder) {
		n := copy(s.evictOrder, s.evictOrder[s.evictHead:])
		clear(s.evictOrder[n:])
		s.evictOrder = s.evictOrder[:n]
		s.evictHead = 0
	}
}

// acquire returns the entry for one design point, creating and queueing it
// on a miss. join reports whether the caller was registered as a waiter (and
// must call release); hit reports whether the point cost no new simulation
// (already complete, or joined in flight). On a miss the creating request's
// span (nil when untraced) parents the point's simulation spans, laid out on
// the given track; joiners share the creator's spans singleflight-style.
func (s *Server) acquire(key string, k *soc.Compiled, cfg soc.Config, parent *obs.Span, track int) (e *entry, join, hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.cache[key]; ok {
		select {
		case <-e.done:
			// Complete: immutable, no waiter bookkeeping needed.
			s.cacheHits.Add(1)
			return e, false, true
		default:
			e.waiters++
			s.cacheHits.Add(1)
			return e, true, true
		}
	}
	// Memory miss: consult the durable store before simulating. A stored
	// outcome — success or classified failure — materializes as an
	// already-complete entry, so a restarted server warm-starts instead of
	// re-simulating its history.
	if s.opt.Store != nil {
		if data, ok, _ := s.opt.Store.Get(key); ok {
			if cp, decoded, _ := dse.DecodePoint(data); decoded {
				e = &entry{key: key, k: k, cfg: cfg,
					done: make(chan struct{}), warm: true}
				if cp.Aborted {
					e.aborted = true
					e.failKind = cp.Kind
					e.failErr = cp.Err
					e.attempts = cp.Attempts
				} else {
					e.res = cp.Result
				}
				close(e.done)
				s.cache[key] = e
				s.finished(key)
				s.cacheHits.Add(1)
				s.warmHits.Add(1)
				return e, false, true
			}
		}
	}
	e = &entry{key: key, k: k, cfg: cfg, done: make(chan struct{}), waiters: 1}
	if parent != nil {
		e.span = parent.ChildOn("point", track)
		e.span.SetAttr("key", shortKey(key))
		e.span.SetAttr("lanes", cfg.Lanes)
		e.qspan = e.span.Child("queue-wait")
	}
	s.cache[key] = e
	s.cacheMisses.Add(1)
	s.enqueue(e)
	return e, true, false
}

// shortKey abbreviates a content-addressed point key for span attributes
// and log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// release undoes one acquire-join: a request that stops waiting (completed,
// timed out, or disconnected) drops its claim so an unclaimed queued point
// can be skipped by the worker that reaches it.
func (s *Server) release(entries []*entry) {
	s.mu.Lock()
	for _, e := range entries {
		e.waiters--
	}
	s.mu.Unlock()
}

// kernelFor resolves a kernel name to its (cached) compiled artifact.
// Building a trace is expensive — the kernel executes functionally while
// tracing — and compiling derives the shared scheduling products, so both
// happen once per kernel per server, concurrency-safe via sync.Once; every
// queued design point then shares the one read-only artifact.
func (s *Server) kernelFor(kernel string) (*soc.Compiled, error) {
	s.gmu.Lock()
	ge, ok := s.graphs[kernel]
	if !ok {
		ge = &graphEntry{}
		s.graphs[kernel] = ge
	}
	s.gmu.Unlock()
	ge.once.Do(func() {
		tr, err := s.opt.BuildKernel(kernel)
		if err != nil {
			ge.err = err
			return
		}
		ge.k = soc.Compile(ddg.Build(tr))
	})
	return ge.k, ge.err
}

type graphEntry struct {
	once sync.Once
	k    *soc.Compiled
	err  error
}
