package serve_test

import (
	"net/http"
	"reflect"
	"testing"

	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/serve"
)

// TestSweepFabricAxisOverWire drives the fabric axis through the HTTP
// surface: a request naming all three backends must triple the grid and
// match a direct in-process sweep bit for bit.
func TestSweepFabricAxisOverWire(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	req := quickReq()
	req.Fabrics = []string{"bus", "crossbar", "mesh"}
	wantSpace, wantPareto, wantEDP := directSweep(t, req)
	if len(wantSpace) != 12 {
		t.Fatalf("direct grid has %d points, want 4 x 3 fabrics", len(wantSpace))
	}

	code, body := postSweep(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	resp := decodeSweep(t, body)
	if resp.RequestedPoints != 12 || resp.EvaluatedPoints != 12 {
		t.Fatalf("counts %d/%d, want 12/12", resp.RequestedPoints, resp.EvaluatedPoints)
	}
	if !reflect.DeepEqual(resp.Space, wantSpace) {
		t.Errorf("space differs from direct fabric sweep")
	}
	if !reflect.DeepEqual(resp.Pareto, wantPareto) {
		t.Errorf("pareto differs from direct fabric sweep")
	}
	if !reflect.DeepEqual(resp.EDPOptimal, wantEDP) {
		t.Errorf("EDP optimum differs: got %+v want %+v", resp.EDPOptimal, wantEDP)
	}

	// Omitting the axis must leave the legacy 4-point grid untouched.
	code, body = postSweep(t, ts.URL, quickReq())
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if resp := decodeSweep(t, body); resp.RequestedPoints != 4 {
		t.Errorf("legacy request swept %d points, want 4", resp.RequestedPoints)
	}
}

// TestSweepFabricValidation pins the failure modes: unknown backend names
// and impossible topology parameters are client errors, not 500s.
func TestSweepFabricValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})

	req := quickReq()
	req.Fabrics = []string{"warp-drive"}
	if code, body := postSweep(t, ts.URL, req); code != http.StatusBadRequest {
		t.Errorf("unknown fabric: status %d (%s), want 400", code, body)
	}

	req = quickReq()
	req.Fabrics = []string{"mesh"}
	req.MeshDim = 99
	if code, body := postSweep(t, ts.URL, req); code != http.StatusBadRequest {
		t.Errorf("mesh_dim 99: status %d (%s), want 400", code, body)
	}
}

// TestSearchJobFabricAxis submits a search job with the convenience fabric
// list: the server must append the fabric axis, and the evaluated points
// must carry it in their wire encoding.
func TestSearchJobFabricAxis(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	req := serve.SweepRequest{
		Kernel:  "spmv-crs",
		Mem:     "dma",
		Fabrics: []string{"bus", "crossbar", "mesh"},
		Search: &serve.SearchSpec{
			Seed:   5,
			Budget: 24,
			Init:   8,
			Round:  8,
			Axes: []dse.SearchAxis{
				{Name: "lanes", Values: []int{1, 2, 4, 8}},
				{Name: "partitions", Values: []int{1, 2, 4}},
			},
		},
	}
	id := submitJob(t, ts.URL, req)
	st := waitJob(t, ts.URL, id)
	if st.State != "completed" {
		t.Fatalf("search job state %q (error %q), want completed", st.State, st.Error)
	}
	_, rounds, summary := streamSearch(t, ts.URL, id)
	if len(rounds) == 0 || len(summary.Pareto) == 0 {
		t.Fatalf("search produced %d rounds and a %d-point pareto", len(rounds), len(summary.Pareto))
	}
	last := rounds[len(rounds)-1]
	if len(last.Front) == 0 {
		t.Fatal("final round has an empty front")
	}
	for _, p := range last.Front {
		if _, ok := p.Point["fabric"]; !ok {
			t.Fatalf("front point %v does not carry the fabric axis", p.Point)
		}
	}
}
