package serve

// Adaptive-search jobs: the "search" job kind behind POST /jobs. A search
// request runs dse.Search instead of an exhaustive grid, streams its
// front-so-far as NDJSON round lines, and checkpoints frontier state under
// search/<job id> in the result store so a killed server resumes the search
// under its original job ID to the identical front.

import (
	"context"
	"encoding/json"
	"net/http"

	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/report"
)

// searchKeyPrefix namespaces search frontier checkpoints inside the result
// store, alongside job/ manifests and 64-char point hashes.
const searchKeyPrefix = "search/"

// SearchSpec is the wire form of an adaptive-search request: the seed and
// budget of the search plus the axes to explore. Empty axes select the
// default large space for the request's memory kind (~10^5 points for
// cache systems).
type SearchSpec struct {
	// Seed drives the search RNG; the same seed over the same space yields
	// a bit-identical evaluation sequence, round stream, and final front.
	Seed uint64 `json:"seed"`
	// Budget caps evaluated candidates; clamped to Options.MaxSearchBudget
	// (which also applies when the budget is unset).
	Budget int `json:"budget,omitempty"`
	// Init, Round, and Patience tune the engine (dse.SearchOptions
	// InitSamples/RoundSize/Patience); zero selects the defaults.
	Init     int `json:"init,omitempty"`
	Round    int `json:"round,omitempty"`
	Patience int `json:"patience,omitempty"`
	// Axes names the searched dimensions (see dse.SearchAxis).
	Axes []dse.SearchAxis `json:"axes,omitempty"`
}

// searchSpace expands a search request into the dse.SearchSpace it runs
// over. The server's per-point watchdog budget is folded into the base
// config (the grid path applies it per worker instead), so it participates
// in point keys and the checkpoint fingerprint: restarting the server with a
// different -point-timeout starts the search fresh rather than resuming
// against differently-budgeted results.
func (s *Server) searchSpace(req SweepRequest) (dse.SearchSpace, error) {
	kind, err := req.memKind()
	if err != nil {
		return dse.SearchSpace{}, err
	}
	base, err := req.baseConfig()
	if err != nil {
		return dse.SearchSpace{}, err
	}
	base.Mem = kind
	if s.opt.PointBudget > 0 && base.WatchdogTicks == 0 {
		base.WatchdogTicks = s.opt.PointBudget
	}
	axes := req.Search.Axes
	if len(axes) == 0 {
		axes = dse.DefaultSearchAxes(kind)
	}
	// A top-level fabric list adds the fabric axis to the search (unless
	// the spec already names one), mirroring the grid path's crossing.
	if kinds, err := req.fabricKinds(); err != nil {
		return dse.SearchSpace{}, err
	} else if len(kinds) > 0 && !hasAxis(axes, "fabric") {
		vals := make([]int, len(kinds))
		for i, k := range kinds {
			vals[i] = int(k)
		}
		axes = append(append([]dse.SearchAxis{}, axes...), dse.SearchAxis{Name: "fabric", Values: vals})
	}
	sp := dse.SearchSpace{Base: base, Axes: axes}
	if err := sp.Validate(); err != nil {
		return dse.SearchSpace{}, err
	}
	return sp, nil
}

// hasAxis reports whether axes already name the given dimension.
func hasAxis(axes []dse.SearchAxis, name string) bool {
	for _, a := range axes {
		if a.Name == name {
			return true
		}
	}
	return false
}

// searchBudget applies the server clamp to a request's budget.
func (s *Server) searchBudget(spec *SearchSpec) int {
	if spec.Budget <= 0 || spec.Budget > s.opt.MaxSearchBudget {
		return s.opt.MaxSearchBudget
	}
	return spec.Budget
}

// searchRoundLine is one NDJSON line of a search job's result stream: the
// front so far after one round. Like the grid stream, it carries nothing
// run-specific — no job ID, timing, or simulated-point count (which depends
// on store contents) — so an interrupted-and-resumed job streams
// byte-identically to an uninterrupted one.
type searchRoundLine struct {
	Status    string            `json:"status"`
	Round     int               `json:"round"`
	Evaluated int               `json:"evaluated"`
	FrontSize int               `json:"front_size"`
	Front     []searchFrontLine `json:"front"`
}

// searchFrontLine is one front member: its axis values by name and its
// objectives in the report units (runtime_us, power_mw, edp_njs).
type searchFrontLine struct {
	Point     map[string]int `json:"point"`
	RuntimeUS float64        `json:"runtime_us"`
	PowerMW   float64        `json:"power_mw"`
	EDPnJs    float64        `json:"edp_njs"`
}

// searchSummaryLine terminates a search stream: deterministic totals and the
// final front as full report records.
type searchSummaryLine struct {
	Status      string          `json:"status"`
	Kind        string          `json:"kind"`
	SpacePoints uint64          `json:"space_points"`
	Rounds      int             `json:"rounds"`
	Evaluated   int             `json:"evaluated"`
	Converged   bool            `json:"converged"`
	EDPOptimal  *report.Record  `json:"edp_optimal,omitempty"`
	Pareto      []report.Record `json:"pareto"`
}

func encodeSearchRound(sp dse.SearchSpace, p dse.SearchProgress) []byte {
	line := searchRoundLine{
		Status:    "round",
		Round:     p.Round,
		Evaluated: p.Evaluated,
		FrontSize: p.FrontSize,
		Front:     make([]searchFrontLine, 0, len(p.Front)),
	}
	for _, fp := range p.Front {
		pt := make(map[string]int, len(sp.Axes))
		for i, a := range sp.Axes {
			pt[a.Name] = a.Values[fp.Idx[i]]
		}
		line.Front = append(line.Front, searchFrontLine{
			Point:     pt,
			RuntimeUS: float64(fp.Runtime) / 1e6,
			PowerMW:   fp.PowerW * 1e3,
			EDPnJs:    fp.EDPJs * 1e9,
		})
	}
	data, _ := json.Marshal(&line)
	return append(data, '\n')
}

// appendSearchLine publishes one stream line and wakes tailing streamers.
// Callers pass the job's updated progress counters alongside.
func (s *Server) appendSearchLine(j *job, line []byte, p *dse.SearchProgress) {
	s.jmu.Lock()
	if p != nil {
		j.searchRound = p.Round + 1
		j.searchEvaluated = p.Evaluated
		j.searchSimulated = p.Simulated
		j.searchFrontSize = p.FrontSize
	}
	j.searchLines = append(j.searchLines, line)
	close(j.searchUpdate)
	j.searchUpdate = make(chan struct{})
	s.jmu.Unlock()
}

// runSearchJob drives one adaptive-search job to a terminal state. Search
// jobs run dse.Search on its own runner pool (sized like the server's) and
// bypass the entry/singleflight layer — but share the durable store, so
// their points warm the same cache grid sweeps use, and a resumed search
// replays stored points instead of re-simulating them. Interruption
// semantics mirror grid jobs: shutdown leaves the manifest "running" (the
// boot-time resume signal) with the frontier checkpoint in the store; client
// cancellation and completion are terminal and drop the checkpoint.
func (s *Server) runSearchJob(ctx context.Context, j *job) {
	defer s.wgJobs.Done()
	defer s.activeJobs.Add(-1)
	defer close(j.done)
	close(j.acquired) // no entry table: pollers must never block on it

	if ctx.Err() != nil {
		s.finishJob(j, jobCancelled, "")
		s.dropSearchState(j)
		return
	}
	k, err := s.kernelFor(j.req.Kernel)
	if err != nil {
		s.finishJob(j, jobFailed, err.Error())
		return
	}
	sp, err := s.searchSpace(j.req)
	if err != nil {
		s.finishJob(j, jobFailed, err.Error())
		return
	}

	spec := j.req.Search
	opts := dse.SearchOptions{
		Seed:        spec.Seed,
		Budget:      s.searchBudget(spec),
		InitSamples: spec.Init,
		RoundSize:   spec.Round,
		Patience:    spec.Patience,
		Workers:     s.opt.Workers,
		Retry: dse.RetryPolicy{
			Max:     s.opt.MaxPointRetries,
			Backoff: s.opt.PointRetryBackoff,
		},
	}
	if s.opt.Store != nil {
		opts.Cache = &dse.StoreCache{Kernel: j.req.Kernel, Store: s.opt.Store}
		opts.CheckpointKey = searchKeyPrefix + j.id
	}
	lastSim := 0
	opts.Progress = func(p dse.SearchProgress) {
		s.searchRounds.Add(1)
		if d := p.Simulated - lastSim; d > 0 {
			s.pointsSimulated.Add(uint64(d))
			s.searchPoints.Add(uint64(d))
			lastSim = p.Simulated
		}
		s.appendSearchLine(j, encodeSearchRound(sp, p), &p)
	}

	sctx := ctx
	if s.opt.Spans != nil {
		root := s.opt.Spans.StartTrace("search-job")
		root.SetAttr("job", j.id)
		root.SetAttr("kernel", j.req.Kernel)
		root.SetAttr("budget", opts.Budget)
		defer root.EndSpan()
		sctx = obs.WithSpan(ctx, root)
	}

	res, err := dse.Search(sctx, k, sp, opts)
	if err != nil {
		if ctx.Err() != nil {
			s.jmu.Lock()
			cancelled := j.clientCancelled
			s.jmu.Unlock()
			if cancelled {
				s.finishJob(j, jobCancelled, "")
				s.dropSearchState(j)
			} else {
				// Shutdown interruption: manifest stays "running" on disk and
				// the frontier checkpoint stays in the store — together the
				// resume signal for the next boot.
				s.jmu.Lock()
				j.state = jobRunning
				s.jmu.Unlock()
				if lg := s.opt.Logger; lg != nil {
					lg.Info("search job interrupted for shutdown; will resume on restart",
						"job", j.id)
				}
			}
			return
		}
		s.finishJob(j, jobFailed, err.Error())
		s.dropSearchState(j)
		return
	}

	sum := searchSummaryLine{
		Status:      "summary",
		Kind:        "search",
		SpacePoints: res.SpaceSize,
		Rounds:      res.Rounds,
		Evaluated:   res.Evaluated,
		Converged:   res.Converged,
		Pareto:      spaceRecords(j.req.Kernel, res.Front),
	}
	if best, ok := res.Front.EDPOptimal(); ok {
		rec := report.FromResult(j.req.Kernel, best.Res)
		sum.EDPOptimal = &rec
	}
	data, _ := json.Marshal(&sum)
	s.appendSearchLine(j, append(data, '\n'), nil)
	s.finishJob(j, jobCompleted, "")
	s.dropSearchState(j)
}

// dropSearchState removes a terminal job's frontier checkpoint; the
// simulated point records stay (they are content-addressed and shared).
func (s *Server) dropSearchState(j *job) {
	if s.opt.Store != nil {
		_ = s.opt.Store.Delete(searchKeyPrefix + j.id)
	}
}

// streamSearchResults tails a search job's NDJSON stream: every published
// round line (replayed ones first on a resumed job), then the summary once
// the job completes. The connection ends early if the job is interrupted,
// cancelled, or the client goes away.
func (s *Server) streamSearchResults(w http.ResponseWriter, r *http.Request, j *job) {
	// A job that failed before producing any stream is a conflict, not an
	// empty stream (mirrors the grid path's failed-submission answer).
	s.jmu.Lock()
	state, errMsg, hasLines := j.state, j.errMsg, len(j.searchLines) > 0
	s.jmu.Unlock()
	if (state == jobFailed || state == jobCancelled) && !hasLines {
		http.Error(w, "job "+state+": "+errMsg, http.StatusConflict)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)

	next := 0
	for {
		s.jmu.Lock()
		lines := j.searchLines
		update := j.searchUpdate
		s.jmu.Unlock()
		for ; next < len(lines); next++ {
			if _, err := w.Write(lines[next]); err != nil {
				return
			}
		}
		if fl != nil {
			fl.Flush()
		}
		select {
		case <-j.done:
			// Drain lines published between the snapshot and done (the
			// summary races the close); an interrupted or failed job ends
			// the stream at the last published round.
			s.jmu.Lock()
			lines = j.searchLines
			s.jmu.Unlock()
			for ; next < len(lines); next++ {
				if _, err := w.Write(lines[next]); err != nil {
					return
				}
			}
			if fl != nil {
				fl.Flush()
			}
			return
		case <-update:
		case <-r.Context().Done():
			return
		}
	}
}
