package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"gem5aladdin/internal/serve"
	"gem5aladdin/internal/store"
)

// recoveryReq is the kill-window grid: big enough (about 200 cache points on
// one worker) that a SIGKILL reliably lands while the job is part-done, small
// enough that the whole harness stays in CI-smoke territory.
func recoveryReq() serve.SweepRequest {
	return serve.SweepRequest{
		Kernel:     "spmv-crs",
		Mem:        "cache",
		Lanes:      []int{1, 2, 4, 8},
		CacheKB:    []int{2, 4, 8, 16, 32, 64},
		CacheLines: []int{32, 64},
		CachePorts: []int{1, 2},
		CacheAssoc: []int{2, 4},
	}
}

// serveChild manages one cmd/serve process for the crash-recovery harness.
type serveChild struct {
	cmd  *exec.Cmd
	base string
}

// startServeChild launches the prebuilt cmd/serve binary against the given
// store directory and waits for /healthz.
func startServeChild(t *testing.T, bin, storeDir string, port int) *serveChild {
	t.Helper()
	addr := "127.0.0.1:" + strconv.Itoa(port)
	cmd := exec.Command(bin,
		"-addr", addr,
		"-store", storeDir,
		"-workers", "1",
		"-drain", "5s")
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting serve child: %v", err)
	}
	c := &serveChild{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(c.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return c
			}
		}
		if time.Now().After(deadline) {
			c.kill()
			t.Fatalf("serve child never became healthy on %s", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill SIGKILLs the child — no drain, no fsync, the crash we are testing.
func (c *serveChild) kill() {
	if c.cmd.Process != nil {
		_ = c.cmd.Process.Signal(syscall.SIGKILL)
	}
	_, _ = c.cmd.Process.Wait()
}

// metricCounter scrapes one integer counter from the child's /metrics page
// (Prometheus exposition: "name value" lines, comments start with '#').
func metricCounter(t *testing.T, base, name string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == name {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("parsing %s from metrics: %v (%q)", name, err, line)
			}
			return v
		}
	}
	t.Fatalf("counter %s not in metrics:\n%s", name, body)
	return 0
}

// buildServeBin compiles cmd/serve into dir for the crash harnesses.
func buildServeBin(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "serve.bin")
	build := exec.Command("go", "build", "-o", bin, "gem5aladdin/cmd/serve")
	build.Dir = "../.." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/serve: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves and releases a localhost port for a child. The tiny
// window between closing the probe listener and the child binding is an
// accepted race.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// TestKillRestartRecovery is the crash-recovery acceptance test. It runs the
// real cmd/serve binary, SIGKILLs it mid-job, restarts it over the same
// store directory, and demands that (a) the server warm-starts from the
// surviving segments, (b) the interrupted job resumes automatically under
// its original ID, and (c) the resumed job's NDJSON result stream is
// byte-identical to an uninterrupted in-process run of the same request.
func TestKillRestartRecovery(t *testing.T) {
	// Deliberately not gated on testing.Short(): this IS the CI smoke test.
	dir := t.TempDir()
	bin := buildServeBin(t, dir)

	// Uninterrupted reference: the same request through an in-process
	// server (identical code path, no store) defines the ground truth
	// stream the resumed job must reproduce byte for byte.
	req := recoveryReq()
	_, refTS := newTestServer(t, serve.Options{Workers: 2})
	refID := submitJob(t, refTS.URL, req)
	if st := waitJob(t, refTS.URL, refID); st.State != "completed" {
		t.Fatalf("reference job state %q", st.State)
	}
	refRaw, _, _ := streamJob(t, refTS.URL, refID)

	port := freePort(t)
	storeDir := filepath.Join(dir, "results")
	child := startServeChild(t, bin, storeDir, port)
	defer child.kill()

	// Submit the job and SIGKILL the server once it is provably mid-grid.
	body, _ := json.Marshal(req)
	resp, err := http.Post(child.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submitting job to child: %v", err)
	}
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("child job submission: %d: %s", resp.StatusCode, ack)
	}
	var sub struct {
		JobID  string `json:"job_id"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal(ack, &sub); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(60 * time.Second)
	killed := false
	for !killed {
		if time.Now().After(deadline) {
			t.Fatal("job never entered the kill window")
		}
		r, err := http.Get(child.base + "/jobs/" + sub.JobID)
		if err != nil {
			t.Fatalf("polling child: %v", err)
		}
		var st jobStatus
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case st.State != "running":
			t.Fatalf("job reached %q before the kill; grow the grid or slow the worker", st.State)
		case st.Completed >= 3 && st.Pending >= 3:
			child.kill() // mid-grid: at least 3 done, at least 3 to go
			killed = true
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Restart over the same store directory. Boot must replay the segment
	// log (tolerating the torn tail the SIGKILL may have left), resume the
	// manifest that was still "running", and finish the job.
	child2 := startServeChild(t, bin, storeDir, port)
	defer child2.kill()

	if resumed := metricCounter(t, child2.base, "serve_jobs_resumed"); resumed != 1 {
		t.Fatalf("serve_jobs_resumed = %d, want 1", resumed)
	}

	deadline = time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(child2.base + "/jobs/" + sub.JobID)
		if err != nil {
			t.Fatalf("polling restarted child: %v", err)
		}
		var st jobStatus
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "completed" {
			if !st.Resumed {
				t.Fatalf("restarted job not marked resumed: %+v", st)
			}
			break
		}
		if st.State != "running" {
			t.Fatalf("resumed job state %q (error %q)", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Warm start: the restarted server must have served the first run's
	// surviving points from disk instead of re-simulating them.
	warm := metricCounter(t, child2.base, "serve_cache_warm_hits")
	if warm == 0 {
		t.Fatal("restarted server re-simulated everything: zero warm hits")
	}
	simulated := metricCounter(t, child2.base, "serve_points_simulated")
	if simulated == 0 {
		t.Fatal("restart simulated nothing: the kill window closed after completion?")
	}
	t.Logf("resume split: %d points warm from disk, %d simulated after restart", warm, simulated)

	// The acceptance bar: byte-identical NDJSON against the uninterrupted
	// reference run.
	r, err := http.Get(child2.base + "/jobs/" + sub.JobID + "/results")
	if err != nil {
		t.Fatalf("streaming resumed job: %v", err)
	}
	resumedRaw, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedRaw, refRaw) {
		t.Fatalf("resumed stream diverges from the uninterrupted run:\nresumed %d bytes, reference %d bytes\nfirst diff near byte %d",
			len(resumedRaw), len(refRaw), firstDiff(resumedRaw, refRaw))
	}
}

// TestKillRestartSearchRecovery is the adaptive-search twin of
// TestKillRestartRecovery: SIGKILL the real cmd/serve binary mid-search,
// restart it over the same store, and demand the search resumes under its
// original job ID — replaying stored points instead of re-simulating them —
// to a stream byte-identical to an uninterrupted run.
func TestKillRestartSearchRecovery(t *testing.T) {
	dir := t.TempDir()
	bin := buildServeBin(t, dir)

	// Uninterrupted in-process reference (search streams carry nothing
	// run-specific, so a storeless run defines the exact bytes).
	req := searchReq(96, 16, 8)
	_, refTS := newTestServer(t, serve.Options{Workers: 2})
	refID := submitJob(t, refTS.URL, req)
	if st := waitJob(t, refTS.URL, refID); st.State != "completed" {
		t.Fatalf("reference search state %q (error %q)", st.State, st.Error)
	}
	refRaw, _, _ := streamSearch(t, refTS.URL, refID)

	port := freePort(t)
	storeDir := filepath.Join(dir, "results")
	child := startServeChild(t, bin, storeDir, port)
	defer child.kill()

	body, _ := json.Marshal(req)
	resp, err := http.Post(child.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submitting search job to child: %v", err)
	}
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("child search submission: %d: %s", resp.StatusCode, ack)
	}
	var sub struct {
		JobID string `json:"job_id"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(ack, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Kind != "search" {
		t.Fatalf("submission kind %q, want search", sub.Kind)
	}

	// Kill once at least two rounds have checkpointed but well before the
	// 96-point budget is spent.
	deadline := time.Now().Add(60 * time.Second)
	for killed := false; !killed; {
		if time.Now().After(deadline) {
			t.Fatal("search never entered the kill window")
		}
		r, err := http.Get(child.base + "/jobs/" + sub.JobID)
		if err != nil {
			t.Fatalf("polling child: %v", err)
		}
		var st jobStatus
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case st.State != "running":
			t.Fatalf("search reached %q before the kill; grow the budget", st.State)
		case st.Round >= 2 && st.Pending >= 16:
			child.kill()
			killed = true
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The SIGKILL must have left the resume signals on disk: a "running"
	// manifest and a frontier checkpoint under search/<id>.
	chk, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatalf("reopening store after kill: %v", err)
	}
	if _, ok, _ := chk.Get("search/" + sub.JobID); !ok {
		t.Fatal("killed search left no frontier checkpoint")
	}
	if err := chk.Close(); err != nil {
		t.Fatal(err)
	}

	child2 := startServeChild(t, bin, storeDir, port)
	defer child2.kill()

	if resumed := metricCounter(t, child2.base, "serve_jobs_resumed"); resumed != 1 {
		t.Fatalf("serve_jobs_resumed = %d, want 1", resumed)
	}

	deadline = time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(child2.base + "/jobs/" + sub.JobID)
		if err != nil {
			t.Fatalf("polling restarted child: %v", err)
		}
		var st jobStatus
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "completed" {
			if !st.Resumed || st.Kind != "search" {
				t.Fatalf("resumed search status off: %+v", st)
			}
			// Frontier resume: the first run's rounds replay from the store,
			// so the restarted server simulates strictly fewer points than
			// the search evaluated.
			if st.Simulated == 0 || st.Simulated >= st.Completed {
				t.Fatalf("resume split off (want 0 < simulated < evaluated): %+v", st)
			}
			t.Logf("resume split: %d of %d points simulated after restart",
				st.Simulated, st.Completed)
			break
		}
		if st.State != "running" {
			t.Fatalf("resumed search state %q (error %q)", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed search never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := http.Get(child2.base + "/jobs/" + sub.JobID + "/results")
	if err != nil {
		t.Fatalf("streaming resumed search: %v", err)
	}
	resumedRaw, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedRaw, refRaw) {
		t.Fatalf("resumed search stream diverges from the uninterrupted run:\nresumed %d bytes, reference %d bytes\nfirst diff near byte %d",
			len(resumedRaw), len(refRaw), firstDiff(resumedRaw, refRaw))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
