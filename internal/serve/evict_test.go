package serve

import (
	"fmt"
	"testing"
)

// TestEvictQueueBoundedRetention drives sustained cache eviction and asserts
// the FIFO order queue recycles its backing array. The former
// `evictOrder = evictOrder[1:]` pop stranded every consumed slot in front of
// the slice for the life of the server — capacity (and the evicted key
// strings) grew monotonically with points served.
func TestEvictQueueBoundedRetention(t *testing.T) {
	const bound = 8
	s := &Server{opt: Options{CacheEntries: bound}, cache: map[string]*entry{}}
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("k%06d", i)
		s.cache[key] = &entry{}
		s.finished(key)
	}
	if n := len(s.cache); n != bound {
		t.Errorf("cache holds %d entries, want the %d-entry bound", n, bound)
	}
	if live := len(s.evictOrder) - s.evictHead; live != bound {
		t.Errorf("eviction queue tracks %d live keys, want %d", live, bound)
	}
	if c := cap(s.evictOrder); c > 256 {
		t.Errorf("eviction queue retains capacity %d after sustained eviction; the consumed prefix is being stranded", c)
	}
	for i := 0; i < s.evictHead; i++ {
		if s.evictOrder[i] != "" {
			t.Fatalf("consumed slot %d still pins key %q", i, s.evictOrder[i])
		}
	}
	// The newest keys must be the survivors, in order.
	for i := 0; i < bound; i++ {
		want := fmt.Sprintf("k%06d", 100000-bound+i)
		if got := s.evictOrder[s.evictHead+i]; got != want {
			t.Fatalf("live slot %d = %q, want %q", i, got, want)
		}
		if _, ok := s.cache[want]; !ok {
			t.Fatalf("surviving key %q missing from the cache", want)
		}
	}
}
