package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/serve"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/trace"
)

// quickReq is a 4-point DMA grid on the cheapest interesting kernel: small
// enough that a full test run sweeps it many times, rich enough that the
// Pareto front and EDP optimum are non-trivial.
func quickReq() serve.SweepRequest {
	return serve.SweepRequest{
		Kernel:       "spmv-crs",
		Mem:          "dma",
		Lanes:        []int{1, 2},
		Partitions:   []int{1, 2},
		IncludeSpace: true,
	}
}

func newTestServer(t *testing.T, opt serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postSweep(t *testing.T, url string, req serve.SweepRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func decodeSweep(t *testing.T, body []byte) serve.SweepResponse {
	t.Helper()
	var resp serve.SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding sweep response: %v\n%s", err, body)
	}
	return resp
}

// directSweep replays the request's grid through dse.Sweep in-process and
// flattens it exactly as the service does: the ground truth responses must
// match bit for bit.
func directSweep(t *testing.T, req serve.SweepRequest) (space, pareto []report.Record, edp *report.Record) {
	t.Helper()
	cfgs, err := req.Configs()
	if err != nil {
		t.Fatal(err)
	}
	k := soc.Compile(ddg.Build(machsuite.MustBuild(req.Kernel)))
	sp, err := dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results := func(sp dse.Space) []*soc.RunResult {
		rs := make([]*soc.RunResult, len(sp))
		for i, p := range sp {
			rs[i] = p.Res
		}
		return rs
	}
	space = report.FromResults(req.Kernel, results(sp))
	pareto = report.FromResults(req.Kernel, results(sp.ParetoFront()))
	if best, ok := sp.EDPOptimal(); ok {
		rec := report.FromResult(req.Kernel, best.Res)
		edp = &rec
	}
	return space, pareto, edp
}

// TestSweepMatchesDirectSweep is the service's correctness anchor: a cold
// response and a fully cached response both decode to exactly the records a
// direct dse.Sweep produces (Go's JSON float64 encoding round-trips, so
// reflect.DeepEqual means bit-identical values).
func TestSweepMatchesDirectSweep(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 2})
	req := quickReq()
	wantSpace, wantPareto, wantEDP := directSweep(t, req)

	for round, wantCached := range []int{0, len(wantSpace)} {
		code, body := postSweep(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, code, body)
		}
		resp := decodeSweep(t, body)
		if !reflect.DeepEqual(resp.Space, wantSpace) {
			t.Errorf("round %d: space differs from direct sweep\ngot:  %+v\nwant: %+v",
				round, resp.Space, wantSpace)
		}
		if !reflect.DeepEqual(resp.Pareto, wantPareto) {
			t.Errorf("round %d: pareto differs from direct sweep", round)
		}
		if !reflect.DeepEqual(resp.EDPOptimal, wantEDP) {
			t.Errorf("round %d: EDP optimum differs: got %+v want %+v",
				round, resp.EDPOptimal, wantEDP)
		}
		if resp.RequestedPoints != 4 || resp.EvaluatedPoints != 4 || resp.AbortedPoints != 0 {
			t.Errorf("round %d: counts %d/%d/%d, want 4/4/0",
				round, resp.RequestedPoints, resp.EvaluatedPoints, resp.AbortedPoints)
		}
		if resp.CachedPoints != wantCached {
			t.Errorf("round %d: cached %d, want %d", round, resp.CachedPoints, wantCached)
		}
	}
	if snap := s.Snapshot(); snap.PointsSimulated != 4 {
		t.Errorf("simulated %d points across two identical sweeps, want 4", snap.PointsSimulated)
	}
}

// TestConcurrentIdenticalRequestsSingleflight fires 32 concurrent copies of
// the same sweep: the content-addressed cache plus singleflight join must
// collapse them to exactly one simulation per unique design point, and every
// response must be identical.
func TestConcurrentIdenticalRequestsSingleflight(t *testing.T) {
	const n = 32
	s, ts := newTestServer(t, serve.Options{Workers: 4, QueueDepth: n})
	req := quickReq()

	var wg sync.WaitGroup
	start := make(chan struct{})
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			codes[i], bodies[i] = postSweep(t, ts.URL, req)
		}(i)
	}
	close(start)
	wg.Wait()

	first := decodeSweep(t, bodies[0])
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		got := decodeSweep(t, bodies[i])
		// Timing and per-request cache luck legitimately differ.
		got.ElapsedMS, first.ElapsedMS = 0, 0
		got.CachedPoints, first.CachedPoints = 0, 0
		if !reflect.DeepEqual(got, first) {
			t.Errorf("request %d: response differs from request 0", i)
		}
	}

	snap := s.Snapshot()
	if snap.PointsSimulated != 4 {
		t.Errorf("simulated %d points for %d identical 4-point sweeps, want exactly 4",
			snap.PointsSimulated, n)
	}
	if snap.CacheMisses != 4 || snap.CacheHits != 4*n-4 {
		t.Errorf("cache hits/misses = %d/%d, want %d/4",
			snap.CacheHits, snap.CacheMisses, 4*n-4)
	}
	wantSpace, _, _ := directSweep(t, req)
	if !reflect.DeepEqual(first.Space, wantSpace) {
		t.Errorf("concurrent responses differ from direct sweep")
	}
}

// TestBackpressure saturates a QueueDepth=1 server with a request pinned
// inside kernel resolution, and checks the next request is turned away with
// 429 and a Retry-After hint instead of queueing.
func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	s, ts := newTestServer(t, serve.Options{
		Workers:    1,
		QueueDepth: 1,
		BuildKernel: func(name string) (*trace.Trace, error) {
			<-block
			return nil, fmt.Errorf("%w: %s is synthetic", serve.ErrUnknownKernel, name)
		},
	})

	done := make(chan int, 1)
	go func() {
		code, _ := postSweep(t, ts.URL, quickReq())
		done <- code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Snapshot().ActiveRequests == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	body, _ := json.Marshal(quickReq())
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	close(block)
	if code := <-done; code != http.StatusBadRequest {
		t.Errorf("pinned request finished with %d, want 400 (unknown kernel)", code)
	}
	if snap := s.Snapshot(); snap.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", snap.Rejected)
	}
}

// TestCancellationReleasesWorker times a sweep out mid-flight on a 1-worker
// server, then proves the worker was released: the identical follow-up sweep
// completes, and no design point was simulated more than once — abandoned
// points were skipped, queued ones were adopted by the second request.
func TestCancellationReleasesWorker(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 1})
	req := quickReq()
	req.Lanes = []int{1, 2, 4}
	req.Partitions = []int{1, 2, 4}

	timed := req
	timed.TimeoutMS = 1
	code, body := postSweep(t, ts.URL, timed)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("1ms sweep returned %d, want 504: %s", code, body)
	}

	code, body = postSweep(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("follow-up sweep returned %d: %s", code, body)
	}
	resp := decodeSweep(t, body)
	if resp.EvaluatedPoints != 9 {
		t.Fatalf("follow-up evaluated %d points, want 9", resp.EvaluatedPoints)
	}
	if snap := s.Snapshot(); snap.PointsSimulated != 9 {
		t.Errorf("simulated %d points across timeout + retry, want exactly 9 (no rework, no stuck slots)",
			snap.PointsSimulated)
	}
}

// TestShutdownDrains completes a sweep, shuts the pool down, and checks new
// requests are refused while the shutdown itself reports a clean drain.
func TestShutdownDrains(t *testing.T) {
	s := serve.New(serve.Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := postSweep(t, ts.URL, quickReq()); code != http.StatusOK {
		t.Fatalf("sweep returned %d: %s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code, _ := postSweep(t, ts.URL, quickReq()); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown sweep returned %d, want 503", code)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})

	resp, err := http.Get(ts.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sweep = %d, want 405", resp.StatusCode)
	}

	for name, req := range map[string]serve.SweepRequest{
		"unknown kernel": {Kernel: "no-such-kernel"},
		"unknown mem":    {Kernel: "spmv-crs", Mem: "telepathy"},
		"invalid grid":   {Kernel: "spmv-crs", Mem: "dma", Partitions: []int{0}},
	} {
		if code, body := postSweep(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, code, body)
		}
	}
	resp, err = http.Post(ts.URL+"/sweep", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	if code, body := postSweep(t, ts.URL, quickReq()); code != http.StatusOK {
		t.Fatalf("sweep returned %d: %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "serve.requests") ||
		!strings.Contains(string(text), "serve.sweep.latency_p99") {
		t.Errorf("statsz missing service stats:\n%s", text)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# HELP serve_requests sweep requests received",
		"# TYPE serve_requests counter",
		"serve_points_simulated 4",
		"# TYPE serve_sweep_latency_ms histogram",
		`serve_sweep_latency_ms_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, prom)
		}
	}

	resp, err = http.Get(ts.URL + "/kernels")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	err = json.NewDecoder(resp.Body).Decode(&names)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range names {
		found = found || n == "spmv-crs"
	}
	if !found {
		t.Errorf("kernel list %v missing spmv-crs", names)
	}
}

// syncBuf is a goroutine-safe bytes.Buffer: request handlers and workers
// log concurrently.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestTracingAndLogging exercises the request-scoped observability path:
// a traced, logged sweep returns its trace ID, the trace exports as
// Perfetto JSON with the request's phase and point spans, every finished
// span lands in the JSONL sink, and the structured log carries the
// request and slow-point records tagged with the same trace ID.
func TestTracingAndLogging(t *testing.T) {
	var spanLog, logBuf syncBuf
	opt := serve.Options{
		Workers:   2,
		Spans:     obs.NewSpanTracer(&spanLog, 256),
		Logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
		SlowPoint: time.Nanosecond, // every real simulation is "slow"
	}
	_, ts := newTestServer(t, opt)

	code, body := postSweep(t, ts.URL, quickReq())
	if code != http.StatusOK {
		t.Fatalf("sweep returned %d: %s", code, body)
	}
	resp := decodeSweep(t, body)
	if resp.TraceID == "" {
		t.Fatal("traced sweep response carries no trace ID")
	}

	// The trace exports as Chrome trace-event JSON with the request tree.
	tr, err := http.Get(ts.URL + "/trace/" + resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d: %s", tr.StatusCode, traceBody)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBody, &doc); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, traceBody)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			seen[ev.Name] = true
		}
	}
	for _, want := range []string{"sweep", "admission-wait", "cache-lookup",
		"await-points", "point", "queue-wait", "simulate"} {
		if !seen[want] {
			t.Errorf("trace missing %q span; saw %v", want, seen)
		}
	}

	// Unknown traces 404.
	tr, err = http.Get(ts.URL + "/trace/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace returned %d, want 404", tr.StatusCode)
	}

	// Every finished span is one JSON line in the sink.
	lines := strings.Split(strings.TrimSpace(spanLog.String()), "\n")
	if len(lines) < 7 {
		t.Fatalf("span sink has %d lines, want >= 7:\n%s", len(lines), spanLog.String())
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("span sink line not JSON: %v: %s", err, ln)
		}
	}

	// Structured logs: startup, the served request (tagged with the trace
	// ID), and the slow-point warnings.
	logs := logBuf.String()
	for _, want := range []string{
		"sweep service started", "sweep served", "slow design point",
		resp.TraceID,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
	for _, ln := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("log line not JSON: %v: %s", err, ln)
		}
	}
}

// TestUntracedSweepHasNoTraceID pins the zero-cost-off contract at the API
// boundary: without Options.Spans the response carries no trace ID, no
// X-Trace-Id header appears, and /trace/{id} is a 404.
func TestUntracedSweepHasNoTraceID(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	body, err := json.Marshal(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep returned %d: %s", resp.StatusCode, out)
	}
	if h := resp.Header.Get("X-Trace-Id"); h != "" {
		t.Errorf("untraced sweep set X-Trace-Id %q", h)
	}
	if sr := decodeSweep(t, out); sr.TraceID != "" {
		t.Errorf("untraced sweep response has trace ID %q", sr.TraceID)
	}
	tr, err := http.Get(ts.URL + "/trace/anything")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("trace endpoint without tracer returned %d, want 404", tr.StatusCode)
	}
}
