// Package serve turns the design-space explorer into a long-running HTTP
// service: sweep-as-a-service. Clients POST a kernel name and a config grid
// to /sweep and get back the Pareto front and EDP optimum as JSON; the
// server runs the points on a bounded pool of reused soc.Runners, memoizes
// every simulated design point in a content-addressed cache keyed by
// dse.PointKey (canonical hash of kernel + soc.Config), and deduplicates
// concurrent identical work singleflight-style, so N clients asking for the
// same sweep cost one simulation per unique point.
//
// Operational behavior:
//
//   - Backpressure: at most Options.QueueDepth requests are admitted at
//     once; beyond that the server answers 429 with a Retry-After hint
//     instead of queueing unboundedly.
//   - Cancellation: each request carries a context (client disconnect or
//     the request/server timeout); a cancelled request drops its claim on
//     queued points, and points nobody still wants are skipped, so worker
//     slots are released rather than burned on abandoned work.
//   - Graceful shutdown: Shutdown stops admissions, drains in-flight
//     sweeps, then joins the workers.
//   - Observability: /statsz (gem5-style text, JSON on request) and
//     /metrics (Prometheus exposition) expose an internal/obs registry
//     with cache hit rate, queue depth, points/s, and p50/p99 sweep
//     latency. With Options.Spans set, every request becomes a root span
//     with children for admission, cache lookup, queue wait, and each
//     point's simulation; the response carries the trace ID and
//     GET /trace/{id} replays the trace as Perfetto JSON. Options.Logger
//     (log/slog) receives request, slow-point, and lifecycle records.
//
// Responses are bit-identical to a direct dse.Sweep over the same grid:
// workers call (*soc.Runner).Run, which is verified bit-identical to
// soc.Run, and aborted (fault-poisoned) points are compacted out of the
// space in request order exactly as dse.Sweep does.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/store"
	"gem5aladdin/internal/trace"
)

// ErrUnknownKernel marks a request naming a kernel the server cannot build;
// handlers map it to 400 rather than 500.
var ErrUnknownKernel = errors.New("serve: unknown kernel")

// Options configures a Server. The zero value is usable: every field has a
// default.
type Options struct {
	// Workers is the number of simulation workers, each owning one reused
	// soc.Runner. Defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many sweep requests may be admitted at once
	// (queued or running). Further requests are rejected with 429 and a
	// Retry-After hint. Defaults to 8.
	QueueDepth int
	// RequestTimeout bounds one sweep request end to end; a request's
	// timeout_ms field can tighten but not extend it. Defaults to 2 min.
	RequestTimeout time.Duration
	// CacheEntries bounds the content-addressed result cache; the oldest
	// completed points are evicted FIFO past it. Defaults to 65536.
	CacheEntries int
	// RetryAfter is the hint sent with 429 responses. Defaults to 1s.
	RetryAfter time.Duration
	// BuildKernel resolves a kernel name to its dynamic trace. Defaults to
	// the MachSuite registry; tests inject cheap synthetic kernels here.
	BuildKernel func(name string) (*trace.Trace, error)

	// Store, when non-nil, is the durable result store: every finished
	// design point (success or classified failure) is written through to it
	// before its waiters are released, warm-starting the in-memory cache
	// across restarts, and job manifests checkpoint into it so interrupted
	// jobs resume on the next boot. The server owns neither Open nor Close.
	Store *store.Store
	// PointBudget is the per-point no-progress watchdog budget in simulated
	// ticks, applied to every point whose config does not set its own
	// WatchdogTicks. A livelocked point aborts with a structured
	// *sim.StallError instead of burning its worker until the request
	// timeout. Zero disables the budget. The budget is deliberately
	// virtual-time, not wall-clock: the same config fails (or passes)
	// identically on every run, which keeps resumed jobs bit-identical.
	PointBudget sim.Tick
	// MaxPointRetries bounds how many times a worker retries a
	// fault-injection abort before recording the point as failed (stalls
	// and sanitizer violations never retry — they are deterministic).
	// Defaults to 2; negative disables retrying.
	MaxPointRetries int
	// PointRetryBackoff is the delay before the first retry, doubling per
	// attempt (capped at 1s). Defaults to 10ms.
	PointRetryBackoff time.Duration
	// MaxJobs bounds concurrently running jobs (POST /jobs answers 429
	// beyond it). Defaults to 16.
	MaxJobs int
	// MaxSearchBudget caps the evaluation budget of adaptive-search jobs;
	// requests asking for more (or leaving the budget unset) are clamped
	// to it. Defaults to 400.
	MaxSearchBudget int

	// Logger receives structured request, slow-point, and lifecycle
	// records. Nil disables logging entirely (no formatting work happens).
	Logger *slog.Logger
	// Spans, when set, turns every sweep request into a wall-clock trace:
	// a root span with children for each request phase and design point,
	// retained for GET /trace/{id} export. Nil disables span tracing at
	// zero cost (every span handle is the nil no-op span).
	Spans *obs.SpanTracer
	// SlowPoint is the per-point simulation duration beyond which a
	// warning is logged. Zero disables the warning.
	SlowPoint time.Duration
}

func (o *Options) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1 << 16
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxPointRetries == 0 {
		o.MaxPointRetries = 2
	}
	if o.MaxPointRetries < 0 {
		o.MaxPointRetries = 0
	}
	if o.PointRetryBackoff <= 0 {
		o.PointRetryBackoff = 10 * time.Millisecond
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 16
	}
	if o.MaxSearchBudget <= 0 {
		o.MaxSearchBudget = 400
	}
	if o.BuildKernel == nil {
		o.BuildKernel = func(name string) (*trace.Trace, error) {
			k, err := machsuite.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrUnknownKernel, err)
			}
			return k.Build()
		}
	}
}

// Server is the sweep service. Create with New, mount Handler, and drain
// with Shutdown.
type Server struct {
	opt Options
	reg *obs.Registry
	mux *http.ServeMux

	// admit holds one token per admitted request: the backpressure bound.
	admit chan struct{}

	// mu guards the point queue, the result cache, and entry waiter
	// bookkeeping; cond signals workers when the queue grows.
	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*entry
	qhead      int
	cache      map[string]*entry
	evictOrder []string
	evictHead  int
	closed     bool // Shutdown began: admit no new requests
	closing    bool // requests drained: workers exit once the queue empties

	gmu    sync.Mutex
	graphs map[string]*graphEntry

	// jmu guards the job table and per-job mutable state.
	jmu  sync.Mutex
	jobs map[string]*job

	wgReq     sync.WaitGroup
	wgWorkers sync.WaitGroup
	wgJobs    sync.WaitGroup

	start time.Time

	requests        atomic.Uint64
	rejected        atomic.Uint64
	cacheHits       atomic.Uint64
	cacheMisses     atomic.Uint64
	warmHits        atomic.Uint64
	pointsSimulated atomic.Uint64
	pointsAborted   atomic.Uint64
	pointsAbandoned atomic.Uint64
	pointRetries    atomic.Uint64
	activeRequests  atomic.Int64

	jobsSubmitted atomic.Uint64
	jobsCompleted atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCancelled atomic.Uint64
	jobsResumed   atomic.Uint64
	activeJobs    atomic.Int64

	searchRounds atomic.Uint64
	searchPoints atomic.Uint64

	// statsMu serializes latency-histogram observations against registry
	// dumps; it is the locker handed to obs.Handler, so stat closures must
	// not take it themselves.
	statsMu sync.Mutex
	latency *obs.Histogram
}

// New starts a Server: registers its statistics and launches the worker
// pool. Callers own shutdown via Shutdown.
func New(opt Options) *Server {
	opt.setDefaults()
	s := &Server{
		opt:    opt,
		reg:    obs.NewRegistry(),
		mux:    http.NewServeMux(),
		admit:  make(chan struct{}, opt.QueueDepth),
		cache:  make(map[string]*entry),
		graphs: make(map[string]*graphEntry),
		jobs:   make(map[string]*job),
		start:  time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.registerStats()
	s.routes()
	s.wgWorkers.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	// Resume any jobs a previous process left running in the store. This
	// happens after the workers start, so resumed points begin simulating
	// immediately; already-finished points come back from the store.
	s.resumeJobs()
	if lg := s.opt.Logger; lg != nil {
		lg.Info("sweep service started",
			"workers", opt.Workers,
			"queue_depth", opt.QueueDepth,
			"cache_entries", opt.CacheEntries,
			"request_timeout", opt.RequestTimeout.String(),
			"tracing", opt.Spans != nil,
			"durable", opt.Store != nil)
	}
	return s
}

func (s *Server) registerStats() {
	r := s.reg
	r.CounterFunc("serve.requests", "sweep requests received", s.requests.Load)
	r.CounterFunc("serve.requests.rejected", "requests rejected with 429 backpressure", s.rejected.Load)
	r.GaugeFunc("serve.requests.active", "requests currently admitted", func() float64 {
		return float64(s.activeRequests.Load())
	})
	r.CounterFunc("serve.cache.hits", "design points served without a new simulation", s.cacheHits.Load)
	r.CounterFunc("serve.cache.misses", "design points that required simulation", s.cacheMisses.Load)
	r.Formula("serve.cache.hit_rate", "fraction of requested points served from cache or joined in flight", func() float64 {
		h, m := float64(s.cacheHits.Load()), float64(s.cacheMisses.Load())
		if h+m == 0 {
			return 0
		}
		return h / (h + m)
	})
	r.GaugeFunc("serve.cache.entries", "design points resident in the result cache", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.cache))
	})
	r.CounterFunc("serve.cache.warm_hits", "design points served from the durable store at first touch", s.warmHits.Load)
	r.CounterFunc("serve.points.simulated", "design points actually simulated", s.pointsSimulated.Load)
	r.CounterFunc("serve.points.aborted", "simulated points poisoned by the robustness layer", s.pointsAborted.Load)
	r.CounterFunc("serve.points.abandoned", "queued points skipped after every requester cancelled", s.pointsAbandoned.Load)
	r.CounterFunc("serve.points.retries", "fault-abort retries spent by workers", s.pointRetries.Load)
	r.CounterFunc("serve.jobs.submitted", "sweep jobs accepted via POST /jobs", s.jobsSubmitted.Load)
	r.CounterFunc("serve.jobs.completed", "jobs that reached completion", s.jobsCompleted.Load)
	r.CounterFunc("serve.jobs.failed", "jobs that failed terminally", s.jobsFailed.Load)
	r.CounterFunc("serve.jobs.cancelled", "jobs cancelled by clients", s.jobsCancelled.Load)
	r.CounterFunc("serve.jobs.resumed", "interrupted jobs resumed from the store at boot", s.jobsResumed.Load)
	r.GaugeFunc("serve.jobs.active", "jobs currently running", func() float64 {
		return float64(s.activeJobs.Load())
	})
	r.CounterFunc("serve.search.rounds", "adaptive-search rounds completed (including replayed)", s.searchRounds.Load)
	r.CounterFunc("serve.search.points", "design points simulated by adaptive-search jobs", s.searchPoints.Load)
	if s.opt.Store != nil {
		s.opt.Store.RegisterStats(r, "store")
	}
	r.GaugeFunc("serve.queue.points", "design points queued awaiting a worker", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queue) - s.qhead)
	})
	r.Formula("serve.points.per_sec", "simulated points per second of uptime", func() float64 {
		up := time.Since(s.start).Seconds()
		if up <= 0 {
			return 0
		}
		return float64(s.pointsSimulated.Load()) / up
	})
	s.latency = r.Histogram("serve.sweep.latency_ms", "end-to-end sweep request latency",
		[]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000})
	r.Formula("serve.sweep.latency_p50", "median sweep latency (ms)", func() float64 {
		return s.latency.Quantile(0.5)
	})
	r.Formula("serve.sweep.latency_p99", "99th-percentile sweep latency (ms)", func() float64 {
		return s.latency.Quantile(0.99)
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/jobs/", s.handleJob)
	s.mux.HandleFunc("/kernels", s.handleKernels)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("/statsz", obs.Handler(s.reg, &s.statsMu))
	s.mux.Handle("/metrics", obs.PromHandler(s.reg, &s.statsMu))
	s.mux.HandleFunc("/trace/", s.handleTrace)
}

// handleTrace exports one retained request trace as Chrome trace-event /
// Perfetto JSON: GET /trace/{id} with the trace ID a sweep response (or
// its X-Trace-Id header) carried.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "traces are read-only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/trace/")
	if id == "" || strings.ContainsRune(id, '/') {
		http.NotFound(w, r)
		return
	}
	tr := s.opt.Spans
	if tr == nil || len(tr.Collect(id)) == 0 {
		http.Error(w, "unknown or expired trace (span tracing may be disabled)",
			http.StatusNotFound)
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/json")
	if r.Method == http.MethodHead {
		return
	}
	if ok, _ := tr.WriteTraceJSON(w, id); !ok {
		// The trace aged out of the retention ring between the existence
		// check and the export; nothing was written yet.
		http.Error(w, "trace expired", http.StatusNotFound)
	}
}

// Handler returns the service's HTTP mux: POST /sweep, GET /kernels,
// /healthz, /statsz (gem5 text), /metrics (Prometheus), /trace/{id}
// (Perfetto JSON).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the service statistics, for embedding in other dumps.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SweepRequest is the POST /sweep body. Axes left empty default to the
// quick sweep grid (or the full Fig 3 grid with full=true), mirroring
// cmd/dse, so a minimal request body is a kernel name alone.
type SweepRequest struct {
	// Kernel names the benchmark (see GET /kernels).
	Kernel string `json:"kernel"`
	// Mem picks the memory system: "isolated", "dma" (default), "cache".
	Mem string `json:"mem,omitempty"`
	// BusBits sets the system bus width (default 32).
	BusBits int `json:"bus_bits,omitempty"`

	Lanes      []int `json:"lanes,omitempty"`
	Partitions []int `json:"partitions,omitempty"`
	CacheKB    []int `json:"cache_kb,omitempty"`
	CacheLines []int `json:"cache_lines,omitempty"`
	CachePorts []int `json:"cache_ports,omitempty"`
	CacheAssoc []int `json:"cache_assoc,omitempty"`

	// Fabrics crosses the grid with interconnect topologies by name
	// ("bus", "crossbar", "mesh"). Empty keeps the round-robin bus.
	Fabrics []string `json:"fabric,omitempty"`
	// MeshDim sets the mesh side length for every point (mesh only).
	MeshDim int `json:"mesh_dim,omitempty"`
	// BurstLen sets the crossbar burst length in beats for every point
	// (crossbar only; 0 derives it from the DMA chunk size).
	BurstLen int `json:"burst_len,omitempty"`

	// Faults enables deterministic seeded fault injection for every point
	// in the grid. Outcomes are still per-point: whether a design point
	// survives depends on its own traffic under the shared seed, which is
	// exactly the heterogeneity the job API's failure isolation reports.
	Faults *FaultSpec `json:"faults,omitempty"`
	// WatchdogTicks arms each point's no-progress watchdog with an
	// explicit budget in picoseconds of virtual time. Zero leaves points
	// on the server's point-budget default (Options.PointBudget).
	WatchdogTicks uint64 `json:"watchdog_ticks,omitempty"`

	// Search switches the request from an exhaustive grid to the adaptive
	// Pareto-guided search. Search requests must be submitted as jobs
	// (POST /jobs): an open-ended search does not fit the synchronous
	// /sweep contract. The grid axes above are ignored; the searched axes
	// come from Search.Axes (or the default large space for the memory
	// kind).
	Search *SearchSpec `json:"search,omitempty"`

	// Full defaults unspecified axes to the full sweep grid instead of the
	// pruned quick grid.
	Full bool `json:"full,omitempty"`
	// IncludeSpace returns every evaluated point, not just the front.
	IncludeSpace bool `json:"include_space,omitempty"`
	// TimeoutMS tightens (never extends) the server's request timeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// FaultSpec is the wire form of a fault-injection configuration: the same
// knobs as fault.Config with JSON names and nanosecond durations (the
// internal config counts picosecond ticks).
type FaultSpec struct {
	Seed          uint64  `json:"seed"`
	DRAMBitProb   float64 `json:"dram_bit_prob,omitempty"`
	SpadBitProb   float64 `json:"spad_bit_prob,omitempty"`
	CacheBitProb  float64 `json:"cache_bit_prob,omitempty"`
	DoubleBitFrac float64 `json:"double_bit_frac,omitempty"`
	BusNackProb   float64 `json:"bus_nack_prob,omitempty"`
	BusRetryLimit int     `json:"bus_retry_limit,omitempty"`
	BusBackoffNS  uint64  `json:"bus_backoff_ns,omitempty"`
	DMATimeoutNS  uint64  `json:"dma_timeout_ns,omitempty"`
	DMARetries    int     `json:"dma_retries,omitempty"`
}

// Config converts the wire spec to the simulator's fault configuration.
func (f FaultSpec) Config() fault.Config {
	return fault.Config{
		Seed:          f.Seed,
		DRAMBitProb:   f.DRAMBitProb,
		SpadBitProb:   f.SpadBitProb,
		CacheBitProb:  f.CacheBitProb,
		DoubleBitFrac: f.DoubleBitFrac,
		BusNackProb:   f.BusNackProb,
		BusRetryLimit: f.BusRetryLimit,
		BusBackoff:    sim.Tick(f.BusBackoffNS) * sim.Nanosecond,
		DMATimeout:    sim.Tick(f.DMATimeoutNS) * sim.Nanosecond,
		DMARetries:    f.DMARetries,
	}
}

// memKind parses the request's memory system.
func (req SweepRequest) memKind() (soc.MemKind, error) {
	switch req.Mem {
	case "", "dma":
		return soc.DMA, nil
	case "isolated":
		return soc.Isolated, nil
	case "cache":
		return soc.Cache, nil
	default:
		return 0, fmt.Errorf("serve: unknown mem kind %q (want isolated, dma, or cache)", req.Mem)
	}
}

// baseConfig assembles the validated base design point every grid or search
// point derives from: bus width, fault injection, and watchdog budget.
func (req SweepRequest) baseConfig() (soc.Config, error) {
	base := soc.DefaultConfig()
	if req.BusBits != 0 {
		base.BusWidthBits = req.BusBits
	}
	if req.Faults != nil {
		base.Faults = req.Faults.Config()
	}
	if req.WatchdogTicks != 0 {
		base.WatchdogTicks = sim.Tick(req.WatchdogTicks)
	}
	base.Fabric.MeshDim = req.MeshDim
	base.Fabric.BurstLen = req.BurstLen
	if err := base.Validate(); err != nil {
		return soc.Config{}, err
	}
	return base, nil
}

// fabricKinds parses the request's fabric axis into backend kinds.
func (req SweepRequest) fabricKinds() ([]soc.FabricKind, error) {
	kinds := make([]soc.FabricKind, 0, len(req.Fabrics))
	for _, name := range req.Fabrics {
		k, err := soc.ParseFabricKind(name)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// Configs expands the request into its design-point grid, exactly as
// cmd/dse would build it. Exported so tests can replay the same grid
// through dse.Sweep and demand bit-identical results.
func (req SweepRequest) Configs() ([]soc.Config, error) {
	if req.Search != nil {
		return nil, errors.New("serve: search requests must be submitted as jobs (POST /jobs)")
	}
	kind, err := req.memKind()
	if err != nil {
		return nil, err
	}
	base, err := req.baseConfig()
	if err != nil {
		return nil, err
	}
	opt := dse.QuickAxes()
	if req.Full {
		opt = dse.FullAxes()
	}
	if len(req.Lanes) > 0 {
		opt.Lanes = req.Lanes
	}
	if len(req.Partitions) > 0 {
		opt.Partitions = req.Partitions
	}
	if len(req.CacheKB) > 0 {
		opt.CacheKB = req.CacheKB
	}
	if len(req.CacheLines) > 0 {
		opt.CacheLines = req.CacheLines
	}
	if len(req.CachePorts) > 0 {
		opt.CachePorts = req.CachePorts
	}
	if len(req.CacheAssoc) > 0 {
		opt.CacheAssoc = req.CacheAssoc
	}
	kinds, err := req.fabricKinds()
	if err != nil {
		return nil, err
	}
	var cfgs []soc.Config
	if kind == soc.Cache {
		// CacheConfigs validates and silently prunes illegal combinations
		// (that is the sweep contract), so an all-illegal grid surfaces as
		// the empty-grid error below.
		cfgs = dse.CacheConfigs(base, opt.Lanes, opt.CacheKB, opt.CacheLines,
			opt.CachePorts, opt.CacheAssoc)
	} else {
		cfgs = dse.SpadConfigs(base, kind, opt.Lanes, opt.Partitions)
		for _, c := range cfgs {
			if err := c.Validate(); err != nil {
				return nil, err
			}
		}
	}
	cfgs = dse.WithFabrics(cfgs, kinds)
	if len(cfgs) == 0 {
		return nil, errors.New("serve: request expands to an empty design grid")
	}
	return cfgs, nil
}

// SweepResponse is the POST /sweep reply.
type SweepResponse struct {
	Kernel string `json:"kernel"`
	Mem    string `json:"mem"`

	// RequestedPoints is the grid size; EvaluatedPoints excludes points
	// the robustness layer aborted (poisoned-point compaction, as in
	// dse.Sweep); CachedPoints says how many cost no new simulation.
	RequestedPoints int `json:"requested_points"`
	EvaluatedPoints int `json:"evaluated_points"`
	AbortedPoints   int `json:"aborted_points"`
	CachedPoints    int `json:"cached_points"`

	// EDPOptimal is null when every point aborted (the empty-space case).
	EDPOptimal *report.Record  `json:"edp_optimal,omitempty"`
	Pareto     []report.Record `json:"pareto"`
	Space      []report.Record `json:"space,omitempty"`

	ElapsedMS float64 `json:"elapsed_ms"`

	// TraceID names the request's span trace when the server runs with
	// span tracing; GET /trace/{id} replays it as Perfetto JSON.
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "sweep requests are POSTs", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)

	// The root span covers the request end to end; every handle below is
	// the nil no-op span when tracing is off.
	span := s.opt.Spans.StartTrace("sweep")
	defer span.EndSpan()
	tid := ""
	if span != nil {
		tid = span.TraceID
		w.Header().Set("X-Trace-Id", tid)
	}
	lg := s.opt.Logger
	fail := func(code int, msg string) {
		span.SetAttr("error", msg)
		span.SetAttr("status", code)
		if lg != nil {
			lg.LogAttrs(r.Context(), slog.LevelWarn, "sweep rejected",
				slog.String("trace", tid), slog.Int("status", code),
				slog.String("err", msg))
		}
		http.Error(w, msg, code)
	}

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad sweep request: "+err.Error())
		return
	}
	span.SetAttr("kernel", req.Kernel)
	cfgs, err := req.Configs()
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}
	span.SetAttr("points", len(cfgs))

	// Admission: the queue-full case answers immediately so clients can
	// back off instead of piling onto a saturated simulator.
	adm := span.Child("admission-wait")
	select {
	case s.admit <- struct{}{}:
		adm.EndSpan()
	default:
		adm.EndSpan()
		s.rejected.Add(1)
		secs := int((s.opt.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		fail(http.StatusTooManyRequests, "sweep queue full")
		return
	}
	defer func() { <-s.admit }()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fail(http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.wgReq.Add(1)
	s.mu.Unlock()
	defer s.wgReq.Done()
	s.activeRequests.Add(1)
	defer s.activeRequests.Add(-1)

	timeout := s.opt.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ctx = obs.WithSpan(ctx, span)

	build := span.Child("build-kernel")
	k, err := s.kernelFor(req.Kernel)
	build.EndSpan()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownKernel) {
			code = http.StatusBadRequest
		}
		fail(code, err.Error())
		return
	}

	started := time.Now()
	resp, code, err := s.sweep(ctx, req, k, cfgs)
	if err != nil {
		fail(code, err.Error())
		return
	}
	ms := float64(time.Since(started)) / float64(time.Millisecond)
	resp.ElapsedMS = ms
	resp.TraceID = tid
	s.statsMu.Lock()
	s.latency.Observe(ms)
	s.statsMu.Unlock()

	span.SetAttr("evaluated", resp.EvaluatedPoints)
	span.SetAttr("cached", resp.CachedPoints)
	if lg != nil {
		lg.LogAttrs(r.Context(), slog.LevelInfo, "sweep served",
			slog.String("trace", tid),
			slog.String("kernel", req.Kernel),
			slog.Int("requested", resp.RequestedPoints),
			slog.Int("evaluated", resp.EvaluatedPoints),
			slog.Int("aborted", resp.AbortedPoints),
			slog.Int("cached", resp.CachedPoints),
			slog.Float64("elapsed_ms", ms))
	}

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// sweep resolves every grid point through the cache/singleflight layer,
// waits for the outstanding ones, and assembles the response in request
// order with aborted points compacted out — the dse.Sweep contract.
func (s *Server) sweep(ctx context.Context, req SweepRequest, k *soc.Compiled, cfgs []soc.Config) (*SweepResponse, int, error) {
	span := obs.SpanFromContext(ctx)
	entries := make([]*entry, len(cfgs))
	byKey := make(map[string]*entry, len(cfgs))
	var uniq, joined []*entry
	cached := 0
	lookup := span.Child("cache-lookup")
	for i, cfg := range cfgs {
		key := dse.PointKey(req.Kernel, cfg)
		if e, ok := byKey[key]; ok {
			entries[i] = e // duplicate point within one request
			continue
		}
		// Track i+1 gives each design point its own Perfetto row; track 0
		// carries the request phases.
		e, join, hit := s.acquire(key, k, cfg, span, i+1)
		entries[i] = e
		byKey[key] = e
		uniq = append(uniq, e)
		if join {
			joined = append(joined, e)
		}
		if hit {
			cached++
		}
	}
	lookup.SetAttr("unique", len(uniq))
	lookup.SetAttr("cached", cached)
	lookup.EndSpan()
	// Dropping the claims releases unstarted points for skipping whether we
	// finish, time out, or the client disconnects.
	defer s.release(joined)

	await := span.Child("await-points")
	defer await.EndSpan()
	for _, e := range uniq {
		select {
		case <-e.done:
		case <-ctx.Done():
			await.SetAttr("timeout", ctx.Err().Error())
			return nil, http.StatusGatewayTimeout,
				fmt.Errorf("serve: sweep unfinished: %v", ctx.Err())
		}
	}

	space := make(dse.Space, 0, len(cfgs))
	aborted := 0
	for i, cfg := range cfgs {
		e := entries[i]
		if e.err != nil {
			return nil, http.StatusInternalServerError, e.err
		}
		if e.aborted {
			aborted++
			continue
		}
		space = append(space, dse.Point{Cfg: cfg, Res: e.res})
	}

	resp := &SweepResponse{
		Kernel:          req.Kernel,
		Mem:             cfgs[0].Mem.String(),
		RequestedPoints: len(cfgs),
		EvaluatedPoints: len(space),
		AbortedPoints:   aborted,
		CachedPoints:    cached,
		Pareto:          spaceRecords(req.Kernel, space.ParetoFront()),
	}
	if best, ok := space.EDPOptimal(); ok {
		rec := report.FromResult(req.Kernel, best.Res)
		resp.EDPOptimal = &rec
	}
	if req.IncludeSpace {
		resp.Space = spaceRecords(req.Kernel, space)
	}
	return resp, http.StatusOK, nil
}

func spaceRecords(kernel string, sp dse.Space) []report.Record {
	rs := make([]*soc.RunResult, len(sp))
	for i, p := range sp {
		rs[i] = p.Res
	}
	return report.FromResults(kernel, rs)
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "kernel list is read-only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(machsuite.Names())
}

// Shutdown gracefully stops the service: new requests get 503, in-flight
// sweeps drain (bounded by ctx), then the workers exit. On ctx expiry the
// workers are still told to wind down, but stragglers are not awaited.
func (s *Server) Shutdown(ctx context.Context) error {
	lg := s.opt.Logger
	if lg != nil {
		lg.Info("shutdown: draining in-flight sweeps",
			"active", s.activeRequests.Load())
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	// Interrupt running jobs first: their goroutines release point claims,
	// so workers skip the queued backlog via the abandon path instead of
	// simulating it during drain. Job manifests stay "running" in the store
	// — the resume signal for the next boot. Client-facing requests still
	// drain normally below.
	s.interruptJobs()

	drained := make(chan struct{})
	go func() {
		s.wgJobs.Wait()
		s.wgReq.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.mu.Lock()
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if err == nil {
		s.wgWorkers.Wait()
	}
	if lg != nil {
		if err != nil {
			lg.Warn("shutdown: drain timed out; workers abandoned", "err", err.Error())
		} else {
			lg.Info("shutdown complete",
				"points_simulated", s.pointsSimulated.Load(),
				"requests", s.requests.Load())
		}
	}
	return err
}

// Snapshot is a point-in-time copy of the service counters, for tests and
// programmatic health checks.
type Snapshot struct {
	Requests, Rejected                              uint64
	CacheHits, CacheMisses, WarmHits                uint64
	PointsSimulated, PointsAborted, PointsAbandoned uint64
	PointRetries                                    uint64
	JobsSubmitted, JobsCompleted, JobsResumed       uint64
	JobsFailed, JobsCancelled                       uint64
	ActiveRequests, ActiveJobs                      int64
	QueuedPoints, CacheEntries                      int
}

// Snapshot reads the counters.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	queued, entries := len(s.queue)-s.qhead, len(s.cache)
	s.mu.Unlock()
	return Snapshot{
		Requests:        s.requests.Load(),
		Rejected:        s.rejected.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMisses.Load(),
		WarmHits:        s.warmHits.Load(),
		PointsSimulated: s.pointsSimulated.Load(),
		PointsAborted:   s.pointsAborted.Load(),
		PointsAbandoned: s.pointsAbandoned.Load(),
		PointRetries:    s.pointRetries.Load(),
		JobsSubmitted:   s.jobsSubmitted.Load(),
		JobsCompleted:   s.jobsCompleted.Load(),
		JobsResumed:     s.jobsResumed.Load(),
		JobsFailed:      s.jobsFailed.Load(),
		JobsCancelled:   s.jobsCancelled.Load(),
		ActiveRequests:  s.activeRequests.Load(),
		ActiveJobs:      s.activeJobs.Load(),
		QueuedPoints:    queued,
		CacheEntries:    entries,
	}
}
