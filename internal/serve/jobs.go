package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/soc"
)

// Job states. A job is "running" from submission until it reaches a terminal
// state; a server killed mid-job leaves the manifest "running" in the store,
// which is exactly the signal the next boot uses to resume it.
const (
	jobRunning   = "running"
	jobCompleted = "completed"
	jobFailed    = "failed"
	jobCancelled = "cancelled"
)

// jobKeyPrefix namespaces job manifests inside the result store. Point
// records are 64-char hex hashes, so the prefix can never collide.
const jobKeyPrefix = "job/"

// jobManifest is the durable record of one submitted job: enough to restart
// it from scratch on a fresh process. Per-point progress is NOT in the
// manifest — the write-through point records are the checkpoint, so a
// resumed job re-acquires its grid and finds every already-simulated point
// in the store.
type jobManifest struct {
	ID      string       `json:"id"`
	State   string       `json:"state"`
	Error   string       `json:"error,omitempty"`
	Created time.Time    `json:"created"`
	Request SweepRequest `json:"request"`
}

// job is one long-running sweep: submitted via POST /jobs, simulated through
// the same entry/singleflight layer as /sweep, pollable and streamable while
// it runs.
type job struct {
	id      string
	req     SweepRequest
	cfgs    []soc.Config
	created time.Time
	resumed bool

	cancel context.CancelFunc
	// acquired closes once entries is populated; done closes when the job
	// goroutine exits (terminal state or interruption).
	acquired chan struct{}
	done     chan struct{}

	// Guarded by Server.jmu.
	state           string
	errMsg          string
	entries         []*entry
	clientCancelled bool

	// Search-job state (req.Search != nil), guarded by Server.jmu. Stream
	// lines accumulate as rounds complete; searchUpdate is rotated (closed
	// and replaced) on every append so tailing streamers wake up.
	searchBudget    int
	searchRound     int
	searchEvaluated int
	searchSimulated int
	searchFrontSize int
	searchLines     [][]byte
	searchUpdate    chan struct{}
}

// newJobID returns a 16-hex-char random job identifier.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// putManifest persists the job's manifest; a nil store makes jobs
// process-local (no resume after restart).
func (s *Server) putManifest(j *job, state, errMsg string) {
	if s.opt.Store == nil {
		return
	}
	m := jobManifest{ID: j.id, State: state, Error: errMsg,
		Created: j.created, Request: j.req}
	data, err := json.Marshal(&m)
	if err != nil {
		return
	}
	if err := s.opt.Store.Put(jobKeyPrefix+j.id, data); err != nil {
		if lg := s.opt.Logger; lg != nil {
			lg.Warn("job manifest write failed", "job", j.id, "err", err.Error())
		}
	}
}

// startJob registers and launches a validated job. Callers have already
// expanded cfgs. Holds no locks. The job's context is process-scoped, not
// request-scoped: the submitting HTTP request returns immediately and the
// job keeps running until terminal, cancelled, or interrupted by Shutdown.
func (s *Server) startJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	s.jmu.Lock()
	j.cancel = cancel
	if j.req.Search != nil {
		j.searchBudget = s.searchBudget(j.req.Search)
		j.searchUpdate = make(chan struct{})
	}
	s.jobs[j.id] = j
	s.jmu.Unlock()
	s.activeJobs.Add(1)
	s.wgJobs.Add(1)
	if j.req.Search != nil {
		go s.runSearchJob(ctx, j)
	} else {
		go s.runJob(ctx, j)
	}
}

// runJob drives one job to a terminal state: resolve the kernel, acquire
// every grid point (the store serves already-finished ones instantly), wait
// for the stragglers, and checkpoint the outcome. An interruption (server
// shutdown) releases the job's claims and leaves the manifest "running" so
// the next boot resumes it; a client cancellation is terminal.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer s.wgJobs.Done()
	defer s.activeJobs.Add(-1)
	defer close(j.done)

	// A cancellation may have raced submission.
	if ctx.Err() != nil {
		s.finishJob(j, jobCancelled, "")
		return
	}

	k, err := s.kernelFor(j.req.Kernel)
	if err != nil {
		s.finishJob(j, jobFailed, err.Error())
		return
	}

	entries := make([]*entry, len(j.cfgs))
	byKey := make(map[string]*entry, len(j.cfgs))
	var joined []*entry
	for i, cfg := range j.cfgs {
		key := dse.PointKey(j.req.Kernel, cfg)
		if e, ok := byKey[key]; ok {
			entries[i] = e
			continue
		}
		e, join, _ := s.acquire(key, k, cfg, nil, 0)
		entries[i] = e
		byKey[key] = e
		if join {
			joined = append(joined, e)
		}
	}
	s.jmu.Lock()
	j.entries = entries
	s.jmu.Unlock()
	close(j.acquired)

	interrupted := false
	for _, e := range byKey {
		select {
		case <-e.done:
		case <-ctx.Done():
			interrupted = true
		}
		if interrupted {
			break
		}
	}
	// Dropping the claims lets workers skip any still-queued points.
	s.release(joined)

	if interrupted {
		s.jmu.Lock()
		cancelled := j.clientCancelled
		s.jmu.Unlock()
		if cancelled {
			s.finishJob(j, jobCancelled, "")
		} else {
			// Shutdown interruption: the manifest stays "running" on disk,
			// which is the resume signal for the next boot. Only the
			// in-memory state flips so pollers on this process see it.
			s.jmu.Lock()
			j.state = jobRunning
			s.jmu.Unlock()
			if lg := s.opt.Logger; lg != nil {
				lg.Info("job interrupted for shutdown; will resume on restart",
					"job", j.id)
			}
		}
		return
	}
	s.finishJob(j, jobCompleted, "")
}

// finishJob records a terminal state in memory, on disk, and in the stats.
func (s *Server) finishJob(j *job, state, errMsg string) {
	s.jmu.Lock()
	j.state = state
	j.errMsg = errMsg
	s.jmu.Unlock()
	s.putManifest(j, state, errMsg)
	switch state {
	case jobCompleted:
		s.jobsCompleted.Add(1)
	case jobFailed:
		s.jobsFailed.Add(1)
	case jobCancelled:
		s.jobsCancelled.Add(1)
	}
	if lg := s.opt.Logger; lg != nil {
		lg.Info("job finished", "job", j.id, "state", state,
			"kernel", j.req.Kernel, "points", len(j.cfgs), "err", errMsg)
	}
}

// resumeJobs replays the store's manifests at boot: every job left
// "running" by a previous process is resubmitted under its original ID. The
// already-simulated points come straight back from the store, so the resumed
// job only simulates what the interrupted run never finished.
func (s *Server) resumeJobs() {
	if s.opt.Store == nil {
		return
	}
	for _, key := range s.opt.Store.Keys(jobKeyPrefix) {
		data, ok, err := s.opt.Store.Get(key)
		if err != nil || !ok {
			continue
		}
		var m jobManifest
		if err := json.Unmarshal(data, &m); err != nil || m.State != jobRunning {
			continue
		}
		var cfgs []soc.Config
		var expandErr error
		if m.Request.Search != nil {
			// Search jobs re-derive everything from the manifest request;
			// their frontier checkpoint under search/<id> does the rest.
			_, expandErr = s.searchSpace(m.Request)
		} else {
			cfgs, expandErr = m.Request.Configs()
		}
		if expandErr != nil {
			// The request no longer expands (schema drift): fail it durably
			// rather than resurrect it forever.
			j := &job{id: m.ID, req: m.Request, created: m.Created,
				state: jobFailed, errMsg: expandErr.Error(),
				acquired: make(chan struct{}), done: make(chan struct{})}
			close(j.done)
			s.jmu.Lock()
			s.jobs[j.id] = j
			s.jmu.Unlock()
			s.putManifest(j, jobFailed, expandErr.Error())
			s.jobsFailed.Add(1)
			continue
		}
		j := &job{id: m.ID, req: m.Request, cfgs: cfgs, created: m.Created,
			resumed: true, state: jobRunning,
			acquired: make(chan struct{}), done: make(chan struct{})}
		s.jobsResumed.Add(1)
		if lg := s.opt.Logger; lg != nil {
			lg.Info("resuming interrupted job", "job", j.id,
				"kernel", j.req.Kernel, "points", len(cfgs))
		}
		s.startJob(j)
	}
}

// interruptJobs cancels every running job (shutdown path). Manifests stay
// "running" so a restart resumes them.
func (s *Server) interruptJobs() {
	s.jmu.Lock()
	for _, j := range s.jobs {
		if j.state == jobRunning && j.cancel != nil {
			j.cancel()
		}
	}
	s.jmu.Unlock()
}

// --- HTTP surface ---

// jobStatus is the GET /jobs/{id} reply.
type jobStatus struct {
	JobID   string `json:"job_id"`
	Kernel  string `json:"kernel"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`

	Points    int `json:"points"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Pending   int `json:"pending"`

	// Search-job fields (kind == "search"): Points/Completed/Pending above
	// are expressed in budget terms (budget, evaluated, remaining), and the
	// adaptive progress rides alongside.
	Kind      string `json:"kind,omitempty"`
	Round     int    `json:"round,omitempty"`
	FrontSize int    `json:"front_size,omitempty"`
	Simulated int    `json:"simulated,omitempty"`
}

// status snapshots the job's per-point progress without blocking on any
// simulation.
func (s *Server) jobStatusOf(j *job) jobStatus {
	s.jmu.Lock()
	st := jobStatus{JobID: j.id, Kernel: j.req.Kernel, State: j.state,
		Error: j.errMsg, Resumed: j.resumed, Points: len(j.cfgs)}
	if j.req.Search != nil {
		st.Kind = "search"
		st.Points = j.searchBudget
		st.Completed = j.searchEvaluated
		st.Pending = j.searchBudget - j.searchEvaluated
		if st.Pending < 0 {
			st.Pending = 0
		}
		st.Round = j.searchRound
		st.FrontSize = j.searchFrontSize
		st.Simulated = j.searchSimulated
		s.jmu.Unlock()
		return st
	}
	entries := j.entries
	s.jmu.Unlock()
	if entries == nil {
		st.Pending = st.Points
		return st
	}
	for _, e := range entries {
		select {
		case <-e.done:
			if e.res != nil {
				st.Completed++
			} else {
				st.Failed++
			}
		default:
			st.Pending++
		}
	}
	return st
}

// handleJobs is POST /jobs: submit a sweep job and return immediately.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "job submission is a POST", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad job request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var cfgs []soc.Config
	points := 0
	if req.Search != nil {
		// Search jobs carry no expanded grid; validate the space now so a
		// bad request fails at submission, not inside the job goroutine.
		if _, err := s.searchSpace(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		points = s.searchBudget(req.Search)
	} else {
		var err error
		cfgs, err = req.Configs()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		points = len(cfgs)
	}

	s.jmu.Lock()
	running := 0
	for _, j := range s.jobs {
		if j.state == jobRunning {
			running++
		}
	}
	s.jmu.Unlock()
	if running >= s.opt.MaxJobs {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "job limit reached", http.StatusTooManyRequests)
		return
	}

	id, err := newJobID()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	j := &job{id: id, req: req, cfgs: cfgs, created: time.Now(),
		state: jobRunning, acquired: make(chan struct{}), done: make(chan struct{})}
	s.jobsSubmitted.Add(1)
	s.putManifest(j, jobRunning, "")
	s.startJob(j)
	if lg := s.opt.Logger; lg != nil {
		lg.Info("job submitted", "job", id, "kernel", req.Kernel,
			"points", points, "search", req.Search != nil)
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	reply := map[string]any{
		"job_id": id,
		"state":  jobRunning,
		"points": points,
	}
	if req.Search != nil {
		reply["kind"] = "search"
	}
	_ = enc.Encode(reply)
}

// handleJob serves GET /jobs/{id} (status), DELETE /jobs/{id} (cancel), and
// GET /jobs/{id}/results (NDJSON result stream).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		http.NotFound(w, r)
		return
	}
	s.jmu.Lock()
	j, ok := s.jobs[id]
	s.jmu.Unlock()
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.jobStatusOf(j))
	case sub == "" && r.Method == http.MethodDelete:
		s.jmu.Lock()
		j.clientCancelled = true
		cancel := j.cancel
		s.jmu.Unlock()
		if cancel != nil {
			cancel()
		}
		select {
		case <-j.done:
		case <-r.Context().Done():
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.jobStatusOf(j))
	case sub == "results" && r.Method == http.MethodGet:
		if j.req.Search != nil {
			s.streamSearchResults(w, r, j)
		} else {
			s.streamJobResults(w, r, j)
		}
	default:
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "unsupported job operation", http.StatusMethodNotAllowed)
	}
}

// jobResultLine is one NDJSON line of GET /jobs/{id}/results: a completed
// point ("ok" + its record), or a failed one with its classification.
type jobResultLine struct {
	Index    int            `json:"index"`
	Status   string         `json:"status"`
	Record   *report.Record `json:"record,omitempty"`
	Kind     string         `json:"kind,omitempty"`
	Error    string         `json:"error,omitempty"`
	Attempts int            `json:"attempts,omitempty"`
}

// jobSummaryLine terminates the stream. It deliberately carries no job ID,
// timing, or other run-specific detail: two runs of the same request produce
// byte-identical streams, which is how the kill-and-restart test proves a
// resumed job lost nothing.
type jobSummaryLine struct {
	Status     string          `json:"status"`
	Requested  int             `json:"requested"`
	Evaluated  int             `json:"evaluated"`
	Failed     int             `json:"failed"`
	Failures   []jobResultLine `json:"failures,omitempty"`
	EDPOptimal *report.Record  `json:"edp_optimal,omitempty"`
	Pareto     []report.Record `json:"pareto"`
}

// streamJobResults writes the job's outcome as NDJSON in request order,
// incrementally: each point's line is flushed as soon as that point
// finishes, so a client can tail a running job. The final line is the
// summary (Pareto front and EDP optimum over the surviving points, failures
// enumerated).
func (s *Server) streamJobResults(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.acquired:
	case <-j.done:
		// Terminal before acquiring any point (failed submission/resume).
		st := s.jobStatusOf(j)
		if st.State == jobFailed || st.State == jobCancelled {
			http.Error(w, fmt.Sprintf("job %s: %s", st.State, st.Error),
				http.StatusConflict)
			return
		}
	case <-r.Context().Done():
		return
	}
	s.jmu.Lock()
	entries := j.entries
	s.jmu.Unlock()
	if entries == nil {
		http.Error(w, "job produced no points", http.StatusConflict)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	space := make(dse.Space, 0, len(entries))
	var failures []jobResultLine
	for i, e := range entries {
		select {
		case <-e.done:
		case <-j.done:
			// Interrupted or cancelled mid-stream: stop at the boundary.
			select {
			case <-e.done:
			default:
				return
			}
		case <-r.Context().Done():
			return
		}
		line := jobResultLine{Index: i}
		switch {
		case e.res != nil:
			line.Status = "ok"
			rec := report.FromResult(j.req.Kernel, e.res)
			line.Record = &rec
			space = append(space, dse.Point{Cfg: j.cfgs[i], Res: e.res})
		case e.aborted:
			line.Status = "failed"
			line.Kind = e.failKind
			line.Error = e.failErr
			line.Attempts = e.attempts
			failures = append(failures, line)
		default:
			line.Status = "failed"
			line.Kind = "error"
			if e.err != nil {
				line.Error = e.err.Error()
			}
			failures = append(failures, line)
		}
		if err := enc.Encode(&line); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}

	sum := jobSummaryLine{
		Status:    "summary",
		Requested: len(entries),
		Evaluated: len(space),
		Failed:    len(failures),
		Failures:  failures,
		Pareto:    spaceRecords(j.req.Kernel, space.ParetoFront()),
	}
	if best, ok := space.EDPOptimal(); ok {
		rec := report.FromResult(j.req.Kernel, best.Res)
		sum.EDPOptimal = &rec
	}
	_ = enc.Encode(&sum)
	if fl != nil {
		fl.Flush()
	}
}
