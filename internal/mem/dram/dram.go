// Package dram models a single-channel DDR-style main memory with per-bank
// open-row (row-buffer) state, in the role of gem5's DRAM controller. The
// pipelined-DMA optimization in the paper picks page-sized chunks explicitly
// "to optimize for DRAM row buffer hits", so row hit/miss timing is the one
// DRAM behavior the experiments rely on.
//
// Timing model per access:
//   - row hit:  tCAS
//   - row miss: tRP + tRCD + tCAS (precharge the open row, activate, read)
//
// plus burst occupancy bytes/bandwidth on the shared data pins. Banks
// interleave at row granularity, so large sequential transfers spread across
// banks and stream near peak bandwidth after the first activation.
package dram

import (
	"fmt"
	"strings"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// Policy selects the memory controller's scheduling discipline.
type Policy uint8

// Scheduling policies.
const (
	// FCFS services each bank's requests in arrival order.
	FCFS Policy = iota
	// FRFCFS (first-ready, first-come-first-served) prefers requests that
	// hit the open row, falling back to the oldest; a skip cap prevents
	// starvation. Row-hit reordering matters most when several masters
	// interleave streams over one channel.
	FRFCFS
)

// Config describes the memory device.
type Config struct {
	RowBytes   uint64   // row-buffer size per bank
	Banks      int      // independent banks
	TCas       sim.Tick // column access (row hit) latency
	TRpRcd     sim.Tick // precharge+activate penalty added on a row miss
	BytesPerNs float64  // peak pin bandwidth
	Policy     Policy   // FCFS (default) or FRFCFS
}

// DefaultConfig matches a Zynq-class 32-bit DDR3-1066 part: 2 KB rows,
// 8 banks, ~15 ns CAS, ~30 ns activate+precharge, ~4.2 GB/s peak.
func DefaultConfig() Config {
	return Config{
		RowBytes:   2048,
		Banks:      8,
		TCas:       15 * sim.Nanosecond,
		TRpRcd:     30 * sim.Nanosecond,
		BytesPerNs: 4.2,
	}
}

// Stats aggregates controller activity.
type Stats struct {
	Reads, Writes      uint64
	RowHits, RowMisses uint64
	BytesMoved         uint64
}

// DRAM is the memory controller + device model. It implements bus.Target.
type DRAM struct {
	cfg Config
	eng *sim.Engine

	openRow  []int64 // per bank; -1 = closed
	bankBusy []sim.Tick
	pinsBusy sim.Tick
	stats    Stats
	probe    *obs.Probe
	inj      *fault.Injector

	// FR-FCFS state: per-bank request queues and service status. Each bank
	// services one beat at a time, so its completion callback is a single
	// pre-bound event and the in-service request lives in bankReq; finished
	// beatReqs recycle through free instead of churning the allocator.
	queues     [][]*beatReq
	bankActive []bool
	bankReq    []*beatReq
	bankEv     []*sim.Event
	free       []*beatReq
}

// beatReq is one queued intra-row beat under FR-FCFS.
type beatReq struct {
	row     int64
	bytes   uint32
	skipped int
	done    func()
}

// frfcfsSkipCap bounds how often a younger row-hit may bypass the oldest
// request before the oldest is forced, preventing starvation.
const frfcfsSkipCap = 8

// New builds a DRAM from cfg.
func New(eng *sim.Engine, cfg Config) *DRAM {
	if cfg.Banks <= 0 || cfg.RowBytes == 0 || cfg.BytesPerNs <= 0 {
		panic("dram: invalid config")
	}
	d := &DRAM{cfg: cfg, eng: eng,
		openRow:    make([]int64, cfg.Banks),
		bankBusy:   make([]sim.Tick, cfg.Banks),
		queues:     make([][]*beatReq, cfg.Banks),
		bankActive: make([]bool, cfg.Banks),
		bankReq:    make([]*beatReq, cfg.Banks),
		bankEv:     make([]*sim.Event, cfg.Banks)}
	for i := range d.openRow {
		d.openRow[i] = -1
		bank := i
		d.bankEv[i] = sim.NewEvent(func() { d.finishBeat(bank) })
	}
	return d
}

// finishBeat retires the beat in service at bank and serves the next one.
func (d *DRAM) finishBeat(bank int) {
	req := d.bankReq[bank]
	d.bankReq[bank] = nil
	d.bankActive[bank] = false
	done := req.done
	*req = beatReq{}
	d.free = append(d.free, req)
	done()
	d.serveBank(bank)
}

// Stats returns a copy of the accumulated counters.
func (d *DRAM) Stats() Stats { return d.stats }

// AttachProbe wires an observability probe; the controller fires one span
// per intra-row beat, named row-hit or row-miss, with the bank as lane.
func (d *DRAM) AttachProbe(p *obs.Probe) { d.probe = p }

// SetFaults attaches a fault injector (nil disables injection). Each
// transaction rolls for a bit flip in the row being accessed; the SECDED
// model corrects singles transparently and detects (reports) doubles.
// Neither changes timing — ECC correction is in-line in real parts.
func (d *DRAM) SetFaults(inj *fault.Injector) { d.inj = inj }

// InFlight counts queued or in-service FR-FCFS beats, for the watchdog.
// (The FCFS path computes completion analytically at accept time and cannot
// strand work.)
func (d *DRAM) InFlight() int {
	n := 0
	for bank, q := range d.queues {
		n += len(q)
		if d.bankActive[bank] {
			n++
		}
	}
	return n
}

// DumpInFlight renders the per-bank queue state for a watchdog diagnostic.
func (d *DRAM) DumpInFlight() string {
	var s strings.Builder
	for bank, q := range d.queues {
		if len(q) == 0 && !d.bankActive[bank] {
			continue
		}
		if s.Len() > 0 {
			s.WriteByte('\n')
		}
		fmt.Fprintf(&s, "bank%d: active=%v queued=%d", bank, d.bankActive[bank], len(q))
	}
	return s.String()
}

// RegisterStats registers the controller counters under prefix.
func (d *DRAM) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".reads", "read transactions",
		func() uint64 { return d.stats.Reads })
	reg.CounterFunc(prefix+".writes", "write transactions",
		func() uint64 { return d.stats.Writes })
	reg.CounterFunc(prefix+".row_hits", "beats hitting the open row",
		func() uint64 { return d.stats.RowHits })
	reg.CounterFunc(prefix+".row_misses", "beats paying precharge+activate",
		func() uint64 { return d.stats.RowMisses })
	reg.CounterFunc(prefix+".bytes_moved", "bytes transferred",
		func() uint64 { return d.stats.BytesMoved })
	reg.Formula(prefix+".row_hit_rate", "row hits / all beats",
		func() float64 {
			total := d.stats.RowHits + d.stats.RowMisses
			if total == 0 {
				return 0
			}
			return float64(d.stats.RowHits) / float64(total)
		})
}

// fireBeat reports one serviced beat to the probe.
func (d *DRAM) fireBeat(bank int, hit bool, start, end sim.Tick, bytes uint32) {
	name := "row-miss"
	if hit {
		name = "row-hit"
	}
	d.probe.Fire(obs.Event{Name: name, Start: uint64(start), End: uint64(end),
		Lane: int32(bank), Bytes: uint64(bytes)})
}

// Config returns the device configuration.
func (d *DRAM) Config() Config { return d.cfg }

func (d *DRAM) burstTicks(bytes uint32) sim.Tick {
	ns := float64(bytes) / d.cfg.BytesPerNs
	return sim.Tick(ns*float64(sim.Nanosecond) + 0.5)
}

// Access services one transaction. Accesses larger than a row are split into
// row-sized beats that walk across banks, which is how long DMA bursts reach
// streaming bandwidth. done fires when the last beat's data is ready.
func (d *DRAM) Access(addr uint64, bytes uint32, write bool, done func()) {
	if bytes == 0 {
		done()
		return
	}
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.stats.BytesMoved += uint64(bytes)
	d.inj.ECC(fault.SiteDRAM, d.eng.Now(), addr)

	if d.cfg.Policy == FRFCFS {
		d.accessQueued(addr, bytes, done)
		return
	}
	var finish sim.Tick
	remaining := uint64(bytes)
	a := addr
	for remaining > 0 {
		rowOff := a % d.cfg.RowBytes
		beat := d.cfg.RowBytes - rowOff
		if beat > remaining {
			beat = remaining
		}
		end := d.beat(a, uint32(beat))
		if end > finish {
			finish = end
		}
		a += beat
		remaining -= beat
	}
	d.eng.Schedule(finish, done)
}

// accessQueued is the FR-FCFS path: beats enter per-bank queues and a
// scheduler picks row hits first (oldest-first fallback with a skip cap).
// The last beat to finish completes the access. Enqueuing never fires a
// completion synchronously (service runs off a scheduled event), so the
// outstanding count is final before any beat can retire.
func (d *DRAM) accessQueued(addr uint64, bytes uint32, done func()) {
	outstanding := 0
	beatDone := func() {
		outstanding--
		if outstanding == 0 {
			done()
		}
	}
	remaining := uint64(bytes)
	a := addr
	for remaining > 0 {
		rowOff := a % d.cfg.RowBytes
		beat := d.cfg.RowBytes - rowOff
		if beat > remaining {
			beat = remaining
		}
		row := int64(a / d.cfg.RowBytes)
		bank := int(uint64(row) % uint64(d.cfg.Banks))
		req := d.newBeatReq()
		req.row, req.bytes, req.done = row, uint32(beat), beatDone
		outstanding++
		d.queues[bank] = append(d.queues[bank], req)
		d.serveBank(bank)
		a += beat
		remaining -= beat
	}
}

// newBeatReq takes a request from the freelist, or allocates one.
func (d *DRAM) newBeatReq() *beatReq {
	if n := len(d.free); n > 0 {
		req := d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		return req
	}
	return &beatReq{}
}

// serveBank dispatches the next request for a bank under FR-FCFS.
func (d *DRAM) serveBank(bank int) {
	if d.bankActive[bank] || len(d.queues[bank]) == 0 {
		return
	}
	q := d.queues[bank]
	pick := 0
	if q[0].skipped < frfcfsSkipCap {
		for i, r := range q {
			if r.row == d.openRow[bank] {
				pick = i
				break
			}
		}
	}
	req := q[pick]
	d.queues[bank] = append(q[:pick], q[pick+1:]...)
	q[len(q)-1] = nil // release the compacted-over tail slot
	if pick != 0 && len(d.queues[bank]) > 0 {
		d.queues[bank][0].skipped++
	}
	d.bankActive[bank] = true
	d.bankReq[bank] = req

	lat := d.cfg.TCas
	hit := d.openRow[bank] == req.row
	if !hit {
		lat += d.cfg.TRpRcd
		d.stats.RowMisses++
		d.openRow[bank] = req.row
	} else {
		d.stats.RowHits++
	}
	ready := d.eng.Now() + lat
	burst := d.burstTicks(req.bytes)
	pinStart := ready
	if d.pinsBusy > pinStart {
		pinStart = d.pinsBusy
	}
	d.pinsBusy = pinStart + burst
	end := pinStart + burst
	if d.probe.Enabled() {
		d.fireBeat(bank, hit, d.eng.Now(), end, req.bytes)
	}
	d.eng.ScheduleEvent(end, d.bankEv[bank])
}

// beat performs one intra-row access and returns its data-ready time.
func (d *DRAM) beat(addr uint64, bytes uint32) sim.Tick {
	row := int64(addr / d.cfg.RowBytes)
	bank := int(uint64(row) % uint64(d.cfg.Banks))

	start := d.eng.Now()
	if d.bankBusy[bank] > start {
		start = d.bankBusy[bank]
	}
	lat := d.cfg.TCas
	hit := d.openRow[bank] == row
	if !hit {
		lat += d.cfg.TRpRcd
		d.stats.RowMisses++
		d.openRow[bank] = row
	} else {
		d.stats.RowHits++
	}
	ready := start + lat

	// Burst occupies the shared data pins after the bank responds.
	burst := d.burstTicks(bytes)
	pinStart := ready
	if d.pinsBusy > pinStart {
		pinStart = d.pinsBusy
	}
	d.pinsBusy = pinStart + burst
	d.bankBusy[bank] = pinStart + burst
	if d.probe.Enabled() {
		d.fireBeat(bank, hit, start, pinStart+burst, bytes)
	}
	return pinStart + burst
}
