package dram

import (
	"testing"

	"gem5aladdin/internal/sim"
)

func newDRAM(t *testing.T) (*sim.Engine, *DRAM) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, DefaultConfig())
}

func TestRowHitVsMiss(t *testing.T) {
	eng, d := newDRAM(t)
	var t1, t2, t3 sim.Tick
	d.Access(0, 64, false, func() { t1 = eng.Now() })
	eng.Run()
	d.Access(64, 64, false, func() { t2 = eng.Now() - t1 })
	eng.Run()
	// Different row, same bank stride: row 0 and row 8 map to bank 0.
	d.Access(8*2048, 64, false, func() { t3 = eng.Now() })
	eng.Run()
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", st.RowHits, st.RowMisses)
	}
	// First access: miss = 45ns + burst(64B @4.2B/ns ~ 15ns).
	cfg := d.Config()
	wantMiss := cfg.TCas + cfg.TRpRcd + sim.Tick(float64(64)/cfg.BytesPerNs*1000+0.5)
	if t1 != wantMiss {
		t.Fatalf("cold access latency %v, want %v", t1, wantMiss)
	}
	wantHit := cfg.TCas + sim.Tick(float64(64)/cfg.BytesPerNs*1000+0.5)
	if t2 != wantHit {
		t.Fatalf("row hit latency %v, want %v", t2, wantHit)
	}
	_ = t3
}

func TestLargeAccessSplitsAcrossRows(t *testing.T) {
	eng, d := newDRAM(t)
	done := false
	d.Access(0, 8192, false, func() { done = true }) // 4 rows
	eng.Run()
	if !done {
		t.Fatal("large access never completed")
	}
	st := d.Stats()
	if st.RowMisses != 4 {
		t.Fatalf("row misses = %d, want 4 (one per row)", st.RowMisses)
	}
	if st.BytesMoved != 8192 {
		t.Fatalf("bytes = %d", st.BytesMoved)
	}
}

func TestStreamingApproachesPeakBandwidth(t *testing.T) {
	eng, d := newDRAM(t)
	const total = 64 * 1024
	var finish sim.Tick
	d.Access(0, total, false, func() { finish = eng.Now() })
	eng.Run()
	gotBW := float64(total) / finish.Nanos()
	peak := d.Config().BytesPerNs
	if gotBW < 0.85*peak {
		t.Fatalf("streaming bandwidth %.2f B/ns, want >= 85%% of peak %.2f", gotBW, peak)
	}
	if gotBW > peak {
		t.Fatalf("streaming bandwidth %.2f exceeds peak %.2f", gotBW, peak)
	}
}

func TestBankInterleavingOverlapsActivations(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, DefaultConfig())
	// Two concurrent accesses to different banks overlap their activations;
	// two to the same bank serialize.
	var doneA, doneB sim.Tick
	d.Access(0, 64, false, func() { doneA = eng.Now() })    // bank 0
	d.Access(2048, 64, false, func() { doneB = eng.Now() }) // bank 1
	eng.Run()
	if doneB-doneA > 20*sim.Nanosecond {
		t.Fatalf("different-bank accesses barely overlapped: %v vs %v", doneA, doneB)
	}

	eng2 := sim.NewEngine()
	d2 := New(eng2, DefaultConfig())
	var sameA, sameB sim.Tick
	d2.Access(0, 64, false, func() { sameA = eng2.Now() })
	d2.Access(64, 64, false, func() { sameB = eng2.Now() })
	eng2.Run()
	if sameB <= sameA {
		t.Fatal("same-bank accesses did not serialize")
	}
}

func TestWriteCounts(t *testing.T) {
	eng, d := newDRAM(t)
	d.Access(0, 32, true, func() {})
	d.Access(0, 32, false, func() {})
	eng.Run()
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("reads/writes = %d/%d", st.Reads, st.Writes)
	}
}

func TestZeroBytes(t *testing.T) {
	eng, d := newDRAM(t)
	called := false
	d.Access(0, 0, false, func() { called = true })
	eng.Run()
	if !called {
		t.Fatal("zero-byte access never completed")
	}
	if d.Stats().Reads != 0 {
		t.Fatal("zero-byte access counted")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	// Alternate two rows of the same bank: FCFS pays a row miss on every
	// access; FR-FCFS groups hits and halves the activations.
	run := func(p Policy) (sim.Tick, Stats) {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Policy = p
		d := New(eng, cfg)
		rowA := uint64(0)        // bank 0, row 0
		rowB := uint64(8 * 2048) // bank 0, row 8
		var last sim.Tick
		for i := 0; i < 4; i++ {
			d.Access(rowA+uint64(i*64), 64, false, func() { last = eng.Now() })
			d.Access(rowB+uint64(i*64), 64, false, func() { last = eng.Now() })
		}
		eng.Run()
		return last, d.Stats()
	}
	tFCFS, sFCFS := run(FCFS)
	tFR, sFR := run(FRFCFS)
	if sFR.RowMisses >= sFCFS.RowMisses {
		t.Fatalf("FR-FCFS misses %d not below FCFS %d", sFR.RowMisses, sFCFS.RowMisses)
	}
	if tFR >= tFCFS {
		t.Fatalf("FR-FCFS (%v) not faster than FCFS (%v)", tFR, tFCFS)
	}
}

func TestFRFCFSNoStarvation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Policy = FRFCFS
	d := New(eng, cfg)
	// One request to row B, then a long stream to row A (same bank). The
	// skip cap must eventually force row B through.
	var bAt sim.Tick
	d.Access(0, 64, false, func() {})                       // open row 0
	d.Access(8*2048, 64, false, func() { bAt = eng.Now() }) // row 8, same bank
	for i := 1; i < 30; i++ {
		d.Access(uint64(i*64), 64, false, func() {})
	}
	eng.Run()
	if bAt == 0 {
		t.Fatal("row-B request never served")
	}
	// It must complete before the entire row-A stream would (30 hits at
	// ~30ns each).
	if bAt > 600*sim.Nanosecond {
		t.Fatalf("row-B request starved until %v", bAt)
	}
}

func TestFRFCFSCompletesAllBeats(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Policy = FRFCFS
	d := New(eng, cfg)
	done := false
	d.Access(0, 8192, false, func() { done = true }) // 4 rows, multi-beat
	eng.Run()
	if !done {
		t.Fatal("multi-beat FR-FCFS access never completed")
	}
	if d.Stats().BytesMoved != 8192 {
		t.Fatalf("bytes = %d", d.Stats().BytesMoved)
	}
}
