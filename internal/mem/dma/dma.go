// Package dma models the SoC's descriptor-based DMA engine together with
// the software coherence management that surrounds it (Sec II-B, III-C,
// IV-B of the paper).
//
// The typical flow: the CPU flushes every input line out of its private
// caches (84 ns/line, characterized on the Zedboard's Cortex-A9),
// invalidates the output region (71 ns/line), builds transfer descriptors,
// and kicks the engine; the engine then services descriptors one by one
// over the system bus.
//
// Two latency optimizations from the paper are implemented:
//
//   - Pipelined DMA: flush and transfer are broken into page-sized (4 KB)
//     chunks and overlapped — the DMA of chunk b runs under the flush of
//     chunk b+1, never starting a chunk before its own flush completes.
//     Each chunk pays a fixed 40-accelerator-cycle setup (descriptor fetch,
//     CPU kick-off, housekeeping).
//   - DMA-triggered computation: as a transfer's beats cross the bus, the
//     engine reports line-granularity arrivals so the accelerator's
//     full/empty bits can release loads before the whole transfer is done.
package dma

import (
	"fmt"
	"sort"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// Config describes the DMA engine and the CPU-side coherence costs.
type Config struct {
	CPULineBytes uint32    // CPU cache line (32 B on the Cortex-A9)
	FlushPerLine sim.Tick  // 84 ns
	InvalPerLine sim.Tick  // 71 ns
	ChunkBytes   uint32    // pipelined chunk size (4 KB)
	SetupCycles  uint64    // per-transaction overhead (40 cycles)
	AccelClock   sim.Clock // clock in which SetupCycles is expressed
	Pipelined    bool      // overlap flush with transfer
	// Interleave orders the pipelined descriptor list round-robin across
	// arrays instead of array-by-array. DMA-triggered designs do this so
	// the leading chunks of every input arrive early: an accelerator
	// whose first iteration touches several arrays would otherwise stall
	// on whichever array the driver happened to list last.
	Interleave bool
	// HardwareCoherent makes the DMA engine a coherence participant, as
	// on the IBM Cell (the exception the paper notes in Sec IV-A): no CPU
	// flush or invalidate is needed — the engine snoops dirty lines out
	// of the CPU cache directly, paying SnoopLat per descriptor instead.
	// This is the paper's future-work direction realized as an extension.
	HardwareCoherent bool
	// SnoopLat is the CPU-cache supply latency for coherent transfers.
	SnoopLat sim.Tick
}

// DefaultConfig returns the paper's characterized parameters.
func DefaultConfig(accelClock sim.Clock) Config {
	return Config{
		CPULineBytes: 32,
		FlushPerLine: 84 * sim.Nanosecond,
		InvalPerLine: 71 * sim.Nanosecond,
		ChunkBytes:   4096,
		SetupCycles:  40,
		AccelClock:   accelClock,
		SnoopLat:     50 * sim.Nanosecond,
	}
}

// snoopSupplier answers coherent DMA reads from the CPU cache hierarchy
// after a fixed lookup latency (no DRAM access: the dirty data is on
// chip).
type snoopSupplier struct {
	eng *sim.Engine
	lat sim.Tick
}

// Access implements bus.Target.
func (s *snoopSupplier) Access(addr uint64, n uint32, write bool, done func()) {
	s.eng.After(s.lat, done)
}

// Transfer is one dmaLoad or dmaStore call: an array region moved between
// host memory and the accelerator's scratchpads.
type Transfer struct {
	Arr   int16  // destination/source array id, for arrival callbacks
	Base  uint64 // physical base address
	Bytes uint32
	Load  bool // true: memory -> scratchpad (dmaLoad)
}

// Interval is a half-open activity window [Start, End).
type Interval struct{ Start, End sim.Tick }

// Duration returns the interval length.
func (iv Interval) Duration() sim.Tick { return iv.End - iv.Start }

// Stats aggregates engine activity.
type Stats struct {
	Descriptors      uint64
	BytesMoved       uint64
	LinesFlushed     uint64
	LinesInvalidated uint64
}

// Engine is the DMA engine plus CPU coherence-prep model.
type Engine struct {
	cfg    Config
	eng    *sim.Engine
	bus    bus.Fabric
	master int

	// OnArrive, when set, is called as load data arrives, with the array
	// id and the [off, off+n) byte span now valid.
	OnArrive func(arr int16, off, n uint32)
	// OnAbort, when set, is called once when a descriptor exhausts its
	// timeout retries (fault injection). The SoC layer wires it to
	// sim.Engine.Abort so the run fails fast with an error instead of
	// wedging.
	OnAbort func(error)

	flushIvals []Interval
	dmaIvals   []Interval
	snoop      *snoopSupplier // non-nil when HardwareCoherent
	stats      Stats
	inj        *fault.Injector

	// pending counts chunks accepted but not yet completed, for the
	// watchdog; cur* describe the descriptor currently on the bus.
	pending    int
	curAddr    uint64
	curBytes   uint32
	curAttempt int
	curActive  bool

	probe      *obs.Probe // descriptor transfers
	flushProbe *obs.Probe // CPU flush/invalidate windows
	chunkHist  *obs.Histogram
}

// New creates a DMA engine as a bus master.
func New(eng *sim.Engine, cfg Config, b bus.Fabric) *Engine {
	if cfg.CPULineBytes == 0 || cfg.ChunkBytes == 0 {
		panic("dma: invalid config")
	}
	e := &Engine{cfg: cfg, eng: eng, bus: b, master: b.RegisterMaster()}
	if cfg.HardwareCoherent {
		e.snoop = &snoopSupplier{eng: eng, lat: cfg.SnoopLat}
	}
	return e
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetFaults attaches a fault injector (nil disables injection). With a
// nonzero DMA timeout configured, each descriptor's bus transaction is
// guarded: a transaction that has not completed within the timeout is
// reissued, up to the injector's retry limit, after which the transfer is
// aborted through OnAbort.
func (e *Engine) SetFaults(inj *fault.Injector) { e.inj = inj }

// InFlight counts chunks accepted but not completed, for the watchdog.
func (e *Engine) InFlight() int { return e.pending }

// DumpInFlight renders the engine's stuck state for a watchdog diagnostic.
func (e *Engine) DumpInFlight() string {
	s := fmt.Sprintf("%d chunks outstanding", e.pending)
	if e.curActive {
		s += fmt.Sprintf("; current descriptor @%#x (%d B) attempt %d awaiting bus completion",
			e.curAddr, e.curBytes, e.curAttempt)
	}
	return s
}

// AttachProbe wires the transfer probe (one span per descriptor burst,
// load-chunk or store-chunk, with the array id as lane) and the flush
// probe (one span per CPU flush/invalidate window).
func (e *Engine) AttachProbe(transfer, flush *obs.Probe) {
	e.probe = transfer
	e.flushProbe = flush
}

// RegisterStats registers the engine counters under prefix, including a
// histogram of descriptor chunk sizes (the Sec IV-B1 design axis).
func (e *Engine) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".descriptors", "DMA descriptors serviced",
		func() uint64 { return e.stats.Descriptors })
	reg.CounterFunc(prefix+".bytes_moved", "bytes transferred by the engine",
		func() uint64 { return e.stats.BytesMoved })
	reg.CounterFunc(prefix+".lines_flushed", "CPU cache lines flushed for loads",
		func() uint64 { return e.stats.LinesFlushed })
	reg.CounterFunc(prefix+".lines_invalidated", "CPU cache lines invalidated for stores",
		func() uint64 { return e.stats.LinesInvalidated })
	e.chunkHist = reg.Histogram(prefix+".chunk_bytes", "descriptor chunk sizes",
		[]float64{512, 1024, 2048, 4096})
}

// FlushIntervals returns the CPU flush/invalidate activity windows.
func (e *Engine) FlushIntervals() []Interval { return e.flushIvals }

// DMAIntervals returns the engine's transfer activity windows.
func (e *Engine) DMAIntervals() []Interval { return e.dmaIvals }

// lines returns the CPU cache lines covering n bytes.
func (e *Engine) lines(n uint32) uint64 {
	return uint64((n + e.cfg.CPULineBytes - 1) / e.cfg.CPULineBytes)
}

// FlushTicks is the analytic CPU cost of flushing n bytes.
func (e *Engine) FlushTicks(n uint32) sim.Tick {
	return sim.Tick(e.lines(n)) * e.cfg.FlushPerLine
}

// InvalTicks is the analytic CPU cost of invalidating n bytes.
func (e *Engine) InvalTicks(n uint32) sim.Tick {
	return sim.Tick(e.lines(n)) * e.cfg.InvalPerLine
}

// fireFlush reports a CPU coherence-prep window. The window is computed
// analytically at schedule time, so the span is emitted up front with its
// known end.
func (e *Engine) fireFlush(name string, start, end sim.Tick) {
	if e.flushProbe.Enabled() {
		e.flushProbe.Fire(obs.Event{Name: name,
			Start: uint64(start), End: uint64(end)})
	}
}

// chunk is one flush+transfer unit.
type chunk struct {
	t     *Transfer
	off   uint32 // offset within the transfer
	bytes uint32
}

// chunks splits transfers for the pipelined mode, or keeps one chunk per
// descriptor for the baseline. With Interleave set, the chunk list is
// drawn round-robin across transfers.
func (e *Engine) chunks(ts []*Transfer) []chunk {
	if !e.cfg.Pipelined {
		out := make([]chunk, 0, len(ts))
		for _, t := range ts {
			out = append(out, chunk{t: t, off: 0, bytes: t.Bytes})
		}
		return out
	}
	perTransfer := make([][]chunk, len(ts))
	total := 0
	for i, t := range ts {
		for off := uint32(0); off < t.Bytes; off += e.cfg.ChunkBytes {
			n := e.cfg.ChunkBytes
			if off+n > t.Bytes {
				n = t.Bytes - off
			}
			perTransfer[i] = append(perTransfer[i], chunk{t: t, off: off, bytes: n})
			total++
		}
	}
	out := make([]chunk, 0, total)
	if !e.cfg.Interleave {
		for _, cs := range perTransfer {
			out = append(out, cs...)
		}
		return out
	}
	for round := 0; len(out) < total; round++ {
		for i := range perTransfer {
			if round < len(perTransfer[i]) {
				out = append(out, perTransfer[i][round])
			}
		}
	}
	return out
}

// LoadPhase runs the input side of an invocation: CPU flush of every load
// region and invalidate of every store region, then the dmaLoad transfers.
// done fires when the last load descriptor's data has fully arrived.
func (e *Engine) LoadPhase(transfers []Transfer, done func()) {
	var loads, stores []*Transfer
	for i := range transfers {
		if transfers[i].Load {
			loads = append(loads, &transfers[i])
		} else {
			stores = append(stores, &transfers[i])
		}
	}
	// Invalidation of the output regions is CPU work like the flush. In
	// the baseline it runs up front before anything else (Sec II-B). In
	// the pipelined mode it is deferred to the end of the flush chain:
	// no DMA load depends on it (it only has to finish before the CPU
	// consumes results), so it overlaps the transfer stream. A hardware-
	// coherent engine needs neither flushes nor invalidates.
	var inval sim.Tick
	if !e.cfg.HardwareCoherent {
		for _, t := range stores {
			inval += e.InvalTicks(t.Bytes)
			e.stats.LinesInvalidated += e.lines(t.Bytes)
		}
	}

	start := e.eng.Now()
	chs := e.chunks(loads)
	if len(chs) == 0 {
		if inval > 0 {
			e.flushIvals = append(e.flushIvals, Interval{start, start + inval})
			e.fireFlush("invalidate", start, start+inval)
		}
		e.eng.After(inval, done)
		return
	}

	// CPU flush timeline, chunk by chunk. Coherent engines skip it: every
	// chunk is ready immediately and dirty data is snooped in flight.
	flushDone := make([]sim.Tick, len(chs))
	tcur := start
	if e.cfg.HardwareCoherent {
		for i := range flushDone {
			flushDone[i] = start
		}
		e.runChunks(chs, flushDone, false, done)
		return
	}
	if !e.cfg.Pipelined {
		tcur += inval
	}
	for i, c := range chs {
		f := e.FlushTicks(c.bytes)
		e.stats.LinesFlushed += e.lines(c.bytes)
		tcur += f
		flushDone[i] = tcur
	}
	if e.cfg.Pipelined {
		tcur += inval
	} else {
		// Baseline flow: the CPU finishes the entire flush before the
		// first transfer is programmed (Sec II-B).
		for i := range flushDone {
			flushDone[i] = tcur
		}
	}
	e.flushIvals = append(e.flushIvals, Interval{start, tcur})
	e.fireFlush("flush+invalidate", start, tcur)

	// DMA timeline: serial on the engine; chunk i waits for its flush.
	e.runChunks(chs, flushDone, false, done)
}

// StorePhase runs the output side: dmaStore transfers back to memory.
// Output regions were invalidated up front, so no CPU work remains.
func (e *Engine) StorePhase(transfers []Transfer, done func()) {
	var stores []*Transfer
	for i := range transfers {
		if !transfers[i].Load {
			stores = append(stores, &transfers[i])
		}
	}
	chs := e.chunks(stores)
	if len(chs) == 0 {
		done()
		return
	}
	ready := make([]sim.Tick, len(chs))
	now := e.eng.Now()
	for i := range ready {
		ready[i] = now
	}
	e.runChunks(chs, ready, true, done)
}

// runChunks services chunks in order: each pays the setup overhead, waits
// for its readiness time (flush completion for loads), and transfers over
// the bus. The engine is serial: one descriptor in flight at a time, which
// produces the paper's "serial data arrival effect".
func (e *Engine) runChunks(chs []chunk, readyAt []sim.Tick, write bool, done func()) {
	e.pending += len(chs)
	idx := 0
	var step func()
	step = func() {
		if idx >= len(chs) {
			done()
			return
		}
		c := chs[idx]
		ready := readyAt[idx]
		idx++
		begin := e.eng.Now()
		if ready > begin {
			begin = ready
		}
		setup := e.cfg.AccelClock.Cycles(e.cfg.SetupCycles)
		e.eng.Schedule(begin, func() {
			e.eng.After(setup, func() {
				tstart := e.eng.Now()
				e.stats.Descriptors++
				e.stats.BytesMoved += uint64(c.bytes)
				if e.chunkHist != nil {
					e.chunkHist.Observe(float64(c.bytes))
				}
				fin := func() {
					e.pending--
					e.curActive = false
					e.dmaIvals = append(e.dmaIvals, Interval{tstart, e.eng.Now()})
					if e.probe.Enabled() {
						name := "load-chunk"
						if write {
							name = "store-chunk"
						}
						e.probe.Fire(obs.Event{Name: name,
							Start: uint64(tstart), End: uint64(e.eng.Now()),
							Lane: int32(c.t.Arr), Bytes: uint64(c.bytes)})
					}
					step()
				}
				e.issue(c, write, fin)
			})
		})
	}
	step()
}

// issue puts one descriptor on the bus, guarded — when fault injection
// configures a DMA timeout — by a retry-or-abort watchdog: an attempt that
// does not complete within the timeout is counted and reissued; once the
// retry limit is exhausted the transfer aborts through OnAbort. The per-
// attempt live flag makes both a late completion of a timed-out attempt and
// a stale timeout event of a completed attempt harmless no-ops.
func (e *Engine) issue(c chunk, write bool, fin func()) {
	addr := c.t.Base + uint64(c.off)
	timeout := e.inj.DMATimeout()
	attempt := 0
	var try func()
	try = func() {
		attempt++
		e.curAddr, e.curBytes, e.curAttempt, e.curActive = addr, c.bytes, attempt, true
		finish := fin
		if timeout > 0 {
			live := true
			a := attempt
			finish = func() {
				if !live {
					return // this attempt already timed out; a retry owns the chunk
				}
				live = false
				fin()
			}
			e.eng.After(timeout, func() {
				if !live {
					return // attempt completed before the timeout fired
				}
				live = false
				e.inj.CountDMATimeout(e.eng.Now(), addr, a)
				if a > e.inj.DMARetryLimit() {
					e.inj.CountDMAAbort(e.eng.Now(), addr, a)
					if e.OnAbort != nil {
						e.OnAbort(fmt.Errorf("dma: descriptor @%#x (%d B) timed out after %d attempts", addr, c.bytes, a))
					}
					return
				}
				e.inj.CountDMARetry(e.eng.Now(), addr, a)
				try()
			})
		}
		if write {
			e.bus.Access(e.master, addr, c.bytes, true, finish)
			return
		}
		if e.OnArrive != nil {
			arr, base := c.t.Arr, c.off
			last := uint32(0)
			progress := func(cum uint32) {
				e.OnArrive(arr, base+last, cum-last)
				last = cum
			}
			if e.snoop != nil {
				e.bus.ReadStreamVia(e.master, addr, c.bytes,
					e.cfg.CPULineBytes, e.snoop, progress, finish)
				return
			}
			e.bus.ReadStream(e.master, addr, c.bytes,
				e.cfg.CPULineBytes, progress, finish)
			return
		}
		if e.snoop != nil {
			e.bus.AccessVia(e.master, addr, c.bytes, false, e.snoop, finish)
			return
		}
		e.bus.Access(e.master, addr, c.bytes, false, finish)
	}
	try()
}

// MergeIntervals unions a set of activity windows into disjoint sorted
// intervals, for runtime breakdown accounting.
func MergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// TotalDuration sums merged interval lengths.
func TotalDuration(ivs []Interval) sim.Tick {
	var d sim.Tick
	for _, iv := range MergeIntervals(ivs) {
		d += iv.Duration()
	}
	return d
}

// Intersect returns the pointwise intersection of two interval sets.
func Intersect(a, b []Interval) []Interval {
	am, bm := MergeIntervals(a), MergeIntervals(b)
	var out []Interval
	i, j := 0, 0
	for i < len(am) && j < len(bm) {
		lo := am[i].Start
		if bm[j].Start > lo {
			lo = bm[j].Start
		}
		hi := am[i].End
		if bm[j].End < hi {
			hi = bm[j].End
		}
		if lo < hi {
			out = append(out, Interval{lo, hi})
		}
		if am[i].End < bm[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns a \ b as a merged interval set.
func Subtract(a, b []Interval) []Interval {
	am, bm := MergeIntervals(a), MergeIntervals(b)
	var out []Interval
	j := 0
	for _, iv := range am {
		cur := iv.Start
		for j < len(bm) && bm[j].End <= cur {
			j++
		}
		k := j
		for k < len(bm) && bm[k].Start < iv.End {
			if bm[k].Start > cur {
				out = append(out, Interval{cur, bm[k].Start})
			}
			if bm[k].End > cur {
				cur = bm[k].End
			}
			k++
		}
		if cur < iv.End {
			out = append(out, Interval{cur, iv.End})
		}
	}
	return out
}

// Union returns the merged union of two interval sets.
func Union(a, b []Interval) []Interval {
	return MergeIntervals(append(append([]Interval{}, a...), b...))
}
