package dma

import (
	"testing"
	"testing/quick"

	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/dram"
	"gem5aladdin/internal/sim"
)

func newEngine(t *testing.T, pipelined bool) (*sim.Engine, *Engine) {
	t.Helper()
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	b := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
	cfg := DefaultConfig(sim.NewClockHz(100e6))
	cfg.Pipelined = pipelined
	return eng, New(eng, cfg, b)
}

func TestFlushAndInvalTicks(t *testing.T) {
	_, e := newEngine(t, false)
	// 4096 bytes = 128 lines of 32 B.
	if got := e.FlushTicks(4096); got != 128*84*sim.Nanosecond {
		t.Fatalf("flush(4096) = %v", got)
	}
	if got := e.InvalTicks(4096); got != 128*71*sim.Nanosecond {
		t.Fatalf("inval(4096) = %v", got)
	}
	// Partial lines round up.
	if got := e.FlushTicks(33); got != 2*84*sim.Nanosecond {
		t.Fatalf("flush(33) = %v", got)
	}
}

func TestBaselineLoadSequencing(t *testing.T) {
	eng, e := newEngine(t, false)
	var doneAt sim.Tick
	e.LoadPhase([]Transfer{
		{Arr: 0, Base: 0x10000, Bytes: 4096, Load: true},
		{Arr: 1, Base: 0x20000, Bytes: 4096, Load: false}, // output: invalidate only
	}, func() { doneAt = eng.Now() })
	eng.Run()

	flush := MergeIntervals(e.FlushIntervals())
	dmas := MergeIntervals(e.DMAIntervals())
	if len(flush) != 1 || len(dmas) != 1 {
		t.Fatalf("intervals: flush=%v dma=%v", flush, dmas)
	}
	// Baseline: DMA starts only after the whole flush (+inval) window.
	if dmas[0].Start < flush[0].End {
		t.Fatalf("baseline DMA started at %v before flush ended at %v",
			dmas[0].Start, flush[0].End)
	}
	wantFlush := e.InvalTicks(4096) + e.FlushTicks(4096)
	if flush[0].Duration() != wantFlush {
		t.Fatalf("flush window = %v, want %v", flush[0].Duration(), wantFlush)
	}
	if doneAt != dmas[0].End {
		t.Fatalf("done at %v, dma end %v", doneAt, dmas[0].End)
	}
	if e.Stats().Descriptors != 1 {
		t.Fatalf("descriptors = %d", e.Stats().Descriptors)
	}
}

func TestPipelinedOverlapsFlushWithDMA(t *testing.T) {
	transfers := []Transfer{{Arr: 0, Base: 0x10000, Bytes: 16 * 1024, Load: true}}

	run := func(pipelined bool) (total sim.Tick, e *Engine) {
		eng, e := newEngine(t, pipelined)
		var doneAt sim.Tick
		e.LoadPhase(transfers, func() { doneAt = eng.Now() })
		eng.Run()
		return doneAt, e
	}
	base, _ := run(false)
	pipe, pe := run(true)
	if pipe >= base {
		t.Fatalf("pipelined (%v) not faster than baseline (%v)", pipe, base)
	}
	// 16 KB / 4 KB chunks = 4 descriptors.
	if pe.Stats().Descriptors != 4 {
		t.Fatalf("pipelined descriptors = %d, want 4", pe.Stats().Descriptors)
	}
	// In the best case all but one chunk's flush is hidden: the paper's
	// bound. Flush of 16 KB = 512 lines * 84ns = 43us; DMA of 16 KB at
	// ~4 B per 10ns ~ 41us; so pipelined total should be near
	// flush_chunk0 + max(flush_rest, dma_total) rather than flush+dma.
	if pipe > base-3*pe.FlushTicks(4096)/2 {
		t.Fatalf("pipelining hid too little flush: %v vs %v", pipe, base)
	}
}

func TestPipelinedChunkWaitsForOwnFlush(t *testing.T) {
	eng, e := newEngine(t, true)
	e.LoadPhase([]Transfer{{Arr: 0, Base: 0, Bytes: 8192, Load: true}}, func() {})
	eng.Run()
	// First DMA interval must start no earlier than the first chunk's
	// flush completes (4 KB = 128 lines * 84 ns) plus setup.
	dmas := e.DMAIntervals()
	if len(dmas) != 2 {
		t.Fatalf("dma intervals = %d", len(dmas))
	}
	firstFlush := e.FlushTicks(4096)
	if dmas[0].Start < firstFlush {
		t.Fatalf("chunk 0 transfer at %v before its flush done %v",
			dmas[0].Start, firstFlush)
	}
}

func TestArrivalCallbacksSequential(t *testing.T) {
	eng, e := newEngine(t, true)
	type arrival struct{ off, n uint32 }
	var got []arrival
	e.OnArrive = func(arr int16, off, n uint32) {
		if arr != 3 {
			t.Errorf("arr = %d", arr)
		}
		got = append(got, arrival{off, n})
	}
	e.LoadPhase([]Transfer{{Arr: 3, Base: 0, Bytes: 4096, Load: true}}, func() {})
	eng.Run()
	if len(got) == 0 {
		t.Fatal("no arrivals reported")
	}
	var cum uint32
	for _, a := range got {
		if a.off != cum {
			t.Fatalf("arrival at %d, expected sequential %d", a.off, cum)
		}
		cum += a.n
	}
	if cum != 4096 {
		t.Fatalf("total arrived = %d", cum)
	}
}

func TestArrivalsSpreadOverTransfer(t *testing.T) {
	eng, e := newEngine(t, true)
	var times []sim.Tick
	e.OnArrive = func(arr int16, off, n uint32) { times = append(times, eng.Now()) }
	e.LoadPhase([]Transfer{{Arr: 0, Base: 0, Bytes: 4096, Load: true}}, func() {})
	eng.Run()
	if len(times) < 4 {
		t.Fatalf("arrivals = %d", len(times))
	}
	// Arrivals must be strictly spread, not bunched at completion.
	if times[0] == times[len(times)-1] {
		t.Fatal("all arrivals at the same instant")
	}
}

func TestStorePhase(t *testing.T) {
	eng, e := newEngine(t, false)
	var doneAt sim.Tick
	e.StorePhase([]Transfer{
		{Arr: 0, Base: 0x10000, Bytes: 2048, Load: false},
		{Arr: 1, Base: 0x20000, Bytes: 1024, Load: true}, // ignored here
	}, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt == 0 {
		t.Fatal("store phase never finished")
	}
	if e.Stats().BytesMoved != 2048 {
		t.Fatalf("bytes moved = %d", e.Stats().BytesMoved)
	}
	if len(e.FlushIntervals()) != 0 {
		t.Fatal("store phase should not flush")
	}
}

func TestEmptyPhases(t *testing.T) {
	eng, e := newEngine(t, false)
	calls := 0
	e.LoadPhase(nil, func() { calls++ })
	e.StorePhase(nil, func() { calls++ })
	eng.Run()
	if calls != 2 {
		t.Fatalf("callbacks = %d", calls)
	}
}

func TestSetupOverheadCharged(t *testing.T) {
	eng, e := newEngine(t, false)
	var doneAt sim.Tick
	// A tiny 32 B store: time should be dominated by the 40-cycle setup.
	e.StorePhase([]Transfer{{Base: 0, Bytes: 32}}, func() { doneAt = eng.Now() })
	eng.Run()
	setup := e.cfg.AccelClock.Cycles(e.cfg.SetupCycles)
	if doneAt < setup {
		t.Fatalf("done at %v, before setup %v elapsed", doneAt, setup)
	}
}

func TestMergeIntervals(t *testing.T) {
	ivs := []Interval{{10, 20}, {15, 30}, {40, 50}, {50, 60}, {5, 8}}
	m := MergeIntervals(ivs)
	want := []Interval{{5, 8}, {10, 30}, {40, 60}}
	if len(m) != len(want) {
		t.Fatalf("merged = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merged = %v, want %v", m, want)
		}
	}
	if TotalDuration(ivs) != 3+20+20 {
		t.Fatalf("total = %v", TotalDuration(ivs))
	}
	if MergeIntervals(nil) != nil {
		t.Fatal("nil merge should be nil")
	}
}

// Property: merged intervals are disjoint, sorted, and cover exactly the
// union of the inputs.
func TestMergeIntervalsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var ivs []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			a, b := sim.Tick(raw[i]), sim.Tick(raw[i+1])
			if a > b {
				a, b = b, a
			}
			ivs = append(ivs, Interval{a, b})
		}
		m := MergeIntervals(ivs)
		for i := 1; i < len(m); i++ {
			if m[i].Start <= m[i-1].End {
				return false
			}
		}
		// Every input point inside some merged interval.
		for _, iv := range ivs {
			found := false
			for _, mm := range m {
				if iv.Start >= mm.Start && iv.End <= mm.End {
					found = true
					break
				}
			}
			if !found && iv.Start != iv.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetAlgebra(t *testing.T) {
	a := []Interval{{0, 10}, {20, 30}}
	b := []Interval{{5, 25}}
	inter := Intersect(a, b)
	want := []Interval{{5, 10}, {20, 25}}
	if len(inter) != 2 || inter[0] != want[0] || inter[1] != want[1] {
		t.Fatalf("intersect = %v", inter)
	}
	sub := Subtract(a, b)
	wantSub := []Interval{{0, 5}, {25, 30}}
	if len(sub) != 2 || sub[0] != wantSub[0] || sub[1] != wantSub[1] {
		t.Fatalf("subtract = %v", sub)
	}
	uni := Union(a, b)
	if len(uni) != 1 || uni[0] != (Interval{0, 30}) {
		t.Fatalf("union = %v", uni)
	}
}

func TestIntervalAlgebraEmpty(t *testing.T) {
	a := []Interval{{0, 10}}
	if got := Intersect(a, nil); got != nil {
		t.Fatalf("intersect with empty = %v", got)
	}
	if got := Subtract(nil, a); got != nil {
		t.Fatalf("empty minus a = %v", got)
	}
	sub := Subtract(a, nil)
	if len(sub) != 1 || sub[0] != a[0] {
		t.Fatalf("a minus empty = %v", sub)
	}
}

// Property: durations obey |A| = |A∩B| + |A\B|, and |A∪B| = |A|+|B|-|A∩B|.
func TestIntervalAlgebraProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var a, b []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			lo, hi := sim.Tick(raw[i]), sim.Tick(raw[i+1])
			if lo > hi {
				lo, hi = hi, lo
			}
			if i%4 == 0 {
				a = append(a, Interval{lo, hi})
			} else {
				b = append(b, Interval{lo, hi})
			}
		}
		ta, tb := TotalDuration(a), TotalDuration(b)
		ti := TotalDuration(Intersect(a, b))
		ts := TotalDuration(Subtract(a, b))
		tu := TotalDuration(Union(a, b))
		return ta == ti+ts && tu == ta+tb-ti
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newCoherentEngine(t *testing.T) (*sim.Engine, *Engine) {
	t.Helper()
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	b := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
	cfg := DefaultConfig(sim.NewClockHz(100e6))
	cfg.Pipelined = true
	cfg.HardwareCoherent = true
	return eng, New(eng, cfg, b)
}

func TestCoherentDMANoFlush(t *testing.T) {
	eng, e := newCoherentEngine(t)
	var doneAt sim.Tick
	e.LoadPhase([]Transfer{
		{Arr: 0, Base: 0, Bytes: 8192, Load: true},
		{Arr: 1, Base: 0x10000, Bytes: 8192, Load: false},
	}, func() { doneAt = eng.Now() })
	eng.Run()
	if got := e.Stats().LinesFlushed; got != 0 {
		t.Fatalf("coherent DMA flushed %d lines", got)
	}
	if got := e.Stats().LinesInvalidated; got != 0 {
		t.Fatalf("coherent DMA invalidated %d lines", got)
	}
	if len(e.FlushIntervals()) != 0 {
		t.Fatal("coherent DMA recorded flush activity")
	}
	// The first transfer can begin right away (setup only).
	dmas := e.DMAIntervals()
	if len(dmas) == 0 {
		t.Fatal("no transfers")
	}
	setup := e.cfg.AccelClock.Cycles(e.cfg.SetupCycles)
	if dmas[0].Start > setup+sim.Nanosecond {
		t.Fatalf("first coherent chunk started at %v, want ~%v", dmas[0].Start, setup)
	}
	if doneAt == 0 {
		t.Fatal("load phase never finished")
	}
}

func TestCoherentDMAFasterThanSoftwareCoherence(t *testing.T) {
	transfers := []Transfer{
		{Arr: 0, Base: 0, Bytes: 16 * 1024, Load: true},
		{Arr: 1, Base: 0x10000, Bytes: 16 * 1024, Load: false},
	}
	run := func(coherent bool) sim.Tick {
		eng := sim.NewEngine()
		d := dram.New(eng, dram.DefaultConfig())
		b := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
		cfg := DefaultConfig(sim.NewClockHz(100e6))
		cfg.Pipelined = true
		cfg.HardwareCoherent = coherent
		e := New(eng, cfg, b)
		var doneAt sim.Tick
		e.LoadPhase(transfers, func() { doneAt = eng.Now() })
		eng.Run()
		return doneAt
	}
	sw, hw := run(false), run(true)
	if hw >= sw {
		t.Fatalf("coherent DMA (%v) not faster than software coherence (%v)", hw, sw)
	}
	// The win should be roughly the flush time that disappeared.
	if sw-hw < 10*sim.Microsecond {
		t.Fatalf("coherent DMA saved only %v", sw-hw)
	}
}

func TestCoherentDMAArrivalsStillStream(t *testing.T) {
	eng, e := newCoherentEngine(t)
	var cum uint32
	e.OnArrive = func(arr int16, off, n uint32) { cum += n }
	e.LoadPhase([]Transfer{{Arr: 0, Base: 0, Bytes: 4096, Load: true}}, func() {})
	eng.Run()
	if cum != 4096 {
		t.Fatalf("arrivals covered %d bytes", cum)
	}
}
