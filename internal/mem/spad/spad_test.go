package spad

import (
	"testing"

	"gem5aladdin/internal/power"
	"gem5aladdin/internal/trace"
)

func testArrays() []*trace.Array {
	b := trace.NewBuilder("t")
	b.Alloc("in", trace.F64, 64, trace.In)   // 512 B
	b.Alloc("out", trace.F64, 64, trace.Out) // 512 B
	return b.Finish().Arrays
}

func TestPortLimitPerBank(t *testing.T) {
	arrs := testArrays()
	s := New(Config{Partitions: 2, Ports: 1}, arrs)
	// Elements 0 and 2 share bank 0 under cyclic partitioning.
	if !s.TryAccess(0, 0*8, false, 1) {
		t.Fatal("first access refused")
	}
	if s.TryAccess(0, 2*8, false, 1) {
		t.Fatal("same-bank same-cycle access should conflict")
	}
	// Element 1 lives in bank 1: available.
	if !s.TryAccess(0, 1*8, false, 1) {
		t.Fatal("other-bank access refused")
	}
	// Next cycle the port frees.
	if !s.TryAccess(0, 2*8, false, 2) {
		t.Fatal("port did not free on new cycle")
	}
	if s.Stats().BankConflicts != 1 {
		t.Fatalf("conflicts = %d", s.Stats().BankConflicts)
	}
}

func TestMorePartitionsMoreBandwidth(t *testing.T) {
	arrs := testArrays()
	s := New(Config{Partitions: 4, Ports: 1}, arrs)
	granted := 0
	for e := uint32(0); e < 4; e++ {
		if s.TryAccess(0, e*8, false, 1) {
			granted++
		}
	}
	if granted != 4 {
		t.Fatalf("4 banks granted %d accesses in one cycle", granted)
	}
}

func TestMultiPortBank(t *testing.T) {
	arrs := testArrays()
	s := New(Config{Partitions: 1, Ports: 2}, arrs)
	if !s.TryAccess(0, 0, false, 1) || !s.TryAccess(0, 8, true, 1) {
		t.Fatal("2-port bank refused two accesses")
	}
	if s.TryAccess(0, 16, false, 1) {
		t.Fatal("third access on 2-port bank should conflict")
	}
	st := s.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("reads/writes = %d/%d", st.Reads, st.Writes)
	}
}

func TestArraysHaveIndependentPorts(t *testing.T) {
	arrs := testArrays()
	s := New(Config{Partitions: 1, Ports: 1}, arrs)
	if !s.TryAccess(0, 0, false, 1) || !s.TryAccess(1, 0, true, 1) {
		t.Fatal("accesses to different arrays should not conflict")
	}
}

func TestReadyBits(t *testing.T) {
	arrs := testArrays()
	s := New(DefaultConfig(), arrs)
	s.EnableReadyBits(32, arrs)
	// Nothing arrived: load of array 0 stalls; array 1 (Out) is exempt.
	if s.DataReady(0, 0, 8) {
		t.Fatal("load should stall before DMA arrival")
	}
	if !s.DataReady(1, 0, 8) {
		t.Fatal("output array should never stall")
	}
	s.MarkArrived(0, 0, 32)
	if !s.DataReady(0, 0, 8) || !s.DataReady(0, 24, 8) {
		t.Fatal("arrived chunk should be ready")
	}
	if s.DataReady(0, 32, 8) {
		t.Fatal("not-yet-arrived chunk should stall")
	}
	if s.Stats().ReadyBitStalls != 2 {
		t.Fatalf("stalls = %d", s.Stats().ReadyBitStalls)
	}
}

func TestReadyBitsStraddle(t *testing.T) {
	arrs := testArrays()
	s := New(DefaultConfig(), arrs)
	s.EnableReadyBits(32, arrs)
	s.MarkArrived(0, 0, 32)
	// An 8-byte access at offset 28 straddles chunks 0 and 1.
	if s.DataReady(0, 28, 8) {
		t.Fatal("straddling access should wait for both chunks")
	}
	s.MarkArrived(0, 32, 32)
	if !s.DataReady(0, 28, 8) {
		t.Fatal("straddling access ready once both chunks arrive")
	}
}

func TestMarkAllArrived(t *testing.T) {
	arrs := testArrays()
	s := New(DefaultConfig(), arrs)
	s.EnableReadyBits(32, arrs)
	s.MarkAllArrived(arrs)
	if !s.DataReady(0, 504, 8) {
		t.Fatal("MarkAllArrived left a chunk empty")
	}
}

func TestReadyBitsDisabled(t *testing.T) {
	arrs := testArrays()
	s := New(DefaultConfig(), arrs)
	if !s.DataReady(0, 0, 8) {
		t.Fatal("ready bits disabled should never stall")
	}
}

func TestBankBytes(t *testing.T) {
	arrs := testArrays() // 512 B arrays
	s := New(Config{Partitions: 4, Ports: 1}, arrs)
	if got := s.BankBytes(arrs[0]); got != 128 {
		t.Fatalf("bank bytes = %d, want 128", got)
	}
	s1 := New(Config{Partitions: 1, Ports: 1}, arrs)
	if got := s1.BankBytes(arrs[0]); got != 512 {
		t.Fatalf("unpartitioned bank bytes = %d, want 512", got)
	}
}

func TestEnergyAccounting(t *testing.T) {
	arrs := testArrays()
	s := New(DefaultConfig(), arrs)
	m := power.Default()
	e0 := s.Energy(m, arrs, 1e-6)
	if e0.MemDynamic != 0 {
		t.Fatal("no accesses should mean no dynamic energy")
	}
	if e0.MemLeak <= 0 {
		t.Fatal("leakage should accrue with time")
	}
	s.TryAccess(0, 0, false, 1)
	e1 := s.Energy(m, arrs, 1e-6)
	if e1.MemDynamic <= 0 {
		t.Fatal("access should add dynamic energy")
	}
	// More partitions -> more leakage (same total capacity, more macros).
	s16 := New(Config{Partitions: 16, Ports: 1}, arrs)
	e16 := s16.Energy(m, arrs, 1e-6)
	if e16.MemLeak <= e0.MemLeak {
		t.Fatalf("16-bank leakage %g should exceed 1-bank %g", e16.MemLeak, e0.MemLeak)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{Partitions: 0, Ports: 1}, testArrays())
}

func TestZeroGranularityPanics(t *testing.T) {
	s := New(DefaultConfig(), testArrays())
	defer func() {
		if recover() == nil {
			t.Fatal("zero granularity did not panic")
		}
	}()
	s.EnableReadyBits(0, testArrays())
}
