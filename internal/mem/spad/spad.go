// Package spad models the accelerator's partitioned scratchpad memories and
// the full/empty ("ready") bit SRAM used by DMA-triggered computation
// (Sec IV-B2 of the paper).
//
// Each kernel array is cyclically partitioned into P banks; each bank
// serves a fixed number of accesses per accelerator cycle (its ports).
// Partitioning is the paper's second design axis next to datapath lanes:
// more banks mean more memory bandwidth into the lanes at the cost of more
// SRAM periphery energy.
package spad

import (
	"fmt"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/power"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/trace"
)

// Config describes the scratchpad organization applied to every array.
type Config struct {
	Partitions int // banks per array (1..16 in the paper's sweeps)
	Ports      int // accesses per bank per cycle
}

// DefaultConfig is a single-bank, single-ported scratchpad.
func DefaultConfig() Config { return Config{Partitions: 1, Ports: 1} }

// Stats counts scratchpad activity.
type Stats struct {
	Reads, Writes  uint64
	BankConflicts  uint64 // accesses delayed by port exhaustion
	ReadyBitStalls uint64 // loads that found their full/empty bit clear
}

// Spad holds the per-array bank state for one accelerator instance.
type Spad struct {
	cfg    Config
	arrays []arrayState
	stats  Stats
	inj    *fault.Injector

	// ready-bit tracking (nil when DMA-triggered compute is off):
	// per array, one bit per granularity-sized chunk.
	readyGranularity uint32
	ready            [][]uint64
}

type arrayState struct {
	elemSize   uint32
	length     uint32 // elements
	bankOfElem func(elem uint32) int
	// port bookkeeping: accesses issued per bank in the current cycle
	cycle     uint64
	usedPorts []int
}

// New builds scratchpad state for the arrays of a trace.
func New(cfg Config, arrays []*trace.Array) *Spad {
	if cfg.Partitions <= 0 || cfg.Ports <= 0 {
		panic("spad: invalid config")
	}
	s := &Spad{cfg: cfg}
	for _, a := range arrays {
		p := cfg.Partitions
		st := arrayState{
			elemSize:  a.Elem.Size(),
			length:    uint32(a.Len),
			usedPorts: make([]int, p),
		}
		st.bankOfElem = func(elem uint32) int { return int(elem % uint32(p)) }
		s.arrays = append(s.arrays, st)
	}
	return s
}

// Stats returns a copy of the counters.
func (s *Spad) Stats() Stats { return s.stats }

// SetFaults attaches a fault injector (nil disables injection). Each
// granted access rolls for a bit flip in the bank word; SECDED corrects
// singles and detects doubles without changing access timing.
func (s *Spad) SetFaults(inj *fault.Injector) { s.inj = inj }

// Config returns the scratchpad configuration.
func (s *Spad) Config() Config { return s.cfg }

// RegisterStats registers the scratchpad counters under prefix.
func (s *Spad) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".reads", "scratchpad read accesses",
		func() uint64 { return s.stats.Reads })
	reg.CounterFunc(prefix+".writes", "scratchpad write accesses",
		func() uint64 { return s.stats.Writes })
	reg.CounterFunc(prefix+".bank_conflicts", "accesses delayed by port exhaustion",
		func() uint64 { return s.stats.BankConflicts })
	reg.CounterFunc(prefix+".ready_bit_stalls", "loads stalled on a clear full/empty bit",
		func() uint64 { return s.stats.ReadyBitStalls })
}

// EnableReadyBits turns on full/empty-bit tracking at the given granularity
// in bytes (the paper uses the CPU cache line size so bits stay consistent
// with flush granularity). All chunks start empty for In arrays.
func (s *Spad) EnableReadyBits(granularity uint32, arrays []*trace.Array) {
	if granularity == 0 {
		panic("spad: zero ready-bit granularity")
	}
	s.readyGranularity = granularity
	s.ready = make([][]uint64, len(arrays))
	for i, a := range arrays {
		if a.Dir.IsIn() {
			chunks := (a.Bytes() + granularity - 1) / granularity
			s.ready[i] = make([]uint64, (chunks+63)/64)
		}
	}
}

// MarkArrived sets the full/empty bits covering [off, off+n) bytes of the
// given array, waking loads that were stalled on them.
func (s *Spad) MarkArrived(arr int16, off, n uint32) {
	if s.ready == nil || s.ready[arr] == nil || n == 0 {
		return
	}
	g := s.readyGranularity
	bits := s.ready[arr]
	for c := off / g; c <= (off+n-1)/g; c++ {
		if int(c/64) < len(bits) {
			bits[c/64] |= 1 << (c % 64)
		}
	}
}

// MarkAllArrived sets every bit of every array (end of DMA).
func (s *Spad) MarkAllArrived(arrays []*trace.Array) {
	for i, a := range arrays {
		if s.ready != nil && s.ready[i] != nil {
			s.MarkArrived(int16(i), 0, a.Bytes())
		}
	}
}

// DataReady reports whether a load of size bytes at byte offset off in arr
// may proceed under full/empty-bit control. Always true when ready bits are
// disabled or the array is not DMA-fed.
func (s *Spad) DataReady(arr int16, off uint32, size uint8) bool {
	if s.ready == nil || s.ready[arr] == nil {
		return true
	}
	g := s.readyGranularity
	bits := s.ready[arr]
	for c := off / g; c <= (off+uint32(size)-1)/g; c++ {
		if bits[c/64]&(1<<(c%64)) == 0 {
			s.stats.ReadyBitStalls++
			return false
		}
	}
	return true
}

// TryAccess attempts a scratchpad access in the given accelerator cycle and
// reports whether a bank port was available. Ports free at every new cycle.
func (s *Spad) TryAccess(arr int16, off uint32, write bool, cycle uint64) bool {
	st := &s.arrays[arr]
	if st.cycle != cycle {
		st.cycle = cycle
		for i := range st.usedPorts {
			st.usedPorts[i] = 0
		}
	}
	bank := st.bankOfElem(off / st.elemSize)
	if st.usedPorts[bank] >= s.cfg.Ports {
		s.stats.BankConflicts++
		return false
	}
	st.usedPorts[bank]++
	if write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}
	// The spad has no engine reference; the accelerator cycle stands in for
	// the tick in fault records (still strictly deterministic).
	s.inj.ECC(fault.SiteSpad, sim.Tick(cycle), uint64(arr)<<32|uint64(off))
	return true
}

// BankBytes returns the capacity of one bank of array a, which sizes the
// SRAM macro for energy modeling. Scratchpads must hold the whole array
// (no replacement), one of the paper's key contrasts with caches.
func (s *Spad) BankBytes(a *trace.Array) uint64 {
	per := (uint64(a.Bytes()) + uint64(s.cfg.Partitions) - 1) / uint64(s.cfg.Partitions)
	if per == 0 {
		per = 1
	}
	return per
}

// Energy computes scratchpad dynamic + leakage energy for a run of the
// given seconds using model m.
func (s *Spad) Energy(m *power.Model, arrays []*trace.Array, seconds float64) power.Breakdown {
	var bd power.Breakdown
	var leakW float64
	var maxBank uint64 = 1
	for _, a := range arrays {
		bank := s.BankBytes(a)
		leakW += m.SRAMLeakW(bank, s.cfg.Ports) * float64(s.cfg.Partitions)
		if bank > maxBank {
			maxBank = bank
		}
	}
	// Dynamic energy charges each access at the dominant (largest) bank
	// macro plus the bank-select crossbar; per-array banks are close in
	// size for these kernels.
	perAccess := m.BankedSRAMAccessJ(maxBank, s.cfg.Ports, s.cfg.Partitions)
	bd.MemDynamic = perAccess * float64(s.stats.Reads+s.stats.Writes)
	bd.MemLeak = leakW * seconds
	return bd
}

// String summarizes the configuration.
func (s *Spad) String() string {
	return fmt.Sprintf("spad{banks:%d ports:%d}", s.cfg.Partitions, s.cfg.Ports)
}
