package tlb

import (
	"testing"
	"testing/quick"

	"gem5aladdin/internal/sim"
)

func TestHitAfterMiss(t *testing.T) {
	tl := New(DefaultConfig())
	_, p1 := tl.Translate(0x1000)
	if p1 != 200*sim.Nanosecond {
		t.Fatalf("cold translation penalty = %v, want 200ns", p1)
	}
	_, p2 := tl.Translate(0x1fff) // same page
	if p2 != 0 {
		t.Fatalf("same-page translation penalty = %v, want 0", p2)
	}
	st := tl.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
}

func TestTranslationIsStable(t *testing.T) {
	tl := New(DefaultConfig())
	a1, _ := tl.Translate(0x2345)
	a2, _ := tl.Translate(0x2345)
	if a1 != a2 {
		t.Fatalf("translation unstable: %#x vs %#x", a1, a2)
	}
	if a1 == 0x2345 {
		t.Fatal("paddr should not equal vaddr (offset mapping)")
	}
	// Page-offset bits preserved.
	if a1%4096 != 0x345 {
		t.Fatalf("page offset not preserved: %#x", a1)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 2
	tl := New(cfg)
	tl.Translate(0x0000) // page 0: miss
	tl.Translate(0x1000) // page 1: miss
	tl.Translate(0x0000) // page 0: hit (page 1 now LRU)
	tl.Translate(0x2000) // page 2: miss, evicts page 1
	if _, p := tl.Translate(0x0000); p != 0 {
		t.Fatal("page 0 should have survived")
	}
	if _, p := tl.Translate(0x1000); p == 0 {
		t.Fatal("page 1 should have been evicted")
	}
}

func TestCapacityWorkingSet(t *testing.T) {
	tl := New(DefaultConfig()) // 8 entries
	// 8-page working set: after warmup, all hits.
	for round := 0; round < 3; round++ {
		for pg := uint64(0); pg < 8; pg++ {
			tl.Translate(pg * 4096)
		}
	}
	st := tl.Stats()
	if st.Misses != 8 {
		t.Fatalf("8-page working set misses = %d, want 8", st.Misses)
	}
	// 9-page round-robin working set thrashes an 8-entry LRU TLB.
	tl2 := New(DefaultConfig())
	for round := 0; round < 3; round++ {
		for pg := uint64(0); pg < 9; pg++ {
			tl2.Translate(pg * 4096)
		}
	}
	if tl2.Stats().Hits != 0 {
		t.Fatalf("9-page LRU thrash produced %d hits", tl2.Stats().Hits)
	}
}

func TestFlush(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Translate(0x5000)
	tl.Flush()
	if _, p := tl.Translate(0x5000); p == 0 {
		t.Fatal("flushed entry still hit")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{Entries: 0, PageBytes: 4096})
}

// Property: translation preserves page offsets and is injective per page.
func TestTranslationProperty(t *testing.T) {
	tl := New(DefaultConfig())
	f := func(v uint32) bool {
		va := uint64(v)
		pa, _ := tl.Translate(va)
		return pa%4096 == va%4096 && pa > va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
