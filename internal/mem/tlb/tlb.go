// Package tlb implements the accelerator-side TLB described in Sec III-D of
// the paper. gem5's CPU TLBs are ISA-specific, so gem5-Aladdin carries its
// own model: it translates trace addresses into simulated virtual addresses
// and then into simulated physical addresses, with misses charged a
// pre-characterized page-table-walk penalty (200 ns, Fig 3 table).
package tlb

import (
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// Config describes a TLB instance.
type Config struct {
	Entries     int      // fully-associative entry count (8 in the paper)
	PageBytes   uint64   // page size (4 KB)
	MissLatency sim.Tick // page-walk penalty (200 ns)
}

// DefaultConfig returns the paper's accelerator TLB parameters.
func DefaultConfig() Config {
	return Config{Entries: 8, PageBytes: 4096, MissLatency: 200 * sim.Nanosecond}
}

// Stats counts TLB activity.
type Stats struct {
	Hits, Misses uint64
}

// TLB is a fully-associative, LRU-replaced translation buffer. The
// trace-virtual to simulated-physical mapping itself is a fixed linear
// offset per page (the paper's mapping is likewise deterministic once the
// host program allocates its buffers); what the TLB models is the *timing*
// of translation.
type TLB struct {
	cfg     Config
	entries []tlbEntry
	clock   uint64 // LRU timestamp source
	stats   Stats
	// physOffset relocates virtual pages into the physical space; a
	// nonzero value keeps accidental vaddr==paddr assumptions out of
	// downstream components.
	physOffset uint64
}

type tlbEntry struct {
	vpn   uint64
	used  uint64
	valid bool
}

// New builds a TLB.
func New(cfg Config) *TLB {
	return NewWithOffset(cfg, 1<<30)
}

// NewWithOffset builds a TLB whose pages map at the given physical offset.
// Multi-accelerator systems give each accelerator a disjoint physical
// window so their working sets do not alias in DRAM or the coherence
// fabric.
func NewWithOffset(cfg Config, physOffset uint64) *TLB {
	if cfg.Entries <= 0 || cfg.PageBytes == 0 {
		panic("tlb: invalid config")
	}
	if physOffset%cfg.PageBytes != 0 {
		panic("tlb: physical offset not page aligned")
	}
	return &TLB{cfg: cfg, entries: make([]tlbEntry, cfg.Entries), physOffset: physOffset}
}

// Stats returns a copy of the hit/miss counters.
func (t *TLB) Stats() Stats { return t.stats }

// Config returns the TLB configuration.
func (t *TLB) Config() Config { return t.cfg }

// RegisterStats registers the TLB counters under prefix.
func (t *TLB) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".hits", "translations served from the TLB",
		func() uint64 { return t.stats.Hits })
	reg.CounterFunc(prefix+".misses", "translations paying the page-walk penalty",
		func() uint64 { return t.stats.Misses })
	reg.Formula(prefix+".miss_rate", "misses / all translations",
		func() float64 {
			total := t.stats.Hits + t.stats.Misses
			if total == 0 {
				return 0
			}
			return float64(t.stats.Misses) / float64(total)
		})
}

// Translate maps a virtual address to a physical address and reports the
// translation latency: zero on a hit, the miss penalty on a miss (the walk
// is modeled analytically, as in the paper).
func (t *TLB) Translate(vaddr uint64) (paddr uint64, penalty sim.Tick) {
	vpn := vaddr / t.cfg.PageBytes
	t.clock++
	paddr = vaddr + t.physOffset

	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			e.used = t.clock
			t.stats.Hits++
			return paddr, 0
		}
	}
	t.stats.Misses++
	// Install with LRU replacement.
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].used < t.entries[victim].used {
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{vpn: vpn, used: t.clock, valid: true}
	return paddr, t.cfg.MissLatency
}

// PhysOf returns the physical address a virtual address maps to without
// touching TLB state (no hit/miss accounting). The SoC wiring uses it to
// place CPU-side data at the addresses the accelerator will access.
func (t *TLB) PhysOf(vaddr uint64) uint64 { return vaddr + t.physOffset }

// Flush invalidates all entries.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}
