package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColdReadExclusive(t *testing.T) {
	c := NewController()
	p := c.AddPeer()
	r := c.Read(p, 0x40)
	if r.NewState != Exclusive || r.Src != SrcMemory || r.WasHit {
		t.Fatalf("cold read = %+v", r)
	}
	if c.StateOf(p, 0x40) != Exclusive {
		t.Fatal("state not recorded")
	}
}

func TestReadHit(t *testing.T) {
	c := NewController()
	p := c.AddPeer()
	c.Read(p, 0x40)
	r := c.Read(p, 0x40)
	if !r.WasHit || r.Src != SrcNone {
		t.Fatalf("read hit = %+v", r)
	}
}

func TestSharedRead(t *testing.T) {
	c := NewController()
	p0, p1 := c.AddPeer(), c.AddPeer()
	c.Read(p0, 0x40) // p0: E
	r := c.Read(p1, 0x40)
	if r.NewState != Shared {
		t.Fatalf("second reader state = %v", r.NewState)
	}
	if r.Src != SrcCache {
		t.Fatalf("E peer should supply data, got %v", r.Src)
	}
	if c.StateOf(p0, 0x40) != Shared {
		t.Fatalf("former E holder = %v, want S", c.StateOf(p0, 0x40))
	}
}

func TestReadFromModifiedMovesToOwned(t *testing.T) {
	c := NewController()
	p0, p1 := c.AddPeer(), c.AddPeer()
	c.Write(p0, 0x40) // p0: M
	r := c.Read(p1, 0x40)
	if r.Src != SrcCache {
		t.Fatalf("dirty peer should supply, got %v", r.Src)
	}
	if c.StateOf(p0, 0x40) != Owned {
		t.Fatalf("dirty supplier = %v, want O", c.StateOf(p0, 0x40))
	}
	if c.StateOf(p1, 0x40) != Shared {
		t.Fatalf("requester = %v, want S", c.StateOf(p1, 0x40))
	}
}

func TestOwnedKeepsSupplying(t *testing.T) {
	c := NewController()
	p0, p1, p2 := c.AddPeer(), c.AddPeer(), c.AddPeer()
	c.Write(p0, 0x40)
	c.Read(p1, 0x40) // p0: O
	r := c.Read(p2, 0x40)
	if r.Src != SrcCache {
		t.Fatalf("O peer should keep supplying, got %v", r.Src)
	}
	if c.StateOf(p0, 0x40) != Owned {
		t.Fatal("owner state changed unexpectedly")
	}
}

func TestWriteUpgradeInvalidatesSharers(t *testing.T) {
	c := NewController()
	p0, p1, p2 := c.AddPeer(), c.AddPeer(), c.AddPeer()
	c.Read(p0, 0x40)
	c.Read(p1, 0x40)
	c.Read(p2, 0x40)
	r := c.Write(p0, 0x40)
	if r.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", r.Invalidations)
	}
	if !r.WasHit || r.Src != SrcNone {
		t.Fatalf("upgrade should reuse local data: %+v", r)
	}
	if c.StateOf(p1, 0x40).Valid() || c.StateOf(p2, 0x40).Valid() {
		t.Fatal("sharers not invalidated")
	}
	if c.StateOf(p0, 0x40) != Modified {
		t.Fatal("writer not Modified")
	}
}

func TestSilentEtoMUpgrade(t *testing.T) {
	c := NewController()
	p := c.AddPeer()
	c.Read(p, 0x40) // E
	r := c.Write(p, 0x40)
	if !r.WasHit || r.Invalidations != 0 || r.Src != SrcNone {
		t.Fatalf("E->M should be silent: %+v", r)
	}
}

func TestWriteMissFromDirtyPeer(t *testing.T) {
	c := NewController()
	p0, p1 := c.AddPeer(), c.AddPeer()
	c.Write(p0, 0x40) // p0: M
	r := c.Write(p1, 0x40)
	if r.Src != SrcCache {
		t.Fatalf("write miss should pull from dirty peer, got %v", r.Src)
	}
	if r.Invalidations != 1 {
		t.Fatalf("invalidations = %d", r.Invalidations)
	}
	if c.StateOf(p0, 0x40).Valid() {
		t.Fatal("former owner still valid")
	}
}

func TestEvictDirtyWritesBack(t *testing.T) {
	c := NewController()
	p := c.AddPeer()
	c.Write(p, 0x40)
	r := c.Evict(p, 0x40)
	if !r.Writeback {
		t.Fatal("evicting M should write back")
	}
	if c.StateOf(p, 0x40).Valid() {
		t.Fatal("evicted line still valid")
	}
	c.Read(p, 0x80)
	r2 := c.Evict(p, 0x80)
	if r2.Writeback {
		t.Fatal("evicting E should not write back")
	}
}

func TestEvictOwnedWritesBack(t *testing.T) {
	c := NewController()
	p0, p1 := c.AddPeer(), c.AddPeer()
	c.Write(p0, 0x40)
	c.Read(p1, 0x40) // p0: O, p1: S
	r := c.Evict(p0, 0x40)
	if !r.Writeback {
		t.Fatal("evicting O must write back (sole dirty copy)")
	}
	// p1's Shared copy remains readable.
	if !c.StateOf(p1, 0x40).Valid() {
		t.Fatal("sharer lost its copy")
	}
}

func TestStateHelpers(t *testing.T) {
	if !Modified.Dirty() || !Owned.Dirty() || Exclusive.Dirty() || Shared.Dirty() {
		t.Fatal("Dirty wrong")
	}
	if Invalid.Valid() || !Shared.Valid() {
		t.Fatal("Valid wrong")
	}
	if !Modified.CanSupply() || Shared.CanSupply() {
		t.Fatal("CanSupply wrong")
	}
	if Modified.String() != "M" || Invalid.String() != "I" {
		t.Fatal("String wrong")
	}
	if State(9).String() != "State(9)" {
		t.Fatal("unknown state String wrong")
	}
}

// Property: under random read/write/evict traffic from several peers, the
// MOESI invariants hold after every step, and a dirty value is never lost
// (whenever all copies are gone, the last write must have been written back).
func TestMOESIInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewController()
		const peers = 4
		for i := 0; i < peers; i++ {
			c.AddPeer()
		}
		lines := []uint64{0x40, 0x80, 0xC0}
		// Track whether memory is stale per line: set on write, cleared
		// on writeback or when a dirty copy still exists.
		dirtyInCaches := map[uint64]bool{}
		for step := 0; step < 300; step++ {
			p := rng.Intn(peers)
			l := lines[rng.Intn(len(lines))]
			switch rng.Intn(3) {
			case 0:
				c.Read(p, l)
			case 1:
				c.Write(p, l)
				dirtyInCaches[l] = true
			case 2:
				r := c.Evict(p, l)
				if r.Writeback {
					dirtyInCaches[l] = false
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			// If the caches were dirty and now no valid dirty copy
			// exists, a writeback must have happened.
			if dirtyInCaches[l] {
				anyDirty := false
				anyValid := false
				for q := 0; q < peers; q++ {
					s := c.StateOf(q, l)
					if s.Dirty() {
						anyDirty = true
					}
					if s.Valid() {
						anyValid = true
					}
				}
				if anyValid && !anyDirty {
					// Permissible only if ownership transferred to
					// memory via writeback, which we tracked above —
					// so reaching here means the dirty data leaked.
					t.Logf("seed %d step %d: dirty line %#x lost ownership", seed, step, l)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
