// Package coherence implements a snooping MOESI cache-coherence protocol,
// the "basic MOESI" gem5 classic-cache protocol that gem5-Aladdin attaches
// accelerator caches to (Sec III-D). The protocol engine is independent of
// timing: it answers, for each local action, what state the line moves to,
// where the data comes from (another cache or memory), and what side
// effects occur (invalidations, writebacks). The cache model layers timing
// and energy on top of these answers.
package coherence

import "fmt"

// State is a MOESI line state.
type State uint8

// MOESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

var stateNames = [...]string{"I", "S", "E", "O", "M"}

// String returns the one-letter state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the state holds data.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether eviction requires a writeback.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// CanSupply reports whether a peer in this state sources data on a snoop
// (M, O, and E supply cache-to-cache; S defers to memory).
func (s State) CanSupply() bool { return s == Modified || s == Owned || s == Exclusive }

// Source says where miss data came from.
type Source uint8

// Data sources for a fill.
const (
	SrcNone   Source = iota // no data movement (hit or upgrade)
	SrcMemory               // filled from main memory
	SrcCache                // cache-to-cache transfer from a peer
)

// Result describes the outcome of one local action.
type Result struct {
	NewState      State
	Src           Source
	Writeback     bool // a dirty line was pushed to memory
	Invalidations int  // peers whose copy was invalidated
	WasHit        bool // the local cache already held usable data
}

// Op identifies which protocol action an Observer is being notified of.
type Op uint8

// Protocol actions visible to an Observer.
const (
	OpRead Op = iota
	OpWrite
	OpEvict
)

var opNames = [...]string{"read", "write", "evict"}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// MaxPeers bounds how many caches one controller mediates: each line's
// per-peer states pack into one uint64 at 4 bits per peer.
const MaxPeers = 16

// dirEntry is one slot of the directory: a line address and every peer's
// state for it, packed 4 bits per peer. states == 0 means all peers
// Invalid; such slots stay claimed (no tombstones) and are dropped at the
// next rehash.
type dirEntry struct {
	line   uint64
	states uint64
	used   bool
}

// Controller mediates a set of peer caches snooping one bus. Peers are
// identified by the index returned from AddPeer. Line addresses are opaque
// keys (callers pass line-aligned physical addresses).
//
// The directory is a single open-addressed hash table over lines, with all
// peers' states for a line packed into one word. Every snoop — which under
// MOESI consults every peer — touches exactly one slot instead of one map
// lookup per peer, and state transitions are nibble updates on that slot.
type Controller struct {
	numPeers int
	dir      []dirEntry // power-of-two capacity, linear probing
	occupied int        // claimed slots (including all-Invalid ones)

	// Observer, when non-nil, is called after every completed protocol
	// action with the acting peer, the operation, the line, and the result.
	// The runtime sanitizer (internal/sanitize) hangs off this hook; it is
	// nil in normal runs so the cost is one branch per action.
	Observer func(peer int, op Op, line uint64, res Result)
}

const dirInitCap = 1024 // slots; must be a power of two

// NewController returns a controller with no peers.
func NewController() *Controller {
	return &Controller{dir: make([]dirEntry, dirInitCap)}
}

// AddPeer registers a cache and returns its peer id.
func (c *Controller) AddPeer() int {
	if c.numPeers == MaxPeers {
		panic("coherence: peer count exceeds MaxPeers")
	}
	c.numPeers++
	return c.numPeers - 1
}

// NumPeers reports how many caches the controller mediates.
func (c *Controller) NumPeers() int { return c.numPeers }

// Reset clears every line state and deregisters all peers, keeping the
// directory's capacity. Sweep runners recycle one controller across design
// points with it.
func (c *Controller) Reset() {
	for i := range c.dir {
		c.dir[i] = dirEntry{}
	}
	c.numPeers, c.occupied = 0, 0
	c.Observer = nil
}

// slotOf probes for line's slot, returning nil when absent.
func (c *Controller) slotOf(line uint64) *dirEntry {
	mask := uint64(len(c.dir) - 1)
	for i := (line * 0x9E3779B97F4A7C15) >> 32 & mask; ; i = (i + 1) & mask {
		e := &c.dir[i]
		if !e.used {
			return nil
		}
		if e.line == line {
			return e
		}
	}
}

// claim returns line's slot, inserting (and growing) as needed.
func (c *Controller) claim(line uint64) *dirEntry {
	if c.occupied*4 >= len(c.dir)*3 {
		c.rehash(len(c.dir) * 2)
	}
	mask := uint64(len(c.dir) - 1)
	for i := (line * 0x9E3779B97F4A7C15) >> 32 & mask; ; i = (i + 1) & mask {
		e := &c.dir[i]
		if e.used && e.line == line {
			return e
		}
		if !e.used {
			e.used, e.line = true, line
			c.occupied++
			return e
		}
	}
}

// rehash rebuilds the table at the given capacity, dropping all-Invalid
// slots (the table's substitute for per-delete tombstone bookkeeping).
func (c *Controller) rehash(capacity int) {
	old := c.dir
	c.dir = make([]dirEntry, capacity)
	c.occupied = 0
	for i := range old {
		if old[i].used && old[i].states != 0 {
			*c.claim(old[i].line) = old[i]
		}
	}
}

// stateBits extracts peer p's nibble from a packed word.
func stateBits(states uint64, p int) State { return State(states >> (4 * p) & 0xF) }

// StateOf reports peer p's state for the line.
func (c *Controller) StateOf(p int, line uint64) State {
	if p < 0 || p >= c.numPeers {
		panic("coherence: peer out of range")
	}
	if e := c.slotOf(line); e != nil {
		return stateBits(e.states, p)
	}
	return Invalid
}

// Copies reports every peer's state for the line, indexed by peer id.
func (c *Controller) Copies(line uint64) []State {
	out := make([]State, c.numPeers)
	if e := c.slotOf(line); e != nil {
		for p := range out {
			out[p] = stateBits(e.states, p)
		}
	}
	return out
}

// ForceState overwrites peer p's state for the line without running the
// protocol. It exists so sanitizer tests can corrupt the directory and
// verify the violation is caught; the model never calls it.
func (c *Controller) ForceState(p int, line uint64, s State) {
	c.setState(p, line, s)
}

// notify reports a completed action to the Observer, if any.
func (c *Controller) notify(p int, op Op, line uint64, res Result) {
	if c.Observer != nil {
		c.Observer(p, op, line, res)
	}
}

// setState updates a peer's nibble in the line's slot.
func (c *Controller) setState(p int, line uint64, s State) {
	if s == Invalid {
		// Absent lines are Invalid already; never claim a slot for one.
		if e := c.slotOf(line); e != nil {
			e.states &^= 0xF << (4 * p)
		}
		return
	}
	e := c.claim(line)
	e.states = e.states&^(0xF<<(4*p)) | uint64(s)<<(4*p)
}

// setStateIn updates peer p's nibble on an already-resolved slot.
func setStateIn(e *dirEntry, p int, s State) {
	e.states = e.states&^(0xF<<(4*p)) | uint64(s)<<(4*p)
}

// Read performs a local load by peer p.
func (c *Controller) Read(p int, line uint64) Result {
	e := c.slotOf(line)
	var states uint64
	if e != nil {
		states = e.states
	}
	if s := stateBits(states, p); s.Valid() {
		res := Result{NewState: s, Src: SrcNone, WasHit: true}
		c.notify(p, OpRead, line, res)
		return res
	}
	// Miss: GetS on the bus. The snoop over every peer reads the packed
	// word captured above; transitions write back into the slot.
	res := Result{Src: SrcMemory, NewState: Exclusive}
	sharers := 0
	for q := 0; q < c.numPeers; q++ {
		if q == p {
			continue
		}
		s := stateBits(states, q)
		if !s.Valid() {
			continue
		}
		sharers++
		switch s {
		case Modified:
			// Owner keeps the dirty data, supplies it, moves to O.
			setStateIn(e, q, Owned)
			res.Src = SrcCache
		case Owned:
			res.Src = SrcCache
		case Exclusive:
			setStateIn(e, q, Shared)
			res.Src = SrcCache
		}
	}
	if sharers > 0 {
		res.NewState = Shared
	}
	if e == nil {
		e = c.claim(line)
	}
	setStateIn(e, p, res.NewState)
	c.notify(p, OpRead, line, res)
	return res
}

// Write performs a local store by peer p.
func (c *Controller) Write(p int, line uint64) Result {
	e := c.slotOf(line)
	var states uint64
	if e != nil {
		states = e.states
	}
	local := stateBits(states, p)
	res := Result{NewState: Modified}
	switch local {
	case Modified:
		res := Result{NewState: Modified, Src: SrcNone, WasHit: true}
		c.notify(p, OpWrite, line, res)
		return res
	case Exclusive:
		// Silent upgrade: sole copy.
		setStateIn(e, p, Modified)
		res := Result{NewState: Modified, Src: SrcNone, WasHit: true}
		c.notify(p, OpWrite, line, res)
		return res
	case Shared, Owned:
		// Upgrade: invalidate every other sharer; data already local.
		res.Src = SrcNone
		res.WasHit = true
	case Invalid:
		res.Src = SrcMemory
	}
	for q := 0; q < c.numPeers; q++ {
		if q == p {
			continue
		}
		s := stateBits(states, q)
		if !s.Valid() {
			continue
		}
		if local == Invalid && s.CanSupply() {
			res.Src = SrcCache
		}
		setStateIn(e, q, Invalid)
		res.Invalidations++
	}
	if e == nil {
		e = c.claim(line)
	}
	setStateIn(e, p, Modified)
	c.notify(p, OpWrite, line, res)
	return res
}

// Evict removes peer p's copy (capacity replacement), reporting whether a
// writeback is required.
func (c *Controller) Evict(p int, line uint64) Result {
	var s State
	if e := c.slotOf(line); e != nil {
		s = stateBits(e.states, p)
		setStateIn(e, p, Invalid)
	}
	res := Result{NewState: Invalid, Writeback: s.Dirty()}
	c.notify(p, OpEvict, line, res)
	return res
}

// FlushLine forces peer p's copy back to memory and invalidates it, as a
// CPU cache-flush instruction does before a DMA transfer.
func (c *Controller) FlushLine(p int, line uint64) Result {
	return c.Evict(p, line)
}

// CheckInvariants validates the single-writer / single-owner properties
// over every line any peer holds. It returns an error describing the first
// violation.
func (c *Controller) CheckInvariants() error {
	for i := range c.dir {
		ent := &c.dir[i]
		if !ent.used || ent.states == 0 {
			continue
		}
		l := ent.line
		var mCount, eCount, oCount, valid int
		for q := 0; q < c.numPeers; q++ {
			switch stateBits(ent.states, q) {
			case Modified:
				mCount++
				valid++
			case Exclusive:
				eCount++
				valid++
			case Owned:
				oCount++
				valid++
			case Shared:
				valid++
			}
		}
		if mCount > 1 {
			return fmt.Errorf("coherence: line %#x has %d Modified copies", l, mCount)
		}
		if oCount > 1 {
			return fmt.Errorf("coherence: line %#x has %d Owned copies", l, oCount)
		}
		if mCount+oCount > 1 {
			return fmt.Errorf("coherence: line %#x has both M and O copies", l)
		}
		if (mCount == 1 || eCount == 1) && valid > 1 {
			return fmt.Errorf("coherence: line %#x in M/E with %d total copies", l, valid)
		}
		if eCount > 1 {
			return fmt.Errorf("coherence: line %#x has %d Exclusive copies", l, eCount)
		}
	}
	return nil
}
