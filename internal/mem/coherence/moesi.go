// Package coherence implements a snooping MOESI cache-coherence protocol,
// the "basic MOESI" gem5 classic-cache protocol that gem5-Aladdin attaches
// accelerator caches to (Sec III-D). The protocol engine is independent of
// timing: it answers, for each local action, what state the line moves to,
// where the data comes from (another cache or memory), and what side
// effects occur (invalidations, writebacks). The cache model layers timing
// and energy on top of these answers.
package coherence

import "fmt"

// State is a MOESI line state.
type State uint8

// MOESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

var stateNames = [...]string{"I", "S", "E", "O", "M"}

// String returns the one-letter state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the state holds data.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether eviction requires a writeback.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// CanSupply reports whether a peer in this state sources data on a snoop
// (M, O, and E supply cache-to-cache; S defers to memory).
func (s State) CanSupply() bool { return s == Modified || s == Owned || s == Exclusive }

// Source says where miss data came from.
type Source uint8

// Data sources for a fill.
const (
	SrcNone   Source = iota // no data movement (hit or upgrade)
	SrcMemory               // filled from main memory
	SrcCache                // cache-to-cache transfer from a peer
)

// Result describes the outcome of one local action.
type Result struct {
	NewState      State
	Src           Source
	Writeback     bool // a dirty line was pushed to memory
	Invalidations int  // peers whose copy was invalidated
	WasHit        bool // the local cache already held usable data
}

// Op identifies which protocol action an Observer is being notified of.
type Op uint8

// Protocol actions visible to an Observer.
const (
	OpRead Op = iota
	OpWrite
	OpEvict
)

var opNames = [...]string{"read", "write", "evict"}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Controller mediates a set of peer caches snooping one bus. Peers are
// identified by the index returned from AddPeer. Line addresses are opaque
// keys (callers pass line-aligned physical addresses).
type Controller struct {
	peers []map[uint64]State

	// Observer, when non-nil, is called after every completed protocol
	// action with the acting peer, the operation, the line, and the result.
	// The runtime sanitizer (internal/sanitize) hangs off this hook; it is
	// nil in normal runs so the cost is one branch per action.
	Observer func(peer int, op Op, line uint64, res Result)
}

// NewController returns a controller with no peers.
func NewController() *Controller { return &Controller{} }

// AddPeer registers a cache and returns its peer id.
func (c *Controller) AddPeer() int {
	c.peers = append(c.peers, make(map[uint64]State))
	return len(c.peers) - 1
}

// NumPeers reports how many caches the controller mediates.
func (c *Controller) NumPeers() int { return len(c.peers) }

// StateOf reports peer p's state for the line.
func (c *Controller) StateOf(p int, line uint64) State { return c.peers[p][line] }

// Copies reports every peer's state for the line, indexed by peer id.
func (c *Controller) Copies(line uint64) []State {
	out := make([]State, len(c.peers))
	for p := range c.peers {
		out[p] = c.peers[p][line]
	}
	return out
}

// ForceState overwrites peer p's state for the line without running the
// protocol. It exists so sanitizer tests can corrupt the directory and
// verify the violation is caught; the model never calls it.
func (c *Controller) ForceState(p int, line uint64, s State) {
	c.setState(p, line, s)
}

// notify reports a completed action to the Observer, if any.
func (c *Controller) notify(p int, op Op, line uint64, res Result) {
	if c.Observer != nil {
		c.Observer(p, op, line, res)
	}
}

// setState updates a peer's state, deleting Invalid entries to bound memory.
func (c *Controller) setState(p int, line uint64, s State) {
	if s == Invalid {
		delete(c.peers[p], line)
		return
	}
	c.peers[p][line] = s
}

// Read performs a local load by peer p.
func (c *Controller) Read(p int, line uint64) Result {
	if s := c.peers[p][line]; s.Valid() {
		res := Result{NewState: s, Src: SrcNone, WasHit: true}
		c.notify(p, OpRead, line, res)
		return res
	}
	// Miss: GetS on the bus.
	res := Result{Src: SrcMemory, NewState: Exclusive}
	sharers := 0
	for q := range c.peers {
		if q == p {
			continue
		}
		s := c.peers[q][line]
		if !s.Valid() {
			continue
		}
		sharers++
		switch s {
		case Modified:
			// Owner keeps the dirty data, supplies it, moves to O.
			c.setState(q, line, Owned)
			res.Src = SrcCache
		case Owned:
			res.Src = SrcCache
		case Exclusive:
			c.setState(q, line, Shared)
			res.Src = SrcCache
		}
	}
	if sharers > 0 {
		res.NewState = Shared
	}
	c.setState(p, line, res.NewState)
	c.notify(p, OpRead, line, res)
	return res
}

// Write performs a local store by peer p.
func (c *Controller) Write(p int, line uint64) Result {
	local := c.peers[p][line]
	res := Result{NewState: Modified}
	switch local {
	case Modified:
		res := Result{NewState: Modified, Src: SrcNone, WasHit: true}
		c.notify(p, OpWrite, line, res)
		return res
	case Exclusive:
		// Silent upgrade: sole copy.
		c.setState(p, line, Modified)
		res := Result{NewState: Modified, Src: SrcNone, WasHit: true}
		c.notify(p, OpWrite, line, res)
		return res
	case Shared, Owned:
		// Upgrade: invalidate every other sharer; data already local.
		res.Src = SrcNone
		res.WasHit = true
	case Invalid:
		res.Src = SrcMemory
	}
	for q := range c.peers {
		if q == p {
			continue
		}
		s := c.peers[q][line]
		if !s.Valid() {
			continue
		}
		if local == Invalid && s.CanSupply() {
			res.Src = SrcCache
		}
		c.setState(q, line, Invalid)
		res.Invalidations++
	}
	c.setState(p, line, Modified)
	c.notify(p, OpWrite, line, res)
	return res
}

// Evict removes peer p's copy (capacity replacement), reporting whether a
// writeback is required.
func (c *Controller) Evict(p int, line uint64) Result {
	s := c.peers[p][line]
	c.setState(p, line, Invalid)
	res := Result{NewState: Invalid, Writeback: s.Dirty()}
	c.notify(p, OpEvict, line, res)
	return res
}

// FlushLine forces peer p's copy back to memory and invalidates it, as a
// CPU cache-flush instruction does before a DMA transfer.
func (c *Controller) FlushLine(p int, line uint64) Result {
	return c.Evict(p, line)
}

// CheckInvariants validates the single-writer / single-owner properties
// over every line any peer holds. It returns an error describing the first
// violation.
func (c *Controller) CheckInvariants() error {
	lines := make(map[uint64]struct{})
	for _, pm := range c.peers {
		for l := range pm {
			lines[l] = struct{}{}
		}
	}
	for l := range lines {
		var mCount, eCount, oCount, valid int
		for _, pm := range c.peers {
			switch pm[l] {
			case Modified:
				mCount++
				valid++
			case Exclusive:
				eCount++
				valid++
			case Owned:
				oCount++
				valid++
			case Shared:
				valid++
			}
		}
		if mCount > 1 {
			return fmt.Errorf("coherence: line %#x has %d Modified copies", l, mCount)
		}
		if oCount > 1 {
			return fmt.Errorf("coherence: line %#x has %d Owned copies", l, oCount)
		}
		if mCount+oCount > 1 {
			return fmt.Errorf("coherence: line %#x has both M and O copies", l)
		}
		if (mCount == 1 || eCount == 1) && valid > 1 {
			return fmt.Errorf("coherence: line %#x in M/E with %d total copies", l, valid)
		}
		if eCount > 1 {
			return fmt.Errorf("coherence: line %#x has %d Exclusive copies", l, eCount)
		}
	}
	return nil
}
