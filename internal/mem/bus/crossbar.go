package bus

import (
	"fmt"
	"strings"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// CrossbarConfig describes an AXI-like burst-based crossbar: every master
// owns an independent request/response channel pair, slaves are address
// interleaved banks of the memory-side target, and any master↔slave route
// that does not conflict with another active route proceeds in parallel.
type CrossbarConfig struct {
	WidthBits int       // per-route data width
	Clock     sim.Clock // fabric clock domain
	// Slaves is the number of address-interleaved slave ports (parallel
	// routes to the memory side). Defaults to 4.
	Slaves int
	// BurstBeats caps the data beats a route carries per burst before the
	// slave re-arbitrates (AXI burst length). Long transfers are split into
	// bursts so other masters can interleave on a shared slave. Defaults
	// to 16.
	BurstBeats int
}

func (c CrossbarConfig) widthBytes() uint32 { return uint32(c.WidthBits / 8) }

// xreq is a crossbar transaction. Unlike the bus's request it carries a
// burst cursor (sent) because a transfer releases its route between bursts.
type xreq struct {
	addr   uint64
	bytes  uint32 // total payload
	sent   uint32 // bytes already moved across the fabric
	write  bool
	issued sim.Tick
	master int
	slave  int
	target Target
	done   func()
	// dataPhase marks a read response draining data beats back to the
	// master.
	dataPhase    bool
	progress     func(uint32)
	progressGran uint32
	attempts     int
}

// xfifo is the head-indexed compacting queue for *xreq (same recycling
// discipline as the bus's fifo: pops advance a head, pushes compact before
// growing, vacated slots are nilled so callbacks are not retained).
type xfifo struct {
	buf  []*xreq
	head int
}

func (f *xfifo) len() int { return len(f.buf) - f.head }

func (f *xfifo) push(r *xreq) {
	if f.head > 0 && len(f.buf) == cap(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		clear(f.buf[n:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, r)
}

func (f *xfifo) peek() *xreq { return f.buf[f.head] }

func (f *xfifo) pop() *xreq {
	r := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return r
}

type xbarMaster struct {
	reqs  xfifo // fresh requests, in order; a multi-burst head stays put
	resps xfifo // read responses draining back; head stays put mid-transfer
	busy  bool  // master channel currently granted to a route
}

type xbarSlave struct {
	busy   bool
	rrNext int // round-robin start master for this slave's arbitration
}

// Crossbar is an AXI-like burst-based interconnect: per-master channel
// pairs, address-interleaved slave ports, and parallel non-conflicting
// routes. A route (master channel + slave port) is held for one burst —
// an address cycle plus up to BurstBeats data cycles — then re-arbitrates,
// so long DMA transfers interleave with latency-sensitive cache fills
// instead of monopolizing the memory side.
type Crossbar struct {
	cfg    CrossbarConfig
	eng    *sim.Engine
	target Target

	masters []xbarMaster
	slaves  []xbarSlave
	stats   Stats
	probe   *obs.Probe
	inj     *fault.Injector

	granted  int // routes currently held
	backoffs int // transactions sitting out a post-NACK backoff
}

// NewCrossbar creates a crossbar attached to eng, delivering transactions
// to target.
func NewCrossbar(eng *sim.Engine, cfg CrossbarConfig, target Target) *Crossbar {
	if cfg.WidthBits%8 != 0 || cfg.WidthBits <= 0 {
		panic(fmt.Sprintf("crossbar: invalid width %d bits", cfg.WidthBits))
	}
	if cfg.Clock.Period == 0 {
		panic("crossbar: zero clock period")
	}
	if cfg.Slaves == 0 {
		cfg.Slaves = 4
	}
	if cfg.Slaves < 1 {
		panic(fmt.Sprintf("crossbar: invalid slave count %d", cfg.Slaves))
	}
	if cfg.BurstBeats == 0 {
		cfg.BurstBeats = 16
	}
	if cfg.BurstBeats < 1 {
		panic(fmt.Sprintf("crossbar: invalid burst length %d", cfg.BurstBeats))
	}
	return &Crossbar{
		cfg: cfg, eng: eng, target: target,
		slaves: make([]xbarSlave, cfg.Slaves),
	}
}

// slaveOf interleaves the address space across slave ports at 4KiB
// granularity (matching DRAM bank interleave scale, so streams spread).
func (x *Crossbar) slaveOf(addr uint64) int {
	return int((addr >> 12) % uint64(len(x.slaves)))
}

// RegisterMaster allocates a master channel pair and returns its id.
func (x *Crossbar) RegisterMaster() int {
	x.masters = append(x.masters, xbarMaster{})
	return len(x.masters) - 1
}

// Stats returns a copy of the accumulated counters. BusyTicks sums
// occupancy across all slave ports, so it can exceed elapsed time when
// routes overlap; Utilization normalizes by the port count.
func (x *Crossbar) Stats() Stats { return x.stats }

// AttachProbe wires an observability probe; the crossbar fires one span per
// burst window with the master id and burst payload attached.
func (x *Crossbar) AttachProbe(p *obs.Probe) { x.probe = p }

// SetFaults attaches a fault injector (nil disables injection). Injection
// applies at a fresh transaction's first address phase, mirroring the bus.
func (x *Crossbar) SetFaults(inj *fault.Injector) { x.inj = inj }

// RegisterStats registers the crossbar counters under prefix.
func (x *Crossbar) RegisterStats(reg *obs.Registry, prefix string) {
	registerFabricStats(reg, prefix, func() Stats { return x.stats })
}

// InFlight counts transactions the crossbar still holds.
func (x *Crossbar) InFlight() int {
	n := x.granted + x.backoffs
	for i := range x.masters {
		n += x.masters[i].reqs.len() + x.masters[i].resps.len()
	}
	return n
}

// DumpInFlight renders the queue state for a watchdog diagnostic.
func (x *Crossbar) DumpInFlight() string {
	var s strings.Builder
	fmt.Fprintf(&s, "granted=%d backoffs=%d", x.granted, x.backoffs)
	for m := range x.masters {
		ms := &x.masters[m]
		if ms.reqs.len() == 0 && ms.resps.len() == 0 {
			continue
		}
		fmt.Fprintf(&s, "\nmaster%d busy=%v reqs=%d resps=%d:", m, ms.busy, ms.reqs.len(), ms.resps.len())
		for _, r := range ms.reqs.buf[ms.reqs.head:] {
			kind := "read"
			if r.write {
				kind = "write"
			}
			fmt.Fprintf(&s, " %s@%#x(%d/%dB,slave%d,issued %v)",
				kind, r.addr, r.sent, r.bytes, r.slave, r.issued)
		}
	}
	return s.String()
}

// Utilization reports mean per-port busy fraction over elapsed time.
func (x *Crossbar) Utilization(elapsed sim.Tick) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(x.stats.BusyTicks) / (float64(elapsed) * float64(len(x.slaves)))
}

// Access enqueues a transaction to the default memory-side target.
func (x *Crossbar) Access(master int, addr uint64, bytes uint32, write bool, done func()) {
	x.AccessVia(master, addr, bytes, write, x.target, done)
}

// AccessVia is Access with an explicit responder.
func (x *Crossbar) AccessVia(master int, addr uint64, bytes uint32, write bool, target Target, done func()) {
	x.enqueue(master, addr, bytes, write, target, nil, 0, done)
}

// ReadStream is a read whose data delivery is observable every gran bytes.
func (x *Crossbar) ReadStream(master int, addr uint64, bytes uint32, gran uint32, progress func(uint32), done func()) {
	x.ReadStreamVia(master, addr, bytes, gran, x.target, progress, done)
}

// ReadStreamVia is ReadStream with an explicit responder.
func (x *Crossbar) ReadStreamVia(master int, addr uint64, bytes uint32, gran uint32, target Target, progress func(uint32), done func()) {
	if gran == 0 {
		panic("crossbar: zero stream granularity")
	}
	x.enqueue(master, addr, bytes, false, target, progress, gran, done)
}

func (x *Crossbar) enqueue(master int, addr uint64, bytes uint32, write bool, target Target, progress func(uint32), gran uint32, done func()) {
	if master < 0 || master >= len(x.masters) {
		panic(fmt.Sprintf("crossbar: unknown master %d", master))
	}
	if bytes == 0 {
		done()
		return
	}
	r := &xreq{
		addr: addr, bytes: bytes, write: write, issued: x.eng.Now(),
		master: master, slave: x.slaveOf(addr), target: target, done: done,
		progress: progress, progressGran: gran,
	}
	x.masters[master].reqs.push(r)
	x.arbitrate()
}

// arbitrate fills every idle slave port with the next eligible transfer.
// Responses drain first (AXI response channels are independent and drain
// ahead of fresh addresses); fresh requests are served round-robin across
// masters per slave. Only queue heads are eligible: each master channel is
// in-order, so a head mid-transfer blocks that channel's later requests
// (head-of-line, as on a real in-order master port).
func (x *Crossbar) arbitrate() {
	for s := range x.slaves {
		sl := &x.slaves[s]
		if sl.busy {
			continue
		}
		if r := x.pickFor(s); r != nil {
			x.grant(r)
		}
	}
}

// pickFor selects the next transfer for slave s, or nil. Round-robin over
// masters starting at the slave's rrNext; responses win over requests.
func (x *Crossbar) pickFor(s int) *xreq {
	n := len(x.masters)
	sl := &x.slaves[s]
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			m := (sl.rrNext + i) % n
			ms := &x.masters[m]
			if ms.busy {
				continue
			}
			var q *xfifo
			if pass == 0 {
				q = &ms.resps
			} else {
				q = &ms.reqs
			}
			if q.len() == 0 || q.peek().slave != s {
				continue
			}
			sl.rrNext = (m + 1) % n
			return q.peek()
		}
	}
	return nil
}

// grant routes one burst of r through its master channel and slave port.
func (x *Crossbar) grant(r *xreq) {
	ms := &x.masters[r.master]
	sl := &x.slaves[r.slave]
	ms.busy, sl.busy = true, true
	x.granted++

	// Fault injection at the first address phase of a fresh transaction.
	if !r.dataPhase && r.sent == 0 && x.inj.BusNack(x.eng.Now(), r.addr, r.attempts+1) {
		r.attempts++
		x.popOf(r).pop()
		if r.attempts > x.inj.BusRetryLimit() {
			x.inj.CountBusDrop(x.eng.Now(), r.addr, r.attempts)
			x.releaseRoute(r, x.cfg.Clock.Cycles(1), "xbar-drop", 0, nil)
			return
		}
		backoff := x.inj.BusBackoff(r.attempts)
		x.backoffs++
		x.releaseRoute(r, x.cfg.Clock.Cycles(1), "xbar-nack", 0, func() {
			x.eng.After(backoff, func() {
				x.backoffs--
				x.inj.CountBusRetry()
				x.masters[r.master].reqs.push(r)
				x.arbitrate()
			})
		})
		return
	}

	wb := x.cfg.widthBytes()
	burstBytes := uint32(x.cfg.BurstBeats) * wb
	remaining := r.bytes - r.sent
	chunk := remaining
	if chunk > burstBytes {
		chunk = burstBytes
	}
	beats := uint64((chunk + wb - 1) / wb)

	switch {
	case r.dataPhase:
		// Read response burst: data beats only on the response channel.
		window := x.cfg.Clock.Cycles(beats)
		if r.progress != nil {
			x.burstProgress(r, chunk, window)
		}
		last := r.sent+chunk == r.bytes
		x.releaseRoute(r, window, "xbar-read-data", chunk, func() {
			if last {
				x.masters[r.master].resps.pop()
				r.done()
			}
			// Otherwise the head stays; the next burst re-arbitrates.
		})

	case r.write:
		// Write burst: address cycle + data beats travel together.
		if r.sent == 0 {
			x.countIssue(r)
		}
		window := x.cfg.Clock.Cycles(1 + beats)
		last := r.sent+chunk == r.bytes
		x.releaseRoute(r, window, "xbar-write", chunk, func() {
			if last {
				x.masters[r.master].reqs.pop()
				// Posted write: the target accepts the full payload after
				// the final burst; done fires on acceptance.
				r.target.Access(r.addr, r.bytes, true, r.done)
			}
		})

	default:
		// Read request: a one-cycle address phase opens the transaction;
		// the route frees while the target services it, and the response
		// drains in bursts on the response channel.
		x.countIssue(r)
		x.masters[r.master].reqs.pop()
		x.releaseRoute(r, x.cfg.Clock.Cycles(1), "xbar-read-addr", 0, func() {
			r.target.Access(r.addr, r.bytes, false, func() {
				resp := r
				resp.dataPhase = true
				x.masters[resp.master].resps.push(resp)
				x.arbitrate()
			})
		})
	}
}

func (x *Crossbar) countIssue(r *xreq) {
	x.stats.Transactions++
	x.stats.BytesMoved += uint64(r.bytes)
	x.stats.WaitTicks += x.eng.Now() - r.issued
}

// popOf returns the queue currently heading r (used by the fault path to
// remove a NACKed head before requeueing it at the back).
func (x *Crossbar) popOf(r *xreq) *xfifo {
	ms := &x.masters[r.master]
	if ms.resps.len() > 0 && ms.resps.peek() == r {
		return &ms.resps
	}
	return &ms.reqs
}

// releaseRoute accounts one route occupancy window, then frees the master
// channel and slave port, advances the burst cursor by sent bytes, runs the
// continuation, and re-arbitrates.
func (x *Crossbar) releaseRoute(r *xreq, window sim.Tick, phase string, sent uint32, then func()) {
	x.stats.BusyTicks += window
	if x.probe.Enabled() {
		start := uint64(x.eng.Now())
		x.probe.Fire(obs.Event{Name: phase, Start: start,
			End: start + uint64(window), Lane: int32(r.master),
			Bytes: uint64(sent)})
	}
	x.eng.After(window, func() {
		x.masters[r.master].busy = false
		x.slaves[r.slave].busy = false
		x.granted--
		r.sent += sent
		if then != nil {
			then()
		}
		x.arbitrate()
	})
}

// burstProgress spreads arrival notifications across one response burst,
// honoring the stream granularity against the cumulative byte count.
func (x *Crossbar) burstProgress(r *xreq, chunk uint32, window sim.Tick) {
	gran := r.progressGran
	start := r.sent
	end := r.sent + chunk
	// First gran boundary at or beyond the first byte of this burst.
	cum := ((start / gran) + 1) * gran
	if end == r.bytes && cum > end {
		cum = end // final burst always reports the tail
	}
	for cum <= end {
		frac := float64(cum-start) / float64(chunk)
		at := sim.Tick(float64(window)*frac + 0.5)
		cumCopy := cum
		x.eng.After(at, func() { r.progress(cumCopy) })
		if cum == end {
			break
		}
		cum += gran
		if cum > end {
			if end == r.bytes {
				cum = end
			} else {
				break
			}
		}
	}
}

var _ Fabric = (*Crossbar)(nil)
