package bus

import (
	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// Fabric abstracts the SoC interconnect so alternative topologies (the
// AXI-like crossbar, the 2D mesh NoC) plug in behind the same master-facing
// API as the round-robin bus. The DMA engines, caches, and CPU traffic
// generators speak only this interface; which fabric they ride on is a
// design-space axis (soc.Config.Fabric), not a wiring decision.
//
// All backends share the split
// transaction model: Access/ReadStream enqueue a transfer from a registered
// master; the fabric arbitrates its internal resources (a shared data path,
// per-slave crossbar ports, mesh links), hands the request to the Target
// when routing completes, and fires the caller's callbacks. Downstream
// memory latency never holds fabric resources, so independent transfers
// from different masters can pipeline or (crossbar/mesh) genuinely overlap.
//
// Determinism contract: given the same engine, registration order, and
// request sequence, every backend must produce bit-identical timing. All
// state lives on the engine's single event loop; no backend may consult
// wall-clock time or map iteration order.
type Fabric interface {
	// RegisterMaster allocates an arbitration slot and returns its id.
	// Masters must be registered before the simulation starts so ids are
	// stable across runs.
	RegisterMaster() int

	// Access enqueues a transaction to the default memory-side target.
	// done fires when the transaction fully completes (data returned for
	// reads, accepted for writes). Zero-byte accesses complete immediately.
	Access(master int, addr uint64, bytes uint32, write bool, done func())

	// AccessVia is Access with an explicit responder (cache-to-cache
	// transfers, coherent DMA sourcing from the CPU cache).
	AccessVia(master int, addr uint64, bytes uint32, write bool, target Target, done func())

	// ReadStream is a read whose delivery is observable: progress fires
	// with the cumulative bytes delivered, every gran bytes, as beats
	// arrive at the master.
	ReadStream(master int, addr uint64, bytes uint32, gran uint32, progress func(uint32), done func())

	// ReadStreamVia is ReadStream with an explicit responder.
	ReadStreamVia(master int, addr uint64, bytes uint32, gran uint32, target Target, progress func(uint32), done func())

	// Stats returns a copy of the accumulated counters.
	Stats() Stats

	// RegisterStats registers the fabric counters under prefix.
	RegisterStats(reg *obs.Registry, prefix string)

	// AttachProbe wires an observability probe; backends fire one span per
	// occupancy window (address phase, burst, link hop) with the master id
	// or resource lane attached.
	AttachProbe(p *obs.Probe)

	// SetFaults attaches a fault injector (nil disables injection).
	// Backends apply BusNack/backoff/retry-limit/drop at their admission
	// point, mirroring the bus's address-phase semantics.
	SetFaults(inj *fault.Injector)

	// InFlight counts transactions the fabric still holds (queued, routed,
	// awaiting data, or backing off); it feeds the no-progress watchdog.
	InFlight() int

	// DumpInFlight renders internal queue state for a watchdog diagnostic.
	DumpInFlight() string

	// Utilization reports the busy fraction of elapsed time, normalized by
	// the fabric's parallelism (a saturated crossbar reports 1.0, not
	// nSlaves).
	Utilization(elapsed sim.Tick) float64
}

// The round-robin bus is the reference Fabric implementation; the figures
// regression pins its timing bit-for-bit.
var _ Fabric = (*Bus)(nil)

// registerFabricStats registers the shared counter set for a backend whose
// Stats() the closure snapshots live. Kept identical across backends so
// dashboards and the soc stats dump are fabric-agnostic.
func registerFabricStats(reg *obs.Registry, prefix string, get func() Stats) {
	reg.CounterFunc(prefix+".transactions", "fabric transactions granted",
		func() uint64 { return get().Transactions })
	reg.CounterFunc(prefix+".bytes_moved", "bytes moved over the data path",
		func() uint64 { return get().BytesMoved })
	reg.CounterFunc(prefix+".busy_ticks", "summed resource occupancy ticks",
		func() uint64 { return uint64(get().BusyTicks) })
	reg.CounterFunc(prefix+".wait_ticks", "summed arbitration queuing delay",
		func() uint64 { return uint64(get().WaitTicks) })
	reg.Formula(prefix+".avg_wait_ns", "mean arbitration delay per transaction",
		func() float64 {
			s := get()
			if s.Transactions == 0 {
				return 0
			}
			return s.WaitTicks.Nanos() / float64(s.Transactions)
		})
}
