// Package bus models the SoC system interconnect: a split-transaction bus
// with a configurable data width (the paper sweeps 32- and 64-bit widths to
// modulate accelerator-visible bandwidth), round-robin arbitration between
// masters, and per-transaction occupancy accounting.
//
// A transaction occupies the bus for one arbitration/address cycle plus
// ceil(bytes/width) data cycles. Downstream memory latency (DRAM, or a
// remote cache supplying data) does not hold the bus: the target is handed
// the request when the address phase completes and the caller's completion
// callback fires when the target responds. This is what lets independent
// transfers pipeline at full bus bandwidth, which the DMA and cache-fill
// experiments depend on.
package bus

import (
	"fmt"
	"strings"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// Target is the memory-side endpoint of the bus (typically the DRAM
// controller). Access is called when a transaction wins arbitration; done
// must be invoked when the data is ready (reads) or accepted (writes).
type Target interface {
	Access(addr uint64, bytes uint32, write bool, done func())
}

// Config describes a bus instance.
type Config struct {
	WidthBits int       // 32 or 64 in the paper's sweeps
	Clock     sim.Clock // bus clock domain
}

// WidthBytes returns the per-cycle data width in bytes.
func (c Config) WidthBytes() uint32 { return uint32(c.WidthBits / 8) }

// Stats aggregates bus activity.
type Stats struct {
	Transactions uint64
	BytesMoved   uint64
	BusyTicks    sim.Tick // total ticks the data path was occupied
	WaitTicks    sim.Tick // total arbitration queuing delay across transactions
}

type request struct {
	addr   uint64
	bytes  uint32
	write  bool
	issued sim.Tick
	master int
	target Target
	done   func()
	// dataPhase marks a read response ready to move over the bus.
	dataPhase bool
	// progress, when set, fires during the read data phase every
	// progressGran bytes with the cumulative byte count delivered so far.
	progress     func(bytesDone uint32)
	progressGran uint32
	// attempts counts address-phase NACKs this transaction has absorbed
	// (fault injection); past the retry limit the transaction is dropped.
	attempts int
}

// fifo is a request queue that recycles its backing array: pops advance a
// head index instead of reslicing (which would strand capacity in front of
// the slice and force every push to reallocate), and pushes compact the
// live region back to the front before growing.
type fifo struct {
	buf  []request
	head int
}

func (f *fifo) len() int { return len(f.buf) - f.head }

func (f *fifo) push(r request) {
	if f.head > 0 && len(f.buf) == cap(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		clear(f.buf[n:]) // drop callback references in the moved-from slots
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, r)
}

func (f *fifo) pop() request {
	r := f.buf[f.head]
	f.buf[f.head] = request{} // release callbacks left in spare capacity
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return r
}

// Continuation kinds for the release event: what to do with the released
// transaction once its bus occupancy elapses. Storing a kind plus the
// request in Bus fields (only one transaction holds the bus at a time)
// replaces a per-grant continuation closure.
const (
	relNone     = iota // nothing beyond re-arbitration (dropped transaction)
	relDone            // invoke the requester's completion callback
	relWrite           // hand the write to the target (posted)
	relReadAddr        // hand the read to the target; response re-arbitrates
	relFunc            // run afterRelease (rare fault-injection paths)
)

// pendingRead carries a read transaction through its target access: the
// pre-bound fn is what the target calls when data is ready, queueing the
// response's data phase. Nodes are pooled on the bus; targets may complete
// out of order, so each outstanding read needs its own node.
type pendingRead struct {
	b   *Bus
	req request
	fn  func()
}

func (p *pendingRead) complete() {
	b := p.b
	resp := p.req
	p.req = request{}
	b.readPool = append(b.readPool, p)
	resp.dataPhase = true
	b.responses.push(resp)
	b.arbitrate()
}

// Bus is a round-robin arbitrated split-transaction interconnect.
type Bus struct {
	cfg    Config
	eng    *sim.Engine
	target Target

	queues    []fifo // per-master FIFO
	responses fifo   // read responses awaiting their data phase
	rrNext    int    // next master to consider
	granted   bool   // a transaction currently holds the bus
	stats     Stats
	probe     *obs.Probe
	inj       *fault.Injector
	// backoffs counts transactions sitting out a post-NACK backoff delay;
	// they are in flight but in no queue, so the watchdog must see them.
	backoffs int

	// releaseEv fires when the granted transaction's occupancy elapses.
	// Only one transaction holds the bus at a time, so a single pre-bound
	// event plus (relKind, relReq) replace a per-grant closure.
	releaseEv    *sim.Event
	relKind      int
	relReq       request
	afterRelease func() // relFunc continuation (fault paths only)

	readPool []*pendingRead // recycled outstanding-read nodes
}

// New creates a bus attached to eng, delivering transactions to target.
func New(eng *sim.Engine, cfg Config, target Target) *Bus {
	if cfg.WidthBits%8 != 0 || cfg.WidthBits <= 0 {
		panic(fmt.Sprintf("bus: invalid width %d bits", cfg.WidthBits))
	}
	if cfg.Clock.Period == 0 {
		panic("bus: zero clock period")
	}
	b := &Bus{cfg: cfg, eng: eng, target: target}
	b.releaseEv = sim.NewEvent(b.release)
	return b
}

// release ends the granted transaction's bus occupancy, runs its
// continuation, and re-arbitrates.
func (b *Bus) release() {
	b.granted = false
	kind := b.relKind
	req := b.relReq
	b.relKind = relNone
	b.relReq = request{}
	switch kind {
	case relDone:
		req.done()
	case relWrite:
		req.target.Access(req.addr, req.bytes, true, req.done)
	case relReadAddr:
		req.target.Access(req.addr, req.bytes, false, b.pendingFor(req))
	case relFunc:
		then := b.afterRelease
		b.afterRelease = nil
		then()
	}
	b.arbitrate()
}

// pendingFor checks out a pooled read node for req and returns its
// pre-bound response callback.
func (b *Bus) pendingFor(req request) func() {
	var p *pendingRead
	if n := len(b.readPool); n > 0 {
		p = b.readPool[n-1]
		b.readPool[n-1] = nil
		b.readPool = b.readPool[:n-1]
	} else {
		p = &pendingRead{b: b}
		p.fn = p.complete
	}
	p.req = req
	return p.fn
}

// RegisterMaster allocates an arbitration slot and returns its id.
func (b *Bus) RegisterMaster() int {
	b.queues = append(b.queues, fifo{})
	return len(b.queues) - 1
}

// Stats returns a copy of the accumulated counters.
func (b *Bus) Stats() Stats { return b.stats }

// AttachProbe wires an observability probe; the bus fires one span per
// busy window (address phase, write, read data phase), with the master id
// and payload size attached.
func (b *Bus) AttachProbe(p *obs.Probe) { b.probe = p }

// SetFaults attaches a fault injector (nil disables injection). With an
// injector, each non-response grant may be NACKed at its address phase and
// re-queued after exponential backoff, up to the injector's retry limit;
// past the limit the transaction is dropped (its done callback never fires),
// which the no-progress watchdog then reports.
func (b *Bus) SetFaults(inj *fault.Injector) { b.inj = inj }

// InFlight counts transactions the bus is still holding: queued, awaiting a
// data phase, in a backoff delay, or currently granted. It feeds the
// no-progress watchdog.
func (b *Bus) InFlight() int {
	n := b.responses.len() + b.backoffs
	for i := range b.queues {
		n += b.queues[i].len()
	}
	if b.granted {
		n++
	}
	return n
}

// DumpInFlight renders the queue state for a watchdog diagnostic.
func (b *Bus) DumpInFlight() string {
	var s strings.Builder
	fmt.Fprintf(&s, "granted=%v responses=%d backoffs=%d", b.granted, b.responses.len(), b.backoffs)
	for m := range b.queues {
		q := &b.queues[m]
		if q.len() == 0 {
			continue
		}
		fmt.Fprintf(&s, "\nmaster%d queue:", m)
		for _, r := range q.buf[q.head:] {
			kind := "read"
			if r.write {
				kind = "write"
			}
			fmt.Fprintf(&s, " %s@%#x(%dB,issued %v)", kind, r.addr, r.bytes, r.issued)
		}
	}
	return s.String()
}

// RegisterStats registers the bus counters under prefix.
func (b *Bus) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".transactions", "bus transactions granted",
		func() uint64 { return b.stats.Transactions })
	reg.CounterFunc(prefix+".bytes_moved", "bytes moved over the data path",
		func() uint64 { return b.stats.BytesMoved })
	reg.CounterFunc(prefix+".busy_ticks", "ticks the data path was occupied",
		func() uint64 { return uint64(b.stats.BusyTicks) })
	reg.CounterFunc(prefix+".wait_ticks", "summed arbitration queuing delay",
		func() uint64 { return uint64(b.stats.WaitTicks) })
	reg.Formula(prefix+".avg_wait_ns", "mean arbitration delay per transaction",
		func() float64 {
			if b.stats.Transactions == 0 {
				return 0
			}
			return sim.Tick(b.stats.WaitTicks).Nanos() / float64(b.stats.Transactions)
		})
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// OccupancyTicks reports how long a transaction of n bytes holds the bus.
func (b *Bus) OccupancyTicks(n uint32) sim.Tick {
	cycles := 1 + uint64((n+b.cfg.WidthBytes()-1)/b.cfg.WidthBytes())
	return b.cfg.Clock.Cycles(cycles)
}

// Access enqueues a transaction from the given master to the default
// memory-side target. done fires when the transaction fully completes (data
// returned for reads, accepted for writes). Zero-byte accesses complete
// immediately without bus traffic.
func (b *Bus) Access(master int, addr uint64, bytes uint32, write bool, done func()) {
	b.AccessVia(master, addr, bytes, write, b.target, done)
}

// AccessVia is Access with an explicit responder. Snooping caches use it to
// route a fill to a peer cache (cache-to-cache transfer) instead of DRAM
// while still paying bus arbitration and occupancy.
func (b *Bus) AccessVia(master int, addr uint64, bytes uint32, write bool, target Target, done func()) {
	if master < 0 || master >= len(b.queues) {
		panic(fmt.Sprintf("bus: unknown master %d", master))
	}
	if bytes == 0 {
		done()
		return
	}
	b.queues[master].push(request{
		addr: addr, bytes: bytes, write: write, issued: b.eng.Now(),
		master: master, target: target, done: done,
	})
	if !b.granted {
		b.arbitrate()
	}
}

// ReadStream is a read whose data-phase delivery is observable: progress
// fires with the cumulative bytes delivered, every gran bytes, as the beats
// cross the bus. The DMA engine uses it to set full/empty bits at CPU
// cache-line granularity while a bulk transfer is still in flight
// (DMA-triggered computation, Sec IV-B2).
func (b *Bus) ReadStream(master int, addr uint64, bytes uint32, gran uint32, progress func(uint32), done func()) {
	b.ReadStreamVia(master, addr, bytes, gran, b.target, progress, done)
}

// ReadStreamVia is ReadStream with an explicit responder (a coherent DMA
// engine sources dirty data from the CPU cache rather than DRAM).
func (b *Bus) ReadStreamVia(master int, addr uint64, bytes uint32, gran uint32, target Target, progress func(uint32), done func()) {
	if master < 0 || master >= len(b.queues) {
		panic(fmt.Sprintf("bus: unknown master %d", master))
	}
	if gran == 0 {
		panic("bus: zero stream granularity")
	}
	if bytes == 0 {
		done()
		return
	}
	b.queues[master].push(request{
		addr: addr, bytes: bytes, issued: b.eng.Now(),
		master: master, target: target, done: done,
		progress: progress, progressGran: gran,
	})
	if !b.granted {
		b.arbitrate()
	}
}

// arbitrate grants the bus to the next waiter. Read responses have priority
// over new requests (as on AXI-class interconnects, the response channel
// drains first); fresh requests are served round-robin across masters.
func (b *Bus) arbitrate() {
	if b.granted {
		return
	}
	if b.responses.len() > 0 {
		b.grant(b.responses.pop())
		return
	}
	n := len(b.queues)
	for i := 0; i < n; i++ {
		m := (b.rrNext + i) % n
		if b.queues[m].len() == 0 {
			continue
		}
		req := b.queues[m].pop()
		b.rrNext = (m + 1) % n
		b.grant(req)
		return
	}
}

func (b *Bus) grant(req request) {
	b.granted = true

	// Fault injection: the address phase of a fresh transaction may be
	// NACKed. Read responses are not (the address phase already succeeded).
	if !req.dataPhase && b.inj.BusNack(b.eng.Now(), req.addr, req.attempts+1) {
		req.attempts++
		if req.attempts > b.inj.BusRetryLimit() {
			// Retries exhausted: the transaction is dropped. Its done
			// callback never fires; the requester's watchdog entry makes
			// the loss diagnosable instead of a silent hang.
			b.inj.CountBusDrop(b.eng.Now(), req.addr, req.attempts)
			b.releasePhase(req, b.cfg.Clock.Cycles(1), "bus-drop", relNone, nil)
			return
		}
		// The failed address phase still occupied a cycle; the master sits
		// out an exponential backoff and re-arbitrates from the back of
		// its queue.
		retry := req
		backoff := b.inj.BusBackoff(req.attempts)
		b.backoffs++
		b.releasePhase(req, b.cfg.Clock.Cycles(1), "bus-nack", relFunc, func() {
			b.eng.After(backoff, func() {
				b.backoffs--
				b.inj.CountBusRetry()
				b.queues[retry.master].push(retry)
				if !b.granted {
					b.arbitrate()
				}
			})
		})
		return
	}

	b.dispatch(req)
}

// releasePhase accounts one bus occupancy window and schedules the release
// with its continuation kind.
func (b *Bus) releasePhase(req request, after sim.Tick, phase string, kind int, then func()) {
	b.stats.BusyTicks += after
	if b.probe.Enabled() {
		start := uint64(b.eng.Now())
		b.probe.Fire(obs.Event{Name: phase, Start: start,
			End: start + uint64(after), Lane: int32(req.master),
			Bytes: uint64(req.bytes)})
	}
	b.relKind = kind
	b.relReq = req
	b.afterRelease = then
	b.eng.AfterEvent(after, b.releaseEv)
}

// dispatch moves a granted transaction through its bus phases.
func (b *Bus) dispatch(req request) {
	dataTicks := b.cfg.Clock.Cycles(uint64((req.bytes + b.cfg.WidthBytes() - 1) / b.cfg.WidthBytes()))
	switch {
	case req.dataPhase:
		// Read response: data beats only.
		if req.progress != nil {
			b.scheduleProgress(req, dataTicks)
		}
		b.releasePhase(req, dataTicks, "read-data", relDone, nil)

	case req.write:
		// Write: address + data move together; the target accepts the
		// data afterwards (posted write). done fires when accepted.
		b.stats.Transactions++
		b.stats.BytesMoved += uint64(req.bytes)
		b.stats.WaitTicks += b.eng.Now() - req.issued
		b.releasePhase(req, b.cfg.Clock.Cycles(1)+dataTicks, "write", relWrite, nil)

	default:
		// Read: address phase holds the bus one cycle, then the bus is
		// free while the target services the request; the response
		// re-arbitrates for its data phase.
		b.stats.Transactions++
		b.stats.BytesMoved += uint64(req.bytes)
		b.stats.WaitTicks += b.eng.Now() - req.issued
		b.releasePhase(req, b.cfg.Clock.Cycles(1), "read-addr", relReadAddr, nil)
	}
}

// scheduleProgress spreads arrival notifications across a read data phase,
// proportional to the bytes delivered.
func (b *Bus) scheduleProgress(req request, dataTicks sim.Tick) {
	total := req.bytes
	gran := req.progressGran
	for cum := gran; ; cum += gran {
		if cum > total {
			cum = total
		}
		frac := float64(cum) / float64(total)
		at := sim.Tick(float64(dataTicks)*frac + 0.5)
		cumCopy := cum
		b.eng.After(at, func() { req.progress(cumCopy) })
		if cum == total {
			break
		}
	}
}

// Utilization reports the fraction of elapsed time the bus was busy.
func (b *Bus) Utilization(elapsed sim.Tick) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(b.stats.BusyTicks) / float64(elapsed)
}
