package bus

import (
	"fmt"
	"strings"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// MeshConfig describes a simple 2D mesh NoC: Dim×Dim routers connected by
// width-limited links, dimension-ordered (XY) routing, and a per-hop
// router+link traversal latency. The memory-side target sits at node (0,0);
// masters are placed round-robin over the remaining nodes.
type MeshConfig struct {
	WidthBits int       // link width (flit payload per cycle)
	Clock     sim.Clock // NoC clock domain
	Dim       int       // routers per side; defaults to 2
	HopCycles int       // router pipeline + link traversal per hop; defaults to 1
}

func (c MeshConfig) widthBytes() uint32 { return uint32(c.WidthBits / 8) }

// mpkt is a packet in flight: a read request (1 header flit), a write
// (header + data flits), or a read response (header + data flits).
type mpkt struct {
	addr         uint64
	bytes        uint32 // transaction payload
	flits        uint64 // packet length on the wire, header included
	write        bool
	issued       sim.Tick
	master       int
	node         int // current router
	dest         int
	target       Target
	done         func()
	resp         bool // a read response heading back to its master
	progress     func(uint32)
	progressGran uint32
	attempts     int
}

// Mesh is a store-and-forward 2D mesh NoC with XY routing. Each directed
// link serializes the packets crossing it (link-width back-pressure): a
// packet occupies a link for HopCycles plus one cycle per flit, and a
// packet arriving at a busy link waits for the link's free time. Traffic
// between disjoint links flows concurrently, so spatially separated
// masters contend only where their XY paths overlap.
type Mesh struct {
	cfg    MeshConfig
	eng    *sim.Engine
	target Target

	nmasters int
	nodeOf   []int      // master id → injection node
	linkFree []sim.Tick // [node*4+dir] earliest time the link is idle
	stats    Stats
	probe    *obs.Probe
	inj      *fault.Injector
	inflight int
	backoffs int
}

// Link directions out of a router.
const (
	meshEast = iota
	meshWest
	meshNorth
	meshSouth
)

// NewMesh creates a mesh attached to eng, delivering transactions to the
// memory-side target at node (0,0).
func NewMesh(eng *sim.Engine, cfg MeshConfig, target Target) *Mesh {
	if cfg.WidthBits%8 != 0 || cfg.WidthBits <= 0 {
		panic(fmt.Sprintf("mesh: invalid width %d bits", cfg.WidthBits))
	}
	if cfg.Clock.Period == 0 {
		panic("mesh: zero clock period")
	}
	if cfg.Dim == 0 {
		cfg.Dim = 2
	}
	if cfg.Dim < 2 {
		panic(fmt.Sprintf("mesh: invalid dimension %d", cfg.Dim))
	}
	if cfg.HopCycles == 0 {
		cfg.HopCycles = 1
	}
	return &Mesh{
		cfg: cfg, eng: eng, target: target,
		linkFree: make([]sim.Tick, cfg.Dim*cfg.Dim*4),
	}
}

// RegisterMaster places the next master on the mesh and returns its id.
// Masters spread round-robin over nodes 1..Dim²-1 (node 0 is the memory
// port), so registration order fixes the floorplan deterministically.
func (m *Mesh) RegisterMaster() int {
	id := m.nmasters
	m.nmasters++
	slots := m.cfg.Dim*m.cfg.Dim - 1
	m.nodeOf = append(m.nodeOf, 1+id%slots)
	return id
}

// Stats returns a copy of the accumulated counters. BusyTicks sums link
// occupancy across the whole mesh; Utilization normalizes by link count.
func (m *Mesh) Stats() Stats { return m.stats }

// AttachProbe wires an observability probe; the mesh fires one span per
// link traversal with the occupied link index as the lane.
func (m *Mesh) AttachProbe(p *obs.Probe) { m.probe = p }

// SetFaults attaches a fault injector (nil disables injection). Injection
// applies at packet admission, mirroring the bus's address-phase NACK.
func (m *Mesh) SetFaults(inj *fault.Injector) { m.inj = inj }

// RegisterStats registers the mesh counters under prefix.
func (m *Mesh) RegisterStats(reg *obs.Registry, prefix string) {
	registerFabricStats(reg, prefix, func() Stats { return m.stats })
}

// InFlight counts packets still traversing the mesh or awaiting a target.
func (m *Mesh) InFlight() int { return m.inflight + m.backoffs }

// DumpInFlight renders link occupancy for a watchdog diagnostic.
func (m *Mesh) DumpInFlight() string {
	var s strings.Builder
	fmt.Fprintf(&s, "inflight=%d backoffs=%d now=%v", m.inflight, m.backoffs, m.eng.Now())
	dirs := [4]string{"E", "W", "N", "S"}
	for l, free := range m.linkFree {
		if free <= m.eng.Now() {
			continue
		}
		node, dir := l/4, l%4
		fmt.Fprintf(&s, "\nlink n%d.%s busy until %v",
			node, dirs[dir], free)
	}
	return s.String()
}

// Utilization reports mean per-link busy fraction over elapsed time.
func (m *Mesh) Utilization(elapsed sim.Tick) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(m.stats.BusyTicks) / (float64(elapsed) * float64(len(m.linkFree)))
}

// Access enqueues a transaction to the memory-side target at node 0.
func (m *Mesh) Access(master int, addr uint64, bytes uint32, write bool, done func()) {
	m.AccessVia(master, addr, bytes, write, m.target, done)
}

// AccessVia is Access with an explicit responder. The responder still sits
// at the memory port node: what varies is who answers, not where.
func (m *Mesh) AccessVia(master int, addr uint64, bytes uint32, write bool, target Target, done func()) {
	m.inject(master, addr, bytes, write, target, nil, 0, done)
}

// ReadStream is a read whose delivery is observable every gran bytes as
// the response packet's flits drain across its final link.
func (m *Mesh) ReadStream(master int, addr uint64, bytes uint32, gran uint32, progress func(uint32), done func()) {
	m.ReadStreamVia(master, addr, bytes, gran, m.target, progress, done)
}

// ReadStreamVia is ReadStream with an explicit responder.
func (m *Mesh) ReadStreamVia(master int, addr uint64, bytes uint32, gran uint32, target Target, progress func(uint32), done func()) {
	if gran == 0 {
		panic("mesh: zero stream granularity")
	}
	m.inject(master, addr, bytes, false, target, progress, gran, done)
}

func (m *Mesh) dataFlits(bytes uint32) uint64 {
	wb := m.cfg.widthBytes()
	return uint64((bytes + wb - 1) / wb)
}

func (m *Mesh) inject(master int, addr uint64, bytes uint32, write bool, target Target, progress func(uint32), gran uint32, done func()) {
	if master < 0 || master >= m.nmasters {
		panic(fmt.Sprintf("mesh: unknown master %d", master))
	}
	if bytes == 0 {
		done()
		return
	}
	p := &mpkt{
		addr: addr, bytes: bytes, write: write, issued: m.eng.Now(),
		master: master, node: m.nodeOf[master], dest: 0,
		target: target, done: done, progress: progress, progressGran: gran,
	}
	// Write packets carry their data; read requests are a lone header.
	p.flits = 1
	if write {
		p.flits += m.dataFlits(bytes)
	}

	// Fault injection at admission: the network interface NACKs the
	// packet, the master backs off and retries, and past the retry limit
	// the packet is dropped (done never fires; the watchdog reports it).
	if m.inj.BusNack(m.eng.Now(), addr, p.attempts+1) {
		m.admitFault(p)
		return
	}
	m.inflight++
	m.stats.Transactions++
	m.stats.BytesMoved += uint64(bytes)
	m.forward(p)
}

// admitFault runs the NACK/backoff/drop protocol for packet p.
func (m *Mesh) admitFault(p *mpkt) {
	p.attempts++
	if p.attempts > m.inj.BusRetryLimit() {
		m.inj.CountBusDrop(m.eng.Now(), p.addr, p.attempts)
		return
	}
	backoff := m.inj.BusBackoff(p.attempts)
	m.backoffs++
	m.eng.After(backoff, func() {
		m.backoffs--
		m.inj.CountBusRetry()
		if m.inj.BusNack(m.eng.Now(), p.addr, p.attempts+1) {
			m.admitFault(p)
			return
		}
		m.inflight++
		m.stats.Transactions++
		m.stats.BytesMoved += uint64(p.bytes)
		m.stats.WaitTicks += m.eng.Now() - p.issued
		m.forward(p)
	})
}

// nextHop computes the XY route: correct X (east/west) first, then Y.
func (m *Mesh) nextHop(node, dest int) (next, dir int) {
	d := m.cfg.Dim
	nx, ny := node%d, node/d
	dx, dy := dest%d, dest/d
	switch {
	case nx < dx:
		return node + 1, meshEast
	case nx > dx:
		return node - 1, meshWest
	case ny < dy:
		return node + d, meshSouth
	default:
		return node - d, meshNorth
	}
}

// forward moves p one hop toward its destination, serializing on the
// outgoing link, and delivers it on arrival.
func (m *Mesh) forward(p *mpkt) {
	if p.node == p.dest {
		m.deliver(p)
		return
	}
	next, dir := m.nextHop(p.node, p.dest)
	link := p.node*4 + dir
	now := m.eng.Now()
	start := now
	if m.linkFree[link] > start {
		start = m.linkFree[link]
	}
	occ := m.cfg.Clock.Cycles(uint64(m.cfg.HopCycles) + p.flits)
	m.linkFree[link] = start + occ
	m.stats.BusyTicks += occ
	// Queuing at the first hop is the packet's arbitration delay.
	if p.node == m.nodeOf[p.master] && !p.resp {
		m.stats.WaitTicks += start - now
	}
	if m.probe.Enabled() {
		m.probe.Fire(obs.Event{Name: "mesh-hop", Start: uint64(start),
			End: uint64(start + occ), Lane: int32(link),
			Bytes: uint64(p.bytes)})
	}
	arrive := start + occ
	final := next == p.dest
	if final && p.resp && p.progress != nil {
		// The response's data flits drain across the last link: spread the
		// stream notifications over that window.
		m.hopProgress(p, arrive-now)
	}
	p.node = next
	m.eng.After(arrive-now, func() { m.forward(p) })
}

// hopProgress spreads stream-arrival notifications across the final link
// traversal window, proportional to the bytes delivered.
func (m *Mesh) hopProgress(p *mpkt, window sim.Tick) {
	total := p.bytes
	gran := p.progressGran
	for cum := gran; ; cum += gran {
		if cum > total {
			cum = total
		}
		frac := float64(cum) / float64(total)
		at := sim.Tick(float64(window)*frac + 0.5)
		cumCopy := cum
		m.eng.After(at, func() { p.progress(cumCopy) })
		if cum == total {
			break
		}
	}
}

// deliver hands an arrived packet to its endpoint.
func (m *Mesh) deliver(p *mpkt) {
	switch {
	case p.resp:
		// Response data arrived back at the master.
		m.inflight--
		p.done()
	case p.write:
		// Posted write: the target accepts the payload; done fires on
		// acceptance.
		m.inflight--
		p.target.Access(p.addr, p.bytes, true, p.done)
	default:
		// Read request at the memory port: the target services it off the
		// network, then the response packet carries the data back.
		p.target.Access(p.addr, p.bytes, false, func() {
			p.resp = true
			p.dest = m.nodeOf[p.master]
			p.node = 0
			p.flits = 1 + m.dataFlits(p.bytes)
			m.forward(p)
		})
	}
}

var _ Fabric = (*Mesh)(nil)
