package bus

import (
	"testing"

	"gem5aladdin/internal/sim"
)

func newCrossbar(t *testing.T, widthBits int, targetLat sim.Tick, slaves, burst int) (*sim.Engine, *Crossbar, *fakeTarget) {
	t.Helper()
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, latency: targetLat}
	x := NewCrossbar(eng, CrossbarConfig{
		WidthBits: widthBits, Clock: sim.NewClockHz(100e6),
		Slaves: slaves, BurstBeats: burst,
	}, tgt)
	return eng, x, tgt
}

func newMesh(t *testing.T, widthBits int, targetLat sim.Tick, dim int) (*sim.Engine, *Mesh, *fakeTarget) {
	t.Helper()
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, latency: targetLat}
	m := NewMesh(eng, MeshConfig{
		WidthBits: widthBits, Clock: sim.NewClockHz(100e6), Dim: dim,
	}, tgt)
	return eng, m, tgt
}

// runFabricTransfer drives one read and one write through f and returns
// their completion times.
func runFabricTransfer(eng *sim.Engine, f Fabric, bytes uint32) (readAt, writeAt sim.Tick) {
	m := f.RegisterMaster()
	f.Access(m, 0x1000, bytes, false, func() { readAt = eng.Now() })
	eng.Run()
	f.Access(m, 0x2000, bytes, true, func() { writeAt = eng.Now() - readAt })
	eng.Run()
	return readAt, writeAt
}

func TestCrossbarSingleTransfer(t *testing.T) {
	eng, x, tgt := newCrossbar(t, 32, 5*sim.Nanosecond, 4, 16)
	readAt, writeAt := runFabricTransfer(eng, x, 64)
	if readAt == 0 || writeAt == 0 {
		t.Fatal("transfers never completed")
	}
	// 64 B read at 4 B/beat, burst 16: addr 10ns, target 5ns, one
	// 16-beat response burst 160ns => 175ns.
	if readAt != 175*sim.Nanosecond {
		t.Errorf("read completed at %v, want 175ns", readAt)
	}
	if len(tgt.log) != 2 {
		t.Fatalf("target saw %d accesses, want 2", len(tgt.log))
	}
	s := x.Stats()
	if s.Transactions != 2 || s.BytesMoved != 128 {
		t.Errorf("stats = %+v, want 2 transactions moving 128 B", s)
	}
	if x.InFlight() != 0 {
		t.Errorf("InFlight() = %d after drain, want 0", x.InFlight())
	}
}

// TestCrossbarParallelRoutes is the crossbar's reason to exist: transfers
// from different masters to different slaves must overlap, completing in
// roughly the time one takes on the bus.
func TestCrossbarParallelRoutes(t *testing.T) {
	eng, x, _ := newCrossbar(t, 32, 0, 4, 64)
	m0, m1 := x.RegisterMaster(), x.RegisterMaster()
	var done0, done1 sim.Tick
	// 0x0000 and 0x1000 land on different 4 KiB-interleaved slaves.
	x.Access(m0, 0x0000, 256, false, func() { done0 = eng.Now() })
	x.Access(m1, 0x1000, 256, false, func() { done1 = eng.Now() })
	eng.Run()
	if done0 == 0 || done1 == 0 {
		t.Fatal("transfers never completed")
	}
	solo := done0
	if done1 > solo+solo/4 {
		t.Errorf("parallel transfer finished at %v, want near the solo %v: routes are serializing", done1, solo)
	}

	// Same addresses on the bus serialize: the second transfer must wait
	// for the first one's data phase.
	engB, b, _ := newBus(t, 32, 0)
	bm0, bm1 := b.RegisterMaster(), b.RegisterMaster()
	var bdone1 sim.Tick
	b.Access(bm0, 0x0000, 256, false, func() {})
	b.Access(bm1, 0x1000, 256, false, func() { bdone1 = engB.Now() })
	engB.Run()
	if bdone1 <= done1 {
		t.Errorf("bus (%v) should be slower than crossbar (%v) on disjoint parallel transfers", bdone1, done1)
	}
}

// TestCrossbarBurstInterleave checks that a long transfer releases its
// slave between bursts: a short conflicting read completes long before the
// bulk transfer does.
func TestCrossbarBurstInterleave(t *testing.T) {
	eng, x, _ := newCrossbar(t, 32, 0, 1, 4)
	bulk, short := x.RegisterMaster(), x.RegisterMaster()
	var bulkAt, shortAt sim.Tick
	x.Access(bulk, 0x0000, 4096, false, func() { bulkAt = eng.Now() })
	x.Access(short, 0x0000, 16, false, func() { shortAt = eng.Now() })
	eng.Run()
	if bulkAt == 0 || shortAt == 0 {
		t.Fatal("transfers never completed")
	}
	if shortAt >= bulkAt {
		t.Errorf("short read (%v) starved behind the bulk transfer (%v): bursts are not interleaving", shortAt, bulkAt)
	}
}

func TestCrossbarReadStreamProgress(t *testing.T) {
	eng, x, _ := newCrossbar(t, 32, 0, 4, 8)
	m := x.RegisterMaster()
	var marks []uint32
	var doneAt sim.Tick
	x.ReadStream(m, 0x0000, 256, 64, func(cum uint32) { marks = append(marks, cum) }, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt == 0 {
		t.Fatal("stream never completed")
	}
	want := []uint32{64, 128, 192, 256}
	if len(marks) != len(want) {
		t.Fatalf("progress marks = %v, want %v", marks, want)
	}
	for i, w := range want {
		if marks[i] != w {
			t.Fatalf("progress marks = %v, want %v", marks, want)
		}
	}
}

func TestMeshSingleTransfer(t *testing.T) {
	eng, m, tgt := newMesh(t, 32, 5*sim.Nanosecond, 2)
	readAt, writeAt := runFabricTransfer(eng, m, 64)
	if readAt == 0 || writeAt == 0 {
		t.Fatal("transfers never completed")
	}
	// Master 0 sits one hop from the memory port: request 1 header flit
	// (1 hop + 1 flit = 20ns), target 5ns, response 1+16 flits (180ns)
	// => 205ns.
	if readAt != 205*sim.Nanosecond {
		t.Errorf("read completed at %v, want 205ns", readAt)
	}
	if len(tgt.log) != 2 {
		t.Fatalf("target saw %d accesses, want 2", len(tgt.log))
	}
	if m.InFlight() != 0 {
		t.Errorf("InFlight() = %d after drain, want 0", m.InFlight())
	}
}

// TestMeshHopScaling pins XY routing: a master placed further from the
// memory port pays proportionally more hops.
func TestMeshHopScaling(t *testing.T) {
	eng, m, _ := newMesh(t, 32, 0, 4)
	masters := make([]int, 6)
	for i := range masters {
		masters[i] = m.RegisterMaster()
	}
	// Master 0 -> node 1 (1 hop); master 5 -> node 6 = (2,1) (3 hops).
	var near, far sim.Tick
	m.Access(masters[0], 0x0, 4, false, func() { near = eng.Now() })
	eng.Run()
	base := eng.Now()
	m.Access(masters[5], 0x0, 4, false, func() { far = eng.Now() - base })
	eng.Run()
	if near == 0 || far == 0 {
		t.Fatal("transfers never completed")
	}
	if far <= near {
		t.Errorf("3-hop transfer (%v) not slower than 1-hop (%v)", far, near)
	}
}

// TestMeshLinkBackPressure pins link serialization: two masters sharing the
// final link into the memory port must serialize, while the ones on
// disjoint paths overlap.
func TestMeshLinkBackPressure(t *testing.T) {
	eng, m, _ := newMesh(t, 32, 0, 2)
	m0 := m.RegisterMaster() // node 1
	var solo sim.Tick
	m.Access(m0, 0x0, 512, false, func() { solo = eng.Now() })
	eng.Run()

	eng2, m2, _ := newMesh(t, 32, 0, 2)
	a := m2.RegisterMaster() // node 1
	b := m2.RegisterMaster() // node 2
	c := m2.RegisterMaster() // node 3
	var last sim.Tick
	fin := func() { last = eng2.Now() }
	m2.Access(a, 0x0, 512, false, fin)
	m2.Access(b, 0x0, 512, false, fin)
	m2.Access(c, 0x0, 512, false, fin)
	eng2.Run()
	// Three 512 B responses all cross the links into their masters, but
	// the three response paths leave node 0 on two different links; the
	// total must exceed one solo transfer yet beat strict 3x serialization.
	if last <= solo {
		t.Errorf("three contending transfers (%v) not slower than one (%v)", last, solo)
	}
	if last >= 3*solo {
		t.Errorf("three transfers took %v, ≥3x solo %v: disjoint links are serializing", last, solo)
	}
}

func TestMeshReadStreamProgress(t *testing.T) {
	eng, m, _ := newMesh(t, 32, 0, 2)
	mm := m.RegisterMaster()
	var marks []uint32
	var doneAt sim.Tick
	m.ReadStream(mm, 0x0, 256, 64, func(cum uint32) { marks = append(marks, cum) }, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt == 0 {
		t.Fatal("stream never completed")
	}
	want := []uint32{64, 128, 192, 256}
	if len(marks) != len(want) {
		t.Fatalf("progress marks = %v, want %v", marks, want)
	}
	for i, w := range want {
		if marks[i] != w {
			t.Fatalf("progress marks = %v, want %v", marks, want)
		}
	}
}

// TestFabricDeterminism reruns an identical multi-master workload on each
// backend and demands bit-identical completion times and stats.
func TestFabricDeterminism(t *testing.T) {
	build := map[string]func(eng *sim.Engine, tgt Target) Fabric{
		"bus": func(eng *sim.Engine, tgt Target) Fabric {
			return New(eng, Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, tgt)
		},
		"crossbar": func(eng *sim.Engine, tgt Target) Fabric {
			return NewCrossbar(eng, CrossbarConfig{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, tgt)
		},
		"mesh": func(eng *sim.Engine, tgt Target) Fabric {
			return NewMesh(eng, MeshConfig{WidthBits: 32, Clock: sim.NewClockHz(100e6), Dim: 3}, tgt)
		},
	}
	for name, mk := range build {
		run := func() ([]sim.Tick, Stats) {
			eng := sim.NewEngine()
			tgt := &fakeTarget{eng: eng, latency: 7 * sim.Nanosecond}
			f := mk(eng, tgt)
			var times []sim.Tick
			for i := 0; i < 4; i++ {
				m := f.RegisterMaster()
				for j := 0; j < 8; j++ {
					addr := uint64(i)<<14 | uint64(j)<<7
					f.Access(m, addr, 96, j%2 == 0, func() { times = append(times, eng.Now()) })
				}
			}
			eng.Run()
			return times, f.Stats()
		}
		t1, s1 := run()
		t2, s2 := run()
		if len(t1) != 32 {
			t.Fatalf("%s: %d completions, want 32", name, len(t1))
		}
		if s1 != s2 {
			t.Errorf("%s: stats differ across reruns: %+v vs %+v", name, s1, s2)
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Errorf("%s: completion %d differs across reruns: %v vs %v", name, i, t1[i], t2[i])
				break
			}
		}
	}
}
