package bus

import (
	"testing"

	"gem5aladdin/internal/sim"
)

// fakeTarget responds after a fixed latency and records accesses.
type fakeTarget struct {
	eng     *sim.Engine
	latency sim.Tick
	log     []uint64
}

func (f *fakeTarget) Access(addr uint64, bytes uint32, write bool, done func()) {
	f.log = append(f.log, addr)
	f.eng.After(f.latency, done)
}

func newBus(t *testing.T, widthBits int, targetLat sim.Tick) (*sim.Engine, *Bus, *fakeTarget) {
	t.Helper()
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, latency: targetLat}
	b := New(eng, Config{WidthBits: widthBits, Clock: sim.NewClockHz(100e6)}, tgt)
	return eng, b, tgt
}

func TestOccupancy(t *testing.T) {
	_, b, _ := newBus(t, 32, 0)
	// 32-bit = 4 B/cycle at 10ns: 64 bytes -> 1 + 16 cycles = 170ns.
	if got := b.OccupancyTicks(64); got != 170*sim.Nanosecond {
		t.Fatalf("occupancy(64) = %v, want 170ns", got)
	}
	// 1 byte still needs a full data cycle.
	if got := b.OccupancyTicks(1); got != 20*sim.Nanosecond {
		t.Fatalf("occupancy(1) = %v, want 20ns", got)
	}
}

func TestWiderBusFaster(t *testing.T) {
	_, b32, _ := newBus(t, 32, 0)
	_, b64, _ := newBus(t, 64, 0)
	if b64.OccupancyTicks(256) >= b32.OccupancyTicks(256) {
		t.Fatal("64-bit bus should move 256B faster than 32-bit")
	}
}

func TestSingleTransaction(t *testing.T) {
	eng, b, tgt := newBus(t, 32, 5*sim.Nanosecond)
	m := b.RegisterMaster()
	var doneAt sim.Tick
	b.Access(m, 0x1000, 64, false, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt == 0 {
		t.Fatal("transaction never completed")
	}
	// Addr phase 0-10ns, target responds at 15ns, data phase 15-175ns.
	if doneAt != 175*sim.Nanosecond {
		t.Fatalf("done at %v, want 175ns", doneAt)
	}
	if len(tgt.log) != 1 || tgt.log[0] != 0x1000 {
		t.Fatalf("target log = %v", tgt.log)
	}
}

func TestSlowTargetDelaysCompletion(t *testing.T) {
	eng, b, _ := newBus(t, 32, 500*sim.Nanosecond)
	m := b.RegisterMaster()
	var doneAt sim.Tick
	b.Access(m, 0, 4, false, func() { doneAt = eng.Now() })
	eng.Run()
	// Addr phase 10ns + target 500ns + data phase 10ns = 520ns.
	if doneAt != 520*sim.Nanosecond {
		t.Fatalf("done at %v, want 520ns", doneAt)
	}
}

func TestZeroBytesImmediate(t *testing.T) {
	eng, b, tgt := newBus(t, 32, 0)
	m := b.RegisterMaster()
	called := false
	b.Access(m, 0, 0, false, func() { called = true })
	if !called {
		t.Fatal("zero-byte access should complete synchronously")
	}
	eng.Run()
	if len(tgt.log) != 0 {
		t.Fatal("zero-byte access reached the target")
	}
	if b.Stats().Transactions != 0 {
		t.Fatal("zero-byte access counted as a transaction")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	eng, b, _ := newBus(t, 32, 0)
	m := b.RegisterMaster()
	var last sim.Tick
	n := 10
	for i := 0; i < n; i++ {
		b.Access(m, uint64(i*64), 64, true, func() { last = eng.Now() })
	}
	eng.Run()
	// Each 64B transaction holds the bus 170ns; 10 of them serialize.
	if want := sim.Tick(n) * 170 * sim.Nanosecond; last != want {
		t.Fatalf("last done at %v, want %v", last, want)
	}
	st := b.Stats()
	if st.BytesMoved != uint64(n*64) {
		t.Fatalf("bytes moved = %d", st.BytesMoved)
	}
	if st.Transactions != uint64(n) {
		t.Fatalf("transactions = %d", st.Transactions)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	eng, b, tgt := newBus(t, 32, 0)
	m0 := b.RegisterMaster()
	m1 := b.RegisterMaster()
	// Master 0 floods; master 1 submits one request at the same instant.
	for i := 0; i < 5; i++ {
		b.Access(m0, uint64(0xA000+i), 4, false, func() {})
	}
	b.Access(m1, 0xB000, 4, false, func() {})
	eng.Run()
	// Master 1's single request must be served second, not last.
	if len(tgt.log) != 6 {
		t.Fatalf("target saw %d accesses", len(tgt.log))
	}
	if tgt.log[1] != 0xB000 {
		t.Fatalf("round robin violated: order %v", tgt.log)
	}
}

func TestWaitTicksAccumulate(t *testing.T) {
	eng, b, _ := newBus(t, 32, 0)
	m := b.RegisterMaster()
	b.Access(m, 0, 64, false, func() {})
	b.Access(m, 64, 64, false, func() {})
	eng.Run()
	st := b.Stats()
	// The second read's address phase waits behind the first's (10ns);
	// its data phase then queues behind the first response, but queueing
	// of response phases is not charged as arbitration wait.
	if st.WaitTicks != 10*sim.Nanosecond {
		t.Fatalf("wait ticks = %v, want 10ns", st.WaitTicks)
	}
}

func TestUtilization(t *testing.T) {
	eng, b, _ := newBus(t, 32, 0)
	m := b.RegisterMaster()
	b.Access(m, 0, 64, false, func() {})
	eng.Run()
	if got := b.Utilization(340 * sim.Nanosecond); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if b.Utilization(0) != 0 {
		t.Fatal("zero elapsed should report 0 utilization")
	}
}

func TestUnknownMasterPanics(t *testing.T) {
	_, b, _ := newBus(t, 32, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown master did not panic")
		}
	}()
	b.Access(3, 0, 4, false, func() {})
}

func TestInvalidWidthPanics(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid width did not panic")
		}
	}()
	New(eng, Config{WidthBits: 12, Clock: sim.NewClockHz(100e6)}, &fakeTarget{eng: eng})
}

func TestReadStreamProgress(t *testing.T) {
	eng, b, _ := newBus(t, 32, 5*sim.Nanosecond)
	m := b.RegisterMaster()
	var marks []uint32
	var doneAt sim.Tick
	b.ReadStream(m, 0, 256, 64, func(cum uint32) { marks = append(marks, cum) },
		func() { doneAt = eng.Now() })
	eng.Run()
	want := []uint32{64, 128, 192, 256}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
	if doneAt == 0 {
		t.Fatal("stream never completed")
	}
}

func TestReadStreamViaCustomTarget(t *testing.T) {
	eng, b, tgt := newBus(t, 32, 0)
	slow := &fakeTarget{eng: eng, latency: 300 * sim.Nanosecond}
	m := b.RegisterMaster()
	done := false
	b.ReadStreamVia(m, 0x40, 64, 32, slow, func(uint32) {}, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("stream never completed")
	}
	if len(slow.log) != 1 {
		t.Fatalf("custom target saw %d accesses", len(slow.log))
	}
	if len(tgt.log) != 0 {
		t.Fatal("default target used despite ReadStreamVia")
	}
}

func TestReadStreamZeroGranPanics(t *testing.T) {
	_, b, _ := newBus(t, 32, 0)
	m := b.RegisterMaster()
	defer func() {
		if recover() == nil {
			t.Fatal("zero granularity did not panic")
		}
	}()
	b.ReadStream(m, 0, 64, 0, nil, func() {})
}

func TestResponsePriorityOverNewRequests(t *testing.T) {
	// One read's response must win arbitration against a flood of writes
	// that were enqueued after the response became ready.
	eng, b, _ := newBus(t, 32, 100*sim.Nanosecond)
	m := b.RegisterMaster()
	var readDone sim.Tick
	b.Access(m, 0, 4, false, func() { readDone = eng.Now() })
	// Writes queued while the read's target is busy.
	var lastWrite sim.Tick
	eng.Schedule(50*sim.Nanosecond, func() {
		for i := 0; i < 5; i++ {
			b.Access(m, uint64(0x1000+i*64), 64, true, func() { lastWrite = eng.Now() })
		}
	})
	eng.Run()
	// Response ready at ~110ns while write0 (granted at 50ns) holds the
	// bus until 220ns; the response then beats writes 1-4 and finishes
	// its 10ns data phase at 230ns. Any later means it was starved.
	if readDone > 230*sim.Nanosecond {
		t.Fatalf("read response starved until %v", readDone)
	}
	if lastWrite < readDone {
		t.Fatal("all writes finished before the read response")
	}
}
