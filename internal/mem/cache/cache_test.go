package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/coherence"
	"gem5aladdin/internal/mem/dram"
	"gem5aladdin/internal/sim"
)

// rig bundles a full memory system: cache -> bus -> DRAM, with a CPU-side
// coherence peer.
type rig struct {
	eng   *sim.Engine
	cache *Cache
	bus   *bus.Bus
	coh   *coherence.Controller
	cpu   int
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	b := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
	coh := coherence.NewController()
	cpu := coh.AddPeer()
	self := coh.AddPeer()
	cfg := DefaultConfig(sim.NewClockHz(100e6))
	cfg.Prefetch = false
	if mutate != nil {
		mutate(&cfg)
	}
	return &rig{eng: eng, cache: New(eng, cfg, b, coh, self), bus: b, coh: coh, cpu: cpu}
}

// access runs one access to completion and returns its latency.
func (r *rig) access(t *testing.T, addr uint64, size uint32, write bool) sim.Tick {
	t.Helper()
	start := r.eng.Now()
	var end sim.Tick
	fired := false
	r.cache.Access(addr, size, write, func() { end = r.eng.Now(); fired = true })
	r.eng.Run()
	if !fired {
		t.Fatalf("access %#x never completed", addr)
	}
	return end - start
}

func TestMissThenHit(t *testing.T) {
	r := newRig(t, nil)
	missLat := r.access(t, 0x1000, 8, false)
	hitLat := r.access(t, 0x1008, 8, false) // same 32B line
	if hitLat >= missLat {
		t.Fatalf("hit latency %v not below miss latency %v", hitLat, missLat)
	}
	// Port alignment to the next clock edge plus one hit cycle.
	if hitLat > 20*sim.Nanosecond {
		t.Fatalf("hit latency = %v", hitLat)
	}
	st := r.cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
}

func TestLineGranularityFills(t *testing.T) {
	r := newRig(t, nil)
	r.access(t, 0x1000, 8, false)
	// Every word in the same line now hits.
	for off := uint64(0); off < 32; off += 8 {
		if lat := r.access(t, 0x1000+off, 8, false); lat > 20*sim.Nanosecond {
			t.Fatalf("offset %d latency %v, want hit", off, lat)
		}
	}
	// Next line misses again.
	if r.cache.Stats().Misses != 1 {
		t.Fatal("same-line accesses should not miss")
	}
	r.access(t, 0x1020, 8, false)
	if r.cache.Stats().Misses != 2 {
		t.Fatal("next line should miss")
	}
}

func TestStraddlingAccessSplits(t *testing.T) {
	r := newRig(t, nil)
	r.access(t, 0x101c, 8, false) // straddles lines 0x1000 and 0x1020
	st := r.cache.Stats()
	if st.Accesses != 2 || st.Misses != 2 {
		t.Fatalf("straddle: accesses=%d misses=%d, want 2/2", st.Accesses, st.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.SizeBytes = 2 * 1024 // 2KB, 32B lines, 4-way -> 16 sets
	})
	// Fill one set (set 0): lines at stride sets*line = 512B.
	for i := uint64(0); i < 4; i++ {
		r.access(t, i*512, 8, false)
	}
	// Touch line 0 to make line 1 the LRU, then bring in a 5th line.
	r.access(t, 0, 8, false)
	r.access(t, 4*512, 8, false)
	// Line 0 should still hit; line 512 (LRU victim) should miss.
	before := r.cache.Stats().Misses
	r.access(t, 0, 8, false)
	if r.cache.Stats().Misses != before {
		t.Fatal("MRU line was evicted")
	}
	r.access(t, 512, 8, false)
	if r.cache.Stats().Misses != before+1 {
		t.Fatal("LRU line survived eviction")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(t, func(c *Config) { c.SizeBytes = 2 * 1024 })
	for i := uint64(0); i < 4; i++ {
		r.access(t, i*512, 8, true) // fill set 0 with dirty lines
	}
	r.access(t, 4*512, 8, false) // evict a dirty victim
	if r.cache.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", r.cache.Stats().Writebacks)
	}
}

func TestCacheToCacheFill(t *testing.T) {
	r := newRig(t, nil)
	// CPU dirties the line (it produced the input data).
	r.coh.Write(r.cpu, 0x2000)
	lat := r.access(t, 0x2000, 8, false)
	st := r.cache.Stats()
	if st.C2CFills != 1 || st.MemFills != 0 {
		t.Fatalf("c2c/mem fills = %d/%d", st.C2CFills, st.MemFills)
	}
	// C2C supply avoids the DRAM activate: it should be faster than a
	// cold memory fill.
	r2 := newRig(t, nil)
	memLat := r2.access(t, 0x2000, 8, false)
	if lat >= memLat {
		t.Fatalf("c2c fill %v not faster than memory fill %v", lat, memLat)
	}
}

func TestWriteMissInvalidatesCPU(t *testing.T) {
	r := newRig(t, nil)
	r.coh.Write(r.cpu, 0x3000)
	r.access(t, 0x3000, 8, true)
	if r.coh.StateOf(r.cpu, 0x3000).Valid() {
		t.Fatal("CPU copy should be invalidated by accelerator write")
	}
	if r.coh.StateOf(1, 0x3000) != coherence.Modified {
		t.Fatal("accelerator should own the line Modified")
	}
}

func TestMSHRMerging(t *testing.T) {
	r := newRig(t, nil)
	done := 0
	r.cache.Access(0x4000, 8, false, func() { done++ })
	r.cache.Access(0x4008, 8, false, func() { done++ }) // same line, in flight
	r.eng.Run()
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	st := r.cache.Stats()
	if st.Misses != 1 || st.MSHRMerges != 1 {
		t.Fatalf("misses=%d merges=%d, want 1/1", st.Misses, st.MSHRMerges)
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	r := newRig(t, func(c *Config) { c.MSHRs = 2; c.Ports = 8 })
	done := 0
	for i := uint64(0); i < 6; i++ {
		r.cache.Access(0x5000+i*64, 8, false, func() { done++ })
	}
	r.eng.Run()
	if done != 6 {
		t.Fatalf("completions = %d, want 6", done)
	}
	if r.cache.Stats().MSHRStalls == 0 {
		t.Fatal("expected MSHR stalls with 6 misses and 2 MSHRs")
	}
}

func TestHitUnderMiss(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Ports = 2 })
	// Warm a line.
	r.access(t, 0x6000, 8, false)
	// Start a miss, then a hit to the warm line: the hit must complete
	// while the miss is still outstanding.
	var missAt, hitAt sim.Tick
	r.cache.Access(0x7000, 8, false, func() { missAt = r.eng.Now() })
	r.cache.Access(0x6000, 8, false, func() { hitAt = r.eng.Now() })
	r.eng.Run()
	if hitAt >= missAt {
		t.Fatalf("hit (%v) should complete before outstanding miss (%v)", hitAt, missAt)
	}
}

func TestStridedPrefetcher(t *testing.T) {
	base := uint64(0x10000)
	run := func(pf bool) (misses, accesses uint64) {
		r := newRig(t, func(c *Config) { c.Prefetch = pf })
		for i := uint64(0); i < 32; i++ {
			r.access(t, base+i*32, 8, false) // sequential line stream
		}
		st := r.cache.Stats()
		return st.Misses, st.Accesses
	}
	missesOff, _ := run(false)
	missesOn, _ := run(true)
	if missesOff != 32 {
		t.Fatalf("no-prefetch misses = %d, want 32", missesOff)
	}
	if missesOn >= missesOff {
		t.Fatalf("prefetching did not reduce misses: %d vs %d", missesOn, missesOff)
	}
}

func TestPrefetcherTracksStride(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Prefetch = true })
	// Stride of 2 lines.
	for i := uint64(0); i < 16; i++ {
		r.access(t, 0x20000+i*64, 8, false)
	}
	if r.cache.Stats().Prefetches == 0 {
		t.Fatal("strided stream should trigger prefetches")
	}
	if r.cache.Stats().PrefetchHit == 0 {
		t.Fatal("prefetched lines should be demanded")
	}
}

func TestFlushDirty(t *testing.T) {
	r := newRig(t, nil)
	r.access(t, 0x8000, 8, true)
	r.access(t, 0x8040, 8, true)
	r.access(t, 0x8080, 8, false)
	flushed := false
	r.cache.FlushDirty(func() { flushed = true })
	r.eng.Run()
	if !flushed {
		t.Fatal("flush never completed")
	}
	if wb := r.cache.Stats().Writebacks; wb != 2 {
		t.Fatalf("writebacks = %d, want 2", wb)
	}
	// Everything is invalid now.
	before := r.cache.Stats().Misses
	r.access(t, 0x8000, 8, false)
	if r.cache.Stats().Misses != before+1 {
		t.Fatal("flushed line still resident")
	}
}

func TestFlushEmptyCompletes(t *testing.T) {
	r := newRig(t, nil)
	flushed := false
	r.cache.FlushDirty(func() { flushed = true })
	r.eng.Run()
	if !flushed {
		t.Fatal("empty flush never completed")
	}
}

func TestPortContention(t *testing.T) {
	// Warm two lines; then issue 4 hits in the same instant on a 1-port
	// vs 4-port cache and compare the last completion time.
	run := func(ports int) sim.Tick {
		r := newRig(t, func(c *Config) { c.Ports = ports })
		r.access(t, 0x9000, 8, false)
		var last sim.Tick
		for i := 0; i < 4; i++ {
			r.cache.Access(0x9000+uint64(i%4)*8, 8, false, func() { last = r.eng.Now() })
		}
		r.eng.Run()
		return last
	}
	if run(4) >= run(1) {
		t.Fatal("more ports should drain simultaneous hits faster")
	}
}

func TestConfigValidation(t *testing.T) {
	clock := sim.NewClockHz(100e6)
	bad := []Config{
		{},
		{SizeBytes: 1024, LineBytes: 48, Assoc: 4, Ports: 1, MSHRs: 1, Clock: clock},
		{SizeBytes: 1000, LineBytes: 32, Assoc: 4, Ports: 1, MSHRs: 1, Clock: clock},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
	if err := DefaultConfig(clock).Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: any random mix of reads and writes eventually completes every
// callback exactly once and preserves coherence invariants.
func TestRandomTrafficCompletes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, func(c *Config) {
			c.SizeBytes = 2 * 1024
			c.Prefetch = rng.Intn(2) == 0
			c.Ports = 1 + rng.Intn(4)
			c.MSHRs = 1 + rng.Intn(8)
		})
		// CPU pre-dirties a few lines.
		for i := 0; i < 8; i++ {
			r.coh.Write(r.cpu, uint64(rng.Intn(64))*32)
		}
		want := 100
		got := 0
		for i := 0; i < want; i++ {
			addr := uint64(rng.Intn(4096))
			size := uint32(1 + rng.Intn(8))
			r.cache.Access(addr, size, rng.Intn(2) == 0, func() { got++ })
		}
		r.eng.Run()
		if got != want {
			t.Logf("seed %d: %d of %d completed", seed, got, want)
			return false
		}
		if err := r.coh.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return r.cache.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLineSizeAffectsMissCount(t *testing.T) {
	// A sequential byte-granular walk misses once per line: doubling the
	// line size halves the demand misses.
	run := func(line uint32) uint64 {
		r := newRig(t, func(c *Config) { c.LineBytes = line })
		for off := uint64(0); off < 2048; off += 8 {
			r.access(t, off, 8, false)
		}
		return r.cache.Stats().Misses
	}
	m16, m32, m64 := run(16), run(32), run(64)
	if m16 != 128 || m32 != 64 || m64 != 32 {
		t.Fatalf("misses 16/32/64B = %d/%d/%d, want 128/64/32", m16, m32, m64)
	}
}

func TestAssociativityResolvesConflicts(t *testing.T) {
	// 8 lines mapping to one set thrash a 4-way set but fit an 8-way one.
	run := func(assoc int) uint64 {
		r := newRig(t, func(c *Config) {
			c.SizeBytes = 2 * 1024
			c.Assoc = assoc
		})
		// Set count = 2048/32/assoc; stride by sets*32 to stay in set 0.
		stride := uint64(2048 / 32 / assoc * 32)
		for round := 0; round < 4; round++ {
			for i := uint64(0); i < 8; i++ {
				r.access(t, i*stride, 8, false)
			}
		}
		return r.cache.Stats().Misses
	}
	m4, m8 := run(4), run(8)
	if m8 >= m4 {
		t.Fatalf("8-way misses (%d) should be below 4-way (%d)", m8, m4)
	}
	if m8 != 8 {
		t.Fatalf("8-way should only miss cold: %d", m8)
	}
}

func TestExternalInvalidationForcesRefetch(t *testing.T) {
	r := newRig(t, nil)
	r.access(t, 0x1000, 8, false)
	before := r.cache.Stats().Misses
	// The CPU writes the line: MOESI invalidates the accelerator's copy
	// even though its tag array still holds it.
	r.coh.Write(r.cpu, 0x1000)
	r.access(t, 0x1000, 8, false)
	st := r.cache.Stats()
	if st.Misses != before+1 {
		t.Fatalf("stale line served as hit: misses %d -> %d", before, st.Misses)
	}
	if st.C2CFills == 0 {
		t.Fatal("refetch should pull the CPU's dirty copy")
	}
}

func TestFillLatencyAccumulates(t *testing.T) {
	r := newRig(t, nil)
	r.access(t, 0x2000, 8, false)
	if r.cache.Stats().FillLatency == 0 {
		t.Fatal("no fill latency recorded")
	}
}

func TestTryFastHit(t *testing.T) {
	r := newRig(t, nil)
	// Cold: fast path reports a miss without side effects.
	if got := r.cache.TryFastHit(0x1000, 8, false); got != FastMiss {
		t.Fatalf("cold fast hit = %v", got)
	}
	if r.cache.Stats().Accesses != 0 {
		t.Fatal("failed fast hit counted an access")
	}
	// Warm the line; the fast path then completes reads synchronously.
	r.access(t, 0x1000, 8, false)
	if got := r.cache.TryFastHit(0x1008, 8, false); got != FastHit {
		t.Fatalf("warm fast hit = %v", got)
	}
	// Port consumed: a second attempt in the same instant is refused.
	if got := r.cache.TryFastHit(0x1000, 8, false); got != FastPortBusy {
		t.Fatalf("same-cycle second access = %v", got)
	}
	// Straddling accesses always take the slow path.
	if got := r.cache.TryFastHit(0x101c, 8, false); got != FastMiss {
		t.Fatalf("straddle = %v", got)
	}
}

func TestTryFastHitWriteNeedsOwnership(t *testing.T) {
	r := newRig(t, nil)
	// Fill via a read with another sharer so the line lands Shared.
	r.coh.Read(r.cpu, 0x2000&^31)
	r.access(t, 0x2000, 8, false)
	if st := r.coh.StateOf(1, 0x2000&^31); st != coherence.Shared {
		t.Fatalf("line state = %v, want S", st)
	}
	// A write cannot use the fast path from S (needs an upgrade).
	if got := r.cache.TryFastHit(0x2000, 8, true); got != FastMiss {
		t.Fatalf("shared-state write fast hit = %v", got)
	}
	// After a slow-path write (upgrade to M), writes fast-hit.
	r.access(t, 0x2000, 8, true)
	r.eng.RunUntil(r.eng.Now() + 100*sim.Nanosecond)
	if got := r.cache.TryFastHit(0x2000, 8, true); got != FastHit {
		t.Fatalf("owned write fast hit = %v", got)
	}
}

func TestRetryAccessServedAsHitAfterFill(t *testing.T) {
	// With 1 MSHR, a second miss to a line that another access is already
	// fetching queues as a retry and must complete as a hit on the filled
	// line rather than refetching.
	r := newRig(t, func(c *Config) { c.MSHRs = 1; c.Ports = 4 })
	done := 0
	r.cache.Access(0x3000, 8, false, func() { done++ })
	r.cache.Access(0x3100, 8, false, func() { done++ }) // different line: retry-queued
	r.cache.Access(0x3000, 8, false, func() { done++ }) // merges
	r.eng.Run()
	if done != 3 {
		t.Fatalf("completions = %d", done)
	}
	st := r.cache.Stats()
	if st.MSHRStalls == 0 {
		t.Fatal("no MSHR stall recorded")
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 distinct lines", st.Misses)
	}
}

func TestConfigAccessor(t *testing.T) {
	r := newRig(t, nil)
	if r.cache.Config().SizeBytes != 16*1024 {
		t.Fatal("Config accessor wrong")
	}
}
