// Package cache implements the accelerator-attached hardware-managed cache
// of Sec III-D / IV-D: a set-associative, write-back, write-allocate cache
// with MSHRs for hit-under-miss and multiple outstanding misses, a strided
// hardware prefetcher, LRU replacement, and MOESI coherence with the CPU's
// cache hierarchy over the snooping system bus.
//
// The cache is the "pull-based, fine-grained" alternative to scratchpad +
// DMA: it loads data on demand at line granularity and handles coherence
// transparently, at the cost of tag/TLB energy and bus-visible miss
// latency.
package cache

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"gem5aladdin/internal/fault"
	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/coherence"
	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// Config describes one cache instance. All fields mirror the sweep axes in
// the paper's Fig 3 table.
type Config struct {
	SizeBytes uint64    // 2-64 KB
	LineBytes uint32    // 16/32/64 B
	Assoc     int       // 4 or 8 ways
	Ports     int       // 1-8 accesses accepted per cycle
	MSHRs     int       // 16 in the paper
	Clock     sim.Clock // cache/accelerator clock domain
	HitCycles uint64    // access latency on a hit
	Prefetch  bool      // strided hardware prefetcher
	// PrefetchDegree is how many strides ahead the prefetcher runs once a
	// stream is confirmed; 0 means 1.
	PrefetchDegree int
	SnoopLat       sim.Tick // CPU-side lookup latency for cache-to-cache fills
}

// DefaultConfig returns a mid-range accelerator cache.
func DefaultConfig(clock sim.Clock) Config {
	return Config{
		SizeBytes:      16 * 1024,
		LineBytes:      32,
		Assoc:          4,
		Ports:          1,
		MSHRs:          16,
		Clock:          clock,
		HitCycles:      1,
		Prefetch:       true,
		PrefetchDegree: 4,
		SnoopLat:       40 * sim.Nanosecond,
	}
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.SizeBytes == 0 || c.LineBytes == 0 || c.Assoc <= 0 || c.Ports <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cache: non-positive parameter in %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / uint64(c.LineBytes)
	if lines%uint64(c.Assoc) != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / uint64(c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats aggregates cache activity.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64 // demand misses that allocated an MSHR
	MSHRMerges  uint64 // demand misses merged into an in-flight MSHR
	MSHRStalls  uint64 // accesses delayed because all MSHRs were busy
	Writebacks  uint64
	Upgrades    uint64 // write hits needing an invalidation broadcast
	Prefetches  uint64
	PrefetchHit uint64   // demand access served by a completed prefetch line
	C2CFills    uint64   // fills supplied by the CPU cache (MOESI)
	MemFills    uint64   // fills supplied by DRAM
	FillLatency sim.Tick // summed demand miss latency
}

type way struct {
	line     uint64 // line-aligned physical address
	lru      uint64
	valid    bool
	prefetch bool // installed by the prefetcher, not yet demanded
}

// mshrEntry is one slot of the fixed-capacity MSHR file. Slots live in a
// contiguous array sized to Config.MSHRs: lookup is a bounded linear scan
// (at most MSHRs entries, all in one or two cache lines), which at the
// paper's 16-MSHR scale beats both a Go map (per-miss allocation, hashing)
// and open-address probing (tombstone bookkeeping on the frequent
// fill-completion deletes). fill is the slot's pre-bound bus-completion
// callback; per-fill state (start tick, supplier) lives in the slot so the
// closure is built once per slot, not once per miss.
type mshrEntry struct {
	line     uint64
	waiters  []func()
	start    sim.Tick // fill request tick, for FillLatency
	fill     func()   // pre-bound completion reading this slot
	valid    bool
	prefetch bool
	c2c      bool // fill supplied cache-to-cache rather than from DRAM
}

// retryReq is an access stalled on MSHR exhaustion, replayed on the next
// fill completion. A struct, not a closure: the retry queue churns on every
// MSHR-pressure phase and must not allocate per entry.
type retryReq struct {
	line  uint64
	done  func()
	write bool
}

type streamEntry struct {
	page   uint64
	last   uint64 // last miss line address
	stride int64
	conf   int
	used   uint64
}

// snoopSupplier is the bus target used for cache-to-cache fills: the CPU's
// cache responds after a fixed lookup latency instead of a DRAM access.
type snoopSupplier struct {
	eng *sim.Engine
	lat sim.Tick
}

func (s *snoopSupplier) Access(addr uint64, bytesN uint32, write bool, done func()) {
	s.eng.After(s.lat, done)
}

// Cache is one accelerator-attached cache.
type Cache struct {
	cfg   Config
	eng   *sim.Engine
	bus   bus.Fabric
	bm    int // bus master id
	coh   *coherence.Controller
	self  int // coherence peer id
	snoop *snoopSupplier

	// OnIdle, when set, fires whenever the last outstanding fill
	// completes. Drain logic (the accelerator's mfence) waits on it when
	// prefetches are still in flight after the final demand access.
	OnIdle func()

	// ways holds every cache line contiguously: set s occupies
	// ways[s*assoc : (s+1)*assoc]. One flat allocation instead of a
	// per-set slice-of-slices — the tag scan on every access walks
	// adjacent memory.
	ways     []way
	assoc    int
	setShift uint
	setMask  uint64
	lruClock uint64

	mshrs      []mshrEntry // fixed capacity cfg.MSHRs; valid slots in use
	inUse      int
	retries    []retryReq
	retrySpare []retryReq // recycled backing for the drain swap
	waiterPool [][]func() // recycled waiter buffers

	ports []sim.Tick // earliest-free tick per port

	streams []streamEntry

	stats Stats
	probe *obs.Probe
	inj   *fault.Injector
}

// New builds a cache wired to the bus and coherence controller. peer is the
// cache's id from coh.AddPeer().
func New(eng *sim.Engine, cfg Config, b bus.Fabric, coh *coherence.Controller, peer int) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / uint64(cfg.LineBytes)
	nsets := int(lines) / cfg.Assoc
	c := &Cache{
		cfg: cfg, eng: eng, bus: b, bm: b.RegisterMaster(),
		coh: coh, self: peer,
		snoop:    &snoopSupplier{eng: eng, lat: cfg.SnoopLat},
		ways:     make([]way, nsets*cfg.Assoc),
		assoc:    cfg.Assoc,
		setShift: uint(bits.TrailingZeros32(cfg.LineBytes)),
		setMask:  uint64(nsets - 1),
		mshrs:    make([]mshrEntry, cfg.MSHRs),
		ports:    make([]sim.Tick, cfg.Ports),
		streams:  make([]streamEntry, 4),
	}
	for i := range c.mshrs {
		slot := &c.mshrs[i]
		slot.fill = func() { c.fillComplete(slot) }
	}
	return c
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// AttachProbe wires an observability probe; the cache fires one span per
// fill (miss allocation to data installed, named by the supplier) and an
// instant per writeback.
func (c *Cache) AttachProbe(p *obs.Probe) { c.probe = p }

// RegisterStats registers the cache counters under prefix.
func (c *Cache) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".accesses", "accesses (hits + misses)",
		func() uint64 { return c.stats.Accesses })
	reg.CounterFunc(prefix+".hits", "accesses served from a resident line",
		func() uint64 { return c.stats.Hits })
	reg.CounterFunc(prefix+".misses", "demand misses allocating an MSHR",
		func() uint64 { return c.stats.Misses })
	reg.CounterFunc(prefix+".mshr_merges", "demand misses merged into in-flight MSHRs",
		func() uint64 { return c.stats.MSHRMerges })
	reg.CounterFunc(prefix+".mshr_stalls", "accesses delayed by MSHR exhaustion",
		func() uint64 { return c.stats.MSHRStalls })
	reg.CounterFunc(prefix+".writebacks", "dirty lines written back",
		func() uint64 { return c.stats.Writebacks })
	reg.CounterFunc(prefix+".upgrades", "write hits needing invalidation broadcasts",
		func() uint64 { return c.stats.Upgrades })
	reg.CounterFunc(prefix+".prefetches", "prefetch fills issued",
		func() uint64 { return c.stats.Prefetches })
	reg.CounterFunc(prefix+".prefetch_hits", "demand accesses served by prefetched lines",
		func() uint64 { return c.stats.PrefetchHit })
	reg.CounterFunc(prefix+".c2c_fills", "fills supplied by the CPU cache (MOESI)",
		func() uint64 { return c.stats.C2CFills })
	reg.CounterFunc(prefix+".mem_fills", "fills supplied by DRAM",
		func() uint64 { return c.stats.MemFills })
	reg.Formula(prefix+".hit_rate", "hits / accesses",
		func() float64 {
			if c.stats.Accesses == 0 {
				return 0
			}
			return float64(c.stats.Hits) / float64(c.stats.Accesses)
		})
	reg.Formula(prefix+".avg_miss_ns", "mean demand fill latency",
		func() float64 {
			if c.stats.Misses == 0 {
				return 0
			}
			return c.stats.FillLatency.Nanos() / float64(c.stats.Misses)
		})
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// InFlight reports outstanding MSHRs, for drain/mfence logic.
func (c *Cache) InFlight() int { return c.inUse }

// SetFaults attaches a fault injector (nil disables injection). Each access
// rolls for a bit flip in the data array line being touched; SECDED corrects
// singles and detects doubles without changing hit/miss timing.
func (c *Cache) SetFaults(inj *fault.Injector) { c.inj = inj }

// DumpInFlight lists the outstanding MSHRs (sorted by line address) plus any
// MSHR-stalled retries, for a watchdog diagnostic.
func (c *Cache) DumpInFlight() string {
	busy := make([]*mshrEntry, 0, len(c.mshrs))
	for i := range c.mshrs {
		if c.mshrs[i].valid {
			busy = append(busy, &c.mshrs[i])
		}
	}
	sort.Slice(busy, func(i, j int) bool { return busy[i].line < busy[j].line })
	var s strings.Builder
	fmt.Fprintf(&s, "%d MSHRs busy, %d stalled retries", c.inUse, len(c.retries))
	for _, m := range busy {
		kind := "demand"
		if m.prefetch {
			kind = "prefetch"
		}
		fmt.Fprintf(&s, "\nmshr line %#x: %s, %d waiters", m.line, kind, len(m.waiters))
	}
	return s.String()
}

// fireWriteback reports a dirty-line eviction to the probe.
func (c *Cache) fireWriteback() {
	if c.probe.Enabled() {
		now := uint64(c.eng.Now())
		c.probe.Fire(obs.Event{Name: "writeback", Start: now, End: now,
			Bytes: uint64(c.cfg.LineBytes)})
	}
}

func (c *Cache) lineOf(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineBytes-1) }
func (c *Cache) setOf(line uint64) int     { return int((line >> c.setShift) & c.setMask) }

// setWays returns the ways of line's set as a window into the flat array.
func (c *Cache) setWays(line uint64) []way {
	s := c.setOf(line) * c.assoc
	return c.ways[s : s+c.assoc]
}

// findMSHR scans the MSHR file for an in-flight fill of line.
func (c *Cache) findMSHR(line uint64) *mshrEntry {
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].line == line {
			return &c.mshrs[i]
		}
	}
	return nil
}

// FastHitResult is the outcome of a pipelined hit attempt.
type FastHitResult uint8

// Fast-hit outcomes.
const (
	// FastHit: the access completed as a single-cycle pipelined hit.
	FastHit FastHitResult = iota
	// FastPortBusy: all ports are occupied this cycle; retry next cycle.
	FastPortBusy
	// FastMiss: the line is not resident in a usable state (or the access
	// straddles lines); take the variable-latency path.
	FastMiss
)

// TryFastHit attempts the pipelined hit path: accelerator lanes issue hits
// like scratchpad accesses and keep running, stalling only on misses
// (Sec IV-D). It succeeds only when a port is free this instant, the line
// is resident, and no coherence transaction is required; on success the
// access is fully accounted (LRU, stats, port occupancy). On failure it
// has no side effects.
func (c *Cache) TryFastHit(addr uint64, size uint32, write bool) FastHitResult {
	line := c.lineOf(addr)
	if line != c.lineOf(addr+uint64(size)-1) {
		return FastMiss
	}
	// A free port right now?
	now := c.eng.Now()
	port := -1
	for i := range c.ports {
		if c.ports[i] <= now {
			port = i
			break
		}
	}
	if port < 0 {
		return FastPortBusy
	}
	set := c.setWays(line)
	for i := range set {
		w := &set[i]
		if !w.valid || w.line != line {
			continue
		}
		st := c.coh.StateOf(c.self, line)
		if !st.Valid() {
			// Externally invalidated (another agent wrote the line):
			// the tag is stale; fall to the miss path.
			w.valid = false
			return FastMiss
		}
		if write {
			// Writes need M or E locally to avoid a bus upgrade.
			if st != coherence.Modified && st != coherence.Exclusive {
				return FastMiss
			}
			c.coh.Write(c.self, line)
		} else {
			c.coh.Read(c.self, line)
		}
		c.ports[port] = now + c.cfg.Clock.Cycles(1)
		c.lruClock++
		w.lru = c.lruClock
		if w.prefetch {
			w.prefetch = false
			c.stats.PrefetchHit++
		}
		c.stats.Accesses++
		c.stats.Hits++
		c.inj.ECC(fault.SiteCache, now, line)
		return FastHit
	}
	return FastMiss
}

// Access performs a load or store of size bytes at physical address addr.
// done fires when the data is available (loads) or accepted (stores).
// Accesses that straddle a line boundary are split and complete when both
// halves do.
func (c *Cache) Access(addr uint64, size uint32, write bool, done func()) {
	first := c.lineOf(addr)
	last := c.lineOf(addr + uint64(size) - 1)
	if first != last {
		remaining := 2
		sub := func() {
			remaining--
			if remaining == 0 {
				done()
			}
		}
		firstLen := uint32(first + uint64(c.cfg.LineBytes) - addr)
		c.Access(addr, firstLen, write, sub)
		c.Access(first+uint64(c.cfg.LineBytes), size-firstLen, write, sub)
		return
	}
	// Port arbitration, inlined so the common case — a port free right
	// now — calls lookup directly instead of building a deferred closure.
	best := 0
	for i := range c.ports {
		if c.ports[i] < c.ports[best] {
			best = i
		}
	}
	start := c.eng.Now()
	if c.ports[best] > start {
		start = c.ports[best]
	}
	start = c.cfg.Clock.NextEdge(start)
	c.ports[best] = start + c.cfg.Clock.Cycles(1)
	if start == c.eng.Now() {
		c.lookup(addr, write, done)
		return
	}
	c.eng.Schedule(start, func() { c.lookup(addr, write, done) })
}

func (c *Cache) lookup(addr uint64, write bool, done func()) {
	c.stats.Accesses++
	line := c.lineOf(addr)
	c.inj.ECC(fault.SiteCache, c.eng.Now(), line)
	set := c.setWays(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.line == line {
			if !c.coh.StateOf(c.self, line).Valid() {
				// Externally invalidated: stale tag, go refetch.
				w.valid = false
				break
			}
			// Resident. Stores may still need a coherence upgrade.
			c.lruClock++
			w.lru = c.lruClock
			if w.prefetch {
				w.prefetch = false
				c.stats.PrefetchHit++
			}
			c.stats.Hits++
			if write {
				res := c.coh.Write(c.self, line)
				if res.Invalidations > 0 {
					c.stats.Upgrades++
					// Invalidation broadcast: command-only transaction.
					c.bus.AccessVia(c.bm, line, 8, true, c.snoop, func() {})
				}
			} else {
				c.coh.Read(c.self, line)
			}
			c.eng.After(c.cfg.Clock.Cycles(c.cfg.HitCycles), done)
			return
		}
	}
	c.miss(line, write, done, false)
}

// miss handles a demand (or prefetch) miss for the given line.
func (c *Cache) miss(line uint64, write bool, done func(), prefetch bool) {
	if m := c.findMSHR(line); m != nil {
		// Merge into the in-flight fill.
		if !prefetch {
			c.stats.MSHRMerges++
			m.waiters = append(m.waiters, done)
			m.prefetch = false // a demand merge claims the prefetch
		}
		return
	}
	if c.inUse >= c.cfg.MSHRs {
		if prefetch {
			return // drop prefetches under MSHR pressure
		}
		c.stats.MSHRStalls++
		c.retries = append(c.retries, retryReq{line: line, write: write, done: done})
		return
	}
	var m *mshrEntry
	for i := range c.mshrs {
		if !c.mshrs[i].valid {
			m = &c.mshrs[i]
			break
		}
	}
	m.line, m.valid, m.prefetch = line, true, prefetch
	m.waiters = m.waiters[:0]
	if !prefetch {
		m.waiters = append(m.waiters, done)
		c.stats.Misses++
	} else {
		c.stats.Prefetches++
	}
	c.inUse++

	var res coherence.Result
	if write && !prefetch {
		res = c.coh.Write(c.self, line)
	} else {
		res = c.coh.Read(c.self, line)
	}
	m.c2c = res.Src == coherence.SrcCache
	m.start = c.eng.Now()
	if m.c2c {
		c.stats.C2CFills++
		c.bus.AccessVia(c.bm, line, c.cfg.LineBytes, false, c.snoop, m.fill)
	} else {
		c.stats.MemFills++
		c.bus.Access(c.bm, line, c.cfg.LineBytes, false, m.fill)
	}

	if c.cfg.Prefetch && !prefetch {
		c.trainPrefetcher(line)
	}
}

// fillComplete is an MSHR slot's pre-bound bus-completion callback: it
// installs the line, frees the slot, and resumes waiters and retries.
func (c *Cache) fillComplete(m *mshrEntry) {
	now := c.eng.Now()
	c.stats.FillLatency += now - m.start
	if c.probe.Enabled() {
		name := "fill-mem"
		if m.c2c {
			name = "fill-c2c"
		}
		if m.prefetch {
			name = "prefetch-" + name
		}
		c.probe.Fire(obs.Event{Name: name, Start: uint64(m.start),
			End: uint64(now), Bytes: uint64(c.cfg.LineBytes)})
	}
	c.install(m.line, m.prefetch)
	// Detach the waiter list before freeing the slot: a resumed waiter (or
	// a drained retry) may re-allocate this slot and must not append into
	// the list still being walked. The detached backing is recycled through
	// waiterPool once the walk finishes.
	waiters := m.waiters
	m.waiters = nil
	if n := len(c.waiterPool); n > 0 {
		m.waiters = c.waiterPool[n-1]
		c.waiterPool = c.waiterPool[:n-1]
	}
	m.valid = false
	c.inUse--
	for i, w := range waiters {
		waiters[i] = nil // drop the closure reference once called
		w()
	}
	if waiters != nil {
		c.waiterPool = append(c.waiterPool, waiters[:0])
	}
	c.drainRetries()
	if c.inUse == 0 && c.OnIdle != nil {
		c.OnIdle()
	}
}

// retryAccess replays an MSHR-stalled access: the line may have been
// filled (or re-requested) while it waited, so it goes through a fresh
// residence check rather than straight to a fill.
func (c *Cache) retryAccess(line uint64, write bool, done func()) {
	set := c.setWays(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			if !c.coh.StateOf(c.self, line).Valid() {
				set[i].valid = false
				break
			}
			c.lruClock++
			set[i].lru = c.lruClock
			if write {
				c.coh.Write(c.self, line)
			} else {
				c.coh.Read(c.self, line)
			}
			c.eng.After(c.cfg.Clock.Cycles(c.cfg.HitCycles), done)
			return
		}
	}
	c.miss(line, write, done, false)
}

func (c *Cache) drainRetries() {
	if len(c.retries) == 0 {
		return
	}
	// Swap in the spare backing so replays that stall again append to a
	// fresh queue; the drained backing becomes the next spare.
	pending := c.retries
	c.retries = c.retrySpare[:0]
	for i := range pending {
		r := pending[i]
		pending[i].done = nil // drop the closure reference once replayed
		c.retryAccess(r.line, r.write, r.done)
	}
	c.retrySpare = pending[:0]
}

// install places a filled line, evicting the LRU way if needed. prefetch
// marks lines brought in speculatively so a later demand hit is attributed
// to the prefetcher.
func (c *Cache) install(line uint64, prefetch bool) {
	set := c.setWays(line)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		old := set[victim].line
		res := c.coh.Evict(c.self, old)
		if res.Writeback {
			c.stats.Writebacks++
			c.fireWriteback()
			c.bus.Access(c.bm, old, c.cfg.LineBytes, true, func() {})
		}
	}
	c.lruClock++
	set[victim] = way{line: line, lru: c.lruClock, valid: true, prefetch: prefetch}
}

// trainPrefetcher observes a demand-miss line and issues a strided prefetch
// once a stream shows a stable stride.
func (c *Cache) trainPrefetcher(line uint64) {
	page := line >> 12
	c.lruClock++
	var ent *streamEntry
	for i := range c.streams {
		if c.streams[i].page == page && c.streams[i].conf >= 0 {
			ent = &c.streams[i]
			break
		}
	}
	if ent == nil {
		// Allocate LRU stream slot.
		ent = &c.streams[0]
		for i := range c.streams {
			if c.streams[i].used < ent.used {
				ent = &c.streams[i]
			}
		}
		*ent = streamEntry{page: page, last: line, used: c.lruClock}
		return
	}
	stride := int64(line) - int64(ent.last)
	if stride == ent.stride && stride != 0 {
		ent.conf++
	} else {
		ent.stride = stride
		ent.conf = 1
	}
	ent.last = line
	ent.used = c.lruClock
	if ent.conf >= 2 {
		degree := c.cfg.PrefetchDegree
		if degree <= 0 {
			degree = 1
		}
		for d := 1; d <= degree; d++ {
			next := uint64(int64(line) + int64(d)*ent.stride)
			if !c.resident(next) {
				c.miss(next, false, nil, true)
			}
		}
	}
}

func (c *Cache) resident(line uint64) bool {
	set := c.setWays(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			return true
		}
	}
	return c.findMSHR(line) != nil
}

// FlushDirty writes every dirty line back to memory and invalidates the
// cache. done fires when the last writeback completes. Used at accelerator
// completion when results must be visible in memory rather than supplied
// lazily through coherence.
func (c *Cache) FlushDirty(done func()) {
	outstanding := 1 // sentinel so zero-writeback flushes still complete
	finish := func() {
		outstanding--
		if outstanding == 0 {
			done()
		}
	}
	for wi := range c.ways {
		w := &c.ways[wi]
		if !w.valid {
			continue
		}
		res := c.coh.Evict(c.self, w.line)
		w.valid = false
		if res.Writeback {
			c.stats.Writebacks++
			c.fireWriteback()
			outstanding++
			c.bus.Access(c.bm, w.line, c.cfg.LineBytes, true, finish)
		}
	}
	finish()
}
