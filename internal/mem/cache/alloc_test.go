package cache

import "testing"

// Allocation gates for the flat-layout cache: sweep throughput depends on
// the steady-state access paths staying off the heap, so these tests fail
// if a refactor reintroduces per-access closures or map traffic.

// TestHitPathAllocFree requires a steady-state cache hit — port grant,
// tag match, coherence lookup, completion callback — to perform zero heap
// allocations.
func TestHitPathAllocFree(t *testing.T) {
	r := newRig(t, nil)
	done := func() {}
	r.cache.Access(0x1000, 8, false, done) // warm the line
	r.eng.Run()

	for _, write := range []bool{false, true} {
		write := write
		// One store upgrades the line to Modified outside the measured
		// region so the write loop below stays on the hit path.
		r.cache.Access(0x1000, 8, true, done)
		r.eng.Run()
		allocs := testing.AllocsPerRun(200, func() {
			r.cache.Access(0x1000, 8, write, done)
			r.eng.Run()
		})
		if allocs != 0 {
			t.Errorf("write=%v hit path allocates %.1f objects/op, want 0", write, allocs)
		}
	}
}

// TestMissPathAllocBounded requires a steady-state miss — MSHR claim, bus
// transaction, DRAM access, fill, install, eviction — to stay within a
// small constant number of allocations. Before the flat refactor a miss
// cost dozens of closure allocations across the bus and MSHR table.
func TestMissPathAllocBounded(t *testing.T) {
	r := newRig(t, func(cfg *Config) {
		cfg.SizeBytes = 2 * 1024
		cfg.Assoc = 1 // direct-mapped: two conflicting lines always miss
	})
	done := func() {}
	lineBytes := uint64(r.cache.Config().LineBytes)
	sets := uint64(r.cache.Config().SizeBytes) / lineBytes
	addrA, addrB := uint64(0x1000), uint64(0x1000)+sets*lineBytes

	// Warm both slots and every queue/pool capacity.
	for i := 0; i < 8; i++ {
		r.cache.Access(addrA, 8, false, done)
		r.eng.Run()
		r.cache.Access(addrB, 8, false, done)
		r.eng.Run()
	}

	allocs := testing.AllocsPerRun(200, func() {
		r.cache.Access(addrA, 8, false, done)
		r.eng.Run()
		r.cache.Access(addrB, 8, false, done)
		r.eng.Run()
	})
	perMiss := allocs / 2
	const bound = 8
	if perMiss > bound {
		t.Errorf("miss path allocates %.1f objects/op, want <= %d", perMiss, bound)
	}
}
