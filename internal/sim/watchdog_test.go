package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestRunGuardedCleanMatchesRun(t *testing.T) {
	trace := func(run func(e *Engine) (Tick, error)) ([]int, Tick, error) {
		e := NewEngine()
		var order []int
		for k := 1; k <= 5; k++ {
			k := k
			e.After(Tick(k*10), func() { order = append(order, k) })
		}
		end, err := run(e)
		return order, end, err
	}
	o1, t1, _ := trace(func(e *Engine) (Tick, error) { return e.Run(), nil })
	o2, t2, err := trace(func(e *Engine) (Tick, error) { return e.RunGuarded(0) })
	if err != nil {
		t.Fatalf("clean RunGuarded errored: %v", err)
	}
	if t1 != t2 || fmt.Sprint(o1) != fmt.Sprint(o2) {
		t.Fatalf("RunGuarded diverged from Run: (%v,%v) vs (%v,%v)", o1, t1, o2, t2)
	}
}

func TestRunGuardedQuiesceWithWork(t *testing.T) {
	e := NewEngine()
	inflight := 1
	e.AddWatch(Watch{
		Name:     "dma",
		InFlight: func() int { return inflight },
		Dump:     func() string { return "chunk @0x1000 (64 B)\nchunk @0x1040 (64 B)" },
	})
	e.AddWatch(Watch{Name: "bus", InFlight: func() int { return 0 }})
	e.After(10, func() {}) // fires, but the "dma" never completes
	_, err := e.RunGuarded(0)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Reason != "event queue quiesced with work in flight" {
		t.Fatalf("reason %q", se.Reason)
	}
	if se.PendingEvents != 0 || se.EventsFired != 1 || se.Now != 10 {
		t.Fatalf("diagnostic %+v", se)
	}
	if len(se.Items) != 1 || se.Items[0].Name != "dma" || se.Items[0].InFlight != 1 {
		t.Fatalf("items %+v, want only the stuck dma", se.Items)
	}
	msg := err.Error()
	for _, frag := range []string{"no progress", "dma: 1 in flight", "chunk @0x1040"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("diagnostic %q missing %q", msg, frag)
		}
	}
}

func TestRunGuardedTickBudget(t *testing.T) {
	e := NewEngine()
	// A self-rescheduling event models a livelocked component: the queue
	// never drains, so only the budget stops the run.
	var tick func()
	tick = func() { e.After(100, tick) }
	e.After(100, tick)
	_, err := e.RunGuarded(1000)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !strings.Contains(se.Reason, "tick budget 1000 exceeded") {
		t.Fatalf("reason %q", se.Reason)
	}
	if se.PendingEvents == 0 {
		t.Fatalf("budget abort must report pending events")
	}
	if se.Now <= 1000 {
		t.Fatalf("aborted at %v, inside the budget", se.Now)
	}
}

func TestAbortStopsRunGuarded(t *testing.T) {
	e := NewEngine()
	boom := errors.New("dma: descriptor timed out")
	fired := 0
	e.After(10, func() { fired++; e.Abort(boom) })
	e.After(20, func() { fired++ })
	_, err := e.RunGuarded(0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if fired != 1 {
		t.Fatalf("events after the abort still fired (%d)", fired)
	}
	if e.Err() != boom {
		t.Fatalf("Err() = %v", e.Err())
	}
	// First abort wins.
	e.Abort(errors.New("later"))
	if e.Err() != boom {
		t.Fatalf("abort not sticky: %v", e.Err())
	}
}

func TestAddWatchRequiresInFlight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("nil InFlight must panic")
		}
	}()
	NewEngine().AddWatch(Watch{Name: "bad"})
}
