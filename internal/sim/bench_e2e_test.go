package sim_test

// End-to-end dispatch benchmarks: a full soc.Run over real MachSuite
// kernels, so engine changes are measured under the production event mix
// (bus arbitration, DRAM banking, DMA descriptors, datapath ticks) rather
// than only the synthetic self-rescheduling chain in bench_test.go. These
// live in an external test package because internal/sim cannot import
// internal/soc without a cycle.
//
// The numbers recorded in BENCH_sim.json come from:
//
//	go test ./internal/sim/ -bench . -benchmem

import (
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/soc"
)

func benchRun(b *testing.B, bench string, mem soc.MemKind) {
	b.Helper()
	k, err := machsuite.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := k.Build()
	if err != nil {
		b.Fatal(err)
	}
	g := ddg.Build(tr)
	cfg := soc.DefaultConfig()
	cfg.Mem = mem
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := soc.RunGraph(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Cycles), "sim-cycles")
		}
	}
}

func BenchmarkDispatchGemmDMA(b *testing.B)    { benchRun(b, "gemm-ncubed", soc.DMA) }
func BenchmarkDispatchGemmCache(b *testing.B)  { benchRun(b, "gemm-ncubed", soc.Cache) }
func BenchmarkDispatchStencilDMA(b *testing.B) { benchRun(b, "stencil-stencil2d", soc.DMA) }
func BenchmarkDispatchFFTCache(b *testing.B)   { benchRun(b, "fft-transpose", soc.Cache) }
