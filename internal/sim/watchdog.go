// Watchdog: the engine's no-progress guard. A discrete-event simulator has
// two silent failure modes — the queue drains while components still hold
// in-flight work (a lost callback: the run "completes" with wrong results),
// and the queue never drains (a livelock: the run hangs). RunGuarded turns
// both into a structured *StallError listing every component's stuck state,
// instead of a hang or a misleading partial result.
//
// Components register a Watch describing how to count and dump their
// in-flight work (MSHRs, bus queues, DMA descriptors). Watches are only
// consulted when the queue quiesces or a budget expires, so registering
// them costs nothing on the event hot path.

package sim

import (
	"fmt"
	"log/slog"
	"strings"
)

// Watch describes one component's in-flight state for the watchdog.
type Watch struct {
	// Name identifies the component in diagnostics (e.g. "bus", "accel0.dma").
	Name string
	// InFlight reports how many operations the component is holding that
	// must complete before the simulation can legitimately end.
	InFlight func() int
	// Dump renders the in-flight operations for the diagnostic; it may be
	// nil when InFlight alone is informative enough.
	Dump func() string
}

// StallItem is one stuck component in a StallError.
type StallItem struct {
	Name     string
	InFlight int
	Dump     string
}

// StallError is the watchdog's structured diagnostic: why the run was
// aborted, when, and every registered component still holding work.
type StallError struct {
	// Reason is "quiesced with work in flight" or "tick budget exceeded".
	Reason string
	// Now is the virtual time of the abort.
	Now Tick
	// EventsFired is the engine's event count at the abort.
	EventsFired uint64
	// PendingEvents counts events still queued (nonzero for budget aborts).
	PendingEvents int
	// Items lists each watched component with in-flight work.
	Items []StallItem
}

// LogValue renders the stall as a structured log group, so services that
// log a stalled design point get queryable fields (reason, tick, per-item
// in-flight counts) instead of a flattened multi-line string.
func (e *StallError) LogValue() slog.Value {
	attrs := []slog.Attr{
		slog.String("reason", e.Reason),
		slog.Uint64("tick", uint64(e.Now)),
		slog.Uint64("events_fired", e.EventsFired),
		slog.Int("events_pending", e.PendingEvents),
	}
	for _, it := range e.Items {
		attrs = append(attrs, slog.Int("inflight."+it.Name, it.InFlight))
	}
	return slog.GroupValue(attrs...)
}

// Error renders the multi-line diagnostic.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: no progress: %s at %v after %d events (%d events pending)",
		e.Reason, e.Now, e.EventsFired, e.PendingEvents)
	for _, it := range e.Items {
		fmt.Fprintf(&b, "\n  %s: %d in flight", it.Name, it.InFlight)
		if it.Dump != "" {
			for _, line := range strings.Split(strings.TrimRight(it.Dump, "\n"), "\n") {
				fmt.Fprintf(&b, "\n    %s", line)
			}
		}
	}
	return b.String()
}

// AddWatch registers a component with the watchdog. Watches persist for the
// engine's lifetime and are consulted only at quiesce or budget expiry.
func (e *Engine) AddWatch(w Watch) {
	if w.InFlight == nil {
		panic("sim: watch without an InFlight func")
	}
	e.watches = append(e.watches, w)
}

// Abort requests that RunGuarded stop before dispatching another event,
// reporting err. The first abort wins; later calls are ignored. Components
// that detect unrecoverable corruption (the MOESI sanitizer, the DMA
// engine's retry-exhaustion path) use it to fail fast without panicking
// across the event loop. Plain Run ignores aborts to keep its dispatch loop
// free of per-event checks.
func (e *Engine) Abort(err error) {
	if e.abortErr == nil {
		e.abortErr = err
	}
}

// Err returns the abort error, if any.
func (e *Engine) Err() error { return e.abortErr }

// stalled collects every watched component with in-flight work.
func (e *Engine) stalled() []StallItem {
	var items []StallItem
	for _, w := range e.watches {
		n := w.InFlight()
		if n <= 0 {
			continue
		}
		it := StallItem{Name: w.Name, InFlight: n}
		if w.Dump != nil {
			it.Dump = w.Dump()
		}
		items = append(items, it)
	}
	return items
}

// stallError assembles a StallError for the current engine state.
func (e *Engine) stallError(reason string) *StallError {
	return &StallError{Reason: reason, Now: e.now, EventsFired: e.fired,
		PendingEvents: e.Pending(), Items: e.stalled()}
}

// RunGuarded fires events until the queue drains, an Abort is requested,
// or — when budget is nonzero — virtual time exceeds budget. It returns the
// final time plus an error when the run did not complete cleanly:
//
//   - the abort error passed to Abort, or
//   - a *StallError when the budget expired with events still pending
//     (livelock guard), or
//   - a *StallError when the queue quiesced while a registered Watch still
//     reported in-flight work (lost-callback guard).
//
// A clean drain with no in-flight work returns a nil error, with behavior
// (event order, final time) identical to Run.
func (e *Engine) RunGuarded(budget Tick) (Tick, error) {
	for e.abortErr == nil {
		if budget != 0 && e.now > budget {
			return e.now, e.stallError(fmt.Sprintf("tick budget %d exceeded", uint64(budget)))
		}
		if !e.Step() {
			break
		}
	}
	if e.abortErr != nil {
		return e.now, e.abortErr
	}
	if items := e.stalled(); len(items) > 0 {
		err := e.stallError("event queue quiesced with work in flight")
		err.PendingEvents = 0
		return e.now, err
	}
	return e.now, nil
}
