// Package sim provides the discrete-event simulation kernel underlying the
// gem5-Aladdin reproduction: an event queue with deterministic ordering,
// picosecond-resolution virtual time, and clock-domain helpers.
//
// All components in the SoC model (bus, DRAM, caches, DMA engine, the
// accelerator datapath) schedule work on a shared *Engine. Two events at the
// same tick fire in the order they were scheduled, which makes every
// simulation run bit-reproducible.
//
// # Queue design
//
// The queue is a hand-rolled 4-ary min-heap of concrete event structs
// ordered by (when, seq) — no container/heap, no interface boxing — plus a
// FIFO ring for events scheduled at the current tick, the dominant pattern
// in the SoC model (bus grant chains, cache hit callbacks, same-cycle
// wakeups). Scheduling and dispatch are allocation-free in steady state:
// the only allocations are amortized slice growth while the queue warms up.
// Popped slots are cleared so retired callbacks become collectable instead
// of lingering in the slice's spare capacity. Components with recurring
// callbacks (tick loops) pre-bind them once via NewEvent and reschedule the
// handle, so the hot loop allocates no closures either.
package sim

import (
	"fmt"

	"gem5aladdin/internal/obs"
)

// Tick is a point in virtual time. One tick is one picosecond, which lets
// non-commensurate clock domains (e.g. a 667 MHz CPU and a 100 MHz
// accelerator) coexist without rounding drift over the lengths of run this
// simulator targets.
type Tick uint64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * 1000
	Millisecond Tick = 1000 * 1000 * 1000
)

// MaxTick is the largest representable point in virtual time (~5.3 years).
const MaxTick Tick = ^Tick(0)

// Nanos reports t as a floating-point nanosecond count, for reporting.
func (t Tick) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Micros reports t as a floating-point microsecond count, for reporting.
func (t Tick) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the tick as nanoseconds.
func (t Tick) String() string { return fmt.Sprintf("%.1fns", t.Nanos()) }

// event is one scheduled callback. Events are stored by value in the heap
// and FIFO ring; nothing about them escapes to the garbage collector beyond
// the fn closure itself.
type event struct {
	when Tick
	seq  uint64 // tie-break within the heap: schedule order
	fn   func()
}

// Event is a pre-bound callback that can be scheduled repeatedly without
// allocating. Recurring activities — the datapath tick loop, DRAM bank
// service, bus release, the background traffic generator — construct one
// Event up front and pass it to Engine.ScheduleEvent/AfterEvent each round,
// instead of rebuilding an equivalent closure per occurrence.
type Event struct {
	fn func()
}

// NewEvent binds fn into a reusable scheduling handle.
func NewEvent(fn func()) *Event { return &Event{fn: fn} }

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now Tick
	seq uint64

	// heap is a 4-ary min-heap ordered by (when, seq). It never contains
	// an event with when == now: those are routed to the FIFO ring, so any
	// heap entry tied with a FIFO entry on time was necessarily scheduled
	// earlier and must fire first.
	heap []event

	// fifo is a power-of-two ring of events scheduled at the current tick,
	// fired in schedule order before time advances.
	fifo     []event
	fifoHead int
	fifoLen  int
	fired    uint64
	probe    *obs.Probe

	// watches and abortErr belong to the no-progress watchdog (watchdog.go).
	// abortErr is sticky: once set, Run and RunGuarded stop before the next
	// event dispatch.
	watches  []Watch
	abortErr error
}

// NewEngine returns an empty simulation engine at tick 0.
func NewEngine() *Engine { return &Engine{} }

// Reset rewinds the engine to an empty queue at tick 0, keeping the heap and
// ring capacities. Pending event slots are cleared so their callbacks become
// collectable. Watches, the probe, and any abort error are dropped too: a
// reset engine is indistinguishable from a new one (same tick, same sequence
// numbering, hence bit-identical event ordering), except that it does not
// pay the queue's warm-up allocations again. Sweep runners reuse one engine
// across design points with it.
func (e *Engine) Reset() {
	clear(e.heap)
	e.heap = e.heap[:0]
	clear(e.fifo)
	e.fifoHead, e.fifoLen = 0, 0
	e.now, e.seq, e.fired = 0, 0, 0
	e.probe = nil
	clear(e.watches)
	e.watches = e.watches[:0]
	e.abortErr = nil
}

// Now returns the current virtual time.
func (e *Engine) Now() Tick { return e.now }

// EventsFired reports how many events have executed, for instrumentation.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return len(e.heap) + e.fifoLen }

// SetProbe attaches an observability probe that, when enabled, receives
// one instant event per executed simulation event. With no listeners the
// cost in Step is a single branch (see BenchmarkEngineDispatch*).
func (e *Engine) SetProbe(p *obs.Probe) { e.probe = p }

// RegisterStats registers the engine's counters under prefix.
func (e *Engine) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".events_fired", "simulation events executed", e.EventsFired)
	reg.CounterFunc(prefix+".ticks", "final virtual time in ticks (ps)",
		func() uint64 { return uint64(e.now) })
}

// Schedule runs fn at absolute time when. Scheduling in the past panics:
// it always indicates a component bug.
func (e *Engine) Schedule(when Tick, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, e.now))
	}
	e.seq++
	if when == e.now {
		e.fifoPush(event{when: when, seq: e.seq, fn: fn})
		return
	}
	e.heapPush(event{when: when, seq: e.seq, fn: fn})
}

// After runs fn delta ticks from now. A delta that would overflow virtual
// time panics, like scheduling in the past does: both indicate a component
// computing a nonsensical latency.
func (e *Engine) After(delta Tick, fn func()) {
	when := e.now + delta
	if when < e.now {
		panic(fmt.Sprintf("sim: delta %d ticks from %v overflows virtual time", uint64(delta), e.now))
	}
	e.Schedule(when, fn)
}

// ScheduleEvent runs a pre-bound Event at absolute time when. It is
// Schedule without the per-call closure: the handle's callback was
// allocated once at construction.
func (e *Engine) ScheduleEvent(when Tick, ev *Event) { e.Schedule(when, ev.fn) }

// AfterEvent runs a pre-bound Event delta ticks from now.
func (e *Engine) AfterEvent(delta Tick, ev *Event) { e.After(delta, ev.fn) }

// NextEventTime reports when the earliest pending event fires; ok is false
// when the queue is empty.
func (e *Engine) NextEventTime() (when Tick, ok bool) {
	if e.fifoLen > 0 {
		// FIFO entries always live at the current tick.
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].when, true
	}
	return 0, false
}

// Step fires the single earliest pending event and reports whether one fired.
func (e *Engine) Step() bool {
	var ev event
	// A heap entry at the current tick was scheduled before any FIFO entry
	// (the FIFO only receives events scheduled while now already equals
	// their time), so the heap drains first on ties.
	if e.fifoLen > 0 && (len(e.heap) == 0 || e.heap[0].when > e.now) {
		ev = e.fifoPop()
	} else if len(e.heap) > 0 {
		ev = e.heapPop()
	} else {
		return false
	}
	e.now = ev.when
	e.fired++
	if e.probe.Enabled() {
		e.probe.Fire(obs.Event{Name: "event", Start: uint64(e.now), End: uint64(e.now)})
	}
	ev.fn()
	return true
}

// Run fires events until the queue drains and returns the final time. Run
// ignores Abort so the dispatch loop stays a single call per event; callers
// whose components can abort (or that want stall detection) must use
// RunGuarded, which checks the abort flag between events.
func (e *Engine) Run() Tick {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= deadline. Events beyond the deadline
// stay queued; the engine's clock advances to at most deadline.
func (e *Engine) RunUntil(deadline Tick) {
	for {
		next, ok := e.NextEventTime()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// --- same-tick FIFO ring ---

func (e *Engine) fifoPush(ev event) {
	if e.fifoLen == len(e.fifo) {
		e.fifoGrow()
	}
	e.fifo[(e.fifoHead+e.fifoLen)&(len(e.fifo)-1)] = ev
	e.fifoLen++
}

func (e *Engine) fifoPop() event {
	ev := e.fifo[e.fifoHead]
	// Clear the vacated slot so the callback is collectable once it has
	// run; otherwise it stays reachable through the ring until overwritten.
	e.fifo[e.fifoHead] = event{}
	e.fifoHead = (e.fifoHead + 1) & (len(e.fifo) - 1)
	e.fifoLen--
	return ev
}

func (e *Engine) fifoGrow() {
	n := len(e.fifo) * 2
	if n == 0 {
		n = 16
	}
	grown := make([]event, n)
	for i := 0; i < e.fifoLen; i++ {
		grown[i] = e.fifo[(e.fifoHead+i)&(len(e.fifo)-1)]
	}
	e.fifo = grown
	e.fifoHead = 0
}

// --- 4-ary min-heap ---
//
// A 4-ary layout halves tree depth versus binary, trading slightly more
// sibling comparisons per level for fewer cache-missing levels — the right
// trade for the shallow-but-hot queues this simulator runs (tens to a few
// thousand pending events). Children of i live at 4i+1..4i+4.

// less orders events by (when, seq).
func less(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev event) {
	e.heap = append(e.heap, ev)
	// Sift up.
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !less(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the moved slot's callback reference
	h = h[:n]
	e.heap = h
	// Sift down.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(&h[c], &h[min]) {
				min = c
			}
		}
		if !less(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Clock describes a clock domain with a fixed period.
type Clock struct {
	Period Tick // ticks per cycle
}

// NewClockHz builds a clock from a frequency in hertz.
func NewClockHz(hz float64) Clock {
	if hz <= 0 {
		panic("sim: non-positive clock frequency")
	}
	return Clock{Period: Tick(1e12/hz + 0.5)}
}

// Cycles converts a cycle count to ticks.
func (c Clock) Cycles(n uint64) Tick { return Tick(n) * c.Period }

// CyclesAt reports how many full cycles have elapsed at time t.
func (c Clock) CyclesAt(t Tick) uint64 { return uint64(t / c.Period) }

// NextEdge returns the first clock edge at or after t.
func (c Clock) NextEdge(t Tick) Tick {
	if r := t % c.Period; r != 0 {
		return t + c.Period - r
	}
	return t
}

// CyclesCeil reports the minimum whole cycles covering d ticks.
func (c Clock) CyclesCeil(d Tick) uint64 {
	return uint64((d + c.Period - 1) / c.Period)
}
